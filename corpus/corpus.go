// Package corpus manages a directory of persisted documents and answers
// top-k approximate subtree matching queries across all of them — the
// multi-document serving layer above the single-document tasm library.
//
// A corpus directory contains a manifest (manifest.json, documented in
// the docstore package) and, per ingested document, a binary postorder
// store plus a profile file built at ingest:
//
//	docs/<id>.store    – postorder queue + label dictionary (docstore format)
//	docs/<id>.profile  – pq-gram profile, then a label histogram
//
// # Profile file format
//
// All integers are unsigned LEB128 varints:
//
//	pq-gram profile as written by pqgram.(*Profile).Write:
//	    magic "TASMPF1\n", p, q, gramCount, gramCount × (hash, mult)
//	labelCount, then labelCount × (byteLen, bytes, count)
//
// The label histogram maps each distinct label to its number of
// occurrences in the document.
//
// # Dictionary lifecycle
//
// The corpus label dictionary is immutable between ingests. Open loads
// every document's labels into a mutable dictionary and freezes it; an
// ingest clones the frozen dictionary, interns the new document's labels
// into the clone, freezes the clone and publishes it — readers of the old
// dictionary are never disturbed, and every previously assigned
// identifier stays valid.
//
// Queries never touch the shared dictionary at all: each TopK run
// resolves labels through a request-scoped copy-on-write overlay
// (dict.Overlay) that reads through the frozen base and interns labels
// the corpus has never seen with identifiers above the base's watermark.
// Dropping the overlay at the end of the request releases those labels in
// O(1), so a long-running server answering unboundedly many distinct
// query labels holds a dictionary bounded by its documents' labels — and
// concurrent scans share the frozen base lock-free.
//
// # Query answering
//
// TopK(q, k) ranks the subtrees of every corpus document in one shared
// ranking. The profile index built at ingest drives a filter-and-verify
// scan:
//
//   - Ordering (heuristic): documents are scanned in ascending pq-gram
//     distance to the query, so documents likely to contain close matches
//     fill the ranking early and tighten the running k-th distance.
//   - Pruning (sound): for each document the label histogram yields a
//     lower bound on the distance of ANY of its subtrees — every query
//     node whose label occurs in the query more often than in the whole
//     document costs at least 1 in any edit mapping (Definition 4 gives
//     all node costs ≥ 1). A document whose bound strictly exceeds the
//     current k-th distance is skipped without being opened.
//
// The pq-gram distance itself is only a heuristic for ordering — it is
// not a lower bound of the unit-cost tree edit distance — so skipping
// never depends on it; results are exactly those of an exhaustive scan
// of every document, in deterministic (distance, document, position)
// order.
package corpus

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/docstore"
	"tasm/internal/postorder"
	"tasm/internal/pqgram"
	"tasm/internal/tree"
	"tasm/internal/varint"
	"tasm/internal/xmlstream"
)

// manifestFile is the manifest's name inside the corpus directory.
const manifestFile = "manifest.json"

// docsDir is the subdirectory holding store and profile files.
const docsDir = "docs"

// DocInfo describes one corpus document (the manifest entry).
type DocInfo = docstore.ManifestDoc

// Option configures a Corpus at Open.
type Option func(*Corpus)

// WithCostModel selects the cost model queries are answered under
// (default: unit costs). The model applies to every query; the corpus
// lower bounds remain valid for any model because Definition 4 requires
// all node costs ≥ 1.
func WithCostModel(m cost.Model) Option {
	return func(c *Corpus) { c.model = m }
}

// WithPQ sets the pq-gram shape used for profile building when creating a
// new corpus (default p=2, q=3). Opening an existing corpus keeps the
// shape recorded in its manifest; profiles of different shapes are not
// comparable.
func WithPQ(p, q int) Option {
	return func(c *Corpus) { c.p, c.q = p, q }
}

// Corpus is an open corpus directory. It is safe for concurrent use:
// queries may run while documents are ingested, and ingests are
// serialized internally. The read path of a query never locks the label
// dictionary — scans share an immutable frozen base and intern
// request-local labels into disposable overlays.
type Corpus struct {
	dir   string
	model cost.Model
	p, q  int

	mu       sync.RWMutex
	man      *docstore.Manifest
	profiles map[int]*docProfile // by document id
	// gen mirrors the manifest's persisted generation: bumped (and
	// written) on every ingest and removal, monotone across restarts.
	gen uint64
	// dict is the frozen corpus base dictionary. It is replaced wholesale
	// on every ingest (clone → intern → freeze → publish), never mutated
	// in place, so snapshots taken under mu stay internally consistent
	// with the manifest and profiles captured alongside them.
	dict *dict.Base
}

// docProfile is the in-memory profile index entry of one document.
type docProfile struct {
	grams *pqgram.Profile
	// labels maps interned label ids (in the corpus base dictionary) to
	// the label's occurrence count in the document.
	labels map[int]int
}

// snapshot is one consistent view of the corpus for a single query run:
// the manifest documents, their profiles, and the frozen dictionary they
// were interned in. All three are published together under mu, so every
// profile id resolves in base and every overlay id above base's watermark
// is guaranteed fresh with respect to the captured documents.
type snapshot struct {
	docs     []DocInfo
	profiles map[int]*docProfile
	base     *dict.Base
}

// snapshot captures the current corpus state for one query run.
func (c *Corpus) snapshot() snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	docs := make([]DocInfo, len(c.man.Docs))
	copy(docs, c.man.Docs)
	profiles := make(map[int]*docProfile, len(c.profiles))
	for id, p := range c.profiles {
		profiles[id] = p
	}
	return snapshot{docs: docs, profiles: profiles, base: c.dict}
}

// Open opens the corpus directory dir, creating it (and an empty
// manifest) if it does not exist, and loads the profile index.
func Open(dir string, opts ...Option) (*Corpus, error) {
	c := &Corpus{
		dir:      dir,
		model:    cost.Unit{},
		p:        2,
		q:        3,
		profiles: map[int]*docProfile{},
	}
	for _, o := range opts {
		o(c)
	}
	if c.p < 1 || c.q < 1 {
		return nil, fmt.Errorf("corpus: pq-gram shape must be ≥ 1, got (%d,%d)", c.p, c.q)
	}
	if err := os.MkdirAll(filepath.Join(dir, docsDir), 0o755); err != nil {
		return nil, err
	}
	manPath := filepath.Join(dir, manifestFile)
	man, err := docstore.ReadManifest(manPath)
	switch {
	case os.IsNotExist(err):
		man = docstore.NewManifest(c.p, c.q)
		if err := docstore.WriteManifest(manPath, man); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	default:
		c.p, c.q = man.P, man.Q
	}
	c.man = man
	c.gen = man.Generation
	base := dict.New()
	for _, d := range man.Docs {
		p, err := c.loadProfile(base, d)
		if err != nil {
			// A missing or corrupt profile degrades that one document to
			// unfiltered scanning (query.go records it in Stats.Unprofiled)
			// rather than making the whole corpus unopenable: profiles are
			// a derived index, not source data.
			continue
		}
		c.profiles[d.ID] = p
	}
	c.dict = base.Freeze()
	return c, nil
}

// Dir returns the corpus directory.
func (c *Corpus) Dir() string { return c.dir }

// Generation returns a counter that increases with every successful
// ingest or removal. It is persisted in the manifest, so it stays
// monotone across restarts and result caches keyed on it (even ones that
// outlive this process) never see a value repeat for a different
// document set.
func (c *Corpus) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// Len returns the number of documents in the corpus.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.man.Docs)
}

// NumDocs returns the document count without cost or staleness — the
// non-blocking count interface shared with remote backends (see
// shard.Client.NumDocs), used by serving-layer liveness probes.
func (c *Corpus) NumDocs() (int, bool) { return c.Len(), true }

// DictLen returns the number of labels in the corpus base dictionary —
// the ingested documents' distinct labels. It is bounded by the corpus
// contents and unaffected by queries: query-only labels live in
// per-request overlays that are dropped when the request completes.
func (c *Corpus) DictLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dict.Len()
}

// Docs returns the manifest entries of all documents in ascending id
// order.
func (c *Corpus) Docs() []DocInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]DocInfo, len(c.man.Docs))
	copy(out, c.man.Docs)
	return out
}

// ParseBracket parses a query in bracket notation.
//
// The query is interned in a fresh copy-on-write overlay over the corpus
// dictionary: labels the corpus knows resolve to their shared ids, labels
// it does not stay local to the returned tree. The shared dictionary
// never grows, no matter how many distinct labels queries carry, and the
// overlay (with every request-local label) is released with the tree.
func (c *Corpus) ParseBracket(s string) (*tree.Tree, error) {
	return tree.Parse(c.queryOverlay(), s)
}

// ParseXML parses an XML query against a fresh overlay of the corpus
// dictionary. See ParseBracket for the overlay lifecycle.
func (c *Corpus) ParseXML(r io.Reader) (*tree.Tree, error) {
	return xmlstream.ParseTree(c.queryOverlay(), r)
}

// queryOverlay returns a fresh request overlay over the current base.
func (c *Corpus) queryOverlay() *dict.Overlay {
	c.mu.RLock()
	base := c.dict
	c.mu.RUnlock()
	return dict.NewOverlay(base)
}

// AddXML ingests an XML document under the given name: the document is
// parsed, persisted as a postorder store, profiled, and added to the
// manifest. Names must be unique within the corpus.
func (c *Corpus) AddXML(name string, r io.Reader) (DocInfo, error) {
	t, err := xmlstream.ParseTree(c.queryOverlay(), r)
	if err != nil {
		return DocInfo{}, fmt.Errorf("corpus: parsing %q: %w", name, err)
	}
	return c.AddTree(name, t)
}

// ImportTree re-interns a tree parsed under any dictionary into an
// overlay of the corpus dictionary, aligning its shared labels with the
// corpus ids. Calling it is never required — TopK and AddTree accept
// trees from any dictionary and re-intern internally — but it remains a
// cheap way to pre-resolve a tree reused across several queries.
func (c *Corpus) ImportTree(t *tree.Tree) (*tree.Tree, error) {
	if t == nil || t.Size() == 0 {
		return nil, fmt.Errorf("corpus: tree must be non-empty")
	}
	return t.Reintern(c.queryOverlay()), nil
}

// AddTree ingests an already-materialized document tree, parsed under any
// dictionary. The document's labels are interned into a private clone of
// the corpus dictionary, which is frozen and published with the updated
// manifest — in-flight queries keep reading the previous frozen
// dictionary undisturbed.
func (c *Corpus) AddTree(name string, t *tree.Tree) (DocInfo, error) {
	if name == "" {
		return DocInfo{}, fmt.Errorf("corpus: document name must not be empty")
	}
	if t == nil || t.Size() == 0 {
		return DocInfo{}, fmt.Errorf("corpus: document must be a non-empty tree")
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.man.Docs {
		if d.Name == name {
			return DocInfo{}, fmt.Errorf("corpus: document %q already exists", name)
		}
	}
	id := c.man.NextID

	// Extend the dictionary copy-on-write: readers of the current frozen
	// base never observe the ingest in progress.
	nd := c.dict.Clone()
	t = t.Reintern(nd)

	grams, err := pqgram.New(t, c.p, c.q)
	if err != nil {
		return DocInfo{}, err
	}
	labels := make(map[int]int)
	for i := 0; i < t.Size(); i++ {
		labels[t.LabelID(i)]++
	}

	info := DocInfo{
		ID:        id,
		Name:      name,
		Nodes:     t.Size(),
		RootLabel: t.Label(t.Root()),
		Store:     filepath.Join(docsDir, fmt.Sprintf("%d.store", id)),
		Profile:   filepath.Join(docsDir, fmt.Sprintf("%d.profile", id)),
	}
	if err := c.writeFile(info.Store, func(w io.Writer) error {
		return docstore.WriteItems(w, nd, postorder.Items(t))
	}); err != nil {
		return DocInfo{}, err
	}
	if err := c.writeFile(info.Profile, func(w io.Writer) error {
		return writeProfile(w, nd, grams, labels)
	}); err != nil {
		return DocInfo{}, err
	}

	man := *c.man
	man.Docs = append(append([]DocInfo{}, c.man.Docs...), info)
	man.NextID = id + 1
	man.Generation = c.gen + 1
	if err := docstore.WriteManifest(filepath.Join(c.dir, manifestFile), &man); err != nil {
		return DocInfo{}, err
	}
	c.man = &man
	c.profiles[id] = &docProfile{grams: grams, labels: labels}
	c.dict = nd.Freeze()
	c.gen = man.Generation
	return info, nil
}

// ErrNotFound reports that a named document does not exist in the corpus;
// test with errors.Is.
var ErrNotFound = errors.New("document not found")

// Remove deletes the named document from the corpus: the manifest entry
// is tombstoned (rewritten without the document — NextID is untouched, so
// ids are never reused and generation-keyed caches stay valid), the
// profile index entry is dropped, and the store and profile files are
// garbage-collected best-effort after the manifest commit.
//
// The shared dictionary is not shrunk: it stays bounded by every label
// the corpus has ever ingested, which keeps in-flight scans (that still
// resolve through it) valid. A query that snapshotted the corpus before
// the Remove may race the file GC and fail its scan of this one document
// with a ScanError; retrying observes the new manifest.
func (c *Corpus) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := -1
	for i, d := range c.man.Docs {
		if d.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("corpus: %w: %q", ErrNotFound, name)
	}
	doomed := c.man.Docs[idx]

	man := *c.man
	man.Docs = append(append([]DocInfo{}, c.man.Docs[:idx]...), c.man.Docs[idx+1:]...)
	man.Generation = c.gen + 1
	if err := docstore.WriteManifest(filepath.Join(c.dir, manifestFile), &man); err != nil {
		return err
	}
	c.man = &man
	delete(c.profiles, doomed.ID)
	c.gen = man.Generation

	// Best-effort file GC: the manifest no longer references the files, so
	// a failed unlink merely leaks disk until the next Remove of the same
	// name... which cannot happen (names are gone) — so report nothing and
	// leave orphans for operators; the manifest is the source of truth.
	os.Remove(filepath.Join(c.dir, doomed.Store))
	os.Remove(filepath.Join(c.dir, doomed.Profile))
	return nil
}

// writeFile writes a corpus-relative file atomically (temp + rename).
func (c *Corpus) writeFile(rel string, fill func(io.Writer) error) error {
	path := filepath.Join(c.dir, rel)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if err := fill(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// writeProfile serializes a document's profile file: the pq-gram profile
// followed by the label histogram, with labels resolved in d.
func writeProfile(w io.Writer, d dict.Dict, grams *pqgram.Profile, labels map[int]int) error {
	if err := grams.Write(w); err != nil {
		return err
	}
	var buf bytes.Buffer
	// Histogram entries in ascending label id order: ids are assigned in
	// first-intern order, so files stay deterministic per ingest history.
	ids := make([]int, 0, len(labels))
	for id := range labels {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort: histograms are small
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	varint.Write(&buf, uint64(len(ids)))
	for _, id := range ids {
		label := d.Label(id)
		varint.Write(&buf, uint64(len(label)))
		buf.WriteString(label)
		varint.Write(&buf, uint64(labels[id]))
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// loadProfile reads a document's profile file into the in-memory index,
// interning its labels into base (the corpus dictionary under
// construction at Open).
func (c *Corpus) loadProfile(base *dict.Base, d DocInfo) (*docProfile, error) {
	f, err := os.Open(filepath.Join(c.dir, d.Profile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	grams, err := pqgram.ReadProfile(br)
	if err != nil {
		return nil, err
	}
	if grams.P() != c.p || grams.Q() != c.q {
		return nil, fmt.Errorf("profile shape (%d,%d) does not match corpus (%d,%d)",
			grams.P(), grams.Q(), c.p, c.q)
	}
	n, err := varint.Read(br)
	if err != nil {
		return nil, fmt.Errorf("reading label histogram size: %w", err)
	}
	labels := make(map[int]int, min(n, 4096))
	for i := uint64(0); i < n; i++ {
		ln, err := varint.Read(br)
		if err != nil {
			return nil, fmt.Errorf("reading histogram label %d: %w", i, err)
		}
		if ln > uint64(d.Nodes)*64+1024 {
			// A label longer than the document could plausibly hold is
			// corruption; refuse before allocating.
			return nil, fmt.Errorf("histogram label %d claims %d bytes", i, ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("reading histogram label %d: %w", i, err)
		}
		count, err := varint.Read(br)
		if err != nil {
			return nil, fmt.Errorf("reading histogram count %d: %w", i, err)
		}
		if count < 1 || count > uint64(d.Nodes) {
			return nil, fmt.Errorf("histogram label %q has count %d of %d nodes", buf, count, d.Nodes)
		}
		labels[base.Intern(string(buf))] = int(count)
	}
	return &docProfile{grams: grams, labels: labels}, nil
}
