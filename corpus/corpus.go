// Package corpus manages a directory of persisted documents and answers
// top-k approximate subtree matching queries across all of them — the
// multi-document serving layer above the single-document tasm library.
//
// A corpus directory contains a manifest (manifest.json, documented in
// the docstore package) and, per ingested document, a binary postorder
// store plus a profile file built at ingest:
//
//	docs/<id>.store    – postorder queue + label dictionary (docstore format)
//	docs/<id>.profile  – pq-gram profile, then a label histogram
//
// # Profile file format
//
// Since PR 8 profiles are written inside a checksummed container (v2):
//
//	magic "TASMPR2\n"
//	payload (the legacy v1 profile format below)
//	crc32c — 4-byte little-endian CRC-32C trailer over magic + payload
//
// The payload, and the entire pre-PR-8 profile file format (still
// readable), is, with all integers unsigned LEB128 varints:
//
//	pq-gram profile as written by pqgram.(*Profile).Write:
//	    magic "TASMPF1\n", p, q, gramCount, gramCount × (hash, mult)
//	labelCount, then labelCount × (byteLen, bytes, count)
//
// The label histogram maps each distinct label to its number of
// occurrences in the document. Legacy files are distinguished by their
// leading "TASMPF1\n" pqgram magic.
//
// # Durability and integrity
//
// Every file commit — store, profile, manifest — goes through the
// atomicio protocol (temp file, fsync, rename, parent directory fsync),
// so a crash at any instant leaves each path either at its previous
// content or its new content, never torn. Open sweeps orphaned temp
// files and unreferenced store/profile files left by crashes, then (per
// WithVerifyMode) checksums every referenced file; documents that fail
// verification are quarantined — their files are moved to the corpus's
// quarantine/ directory and the manifest is rewritten without them under
// a bumped generation — so one rotted file costs one document, not the
// corpus. See Verify for the on-demand scrub.
//
// # Dictionary lifecycle
//
// The corpus label dictionary is immutable between ingests. Open loads
// every document's labels into a mutable dictionary and freezes it; an
// ingest clones the frozen dictionary, interns the new document's labels
// into the clone, freezes the clone and publishes it — readers of the old
// dictionary are never disturbed, and every previously assigned
// identifier stays valid.
//
// Queries never touch the shared dictionary at all: each TopK run
// resolves labels through a request-scoped copy-on-write overlay
// (dict.Overlay) that reads through the frozen base and interns labels
// the corpus has never seen with identifiers above the base's watermark.
// Dropping the overlay at the end of the request releases those labels in
// O(1), so a long-running server answering unboundedly many distinct
// query labels holds a dictionary bounded by its documents' labels — and
// concurrent scans share the frozen base lock-free.
//
// # Query answering
//
// TopK(q, k) ranks the subtrees of every corpus document in one shared
// ranking. The profile index built at ingest drives a filter-and-verify
// scan:
//
//   - Ordering (heuristic): documents are scanned in ascending pq-gram
//     distance to the query, so documents likely to contain close matches
//     fill the ranking early and tighten the running k-th distance.
//   - Pruning (sound): for each document the label histogram yields a
//     lower bound on the distance of ANY of its subtrees — every query
//     node whose label occurs in the query more often than in the whole
//     document costs at least 1 in any edit mapping (Definition 4 gives
//     all node costs ≥ 1). A document whose bound strictly exceeds the
//     current k-th distance is skipped without being opened.
//
// The pq-gram distance itself is only a heuristic for ordering — it is
// not a lower bound of the unit-cost tree edit distance — so skipping
// never depends on it; results are exactly those of an exhaustive scan
// of every document, in deterministic (distance, document, position)
// order.
package corpus

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"tasm/internal/atomicio"
	"tasm/internal/core"
	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/docstore"
	"tasm/internal/mmapio"
	"tasm/internal/postorder"
	"tasm/internal/pqgram"
	"tasm/internal/tree"
	"tasm/internal/varint"
	"tasm/internal/xmlstream"
)

// manifestFile is the manifest's name inside the corpus directory.
const manifestFile = "manifest.json"

// docsDir is the subdirectory holding store and profile files.
const docsDir = "docs"

// quarantineDir is the subdirectory corrupt documents' files are moved
// to. Nothing in it is ever read or deleted by the corpus: it exists for
// operators to inspect, restore from backup, or discard.
const quarantineDir = "quarantine"

// profileMagicV2 marks the checksummed profile container; legacy profile
// files start directly with the pqgram payload magic "TASMPF1\n".
const profileMagicV2 = "TASMPR2\n"

// crcTable is CRC-32C (Castagnoli), matching the docstore trailer.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DocInfo describes one corpus document (the manifest entry).
type DocInfo = docstore.ManifestDoc

// Option configures a Corpus at Open.
type Option func(*Corpus)

// WithCostModel selects the cost model queries are answered under
// (default: unit costs). The model applies to every query; the corpus
// lower bounds remain valid for any model because Definition 4 requires
// all node costs ≥ 1.
func WithCostModel(m cost.Model) Option {
	return func(c *Corpus) { c.model = m }
}

// WithPQ sets the pq-gram shape used for profile building when creating a
// new corpus (default p=2, q=3). Opening an existing corpus keeps the
// shape recorded in its manifest; profiles of different shapes are not
// comparable.
func WithPQ(p, q int) Option {
	return func(c *Corpus) { c.p, c.q = p, q }
}

// VerifyMode selects what Open does about file integrity.
type VerifyMode int

const (
	// VerifyScrub (the default) checksums every referenced store and
	// profile file at Open and quarantines documents that fail — the
	// corpus opens and serves exact results over the surviving set.
	VerifyScrub VerifyMode = iota
	// VerifyStrict fails Open on the first corrupt document instead of
	// quarantining — for operators who want a damaged corpus to refuse to
	// serve rather than silently shrink.
	VerifyStrict
	// VerifyOff skips content verification at Open (the orphan sweep
	// still runs; it is part of crash recovery, not integrity checking).
	VerifyOff
)

// WithVerifyMode selects the Open-time integrity behaviour (default
// VerifyScrub). The explicit Verify method always scrubs, regardless of
// mode.
func WithVerifyMode(m VerifyMode) Option {
	return func(c *Corpus) { c.mode = m }
}

// WithLogger sets the logger for scrub and quarantine warnings (default
// slog.Default()).
func WithLogger(l *slog.Logger) Option {
	return func(c *Corpus) { c.log = l }
}

// WithFS substitutes the filesystem used for durable commits — the
// crash-injection seam. Production corpora use atomicio.OS; tests wrap
// it in a crashinject.Injector to script a crash at every commit step.
// Reads are not routed through fs: a crashed process's recovery path is
// exercised by reopening with the real filesystem.
func WithFS(fs atomicio.FS) Option {
	return func(c *Corpus) { c.fs = fs }
}

// WithMmap selects how committed store files are loaded for the serving
// set (default true: memory-mapped read-only, so scans are zero-copy,
// the kernel pages store bytes on demand, and a corpus larger than RAM
// still opens near-instantly). false reads each store whole into the
// heap instead — the portable fallback, behind the same cached-image
// interface, and the equivalence oracle for the mapped path. Either
// way the query path never re-opens or re-parses a store; a store that
// fails to load at all degrades that one document to per-query
// streaming reads.
func WithMmap(on bool) Option {
	return func(c *Corpus) { c.mmap = on }
}

// Corpus is an open corpus directory. It is safe for concurrent use:
// queries may run while documents are ingested, and ingests are
// serialized internally. The read path of a query never locks the label
// dictionary — scans share an immutable frozen base and intern
// request-local labels into disposable overlays.
type Corpus struct {
	dir   string
	model cost.Model
	p, q  int
	fs    atomicio.FS
	log   *slog.Logger
	mode  VerifyMode
	mmap  bool

	mu       sync.RWMutex
	man      *docstore.Manifest
	profiles map[int]*docProfile // by document id
	// stores caches each document's loaded store: the mapped (or, under
	// WithMmap(false), heap-copied) bytes, the header parsed once, and
	// the label remap into the base dictionary. Entries are created when
	// a document enters the serving set (Open, AddTree) and deleted when
	// it leaves (Remove, quarantine); a document that fails to load has
	// no entry and is served by per-query streaming reads instead. The
	// remap never goes stale: label ids are assigned once and preserved
	// by every dictionary clone, so a remap computed at load time stays
	// valid under every later base and every request overlay.
	stores map[int]*docStore
	// gen mirrors the manifest's persisted generation: bumped (and
	// written) on every ingest and removal, monotone across restarts.
	gen uint64
	// dict is the frozen corpus base dictionary. It is replaced wholesale
	// on every ingest (clone → intern → freeze → publish), never mutated
	// in place, so snapshots taken under mu stay internally consistent
	// with the manifest and profiles captured alongside them.
	dict *dict.Base
	// snap is the prebuilt immutable snapshot queries run against,
	// rebuilt by publishLocked after every mutation (generation bump).
	// Serving a query is one RLock'd pointer read — no copying.
	snap *snapshot

	// Per-corpus pools of query-lifetime scan state: plan slices, image
	// readers, and core scan scratch (distance computer, ring buffer,
	// candidate view). Everything a pool hands out is reset before use
	// and returned at end of run, so steady-state queries allocate O(k),
	// not O(corpus).
	planPool         sync.Pool // *[]scanDoc
	batchPool        sync.Pool // *[]batchDoc
	readerPool       sync.Pool // *docstore.ImageReader
	scratchPool      sync.Pool // *core.ScanScratch
	batchScratchPool sync.Pool // *core.BatchScratch
}

// docProfile is the in-memory profile index entry of one document.
type docProfile struct {
	grams *pqgram.Profile
	// labels maps interned label ids (in the corpus base dictionary) to
	// the label's occurrence count in the document.
	labels map[int]int
}

// docStore is the cached, query-ready form of one document's store file:
// region keeps the bytes alive (and unmaps them via finalizer once no
// snapshot references them), img is the header parsed once, remap
// translates stored label ids to base-dictionary ids. Immutable after
// construction; shared by every snapshot that includes the document.
type docStore struct {
	region *mmapio.Region
	img    *docstore.Image
	remap  []int
}

// snapshot is one consistent view of the corpus for a single query run:
// the manifest documents, their profiles, their loaded stores, and the
// frozen dictionary they were interned in. All of it is published
// together as one immutable value, so every profile and remap id
// resolves in base and every overlay id above base's watermark is
// guaranteed fresh with respect to the captured documents. Queries that
// captured a snapshot before a Remove or quarantine keep scanning the
// old mapped bytes — a mapping keeps its inode alive past rename and
// unlink — and the region is unmapped by GC once the last such query
// drops it.
type snapshot struct {
	docs        []DocInfo
	profiles    map[int]*docProfile
	stores      map[int]*docStore
	base        *dict.Base
	quarantined int
}

// snapshot returns the prebuilt immutable snapshot for one query run.
func (c *Corpus) snapshot() *snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.snap
}

// publishLocked rebuilds the immutable snapshot from the current
// manifest, profiles, stores, and dictionary. Call with mu held after
// every mutation; during Open (c.dict still nil) it is a no-op — Open
// publishes once at the end.
func (c *Corpus) publishLocked() {
	if c.dict == nil {
		return
	}
	st := &snapshot{
		docs:        c.man.Docs,
		profiles:    make(map[int]*docProfile, len(c.profiles)),
		stores:      make(map[int]*docStore, len(c.stores)),
		base:        c.dict,
		quarantined: c.man.Quarantined,
	}
	for id, p := range c.profiles {
		st.profiles[id] = p
	}
	for id, s := range c.stores {
		st.stores[id] = s
	}
	c.snap = st
}

// loadStore maps (or, under WithMmap(false), reads) a committed store
// file, parses its header, and interns its label table into base —
// which must still be mutable (Open) or be a private pre-freeze clone
// (AddTree). Failures are not fatal: the document falls back to
// per-query streaming reads, and the degradation is logged.
func (c *Corpus) loadStore(base *dict.Base, d DocInfo) *docStore {
	open := mmapio.Map
	if !c.mmap {
		open = mmapio.ReadFile
	}
	region, err := open(filepath.Join(c.dir, d.Store))
	if err == nil {
		var img *docstore.Image
		if img, err = docstore.ParseImage(region.Bytes()); err == nil {
			return &docStore{region: region, img: img, remap: img.Remap(base)}
		}
		region.Close()
	}
	c.log.Warn("corpus: store not cacheable, document degrades to streaming reads",
		"dir", c.dir, "doc", d.Name, "id", d.ID, "err", err)
	return nil
}

// MappedBytes returns the total size of store bytes the corpus currently
// serves from read-only file mappings — memory visible to the process
// but owned by the page cache, not the heap. Heap-loaded stores (the
// WithMmap(false) fallback and non-unix platforms) do not count.
func (c *Corpus) MappedBytes() int64 {
	st := c.snapshot()
	var n int64
	for _, s := range st.stores {
		if s.region.Mapped() {
			n += int64(s.region.Len())
		}
	}
	return n
}

// Open opens the corpus directory dir, creating it (and an empty
// manifest) if it does not exist, sweeps crash debris, verifies file
// integrity (per WithVerifyMode), and loads the profile index.
func Open(dir string, opts ...Option) (*Corpus, error) {
	c := &Corpus{
		dir:      dir,
		model:    cost.Unit{},
		p:        2,
		q:        3,
		fs:       atomicio.OS,
		log:      slog.Default(),
		mmap:     true,
		profiles: map[int]*docProfile{},
		stores:   map[int]*docStore{},
	}
	c.planPool.New = func() any { return new([]scanDoc) }
	c.batchPool.New = func() any { return new([]batchDoc) }
	c.readerPool.New = func() any { return new(docstore.ImageReader) }
	c.scratchPool.New = func() any { return new(core.ScanScratch) }
	c.batchScratchPool.New = func() any { return new(core.BatchScratch) }
	for _, o := range opts {
		o(c)
	}
	if c.p < 1 || c.q < 1 {
		return nil, fmt.Errorf("corpus: pq-gram shape must be ≥ 1, got (%d,%d)", c.p, c.q)
	}
	if err := os.MkdirAll(filepath.Join(dir, docsDir), 0o755); err != nil {
		return nil, err
	}
	manPath := filepath.Join(dir, manifestFile)
	man, err := docstore.ReadManifest(manPath)
	switch {
	case os.IsNotExist(err):
		man = docstore.NewManifest(c.p, c.q)
		if err := docstore.WriteManifestFS(c.fs, manPath, man); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	default:
		c.p, c.q = man.P, man.Q
	}
	c.man = man
	c.gen = man.Generation
	// Crash recovery: a crash can strand temp files and committed store or
	// profile files whose manifest commit never happened. The manifest is
	// the source of truth, so anything it does not reference is debris.
	c.sweepOrphans()
	if c.mode != VerifyOff {
		if _, err := c.verifyLocked(c.mode == VerifyStrict); err != nil {
			return nil, err
		}
	}
	base := dict.New()
	for _, d := range c.man.Docs {
		p, err := c.loadProfile(base, d)
		if err != nil {
			// A missing or (under VerifyOff) unreadable profile degrades
			// that one document to unfiltered scanning (query.go records it
			// in Stats.Unprofiled) rather than making the whole corpus
			// unopenable: profiles are a derived index, not source data.
			// Corrupt profiles never reach this point under VerifyScrub —
			// the scrub above has already quarantined those documents.
			continue
		}
		c.profiles[d.ID] = p
	}
	// Load every surviving store into the cache: map the file, parse the
	// header once, intern the label table into the still-mutable base.
	// For a profiled document the store's labels are a subset of the
	// profile's, so the dictionary does not grow here; an unprofiled
	// document contributes its labels now instead of per query. This is
	// the whole cold start — no store's item bytes are touched.
	for _, d := range c.man.Docs {
		if s := c.loadStore(base, d); s != nil {
			c.stores[d.ID] = s
		}
	}
	c.dict = base.Freeze()
	c.publishLocked()
	return c, nil
}

// sweepOrphans removes crash debris: atomicio temp files anywhere in the
// corpus, legacy manifest temp files, and files in docs/ the manifest
// does not reference (a crash between a file commit and its manifest
// commit, or a failed unlink after a removal). Only called while the
// corpus is unpublished (Open) or under mu.
func (c *Corpus) sweepOrphans() {
	removed := 0
	if ents, err := os.ReadDir(c.dir); err == nil {
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), atomicio.TempPrefix) || strings.HasPrefix(e.Name(), ".manifest-") {
				if os.Remove(filepath.Join(c.dir, e.Name())) == nil {
					removed++
				}
			}
		}
	}
	ref := make(map[string]bool, 2*len(c.man.Docs))
	for _, d := range c.man.Docs {
		ref[filepath.Base(d.Store)] = true
		ref[filepath.Base(d.Profile)] = true
	}
	if ents, err := os.ReadDir(filepath.Join(c.dir, docsDir)); err == nil {
		for _, e := range ents {
			if e.IsDir() || ref[e.Name()] {
				continue
			}
			if os.Remove(filepath.Join(c.dir, docsDir, e.Name())) == nil {
				removed++
			}
		}
	}
	if removed > 0 {
		c.log.Warn("corpus: swept orphaned files left by an interrupted operation",
			"dir", c.dir, "removed", removed)
	}
}

// VerifyReport summarizes one integrity scrub.
type VerifyReport struct {
	// Checked is the number of documents whose files were verified.
	Checked int
	// Quarantined lists the names of documents this pass quarantined.
	Quarantined []string
}

// errProfileMissing marks a document whose profile file does not exist —
// a degradation (unfiltered scan), not corruption, so it never
// quarantines; see the dictionary-lifecycle notes on Open.
var errProfileMissing = errors.New("profile file missing")

// Verify scrubs every document in the corpus: each store and profile
// file is read whole, its CRC-32C trailer verified, and its payload
// structurally parsed. Documents that fail are quarantined — files moved
// to quarantine/, manifest rewritten without them under a bumped
// generation — and reported. In-flight queries that snapshotted the
// corpus earlier are undisturbed; the shared dictionary is not shrunk
// (as with Remove).
func (c *Corpus) Verify() (VerifyReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verifyLocked(false)
}

// verifyLocked runs the scrub with mu held (or the corpus unpublished,
// during Open). In strict mode the first corrupt document is an error
// and nothing is quarantined.
func (c *Corpus) verifyLocked(strict bool) (VerifyReport, error) {
	var rep VerifyReport
	var doomed []DocInfo
	for _, d := range c.man.Docs {
		rep.Checked++
		err := c.checkDoc(d)
		if err == nil || errors.Is(err, errProfileMissing) {
			continue
		}
		if strict {
			return rep, fmt.Errorf("corpus: document %q failed verification: %w", d.Name, err)
		}
		c.log.Warn("corpus: quarantining corrupt document",
			"dir", c.dir, "doc", d.Name, "id", d.ID, "err", err)
		doomed = append(doomed, d)
		rep.Quarantined = append(rep.Quarantined, d.Name)
	}
	if len(doomed) > 0 {
		if err := c.quarantineLocked(doomed); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// checkDoc verifies one document's files. A nil return means both files
// are intact; errProfileMissing means the store is intact and the
// profile file is absent; anything else is corruption.
func (c *Corpus) checkDoc(d DocInfo) error {
	data, err := os.ReadFile(filepath.Join(c.dir, d.Store))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := docstore.Verify(data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	pdata, err := os.ReadFile(filepath.Join(c.dir, d.Profile))
	if os.IsNotExist(err) {
		return errProfileMissing
	}
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	payload, err := profilePayload(pdata)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	// Structural parse into a throwaway dictionary: checksum-valid (or
	// legacy, checksum-less) bytes must also decode, or the document
	// cannot serve.
	if _, err := c.parseProfile(dict.New(), d, payload); err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	return nil
}

// quarantineLocked moves the doomed documents' files into quarantine/
// and commits a manifest without them. File moves happen first: if the
// process dies between move and manifest commit, the next Open finds
// the stores missing and re-quarantines the same documents — the two
// orders converge, one of them needs no special casing.
func (c *Corpus) quarantineLocked(doomed []DocInfo) error {
	qdir := filepath.Join(c.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	dead := make(map[int]bool, len(doomed))
	for _, d := range doomed {
		dead[d.ID] = true
		// Best-effort: a file may already be missing (that can be why the
		// document is being quarantined).
		os.Rename(filepath.Join(c.dir, d.Store), filepath.Join(qdir, filepath.Base(d.Store)))
		os.Rename(filepath.Join(c.dir, d.Profile), filepath.Join(qdir, filepath.Base(d.Profile)))
	}
	man := *c.man
	man.Docs = make([]DocInfo, 0, len(c.man.Docs)-len(doomed))
	for _, d := range c.man.Docs {
		if !dead[d.ID] {
			man.Docs = append(man.Docs, d)
		}
	}
	man.Generation = c.gen + 1
	man.Quarantined = c.man.Quarantined + len(doomed)
	if err := docstore.WriteManifestFS(c.fs, filepath.Join(c.dir, manifestFile), &man); err != nil {
		return err
	}
	c.man = &man
	c.gen = man.Generation
	for id := range dead {
		delete(c.profiles, id)
		// Drop the cached store; queries that snapshotted before the
		// quarantine keep their reference and the mapping keeps the
		// (renamed) inode readable until they finish.
		delete(c.stores, id)
	}
	c.publishLocked()
	return nil
}

// Quarantined returns the number of documents quarantined over the
// corpus's lifetime, as recorded in the manifest.
func (c *Corpus) Quarantined() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.man.Quarantined
}

// profilePayload validates a profile file image's container and returns
// the inner payload. v2 containers have their CRC-32C trailer verified
// (any single flipped byte is detected) and stripped; legacy files —
// recognized by their leading pqgram payload magic — pass through, their
// only check being the structural parse the caller performs.
func profilePayload(data []byte) ([]byte, error) {
	if len(data) >= len(profileMagicV2) && string(data[:len(profileMagicV2)]) == profileMagicV2 {
		if len(data) < len(profileMagicV2)+4 {
			return nil, fmt.Errorf("v2 profile of %d bytes is too short for a checksum trailer", len(data))
		}
		body := data[:len(data)-4]
		want := binary.LittleEndian.Uint32(data[len(data)-4:])
		if got := crc32.Checksum(body, crcTable); got != want {
			return nil, fmt.Errorf("%w: crc32c %08x, trailer says %08x", docstore.ErrChecksum, got, want)
		}
		return data[len(profileMagicV2) : len(data)-4], nil
	}
	return data, nil
}

// Dir returns the corpus directory.
func (c *Corpus) Dir() string { return c.dir }

// Generation returns a counter that increases with every successful
// ingest or removal. It is persisted in the manifest, so it stays
// monotone across restarts and result caches keyed on it (even ones that
// outlive this process) never see a value repeat for a different
// document set.
func (c *Corpus) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// Len returns the number of documents in the corpus.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.man.Docs)
}

// NumDocs returns the document count without cost or staleness — the
// non-blocking count interface shared with remote backends (see
// shard.Client.NumDocs), used by serving-layer liveness probes.
func (c *Corpus) NumDocs() (int, bool) { return c.Len(), true }

// DictLen returns the number of labels in the corpus base dictionary —
// the ingested documents' distinct labels. It is bounded by the corpus
// contents and unaffected by queries: query-only labels live in
// per-request overlays that are dropped when the request completes.
func (c *Corpus) DictLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dict.Len()
}

// Docs returns the manifest entries of all documents in ascending id
// order.
func (c *Corpus) Docs() []DocInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]DocInfo, len(c.man.Docs))
	copy(out, c.man.Docs)
	return out
}

// ParseBracket parses a query in bracket notation.
//
// The query is interned in a fresh copy-on-write overlay over the corpus
// dictionary: labels the corpus knows resolve to their shared ids, labels
// it does not stay local to the returned tree. The shared dictionary
// never grows, no matter how many distinct labels queries carry, and the
// overlay (with every request-local label) is released with the tree.
func (c *Corpus) ParseBracket(s string) (*tree.Tree, error) {
	return tree.Parse(c.queryOverlay(), s)
}

// ParseXML parses an XML query against a fresh overlay of the corpus
// dictionary. See ParseBracket for the overlay lifecycle.
func (c *Corpus) ParseXML(r io.Reader) (*tree.Tree, error) {
	return xmlstream.ParseTree(c.queryOverlay(), r)
}

// queryOverlay returns a fresh request overlay over the current base.
func (c *Corpus) queryOverlay() *dict.Overlay {
	c.mu.RLock()
	base := c.dict
	c.mu.RUnlock()
	return dict.NewOverlay(base)
}

// AddXML ingests an XML document under the given name: the document is
// parsed, persisted as a postorder store, profiled, and added to the
// manifest. Names must be unique within the corpus.
func (c *Corpus) AddXML(name string, r io.Reader) (DocInfo, error) {
	t, err := xmlstream.ParseTree(c.queryOverlay(), r)
	if err != nil {
		return DocInfo{}, fmt.Errorf("corpus: parsing %q: %w", name, err)
	}
	return c.AddTree(name, t)
}

// ImportTree re-interns a tree parsed under any dictionary into an
// overlay of the corpus dictionary, aligning its shared labels with the
// corpus ids. Calling it is never required — TopK and AddTree accept
// trees from any dictionary and re-intern internally — but it remains a
// cheap way to pre-resolve a tree reused across several queries.
func (c *Corpus) ImportTree(t *tree.Tree) (*tree.Tree, error) {
	if t == nil || t.Size() == 0 {
		return nil, fmt.Errorf("corpus: tree must be non-empty")
	}
	return t.Reintern(c.queryOverlay()), nil
}

// AddTree ingests an already-materialized document tree, parsed under any
// dictionary. The document's labels are interned into a private clone of
// the corpus dictionary, which is frozen and published with the updated
// manifest — in-flight queries keep reading the previous frozen
// dictionary undisturbed.
func (c *Corpus) AddTree(name string, t *tree.Tree) (DocInfo, error) {
	if name == "" {
		return DocInfo{}, fmt.Errorf("corpus: document name must not be empty")
	}
	if t == nil || t.Size() == 0 {
		return DocInfo{}, fmt.Errorf("corpus: document must be a non-empty tree")
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.man.Docs {
		if d.Name == name {
			return DocInfo{}, fmt.Errorf("corpus: document %q already exists", name)
		}
	}
	id := c.man.NextID

	// Extend the dictionary copy-on-write: readers of the current frozen
	// base never observe the ingest in progress.
	nd := c.dict.Clone()
	t = t.Reintern(nd)

	grams, err := pqgram.New(t, c.p, c.q)
	if err != nil {
		return DocInfo{}, err
	}
	labels := make(map[int]int)
	for i := 0; i < t.Size(); i++ {
		labels[t.LabelID(i)]++
	}

	info := DocInfo{
		ID:        id,
		Name:      name,
		Nodes:     t.Size(),
		RootLabel: t.Label(t.Root()),
		Store:     filepath.Join(docsDir, fmt.Sprintf("%d.store", id)),
		Profile:   filepath.Join(docsDir, fmt.Sprintf("%d.profile", id)),
	}
	// Until the manifest commits below, the store and profile files are
	// unreferenced — so every error path unlinks whatever this ingest has
	// committed so far, rather than leaving debris for the next Open's
	// sweep. (A crash still leaves debris; the sweep remains the backstop.)
	if err := c.writeFile(info.Store, func(w io.Writer) error {
		return docstore.WriteItems(w, nd, postorder.Items(t))
	}); err != nil {
		return DocInfo{}, err
	}
	if err := c.writeFile(info.Profile, func(w io.Writer) error {
		return writeProfile(w, nd, grams, labels)
	}); err != nil {
		c.removeFiles(info.Store)
		return DocInfo{}, err
	}

	man := *c.man
	man.Docs = append(append([]DocInfo{}, c.man.Docs...), info)
	man.NextID = id + 1
	man.Generation = c.gen + 1
	if err := docstore.WriteManifestFS(c.fs, filepath.Join(c.dir, manifestFile), &man); err != nil {
		c.removeFiles(info.Store, info.Profile)
		return DocInfo{}, err
	}
	c.man = &man
	c.profiles[id] = &docProfile{grams: grams, labels: labels}
	// Cache the just-committed store before freezing the clone, so its
	// label table interns into nd (a no-op: the document's labels are
	// already there). The file is read back rather than re-encoded from t
	// — the cache must serve exactly the committed bytes.
	if s := c.loadStore(nd, info); s != nil {
		c.stores[id] = s
	}
	c.dict = nd.Freeze()
	c.gen = man.Generation
	c.publishLocked()
	return info, nil
}

// ErrNotFound reports that a named document does not exist in the corpus;
// test with errors.Is.
var ErrNotFound = errors.New("document not found")

// Remove deletes the named document from the corpus: the manifest entry
// is tombstoned (rewritten without the document — NextID is untouched, so
// ids are never reused and generation-keyed caches stay valid), the
// profile index entry is dropped, and the store and profile files are
// garbage-collected best-effort after the manifest commit.
//
// The shared dictionary is not shrunk: it stays bounded by every label
// the corpus has ever ingested, which keeps in-flight scans (that still
// resolve through it) valid. A query that snapshotted the corpus before
// the Remove still answers over the old document set: its snapshot holds
// the document's mapped store, which outlives the unlink.
func (c *Corpus) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := -1
	for i, d := range c.man.Docs {
		if d.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("corpus: %w: %q", ErrNotFound, name)
	}
	doomed := c.man.Docs[idx]

	man := *c.man
	man.Docs = append(append([]DocInfo{}, c.man.Docs[:idx]...), c.man.Docs[idx+1:]...)
	man.Generation = c.gen + 1
	if err := docstore.WriteManifestFS(c.fs, filepath.Join(c.dir, manifestFile), &man); err != nil {
		return err
	}
	c.man = &man
	delete(c.profiles, doomed.ID)
	delete(c.stores, doomed.ID)
	c.gen = man.Generation
	c.publishLocked()

	// Best-effort file GC: the manifest no longer references the files, so
	// a failed unlink merely leaks disk until the next Open's orphan sweep
	// collects it; the manifest is the source of truth. A query that
	// snapshotted the corpus before this Remove is undisturbed: its
	// snapshot still references the cached store, whose mapping keeps the
	// unlinked inode readable until the last such query drops it (only a
	// document that had degraded to streaming reads can race the GC and
	// fail with a ScanError).
	c.removeFiles(doomed.Store, doomed.Profile)
	return nil
}

// writeFile durably commits a corpus-relative file through the atomicio
// protocol against the corpus's (possibly crash-injected) filesystem.
func (c *Corpus) writeFile(rel string, fill func(io.Writer) error) error {
	return atomicio.WriteFile(c.fs, filepath.Join(c.dir, rel), fill)
}

// removeFiles best-effort unlinks corpus-relative files — the cleanup of
// AddTree's error paths. Failures are ignored: the manifest does not
// reference these files, so anything left behind is debris the next
// Open's orphan sweep collects.
func (c *Corpus) removeFiles(rels ...string) {
	for _, rel := range rels {
		c.fs.Remove(filepath.Join(c.dir, rel))
	}
}

// writeProfile serializes a document's profile file: the v2 container
// magic, the pq-gram profile, the label histogram, and the CRC-32C
// trailer, with labels resolved in d.
func writeProfile(w io.Writer, d dict.Dict, grams *pqgram.Profile, labels map[int]int) error {
	h := crc32.New(crcTable)
	mw := io.MultiWriter(w, h)
	if _, err := io.WriteString(mw, profileMagicV2); err != nil {
		return err
	}
	if err := grams.Write(mw); err != nil {
		return err
	}
	var buf bytes.Buffer
	// Histogram entries in ascending label id order: ids are assigned in
	// first-intern order, so files stay deterministic per ingest history.
	ids := make([]int, 0, len(labels))
	for id := range labels {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort: histograms are small
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	varint.Write(&buf, uint64(len(ids)))
	for _, id := range ids {
		label := d.Label(id)
		varint.Write(&buf, uint64(len(label)))
		buf.WriteString(label)
		varint.Write(&buf, uint64(labels[id]))
	}
	if _, err := mw.Write(buf.Bytes()); err != nil {
		return err
	}
	// The trailer covers everything hashed so far and goes straight to w:
	// it must not feed back into the hash.
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

// loadProfile reads a document's profile file into the in-memory index,
// interning its labels into base (the corpus dictionary under
// construction at Open).
func (c *Corpus) loadProfile(base *dict.Base, d DocInfo) (*docProfile, error) {
	data, err := os.ReadFile(filepath.Join(c.dir, d.Profile))
	if err != nil {
		return nil, err
	}
	payload, err := profilePayload(data)
	if err != nil {
		return nil, err
	}
	return c.parseProfile(base, d, payload)
}

// parseProfile decodes a profile payload (container already stripped),
// interning its labels into base.
func (c *Corpus) parseProfile(base *dict.Base, d DocInfo, payload []byte) (*docProfile, error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	grams, err := pqgram.ReadProfile(br)
	if err != nil {
		return nil, err
	}
	if grams.P() != c.p || grams.Q() != c.q {
		return nil, fmt.Errorf("profile shape (%d,%d) does not match corpus (%d,%d)",
			grams.P(), grams.Q(), c.p, c.q)
	}
	n, err := varint.Read(br)
	if err != nil {
		return nil, fmt.Errorf("reading label histogram size: %w", err)
	}
	labels := make(map[int]int, min(n, 4096))
	for i := uint64(0); i < n; i++ {
		ln, err := varint.Read(br)
		if err != nil {
			return nil, fmt.Errorf("reading histogram label %d: %w", i, err)
		}
		if ln > uint64(d.Nodes)*64+1024 {
			// A label longer than the document could plausibly hold is
			// corruption; refuse before allocating.
			return nil, fmt.Errorf("histogram label %d claims %d bytes", i, ln)
		}
		buf := make([]byte, ln)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("reading histogram label %d: %w", i, err)
		}
		count, err := varint.Read(br)
		if err != nil {
			return nil, fmt.Errorf("reading histogram count %d: %w", i, err)
		}
		if count < 1 || count > uint64(d.Nodes) {
			return nil, fmt.Errorf("histogram label %q has count %d of %d nodes", buf, count, d.Nodes)
		}
		labels[base.Intern(string(buf))] = int(count)
	}
	return &docProfile{grams: grams, labels: labels}, nil
}
