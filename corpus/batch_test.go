package corpus_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tasm/corpus"
	"tasm/internal/dict"
	"tasm/internal/tree"
)

// TestTopKBatchEquivalence: a batch run must return, for every query,
// exactly what an individual TopK run returns — the batch only changes
// how many times the documents are read, never the rankings.
func TestTopKBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 3; trial++ {
		c, err := corpus.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		scratch := dict.New()
		nDocs := 3 + rng.Intn(3)
		for i := 0; i < nDocs; i++ {
			doc := tree.Random(scratch, rng, tree.DefaultRandomConfig(40+rng.Intn(100)))
			if _, err := c.AddTree(fmt.Sprintf("doc%d", i), doc); err != nil {
				t.Fatal(err)
			}
		}
		queries := make([]*tree.Tree, 3+rng.Intn(3))
		for i := range queries {
			queries[i] = tree.Random(scratch, rng, tree.DefaultRandomConfig(3+rng.Intn(6)))
		}
		k := 1 + rng.Intn(6)

		var stats corpus.Stats
		batch, err := c.TopKBatch(context.Background(), queries, k, corpus.WithStats(&stats))
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(queries) {
			t.Fatalf("batch returned %d result sets for %d queries", len(batch), len(queries))
		}
		if stats.Scanned+stats.Skipped != nDocs {
			t.Errorf("trial %d: scanned %d + skipped %d != %d docs", trial, stats.Scanned, stats.Skipped, nDocs)
		}
		if stats.BaseDictLabels != c.DictLen() {
			t.Errorf("BaseDictLabels = %d, want %d", stats.BaseDictLabels, c.DictLen())
		}
		for i, q := range queries {
			single, err := c.TopK(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := matchesJSON(t, batch[i]), matchesJSON(t, single); got != want {
				t.Fatalf("trial %d query %d k=%d: batch != single\n %s\n %s", trial, i, k, got, want)
			}
		}

		// Exhaustive batch is the oracle for the batch-level document
		// skipping.
		exhaustive, err := c.TopKBatch(context.Background(), queries, k, corpus.WithoutFilter())
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			if got, want := matchesJSON(t, batch[i]), matchesJSON(t, exhaustive[i]); got != want {
				t.Fatalf("trial %d query %d: filtered batch != exhaustive batch\n %s\n %s", trial, i, got, want)
			}
		}
	}
}

// TestTopKBatchSharesOneOverlay: a batch's query-only labels end up in
// one request overlay, not in the corpus dictionary.
func TestTopKBatchSharesOneOverlay(t *testing.T) {
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("d", strings.NewReader(`<a><b>x</b><c>y</c></a>`)); err != nil {
		t.Fatal(err)
	}
	base := c.DictLen()
	queries := make([]*tree.Tree, 4)
	for i := range queries {
		q, err := c.ParseBracket(fmt.Sprintf("{a{never-seen-%d}{shared-unknown}}", i))
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}
	var stats corpus.Stats
	if _, err := c.TopKBatch(context.Background(), queries, 2, corpus.WithStats(&stats)); err != nil {
		t.Fatal(err)
	}
	// 4 distinct per-query labels + 1 label shared across the batch.
	if stats.OverlayLabels != 5 {
		t.Errorf("OverlayLabels = %d, want 5 (4 distinct + 1 shared)", stats.OverlayLabels)
	}
	if c.DictLen() != base {
		t.Errorf("batch grew the corpus dictionary %d → %d", base, c.DictLen())
	}
}
