package corpus

import (
	"context"
	"fmt"
	"io"

	"tasm/internal/ranking"
	"tasm/internal/tree"
)

// Searcher is the query contract every corpus backend implements: a
// single corpus directory (*Corpus), a scatter-gather group of shards
// (shard.Group), or a remote tasmd instance (shard.Client). The three are
// interchangeable — cmd/tasmd serves any Searcher — so a deployment can
// grow from one directory to a tree of routers without the query surface
// changing.
//
// TopK and TopKBatch accept a context carrying cancellation and deadline;
// implementations stop promptly (the local scans poll the context once
// per ring-buffer candidate) and return ctx.Err(). Queries may come from
// any label dictionary: implementations re-intern them through
// request-scoped overlays (or, across process boundaries, serialize them
// as bracket strings), so the query's dictionary never constrains the
// backend.
//
// Implementations outside this package resolve their options with
// ResolveQueryOptions and read the exported QueryConfig fields.
type Searcher interface {
	// TopK returns the k subtrees closest to q across the backend's
	// documents, ascending by (distance, document order, position).
	TopK(ctx context.Context, q *tree.Tree, k int, opts ...QueryOption) ([]Match, error)
	// TopKBatch answers several queries in one pass; result i corresponds
	// to queries[i] and equals TopK(ctx, queries[i], k, opts...).
	TopKBatch(ctx context.Context, queries []*tree.Tree, k int, opts ...QueryOption) ([][]Match, error)
	// Docs lists the backend's documents in document order — for a group,
	// the concatenation of its shards' listings in shard order.
	Docs() []DocInfo
	// Generation returns a counter that increases whenever the document
	// set changes; result caches key on it.
	Generation() uint64
}

// Ingester is the ingest-side contract of backends that own document
// storage. *Corpus implements it; read-only backends (a scatter-gather
// group, a remote client) do not — route ingests to the shard that should
// own the document.
type Ingester interface {
	// AddXML parses and ingests an XML document under the given name.
	AddXML(name string, r io.Reader) (DocInfo, error)
	// AddTree ingests an already-materialized document tree.
	AddTree(name string, t *tree.Tree) (DocInfo, error)
	// Remove deletes the named document. Document ids are never reused,
	// so caches keyed on (generation, id) stay valid; the backing files
	// are garbage-collected best-effort.
	Remove(name string) error
}

var (
	_ Searcher = (*Corpus)(nil)
	_ Ingester = (*Corpus)(nil)
)

// ValidateQuery checks the preconditions every Searcher.TopK shares —
// non-empty query, k ≥ 1 — with the canonical error messages, so all
// implementations reject bad input identically.
func ValidateQuery(q *tree.Tree, k int) error {
	if q == nil || q.Size() == 0 {
		return fmt.Errorf("corpus: query must be a non-empty tree")
	}
	if k < 1 {
		return fmt.Errorf("corpus: k must be ≥ 1, got %d", k)
	}
	return nil
}

// ValidateBatch is ValidateQuery for Searcher.TopKBatch: at least one
// query, all non-empty, k ≥ 1, and a Cutoffs option (when present)
// matching the query count.
func ValidateBatch(queries []*tree.Tree, k int, cfg *QueryConfig) error {
	if len(queries) == 0 {
		return fmt.Errorf("corpus: batch needs at least one query")
	}
	if k < 1 {
		return fmt.Errorf("corpus: k must be ≥ 1, got %d", k)
	}
	if cfg != nil && cfg.Cutoffs != nil && len(cfg.Cutoffs) != len(queries) {
		return fmt.Errorf("corpus: %d batch cutoffs for %d queries", len(cfg.Cutoffs), len(queries))
	}
	for i, q := range queries {
		if q == nil || q.Size() == 0 {
			return fmt.Errorf("corpus: query %d must be a non-empty tree", i)
		}
	}
	return nil
}

// Cutoff is a lock-free, monotonically tightening bound on the distance a
// subtree must beat to enter the final top-k ranking. Cooperating
// searches share one: every heap that fills publishes its k-th distance
// into the cutoff (an atomic min), and every scan's pruning gates read it
// with one atomic load. Within a single TopK run the cutoff spans
// documents — earlier documents tighten later ones — and a scatter-gather
// group passes one cutoff to all of its shards, so a shard still scanning
// prunes against results other shards have already found.
//
// Sharing a cutoff never changes results: the published value is always
// an upper bound on the final k-th distance, and every gate compares
// strictly, so exact boundary ties are still evaluated.
type Cutoff = ranking.Cutoff

// NewCutoff returns a cutoff with no published bound yet (+Inf).
func NewCutoff() *Cutoff { return ranking.NewCutoff() }
