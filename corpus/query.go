package corpus

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"tasm/internal/core"
	"tasm/internal/dict"
	"tasm/internal/docstore"
	"tasm/internal/pqgram"
	"tasm/internal/qtrace"
	"tasm/internal/ranking"
	"tasm/internal/tree"
)

// Match is one ranked subtree of a corpus query: the document it came
// from, its 1-based postorder position within that document, its distance
// to the query, its size, and (unless suppressed) the subtree itself.
type Match struct {
	Doc  DocInfo
	Pos  int
	Dist float64
	Size int
	Tree *tree.Tree
}

// Stats reports what a TopK run did, for observability and tests.
type Stats struct {
	// Scanned is the number of documents streamed through TASM-postorder.
	Scanned int
	// Skipped is the number of documents pruned by the label-histogram
	// lower bound without being opened.
	Skipped int
	// Unprofiled is the number of documents scanned without a usable
	// profile (missing or corrupt profile file, e.g. after a partial
	// ingest). Such documents are scanned unconditionally — their lower
	// bound is 0 and they sort to the end of the scan order — so results
	// stay exact while the degradation is visible to operators.
	Unprofiled int
	// Quarantined is the number of documents the integrity scrub has
	// removed from this backend's serving set (files moved to the corpus
	// quarantine directory after failing checksum verification). It
	// counts lifetime quarantines recorded in the manifest, not per-query
	// work: a non-zero value means the corpus is serving exact results
	// over a smaller document set until an operator restores or re-ingests
	// the lost documents.
	Quarantined int
	// HistSkipped is the number of candidate subtrees (within scanned
	// documents) skipped whole by the per-candidate label-histogram lower
	// bound — the candidate-scope analogue of Skipped.
	HistSkipped uint64
	// TEDAborted is the number of subtree evaluations the early-abort
	// Zhang–Shasha DP abandoned once its running lower bound crossed the
	// k-th distance.
	TEDAborted uint64
	// Evaluated is the number of subtree evaluations that ran to
	// completion.
	Evaluated uint64
	// BaseDictLabels is the size of the frozen corpus base dictionary the
	// run scanned against. It grows only with ingests, never with
	// queries.
	BaseDictLabels int
	// OverlayLabels is the number of request-local labels held by the
	// query's copy-on-write overlay when the run finished — query labels
	// the corpus has never seen. They are released with the overlay; a
	// TopK run never adds a label to the shared dictionary.
	OverlayLabels int

	// The remaining fields are the fault-tolerance accounting of the
	// router tier (shard.Group, shard.ReplicaSet, shard.Client). A single
	// corpus leaves them zero.

	// Retries is the number of extra remote attempts performed after
	// retryable failures (connect errors, gateway-class 5xx responses).
	Retries uint64
	// Hedges is the number of hedge or failover requests replica sets
	// fired beyond the primary attempt.
	Hedges uint64
	// Retried names the shards that needed at least one retry.
	Retried []string
	// Hedged names the replica sets where a hedge or failover fired.
	Hedged []string
	// BreakerSkipped names the shards or replicas an open circuit breaker
	// skipped without a network round trip.
	BreakerSkipped []string
	// Degraded names the shards whose results are missing from this
	// answer. It is only ever non-empty under WithPartialResults; the
	// default error policy fails the query instead.
	Degraded []string
}

// MergeFault folds another run's fault-tolerance accounting into s:
// counters add, name lists concatenate. Scan counters are left alone —
// a replica set adopts only the winning attempt's scan statistics, but
// every attempt's fault accounting is worth keeping.
func (s *Stats) MergeFault(o *Stats) {
	s.Retries += o.Retries
	s.Hedges += o.Hedges
	s.Retried = append(s.Retried, o.Retried...)
	s.Hedged = append(s.Hedged, o.Hedged...)
	s.BreakerSkipped = append(s.BreakerSkipped, o.BreakerSkipped...)
	s.Degraded = append(s.Degraded, o.Degraded...)
}

// QueryOption configures one TopK or TopKBatch run.
type QueryOption func(*QueryConfig)

// QueryConfig is the resolved form of a run's options. The fields are
// exported so Searcher implementations outside this package (the
// scatter-gather shard.Group, the remote shard.Client) can interpret the
// same options a *Corpus accepts; callers configure runs with the With*
// option constructors rather than building a QueryConfig by hand.
type QueryConfig struct {
	// Docs restricts the run to the named documents; nil means all.
	Docs []string
	// Workers fans per-document distance work out to a worker pool
	// (0 sequential, <0 GOMAXPROCS).
	Workers int
	// NoTrees suppresses materialization of matched subtrees.
	NoTrees bool
	// NoFilter disables the document-level profile index.
	NoFilter bool
	// NoPrune disables the per-candidate pruning pipeline.
	NoPrune bool
	// Stats, when non-nil, receives the run's scan statistics.
	Stats *Stats
	// Cutoff, when non-nil, is the shared k-th-distance bound a TopK run
	// publishes to and prunes against; a scatter-gather group passes one
	// cutoff to every shard so they prune against each other's results.
	// Nil means the run uses a private cutoff.
	Cutoff *Cutoff
	// Cutoffs is the per-query counterpart of Cutoff for TopKBatch runs;
	// when non-nil its length must equal the number of queries.
	Cutoffs []*Cutoff
	// Partial opts a scatter-gather run into graceful degradation: a
	// shard that fails (with all of its replicas) is dropped from the
	// merge and reported in Stats.Degraded instead of failing the query.
	// A single corpus ignores it.
	Partial bool
}

// ResolveQueryOptions applies opts to a zero QueryConfig and returns it.
// Searcher implementations use it to interpret the options they are
// handed.
func ResolveQueryOptions(opts ...QueryOption) QueryConfig {
	var cfg QueryConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithConfig replaces the whole resolved configuration. It is the
// forwarding primitive for Searcher wrappers: resolve the caller's
// options, adjust fields (per-shard stats, the shared cutoff), and hand
// the adjusted config down as a single option.
func WithConfig(cfg QueryConfig) QueryOption {
	return func(q *QueryConfig) { *q = cfg }
}

// WithDocs restricts the query to the named documents (default: all).
func WithDocs(names ...string) QueryOption {
	return func(q *QueryConfig) { q.Docs = names }
}

// WithWorkers fans the per-document distance work out to a worker pool:
// n > 0 sets the pool size, n < 0 selects GOMAXPROCS, 0 (the default)
// scans sequentially. Results are identical in all modes.
func WithWorkers(n int) QueryOption {
	return func(q *QueryConfig) { q.Workers = n }
}

// WithoutTrees suppresses materialization of the matched subtrees
// (Match.Tree stays nil), saving allocation when only positions and
// distances are needed.
func WithoutTrees() QueryOption {
	return func(q *QueryConfig) { q.NoTrees = true }
}

// WithoutFilter disables the profile index: documents are scanned
// exhaustively in manifest order with no skipping. Results are identical
// to the filtered scan; it exists as the equivalence oracle for tests and
// for debugging filter behaviour.
func WithoutFilter() QueryOption {
	return func(q *QueryConfig) { q.NoFilter = true }
}

// WithoutCandidatePruning disables the per-candidate pruning pipeline
// inside document scans (the label-histogram gate and the early-abort
// TED evaluation), leaving only the paper's τ/τ′ bounds. Results are
// identical; it exists as the equivalence oracle for tests and for
// benchmarking the gates.
func WithoutCandidatePruning() QueryOption {
	return func(q *QueryConfig) { q.NoPrune = true }
}

// WithPartialResults opts the run into graceful degradation on a
// scatter-gather backend: when a shard — including every replica of it —
// is down, the query returns the surviving shards' merged results
// best-effort, with the missing shards named in Stats.Degraded, instead
// of failing. The default (without this option) stays fail-loud: any
// shard failure fails the whole query naming the shard. A single corpus
// has no shards to lose and ignores the option.
func WithPartialResults() QueryOption {
	return func(q *QueryConfig) { q.Partial = true }
}

// WithStats records scan statistics into s.
func WithStats(s *Stats) QueryOption {
	return func(q *QueryConfig) { q.Stats = s }
}

// WithCutoff shares a k-th-distance bound between this TopK run and other
// runs holding the same cutoff; see Cutoff. Results are unchanged.
func WithCutoff(c *Cutoff) QueryOption {
	return func(q *QueryConfig) { q.Cutoff = c }
}

// WithBatchCutoffs is WithCutoff for TopKBatch: cs[i] is shared by
// query i across the cooperating batch runs. len(cs) must equal the
// number of queries.
func WithBatchCutoffs(cs []*Cutoff) QueryOption {
	return func(q *QueryConfig) { q.Cutoffs = cs }
}

// scanDoc is one document of a TopK run's scan plan.
type scanDoc struct {
	info       DocInfo
	offset     int     // global position offset: Σ nodes of manifest-earlier docs
	bound      float64 // sound lower bound on any subtree distance in the doc
	pqdist     int     // pq-gram distance of the whole doc to the query (ordering)
	unprofiled bool    // no usable profile: bound 0, scanned last, never skipped
}

// requestOverlay resolves the query of one run against a snapshot: a tree
// already interned in an overlay over the snapshot's base is used as-is
// (the common case — ParseBracket/ParseXML/ImportTree built exactly
// that); any other tree is re-interned into a fresh overlay. Either way
// the returned tree resolves corpus labels to their shared frozen ids and
// keeps request-local labels above the base watermark, and the overlay
// dies with the request.
func requestOverlay(st *snapshot, q *tree.Tree) (*dict.Overlay, *tree.Tree) {
	if o, ok := q.Dict().(*dict.Overlay); ok && o.Base() == dict.Dict(st.base) {
		return o, q
	}
	o := dict.NewOverlay(st.base)
	return o, q.Reintern(o)
}

// TopK returns the k subtrees closest to q across the corpus, ascending
// by (distance, document manifest order, position in document). The query
// may come from any dictionary: it is resolved through a request-scoped
// overlay of the corpus dictionary, so the shared dictionary is never
// mutated by a query.
//
// The context carries cancellation and deadline: a cancelled ctx stops
// the run between documents and mid-scan (the ring-buffer loop polls it
// once per candidate) and returns ctx.Err(). A nil ctx is treated as
// context.Background().
//
// Documents are scanned most-promising-first (ascending pq-gram distance)
// into one shared ranking, so the running k-th distance both tightens the
// τ′ bound inside later documents and lets the label-histogram lower
// bound skip documents outright. The result is deterministic and
// identical to an exhaustive scan of every selected document.
func (c *Corpus) TopK(ctx context.Context, q *tree.Tree, k int, opts ...QueryOption) ([]Match, error) {
	cfg := ResolveQueryOptions(opts...)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ValidateQuery(q, k); err != nil {
		return nil, err
	}

	st := c.snapshot()
	ov, q := requestOverlay(st, q)

	// A trace in the context records stage spans: planning, every scanned
	// document (with its pruning-counter deltas), and the final merge.
	// Spans stay at document granularity — the candidate loop below this
	// layer never sees the trace, so its 0 allocs/candidate invariant is
	// untouched. All qtrace methods are nil-safe; an untraced run pays a
	// nil check per document.
	tr := qtrace.FromContext(ctx)
	planSpan := tr.Begin(qtrace.SpanPlan, "")
	planBuf := c.planPool.Get().(*[]scanDoc)
	plan, err := c.plan(st, q, &cfg, (*planBuf)[:0])
	tr.End(planSpan)
	defer func() {
		*planBuf = plan[:0]
		c.planPool.Put(planBuf)
	}()
	if err != nil {
		return nil, err
	}

	heap := ranking.New(k)
	// The heap publishes its k-th distance through a lock-free cutoff
	// shared by every per-document scan: sequential scans' heap pushes,
	// parallel workers' merges, and the document-level skip decision below
	// all read one atomic, and the bound carries across document
	// boundaries so earlier documents tighten later ones. A caller-
	// supplied cutoff (a scatter-gather group shares one across shards)
	// additionally carries bounds in from cooperating runs.
	cut := cfg.Cutoff
	if cut == nil {
		cut = ranking.NewCutoff()
	}
	heap.PublishTo(cut)
	stats := Stats{}
	prune := &core.PruneStats{}
	// Per-document scan state — distance computer, histogram, ring
	// buffer, candidate view — comes from the corpus pool and is reused
	// across every document of this run (and across runs, for the parts
	// that carry only capacity). Reset detaches it from whatever query a
	// previous run built it for.
	scratch := c.scratchPool.Get().(*core.ScanScratch)
	scratch.Reset()
	defer func() {
		scratch.Reset() // drop query-lifetime references before pooling
		c.scratchPool.Put(scratch)
	}()
	coreOpts := core.Options{
		Ctx:                   ctx,
		Model:                 c.model,
		NoTrees:               cfg.NoTrees,
		Prune:                 prune,
		DisableHistogramBound: cfg.NoPrune,
		DisableEarlyAbort:     cfg.NoPrune,
		Scratch:               scratch,
	}
	for _, d := range plan {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !cfg.NoFilter {
			if kth := cut.Load(); d.bound > kth {
				stats.Skipped++
				continue
			}
			if d.unprofiled {
				stats.Unprofiled++
			}
		}
		var h0, a0, e0 uint64
		docSpan := -1
		if tr != nil {
			h0, a0, e0 = prune.Snapshot()
			docSpan = tr.Begin(qtrace.SpanScan, d.info.Name)
		}
		err := c.scanInto(q, ov, st, d, heap, cfg.Workers, coreOpts)
		if tr != nil {
			tr.End(docSpan)
			h1, a1, e1 := prune.Snapshot()
			tr.SetPrune(docSpan, h1-h0, a1-a0, e1-e0)
		}
		if err != nil {
			return nil, err
		}
		stats.Scanned++
	}
	stats.HistSkipped, stats.TEDAborted, stats.Evaluated = prune.Snapshot()
	stats.BaseDictLabels = st.base.Len()
	stats.OverlayLabels = ov.Added()
	stats.Quarantined = st.quarantined
	if cfg.Stats != nil {
		*cfg.Stats = stats
	}
	mergeSpan := tr.Begin(qtrace.SpanMerge, "")
	out := c.resolve(heap, plan)
	tr.End(mergeSpan)
	return out, nil
}

// plan snapshots the documents a query will consider, computes their
// offsets, bounds and ordering, and returns them in scan order, built on
// dst's backing array (from the corpus plan pool; steady state appends
// without allocating). The query must already be resolved through an
// overlay over st.base, so its label ids are commensurable with the
// profile index's.
func (c *Corpus) plan(st *snapshot, q *tree.Tree, cfg *QueryConfig, dst []scanDoc) ([]scanDoc, error) {
	qGrams, err := pqgram.New(q, c.p, c.q)
	if err != nil {
		return dst, err
	}
	qLabels := make(map[int]int, q.Size())
	for i := 0; i < q.Size(); i++ {
		qLabels[q.LabelID(i)]++
	}

	var selected map[string]bool
	if cfg.Docs != nil {
		selected = make(map[string]bool, len(cfg.Docs))
		for _, n := range cfg.Docs {
			selected[n] = false
		}
	}

	// Offsets follow manifest order over ALL documents (not just the
	// selection), so a subtree's global position — and with it the
	// deterministic tie-break — is a property of the corpus, stable
	// across selections and scan orders.
	plan := dst
	offset := 0
	for _, d := range st.docs {
		include := true
		if selected != nil {
			if _, ok := selected[d.Name]; !ok {
				include = false
			} else {
				selected[d.Name] = true
			}
		}
		if include {
			sd := scanDoc{info: d, offset: offset}
			if !cfg.NoFilter {
				if p := st.profiles[d.ID]; p != nil {
					sd.bound = labelLowerBound(qLabels, p.labels)
					if sd.pqdist, err = pqgram.Distance(qGrams, p.grams); err != nil {
						return plan, err
					}
				} else {
					// A document can lack its profile after a partial
					// ingest or a corrupt profile file. Its bound stays 0
					// (never skipped) and it sorts to the end of the scan
					// order, so the query degrades to an unfiltered scan
					// of this one document instead of crashing.
					sd.unprofiled = true
					sd.pqdist = math.MaxInt
				}
			}
			plan = append(plan, sd)
		}
		offset += d.Nodes
	}
	for name, found := range selected {
		if !found {
			return plan, fmt.Errorf("corpus: unknown document %q", name)
		}
	}
	if !cfg.NoFilter {
		sort.SliceStable(plan, func(i, j int) bool {
			if plan[i].pqdist != plan[j].pqdist {
				return plan[i].pqdist < plan[j].pqdist
			}
			if plan[i].bound != plan[j].bound {
				return plan[i].bound < plan[j].bound
			}
			return plan[i].info.ID < plan[j].info.ID
		})
	}
	return plan, nil
}

// labelLowerBound returns Σ_label max(0, count_Q − count_doc): the number
// of query nodes that cannot be mapped to an equal-labelled document
// node. In any edit mapping each such node is deleted (cost ≥ 1) or
// renamed (cost ≥ 1), so every subtree of the document — whose labels are
// a sub-bag of the document's — has distance at least this bound under
// any Definition-4 cost model.
func labelLowerBound(query map[int]int, doc map[int]int) float64 {
	missing := 0
	for id, cq := range query {
		if cd := doc[id]; cq > cd {
			missing += cq - cd
		}
	}
	return float64(missing)
}

// ScanError wraps a failure to read or scan a persisted document during
// TopK. It signals corpus-side state problems (missing or corrupt store
// files) as opposed to bad query input, so servers can map it to an
// internal error rather than blaming the caller. errors.As surfaces it
// through any wrapping a scatter-gather merge adds, so a one-shard
// failure stays attributable to that shard.
type ScanError struct {
	// Shard names the backend the failure came from. A single corpus
	// leaves it empty; a scatter-gather group stamps the failing shard's
	// name, and a remote client its own.
	Shard string
	// Doc is the name of the document whose scan failed; empty when the
	// failure is not attributable to one document (e.g. a failed remote
	// call).
	Doc string
	Err error
}

func (e *ScanError) Error() string {
	switch {
	case e.Shard != "" && e.Doc != "":
		return fmt.Sprintf("corpus: shard %s: scanning document %q: %v", e.Shard, e.Doc, e.Err)
	case e.Shard != "":
		return fmt.Sprintf("corpus: shard %s: %v", e.Shard, e.Err)
	default:
		return fmt.Sprintf("corpus: scanning document %q: %v", e.Doc, e.Err)
	}
}

func (e *ScanError) Unwrap() error { return e.Err }

// scanInto streams one document into the shared ranking. The fast path
// serves the snapshot's cached store: a pooled zero-copy reader walks
// the mapped bytes with the remap computed at load time — no file open,
// no dictionary work, no buffer. A document without a cached store (its
// load failed at open) falls back to a per-query streaming read, whose
// labels resolve through the request overlay: labels the corpus
// ingested hit the frozen base lock-free, and anything else (possible
// only with store files written outside this corpus) stays
// request-local. Both paths are byte-identical (fuzz-pinned in
// docstore).
func (c *Corpus) scanInto(q *tree.Tree, ov *dict.Overlay, st *snapshot, d scanDoc, heap *ranking.Heap, workers int, opts core.Options) error {
	if ds := st.stores[d.info.ID]; ds != nil {
		ir := c.readerPool.Get().(*docstore.ImageReader)
		ir.Reset(ds.img, ds.remap)
		var err error
		if workers != 0 {
			err = core.PostorderParallelInto(q, ir, heap, d.offset, workers, opts)
		} else {
			err = core.PostorderStreamInto(q, ir, heap, d.offset, opts)
		}
		c.readerPool.Put(ir)
		if err != nil {
			return &ScanError{Doc: d.info.Name, Err: err}
		}
		return nil
	}
	f, err := os.Open(filepath.Join(c.dir, d.info.Store))
	if err != nil {
		return &ScanError{Doc: d.info.Name, Err: err}
	}
	defer f.Close()
	r, err := docstore.NewReader(ov, f)
	if err != nil {
		return &ScanError{Doc: d.info.Name, Err: err}
	}
	if workers != 0 {
		err = core.PostorderParallelInto(q, r, heap, d.offset, workers, opts)
	} else {
		err = core.PostorderStreamInto(q, r, heap, d.offset, opts)
	}
	if err != nil {
		return &ScanError{Doc: d.info.Name, Err: err}
	}
	return nil
}

// resolve maps the shared ranking's global positions back to
// (document, local position) matches, in final ranking order. Its
// offset-sorted working copy of the plan comes from the corpus plan
// pool.
func (c *Corpus) resolve(heap *ranking.Heap, plan []scanDoc) []Match {
	bp := c.planPool.Get().(*[]scanDoc)
	byOffset := append((*bp)[:0], plan...)
	sort.Slice(byOffset, func(i, j int) bool { return byOffset[i].offset < byOffset[j].offset })
	out := make([]Match, 0, heap.Len())
	for _, e := range heap.Sorted() {
		i := sort.Search(len(byOffset), func(i int) bool { return byOffset[i].offset >= e.Pos }) - 1
		d := byOffset[i]
		out = append(out, Match{
			Doc:  d.info,
			Pos:  e.Pos - d.offset,
			Dist: e.Dist,
			Size: e.Size,
			Tree: e.Tree,
		})
	}
	*bp = byOffset[:0]
	c.planPool.Put(bp)
	return out
}
