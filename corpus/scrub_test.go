package corpus

// Tests for the integrity scrub: flip-a-byte quarantine equivalence (the
// acceptance property of the checksummed format), the Open-time orphan
// sweep, the explicit Verify pass, strict mode, and AddTree's error-path
// cleanup.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tasm/internal/atomicio"
	"tasm/internal/dict"
	"tasm/internal/testenv"
	"tasm/internal/tree"
)

// buildVictimCorpus creates a three-document corpus and returns its
// directory plus the middle document's manifest entry — the document the
// tests corrupt.
func buildVictimCorpus(t *testing.T) (string, DocInfo) {
	t.Helper()
	dir := t.TempDir()
	c, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	var victim DocInfo
	for _, d := range []struct{ name, s string }{
		{"a", "{r{x{p}{q}}{y}}"},
		{"b", "{r{x{p}{q}}{z{p}}}"},
		{"c", "{r{w}{y{q}}}"},
	} {
		tr, err := c.ParseBracket(d.s)
		if err != nil {
			t.Fatal(err)
		}
		info, err := c.AddTree(d.name, tr)
		if err != nil {
			t.Fatal(err)
		}
		if d.name == "b" {
			victim = info
		}
	}
	return dir, victim
}

// TestScrubFlipAnyByteQuarantines is the acceptance property of PR 8:
// flipping ANY single byte of a document's store or profile file is
// detected at Open, quarantines exactly that document, and leaves the
// survivors answering byte-identically to a corpus that never held the
// victim. Every byte offset of both files is swept; under TASM_QUICK
// (the CI -race configuration) the sweep samples every seventh offset
// with a single bit pattern instead.
func TestScrubFlipAnyByteQuarantines(t *testing.T) {
	base, victim := buildVictimCorpus(t)
	stride, bits := 1, []byte{0x01, 0xff}
	if testenv.Quick() {
		stride, bits = 7, []byte{0xff}
	}

	// Oracle: the same corpus built without the victim document.
	oracleDir := t.TempDir()
	oc, err := Open(oracleDir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []struct{ name, s string }{
		{"a", "{r{x{p}{q}}{y}}"},
		{"c", "{r{w}{y{q}}}"},
	} {
		tr, err := oc.ParseBracket(d.s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := oc.AddTree(d.name, tr); err != nil {
			t.Fatal(err)
		}
	}
	oracle := answersAt(t, oracleDir)

	for _, rel := range []string{victim.Store, victim.Profile} {
		data, err := os.ReadFile(filepath.Join(base, rel))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(data); i += stride {
			for _, bit := range bits {
				dir := t.TempDir()
				copyDir(t, base, dir)
				mut := append([]byte(nil), data...)
				mut[i] ^= bit
				if err := os.WriteFile(filepath.Join(dir, rel), mut, 0o644); err != nil {
					t.Fatal(err)
				}
				c, err := Open(dir, WithLogger(quietLogger()))
				if err != nil {
					t.Fatalf("%s byte %d xor %#x: Open failed: %v (scrub mode must quarantine, not fail)", rel, i, bit, err)
				}
				if got := c.Quarantined(); got != 1 {
					t.Fatalf("%s byte %d xor %#x: Quarantined() = %d, want 1 — the flip went undetected", rel, i, bit, got)
				}
				q, err := c.ParseBracket(crashQuery)
				if err != nil {
					t.Fatal(err)
				}
				ms, err := c.TopK(context.Background(), q, 8)
				if err != nil {
					t.Fatalf("%s byte %d xor %#x: TopK: %v", rel, i, bit, err)
				}
				got := make([]answer, len(ms))
				for j, m := range ms {
					got[j] = answer{name: m.Doc.Name, pos: m.Pos, dist: m.Dist, size: m.Size, tree: m.Tree.String()}
				}
				if !sameAnswers(got, oracle) {
					t.Fatalf("%s byte %d xor %#x: survivors answer %v, oracle without victim answers %v", rel, i, bit, got, oracle)
				}
			}
		}
	}
}

// TestScrubQuarantineMovesFiles: quarantined documents' files land in
// quarantine/ for the operator, the manifest drops the document under a
// bumped generation, and the quarantine survives (is not re-counted by)
// a further reopen.
func TestScrubQuarantineMovesFiles(t *testing.T) {
	dir, victim := buildVictimCorpus(t)
	genBefore := func() uint64 {
		c, err := Open(dir, WithLogger(quietLogger()))
		if err != nil {
			t.Fatal(err)
		}
		return c.Generation()
	}()
	storePath := filepath.Join(dir, victim.Store)
	data, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(storePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	if c.Quarantined() != 1 || c.Len() != 2 {
		t.Fatalf("Quarantined = %d, Len = %d; want 1 and 2", c.Quarantined(), c.Len())
	}
	if c.Generation() <= genBefore {
		t.Errorf("generation %d not bumped past %d by quarantine", c.Generation(), genBefore)
	}
	qstore := filepath.Join(dir, quarantineDir, filepath.Base(victim.Store))
	if _, err := os.Stat(qstore); err != nil {
		t.Errorf("quarantined store not preserved at %s: %v", qstore, err)
	}
	if _, err := os.Stat(storePath); !os.IsNotExist(err) {
		t.Errorf("corrupt store still present in docs/: err=%v", err)
	}

	// Reopen: the count is stable, nothing new to quarantine.
	c2, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Quarantined() != 1 || c2.Len() != 2 {
		t.Fatalf("after reopen: Quarantined = %d, Len = %d; want 1 and 2", c2.Quarantined(), c2.Len())
	}
}

// TestVerifyMethodScrubsLiveCorpus: corruption that lands while the
// corpus is serving is caught by an explicit Verify pass, which reports
// the quarantined document by name.
func TestVerifyMethodScrubsLiveCorpus(t *testing.T) {
	dir, victim := buildVictimCorpus(t)
	c, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 3 || len(rep.Quarantined) != 0 {
		t.Fatalf("clean corpus: report %+v, want 3 checked, none quarantined", rep)
	}

	path := filepath.Join(dir, victim.Profile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01 // trailer byte: CRC mismatch
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "b" {
		t.Fatalf("report.Quarantined = %v, want [b]", rep.Quarantined)
	}
	if c.Quarantined() != 1 || c.Len() != 2 {
		t.Fatalf("Quarantined = %d, Len = %d; want 1 and 2", c.Quarantined(), c.Len())
	}
}

// TestVerifyStrictFailsOpen: strict mode refuses to open a damaged
// corpus instead of quarantining.
func TestVerifyStrictFailsOpen(t *testing.T) {
	dir, victim := buildVictimCorpus(t)
	path := filepath.Join(dir, victim.Store)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, WithVerifyMode(VerifyStrict), WithLogger(quietLogger())); err == nil {
		t.Fatal("strict Open of a corrupt corpus succeeded")
	}
	// The files must be untouched: strict mode diagnoses, never moves.
	if _, err := os.Stat(path); err != nil {
		t.Errorf("strict mode moved or removed the corrupt store: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir)); !os.IsNotExist(err) {
		t.Errorf("strict mode created a quarantine directory: err=%v", err)
	}
}

// TestOpenSweepsOrphans: temp files and committed-but-unreferenced
// store/profile files (crash debris) are removed at Open; referenced
// files survive.
func TestOpenSweepsOrphans(t *testing.T) {
	dir, victim := buildVictimCorpus(t)
	junk := []string{
		filepath.Join(dir, atomicio.TempPrefix+"12345"),
		filepath.Join(dir, ".manifest-678.json"),
		filepath.Join(dir, docsDir, atomicio.TempPrefix+"999"),
		filepath.Join(dir, docsDir, "99.store"),
		filepath.Join(dir, docsDir, "99.profile"),
	}
	for _, p := range junk {
		if err := os.WriteFile(p, []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range junk {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived Open: err=%v", p, err)
		}
	}
	if c.Len() != 3 || c.Quarantined() != 0 {
		t.Fatalf("Len = %d, Quarantined = %d; the sweep must not touch referenced documents", c.Len(), c.Quarantined())
	}
	if _, err := os.Stat(filepath.Join(dir, victim.Store)); err != nil {
		t.Errorf("referenced store swept: %v", err)
	}
}

// failNthCreate is an atomicio.FS that fails the n-th CreateTemp call
// (1-based) and passes everything else through — a clean injection of
// "the profile write failed" or "the manifest write failed" that, unlike
// a crash, leaves the process alive to run its cleanup path.
type failNthCreate struct {
	atomicio.FS
	n     int
	calls int
}

func (f *failNthCreate) CreateTemp(dir, pattern string) (atomicio.File, error) {
	f.calls++
	if f.calls == f.n {
		return nil, fmt.Errorf("injected CreateTemp failure #%d", f.n)
	}
	return f.FS.CreateTemp(dir, pattern)
}

// docsDirFiles lists the docs/ directory's file names.
func docsDirFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, docsDir))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestAddTreeCleansUpOnProfileFailure: if the profile write fails after
// the store committed, AddTree unlinks the store on its own error path —
// no debris waits for the next Open's sweep.
func TestAddTreeCleansUpOnProfileFailure(t *testing.T) {
	dir := t.TempDir()
	// CreateTemp #1 is the initial manifest; #2 the store; #3 the profile.
	c, err := Open(dir, WithFS(&failNthCreate{FS: atomicio.OS, n: 3}), WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.MustParse(dict.New(), "{r{x}{y}}")
	if _, err := c.AddTree("doc", tr); err == nil {
		t.Fatal("AddTree with failing profile write succeeded")
	}
	if files := docsDirFiles(t, dir); len(files) != 0 {
		t.Errorf("docs/ holds %v after a failed ingest; the error path must unlink the store", files)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after failed ingest, want 0", c.Len())
	}
	// The corpus stays usable: the same name ingests cleanly afterwards.
	if _, err := c.AddTree("doc", tr); err != nil {
		t.Fatalf("re-ingest after failure: %v", err)
	}
}

// TestAddTreeCleansUpOnManifestFailure: if the manifest commit fails
// after both files committed, AddTree unlinks both.
func TestAddTreeCleansUpOnManifestFailure(t *testing.T) {
	dir := t.TempDir()
	// CreateTemp #1 initial manifest; #2 store; #3 profile; #4 manifest.
	c, err := Open(dir, WithFS(&failNthCreate{FS: atomicio.OS, n: 4}), WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.MustParse(dict.New(), "{r{x}{y}}")
	if _, err := c.AddTree("doc", tr); err == nil {
		t.Fatal("AddTree with failing manifest write succeeded")
	}
	if files := docsDirFiles(t, dir); len(files) != 0 {
		t.Errorf("docs/ holds %v after a failed ingest; the error path must unlink store and profile", files)
	}
	if _, err := c.AddTree("doc", tr); err != nil {
		t.Fatalf("re-ingest after failure: %v", err)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	// The recovered corpus reopens cleanly with nothing to sweep or
	// quarantine.
	c2, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 1 || c2.Quarantined() != 0 {
		t.Errorf("reopen: Len = %d, Quarantined = %d; want 1, 0", c2.Len(), c2.Quarantined())
	}
}

// TestV1CorpusStillOpens: a corpus whose store and profile files predate
// the checksummed format (v1 store magic, containerless profile) opens,
// scrubs clean, and serves — the format bump is backward compatible.
func TestV1CorpusStillOpens(t *testing.T) {
	dir, victim := buildVictimCorpus(t)
	// Downgrade the victim's files to the legacy encodings.
	storePath := filepath.Join(dir, victim.Store)
	store, err := os.ReadFile(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(store), "TASMPQ2\n") {
		t.Fatalf("fresh store is not v2: %q", store[:8])
	}
	v1 := append([]byte("TASMPQ1\n"), store[8:len(store)-4]...)
	if err := os.WriteFile(storePath, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	profPath := filepath.Join(dir, victim.Profile)
	prof, err := os.ReadFile(profPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(prof), profileMagicV2) {
		t.Fatalf("fresh profile is not a v2 container: %q", prof[:8])
	}
	legacy := prof[len(profileMagicV2) : len(prof)-4]
	if err := os.WriteFile(profPath, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatalf("opening corpus with legacy files: %v", err)
	}
	if c.Quarantined() != 0 || c.Len() != 3 {
		t.Fatalf("Quarantined = %d, Len = %d; legacy files must pass the scrub", c.Quarantined(), c.Len())
	}
	q, err := c.ParseBracket(crashQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TopK(context.Background(), q, 4); err != nil {
		t.Fatalf("TopK over legacy files: %v", err)
	}
}
