package corpus_test

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"tasm/corpus"
)

// TestQueryLabelsDoNotGrowCorpus is the boundedness regression test for
// the per-request dictionary overlay: a long-lived corpus answering many
// queries whose labels are all distinct must end with exactly the same
// base dictionary size — and essentially the same heap — as after a
// single query. Before request-scoped overlays, every query label was
// interned into the shared corpus dictionary forever, so this test fails
// on the shared-interning implementation (the dictionary grew by
// queries × labels, and the heap by their retained strings).
func TestQueryLabelsDoNotGrowCorpus(t *testing.T) {
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("d", strings.NewReader(`<dblp><article><author>smith</author><title>trees</title></article></dblp>`)); err != nil {
		t.Fatal(err)
	}
	dictAfterIngest := c.DictLen()
	if dictAfterIngest == 0 {
		t.Fatal("ingest produced an empty dictionary")
	}

	// Each query carries `labels` distinct ~0.5 KB labels never seen
	// before; across `queries` runs that is ~2 MB of label strings that
	// the old shared dictionary would have retained forever.
	const queries, labels = 64, 64
	pad := strings.Repeat("x", 500)
	runQuery := func(qi int) {
		var sb strings.Builder
		sb.WriteString("{article")
		for li := 0; li < labels; li++ {
			fmt.Fprintf(&sb, "{q%04d-%04d-%s}", qi, li, pad)
		}
		sb.WriteString("}")
		q, err := c.ParseBracket(sb.String())
		if err != nil {
			t.Fatal(err)
		}
		var stats corpus.Stats
		if _, err := c.TopK(context.Background(), q, 3, corpus.WithStats(&stats), corpus.WithoutTrees()); err != nil {
			t.Fatal(err)
		}
		if stats.OverlayLabels != labels {
			t.Fatalf("query %d: OverlayLabels = %d, want %d", qi, stats.OverlayLabels, labels)
		}
		if stats.BaseDictLabels != dictAfterIngest {
			t.Fatalf("query %d: BaseDictLabels = %d, want %d", qi, stats.BaseDictLabels, dictAfterIngest)
		}
	}

	// N=1 baseline.
	runQuery(0)
	if got := c.DictLen(); got != dictAfterIngest {
		t.Fatalf("one query grew the base dictionary %d → %d", dictAfterIngest, got)
	}
	heapAfterOne := heapInUse()

	// N queries with all-distinct labels.
	for qi := 1; qi < queries; qi++ {
		runQuery(qi)
	}
	if got := c.DictLen(); got != dictAfterIngest {
		t.Fatalf("%d queries grew the base dictionary %d → %d (query labels leaked into the shared dictionary)",
			queries, dictAfterIngest, got)
	}
	heapAfterN := heapInUse()

	// The heap must not retain the queries' labels. Allow 1 MB of noise —
	// far below the ≥ 2 MB of label strings the shared dictionary would
	// have pinned.
	const margin = 1 << 20
	if heapAfterN > heapAfterOne+margin {
		t.Errorf("heap grew from %d to %d bytes across %d distinct-label queries (> %d margin): query labels are being retained",
			heapAfterOne, heapAfterN, queries, margin)
	}
}

// heapInUse returns the live heap after forcing collection twice (the
// first GC may only queue finalizers for overlay-held maps).
func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}
