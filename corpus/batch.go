package corpus

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"tasm/internal/core"
	"tasm/internal/dict"
	"tasm/internal/docstore"
	"tasm/internal/pqgram"
	"tasm/internal/qtrace"
	"tasm/internal/ranking"
	"tasm/internal/tree"
)

// batchDoc is one document of a TopKBatch scan plan: the shared scanDoc
// ordering data plus the per-query lower bounds that drive the skip
// decision.
type batchDoc struct {
	scanDoc
	bounds []float64 // per query: sound lower bound on any subtree distance
}

// TopKBatch answers several queries across the corpus in one pass:
// every selected document is opened and streamed through the prefix ring
// buffer once, and all queries rank its candidate subtrees during that
// single scan (core.PostorderBatchInto). Result i corresponds to
// queries[i] and is byte-identical to c.TopK(queries[i], k).
//
// The whole batch shares one request overlay over the frozen corpus
// dictionary, so serving a batch interns each distinct query label once
// and releases them all with the batch.
//
// A document is skipped only when it is prunable for every query — each
// query keeps its own sound label lower bound per document and its own
// running k-th distance. Scan order is ascending minimum pq-gram distance
// over the queries, so documents promising for any query are scanned
// early. The WithWorkers option is ignored: the batch scan itself is the
// parallelism (one document read serves all queries).
//
// The context carries cancellation and deadline exactly as for TopK; a
// nil ctx is treated as context.Background().
func (c *Corpus) TopKBatch(ctx context.Context, queries []*tree.Tree, k int, opts ...QueryOption) ([][]Match, error) {
	cfg := ResolveQueryOptions(opts...)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ValidateBatch(queries, k, &cfg); err != nil {
		return nil, err
	}

	st := c.snapshot()
	ov := dict.NewOverlay(st.base)
	qs := make([]*tree.Tree, len(queries))
	for i, q := range queries {
		qs[i] = q.Reintern(ov)
	}

	// Stage spans mirror TopK's: plan, one span per scanned document
	// (shared by the whole batch — the scan reads each document once for
	// all queries), and the merge. See TopK for the granularity contract.
	tr := qtrace.FromContext(ctx)
	planSpan := tr.Begin(qtrace.SpanPlan, "")
	planBuf := c.batchPool.Get().(*[]batchDoc)
	plan, err := c.planBatch(st, qs, &cfg, (*planBuf)[:0])
	tr.End(planSpan)
	defer func() {
		*planBuf = plan[:0]
		c.batchPool.Put(planBuf)
	}()
	if err != nil {
		return nil, err
	}

	heaps := make([]*ranking.Heap, len(qs))
	for i := range heaps {
		heaps[i] = ranking.New(k)
		// Each query publishes its k-th distance through its own cutoff —
		// caller-supplied for cooperating batch runs across shards,
		// private otherwise — and the per-document skip decision below
		// reads the same bound.
		cut := ranking.NewCutoff()
		if cfg.Cutoffs != nil {
			cut = cfg.Cutoffs[i]
		}
		heaps[i].PublishTo(cut)
	}
	stats := Stats{}
	prune := &core.PruneStats{}
	// Pooled per-document batch scan state, reused across every document
	// of this run; see TopK.
	scratch := c.batchScratchPool.Get().(*core.BatchScratch)
	scratch.Reset()
	defer func() {
		scratch.Reset()
		c.batchScratchPool.Put(scratch)
	}()
	coreOpts := core.Options{
		Ctx:                   ctx,
		Model:                 c.model,
		NoTrees:               cfg.NoTrees,
		Prune:                 prune,
		DisableHistogramBound: cfg.NoPrune,
		DisableEarlyAbort:     cfg.NoPrune,
		BatchScratch:          scratch,
	}
	for _, d := range plan {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !cfg.NoFilter {
			// Skip the document only when no query can improve its
			// ranking here: every query's k-th distance bound is finite
			// and every per-query document bound strictly exceeds it.
			skip := true
			for i, h := range heaps {
				if d.bounds[i] <= h.KthBound() {
					skip = false
					break
				}
			}
			if skip {
				stats.Skipped++
				continue
			}
			if d.unprofiled {
				stats.Unprofiled++
			}
		}
		var h0, a0, e0 uint64
		docSpan := -1
		if tr != nil {
			h0, a0, e0 = prune.Snapshot()
			docSpan = tr.Begin(qtrace.SpanScan, d.info.Name)
		}
		err := c.scanBatchInto(qs, ov, st, d.scanDoc, heaps, coreOpts)
		if tr != nil {
			tr.End(docSpan)
			h1, a1, e1 := prune.Snapshot()
			tr.SetPrune(docSpan, h1-h0, a1-a0, e1-e0)
		}
		if err != nil {
			return nil, err
		}
		stats.Scanned++
	}
	stats.HistSkipped, stats.TEDAborted, stats.Evaluated = prune.Snapshot()
	stats.BaseDictLabels = st.base.Len()
	stats.OverlayLabels = ov.Added()
	stats.Quarantined = st.quarantined
	if cfg.Stats != nil {
		*cfg.Stats = stats
	}

	mergeSpan := tr.Begin(qtrace.SpanMerge, "")
	docsBuf := c.planPool.Get().(*[]scanDoc)
	docsOnly := (*docsBuf)[:0]
	for _, d := range plan {
		docsOnly = append(docsOnly, d.scanDoc)
	}
	out := make([][]Match, len(heaps))
	for i, h := range heaps {
		out[i] = c.resolve(h, docsOnly)
	}
	*docsBuf = docsOnly[:0]
	c.planPool.Put(docsBuf)
	tr.End(mergeSpan)
	return out, nil
}

// planBatch computes the batch scan plan: one pass over the snapshot's
// documents deriving, per query, the sound label lower bound and the
// pq-gram ordering distance. Documents are ordered by their minimum
// pq-gram distance over the queries (then minimum bound, then id), so a
// document promising for any query of the batch is scanned early. The
// plan is built on dst's backing array (from the corpus batch pool).
func (c *Corpus) planBatch(st *snapshot, qs []*tree.Tree, cfg *QueryConfig, dst []batchDoc) ([]batchDoc, error) {
	qGrams := make([]*pqgram.Profile, len(qs))
	qLabels := make([]map[int]int, len(qs))
	for i, q := range qs {
		g, err := pqgram.New(q, c.p, c.q)
		if err != nil {
			return dst, err
		}
		qGrams[i] = g
		labels := make(map[int]int, q.Size())
		for j := 0; j < q.Size(); j++ {
			labels[q.LabelID(j)]++
		}
		qLabels[i] = labels
	}

	var selected map[string]bool
	if cfg.Docs != nil {
		selected = make(map[string]bool, len(cfg.Docs))
		for _, n := range cfg.Docs {
			selected[n] = false
		}
	}

	plan := dst
	offset := 0
	for _, d := range st.docs {
		include := true
		if selected != nil {
			if _, ok := selected[d.Name]; !ok {
				include = false
			} else {
				selected[d.Name] = true
			}
		}
		if include {
			bd := batchDoc{
				scanDoc: scanDoc{info: d, offset: offset},
				bounds:  make([]float64, len(qs)),
			}
			if !cfg.NoFilter {
				if p := st.profiles[d.ID]; p != nil {
					bd.pqdist = math.MaxInt
					minBound := math.Inf(1)
					for i := range qs {
						bd.bounds[i] = labelLowerBound(qLabels[i], p.labels)
						pqd, err := pqgram.Distance(qGrams[i], p.grams)
						if err != nil {
							return plan, err
						}
						if pqd < bd.pqdist {
							bd.pqdist = pqd
						}
						if bd.bounds[i] < minBound {
							minBound = bd.bounds[i]
						}
					}
					bd.bound = minBound
				} else {
					// Unprofiled documents are never skipped (bounds stay
					// 0) and sort to the end of the scan order.
					bd.unprofiled = true
					bd.pqdist = math.MaxInt
				}
			}
			plan = append(plan, bd)
		}
		offset += d.Nodes
	}
	for name, found := range selected {
		if !found {
			return plan, fmt.Errorf("corpus: unknown document %q", name)
		}
	}
	if !cfg.NoFilter {
		sort.SliceStable(plan, func(i, j int) bool {
			if plan[i].pqdist != plan[j].pqdist {
				return plan[i].pqdist < plan[j].pqdist
			}
			if plan[i].bound != plan[j].bound {
				return plan[i].bound < plan[j].bound
			}
			return plan[i].info.ID < plan[j].info.ID
		})
	}
	return plan, nil
}

// scanBatchInto streams one document store through the shared ring-buffer
// scan of core.PostorderBatchInto, ranking all queries at once. Like
// scanInto, the snapshot's cached store serves a pooled zero-copy reader;
// a document without one falls back to a streaming read.
func (c *Corpus) scanBatchInto(qs []*tree.Tree, ov dict.Dict, st *snapshot, d scanDoc, heaps []*ranking.Heap, opts core.Options) error {
	if ds := st.stores[d.info.ID]; ds != nil {
		ir := c.readerPool.Get().(*docstore.ImageReader)
		ir.Reset(ds.img, ds.remap)
		err := core.PostorderBatchInto(qs, ir, heaps, d.offset, opts)
		c.readerPool.Put(ir)
		if err != nil {
			return &ScanError{Doc: d.info.Name, Err: err}
		}
		return nil
	}
	f, err := os.Open(filepath.Join(c.dir, d.info.Store))
	if err != nil {
		return &ScanError{Doc: d.info.Name, Err: err}
	}
	defer f.Close()
	r, err := docstore.NewReader(ov, f)
	if err != nil {
		return &ScanError{Doc: d.info.Name, Err: err}
	}
	if err := core.PostorderBatchInto(qs, r, heaps, d.offset, opts); err != nil {
		return &ScanError{Doc: d.info.Name, Err: err}
	}
	return nil
}
