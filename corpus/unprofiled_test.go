package corpus

// White-box tests for the degraded path where a document has no usable
// profile (partial ingest, deleted or corrupt profile file): queries must
// fall back to scanning that document unfiltered — with exact results and
// the degradation counted in Stats — instead of crashing.

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// brokenProfileCorpus builds a three-document corpus, breaks the middle
// document's profile file as directed, and reopens the corpus from disk.
func brokenProfileCorpus(t *testing.T, breakProfile func(t *testing.T, path string)) *Corpus {
	t.Helper()
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]string{
		"a": "{r{x{p}{q}}{y}}",
		"b": "{r{x{p}{q}}{z{p}}}",
		"c": "{r{w}{y{q}}}",
	}
	var victim DocInfo
	for _, name := range []string{"a", "b", "c"} {
		tr, err := c.ParseBracket(docs[name])
		if err != nil {
			t.Fatal(err)
		}
		info, err := c.AddTree(name, tr)
		if err != nil {
			t.Fatal(err)
		}
		if name == "b" {
			victim = info
		}
	}
	breakProfile(t, filepath.Join(dir, victim.Profile))
	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after breaking a profile: %v (profiles are a derived index; the corpus must stay available)", err)
	}
	if _, ok := reopened.profiles[victim.ID]; ok {
		t.Fatalf("profile of %q unexpectedly loaded after breaking it", victim.Name)
	}
	return reopened
}

func checkUnprofiledTopK(t *testing.T, c *Corpus) {
	t.Helper()
	q, err := c.ParseBracket("{x{p}{q}}")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	got, err := c.TopK(context.Background(), q, 4, WithStats(&stats))
	if err != nil {
		t.Fatalf("TopK with missing profile: %v", err)
	}
	if stats.Unprofiled != 1 {
		t.Errorf("Stats.Unprofiled = %d, want 1", stats.Unprofiled)
	}
	if stats.Scanned != 3 {
		t.Errorf("Stats.Scanned = %d, want 3 (an unprofiled document must never be skipped)", stats.Scanned)
	}
	want, err := c.TopK(context.Background(), q, 4, WithoutFilter())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("filtered scan returned %d matches, unfiltered %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Doc.ID != w.Doc.ID || g.Pos != w.Pos || g.Dist != w.Dist || g.Size != w.Size {
			t.Errorf("match %d: filtered %+v != unfiltered %+v", i, g, w)
		}
	}
}

func TestTopKMissingProfileFile(t *testing.T) {
	c := brokenProfileCorpus(t, func(t *testing.T, path string) {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	})
	checkUnprofiledTopK(t, c)
}

// TestTopKCorruptProfileFile: a profile file that EXISTS but holds
// garbage is corruption, not a partial ingest — since PR 8 the Open-time
// scrub quarantines the document instead of degrading it, and the
// survivors answer exactly.
func TestTopKCorruptProfileFile(t *testing.T) {
	c := brokenProfileCorpus(t, func(t *testing.T, path string) {
		if err := os.WriteFile(path, []byte("not a profile"), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("Quarantined() = %d, want 1", got)
	}
	if c.Len() != 2 {
		t.Fatalf("corpus has %d docs after quarantine, want 2", c.Len())
	}
	q, err := c.ParseBracket("{x{p}{q}}")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	got, err := c.TopK(context.Background(), q, 4, WithStats(&stats))
	if err != nil {
		t.Fatalf("TopK after quarantine: %v", err)
	}
	if stats.Quarantined != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", stats.Quarantined)
	}
	if stats.Unprofiled != 0 {
		t.Errorf("Stats.Unprofiled = %d, want 0 (quarantined docs are out of the serving set, not degraded)", stats.Unprofiled)
	}
	if stats.Scanned+stats.Skipped != 2 {
		t.Errorf("scanned %d + skipped %d, want 2 docs considered", stats.Scanned, stats.Skipped)
	}
	for _, m := range got {
		if m.Doc.Name == "b" {
			t.Errorf("quarantined document %q appeared in results", m.Doc.Name)
		}
	}
}

// TestPlanNilProfileDirect covers the in-memory variant: even when the
// profile map entry vanishes while the corpus is open (the invariant a
// partial ingest would break), plan must not dereference a nil profile.
func TestPlanNilProfileDirect(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]string{"a": "{r{x}{y}}", "b": "{r{x{p}}}"} {
		tr, err := c.ParseBracket(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddTree(name, tr); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	delete(c.profiles, c.man.Docs[0].ID)
	c.publishLocked() // queries read the prebuilt snapshot, not c.profiles
	c.mu.Unlock()

	q, err := c.ParseBracket("{x}")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if _, err := c.TopK(context.Background(), q, 2, WithStats(&stats)); err != nil {
		t.Fatalf("TopK with nil profile entry: %v", err)
	}
	if stats.Unprofiled != 1 {
		t.Errorf("Stats.Unprofiled = %d, want 1", stats.Unprofiled)
	}
}
