package corpus

// Crash-safety property tests: for EVERY scripted crash point inside an
// ingest or a removal, reopening the corpus directory must yield a
// corpus whose answers are byte-identical to either the pre-operation or
// the post-operation state — never a torn third state, and never an
// unopenable directory. The crashinject harness makes the sweep
// deterministic and exhaustive.

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"tasm/internal/atomicio"
	"tasm/internal/crashinject"
	"tasm/internal/dict"
	"tasm/internal/tree"
)

// quietLogger suppresses the scrub/quarantine warnings these tests
// provoke on purpose.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// copyDir clones a corpus directory tree for one crash-point trial.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// answer is a Match stripped to its identity-independent fields: document
// ids and generations differ across reconstructed corpora, names and
// ranked positions do not.
type answer struct {
	name string
	pos  int
	dist float64
	size int
	tree string
}

// crashQuery is the fixed probe query every oracle comparison uses.
const crashQuery = "{x{p}{q}}"

// answersAt reopens dir with the real filesystem — the recovery path a
// restarted process takes — and returns its TopK answers.
func answersAt(t *testing.T, dir string) []answer {
	t.Helper()
	c, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatalf("reopening %s: %v", dir, err)
	}
	q, err := c.ParseBracket(crashQuery)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := c.TopK(context.Background(), q, 8)
	if err != nil {
		t.Fatalf("TopK after reopen: %v", err)
	}
	out := make([]answer, len(ms))
	for i, m := range ms {
		out[i] = answer{name: m.Doc.Name, pos: m.Pos, dist: m.Dist, size: m.Size, tree: m.Tree.String()}
	}
	return out
}

func sameAnswers(a, b []answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildBaseline creates a two-document corpus directory.
func buildBaseline(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	c, err := Open(dir, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []struct{ name, s string }{
		{"a", "{r{x{p}{q}}{y}}"},
		{"c", "{r{w}{y{q}}}"},
	} {
		tr, err := c.ParseBracket(d.s)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddTree(d.name, tr); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// sweepCrashPoints runs op against a fresh copy of base at every crash
// point until op survives a full disarmed... rather, until the armed
// step exceeds op's step count, asserting after each crash that the
// reopened corpus answers exactly pre or post.
// minPoints guards against the sweep becoming vacuous (e.g. an op that
// stops routing its writes through the injected FS would "survive" every
// crash point). Note the sweep may end before the op's literal last
// step: once a crash lands only in best-effort cleanup whose errors the
// op swallows (file GC after a committed manifest), the op returns nil
// and the loop exits — correctly, because the commit already happened.
func sweepCrashPoints(t *testing.T, base string, pre, post []answer, minPoints int, op func(*Corpus) error) {
	t.Helper()
	inj := crashinject.New(atomicio.OS)
	swept := 0
	for at := 0; ; at++ {
		dir := t.TempDir()
		copyDir(t, base, dir)
		c, err := Open(dir, WithFS(inj), WithLogger(quietLogger()))
		if err != nil {
			t.Fatalf("crash point %d: opening the baseline copy: %v", at, err)
		}
		inj.Arm(at)
		opErr := op(c)
		inj.Disarm()
		if opErr == nil {
			// The armed step exceeded the operation's step count: the op
			// ran crash-free, the sweep is complete.
			if got := answersAt(t, dir); !sameAnswers(got, post) {
				t.Fatalf("crash-free run: answers %v, want post state %v", got, post)
			}
			break
		}
		if !errors.Is(opErr, crashinject.ErrCrash) {
			t.Fatalf("crash point %d: op failed with %v, want a simulated crash", at, opErr)
		}
		got := answersAt(t, dir)
		if !sameAnswers(got, pre) && !sameAnswers(got, post) {
			t.Fatalf("crash point %d: reopened corpus answers a torn third state:\n got %v\n pre %v\npost %v",
				at, got, pre, post)
		}
		swept++
	}
	if swept < minPoints {
		t.Fatalf("swept only %d crash points, want ≥ %d; the commit protocol has more steps than that", swept, minPoints)
	}
	t.Logf("swept %d crash points", swept)
}

// TestCrashPointsIngest: every crash point of AddTree recovers to the
// pre-ingest corpus (possibly after sweeping debris) or the fully
// ingested one.
func TestCrashPointsIngest(t *testing.T) {
	base := buildBaseline(t)
	pre := answersAt(t, base)

	committed := t.TempDir()
	copyDir(t, base, committed)
	newDoc := func(c *Corpus) error {
		tr := tree.MustParse(dict.New(), "{r{x{p}{q}}{z{p}}}")
		_, err := c.AddTree("b", tr)
		return err
	}
	cc, err := Open(committed, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	if err := newDoc(cc); err != nil {
		t.Fatal(err)
	}
	post := answersAt(t, committed)
	if sameAnswers(pre, post) {
		t.Fatal("test is vacuous: ingest does not change the probe query's answers")
	}

	// Three durable commits (store, profile, manifest) at ~9 steps each.
	sweepCrashPoints(t, base, pre, post, 20, newDoc)
}

// TestCrashPointsRemove: every crash point of Remove recovers to the
// corpus with the document still present or fully gone.
func TestCrashPointsRemove(t *testing.T) {
	base := buildBaseline(t)
	pre := answersAt(t, base)

	committed := t.TempDir()
	copyDir(t, base, committed)
	cc, err := Open(committed, WithLogger(quietLogger()))
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Remove("a"); err != nil {
		t.Fatal(err)
	}
	post := answersAt(t, committed)
	if sameAnswers(pre, post) {
		t.Fatal("test is vacuous: removal does not change the probe query's answers")
	}

	// One durable manifest commit; the trailing file GC swallows crashes.
	sweepCrashPoints(t, base, pre, post, 8, func(c *Corpus) error {
		return c.Remove("a")
	})
}
