package corpus_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tasm/corpus"
	"tasm/internal/qtrace"
	"tasm/internal/tree"
)

// randBracket emits a random bracket-notation tree of roughly n nodes
// over a small label universe, the same corpus shape the benchmarks use.
func randBracket(rng *rand.Rand, n int) string {
	var b strings.Builder
	var emit func(budget int) int
	emit = func(budget int) int {
		fmt.Fprintf(&b, "{l%d", rng.Intn(12))
		used := 1
		for used < budget {
			c := 1 + rng.Intn(budget-used)
			used += emit(c)
		}
		b.WriteByte('}')
		return used
	}
	emit(n)
	return b.String()
}

// buildMmapCorpus populates dir with docs random documents so the same
// directory can be reopened under different load modes.
func buildMmapCorpus(t *testing.T, dir string, docs int) {
	t.Helper()
	c, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < docs; i++ {
		tr, err := c.ParseBracket(randBracket(rng, 40+rng.Intn(40)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.AddTree(fmt.Sprintf("doc%02d", i), tr); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMmapFallbackEquivalence pins the tentpole contract: the mapped
// zero-copy reader and the WithMmap(false) heap fallback answer every
// query byte-identically, for both single and batch serving.
func TestMmapFallbackEquivalence(t *testing.T) {
	dir := t.TempDir()
	buildMmapCorpus(t, dir, 8)

	mapped, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := corpus.Open(dir, corpus.WithMmap(false))
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{"{l0{l1}{l2}}", "{l3{l4{l5}}{l6}}", "{l7}", "{l1{l1{l1}}}"}
	ctx := context.Background()
	for qi, qs := range queries {
		q1, err := mapped.ParseBracket(qs)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := heap.ParseBracket(qs)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 5} {
			m1, err := mapped.TopK(ctx, q1, k)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := heap.TopK(ctx, q2, k)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := matchesJSON(t, m1), matchesJSON(t, m2); a != b {
				t.Fatalf("query %d k=%d: mapped and fallback disagree\n mapped  %s\n fallback %s", qi, k, a, b)
			}
		}
	}

	// Batch serving shares the same per-document readers.
	var bq1, bq2 []*tree.Tree
	for _, qs := range queries {
		t1, err := mapped.ParseBracket(qs)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := heap.ParseBracket(qs)
		if err != nil {
			t.Fatal(err)
		}
		bq1 = append(bq1, t1)
		bq2 = append(bq2, t2)
	}
	r1, err := mapped.TopKBatch(ctx, bq1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := heap.TopKBatch(ctx, bq2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if a, b := matchesJSON(t, r1[i]), matchesJSON(t, r2[i]); a != b {
			t.Fatalf("batch query %d: mapped and fallback disagree\n mapped  %s\n fallback %s", i, a, b)
		}
	}
}

// TestMappedBytes checks the serving-tier accounting: a mapped corpus
// reports its store bytes, the heap fallback reports zero, and removal
// shrinks the figure.
func TestMappedBytes(t *testing.T) {
	dir := t.TempDir()
	buildMmapCorpus(t, dir, 4)

	heap, err := corpus.Open(dir, corpus.WithMmap(false))
	if err != nil {
		t.Fatal(err)
	}
	if got := heap.MappedBytes(); got != 0 {
		t.Fatalf("WithMmap(false) corpus reports %d mapped bytes, want 0", got)
	}

	mapped, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	before := mapped.MappedBytes()
	if before <= 0 {
		t.Skip("platform without mmap support: MappedBytes is 0 by design")
	}
	if err := mapped.Remove("doc00"); err != nil {
		t.Fatal(err)
	}
	if after := mapped.MappedBytes(); after >= before {
		t.Fatalf("MappedBytes did not shrink after Remove: before=%d after=%d", before, after)
	}
}

// TestTopKAllocBudget pins the corpus-level allocation contract of this
// change: a TopK over an already-open corpus must not scale allocations
// with document size — no per-query file opens, label re-interning, or
// ring-buffer rebuilds — even with a live trace attached. The bound is a
// regression tripwire with headroom over the measured steady state, not
// a precise count.
func TestTopKAllocBudget(t *testing.T) {
	dir := t.TempDir()
	buildMmapCorpus(t, dir, 6)
	c, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.ParseBracket("{l0{l1}{l2}}")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Warm pools and the frozen dictionary read-through path.
	if _, err := c.TopK(ctx, q, 3); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		tr := qtrace.New()
		if _, err := c.TopK(qtrace.NewContext(ctx, tr), q, 3); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 400
	t.Logf("TopK allocs per query: %.0f (budget %d)", allocs, budget)
	if allocs > budget {
		t.Fatalf("TopK allocates %.0f objects per query, budget %d", allocs, budget)
	}
}
