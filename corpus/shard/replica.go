package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"tasm/corpus"
	"tasm/internal/qtrace"
	"tasm/internal/tree"
)

// DefaultHedgeDelay is the hedge delay a NewReplicaSet starts with: long
// enough that a healthy primary answers most queries alone, short enough
// that a stalled one costs tail latency, not a timeout.
const DefaultHedgeDelay = 100 * time.Millisecond

// ReplicaSet is a corpus.Searcher over N interchangeable replicas of one
// shard — Searchers holding the same documents (same names, same
// content, ingested in the same order), typically shard.Clients pointing
// at tasmd processes serving copies of one corpus directory.
//
// A query goes to the primary (the first replica) immediately. If the
// primary has not answered within the hedge delay, the same query is
// hedged to the next replica — and so on down the list — and the first
// successful answer wins; the losers are cancelled through the standard
// context plumbing, so a hedge that loses stops paying for its scan
// mid-flight. A replica that fails with a retryable (backend-side)
// error is failed over immediately, without waiting for the delay, and
// a replica whose circuit breaker is open is skipped without a network
// round trip. The query fails only when every replica has failed.
//
// Because replicas hold identical documents, whichever replica answers
// produces the same ranking: a Group composes over ReplicaSets exactly
// as over plain shards, and the group's shared cutoff keeps pruning
// across whichever replica answers. A ReplicaSet is safe for concurrent
// use.
type ReplicaSet struct {
	name       string
	replicas   []child
	hedgeDelay time.Duration
}

var _ corpus.Searcher = (*ReplicaSet)(nil)
var _ docLister = (*ReplicaSet)(nil)

// ReplicaOption configures a ReplicaSet.
type ReplicaOption func(*ReplicaSet)

// WithHedgeDelay sets how long the set waits for the current attempt
// before hedging the query to the next replica (default
// DefaultHedgeDelay). d <= 0 hedges immediately: every replica is
// queried at once and the first answer wins.
func WithHedgeDelay(d time.Duration) ReplicaOption {
	return func(rs *ReplicaSet) { rs.hedgeDelay = d }
}

// WithReplicaSetName overrides the name the set reports in errors and to
// a surrounding Group (default: the replicas' names joined with "|").
func WithReplicaSetName(name string) ReplicaOption {
	return func(rs *ReplicaSet) { rs.name = name }
}

// NewReplicaSet returns a Searcher over interchangeable replicas in
// priority order: replicas[0] is the primary, later replicas serve
// hedges and failovers.
func NewReplicaSet(replicas []corpus.Searcher, opts ...ReplicaOption) *ReplicaSet {
	rs := &ReplicaSet{
		replicas:   make([]child, len(replicas)),
		hedgeDelay: DefaultHedgeDelay,
	}
	names := make([]string, len(replicas))
	for i, r := range replicas {
		name := fmt.Sprintf("replica%d", i)
		if n, ok := r.(namer); ok && n.Name() != "" {
			name = n.Name()
		}
		rs.replicas[i] = child{name: name, s: r}
		names[i] = name
	}
	for _, o := range opts {
		o(rs)
	}
	if rs.name == "" {
		rs.name = strings.Join(names, "|")
	}
	return rs
}

// Name returns the set's name; a Group uses it to attribute failures.
func (rs *ReplicaSet) Name() string { return rs.name }

// Len returns the number of replicas.
func (rs *ReplicaSet) Len() int { return len(rs.replicas) }

// TopK answers the query from whichever replica wins the hedged race.
//
//tasm:allow ctxpoll — cancellation is delegated: race runs each replica Searcher under a derived ctx, replicas poll per candidate, and a ctx error from an attempt aborts the race
func (rs *ReplicaSet) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	cfg := corpus.ResolveQueryOptions(opts...)
	if err := corpus.ValidateQuery(q, k); err != nil {
		return nil, err
	}
	res, err := rs.race(ctx, &cfg, func(ctx context.Context, s corpus.Searcher, childCfg corpus.QueryConfig) (any, error) {
		return s.TopK(ctx, q, k, corpus.WithConfig(childCfg))
	})
	if err != nil {
		return nil, err
	}
	return res.([]corpus.Match), nil
}

// TopKBatch answers the batch from whichever replica wins the hedged
// race (a batch hedges as one unit: replicas answer whole batches).
//
//tasm:allow ctxpoll — cancellation is delegated: race runs each replica Searcher under a derived ctx, replicas poll per candidate, and a ctx error from an attempt aborts the race
func (rs *ReplicaSet) TopKBatch(ctx context.Context, queries []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	cfg := corpus.ResolveQueryOptions(opts...)
	if err := corpus.ValidateBatch(queries, k, &cfg); err != nil {
		return nil, err
	}
	res, err := rs.race(ctx, &cfg, func(ctx context.Context, s corpus.Searcher, childCfg corpus.QueryConfig) (any, error) {
		return s.TopKBatch(ctx, queries, k, corpus.WithConfig(childCfg))
	})
	if err != nil {
		return nil, err
	}
	return res.([][]corpus.Match), nil
}

// replicaAttempt is one replica's answer in the race.
type replicaAttempt struct {
	idx   int
	res   any
	stats corpus.Stats
	err   error
}

// race runs the hedged request loop: launch the primary, hedge down the
// replica list on the hedge timer, fail over immediately on retryable
// errors, skip breaker-open replicas for free, adopt the first success
// and cancel the rest. Losing attempts are cancelled through the derived
// context; their goroutines drain into a buffered channel, so nothing
// leaks even though race returns before they finish unwinding. Each
// attempt retains the request trace for the same reason: a loser's final
// span write may land after the response was written and the trace
// released, and must not hit a recycled slab.
//
// Every attempt gets a private Stats (two replicas must never write one
// struct concurrently); the winner's scan statistics are adopted and the
// race's own fault accounting (hedges fired, breaker skips) merged in,
// then stored through cfg.Stats.
func (rs *ReplicaSet) race(ctx context.Context, cfg *corpus.QueryConfig, call func(context.Context, corpus.Searcher, corpus.QueryConfig) (any, error)) (any, error) {
	if len(rs.replicas) == 0 {
		return nil, fmt.Errorf("shard: replica set %s has no replicas", rs.name)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(rs.replicas)
	results := make(chan replicaAttempt, n)
	tr := qtrace.FromContext(ctx)
	launch := func(i int) {
		// The attempt may lose the race and unwind after the request's
		// response has been written and its trace released; retaining
		// keeps the slab alive until this goroutine's last span write.
		tr.Retain()
		go func() {
			defer qtrace.Release(tr)
			childCfg := *cfg
			var st corpus.Stats
			childCfg.Stats = &st
			span := tr.Begin(qtrace.SpanShard, rs.replicas[i].name)
			res, err := call(ctx, rs.replicas[i].s, childCfg)
			tr.End(span)
			results <- replicaAttempt{idx: i, res: res, stats: st, err: err}
		}()
	}

	launched, pending := 1, 1
	launch(0)
	var fault corpus.Stats // the race's own hedge/failover/breaker accounting
	hedges := 0

	var timer *time.Timer
	var timerC <-chan time.Time
	if n > 1 {
		if rs.hedgeDelay <= 0 {
			for launched < n {
				launch(launched)
				launched++
				pending++
				hedges++
			}
		} else {
			timer = time.NewTimer(rs.hedgeDelay)
			defer timer.Stop()
			timerC = timer.C
		}
	}

	var errs []error
	for {
		select {
		case <-timerC:
			if launched < n {
				launch(launched)
				launched++
				pending++
				hedges++
			}
			// Re-arm for the next replica down the list: the fired channel
			// is drained, so without a Reset the escalation would stop at
			// the first hedge and leave later replicas reachable only
			// through explicit failures.
			if launched < n {
				timer.Reset(rs.hedgeDelay)
			} else {
				timerC = nil
			}
		case a := <-results:
			pending--
			if a.err == nil {
				st := a.stats
				if hedges > 0 {
					fault.Hedges += uint64(hedges)
					fault.Hedged = append(fault.Hedged, rs.name)
				}
				st.MergeFault(&fault)
				if cfg.Stats != nil {
					*cfg.Stats = st
				}
				return a.res, nil
			}
			// The losing attempt's own fault accounting (retries it burned
			// before failing) still happened: fold it into the race's
			// accumulator so the winner's merged stats report it.
			fault.MergeFault(&a.stats)
			// The race's own cancellation of losers never reaches here as a
			// verdict (we return on the first success); a context error
			// therefore means the caller gave up.
			if errors.Is(a.err, context.Canceled) || errors.Is(a.err, context.DeadlineExceeded) {
				return nil, a.err
			}
			if !retryableError(a.err) {
				// The caller's mistake (unknown document, bad query): every
				// replica would answer the same, so hedging cannot help.
				return nil, a.err
			}
			if errors.Is(a.err, ErrBreakerOpen) {
				// Skipped for free by an open breaker: account the skip and
				// move on without counting a hedge — no request was sent.
				fault.BreakerSkipped = append(fault.BreakerSkipped, rs.replicas[a.idx].name)
			} else {
				errs = append(errs, a.err)
			}
			if launched < n {
				// Immediate failover: don't wait for the hedge timer when
				// the current attempt has already failed.
				launch(launched)
				launched++
				pending++
				if !errors.Is(a.err, ErrBreakerOpen) {
					hedges++
				}
			} else if pending == 0 {
				return nil, rs.allFailed(errs)
			}
		}
	}
}

// allFailed composes the terminal error of a race no replica survived,
// wrapping the first real failure (breaker skips are bookkeeping, not
// causes) so errors.Is/As still reach the root cause.
func (rs *ReplicaSet) allFailed(errs []error) error {
	if len(errs) == 0 {
		// Every replica was breaker-skipped: the shard is known dead.
		return &corpus.ScanError{Shard: rs.name, Err: fmt.Errorf("all %d replicas skipped: %w", len(rs.replicas), ErrBreakerOpen)}
	}
	if len(rs.replicas) == 1 {
		return errs[0] // a pass-through set adds no information
	}
	return fmt.Errorf("shard %s: all %d replicas failed: %w", rs.name, len(rs.replicas), errs[0])
}

// retryableError reports whether another replica might succeed where
// this one failed: backend-side scan errors (dead or broken replica)
// qualify, the caller's own mistakes and cancellations do not.
func retryableError(err error) bool {
	var se *corpus.ScanError
	return errors.As(err, &se)
}

// Docs lists the documents of the first replica that answers (replicas
// are interchangeable by contract). Failed remote replicas fall back
// like Client.Docs; use DocsContext to observe failures.
func (rs *ReplicaSet) Docs() []corpus.DocInfo {
	for i := range rs.replicas {
		if docs := rs.replicas[i].s.Docs(); docs != nil || i == len(rs.replicas)-1 {
			return docs
		}
	}
	return nil
}

// DocsContext lists the documents from the first replica that can serve
// a fresh listing, failing over down the list; it fails only when every
// replica does, attributed to the set.
func (rs *ReplicaSet) DocsContext(ctx context.Context) ([]corpus.DocInfo, error) {
	var firstErr error
	for i := range rs.replicas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dl, ok := rs.replicas[i].s.(docLister)
		if !ok {
			return rs.replicas[i].s.Docs(), nil // local searchers cannot fail
		}
		docs, err := dl.DocsContext(ctx)
		if err == nil {
			return docs, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, attribute(rs.name, firstErr)
}

// Generation returns the largest generation any replica reports.
// Replicas of one shard hold the same document set, so their generations
// agree in steady state; during an ingest rollout the max is the most
// recent view, and it never repeats a value for a different document set
// because every replica's generation is monotone.
func (rs *ReplicaSet) Generation() uint64 {
	var gen uint64
	for i := range rs.replicas {
		if g := rs.replicas[i].s.Generation(); g > gen {
			gen = g
		}
	}
	return gen
}

// NumDocs returns the first replica's cached document count (replicas
// are interchangeable), falling over to the next on unknown. A replica
// without a cached count is a local searcher whose Docs() is an
// in-memory listing; one whose listing comes back nil is skipped rather
// than reported as a confident zero.
func (rs *ReplicaSet) NumDocs() (int, bool) {
	for i := range rs.replicas {
		if nd, ok := rs.replicas[i].s.(interface{ NumDocs() (int, bool) }); ok {
			if n, known := nd.NumDocs(); known {
				return n, true
			}
			continue
		}
		if docs := rs.replicas[i].s.Docs(); docs != nil {
			return len(docs), true
		}
	}
	return 0, false
}
