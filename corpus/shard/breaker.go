package shard

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen reports that a request was refused locally by an open
// circuit breaker, without a network round trip. It always travels
// wrapped in a *corpus.ScanError naming the shard, so errors.Is finds it
// through the group's error plumbing; a ReplicaSet uses it to fail over
// to the next replica immediately and account the skip.
var ErrBreakerOpen = errors.New("circuit breaker open")

// BreakerState is the observable state of a client's circuit breaker.
type BreakerState int

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown has passed and one probe request is
	// allowed through; its outcome closes or re-opens the breaker.
	BreakerHalfOpen
	// BreakerOpen: requests are refused locally with ErrBreakerOpen.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// BreakerPolicy configures a client's per-shard circuit breaker.
type BreakerPolicy struct {
	// Threshold is the number of consecutive attempt failures that opens
	// the breaker. 0 selects the default; < 0 disables the breaker.
	Threshold int
	// Cooldown is how long an open breaker refuses requests before
	// letting one half-open probe through. 0 selects the default.
	Cooldown time.Duration
}

// DefaultBreakerPolicy is the breaker every NewClient starts with: five
// consecutive failures open it, and a dead leaf is re-probed every two
// seconds instead of being re-timed-out by every query.
var DefaultBreakerPolicy = BreakerPolicy{Threshold: 5, Cooldown: 2 * time.Second}

// withDefaults fills zero fields from DefaultBreakerPolicy.
func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold == 0 {
		p.Threshold = DefaultBreakerPolicy.Threshold
	}
	if p.Cooldown == 0 {
		p.Cooldown = DefaultBreakerPolicy.Cooldown
	}
	return p
}

// breaker is a classic closed → open → half-open circuit breaker over
// consecutive attempt failures. It protects the router from paying a
// full connect timeout per query against a leaf that is known dead: once
// open, requests fail locally and instantly until a cooldown passes, then
// a single probe decides whether the leaf is back.
//
// The zero/nil breaker is disabled (always allows, never trips). The
// clock is injectable so tests pin the state machine without sleeping.
type breaker struct {
	policy BreakerPolicy
	now    func() time.Time

	mu          sync.Mutex
	state       BreakerState
	consecutive int       // consecutive failures while closed
	openedAt    time.Time // when the breaker last opened
	probing     bool      // a half-open probe is in flight
}

// newBreaker returns a breaker under p, or nil (disabled) when
// p.Threshold < 0.
func newBreaker(p BreakerPolicy) *breaker {
	p = p.withDefaults()
	if p.Threshold < 0 {
		return nil
	}
	return &breaker{policy: p, now: time.Now}
}

// allow reports whether an attempt may proceed, and whether the admitted
// attempt is the half-open probe. In the open state it starts the
// half-open transition once the cooldown has passed, letting exactly one
// probe through; concurrent requests keep failing locally until the
// probe settles. A caller admitted as the probe MUST settle it — with
// success, failure, or noVerdict — on every exit path, or the breaker
// wedges half-open refusing all future requests.
func (b *breaker) allow() (ok, probe bool) {
	if b == nil {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.policy.Cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// success records a successful attempt: the breaker closes and the
// failure streak resets.
func (b *breaker) success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consecutive = 0
	b.probing = false
}

// failure records a failed attempt: a failed half-open probe re-opens
// immediately, and a closed breaker opens once the streak reaches the
// threshold.
func (b *breaker) failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		return
	}
	b.consecutive++
	if b.state == BreakerClosed && b.consecutive >= b.policy.Threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// noVerdict settles an admitted attempt that ended without a verdict on
// the shard's health — the caller cancelled it, or it failed before
// reaching the network. probe is the flag allow returned for this
// attempt. For the half-open probe this reverts the breaker to open,
// keeping the openedAt the cooldown already elapsed against, so the very
// next request is admitted as a fresh probe; without it a cancelled
// probe would leave probing set forever and the breaker stuck half-open
// refusing everything. For a non-probe attempt there is nothing to
// settle: the failure streak only counts real verdicts.
func (b *breaker) noVerdict(probe bool) {
	if b == nil || !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probing {
		b.state = BreakerOpen
		b.probing = false
	}
}

// snapshot returns the current state for telemetry.
func (b *breaker) snapshot() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.policy.Cooldown {
		return BreakerHalfOpen // a probe would be admitted right now
	}
	return b.state
}
