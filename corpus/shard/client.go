package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tasm/corpus"
	"tasm/internal/dict"
	"tasm/internal/qtrace"
	"tasm/internal/tree"
)

// Client is a corpus.Searcher over a remote tasmd instance's HTTP API:
// queries are serialized in bracket notation, re-interned by the server
// through its own request-scoped dictionary overlay, and answered from
// its corpus (or, when the remote is itself a router, its shard group).
// Contexts are honored end to end — the HTTP request carries the ctx, so
// a cancelled query aborts the connection and the server's ctx plumbing
// stops the remote scan.
//
// The shared-cutoff protocol of a local Group does not cross the process
// boundary: the remote end prunes within itself only, and a surrounding
// Group folds the returned k-th distance into its cutoff after the
// response arrives. WithoutCandidatePruning is not part of the wire API
// and is ignored.
//
// A Client is safe for concurrent use.
type Client struct {
	base string
	name string
	hc   *http.Client

	gen          atomic.Uint64 // last generation observed from /healthz
	genRefreshed atomic.Int64  // unix nanos of the last refresh start
	numDocs      atomic.Int64  // last document count observed; -1 = never

	mu sync.Mutex
	// docs caches the remote manifest for enriching matches, keyed by
	// document NAME: names are unique across a whole deployment (the same
	// contract as within one corpus), while ids are only unique per leaf —
	// a client pointed at a router sees its leaves' id spaces collide.
	docs map[string]corpus.DocInfo
}

var _ corpus.Searcher = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the HTTP client (default: 5-minute timeout,
// matching the server's write timeout for long scans).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithName overrides the name the client reports in errors and to a
// surrounding Group (default: the base URL).
func WithName(name string) ClientOption {
	return func(c *Client) { c.name = name }
}

// NewClient returns a Searcher speaking to the tasmd instance at baseURL
// (e.g. "http://db1:8421"). No connection is made until the first call.
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	baseURL = strings.TrimRight(baseURL, "/")
	if !strings.HasPrefix(baseURL, "http://") && !strings.HasPrefix(baseURL, "https://") {
		return nil, fmt.Errorf("shard: base URL %q must start with http:// or https://", baseURL)
	}
	c := &Client{
		base: baseURL,
		name: baseURL,
		hc:   &http.Client{Timeout: 5 * time.Minute},
		docs: map[string]corpus.DocInfo{},
	}
	c.numDocs.Store(-1)
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Name returns the client's name (the base URL unless overridden); a
// Group uses it to attribute failures.
func (c *Client) Name() string { return c.name }

// The wire shapes mirror cmd/tasmd's JSON API.
type wireTopKRequest struct {
	Query      string   `json:"query,omitempty"`
	K          int      `json:"k"`
	Docs       []string `json:"docs,omitempty"`
	Workers    int      `json:"workers,omitempty"`
	Trees      bool     `json:"trees,omitempty"`
	Exhaustive bool     `json:"exhaustive,omitempty"`
}

type wireBatchRequest struct {
	Queries    []string `json:"queries"`
	K          int      `json:"k"`
	Docs       []string `json:"docs,omitempty"`
	Trees      bool     `json:"trees,omitempty"`
	Exhaustive bool     `json:"exhaustive,omitempty"`
}

type wireMatch struct {
	Doc   string  `json:"doc"`
	DocID int     `json:"docId"`
	Pos   int     `json:"pos"`
	Dist  float64 `json:"dist"`
	Size  int     `json:"size"`
	Tree  string  `json:"tree,omitempty"`
}

type wireStats struct {
	Scanned        int    `json:"scanned"`
	Skipped        int    `json:"skipped"`
	HistSkipped    uint64 `json:"histSkipped"`
	TEDAborted     uint64 `json:"tedAborted"`
	Evaluated      uint64 `json:"evaluated"`
	BaseDictLabels int    `json:"baseDictLabels"`
	OverlayLabels  int    `json:"overlayLabels"`
	Cached         bool   `json:"cached"`
}

func (s *wireStats) stats() corpus.Stats {
	return corpus.Stats{
		Scanned:        s.Scanned,
		Skipped:        s.Skipped,
		HistSkipped:    s.HistSkipped,
		TEDAborted:     s.TEDAborted,
		Evaluated:      s.Evaluated,
		BaseDictLabels: s.BaseDictLabels,
		OverlayLabels:  s.OverlayLabels,
	}
}

type wireTopKResponse struct {
	Matches []wireMatch  `json:"matches"`
	Stats   wireStats    `json:"stats"`
	Trace   *qtrace.Wire `json:"trace,omitempty"`
}

type wireBatchResponse struct {
	Results [][]wireMatch `json:"results"`
	Stats   wireStats     `json:"stats"`
	Trace   *qtrace.Wire  `json:"trace,omitempty"`
}

// TopK answers the query remotely. The query tree may come from any
// dictionary — it travels as a bracket string and is re-interned by the
// server.
func (c *Client) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	cfg := corpus.ResolveQueryOptions(opts...)
	if err := corpus.ValidateQuery(q, k); err != nil {
		return nil, err
	}
	var resp wireTopKResponse
	err := c.post(ctx, "/v1/topk", wireTopKRequest{
		Query:      q.String(),
		K:          k,
		Docs:       cfg.Docs,
		Workers:    cfg.Workers,
		Trees:      !cfg.NoTrees,
		Exhaustive: cfg.NoFilter,
	}, &resp)
	if err != nil {
		return nil, err
	}
	qtrace.FromContext(ctx).AddChild(resp.Trace)
	if cfg.Stats != nil {
		*cfg.Stats = resp.Stats.stats()
	}
	ms, err := c.matches(ctx, resp.Matches)
	if err != nil {
		return nil, err
	}
	// Late cutoff propagation: the remote scan could not see the group's
	// bound, but its answer still tightens it for shards that are slower.
	if cfg.Cutoff != nil && len(ms) == k {
		cfg.Cutoff.Tighten(ms[k-1].Dist)
	}
	return ms, nil
}

// TopKBatch answers the batch remotely in one request (one remote corpus
// scan serves all queries).
func (c *Client) TopKBatch(ctx context.Context, queries []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	cfg := corpus.ResolveQueryOptions(opts...)
	if err := corpus.ValidateBatch(queries, k, &cfg); err != nil {
		return nil, err
	}
	qs := make([]string, len(queries))
	for i, q := range queries {
		qs[i] = q.String()
	}
	var resp wireBatchResponse
	err := c.post(ctx, "/v1/topk-batch", wireBatchRequest{
		Queries:    qs,
		K:          k,
		Docs:       cfg.Docs,
		Trees:      !cfg.NoTrees,
		Exhaustive: cfg.NoFilter,
	}, &resp)
	if err != nil {
		return nil, err
	}
	qtrace.FromContext(ctx).AddChild(resp.Trace)
	if cfg.Stats != nil {
		*cfg.Stats = resp.Stats.stats()
	}
	out := make([][]corpus.Match, len(resp.Results))
	for i, ws := range resp.Results {
		ms, err := c.matches(ctx, ws)
		if err != nil {
			return nil, err
		}
		out[i] = ms
		if cfg.Cutoffs != nil && i < len(cfg.Cutoffs) && cfg.Cutoffs[i] != nil && len(ms) == k {
			cfg.Cutoffs[i].Tighten(ms[k-1].Dist)
		}
	}
	return out, nil
}

// Docs fetches the remote manifest. On a transport failure it falls back
// to the last listing it saw (Searcher.Docs carries no error); a fresh
// client that has never reached the server returns nil. Callers that
// must distinguish an outage from an empty corpus use DocsContext.
func (c *Client) Docs() []corpus.DocInfo {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	docs, err := c.fetchDocs(ctx)
	if err != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		docs = make([]corpus.DocInfo, 0, len(c.docs))
		for _, d := range c.docs {
			docs = append(docs, d)
		}
		sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
		return docs
	}
	return docs
}

// DocsContext fetches the remote manifest under the caller's context and
// reports transport failures instead of falling back to a stale cache. A
// Group resolves WithDocs selections through it, so a shard outage
// surfaces as that shard's failure rather than as "unknown document".
func (c *Client) DocsContext(ctx context.Context) ([]corpus.DocInfo, error) {
	return c.fetchDocs(ctx)
}

// genRefreshTTL rate-limits background generation refreshes: between
// refreshes Generation serves the cached value, so cache-key computation
// on a router's request hot path never blocks on a remote round trip.
const genRefreshTTL = time.Second

// Generation returns the last remote generation observed from /healthz,
// kicking off (at most once per genRefreshTTL) a background refresh. The
// value therefore lags the remote corpus by at most the TTL plus one
// round trip — a result cache keyed on it serves answers at most that
// stale after a remote ingest or removal, and is exactly invalidated
// once the refresh lands. A fresh client reports 0 until its first
// refresh completes; an unreachable server leaves the last value
// standing (queries against it fail anyway).
func (c *Client) Generation() uint64 {
	now := time.Now().UnixNano()
	last := c.genRefreshed.Load()
	if now-last >= int64(genRefreshTTL) && c.genRefreshed.CompareAndSwap(last, now) {
		go c.refreshGeneration()
	}
	return c.gen.Load()
}

// refreshGeneration fetches /healthz once and stores the generation and
// document count it reports.
func (c *Client) refreshGeneration() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var health struct {
		Generation uint64 `json:"generation"`
		Docs       int64  `json:"docs"`
	}
	if err := c.get(ctx, "/healthz", &health); err == nil {
		c.gen.Store(health.Generation)
		c.numDocs.Store(health.Docs)
	}
}

// NumDocs returns the last remote document count observed (from /healthz
// refreshes and manifest fetches) without a remote round trip, so
// liveness probes and metric scrapes through a router never block on its
// leaves. false until the server has been reached at least once; a
// rate-limited background refresh is kicked either way.
func (c *Client) NumDocs() (int, bool) {
	c.Generation() // kicks the rate-limited async refresh
	if n := c.numDocs.Load(); n >= 0 {
		return int(n), true
	}
	return 0, false
}

// matches converts wire matches, enriching each DocInfo from the cached
// remote manifest (refreshed once per call on a miss — e.g. after a
// remote ingest). A document that vanished between the response and the
// refresh keeps the id and name the response carried.
func (c *Client) matches(ctx context.Context, ws []wireMatch) ([]corpus.Match, error) {
	out := make([]corpus.Match, len(ws))
	refreshed := false
	var d dict.Dict // one response-local dictionary for returned trees
	for i, w := range ws {
		info, ok := c.lookupDoc(w.Doc)
		if !ok && !refreshed {
			refreshed = true
			if _, err := c.fetchDocs(ctx); err == nil {
				info, ok = c.lookupDoc(w.Doc)
			}
		}
		if !ok {
			info = corpus.DocInfo{ID: w.DocID, Name: w.Doc}
		}
		out[i] = corpus.Match{Doc: info, Pos: w.Pos, Dist: w.Dist, Size: w.Size}
		if w.Tree != "" {
			if d == nil {
				d = dict.New()
			}
			t, err := tree.Parse(d, w.Tree)
			if err != nil {
				return nil, fmt.Errorf("shard: %s returned unparseable match tree: %w", c.name, err)
			}
			out[i].Tree = t
		}
	}
	return out, nil
}

func (c *Client) lookupDoc(name string) (corpus.DocInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[name]
	return d, ok
}

// fetchDocs retrieves the remote manifest and replaces the cache.
func (c *Client) fetchDocs(ctx context.Context) ([]corpus.DocInfo, error) {
	var listing struct {
		Docs []corpus.DocInfo `json:"docs"`
	}
	if err := c.get(ctx, "/v1/docs", &listing); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.docs = make(map[string]corpus.DocInfo, len(listing.Docs))
	for _, d := range listing.Docs {
		c.docs[d.Name] = d
	}
	c.mu.Unlock()
	c.numDocs.Store(int64(len(listing.Docs)))
	return listing.Docs, nil
}

// post sends a JSON request and decodes the JSON response into out.
// When the context carries a trace marked for propagation, the request
// asks the remote tier for its trace block (?trace=1) and stitches the
// tiers with a W3C traceparent header: the remote tasmd continues this
// trace's id and names our root span as its parent, so the caller's
// AddChild produces one tree of spans across processes.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	url := c.base + path
	tr := qtrace.FromContext(ctx)
	if tr.Propagate() {
		url += "?trace=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tr.Propagate() {
		req.Header.Set("traceparent", tr.Traceparent())
	}
	return c.do(req, out)
}

// get sends a GET request and decodes the JSON response into out.
func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// do executes the request, mapping transport failures and 5xx responses
// to *corpus.ScanError (backend-side state, named after this client) and
// 4xx responses to plain errors (the caller's mistake travels back as
// such).
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		// Surface the caller's cancellation as such: url.Error wraps it,
		// and the group's error policy distinguishes cancellation from
		// shard failure.
		if ctxErr := req.Context().Err(); ctxErr != nil {
			return ctxErr
		}
		return &corpus.ScanError{Shard: c.name, Err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		if ctxErr := req.Context().Err(); ctxErr != nil {
			return ctxErr
		}
		return &corpus.ScanError{Shard: c.name, Err: err}
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		msg := strings.TrimSpace(string(body))
		var wireErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &wireErr) == nil && wireErr.Error != "" {
			msg = wireErr.Error
		}
		if resp.StatusCode >= 500 {
			return &corpus.ScanError{Shard: c.name, Err: fmt.Errorf("%s: %s", resp.Status, msg)}
		}
		return fmt.Errorf("tasmd %s: %s: %s", c.name, resp.Status, msg)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return &corpus.ScanError{Shard: c.name, Err: fmt.Errorf("unparseable response: %w", err)}
	}
	return nil
}
