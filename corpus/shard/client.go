package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tasm/corpus"
	"tasm/internal/dict"
	"tasm/internal/qtrace"
	"tasm/internal/tree"
)

// Client is a corpus.Searcher over a remote tasmd instance's HTTP API:
// queries are serialized in bracket notation, re-interned by the server
// through its own request-scoped dictionary overlay, and answered from
// its corpus (or, when the remote is itself a router, its shard group).
// Contexts are honored end to end — the HTTP request carries the ctx, so
// a cancelled query aborts the connection and the server's ctx plumbing
// stops the remote scan.
//
// # Fault tolerance
//
// Every request runs under a retry loop: retryable failures (connect
// errors, torn response bodies, gateway-class 502/503/504 responses) are
// retried up to RetryPolicy.MaxAttempts times with bounded exponential
// backoff plus jitter, each attempt under its own per-attempt timeout
// and with a freshly built request body. Deterministic failures (4xx,
// a 500 scan error, an oversized response) are never retried. A
// per-client circuit breaker counts consecutive attempt failures; once
// open, requests fail locally with ErrBreakerOpen until a cooldown
// passes and a half-open probe succeeds — so a dead leaf is skipped
// cheaply instead of re-timed-out by every query.
//
// The shared-cutoff protocol of a local Group does not cross the process
// boundary: the remote end prunes within itself only, and a surrounding
// Group folds the returned k-th distance into its cutoff after the
// response arrives. WithoutCandidatePruning is not part of the wire API
// and is ignored.
//
// A Client is safe for concurrent use.
type Client struct {
	base    string
	name    string
	hc      *http.Client
	retry   RetryPolicy
	breaker *breaker
	maxResp int64

	gen          atomic.Uint64 // last generation observed from /healthz
	genRefreshed atomic.Int64  // unix nanos of the last refresh start
	numDocs      atomic.Int64  // last document count observed; -1 = never

	mu sync.Mutex
	// docs caches the remote manifest for enriching matches, keyed by
	// document NAME: names are unique across a whole deployment (the same
	// contract as within one corpus), while ids are only unique per leaf —
	// a client pointed at a router sees its leaves' id spaces collide.
	docs map[string]corpus.DocInfo
	// docsList is the cached listing in manifest order, and docsGen the
	// remote generation it was fetched under (0 = no valid cached
	// listing). DocsContext serves the cache while the remote generation
	// still matches, so a router resolving WithDocs selections pays a
	// /healthz round trip instead of re-transferring the full manifest.
	docsList []corpus.DocInfo
	docsGen  uint64
}

var _ corpus.Searcher = (*Client)(nil)

// RetryPolicy configures the client's retry loop.
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts per request (1 = no retry).
	// 0 selects the default.
	MaxAttempts int
	// AttemptTimeout caps each attempt; when it expires the attempt is
	// retried (budget permitting) while the caller's context stays live.
	// 0 leaves attempts bounded only by the HTTP client and the caller.
	AttemptTimeout time.Duration
	// BaseBackoff is the backoff before the first retry; it doubles per
	// retry up to MaxBackoff, and the actual sleep is jittered over
	// [backoff/2, backoff]. 0 selects the default.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. 0 selects the default.
	MaxBackoff time.Duration
}

// DefaultRetryPolicy is the retry loop every NewClient starts with.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 3,
	BaseBackoff: 50 * time.Millisecond,
	MaxBackoff:  2 * time.Second,
}

// withDefaults fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultRetryPolicy.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryPolicy.MaxBackoff
	}
	return p
}

// ErrResponseTooLarge reports a response body that exceeded the client's
// size cap. It travels wrapped in a *corpus.ScanError — a truncated body
// must surface as "response too large", never as a confusing JSON decode
// failure.
var ErrResponseTooLarge = errors.New("response too large")

// defaultMaxResponseBytes caps response bodies; see WithMaxResponseBytes.
const defaultMaxResponseBytes = 256 << 20

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the HTTP client (default: 5-minute timeout,
// matching the server's write timeout for long scans).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithName overrides the name the client reports in errors and to a
// surrounding Group (default: the base URL).
func WithName(name string) ClientOption {
	return func(c *Client) { c.name = name }
}

// WithRetryPolicy overrides the retry loop (default DefaultRetryPolicy).
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// WithBreakerPolicy overrides the circuit breaker (default
// DefaultBreakerPolicy; Threshold < 0 disables it).
func WithBreakerPolicy(p BreakerPolicy) ClientOption {
	return func(c *Client) { c.breaker = newBreaker(p) }
}

// WithMaxResponseBytes overrides the response body cap (default 256 MiB).
// A larger response fails with ErrResponseTooLarge wrapped in a
// *corpus.ScanError.
func WithMaxResponseBytes(n int64) ClientOption {
	return func(c *Client) { c.maxResp = n }
}

// NewClient returns a Searcher speaking to the tasmd instance at baseURL
// (e.g. "http://db1:8421"). No connection is made until the first call.
func NewClient(baseURL string, opts ...ClientOption) (*Client, error) {
	baseURL = strings.TrimRight(baseURL, "/")
	if !strings.HasPrefix(baseURL, "http://") && !strings.HasPrefix(baseURL, "https://") {
		return nil, fmt.Errorf("shard: base URL %q must start with http:// or https://", baseURL)
	}
	c := &Client{
		base:    baseURL,
		name:    baseURL,
		hc:      &http.Client{Timeout: 5 * time.Minute},
		retry:   DefaultRetryPolicy,
		breaker: newBreaker(DefaultBreakerPolicy),
		maxResp: defaultMaxResponseBytes,
		docs:    map[string]corpus.DocInfo{},
	}
	c.numDocs.Store(-1)
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Name returns the client's name (the base URL unless overridden); a
// Group uses it to attribute failures.
func (c *Client) Name() string { return c.name }

// BreakerState returns the circuit breaker's current state, for
// telemetry (a router exports it per shard on /metrics).
func (c *Client) BreakerState() BreakerState { return c.breaker.snapshot() }

// The wire shapes mirror cmd/tasmd's JSON API.
type wireTopKRequest struct {
	Query      string   `json:"query,omitempty"`
	K          int      `json:"k"`
	Docs       []string `json:"docs,omitempty"`
	Workers    int      `json:"workers,omitempty"`
	Trees      bool     `json:"trees,omitempty"`
	Exhaustive bool     `json:"exhaustive,omitempty"`
	Partial    bool     `json:"partial,omitempty"`
}

type wireBatchRequest struct {
	Queries    []string `json:"queries"`
	K          int      `json:"k"`
	Docs       []string `json:"docs,omitempty"`
	Trees      bool     `json:"trees,omitempty"`
	Exhaustive bool     `json:"exhaustive,omitempty"`
	Partial    bool     `json:"partial,omitempty"`
}

type wireMatch struct {
	Doc   string  `json:"doc"`
	DocID int     `json:"docId"`
	Pos   int     `json:"pos"`
	Dist  float64 `json:"dist"`
	Size  int     `json:"size"`
	Tree  string  `json:"tree,omitempty"`
}

type wireStats struct {
	Scanned        int      `json:"scanned"`
	Skipped        int      `json:"skipped"`
	HistSkipped    uint64   `json:"histSkipped"`
	TEDAborted     uint64   `json:"tedAborted"`
	Evaluated      uint64   `json:"evaluated"`
	BaseDictLabels int      `json:"baseDictLabels"`
	OverlayLabels  int      `json:"overlayLabels"`
	Quarantined    int      `json:"quarantined,omitempty"`
	Retries        uint64   `json:"retries,omitempty"`
	Hedges         uint64   `json:"hedges,omitempty"`
	Retried        []string `json:"retried,omitempty"`
	Hedged         []string `json:"hedged,omitempty"`
	BreakerSkipped []string `json:"breakerSkipped,omitempty"`
	Degraded       []string `json:"degraded,omitempty"`
	Cached         bool     `json:"cached"`
}

func (s *wireStats) stats() corpus.Stats {
	return corpus.Stats{
		Scanned:        s.Scanned,
		Skipped:        s.Skipped,
		HistSkipped:    s.HistSkipped,
		TEDAborted:     s.TEDAborted,
		Evaluated:      s.Evaluated,
		BaseDictLabels: s.BaseDictLabels,
		OverlayLabels:  s.OverlayLabels,
		Quarantined:    s.Quarantined,
		Retries:        s.Retries,
		Hedges:         s.Hedges,
		Retried:        s.Retried,
		Hedged:         s.Hedged,
		BreakerSkipped: s.BreakerSkipped,
		Degraded:       s.Degraded,
	}
}

type wireTopKResponse struct {
	Matches []wireMatch  `json:"matches"`
	Stats   wireStats    `json:"stats"`
	Trace   *qtrace.Wire `json:"trace,omitempty"`
}

type wireBatchResponse struct {
	Results [][]wireMatch `json:"results"`
	Stats   wireStats     `json:"stats"`
	Trace   *qtrace.Wire  `json:"trace,omitempty"`
}

// TopK answers the query remotely. The query tree may come from any
// dictionary — it travels as a bracket string and is re-interned by the
// server.
func (c *Client) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	cfg := corpus.ResolveQueryOptions(opts...)
	if err := corpus.ValidateQuery(q, k); err != nil {
		return nil, err
	}
	var resp wireTopKResponse
	attempts, err := c.post(ctx, "/v1/topk", wireTopKRequest{
		Query:      q.String(),
		K:          k,
		Docs:       cfg.Docs,
		Workers:    cfg.Workers,
		Trees:      !cfg.NoTrees,
		Exhaustive: cfg.NoFilter,
		Partial:    cfg.Partial,
	}, &resp)
	if err != nil {
		// Retries burned by a failed request still happened: record them
		// so a replica set losing this attempt keeps the accounting.
		if cfg.Stats != nil {
			c.recordAttempts(cfg.Stats, attempts)
		}
		return nil, err
	}
	qtrace.FromContext(ctx).AddChild(resp.Trace)
	if cfg.Stats != nil {
		*cfg.Stats = resp.Stats.stats()
		c.recordAttempts(cfg.Stats, attempts)
	}
	ms, err := c.matches(ctx, resp.Matches)
	if err != nil {
		return nil, err
	}
	// Late cutoff propagation: the remote scan could not see the group's
	// bound, but its answer still tightens it for shards that are slower.
	if cfg.Cutoff != nil && len(ms) == k {
		cfg.Cutoff.Tighten(ms[k-1].Dist)
	}
	return ms, nil
}

// TopKBatch answers the batch remotely in one request (one remote corpus
// scan serves all queries).
func (c *Client) TopKBatch(ctx context.Context, queries []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	cfg := corpus.ResolveQueryOptions(opts...)
	if err := corpus.ValidateBatch(queries, k, &cfg); err != nil {
		return nil, err
	}
	qs := make([]string, len(queries))
	for i, q := range queries {
		qs[i] = q.String()
	}
	var resp wireBatchResponse
	attempts, err := c.post(ctx, "/v1/topk-batch", wireBatchRequest{
		Queries:    qs,
		K:          k,
		Docs:       cfg.Docs,
		Trees:      !cfg.NoTrees,
		Exhaustive: cfg.NoFilter,
		Partial:    cfg.Partial,
	}, &resp)
	if err != nil {
		if cfg.Stats != nil {
			c.recordAttempts(cfg.Stats, attempts)
		}
		return nil, err
	}
	qtrace.FromContext(ctx).AddChild(resp.Trace)
	if cfg.Stats != nil {
		*cfg.Stats = resp.Stats.stats()
		c.recordAttempts(cfg.Stats, attempts)
	}
	out := make([][]corpus.Match, len(resp.Results))
	for i, ws := range resp.Results {
		ms, err := c.matches(ctx, ws)
		if err != nil {
			return nil, err
		}
		out[i] = ms
		if cfg.Cutoffs != nil && i < len(cfg.Cutoffs) && cfg.Cutoffs[i] != nil && len(ms) == k {
			cfg.Cutoffs[i].Tighten(ms[k-1].Dist)
		}
	}
	return out, nil
}

// recordAttempts folds the query's own retry accounting into its stats.
func (c *Client) recordAttempts(s *corpus.Stats, attempts int) {
	if attempts > 1 {
		s.Retries += uint64(attempts - 1)
		s.Retried = append(s.Retried, c.name)
	}
}

// Docs fetches the remote manifest. On a transport failure it falls back
// to the last listing it saw (Searcher.Docs carries no error); a fresh
// client that has never reached the server returns nil. Callers that
// must distinguish an outage from an empty corpus use DocsContext.
func (c *Client) Docs() []corpus.DocInfo {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	docs, err := c.DocsContext(ctx)
	if err != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		docs = make([]corpus.DocInfo, 0, len(c.docs))
		for _, d := range c.docs {
			docs = append(docs, d)
		}
		sort.Slice(docs, func(i, j int) bool { return docs[i].ID < docs[j].ID })
		return docs
	}
	return docs
}

// DocsContext fetches the remote manifest under the caller's context and
// reports transport failures instead of falling back to a stale cache. A
// Group resolves WithDocs selections through it, so a shard outage
// surfaces as that shard's failure rather than as "unknown document".
//
// The listing is generation-cached: a cheap /healthz round trip checks
// whether the remote document set changed since the cached listing was
// fetched, and only a changed generation re-transfers the manifest.
func (c *Client) DocsContext(ctx context.Context) ([]corpus.DocInfo, error) {
	var health struct {
		Generation uint64 `json:"generation"`
		Docs       int64  `json:"docs"`
	}
	if _, err := c.get(ctx, "/healthz", &health); err != nil {
		return nil, err
	}
	c.gen.Store(health.Generation)
	c.numDocs.Store(health.Docs)
	c.mu.Lock()
	if c.docsGen != 0 && c.docsGen == health.Generation {
		cached := make([]corpus.DocInfo, len(c.docsList))
		copy(cached, c.docsList)
		c.mu.Unlock()
		return cached, nil
	}
	c.mu.Unlock()
	return c.fetchDocs(ctx)
}

// genRefreshTTL rate-limits background generation refreshes: between
// refreshes Generation serves the cached value, so cache-key computation
// on a router's request hot path never blocks on a remote round trip.
const genRefreshTTL = time.Second

// Generation returns the last remote generation observed from /healthz,
// kicking off (at most once per genRefreshTTL) a background refresh. The
// value therefore lags the remote corpus by at most the TTL plus one
// round trip — a result cache keyed on it serves answers at most that
// stale after a remote ingest or removal, and is exactly invalidated
// once the refresh lands. A fresh client reports 0 until its first
// refresh completes; an unreachable server leaves the last value
// standing (queries against it fail anyway).
func (c *Client) Generation() uint64 {
	now := time.Now().UnixNano()
	last := c.genRefreshed.Load()
	if now-last >= int64(genRefreshTTL) && c.genRefreshed.CompareAndSwap(last, now) {
		go c.refreshGeneration()
	}
	return c.gen.Load()
}

// refreshGeneration fetches /healthz once and stores the generation and
// document count it reports.
func (c *Client) refreshGeneration() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var health struct {
		Generation uint64 `json:"generation"`
		Docs       int64  `json:"docs"`
	}
	if _, err := c.get(ctx, "/healthz", &health); err == nil {
		c.gen.Store(health.Generation)
		c.numDocs.Store(health.Docs)
	}
}

// NumDocs returns the last remote document count observed (from /healthz
// refreshes and manifest fetches) without a remote round trip, so
// liveness probes and metric scrapes through a router never block on its
// leaves. false until the server has been reached at least once; a
// rate-limited background refresh is kicked either way.
func (c *Client) NumDocs() (int, bool) {
	c.Generation() // kicks the rate-limited async refresh
	if n := c.numDocs.Load(); n >= 0 {
		return int(n), true
	}
	return 0, false
}

// matches converts wire matches, enriching each DocInfo from the cached
// remote manifest (refreshed once per call on a miss — e.g. after a
// remote ingest). A document that vanished between the response and the
// refresh keeps the id and name the response carried.
func (c *Client) matches(ctx context.Context, ws []wireMatch) ([]corpus.Match, error) {
	out := make([]corpus.Match, len(ws))
	refreshed := false
	var d dict.Dict // one response-local dictionary for returned trees
	for i, w := range ws {
		info, ok := c.lookupDoc(w.Doc)
		if !ok && !refreshed {
			refreshed = true
			if _, err := c.fetchDocs(ctx); err == nil {
				info, ok = c.lookupDoc(w.Doc)
			}
		}
		if !ok {
			info = corpus.DocInfo{ID: w.DocID, Name: w.Doc}
		}
		out[i] = corpus.Match{Doc: info, Pos: w.Pos, Dist: w.Dist, Size: w.Size}
		if w.Tree != "" {
			if d == nil {
				d = dict.New()
			}
			t, err := tree.Parse(d, w.Tree)
			if err != nil {
				return nil, fmt.Errorf("shard: %s returned unparseable match tree: %w", c.name, err)
			}
			out[i].Tree = t
		}
	}
	return out, nil
}

func (c *Client) lookupDoc(name string) (corpus.DocInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.docs[name]
	return d, ok
}

// fetchDocs retrieves the remote manifest and replaces the cache. The
// listing response carries the generation it was served under, which
// keys the cache DocsContext consults.
func (c *Client) fetchDocs(ctx context.Context) ([]corpus.DocInfo, error) {
	var listing struct {
		Docs       []corpus.DocInfo `json:"docs"`
		Generation uint64           `json:"generation"`
	}
	if _, err := c.get(ctx, "/v1/docs", &listing); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.docs = make(map[string]corpus.DocInfo, len(listing.Docs))
	for _, d := range listing.Docs {
		c.docs[d.Name] = d
	}
	c.docsList = listing.Docs
	c.docsGen = listing.Generation
	c.mu.Unlock()
	c.numDocs.Store(int64(len(listing.Docs)))
	if listing.Generation != 0 {
		c.gen.Store(listing.Generation)
	}
	return listing.Docs, nil
}

// post sends a JSON request and decodes the JSON response into out,
// returning the number of attempts made. When the context carries a
// trace marked for propagation, the request asks the remote tier for its
// trace block (?trace=1) and stitches the tiers with a W3C traceparent
// header: the remote tasmd continues this trace's id and names our root
// span as its parent, so the caller's AddChild produces one tree of
// spans across processes.
func (c *Client) post(ctx context.Context, path string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	url := c.base + path
	var hdr http.Header
	tr := qtrace.FromContext(ctx)
	if tr.Propagate() {
		url += "?trace=1"
		hdr = http.Header{"traceparent": []string{tr.Traceparent()}}
	}
	return c.roundTrip(ctx, http.MethodPost, url, data, hdr, out)
}

// get sends a GET request and decodes the JSON response into out.
func (c *Client) get(ctx context.Context, path string, out any) (int, error) {
	return c.roundTrip(ctx, http.MethodGet, c.base+path, nil, nil, out)
}

// roundTrip is the retry loop every request runs under: per-attempt
// timeouts, a freshly built request per attempt (bodies cannot be
// replayed from a consumed reader), bounded exponential backoff with
// jitter between retryable failures, and the circuit breaker consulted
// before — and informed after — every attempt. The client's requests are
// all reads (queries, listings, health), so retrying is always safe.
// Returns the number of attempts made alongside the final outcome.
func (c *Client) roundTrip(ctx context.Context, method, url string, body []byte, hdr http.Header, out any) (int, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return attempt - 1, err
		}
		ok, probe := c.breaker.allow()
		if !ok {
			return attempt - 1, &corpus.ScanError{Shard: c.name, Err: fmt.Errorf("%w (skipping %s)", ErrBreakerOpen, c.name)}
		}
		retryable, responded, err := c.attempt(ctx, method, url, body, hdr, out)
		if err == nil {
			c.breaker.success()
			return attempt, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The caller gave up (the per-attempt timeout never surfaces
			// here — attempt maps it to a retryable failure): neither a
			// breaker strike nor a retry, and no verdict on the shard — a
			// half-open probe reverts to open so the next request re-probes
			// instead of the breaker wedging.
			c.breaker.noVerdict(probe)
			return attempt, err
		}
		if !retryable {
			// Deterministic failures (4xx, scan errors, oversized
			// responses) are not strikes — but when the shard answered at
			// all it is alive, which settles a probe (and the failure
			// streak) as success. A pre-network failure settles nothing.
			if responded {
				c.breaker.success()
			} else {
				c.breaker.noVerdict(probe)
			}
			return attempt, err
		}
		c.breaker.failure()
		lastErr = err
		if attempt >= c.retry.MaxAttempts {
			return attempt, lastErr
		}
		if err := sleepBackoff(ctx, c.retry.backoff(attempt)); err != nil {
			return attempt, err
		}
	}
}

// backoff returns the jittered backoff before retry n (1-based):
// exponential from BaseBackoff, capped at MaxBackoff, jittered over
// [d/2, d] so synchronized retries from many routers spread out.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < n && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + rand.N(d-half+1)
}

// sleepBackoff waits for d or the caller's cancellation.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attempt executes one try of the request and reports whether its
// failure is worth retrying — connect errors, a per-attempt timeout, a
// torn response body and gateway-class 502/503/504 responses are
// transient; everything else is deterministic — and whether the shard
// responded at all (an HTTP response arrived, so the shard is alive; the
// breaker settles a half-open probe on it). Transport failures and 5xx
// responses map to *corpus.ScanError (backend-side state, named after
// this client), 4xx responses to plain errors (the caller's mistake
// travels back as such).
func (c *Client) attempt(parent context.Context, method, url string, body []byte, hdr http.Header, out any) (retryable, responded bool, err error) {
	ctx := parent
	if c.retry.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, c.retry.AttemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return false, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, false, c.transportError(parent, ctx, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxResp+1))
	if err != nil {
		// A mid-body connection reset: the shard (or the path to it) tore
		// the response. Retryable — the next attempt gets a fresh body.
		return true, true, c.transportError(parent, ctx, err)
	}
	if int64(len(data)) > c.maxResp {
		return false, true, &corpus.ScanError{Shard: c.name, Err: fmt.Errorf("%w: body exceeds %d bytes", ErrResponseTooLarge, c.maxResp)}
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		msg := strings.TrimSpace(string(data))
		var wireErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &wireErr) == nil && wireErr.Error != "" {
			msg = wireErr.Error
		}
		if resp.StatusCode >= 500 {
			retry := resp.StatusCode == http.StatusBadGateway ||
				resp.StatusCode == http.StatusServiceUnavailable ||
				resp.StatusCode == http.StatusGatewayTimeout
			return retry, true, &corpus.ScanError{Shard: c.name, Err: fmt.Errorf("%s: %s", resp.Status, msg)}
		}
		return false, true, fmt.Errorf("tasmd %s: %s: %s", c.name, resp.Status, msg)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return false, true, &corpus.ScanError{Shard: c.name, Err: fmt.Errorf("unparseable response: %w", err)}
	}
	return false, true, nil
}

// transportError classifies a failed attempt's transport error: the
// caller's own cancellation surfaces as such (the group's error policy
// distinguishes cancellation from shard failure), a per-attempt timeout
// and genuine connect errors become attributable scan errors.
func (c *Client) transportError(parent, attempt context.Context, err error) error {
	if ctxErr := parent.Err(); ctxErr != nil {
		return ctxErr
	}
	if attempt.Err() != nil {
		// Deliberately NOT wrapping attempt.Err(): a per-attempt timeout
		// must look like a retryable shard failure, not like the caller's
		// own DeadlineExceeded (which ends the retry loop).
		return &corpus.ScanError{Shard: c.name, Err: fmt.Errorf("attempt timed out after %s", c.retry.AttemptTimeout)}
	}
	return &corpus.ScanError{Shard: c.name, Err: err}
}
