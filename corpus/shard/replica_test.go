package shard_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tasm/corpus"
	"tasm/corpus/shard"
	"tasm/internal/dict"
	"tasm/internal/qtrace"
	"tasm/internal/tree"
)

// blockingRecorder blocks queries until cancelled, like blockingSearcher,
// and additionally records the query context so tests can assert the
// race cancelled its losers promptly.
type blockingRecorder struct {
	started chan struct{}
	ctx     atomic.Value // context.Context of the first in-flight query
}

func newBlockingRecorder() *blockingRecorder {
	return &blockingRecorder{started: make(chan struct{})}
}

func (b *blockingRecorder) block(ctx context.Context) error {
	b.ctx.CompareAndSwap(nil, ctx)
	select {
	case <-b.started:
	default:
		close(b.started)
	}
	<-ctx.Done()
	return ctx.Err()
}

func (b *blockingRecorder) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	return nil, b.block(ctx)
}

func (b *blockingRecorder) TopKBatch(ctx context.Context, qs []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	return nil, b.block(ctx)
}

func (b *blockingRecorder) Docs() []corpus.DocInfo { return nil }
func (b *blockingRecorder) Generation() uint64     { return 0 }

// breakerSkippedSearcher simulates a replica whose circuit breaker is
// open: it fails instantly with the same error shape a shard.Client
// produces, without any real query work.
type breakerSkippedSearcher struct{ name string }

func (s *breakerSkippedSearcher) err() error {
	return &corpus.ScanError{Shard: s.name, Err: fmt.Errorf("%w (skipping %s)", shard.ErrBreakerOpen, s.name)}
}

//tasm:allow ctxpoll — test stub: fails immediately, no candidate loop to poll from
func (s *breakerSkippedSearcher) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	return nil, s.err()
}

//tasm:allow ctxpoll — test stub: fails immediately, no candidate loop to poll from
func (s *breakerSkippedSearcher) TopKBatch(ctx context.Context, qs []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	return nil, s.err()
}

func (s *breakerSkippedSearcher) Docs() []corpus.DocInfo { return nil }
func (s *breakerSkippedSearcher) Generation() uint64     { return 0 }
func (s *breakerSkippedSearcher) Name() string           { return s.name }

// fixtureCorpus builds one corpus holding all fixture documents.
func fixtureCorpus(t testing.TB) *corpus.Corpus {
	t.Helper()
	c := openCorpus(t)
	for _, d := range fixtureDocs {
		addDoc(t, c, d)
	}
	return c
}

var replicaQuery = "{rec{a}{b}{c}}"

// TestReplicaSetPrimaryWins: with a healthy primary and a prohibitive
// hedge delay, the primary answers alone — same results as querying it
// directly, and no hedges are accounted.
func TestReplicaSetPrimaryWins(t *testing.T) {
	leakCheck(t)
	c := fixtureCorpus(t)
	rs := shard.NewReplicaSet([]corpus.Searcher{c, c}, shard.WithHedgeDelay(time.Hour))
	q := tree.MustParse(dict.New(), replicaQuery)

	want, err := c.TopK(context.Background(), q, 4)
	if err != nil {
		t.Fatal(err)
	}
	var stats corpus.Stats
	got, err := rs.TopK(context.Background(), q, 4, corpus.WithStats(&stats))
	if err != nil {
		t.Fatal(err)
	}
	if nw, ng := normalize(t, want), normalize(t, got); nw != ng {
		t.Fatalf("replica set differs from its own replica:\n direct %s\n set    %s", nw, ng)
	}
	if stats.Hedges != 0 || len(stats.Hedged) != 0 {
		t.Fatalf("healthy primary still hedged: %+v", stats)
	}
	if stats.Scanned == 0 {
		t.Fatalf("winner's scan stats not adopted: %+v", stats)
	}
}

// TestReplicaSetHedgeWinsCancelsLoser: a stalled primary is hedged after
// the delay, the hedge's answer wins, the loser's context is cancelled
// promptly, and no goroutine outlives the call.
func TestReplicaSetHedgeWinsCancelsLoser(t *testing.T) {
	leakCheck(t)
	stalled := newBlockingRecorder()
	c := fixtureCorpus(t)
	rs := shard.NewReplicaSet([]corpus.Searcher{stalled, c},
		shard.WithHedgeDelay(time.Millisecond), shard.WithReplicaSetName("db0"))
	q := tree.MustParse(dict.New(), replicaQuery)

	var stats corpus.Stats
	got, err := rs.TopK(context.Background(), q, 3, corpus.WithStats(&stats))
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.TopK(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nw, ng := normalize(t, want), normalize(t, got); nw != ng {
		t.Fatalf("hedge winner differs from direct query:\n direct %s\n set    %s", nw, ng)
	}
	if stats.Hedges < 1 || len(stats.Hedged) == 0 || stats.Hedged[0] != "db0" {
		t.Fatalf("hedge accounting: %+v, want ≥1 hedge naming db0", stats)
	}
	// The loser must be cancelled promptly after the set returned — not
	// only when the caller's context eventually dies.
	loserCtx := stalled.ctx.Load().(context.Context)
	select {
	case <-loserCtx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("losing replica's context not cancelled within 2s of the set answering")
	}
}

// TestReplicaSetHedgeEscalatesDownList: with the primary AND the first
// hedge both stalled (slow, not failing), the hedge timer must re-arm
// and keep escalating down the list — the third replica is reached
// purely by delay and answers. On broken code the timer fires once and
// the query hangs on the two stalled replicas forever.
func TestReplicaSetHedgeEscalatesDownList(t *testing.T) {
	leakCheck(t)
	c := fixtureCorpus(t)
	rs := shard.NewReplicaSet(
		[]corpus.Searcher{newBlockingRecorder(), newBlockingRecorder(), c},
		shard.WithHedgeDelay(time.Millisecond), shard.WithReplicaSetName("db0"))
	q := tree.MustParse(dict.New(), replicaQuery)

	done := make(chan struct{})
	var stats corpus.Stats
	var got []corpus.Match
	var err error
	go func() {
		got, err = rs.TopK(context.Background(), q, 3, corpus.WithStats(&stats))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("delay-based escalation never reached the third replica")
	}
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.TopK(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nw, ng := normalize(t, want), normalize(t, got); nw != ng {
		t.Fatalf("escalated answer differs from direct query:\n direct %s\n set    %s", nw, ng)
	}
	if stats.Hedges != 2 {
		t.Fatalf("stats.Hedges = %d, want 2 (two timer-based hedges)", stats.Hedges)
	}
}

// TestReplicaSetBatchHedge: the batch path hedges as one unit and the
// loser unwinds — the same race plumbing serves TopKBatch.
func TestReplicaSetBatchHedge(t *testing.T) {
	leakCheck(t)
	stalled := newBlockingRecorder()
	c := fixtureCorpus(t)
	rs := shard.NewReplicaSet([]corpus.Searcher{stalled, c}, shard.WithHedgeDelay(time.Millisecond))
	qs := []*tree.Tree{
		tree.MustParse(dict.New(), replicaQuery),
		tree.MustParse(dict.New(), "{rec{a}{b}}"),
	}
	want, err := c.TopKBatch(context.Background(), qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rs.TopKBatch(context.Background(), qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if nw, ng := normalize(t, want[i]), normalize(t, got[i]); nw != ng {
			t.Fatalf("batch query %d:\n direct %s\n set    %s", i, nw, ng)
		}
	}
}

// TestReplicaSetImmediateFailover: a replica failing with a backend-side
// error is failed over at once — the prohibitive hedge delay proves the
// race did not wait for the timer.
func TestReplicaSetImmediateFailover(t *testing.T) {
	leakCheck(t)
	c := fixtureCorpus(t)
	rs := shard.NewReplicaSet([]corpus.Searcher{&failingSearcher{}, c}, shard.WithHedgeDelay(time.Hour))
	q := tree.MustParse(dict.New(), replicaQuery)

	done := make(chan struct{})
	var stats corpus.Stats
	var got []corpus.Match
	var err error
	go func() {
		got, err = rs.TopK(context.Background(), q, 3, corpus.WithStats(&stats))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("failover waited for the hedge timer")
	}
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.TopK(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nw, ng := normalize(t, want), normalize(t, got); nw != ng {
		t.Fatalf("failover answer differs:\n direct %s\n set    %s", nw, ng)
	}
	if stats.Hedges != 1 {
		t.Fatalf("stats.Hedges = %d, want 1 (the failover)", stats.Hedges)
	}
}

// TestReplicaSetNonRetryableFailsFast: the caller's own mistake (an
// unknown document) is not failed over — every replica would answer the
// same — and surfaces immediately despite healthy spare replicas.
func TestReplicaSetNonRetryableFailsFast(t *testing.T) {
	leakCheck(t)
	c := fixtureCorpus(t)
	rs := shard.NewReplicaSet([]corpus.Searcher{c, c}, shard.WithHedgeDelay(time.Hour))
	q := tree.MustParse(dict.New(), replicaQuery)
	_, err := rs.TopK(context.Background(), q, 3, corpus.WithDocs("ghost"))
	if err == nil || !strings.Contains(err.Error(), `unknown document "ghost"`) {
		t.Fatalf("err = %v, want unknown document", err)
	}
}

// TestReplicaSetCancellation: the caller cancelling releases the race
// and all replica attempts, promptly.
func TestReplicaSetCancellation(t *testing.T) {
	leakCheck(t)
	stalled := newBlockingRecorder()
	rs := shard.NewReplicaSet([]corpus.Searcher{stalled, newBlockingRecorder()}, shard.WithHedgeDelay(time.Hour))
	q := tree.MustParse(dict.New(), replicaQuery)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := rs.TopK(ctx, q, 3)
		done <- err
	}()
	<-stalled.started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled replica-set query did not return within 5s")
	}
}

// TestReplicaSetAllDownNamesSet: when every replica fails, the terminal
// error names the set and unwraps to the first replica's ScanError.
func TestReplicaSetAllDownNamesSet(t *testing.T) {
	leakCheck(t)
	rs := shard.NewReplicaSet([]corpus.Searcher{&failingSearcher{}, &failingSearcher{}},
		shard.WithHedgeDelay(0), shard.WithReplicaSetName("db1"))
	q := tree.MustParse(dict.New(), replicaQuery)
	_, err := rs.TopK(context.Background(), q, 3)
	if err == nil {
		t.Fatal("want failure when every replica is down")
	}
	if !strings.Contains(err.Error(), "db1") {
		t.Fatalf("error %v does not name the set db1", err)
	}
	var se *corpus.ScanError
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not unwrap to *corpus.ScanError", err)
	}
}

// TestReplicaSetBreakerSkipAccounting: a breaker-open replica is skipped
// for free — the next replica answers, the skip is recorded by replica
// name, and no hedge is counted (no request was sent).
func TestReplicaSetBreakerSkipAccounting(t *testing.T) {
	leakCheck(t)
	c := fixtureCorpus(t)
	rs := shard.NewReplicaSet(
		[]corpus.Searcher{&breakerSkippedSearcher{name: "leafA"}, c},
		shard.WithHedgeDelay(time.Hour))
	q := tree.MustParse(dict.New(), replicaQuery)
	var stats corpus.Stats
	got, err := rs.TopK(context.Background(), q, 3, corpus.WithStats(&stats))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no matches through the surviving replica")
	}
	if len(stats.BreakerSkipped) != 1 || stats.BreakerSkipped[0] != "leafA" {
		t.Fatalf("stats.BreakerSkipped = %v, want [leafA]", stats.BreakerSkipped)
	}
	if stats.Hedges != 0 {
		t.Fatalf("stats.Hedges = %d, want 0 (a breaker skip costs nothing)", stats.Hedges)
	}
}

// TestReplicaSetAllSkipped: every replica breaker-skipped is its own
// terminal error, still errors.Is-reachable as ErrBreakerOpen and
// attributed to the set.
func TestReplicaSetAllSkipped(t *testing.T) {
	leakCheck(t)
	rs := shard.NewReplicaSet(
		[]corpus.Searcher{&breakerSkippedSearcher{name: "leafA"}, &breakerSkippedSearcher{name: "leafB"}},
		shard.WithHedgeDelay(0), shard.WithReplicaSetName("db2"))
	q := tree.MustParse(dict.New(), replicaQuery)
	_, err := rs.TopK(context.Background(), q, 3)
	if !errors.Is(err, shard.ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	var se *corpus.ScanError
	if !errors.As(err, &se) || se.Shard != "db2" {
		t.Fatalf("err = %v, want ScanError naming db2", err)
	}
}

// TestReplicaSetNumDocsSkipsNilListing: a replica whose listing is
// unavailable (nil Docs, no cached count) must not be reported as a
// confident zero — the set falls over to the next replica, and reports
// unknown when none has a count.
func TestReplicaSetNumDocsSkipsNilListing(t *testing.T) {
	dead := &breakerSkippedSearcher{name: "dead"}
	if n, ok := shard.NewReplicaSet([]corpus.Searcher{dead}).NumDocs(); ok {
		t.Fatalf("NumDocs = (%d, true) with no listing anywhere, want unknown", n)
	}
	c := fixtureCorpus(t)
	n, ok := shard.NewReplicaSet([]corpus.Searcher{dead, c}).NumDocs()
	if !ok || n != len(c.Docs()) {
		t.Fatalf("NumDocs = (%d, %v), want (%d, true) from the healthy replica", n, ok, len(c.Docs()))
	}
}

// TestGroupOverReplicaSetsEquivalence is the replicated form of the
// acceptance oracle: a Group over replica sets — including sets whose
// primary is dead or stalled — returns results byte-identical to the
// union corpus.
func TestGroupOverReplicaSetsEquivalence(t *testing.T) {
	union, shards := buildShards(t, fixtureDocs, 3)
	topologies := []struct {
		name  string
		build func(s *corpus.Corpus, i int) corpus.Searcher
	}{
		{"healthy", func(s *corpus.Corpus, i int) corpus.Searcher {
			return shard.NewReplicaSet([]corpus.Searcher{s, s}, shard.WithHedgeDelay(0))
		}},
		{"deadPrimary", func(s *corpus.Corpus, i int) corpus.Searcher {
			return shard.NewReplicaSet([]corpus.Searcher{&failingSearcher{}, s}, shard.WithHedgeDelay(time.Hour))
		}},
		{"stalledPrimary", func(s *corpus.Corpus, i int) corpus.Searcher {
			return shard.NewReplicaSet([]corpus.Searcher{newBlockingRecorder(), s}, shard.WithHedgeDelay(time.Millisecond))
		}},
		{"skippedPrimary", func(s *corpus.Corpus, i int) corpus.Searcher {
			return shard.NewReplicaSet([]corpus.Searcher{&breakerSkippedSearcher{name: "dead"}, s}, shard.WithHedgeDelay(time.Hour))
		}},
	}
	queries := []string{replicaQuery, "{rec{a}{b}}", "{nope}"}
	ctx := context.Background()
	for _, topo := range topologies {
		t.Run(topo.name, func(t *testing.T) {
			leakCheck(t)
			members := make([]corpus.Searcher, len(shards))
			for i, s := range shards {
				members[i] = topo.build(s, i)
			}
			g := shard.NewGroup(members...)
			for _, qs := range queries {
				q := tree.MustParse(dict.New(), qs)
				for _, k := range []int{1, 4, 25} {
					want, err := union.TopK(ctx, q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := g.TopK(ctx, q, k)
					if err != nil {
						t.Fatal(err)
					}
					if nw, ng := normalize(t, want), normalize(t, got); nw != ng {
						t.Errorf("q=%s k=%d:\n union %s\n group %s", qs, k, nw, ng)
					}
				}
			}
		})
	}
}

// TestGroupPartialResults pins the degradation policy: by default a dead
// shard fails the query naming the shard; with WithPartialResults the
// group answers from the survivors and reports the loss in Stats.
func TestGroupPartialResults(t *testing.T) {
	leakCheck(t)
	_, shards := buildShards(t, fixtureDocs, 2)
	g := shard.NewGroup(shards[0], &failingSearcher{})
	q := tree.MustParse(dict.New(), replicaQuery)
	ctx := context.Background()

	// Default: fail loud, naming the dead shard.
	_, err := g.TopK(ctx, q, 5)
	var se *corpus.ScanError
	if err == nil || !errors.As(err, &se) || se.Shard != "shard1" {
		t.Fatalf("default mode: err = %v, want ScanError naming shard1", err)
	}

	// Partial: the survivors' merged answer, with the loss in Stats.
	want, err := shards[0].TopK(ctx, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var stats corpus.Stats
	got, err := g.TopK(ctx, q, 5, corpus.WithPartialResults(), corpus.WithStats(&stats))
	if err != nil {
		t.Fatalf("partial mode: %v", err)
	}
	if nw, ng := normalize(t, want), normalize(t, got); nw != ng {
		t.Fatalf("partial answer differs from the survivor:\n survivor %s\n group    %s", nw, ng)
	}
	if len(stats.Degraded) != 1 || stats.Degraded[0] != "shard1" {
		t.Fatalf("stats.Degraded = %v, want [shard1]", stats.Degraded)
	}
}

// TestGroupPartialBatch: the batch path degrades the same way.
func TestGroupPartialBatch(t *testing.T) {
	leakCheck(t)
	_, shards := buildShards(t, fixtureDocs, 2)
	g := shard.NewGroup(shards[0], &failingSearcher{})
	qs := []*tree.Tree{
		tree.MustParse(dict.New(), replicaQuery),
		tree.MustParse(dict.New(), "{nope}"),
	}
	ctx := context.Background()

	if _, err := g.TopKBatch(ctx, qs, 3); err == nil {
		t.Fatal("default batch mode should fail loud")
	}

	want, err := shards[0].TopKBatch(ctx, qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	var stats corpus.Stats
	got, err := g.TopKBatch(ctx, qs, 3, corpus.WithPartialResults(), corpus.WithStats(&stats))
	if err != nil {
		t.Fatalf("partial batch: %v", err)
	}
	for i := range want {
		if nw, ng := normalize(t, want[i]), normalize(t, got[i]); nw != ng {
			t.Fatalf("batch query %d:\n survivor %s\n group    %s", i, nw, ng)
		}
	}
	if len(stats.Degraded) != 1 || stats.Degraded[0] != "shard1" {
		t.Fatalf("stats.Degraded = %v, want [shard1]", stats.Degraded)
	}
}

// TestGroupPartialAllDownStillFails: partial mode is best-effort, not
// no-effort — with every shard dead the query fails with the root cause.
func TestGroupPartialAllDownStillFails(t *testing.T) {
	leakCheck(t)
	g := shard.NewGroup(&failingSearcher{}, &failingSearcher{})
	q := tree.MustParse(dict.New(), replicaQuery)
	_, err := g.TopK(context.Background(), q, 3, corpus.WithPartialResults())
	var se *corpus.ScanError
	if err == nil || !errors.As(err, &se) {
		t.Fatalf("all shards down in partial mode: err = %v, want ScanError", err)
	}
}

// TestGroupPartialCancellationStillFails: the caller's cancellation is
// never converted into a degraded answer.
func TestGroupPartialCancellationStillFails(t *testing.T) {
	leakCheck(t)
	slow := newBlockingSearcher()
	g := shard.NewGroup(fixtureCorpus(t), slow)
	q := tree.MustParse(dict.New(), replicaQuery)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.TopK(ctx, q, 3, corpus.WithPartialResults())
		done <- err
	}()
	<-slow.started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled (not a partial answer)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled partial query did not return within 5s")
	}
}

// TestGroupPartialOverReplicaSets: a replica set whose replicas are all
// down degrades under partial mode like a plain dead shard, reported
// under the set's name.
func TestGroupPartialOverReplicaSets(t *testing.T) {
	leakCheck(t)
	_, shards := buildShards(t, fixtureDocs, 2)
	deadSet := shard.NewReplicaSet([]corpus.Searcher{&failingSearcher{}, &failingSearcher{}},
		shard.WithHedgeDelay(0), shard.WithReplicaSetName("db1"))
	g := shard.NewGroup(shards[0], deadSet)
	q := tree.MustParse(dict.New(), replicaQuery)
	ctx := context.Background()

	if _, err := g.TopK(ctx, q, 5); err == nil {
		t.Fatal("default mode should fail loud")
	}

	want, err := shards[0].TopK(ctx, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	var stats corpus.Stats
	got, err := g.TopK(ctx, q, 5, corpus.WithPartialResults(), corpus.WithStats(&stats))
	if err != nil {
		t.Fatalf("partial mode: %v", err)
	}
	if nw, ng := normalize(t, want), normalize(t, got); nw != ng {
		t.Fatalf("partial answer differs from the survivor:\n survivor %s\n group    %s", nw, ng)
	}
	if len(stats.Degraded) != 1 || stats.Degraded[0] != "db1" {
		t.Fatalf("stats.Degraded = %v, want [db1]", stats.Degraded)
	}
}

// gatedSearcher blocks queries on its own gate channel, deliberately
// ignoring ctx: a worst-case loser whose unwinding — and final trace
// span write — happens strictly after the race returned, the response
// was written and the request released its trace.
type gatedSearcher struct {
	gate chan struct{}
	done chan struct{}
}

func (g *gatedSearcher) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	defer close(g.done)
	<-g.gate
	return nil, errors.New("gated")
}

func (g *gatedSearcher) TopKBatch(ctx context.Context, qs []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	defer close(g.done)
	<-g.gate
	return nil, errors.New("gated")
}

func (g *gatedSearcher) Docs() []corpus.DocInfo { return nil }
func (g *gatedSearcher) Generation() uint64     { return 0 }

// TestReplicaSetLoserTraceAfterRelease pins the hedged-loser/trace-pool
// interaction that crashed the live router: the race returns on the
// winner while the loser is still in flight, the request writes its
// response and releases the trace, and only then does the loser finish
// and close its span. The attempt's Retain must keep the slab alive —
// on broken code the late End hits a recycled (emptied or reused) slab
// and panics with an index out of range.
func TestReplicaSetLoserTraceAfterRelease(t *testing.T) {
	leakCheck(t)
	loser := &gatedSearcher{gate: make(chan struct{}), done: make(chan struct{})}
	rs := shard.NewReplicaSet(
		[]corpus.Searcher{loser, fixtureCorpus(t)},
		shard.WithHedgeDelay(0), // race both immediately; the corpus wins
	)

	tr := qtrace.New()
	ctx := qtrace.NewContext(context.Background(), tr)
	if _, err := rs.TopK(ctx, tree.MustParse(dict.New(), replicaQuery), 3); err != nil {
		t.Fatal(err)
	}
	qtrace.Release(tr) // the response was written

	// Churn the pool so a prematurely recycled slab would be visibly
	// reused (or emptied) before the loser's late span write.
	for i := 0; i < 8; i++ {
		qtrace.Release(qtrace.New())
	}

	close(loser.gate) // now the loser unwinds and ends its span
	select {
	case <-loser.done:
	case <-time.After(5 * time.Second):
		t.Fatal("gated loser never unwound")
	}
}
