// Package shard implements horizontally sharded corpora behind the
// corpus.Searcher contract: a Group fans one query out over several child
// Searchers and merges their rankings, and a Client makes a remote tasmd
// instance usable as such a child. Because Group and Client are themselves
// Searchers, tiers compose: a tasmd router can serve a Group of Clients
// pointing at tasmd leaves, each of which serves its own directory — or
// another router.
//
// # Result equivalence
//
// A Group's results are identical to those of a single corpus holding the
// union of the shards' documents ingested in shard order: every shard
// answers with its own top k, and the rankings merge by (distance, shard
// order, position within shard) — the same deterministic order the merged
// corpus would produce. Document names should be unique across shards,
// exactly as they must be within one corpus.
//
// # Cross-shard pruning
//
// The group hands every shard one shared corpus.Cutoff. Each shard's scan
// publishes its running k-th distance into it and prunes against it, so a
// shard still scanning skips documents and candidates that results
// already found by other shards prove irrelevant. The published bound is
// always an upper bound on the final global k-th distance and all gates
// compare strictly, so sharing never changes results. (The cutoff does
// not cross process boundaries: a remote Client prunes inside its own
// server only.)
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"tasm/corpus"
	"tasm/internal/qtrace"
	"tasm/internal/tree"
)

// namer is implemented by children that know their own name (Client
// reports its URL); others are named by position.
type namer interface{ Name() string }

// docLister is implemented by children whose document listing can fail
// and be cancelled (Client, nested Groups). The group prefers it over
// the infallible Searcher.Docs when resolving WithDocs selections, so a
// shard outage is reported as that shard's failure instead of being
// misread as "document unknown".
type docLister interface {
	DocsContext(ctx context.Context) ([]corpus.DocInfo, error)
}

// Group is a scatter-gather corpus: a corpus.Searcher over N child
// Searchers whose results merge into one ranking. The zero value is an
// empty group answering every query with no matches; children themselves
// must be safe for concurrent use (every provided Searcher is).
type Group struct {
	children []child
}

type child struct {
	name string
	s    corpus.Searcher
}

// NewGroup returns a Group over the given shards, in ranking order:
// distance ties resolve in favour of earlier shards, exactly as earlier
// manifest documents win ties within one corpus. Shards implementing
// Name() string (like *Client) keep their name for error attribution;
// the rest are named "shard<i>".
func NewGroup(shards ...corpus.Searcher) *Group {
	g := &Group{children: make([]child, len(shards))}
	for i, s := range shards {
		name := fmt.Sprintf("shard%d", i)
		if n, ok := s.(namer); ok && n.Name() != "" {
			name = n.Name()
		}
		g.children[i] = child{name: name, s: s}
	}
	return g
}

var _ corpus.Searcher = (*Group)(nil)

// Len returns the number of shards.
func (g *Group) Len() int { return len(g.children) }

// Docs returns the concatenation of the shards' document listings in
// shard order — the manifest order of the equivalent merged corpus.
// Shards are listed concurrently; an unreachable remote shard
// contributes its client's last-known listing (see Client.Docs). Use
// DocsContext to fail on unreachable shards instead.
func (g *Group) Docs() []corpus.DocInfo {
	docs, _ := g.gatherDocs(context.Background(), false)
	return docs
}

// DocsContext lists every shard concurrently under ctx and fails (naming
// the shard) if any listing cannot be fetched fresh.
func (g *Group) DocsContext(ctx context.Context) ([]corpus.DocInfo, error) {
	return g.gatherDocs(ctx, true)
}

var _ docLister = (*Group)(nil)

// gatherDocs fans the per-shard listings out concurrently. In strict
// mode the first fetch failure aborts (attributed to its shard); in
// lenient mode failed shards contribute what their fallback offers.
func (g *Group) gatherDocs(ctx context.Context, strict bool) ([]corpus.DocInfo, error) {
	lists := make([][]corpus.DocInfo, len(g.children))
	errs := make([]error, len(g.children))
	var wg sync.WaitGroup
	for i := range g.children {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if dl, ok := g.children[i].s.(docLister); ok && strict {
				lists[i], errs[i] = dl.DocsContext(ctx)
				return
			}
			lists[i] = g.children[i].s.Docs()
		}(i)
	}
	wg.Wait()
	var out []corpus.DocInfo
	for i, err := range errs {
		if err != nil {
			return nil, attribute(g.children[i].name, err)
		}
		out = append(out, lists[i]...)
	}
	return out, nil
}

// NumDocs sums the shards' cached document counts without any remote
// round trip (see Client.NumDocs); false if any shard's count has never
// been observed. Liveness probes and metric scrapes use it so a dead
// leaf cannot stall them.
func (g *Group) NumDocs() (int, bool) {
	total, known := 0, true
	for _, ch := range g.children {
		if nd, ok := ch.s.(interface{ NumDocs() (int, bool) }); ok {
			n, k := nd.NumDocs()
			total += n
			known = known && k
			continue
		}
		total += len(ch.s.Docs())
	}
	return total, known
}

// Generation returns the sum of the shards' generations. Each shard's
// generation only grows and is persisted by its corpus, so the sum
// changes whenever any shard's document set does and never repeats a
// value for a different overall document set — which is all a
// generation-keyed result cache needs.
func (g *Group) Generation() uint64 {
	var gen uint64
	for _, ch := range g.children {
		gen += ch.s.Generation()
	}
	return gen
}

// TopK fans the query out to every shard concurrently and merges the
// per-shard rankings into the global top k. Results are identical to a
// single corpus holding the union of the shards' documents; the shards
// prune against each other through one shared cutoff. A failing shard
// fails the whole query with the shard named in the error (errors.As
// still finds a wrapped *corpus.ScanError) — unless the query opted into
// corpus.WithPartialResults, in which case backend-side failures degrade
// to a best-effort merge of the surviving shards, reported through
// Stats.Degraded.
//
//tasm:allow ctxpoll — cancellation is delegated: scatter runs every child Searcher under a derived ctx, each child polls per candidate, and a child ctx error fails the fan-out
func (g *Group) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	cfg := corpus.ResolveQueryOptions(opts...)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := corpus.ValidateQuery(q, k); err != nil {
		return nil, err
	}
	perDocs, err := g.splitDocs(ctx, cfg.Docs)
	if err != nil {
		return nil, err
	}
	cut := cfg.Cutoff
	if cut == nil {
		cut = corpus.NewCutoff()
	}

	perShard := make([][]corpus.Match, len(g.children))
	stats := make([]corpus.Stats, len(g.children))
	degraded, err := g.scatter(ctx, cfg.Partial, perDocs, func(ctx context.Context, i int, docs []string) error {
		childCfg := cfg
		childCfg.Docs = docs
		childCfg.Stats = &stats[i]
		childCfg.Cutoff = cut
		ms, err := g.children[i].s.TopK(ctx, q, k, corpus.WithConfig(childCfg))
		perShard[i] = ms
		return err
	})
	if err != nil {
		return nil, err
	}
	if cfg.Stats != nil {
		*cfg.Stats = mergeStats(stats)
		g.noteDegraded(cfg.Stats, degraded)
	}
	tr := qtrace.FromContext(ctx)
	mergeSpan := tr.Begin(qtrace.SpanMerge, "")
	out := mergeRanked(k, perShard)
	tr.End(mergeSpan)
	return out, nil
}

// TopKBatch is TopK for several queries in one fan-out: every shard runs
// its own single-pass batch scan, and each query's per-shard rankings
// merge independently. Query i's shards share cutoff i.
//
//tasm:allow ctxpoll — cancellation is delegated: scatter runs every child Searcher under a derived ctx, each child polls per candidate, and a child ctx error fails the fan-out
func (g *Group) TopKBatch(ctx context.Context, queries []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	cfg := corpus.ResolveQueryOptions(opts...)
	if ctx == nil {
		ctx = context.Background()
	}
	if err := corpus.ValidateBatch(queries, k, &cfg); err != nil {
		return nil, err
	}
	perDocs, err := g.splitDocs(ctx, cfg.Docs)
	if err != nil {
		return nil, err
	}
	cuts := cfg.Cutoffs
	if cuts == nil {
		cuts = make([]*corpus.Cutoff, len(queries))
		for i := range cuts {
			cuts[i] = corpus.NewCutoff()
		}
	}

	perShard := make([][][]corpus.Match, len(g.children))
	stats := make([]corpus.Stats, len(g.children))
	degraded, err := g.scatter(ctx, cfg.Partial, perDocs, func(ctx context.Context, i int, docs []string) error {
		childCfg := cfg
		childCfg.Docs = docs
		childCfg.Stats = &stats[i]
		childCfg.Cutoffs = cuts
		rs, err := g.children[i].s.TopKBatch(ctx, queries, k, corpus.WithConfig(childCfg))
		perShard[i] = rs
		return err
	})
	if err != nil {
		return nil, err
	}
	if cfg.Stats != nil {
		*cfg.Stats = mergeStats(stats)
		g.noteDegraded(cfg.Stats, degraded)
	}
	tr := qtrace.FromContext(ctx)
	mergeSpan := tr.Begin(qtrace.SpanMerge, "")
	out := make([][]corpus.Match, len(queries))
	for qi := range queries {
		per := make([][]corpus.Match, len(g.children))
		for si := range g.children {
			if perShard[si] != nil {
				per[si] = perShard[si][qi]
			}
		}
		out[qi] = mergeRanked(k, per)
	}
	tr.End(mergeSpan)
	return out, nil
}

// scatter runs fn for every participating shard concurrently and gathers
// failures. perDocs is nil when every shard participates fully; otherwise
// a shard with an empty selection is skipped (none of the requested
// documents live there). fn's errors are attributed to their shard by
// name.
//
// In the default fail-loud mode (partial false) any failure cancels the
// remaining shards through the derived context and fails the call. With
// partial true (corpus.WithPartialResults) a shard failing with a
// backend-side error is recorded as degraded and the rest keep going —
// the caller merges what survived; only when every participating shard
// fails, or a shard fails with a non-backend error (the caller's own
// mistake or cancellation, which no sibling can compensate for), does the
// call fail. The returned slice holds the degraded children's indices.
func (g *Group) scatter(ctx context.Context, partial bool, perDocs [][]string, fn func(ctx context.Context, i int, docs []string) error) ([]int, error) {
	tr := qtrace.FromContext(ctx)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(g.children))
	var wg sync.WaitGroup
	participating := 0
	for i := range g.children {
		var docs []string
		if perDocs != nil {
			if docs = perDocs[i]; len(docs) == 0 {
				continue
			}
		}
		participating++
		wg.Add(1)
		go func(i int, docs []string) {
			defer wg.Done()
			// One span per fan-out leg, recorded into the shared trace
			// (Trace is concurrency-safe); a remote child additionally
			// attaches the leaf's own trace block — see Client.
			span := tr.Begin(qtrace.SpanShard, g.children[i].name)
			err := fn(ctx, i, docs)
			tr.End(span)
			if err != nil {
				errs[i] = attribute(g.children[i].name, err)
				if !partial || !retryableError(err) {
					cancel() // a failed shard fails the query; stop the others
				}
			}
		}(i, docs)
	}
	wg.Wait()
	// Prefer a root-cause error over the context.Canceled noise our own
	// cancel propagated into sibling shards; if every error is a
	// cancellation, the caller's context (or the first shard's) tells the
	// story.
	var firstCancel, firstDegradable error
	var degraded []int
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		if partial && retryableError(err) {
			if firstDegradable == nil {
				firstDegradable = err
			}
			degraded = append(degraded, i)
			continue
		}
		return nil, err
	}
	if firstCancel != nil {
		return nil, firstCancel
	}
	if len(degraded) == participating && firstDegradable != nil {
		// Nothing survived: best-effort has no results to offer, so fail
		// loudly with the first shard's root cause.
		return nil, firstDegradable
	}
	return degraded, nil
}

// noteDegraded appends the degraded children's names to st.Degraded.
func (g *Group) noteDegraded(st *corpus.Stats, degraded []int) {
	for _, i := range degraded {
		st.Degraded = append(st.Degraded, g.children[i].name)
	}
}

// splitDocs partitions a WithDocs selection over the shards: each shard
// receives the requested names it holds, a name no shard holds is an
// error (matching the single-corpus message), and nil means no
// restriction. The per-shard listings are only fetched when a selection
// is present, concurrently and under the request's context; a shard
// whose listing cannot be fetched fails the query attributed to that
// shard — never as a bogus "unknown document" caller error.
func (g *Group) splitDocs(ctx context.Context, names []string) ([][]string, error) {
	if names == nil {
		return nil, nil
	}
	found := make(map[string]bool, len(names))
	for _, n := range names {
		found[n] = false
	}
	per := make([][]string, len(g.children))
	lists := make([][]corpus.DocInfo, len(g.children))
	errs := make([]error, len(g.children))
	var wg sync.WaitGroup
	for i := range g.children {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if dl, ok := g.children[i].s.(docLister); ok {
				lists[i], errs[i] = dl.DocsContext(ctx)
				return
			}
			lists[i] = g.children[i].s.Docs()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, attribute(g.children[i].name, err)
		}
	}
	for i, list := range lists {
		for _, d := range list {
			if _, ok := found[d.Name]; ok {
				per[i] = append(per[i], d.Name)
				found[d.Name] = true
			}
		}
	}
	for _, n := range names {
		if !found[n] {
			return nil, fmt.Errorf("corpus: unknown document %q", n)
		}
	}
	return per, nil
}

// attribute stamps the failing shard's name into the error: a
// *corpus.ScanError without a shard gains one (a fresh value — the
// original may be shared), anything else is wrapped so the shard name
// survives while errors.Is/As keep seeing the cause.
func attribute(name string, err error) error {
	var se *corpus.ScanError
	if errors.As(err, &se) {
		if se.Shard != "" {
			return err // already attributed (a nested group or a client)
		}
		return &corpus.ScanError{Shard: name, Doc: se.Doc, Err: se.Err}
	}
	return fmt.Errorf("shard %s: %w", name, err)
}

// mergeStats folds the per-shard statistics of one fan-out into the
// group-level totals (dictionary gauges sum over shards: each shard owns
// a frozen base of its own).
func mergeStats(stats []corpus.Stats) corpus.Stats {
	var out corpus.Stats
	for i := range stats {
		s := &stats[i]
		out.Scanned += s.Scanned
		out.Skipped += s.Skipped
		out.Unprofiled += s.Unprofiled
		out.Quarantined += s.Quarantined
		out.HistSkipped += s.HistSkipped
		out.TEDAborted += s.TEDAborted
		out.Evaluated += s.Evaluated
		out.BaseDictLabels += s.BaseDictLabels
		out.OverlayLabels += s.OverlayLabels
		out.MergeFault(s)
	}
	return out
}

// mergeRanked merges per-shard rankings (each already sorted in its
// shard's (distance, position) order) into the global top k. The stable
// sort over the shard-order concatenation realizes the (distance, shard,
// position) order — the order of the equivalent merged corpus.
func mergeRanked(k int, perShard [][]corpus.Match) []corpus.Match {
	n := 0
	for _, ms := range perShard {
		n += len(ms)
	}
	all := make([]corpus.Match, 0, n)
	for _, ms := range perShard {
		all = append(all, ms...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
	if len(all) > k {
		all = all[:k]
	}
	return all
}
