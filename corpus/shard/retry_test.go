package shard_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tasm/corpus"
	"tasm/corpus/shard"
	"tasm/internal/dict"
	"tasm/internal/faultinject"
	"tasm/internal/tree"
)

// stubLeaf is a minimal in-process tasmd leaf speaking just enough of the
// wire API for client fault-tolerance tests: one document, one match.
// topkCalls counts queries that reached the backend (fault assertions),
// docsFetches counts /v1/docs listings (the generation-cache test), and
// generation is mutable to simulate a remote ingest.
type stubLeaf struct {
	generation  atomic.Uint64
	topkCalls   atomic.Int64
	docsFetches atomic.Int64
}

func (s *stubLeaf) handler() http.Handler {
	mux := http.NewServeMux()
	doc := corpus.DocInfo{ID: 0, Name: "d0", Nodes: 2, RootLabel: "a"}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"status": "ok", "docs": 1, "generation": s.generation.Load()})
	})
	mux.HandleFunc("GET /v1/docs", func(w http.ResponseWriter, r *http.Request) {
		s.docsFetches.Add(1)
		writeJSON(w, map[string]any{"generation": s.generation.Load(), "docs": []corpus.DocInfo{doc}})
	})
	mux.HandleFunc("POST /v1/topk", func(w http.ResponseWriter, r *http.Request) {
		s.topkCalls.Add(1)
		writeJSON(w, map[string]any{
			"matches": []map[string]any{{"doc": "d0", "docId": 0, "pos": 1, "dist": 0.0, "size": 2}},
			"stats":   map[string]any{"scanned": 1},
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// fastRetry is a retry policy whose backoffs are negligible, so failure
// tests spend no wall-clock time sleeping.
var fastRetry = shard.RetryPolicy{
	MaxAttempts: 3,
	BaseBackoff: time.Nanosecond,
	MaxBackoff:  time.Nanosecond,
}

// newFaultyClient stands a faultinject proxy between a fresh stub leaf
// and a new client: client -> proxy -> stub.
func newFaultyClient(t *testing.T, script faultinject.Script, opts ...shard.ClientOption) (*shard.Client, *stubLeaf) {
	t.Helper()
	leaf := &stubLeaf{}
	backend := httptest.NewServer(leaf.handler())
	t.Cleanup(backend.Close)
	front := httptest.NewServer(faultinject.New(backend.URL, script))
	t.Cleanup(front.Close)
	cl, err := shard.NewClient(front.URL, append([]shard.ClientOption{shard.WithRetryPolicy(fastRetry)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return cl, leaf
}

func testQuery(t *testing.T) *tree.Tree {
	t.Helper()
	return tree.MustParse(dict.New(), "{a{b}}")
}

// failTopK faults the first n /v1/topk requests; everything else —
// /healthz, the /v1/docs manifest fetch the client issues to enrich
// matches — passes through untouched, so query-path attempt counts stay
// exact.
func failTopK(n int, rule faultinject.Rule) faultinject.Script {
	var seen atomic.Int64
	return func(r *http.Request, seq int) faultinject.Rule {
		if r.URL.Path != "/v1/topk" {
			return faultinject.Rule{}
		}
		if seen.Add(1) <= int64(n) {
			return rule
		}
		return faultinject.Rule{}
	}
}

// countTopK passes everything through, counting /v1/topk requests.
func countTopK(attempts *atomic.Int64) faultinject.Script {
	return func(r *http.Request, seq int) faultinject.Rule {
		if r.URL.Path == "/v1/topk" {
			attempts.Add(1)
		}
		return faultinject.Rule{}
	}
}

// TestClientRetries503: a 503 is retried and the retry is accounted in
// Stats (one extra attempt, the shard named in Retried).
func TestClientRetries503(t *testing.T) {
	cl, leaf := newFaultyClient(t, failTopK(1, faultinject.Rule{Fault: faultinject.FaultStatus, Code: 503}))
	var stats corpus.Stats
	ms, err := cl.TopK(context.Background(), testQuery(t), 1, corpus.WithStats(&stats))
	if err != nil {
		t.Fatalf("TopK after one 503: %v", err)
	}
	if len(ms) != 1 || ms[0].Doc.Name != "d0" {
		t.Fatalf("matches = %+v", ms)
	}
	if n := leaf.topkCalls.Load(); n != 1 {
		t.Fatalf("backend served %d topk calls, want 1 (the 503 never reached it)", n)
	}
	if stats.Retries != 1 || len(stats.Retried) != 1 || stats.Retried[0] != cl.Name() {
		t.Fatalf("retry accounting: retries=%d retried=%v, want 1 retry naming %s", stats.Retries, stats.Retried, cl.Name())
	}
}

// TestClientRetriesDroppedConnection: a connection killed before any
// response is a retryable transport failure.
func TestClientRetriesDroppedConnection(t *testing.T) {
	cl, _ := newFaultyClient(t, failTopK(1, faultinject.Rule{Fault: faultinject.FaultDrop}))
	var stats corpus.Stats
	if _, err := cl.TopK(context.Background(), testQuery(t), 1, corpus.WithStats(&stats)); err != nil {
		t.Fatalf("TopK after one dropped connection: %v", err)
	}
	if stats.Retries != 1 {
		t.Fatalf("stats.Retries = %d, want 1", stats.Retries)
	}
}

// TestClientRetriesTornBody: a mid-body connection reset is retryable —
// the next attempt rebuilds the request body and succeeds.
func TestClientRetriesTornBody(t *testing.T) {
	cl, _ := newFaultyClient(t, failTopK(2, faultinject.Rule{Fault: faultinject.FaultCutBody}))
	var stats corpus.Stats
	if _, err := cl.TopK(context.Background(), testQuery(t), 1, corpus.WithStats(&stats)); err != nil {
		t.Fatalf("TopK after two torn bodies: %v", err)
	}
	if stats.Retries != 2 {
		t.Fatalf("stats.Retries = %d, want 2", stats.Retries)
	}
}

// TestClientRetriesExhausted: when every attempt fails, the last error
// surfaces as a ScanError naming the shard, after exactly MaxAttempts.
func TestClientRetriesExhausted(t *testing.T) {
	var attempts atomic.Int64
	cl, leaf := newFaultyClient(t, func(r *http.Request, seq int) faultinject.Rule {
		if r.URL.Path == "/v1/topk" {
			attempts.Add(1)
			return faultinject.Rule{Fault: faultinject.FaultStatus, Code: 503}
		}
		return faultinject.Rule{}
	})
	_, err := cl.TopK(context.Background(), testQuery(t), 1)
	if err == nil {
		t.Fatal("want failure after exhausted retries")
	}
	var se *corpus.ScanError
	if !errors.As(err, &se) || se.Shard != cl.Name() {
		t.Fatalf("err = %v, want ScanError naming %s", err, cl.Name())
	}
	if n := attempts.Load(); n != int64(fastRetry.MaxAttempts) {
		t.Fatalf("client made %d attempts, want %d", n, fastRetry.MaxAttempts)
	}
	if n := leaf.topkCalls.Load(); n != 0 {
		t.Fatalf("backend served %d topk calls, want 0", n)
	}
}

// TestClient500NotRetried: a 500 is a deterministic backend failure (a
// scan error would recur on every attempt); exactly one attempt is made.
func TestClient500NotRetried(t *testing.T) {
	var attempts atomic.Int64
	cl, _ := newFaultyClient(t, func(r *http.Request, seq int) faultinject.Rule {
		if r.URL.Path == "/v1/topk" {
			attempts.Add(1)
			return faultinject.Rule{Fault: faultinject.FaultStatus, Code: 500}
		}
		return faultinject.Rule{}
	})
	_, err := cl.TopK(context.Background(), testQuery(t), 1)
	var se *corpus.ScanError
	if err == nil || !errors.As(err, &se) {
		t.Fatalf("err = %v, want ScanError", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("client made %d attempts, want 1 (500 must not retry)", n)
	}
}

// TestClient4xxNotRetriedNotScanError: a 4xx is the caller's own
// mistake: no retry, and no ScanError either (partial mode must not
// swallow it).
func TestClient4xxNotRetriedNotScanError(t *testing.T) {
	var attempts atomic.Int64
	cl, _ := newFaultyClient(t, func(r *http.Request, seq int) faultinject.Rule {
		if r.URL.Path == "/v1/topk" {
			attempts.Add(1)
			return faultinject.Rule{Fault: faultinject.FaultStatus, Code: 400}
		}
		return faultinject.Rule{}
	})
	_, err := cl.TopK(context.Background(), testQuery(t), 1)
	if err == nil {
		t.Fatal("want error")
	}
	var se *corpus.ScanError
	if errors.As(err, &se) {
		t.Fatalf("4xx surfaced as ScanError: %v", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("client made %d attempts, want 1", n)
	}
}

// TestClientAttemptTimeoutRetries: a hung attempt is cut off by the
// per-attempt timeout and retried while the caller's context stays live.
func TestClientAttemptTimeoutRetries(t *testing.T) {
	policy := fastRetry
	policy.AttemptTimeout = 100 * time.Millisecond
	cl, _ := newFaultyClient(t,
		failTopK(1, faultinject.Rule{Fault: faultinject.FaultHang}),
		shard.WithRetryPolicy(policy))
	var stats corpus.Stats
	if _, err := cl.TopK(context.Background(), testQuery(t), 1, corpus.WithStats(&stats)); err != nil {
		t.Fatalf("TopK after one hung attempt: %v", err)
	}
	if stats.Retries != 1 {
		t.Fatalf("stats.Retries = %d, want 1", stats.Retries)
	}
}

// TestClientCallerCancelNotRetried: the caller's own cancellation ends
// the request immediately — no retry, and no breaker strike for a
// failure that was not the shard's fault.
func TestClientCallerCancelNotRetried(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	cl, leaf := newFaultyClient(t, func(r *http.Request, seq int) faultinject.Rule {
		if r.URL.Path != "/v1/topk" {
			return faultinject.Rule{}
		}
		once.Do(func() { close(started) })
		return faultinject.Rule{Fault: faultinject.FaultHang}
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	q := testQuery(t)
	go func() {
		_, err := cl.TopK(ctx, q, 1)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled query did not return within 5s")
	}
	if n := leaf.topkCalls.Load(); n != 0 {
		t.Fatalf("backend served %d topk calls, want 0 (cancellation must not retry)", n)
	}
	if st := cl.BreakerState(); st != shard.BreakerClosed {
		t.Fatalf("breaker %v after caller cancellation, want closed (no strike)", st)
	}
}

// TestClientBreakerOpensAndSkips: consecutive attempt failures open the
// breaker; further queries fail locally with ErrBreakerOpen, without a
// network round trip.
func TestClientBreakerOpensAndSkips(t *testing.T) {
	var attempts atomic.Int64
	cl, _ := newFaultyClient(t,
		func(r *http.Request, seq int) faultinject.Rule {
			if r.URL.Path == "/v1/topk" {
				attempts.Add(1)
				return faultinject.Rule{Fault: faultinject.FaultStatus, Code: 503}
			}
			return faultinject.Rule{}
		},
		shard.WithBreakerPolicy(shard.BreakerPolicy{Threshold: 3, Cooldown: time.Hour}))
	if _, err := cl.TopK(context.Background(), testQuery(t), 1); err == nil {
		t.Fatal("want failure")
	}
	// 3 attempts = 3 consecutive failures = the threshold: breaker open.
	if st := cl.BreakerState(); st != shard.BreakerOpen {
		t.Fatalf("breaker %v after %d failed attempts, want open", st, attempts.Load())
	}
	before := attempts.Load()
	_, err := cl.TopK(context.Background(), testQuery(t), 1)
	if !errors.Is(err, shard.ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	var se *corpus.ScanError
	if !errors.As(err, &se) || se.Shard != cl.Name() {
		t.Fatalf("breaker error %v not attributed as ScanError to %s", err, cl.Name())
	}
	if attempts.Load() != before {
		t.Fatalf("open breaker still sent %d requests", attempts.Load()-before)
	}
}

// TestClientBreakerHalfOpenRecovery: after the cooldown one probe goes
// through; its success closes the breaker and service resumes.
func TestClientBreakerHalfOpenRecovery(t *testing.T) {
	cl, _ := newFaultyClient(t,
		failTopK(2, faultinject.Rule{Fault: faultinject.FaultStatus, Code: 503}),
		shard.WithRetryPolicy(shard.RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond}),
		shard.WithBreakerPolicy(shard.BreakerPolicy{Threshold: 2, Cooldown: time.Nanosecond}))
	// Two failing queries (one attempt each) open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := cl.TopK(context.Background(), testQuery(t), 1); err == nil {
			t.Fatal("want failure")
		}
	}
	// The nanosecond cooldown has long passed: the next query is the
	// half-open probe, the backend now answers, the breaker closes.
	if _, err := cl.TopK(context.Background(), testQuery(t), 1); err != nil {
		t.Fatalf("probe query failed: %v", err)
	}
	if st := cl.BreakerState(); st != shard.BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", st)
	}
}

// TestClientBreakerProbeCancelDoesNotWedge: a half-open probe the caller
// cancels mid-flight delivers no verdict — the breaker must revert to
// open and admit the next query as a fresh probe, not sit half-open
// refusing everything until a process restart.
func TestClientBreakerProbeCancelDoesNotWedge(t *testing.T) {
	var calls atomic.Int64
	started := make(chan struct{})
	var once sync.Once
	cl, _ := newFaultyClient(t,
		func(r *http.Request, seq int) faultinject.Rule {
			if r.URL.Path != "/v1/topk" {
				return faultinject.Rule{}
			}
			switch calls.Add(1) {
			case 1, 2:
				return faultinject.Rule{Fault: faultinject.FaultStatus, Code: 503}
			case 3:
				once.Do(func() { close(started) })
				return faultinject.Rule{Fault: faultinject.FaultHang}
			default:
				return faultinject.Rule{}
			}
		},
		shard.WithRetryPolicy(shard.RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond}),
		shard.WithBreakerPolicy(shard.BreakerPolicy{Threshold: 2, Cooldown: time.Nanosecond}))
	// Two failing queries (one attempt each) open the breaker.
	for i := 0; i < 2; i++ {
		if _, err := cl.TopK(context.Background(), testQuery(t), 1); err == nil {
			t.Fatal("want failure")
		}
	}
	// The cooldown has passed: the next query is the half-open probe. It
	// hangs, and the caller gives up on it.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	q := testQuery(t)
	go func() {
		_, err := cl.TopK(ctx, q, 1)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("probe err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled probe did not return within 5s")
	}
	// The backend now answers: the next query must be admitted as a fresh
	// probe, succeed, and close the breaker.
	if _, err := cl.TopK(context.Background(), testQuery(t), 1); err != nil {
		t.Fatalf("query after cancelled probe: %v (breaker wedged half-open?)", err)
	}
	if st := cl.BreakerState(); st != shard.BreakerClosed {
		t.Fatalf("breaker %v after successful re-probe, want closed", st)
	}
}

// TestClientBreakerProbe4xxSettles: a half-open probe answered with a
// deterministic 4xx proves the shard alive — the probe settles as a
// success (the breaker closes) instead of leaving probing set forever.
func TestClientBreakerProbe4xxSettles(t *testing.T) {
	var calls atomic.Int64
	cl, _ := newFaultyClient(t,
		func(r *http.Request, seq int) faultinject.Rule {
			if r.URL.Path != "/v1/topk" {
				return faultinject.Rule{}
			}
			switch calls.Add(1) {
			case 1, 2:
				return faultinject.Rule{Fault: faultinject.FaultStatus, Code: 503}
			case 3:
				return faultinject.Rule{Fault: faultinject.FaultStatus, Code: 400}
			default:
				return faultinject.Rule{}
			}
		},
		shard.WithRetryPolicy(shard.RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Nanosecond, MaxBackoff: time.Nanosecond}),
		shard.WithBreakerPolicy(shard.BreakerPolicy{Threshold: 2, Cooldown: time.Nanosecond}))
	for i := 0; i < 2; i++ {
		if _, err := cl.TopK(context.Background(), testQuery(t), 1); err == nil {
			t.Fatal("want failure")
		}
	}
	// The probe comes back 400: the shard answered, so it is alive.
	if _, err := cl.TopK(context.Background(), testQuery(t), 1); err == nil {
		t.Fatal("want the 400 to surface")
	}
	if st := cl.BreakerState(); st != shard.BreakerClosed {
		t.Fatalf("breaker %v after 4xx-answered probe, want closed", st)
	}
	if _, err := cl.TopK(context.Background(), testQuery(t), 1); err != nil {
		t.Fatalf("query after settled probe: %v", err)
	}
}

// TestReplicaSetLoserClientRetriesAccounted: a primary that burns its
// retry budget before failing over still reports those retries — the
// client records attempts on its error path and the race folds the
// losing attempt's fault accounting into the winner's merged stats.
func TestReplicaSetLoserClientRetriesAccounted(t *testing.T) {
	primary, _ := newFaultyClient(t,
		failTopK(1<<30, faultinject.Rule{Fault: faultinject.FaultStatus, Code: 503}),
		shard.WithName("deadPrimary"))
	secondary, _ := newFaultyClient(t, nil, shard.WithName("healthy"))
	rs := shard.NewReplicaSet([]corpus.Searcher{primary, secondary}, shard.WithHedgeDelay(time.Hour))
	var stats corpus.Stats
	if _, err := rs.TopK(context.Background(), testQuery(t), 1, corpus.WithStats(&stats)); err != nil {
		t.Fatalf("failover query: %v", err)
	}
	if want := uint64(fastRetry.MaxAttempts - 1); stats.Retries != want {
		t.Fatalf("stats.Retries = %d, want %d (the dead primary's burned retries)", stats.Retries, want)
	}
	found := false
	for _, name := range stats.Retried {
		found = found || name == "deadPrimary"
	}
	if !found {
		t.Fatalf("stats.Retried = %v, want the dead primary named", stats.Retried)
	}
}

// TestClientResponseTooLarge: a response over the cap fails with
// ErrResponseTooLarge (wrapped in a ScanError), not a JSON decode
// error, and is not retried.
func TestClientResponseTooLarge(t *testing.T) {
	var attempts atomic.Int64
	cl, _ := newFaultyClient(t, countTopK(&attempts), shard.WithMaxResponseBytes(16))
	_, err := cl.TopK(context.Background(), testQuery(t), 1)
	if !errors.Is(err, shard.ErrResponseTooLarge) {
		t.Fatalf("err = %v, want ErrResponseTooLarge", err)
	}
	var se *corpus.ScanError
	if !errors.As(err, &se) || se.Shard != cl.Name() {
		t.Fatalf("oversized response error %v not a ScanError naming the shard", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("client made %d attempts, want 1 (oversize must not retry)", n)
	}
}

// TestClientListingCacheGenerationKeyed: DocsContext re-transfers the
// manifest only when the remote generation changed; while it matches, a
// cheap /healthz round trip serves the cached listing.
func TestClientListingCacheGenerationKeyed(t *testing.T) {
	cl, leaf := newFaultyClient(t, nil)
	leaf.generation.Store(7)
	ctx := context.Background()

	docs, err := cl.DocsContext(ctx)
	if err != nil || len(docs) != 1 || docs[0].Name != "d0" {
		t.Fatalf("first listing: %v, %v", docs, err)
	}
	if n := leaf.docsFetches.Load(); n != 1 {
		t.Fatalf("first DocsContext made %d listing fetches, want 1", n)
	}

	// Same generation: the cached listing is served, no /v1/docs call.
	docs, err = cl.DocsContext(ctx)
	if err != nil || len(docs) != 1 {
		t.Fatalf("second listing: %v, %v", docs, err)
	}
	if n := leaf.docsFetches.Load(); n != 1 {
		t.Fatalf("unchanged generation still re-fetched the listing (%d fetches)", n)
	}

	// The cached listing must be a copy: mutating it cannot poison the
	// cache for later callers.
	docs[0].Name = "mutated"
	docs, err = cl.DocsContext(ctx)
	if err != nil || docs[0].Name != "d0" {
		t.Fatalf("cache poisoned by caller mutation: %v, %v", docs, err)
	}

	// A remote ingest bumps the generation: the next DocsContext must
	// re-transfer.
	leaf.generation.Store(8)
	if _, err := cl.DocsContext(ctx); err != nil {
		t.Fatal(err)
	}
	if n := leaf.docsFetches.Load(); n != 2 {
		t.Fatalf("changed generation fetched %d listings total, want 2", n)
	}
}
