package shard_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tasm/corpus"
	"tasm/corpus/shard"
	"tasm/internal/dict"
	"tasm/internal/tree"
)

// docSpec is one document in bracket notation.
type docSpec struct {
	name    string
	bracket string
}

// fixtureDocs is a corpus with near-duplicate records across documents so
// rankings contain cross-document distance ties — the case where merge
// order matters.
var fixtureDocs = []docSpec{
	{"d0", "{r{rec{a}{b}{c}}{rec{a}{b}}{x{y}}}"},
	{"d1", "{r{rec{a}{b}{c}}{rec{a}{d}}{z}}"},
	{"d2", "{r{rec{a}{b}{c}}{other{a}{b}{c}}}"},
	{"d3", "{r{rec{b}{c}}{rec{a}{b}{c}{d}}}"},
	{"d4", "{s{rec{a}{b}{c}}{rec{a}{b}{c}}}"},
	{"d5", "{s{unrelated{p}{q}}{w{v}}}"},
}

// addDoc ingests one bracket document parsed under a fresh dictionary
// (AddTree re-interns it into the corpus dictionary).
func addDoc(t testing.TB, c *corpus.Corpus, d docSpec) {
	t.Helper()
	if _, err := c.AddTree(d.name, tree.MustParse(dict.New(), d.bracket)); err != nil {
		t.Fatal(err)
	}
}

// buildShards splits docs over n shard corpora in contiguous runs and
// builds the union corpus holding all of them in the same concatenation
// order, so the group's (distance, shard, position) merge order equals
// the union corpus's (distance, manifest, position) order.
func buildShards(t testing.TB, docs []docSpec, n int) (union *corpus.Corpus, shards []*corpus.Corpus) {
	t.Helper()
	union = openCorpus(t)
	shards = make([]*corpus.Corpus, n)
	per := (len(docs) + n - 1) / n
	for i := range shards {
		shards[i] = openCorpus(t)
		lo, hi := i*per, min((i+1)*per, len(docs))
		for _, d := range docs[lo:hi] {
			addDoc(t, shards[i], d)
			addDoc(t, union, d)
		}
	}
	return union, shards
}

func openCorpus(t testing.TB) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func searchers(cs []*corpus.Corpus) []corpus.Searcher {
	out := make([]corpus.Searcher, len(cs))
	for i, c := range cs {
		out[i] = c
	}
	return out
}

// normalize serializes matches to the comparison currency: everything
// except the shard-local document id and file paths, which necessarily
// differ between a shard and the merged corpus.
func normalize(t testing.TB, ms []corpus.Match) string {
	t.Helper()
	type jm struct {
		Doc  string  `json:"doc"`
		Pos  int     `json:"pos"`
		Dist float64 `json:"dist"`
		Size int     `json:"size"`
		Tree string  `json:"tree,omitempty"`
	}
	out := make([]jm, len(ms))
	for i, m := range ms {
		out[i] = jm{Doc: m.Doc.Name, Pos: m.Pos, Dist: m.Dist, Size: m.Size}
		if m.Tree != nil {
			out[i].Tree = m.Tree.String()
		}
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// queryModes are the option combinations the equivalence tests pin.
var queryModes = []struct {
	name string
	opts []corpus.QueryOption
}{
	{"default", nil},
	{"noTrees", []corpus.QueryOption{corpus.WithoutTrees()}},
	{"workers", []corpus.QueryOption{corpus.WithWorkers(-1)}},
	{"exhaustive", []corpus.QueryOption{corpus.WithoutFilter()}},
	{"unpruned", []corpus.QueryOption{corpus.WithoutCandidatePruning()}},
}

// TestGroupTopKEquivalence is the acceptance criterion: a Group over ≥ 3
// local shards returns results identical to a single corpus holding the
// union of the shards' documents, for every option mode, every k, and
// queries including labels no shard has ever seen.
func TestGroupTopKEquivalence(t *testing.T) {
	union, shards := buildShards(t, fixtureDocs, 3)
	g := shard.NewGroup(searchers(shards)...)
	queries := []string{
		"{rec{a}{b}{c}}",
		"{rec{a}{b}}",
		"{r{rec{a}{b}{c}}}",
		"{rec{foreign}{labels}}", // labels unknown to every shard
		"{nope}",
	}
	ctx := context.Background()
	for _, qs := range queries {
		q := tree.MustParse(dict.New(), qs)
		for _, k := range []int{1, 3, 7, 25} {
			for _, mode := range queryModes {
				var us, gs corpus.Stats
				want, err := union.TopK(ctx, q, k, append(mode.opts[:len(mode.opts):len(mode.opts)], corpus.WithStats(&us))...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := g.TopK(ctx, q, k, append(mode.opts[:len(mode.opts):len(mode.opts)], corpus.WithStats(&gs))...)
				if err != nil {
					t.Fatal(err)
				}
				if nw, ng := normalize(t, want), normalize(t, got); nw != ng {
					t.Errorf("q=%s k=%d mode=%s:\n union %s\n group %s", qs, k, mode.name, nw, ng)
				}
				if gs.Scanned+gs.Skipped == 0 {
					t.Errorf("q=%s k=%d mode=%s: merged group stats saw no documents: %+v", qs, k, mode.name, gs)
				}
			}
		}
	}
}

// TestGroupTopKBatchEquivalence pins the batch path: group batch results
// equal the union corpus's batch results, which in turn equal per-query
// TopK.
func TestGroupTopKBatchEquivalence(t *testing.T) {
	union, shards := buildShards(t, fixtureDocs, 3)
	g := shard.NewGroup(searchers(shards)...)
	specs := []string{"{rec{a}{b}{c}}", "{rec{x}{y}}", "{other{a}{b}{c}}", "{alien{species}}"}
	queries := make([]*tree.Tree, len(specs))
	for i, s := range specs {
		queries[i] = tree.MustParse(dict.New(), s)
	}
	ctx := context.Background()
	for _, k := range []int{1, 4, 11} {
		want, err := union.TopKBatch(ctx, queries, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.TopKBatch(ctx, queries, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			if nw, ng := normalize(t, want[i]), normalize(t, got[i]); nw != ng {
				t.Errorf("k=%d query %d:\n union %s\n group %s", k, i, nw, ng)
			}
			single, err := g.TopK(ctx, queries[i], k)
			if err != nil {
				t.Fatal(err)
			}
			if ns, ng := normalize(t, single), normalize(t, got[i]); ns != ng {
				t.Errorf("k=%d query %d: group batch differs from group single:\n single %s\n batch %s", k, i, ns, ng)
			}
		}
	}
}

// TestGroupWithDocs: a selection is split over the shards holding the
// named documents, unknown names fail with the single-corpus error text,
// and results match the union corpus under the same selection.
func TestGroupWithDocs(t *testing.T) {
	union, shards := buildShards(t, fixtureDocs, 3)
	g := shard.NewGroup(searchers(shards)...)
	q := tree.MustParse(dict.New(), "{rec{a}{b}{c}}")
	ctx := context.Background()

	sel := []string{"d0", "d3", "d5"} // spans shards 0, 1 and 2
	want, err := union.TopK(ctx, q, 5, corpus.WithDocs(sel...))
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.TopK(ctx, q, 5, corpus.WithDocs(sel...))
	if err != nil {
		t.Fatal(err)
	}
	if nw, ng := normalize(t, want), normalize(t, got); nw != ng {
		t.Errorf("selection:\n union %s\n group %s", nw, ng)
	}

	if _, err := g.TopK(ctx, q, 5, corpus.WithDocs("d0", "ghost")); err == nil ||
		!strings.Contains(err.Error(), `unknown document "ghost"`) {
		t.Errorf("unknown selection: err = %v, want unknown document", err)
	}
}

// TestGroupDocsAndGeneration: Docs concatenates in shard order and
// Generation changes when any shard's document set does.
func TestGroupDocsAndGeneration(t *testing.T) {
	_, shards := buildShards(t, fixtureDocs, 3)
	g := shard.NewGroup(searchers(shards)...)
	docs := g.Docs()
	if len(docs) != len(fixtureDocs) {
		t.Fatalf("group lists %d docs, want %d", len(docs), len(fixtureDocs))
	}
	for i, d := range docs {
		if d.Name != fixtureDocs[i].name {
			t.Errorf("doc %d is %q, want %q (shard-order concatenation)", i, d.Name, fixtureDocs[i].name)
		}
	}
	gen := g.Generation()
	addDoc(t, shards[1], docSpec{"late", "{r{late{doc}}}"})
	if g.Generation() == gen {
		t.Error("group generation unchanged after a shard ingest")
	}
	if err := shards[1].Remove("late"); err != nil {
		t.Fatal(err)
	}
	if g.Generation() == gen {
		t.Error("group generation unchanged after a shard removal (sum of bumped shard generations)")
	}
}

// TestGroupShardFailureAttributed: a failing shard fails the whole query
// with a *corpus.ScanError naming the shard, reachable through errors.As.
func TestGroupShardFailureAttributed(t *testing.T) {
	_, shards := buildShards(t, fixtureDocs, 3)
	// Corrupt the middle shard's first store file under the already-open
	// corpus: truncate into the item region (past the 4-byte CRC trailer,
	// which the scan path never reads), so the scan hits an unexpected
	// EOF. An Open-time scrub would quarantine this file; here the damage
	// lands mid-flight, after the serving set was established.
	victim := shards[1].Docs()[0]
	path := filepath.Join(shards[1].Dir(), victim.Store)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	g := shard.NewGroup(searchers(shards)...)
	q := tree.MustParse(dict.New(), "{rec{a}{b}{c}}")
	_, err = g.TopK(context.Background(), q, 3, corpus.WithoutFilter())
	if err == nil {
		t.Fatal("corrupt shard store: want error, got nil")
	}
	var se *corpus.ScanError
	if !errors.As(err, &se) {
		t.Fatalf("error %v does not unwrap to *corpus.ScanError", err)
	}
	if se.Shard != "shard1" {
		t.Errorf("ScanError.Shard = %q, want shard1 (the corrupted shard)", se.Shard)
	}
	if se.Doc != victim.Name {
		t.Errorf("ScanError.Doc = %q, want %q", se.Doc, victim.Name)
	}
}

// TestEmptyGroup: the zero group and groups over empty shards answer with
// no matches, like an empty corpus.
func TestEmptyGroup(t *testing.T) {
	q := tree.MustParse(dict.New(), "{a}")
	var g shard.Group
	ms, err := g.TopK(context.Background(), q, 3)
	if err != nil || len(ms) != 0 {
		t.Fatalf("zero group: %v matches, err %v", ms, err)
	}
	g2 := shard.NewGroup(openCorpus(t), openCorpus(t))
	ms, err = g2.TopK(context.Background(), q, 3)
	if err != nil || len(ms) != 0 {
		t.Fatalf("empty shards: %v matches, err %v", ms, err)
	}
}
