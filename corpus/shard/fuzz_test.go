package shard_test

import (
	"context"
	"fmt"
	"testing"

	"tasm/corpus"
	"tasm/corpus/shard"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// decodeTree turns fuzz bytes into one well-formed tree: each byte's high
// nibble says how many completed subtrees the new node adopts (clamped),
// the low nibble picks its label, and a final root adopts leftovers —
// the same decoding internal/core's fuzz targets use.
func decodeTree(d dict.Dict, data []byte) *tree.Tree {
	if len(data) > 96 {
		data = data[:96]
	}
	labelIDs := make([]int, 8)
	for i := range labelIDs {
		labelIDs[i] = d.Intern(string(rune('a' + i)))
	}
	var items []postorder.Item
	var stack []int
	for _, b := range data {
		take := int(b >> 4)
		if take > len(stack) {
			take = len(stack)
		}
		sz := 1
		for i := 0; i < take; i++ {
			sz += stack[len(stack)-1-i]
		}
		stack = stack[:len(stack)-take]
		stack = append(stack, sz)
		items = append(items, postorder.Item{Label: labelIDs[int(b&0xf)%len(labelIDs)], Size: sz})
	}
	if len(items) == 0 {
		return nil
	}
	if len(stack) > 1 {
		items = append(items, postorder.Item{Label: labelIDs[0], Size: len(items) + 1})
	}
	t, err := postorder.BuildTree(d, postorder.NewSliceQueue(items))
	if err != nil {
		return nil
	}
	return t
}

// faultyReplica builds the fuzz-selected faulty primary for one shard:
// a dead replica (instant ScanError) or a breaker-skipped one. Both are
// in-process stubs, so the fuzz loop never touches the network or a
// timer — the healthy replica is the same corpus instance, and a zero
// hedge delay races it immediately.
func faultyReplica(kind uint8, i int) corpus.Searcher {
	if kind&1 == 0 {
		return &failingSearcher{}
	}
	return &breakerSkippedSearcher{name: fmt.Sprintf("dead%d", i)}
}

// FuzzGroupVsMerged pins the acceptance criterion under adversarial
// inputs: a Group over 3 shards holding fuzz-decoded documents must
// answer TopK and TopKBatch byte-identically to one corpus holding the
// union of the documents, for a fuzz-decoded query that may carry labels
// no document has. The faults byte additionally replicates each shard
// behind a ReplicaSet whose primary is faulted (dead or breaker-skipped,
// one bit per shard), pinning the same identity through failover.
func FuzzGroupVsMerged(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23}, []byte{0x04, 0x15}, []byte{0x01, 0x01, 0x21}, []byte{0x02, 0x13}, uint8(3), uint8(0))
	f.Add([]byte{0x31, 0x31, 0x31, 0x72}, []byte{0x00}, []byte{0x11, 0x11}, []byte{0x0f, 0x2e}, uint8(1), uint8(0b101))
	f.Add([]byte{0x05, 0x0a, 0x21, 0x00, 0x13}, []byte{0x01, 0x02}, []byte{0x03}, []byte{0x21, 0x30, 0x41}, uint8(5), uint8(0b11111))
	f.Fuzz(func(t *testing.T, doc0, doc1, doc2, qBytes []byte, k8, faults uint8) {
		k := int(k8)%8 + 1
		qd := dict.New()
		// Shift the query's label alphabet so some labels are foreign to
		// the documents.
		qd.Intern("zz0")
		q := decodeTree(qd, qBytes)
		if q == nil {
			t.Skip("empty query")
		}

		union := openCorpus(t)
		shards := make([]*corpus.Corpus, 3)
		for i, data := range [][]byte{doc0, doc1, doc2} {
			shards[i] = openCorpus(t)
			dt := decodeTree(dict.New(), data)
			if dt == nil {
				continue // an empty shard is legal
			}
			name := fmt.Sprintf("doc%d", i)
			if _, err := shards[i].AddTree(name, dt); err != nil {
				t.Fatal(err)
			}
			if _, err := union.AddTree(name, dt); err != nil {
				t.Fatal(err)
			}
		}
		// Each shard becomes a two-replica set; the faults bits decide
		// whether its primary is healthy or faulted (a minority of each
		// set's replicas, so every shard still answers).
		members := make([]corpus.Searcher, len(shards))
		for i, s := range shards {
			if faults>>(2*i)&1 == 0 {
				members[i] = shard.NewReplicaSet([]corpus.Searcher{s, s}, shard.WithHedgeDelay(0))
			} else {
				members[i] = shard.NewReplicaSet(
					[]corpus.Searcher{faultyReplica(faults>>(2*i+1), i), s},
					shard.WithHedgeDelay(0))
			}
		}
		g := shard.NewGroup(members...)
		ctx := context.Background()

		want, err := union.TopK(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.TopK(ctx, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if nw, ng := normalize(t, want), normalize(t, got); nw != ng {
			t.Fatalf("TopK k=%d:\n union %s\n group %s", k, nw, ng)
		}

		qs := []*tree.Tree{q, tree.MustParse(dict.New(), "{a{b}}")}
		wantB, err := union.TopKBatch(ctx, qs, k)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := g.TopKBatch(ctx, qs, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if nw, ng := normalize(t, wantB[i]), normalize(t, gotB[i]); nw != ng {
				t.Fatalf("TopKBatch query %d k=%d:\n union %s\n group %s", i, k, nw, ng)
			}
		}
	})
}
