package shard_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"tasm/corpus"
	"tasm/corpus/shard"
	"tasm/internal/dict"
	"tasm/internal/tree"
)

// blockingSearcher blocks every query until its context is cancelled —
// the deterministic stand-in for a slow shard.
type blockingSearcher struct {
	started chan struct{} // closed (once) when a query begins blocking
}

func newBlockingSearcher() *blockingSearcher {
	return &blockingSearcher{started: make(chan struct{})}
}

func (b *blockingSearcher) block(ctx context.Context) error {
	select {
	case <-b.started:
	default:
		close(b.started)
	}
	<-ctx.Done()
	return ctx.Err()
}

func (b *blockingSearcher) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	return nil, b.block(ctx)
}

func (b *blockingSearcher) TopKBatch(ctx context.Context, qs []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	return nil, b.block(ctx)
}

func (b *blockingSearcher) Docs() []corpus.DocInfo { return nil }
func (b *blockingSearcher) Generation() uint64     { return 0 }

// leakCheck is a hand-rolled goroutine-leak detector: it records the
// goroutine count up front and fails the test if it has not returned to
// that level (with slack for runtime background goroutines) shortly after
// the test body finishes.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestGroupCancellationPrompt: cancelling the caller's context releases a
// group fan-out whose shards never answer on their own, promptly and
// without leaking the scatter goroutines.
func TestGroupCancellationPrompt(t *testing.T) {
	leakCheck(t)
	slow := newBlockingSearcher()
	g := shard.NewGroup(openCorpus(t), slow)
	q := tree.MustParse(dict.New(), "{a{b}}")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.TopK(ctx, q, 3)
		done <- err
	}()
	<-slow.started // the fan-out reached the slow shard
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled group query returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled group query did not return within 5s")
	}
}

// TestGroupDeadline: an already-expired deadline fails the fan-out with
// DeadlineExceeded rather than hanging on a shard that never answers.
func TestGroupDeadline(t *testing.T) {
	leakCheck(t)
	g := shard.NewGroup(openCorpus(t), newBlockingSearcher())
	q := tree.MustParse(dict.New(), "{a}")
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := g.TopKBatch(ctx, []*tree.Tree{q}, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}
}

// TestGroupFailureCancelsSiblings: one shard failing cancels the others'
// contexts (they stop paying for a query whose answer is already doomed)
// and no goroutine outlives the call.
func TestGroupFailureCancelsSiblings(t *testing.T) {
	leakCheck(t)
	failing := &failingSearcher{}
	slow := newBlockingSearcher()
	g := shard.NewGroup(failing, slow)
	q := tree.MustParse(dict.New(), "{a}")
	_, err := g.TopK(context.Background(), q, 2)
	if err == nil {
		t.Fatal("want the failing shard's error")
	}
	var se *corpus.ScanError
	if !errors.As(err, &se) || se.Shard != "shard0" {
		t.Fatalf("error %v not attributed to shard0", err)
	}
}

type failingSearcher struct{}

//tasm:allow ctxpoll — test stub: fails immediately, no candidate loop to poll from
func (f *failingSearcher) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	return nil, &corpus.ScanError{Doc: "broken", Err: fmt.Errorf("store corrupt")}
}

//tasm:allow ctxpoll — test stub: fails immediately, no candidate loop to poll from
func (f *failingSearcher) TopKBatch(ctx context.Context, qs []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	return nil, &corpus.ScanError{Doc: "broken", Err: fmt.Errorf("store corrupt")}
}

func (f *failingSearcher) Docs() []corpus.DocInfo { return nil }
func (f *failingSearcher) Generation() uint64     { return 0 }

// TestCorpusCancellationMidScan: a context cancelled while a corpus TopK
// run is underway stops the scan and returns context.Canceled — through
// the real file-backed scan path, not a stub.
func TestCorpusCancellationMidScan(t *testing.T) {
	c := openCorpus(t)
	// Enough identical records that the scan is not instantaneous.
	var sb []byte
	sb = append(sb, "{r"...)
	for i := 0; i < 2000; i++ {
		sb = append(sb, "{rec{a}{b}{c}{d}}"...)
	}
	sb = append(sb, '}')
	addDoc(t, c, docSpec{"big", string(sb)})

	q := tree.MustParse(dict.New(), "{rec{a}{b}{c}}")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must abort before or during doc 1
	if _, err := c.TopK(ctx, q, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled corpus TopK returned %v, want context.Canceled", err)
	}
	if _, err := c.TopKBatch(ctx, []*tree.Tree{q}, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled corpus TopKBatch returned %v, want context.Canceled", err)
	}
}
