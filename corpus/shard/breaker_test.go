package shard

import (
	"testing"
	"time"
)

// fakeClock drives a breaker without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(p BreakerPolicy) (*breaker, *fakeClock) {
	b := newBreaker(p)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(BreakerPolicy{Threshold: 3, Cooldown: time.Minute})
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("failure %d: breaker should still be closed", i)
		}
		b.failure()
	}
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("after 2 failures: state %v, want closed", got)
	}
	if !b.allow() {
		t.Fatal("third attempt should be admitted")
	}
	b.failure()
	if got := b.snapshot(); got != BreakerOpen {
		t.Fatalf("after 3 consecutive failures: state %v, want open", got)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request before the cooldown")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(BreakerPolicy{Threshold: 2, Cooldown: time.Minute})
	b.failure()
	b.success() // the streak dies here
	b.failure()
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("non-consecutive failures opened the breaker: state %v", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(BreakerPolicy{Threshold: 1, Cooldown: time.Minute})
	b.failure()
	if b.allow() {
		t.Fatal("open breaker admitted a request")
	}
	clk.advance(time.Minute)
	if got := b.snapshot(); got != BreakerHalfOpen {
		t.Fatalf("after the cooldown: state %v, want half-open", got)
	}
	if !b.allow() {
		t.Fatal("cooldown passed: one probe must be admitted")
	}
	if b.allow() {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// A failed probe re-opens immediately for a fresh cooldown.
	b.failure()
	if got := b.snapshot(); got != BreakerOpen {
		t.Fatalf("failed probe: state %v, want open", got)
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request")
	}

	// A successful probe closes the breaker for good.
	clk.advance(time.Minute)
	if !b.allow() {
		t.Fatal("second probe not admitted")
	}
	b.success()
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("successful probe: state %v, want closed", got)
	}
	if !b.allow() || !b.allow() {
		t.Fatal("closed breaker must admit everything")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerPolicy{Threshold: -1})
	if b != nil {
		t.Fatal("Threshold < 0 should disable the breaker (nil)")
	}
	// The nil breaker's methods are no-ops that always allow.
	if !b.allow() {
		t.Fatal("nil breaker denied a request")
	}
	b.failure()
	b.success()
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("nil breaker state %v, want closed", got)
	}
}

func TestBreakerStateString(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerHalfOpen: "half-open", BreakerOpen: "open",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(state), got, want)
		}
	}
}
