package shard

import (
	"testing"
	"time"
)

// fakeClock drives a breaker without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(p BreakerPolicy) (*breaker, *fakeClock) {
	b := newBreaker(p)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

// allowOK is allow() for tests that only care about admission.
func allowOK(b *breaker) bool {
	ok, _ := b.allow()
	return ok
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(BreakerPolicy{Threshold: 3, Cooldown: time.Minute})
	for i := 0; i < 2; i++ {
		if !allowOK(b) {
			t.Fatalf("failure %d: breaker should still be closed", i)
		}
		b.failure()
	}
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("after 2 failures: state %v, want closed", got)
	}
	if !allowOK(b) {
		t.Fatal("third attempt should be admitted")
	}
	b.failure()
	if got := b.snapshot(); got != BreakerOpen {
		t.Fatalf("after 3 consecutive failures: state %v, want open", got)
	}
	if allowOK(b) {
		t.Fatal("open breaker admitted a request before the cooldown")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(BreakerPolicy{Threshold: 2, Cooldown: time.Minute})
	b.failure()
	b.success() // the streak dies here
	b.failure()
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("non-consecutive failures opened the breaker: state %v", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(BreakerPolicy{Threshold: 1, Cooldown: time.Minute})
	b.failure()
	if allowOK(b) {
		t.Fatal("open breaker admitted a request")
	}
	clk.advance(time.Minute)
	if got := b.snapshot(); got != BreakerHalfOpen {
		t.Fatalf("after the cooldown: state %v, want half-open", got)
	}
	if !allowOK(b) {
		t.Fatal("cooldown passed: one probe must be admitted")
	}
	if allowOK(b) {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// A failed probe re-opens immediately for a fresh cooldown.
	b.failure()
	if got := b.snapshot(); got != BreakerOpen {
		t.Fatalf("failed probe: state %v, want open", got)
	}
	if allowOK(b) {
		t.Fatal("re-opened breaker admitted a request")
	}

	// A successful probe closes the breaker for good.
	clk.advance(time.Minute)
	if !allowOK(b) {
		t.Fatal("second probe not admitted")
	}
	b.success()
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("successful probe: state %v, want closed", got)
	}
	if !allowOK(b) || !allowOK(b) {
		t.Fatal("closed breaker must admit everything")
	}
}

// TestBreakerProbeNoVerdict: a half-open probe that ends without a
// verdict (the caller cancelled it) reverts the breaker to open with its
// original openedAt — the cooldown has already elapsed, so the very next
// request is admitted as a fresh probe instead of the breaker wedging
// half-open refusing everything forever.
func TestBreakerProbeNoVerdict(t *testing.T) {
	b, clk := newTestBreaker(BreakerPolicy{Threshold: 1, Cooldown: time.Minute})
	b.failure()
	clk.advance(time.Minute)
	ok, probe := b.allow()
	if !ok || !probe {
		t.Fatalf("allow() = (%v, %v), want the half-open probe admitted", ok, probe)
	}
	b.noVerdict(probe)
	ok, probe = b.allow()
	if !ok || !probe {
		t.Fatalf("after a no-verdict probe: allow() = (%v, %v), want a fresh probe", ok, probe)
	}
	b.success()
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("successful re-probe: state %v, want closed", got)
	}

	// A non-probe no-verdict settles nothing and never disturbs state.
	b.noVerdict(false)
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("non-probe noVerdict moved state to %v", got)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerPolicy{Threshold: -1})
	if b != nil {
		t.Fatal("Threshold < 0 should disable the breaker (nil)")
	}
	// The nil breaker's methods are no-ops that always allow.
	if !allowOK(b) {
		t.Fatal("nil breaker denied a request")
	}
	b.failure()
	b.success()
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("nil breaker state %v, want closed", got)
	}
}

func TestBreakerStateString(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerHalfOpen: "half-open", BreakerOpen: "open",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(state), got, want)
		}
	}
}
