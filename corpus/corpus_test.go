package corpus_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"tasm/corpus"
	"tasm/internal/dict"
	"tasm/internal/tree"
)

// matchesJSON serializes matches to canonical bytes, the "byte-identical"
// comparison currency of the equivalence tests.
func matchesJSON(t *testing.T, ms []corpus.Match) string {
	t.Helper()
	type jm struct {
		Doc  string  `json:"doc"`
		Pos  int     `json:"pos"`
		Dist float64 `json:"dist"`
		Size int     `json:"size"`
		Tree string  `json:"tree,omitempty"`
	}
	out := make([]jm, len(ms))
	for i, m := range ms {
		out[i] = jm{Doc: m.Doc.Name, Pos: m.Pos, Dist: m.Dist, Size: m.Size}
		if m.Tree != nil {
			out[i].Tree = m.Tree.String()
		}
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestIngestManifestTopKRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("articles", strings.NewReader(
		`<dblp><article><author>smith</author><title>trees</title></article><book><title>graphs</title></book></dblp>`)); err != nil {
		t.Fatal(err)
	}
	doc2, err := c.AddXML("more", strings.NewReader(
		`<dblp><article><author>jones</author><title>edit distance</title></article></dblp>`))
	if err != nil {
		t.Fatal(err)
	}
	if doc2.ID != 2 || doc2.RootLabel != "dblp" || doc2.Nodes < 5 {
		t.Fatalf("unexpected manifest entry: %+v", doc2)
	}
	q, err := c.ParseXML(strings.NewReader(`<article><author>smith</author><title>trees</title></article>`))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.TopK(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d matches, want 3", len(got))
	}
	if got[0].Dist != 0 || got[0].Doc.Name != "articles" {
		t.Fatalf("best match should be the exact subtree in 'articles': %+v", got[0])
	}
	if got[0].Tree == nil {
		t.Fatal("matched subtree not materialized")
	}
	want := matchesJSON(t, got)

	// Reopen from disk: manifest + profiles must reload, and the same
	// query must return byte-identical results.
	c2, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 2 {
		t.Fatalf("reopened corpus has %d docs, want 2", c2.Len())
	}
	q2, err := c2.ParseXML(strings.NewReader(`<article><author>smith</author><title>trees</title></article>`))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := c2.TopK(context.Background(), q2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if j := matchesJSON(t, got2); j != want {
		t.Fatalf("reopened corpus answers differently:\n got %s\nwant %s", j, want)
	}
}

// TestFilterSkipsAndMatchesExhaustive is the acceptance scenario: a
// crafted corpus where the pq-gram prefilter must skip at least one
// document, with results byte-identical to the exhaustive scan.
func TestFilterSkipsAndMatchesExhaustive(t *testing.T) {
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// "near" contains the query verbatim; "far" shares no labels with the
	// query, so its label-histogram bound |Q| exceeds any distance the
	// near document leaves in the ranking.
	if _, err := c.AddXML("near", strings.NewReader(
		`<r><a><b>x</b><c>y</c></a><a><b>x</b></a></r>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("far", strings.NewReader(
		`<zoo><pen><yak>z</yak></pen><pen><emu>w</emu></pen></zoo>`)); err != nil {
		t.Fatal(err)
	}
	q, err := c.ParseXML(strings.NewReader(`<a><b>x</b><c>y</c></a>`))
	if err != nil {
		t.Fatal(err)
	}

	var stats corpus.Stats
	filtered, err := c.TopK(context.Background(), q, 2, corpus.WithStats(&stats))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped < 1 {
		t.Fatalf("filter skipped %d documents, want ≥ 1 (scanned %d)", stats.Skipped, stats.Scanned)
	}
	exhaustive, err := c.TopK(context.Background(), q, 2, corpus.WithoutFilter())
	if err != nil {
		t.Fatal(err)
	}
	fj, ej := matchesJSON(t, filtered), matchesJSON(t, exhaustive)
	if fj != ej {
		t.Fatalf("filtered and exhaustive results differ:\n filtered   %s\n exhaustive %s", fj, ej)
	}
	if filtered[0].Dist != 0 {
		t.Fatalf("query occurs verbatim, want distance 0, got %+v", filtered[0])
	}
}

// TestEquivalenceRandom cross-checks filtered, exhaustive, and parallel
// scans over random corpora: all three must return byte-identical
// rankings for every query.
func TestEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		c, err := corpus.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		scratch := dict.New()
		nDocs := 3 + rng.Intn(3)
		for i := 0; i < nDocs; i++ {
			doc := tree.Random(scratch, rng, tree.DefaultRandomConfig(40+rng.Intn(120)))
			if _, err := c.AddTree(fmt.Sprintf("doc%d", i), doc); err != nil {
				t.Fatal(err)
			}
		}
		for qi := 0; qi < 3; qi++ {
			q := tree.Random(scratch, rng, tree.DefaultRandomConfig(3+rng.Intn(6)))
			qc, err := c.ImportTree(q)
			if err != nil {
				t.Fatal(err)
			}
			k := 1 + rng.Intn(8)
			filtered, err := c.TopK(context.Background(), qc, k)
			if err != nil {
				t.Fatal(err)
			}
			exhaustive, err := c.TopK(context.Background(), qc, k, corpus.WithoutFilter())
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := c.TopK(context.Background(), qc, k, corpus.WithWorkers(-1))
			if err != nil {
				t.Fatal(err)
			}
			unpruned, err := c.TopK(context.Background(), qc, k, corpus.WithoutCandidatePruning())
			if err != nil {
				t.Fatal(err)
			}
			fj, ej, pj := matchesJSON(t, filtered), matchesJSON(t, exhaustive), matchesJSON(t, parallel)
			uj := matchesJSON(t, unpruned)
			if fj != ej {
				t.Fatalf("trial %d query %d k=%d: filtered != exhaustive\n %s\n %s", trial, qi, k, fj, ej)
			}
			if pj != ej {
				t.Fatalf("trial %d query %d k=%d: parallel != exhaustive\n %s\n %s", trial, qi, k, pj, ej)
			}
			if uj != fj {
				t.Fatalf("trial %d query %d k=%d: candidate pruning changed results\n %s\n %s", trial, qi, k, uj, fj)
			}
		}
	}
}

// TestPruneStatsReported: TopK must surface the candidate pruning
// pipeline's counters through Stats, and disabling the pipeline must
// zero the gate counters while keeping results identical (checked in
// TestEquivalenceRandom).
func TestPruneStatsReported(t *testing.T) {
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	scratch := dict.New()
	for i := 0; i < 3; i++ {
		doc := tree.Random(scratch, rng, tree.DefaultRandomConfig(150))
		if _, err := c.AddTree(fmt.Sprintf("doc%d", i), doc); err != nil {
			t.Fatal(err)
		}
	}
	q, err := c.ImportTree(tree.Random(scratch, rng, tree.DefaultRandomConfig(5)))
	if err != nil {
		t.Fatal(err)
	}
	var stats corpus.Stats
	if _, err := c.TopK(context.Background(), q, 2, corpus.WithStats(&stats)); err != nil {
		t.Fatal(err)
	}
	if stats.Evaluated == 0 {
		t.Error("Stats.Evaluated = 0: no subtree evaluation was recorded")
	}
	var off corpus.Stats
	if _, err := c.TopK(context.Background(), q, 2, corpus.WithStats(&off), corpus.WithoutCandidatePruning()); err != nil {
		t.Fatal(err)
	}
	if off.HistSkipped != 0 || off.TEDAborted != 0 {
		t.Errorf("gates disabled but counters fired: hist=%d aborted=%d", off.HistSkipped, off.TEDAborted)
	}
	if off.Evaluated == 0 {
		t.Error("unpruned run recorded no evaluations")
	}
}

func TestSelectionAndErrors(t *testing.T) {
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("a", strings.NewReader(`<x><y>1</y></x>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("b", strings.NewReader(`<x><z>2</z></x>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("a", strings.NewReader(`<x/>`)); err == nil {
		t.Fatal("duplicate name must be rejected")
	}
	q, err := c.ParseBracket("{x{y{1}}}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.TopK(context.Background(), q, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := c.TopK(context.Background(), q, 1, corpus.WithDocs("nope")); err == nil {
		t.Fatal("unknown document selection must be rejected")
	}
	// A query from a foreign dictionary is re-interned through a request
	// overlay and answered like any other — the overlay makes its ids
	// commensurable with the corpus ids without touching the shared
	// dictionary.
	foreign, err := tree.Parse(dict.New(), "{x}")
	if err != nil {
		t.Fatal(err)
	}
	native, err := c.ParseBracket("{x}")
	if err != nil {
		t.Fatal(err)
	}
	fm, err := c.TopK(context.Background(), foreign, 3)
	if err != nil {
		t.Fatalf("foreign-dictionary query failed: %v", err)
	}
	nm, err := c.TopK(context.Background(), native, 3)
	if err != nil {
		t.Fatal(err)
	}
	if matchesJSON(t, fm) != matchesJSON(t, nm) {
		t.Fatalf("foreign-dictionary query diverged:\n %s\n %s", matchesJSON(t, fm), matchesJSON(t, nm))
	}
	only, err := c.TopK(context.Background(), q, 10, corpus.WithDocs("b"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range only {
		if m.Doc.Name != "b" {
			t.Fatalf("selection leaked document %q", m.Doc.Name)
		}
	}
}

// TestConcurrentQueriesAndIngest exercises the server workload: many
// queries racing with ingests must stay consistent (run with -race).
func TestConcurrentQueriesAndIngest(t *testing.T) {
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("base", strings.NewReader(`<r><a><b>x</b></a></r>`)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q, err := c.ParseBracket("{a{b{x}}}")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.TopK(context.Background(), q, 2, corpus.WithoutTrees()); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("extra%d", i)
			if _, err := c.AddXML(name, strings.NewReader(`<r><c><d>y</d></c></r>`)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if c.Len() != 11 {
		t.Fatalf("corpus has %d docs, want 11", c.Len())
	}
	if c.Generation() != 11 {
		t.Fatalf("generation %d, want 11", c.Generation())
	}
}
