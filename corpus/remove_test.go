package corpus_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tasm/corpus"
)

// TestRemoveTombstonesAndGCs: Remove drops the manifest entry without
// reusing ids, bumps the generation, garbage-collects the files, and
// queries answer from the remaining documents — across a reopen.
func TestRemoveTombstonesAndGCs(t *testing.T) {
	dir := t.TempDir()
	c, err := corpus.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.AddXML("a", strings.NewReader(`<r><rec><x>1</x></rec></r>`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddXML("b", strings.NewReader(`<r><rec><y>2</y></rec></r>`)); err != nil {
		t.Fatal(err)
	}
	gen := c.Generation()

	if err := c.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if c.Generation() == gen {
		t.Error("generation unchanged after Remove; caches would serve deleted documents")
	}
	if c.Len() != 1 {
		t.Fatalf("corpus holds %d docs after Remove, want 1", c.Len())
	}
	for _, f := range []string{a.Store, a.Profile} {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Errorf("file %s survived Remove (err %v)", f, err)
		}
	}

	// Removing again: ErrNotFound.
	if err := c.Remove("a"); !errors.Is(err, corpus.ErrNotFound) {
		t.Errorf("second Remove returned %v, want ErrNotFound", err)
	}

	// Queries answer from the survivor only.
	q, err := c.ParseBracket("{rec{x{1}}}")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := c.TopK(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Doc.Name == "a" {
			t.Fatalf("removed document still ranked: %+v", m)
		}
	}

	// Ids are never reused: the next ingest continues past the tombstone.
	c2, err := corpus.Open(dir) // reopen exercises the rewritten manifest
	if err != nil {
		t.Fatal(err)
	}
	// The generation persists across restarts (2 ingests + 1 removal), so
	// external caches keyed on it can never collide with a pre-restart
	// value for a different document set.
	if got := c2.Generation(); got != c.Generation() {
		t.Errorf("reopened generation %d, want %d (persisted in the manifest)", got, c.Generation())
	}
	d3, err := c2.AddXML("c", strings.NewReader(`<r><rec><z>3</z></rec></r>`))
	if err != nil {
		t.Fatal(err)
	}
	if d3.ID <= a.ID+1 {
		t.Errorf("new doc id %d reuses tombstoned id space (removed doc had %d)", d3.ID, a.ID)
	}
}
