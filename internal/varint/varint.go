// Package varint implements the unsigned LEB128 integer encoding shared
// by every binary format in this repository (document stores, pq-gram
// profiles, corpus label histograms). One codec, one set of limits: a
// fix here fixes every reader.
package varint

import (
	"errors"
	"io"
)

// ErrTooLong reports a varint whose encoding exceeds 64 bits.
var ErrTooLong = errors.New("varint exceeds 64 bits")

// Write encodes v to w. bytes.Buffer and bufio.Writer both satisfy
// io.ByteWriter; their write errors are sticky, so callers that flush or
// inspect afterwards may ignore the returned error.
func Write(w io.ByteWriter, v uint64) error {
	for v >= 0x80 {
		if err := w.WriteByte(byte(v) | 0x80); err != nil {
			return err
		}
		v >>= 7
	}
	return w.WriteByte(byte(v))
}

// Decode decodes one varint from the front of b, returning the value and
// the number of bytes consumed. It is the in-memory counterpart of Read
// for zero-copy readers that walk a byte slice directly: no reader
// indirection, no per-byte interface call. A slice that ends mid-varint
// yields io.ErrUnexpectedEOF (there is no "clean end" reading from a
// region a header promised more items in), an over-long encoding
// ErrTooLong.
func Decode(b []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i, by := range b {
		if shift >= 64 {
			return 0, 0, ErrTooLong
		}
		v |= uint64(by&0x7f) << shift
		if by < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, io.ErrUnexpectedEOF
}

// Read decodes one varint from r. It returns ErrTooLong for encodings
// past 64 bits and passes through the reader's error (io.EOF when the
// stream ends cleanly before the first byte) otherwise.
func Read(r io.ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, ErrTooLong
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}
