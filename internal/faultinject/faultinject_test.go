package faultinject_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tasm/internal/faultinject"
)

const payload = `{"hello":"world","pad":"0123456789012345678901234567890123456789"}`

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, payload)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func newProxy(t *testing.T, script faultinject.Script) (*faultinject.Proxy, *httptest.Server) {
	t.Helper()
	p := faultinject.New(newBackend(t).URL, script)
	srv := httptest.NewServer(p)
	t.Cleanup(srv.Close)
	return p, srv
}

func TestPassThrough(t *testing.T) {
	p, srv := newProxy(t, nil)
	resp, err := http.Get(srv.URL + "/v1/docs")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(body) != payload {
		t.Fatalf("body = %q, want %q", body, payload)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Fatalf("content-type = %q", got)
	}
	if p.Requests() != 1 {
		t.Fatalf("requests = %d, want 1", p.Requests())
	}
}

func TestScriptedStatusThenPass(t *testing.T) {
	_, srv := newProxy(t, func(r *http.Request, seq int) faultinject.Rule {
		if seq == 0 {
			return faultinject.Rule{Fault: faultinject.FaultStatus, Code: 503}
		}
		return faultinject.Rule{}
	})
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("get 1: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("first status = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatalf("get 2: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("second status = %d, want 200", resp.StatusCode)
	}
}

func TestDropIsTransportError(t *testing.T) {
	_, srv := newProxy(t, func(r *http.Request, seq int) faultinject.Rule {
		return faultinject.Rule{Fault: faultinject.FaultDrop}
	})
	_, err := http.Get(srv.URL) //nolint:bodyclose // the request must fail
	if err == nil {
		t.Fatal("get succeeded, want transport error")
	}
}

func TestCutBodyTearsMidRead(t *testing.T) {
	_, srv := newProxy(t, func(r *http.Request, seq int) faultinject.Rule {
		return faultinject.Rule{Fault: faultinject.FaultCutBody}
	})
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 (fault hits the body, not the header)", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read succeeded with %d bytes, want torn body", len(body))
	}
	if len(body) >= len(payload) {
		t.Fatalf("got %d bytes, want fewer than %d", len(body), len(payload))
	}
}

func TestHangReleasesOnClientCancel(t *testing.T) {
	started := make(chan struct{})
	_, srv := newProxy(t, func(r *http.Request, seq int) faultinject.Rule {
		close(started)
		return faultinject.Rule{Fault: faultinject.FaultHang}
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	done := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req) //nolint:bodyclose // the request must fail
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("hung request did not release after cancel")
	}
}

func TestPostBodyForwarded(t *testing.T) {
	var got string
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got = string(b)
		io.WriteString(w, "ok")
	}))
	defer backend.Close()
	srv := httptest.NewServer(faultinject.New(backend.URL, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", strings.NewReader("ping"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if got != "ping" {
		t.Fatalf("backend saw %q, want %q", got, "ping")
	}
}
