// Package faultinject is a deterministic chaos proxy for tests: an
// http.Handler that forwards requests to a real backend and injects
// scripted faults — error statuses, dropped connections, mid-body
// resets, hangs — per request, decided by a caller-supplied Script
// rather than randomness or wall-clock timing.
//
// The fault repertoire is chosen so tests can pin retry, hedging, and
// breaker behavior without sleeping:
//
//   - FaultStatus exercises the HTTP-level retry classification
//     (502/503/504 retryable, others not) with zero latency.
//   - FaultDrop and FaultCutBody exercise the transport-level
//     classification (connect errors and torn bodies) — also instant.
//   - FaultHang parks the request until the client gives up, which is
//     exactly the deterministic signal hedging tests need: the hedge
//     fires on its (tiny) timer, wins, and cancels the hung primary,
//     whose handler observes ctx.Done and unwinds. No test ever waits
//     for a timeout that isn't under its own control.
//
// A typical test stands the proxy between a shard.Client and a tasmd
// leaf (or an httptest backend):
//
//	proxy := faultinject.New(leaf.URL, func(r *http.Request, seq int) faultinject.Rule {
//		if seq == 0 {
//			return faultinject.Rule{Fault: faultinject.FaultStatus, Code: 503}
//		}
//		return faultinject.Rule{}
//	})
//	srv := httptest.NewServer(proxy)
package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
)

// Fault selects what happens to one proxied request.
type Fault int

const (
	// FaultNone forwards the request untouched.
	FaultNone Fault = iota
	// FaultStatus answers with Rule.Code (default 503) and a short body,
	// without contacting the backend.
	FaultStatus
	// FaultDrop kills the connection without writing a response; the
	// client sees a transport error (EOF / connection reset).
	FaultDrop
	// FaultCutBody forwards the request, advertises the full
	// Content-Length, writes only half the body, and kills the
	// connection — the client sees a torn body mid-decode.
	FaultCutBody
	// FaultHang parks the request until the client disconnects, then
	// kills the connection. Because it releases exactly when the caller
	// cancels, it lets hedging and cancellation tests run without a
	// single real timeout.
	FaultHang
)

// Rule is one request's scripted fate.
type Rule struct {
	Fault Fault
	// Code is the status FaultStatus answers with; 0 means 503.
	Code int
}

// Script decides the fate of each request: it receives the incoming
// request and its zero-based sequence number across the proxy's
// lifetime. A nil script, like a zero Rule, forwards everything.
// Scripts run on the server's handler goroutines; they must be safe for
// concurrent use (pure functions of (r, seq) always are).
type Script func(r *http.Request, seq int) Rule

// Proxy is the chaos proxy handler. Serve it with httptest.NewServer
// and point a shard.Client at the test server's URL.
type Proxy struct {
	backend   *url.URL
	script    Script
	transport http.RoundTripper
	seq       atomic.Int64
}

// New returns a Proxy forwarding to the backend base URL (e.g. a
// httptest server's URL). It panics on an unparseable URL — a test bug.
func New(backend string, script Script) *Proxy {
	u, err := url.Parse(backend)
	if err != nil {
		panic(fmt.Sprintf("faultinject: bad backend url %q: %v", backend, err))
	}
	return &Proxy{backend: u, script: script, transport: http.DefaultTransport}
}

// Requests returns how many requests the proxy has received so far.
func (p *Proxy) Requests() int { return int(p.seq.Load()) }

// ServeHTTP applies the script to the request and forwards, fails, or
// hangs it accordingly.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	seq := int(p.seq.Add(1) - 1)
	var rule Rule
	if p.script != nil {
		rule = p.script(r, seq)
	}
	switch rule.Fault {
	case FaultStatus:
		code := rule.Code
		if code == 0 {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, "faultinject: scripted failure", code)
	case FaultDrop:
		abort()
	case FaultHang:
		// Drain the body first: the http server starts the background
		// read that detects a client disconnect (and cancels r.Context())
		// only once the request body is consumed. Without this, a hung
		// POST would never observe the client giving up.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		abort()
	case FaultCutBody:
		p.forward(w, r, true)
	default:
		p.forward(w, r, false)
	}
}

// forward relays the request to the backend. With cut set, it promises
// the full response length but delivers only half before killing the
// connection.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, cut bool) {
	out := r.Clone(r.Context())
	out.URL.Scheme = p.backend.Scheme
	out.URL.Host = p.backend.Host
	out.Host = p.backend.Host
	out.RequestURI = ""
	resp, err := p.transport.RoundTrip(out)
	if err != nil {
		http.Error(w, fmt.Sprintf("faultinject: backend: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("faultinject: backend body: %v", err), http.StatusBadGateway)
		return
	}
	hdr := w.Header()
	for k, vs := range resp.Header {
		hdr[k] = vs
	}
	hdr.Set("Content-Length", fmt.Sprint(len(body)))
	w.WriteHeader(resp.StatusCode)
	if cut && len(body) > 1 {
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		abort()
	}
	w.Write(body)
}

// abort kills the client connection without a (complete) response.
// http.ErrAbortHandler is the server's sanctioned way to do that: the
// connection is torn down and the panic is not logged as a crash.
func abort() {
	panic(http.ErrAbortHandler)
}
