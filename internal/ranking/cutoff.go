package ranking

import (
	"math"
	"sync/atomic"
)

// Cutoff publishes a monotonically tightening upper bound on the distance
// any entry must beat to enter a ranking — the current k-th best distance
// of the heap it is attached to. It is the lock-free communication channel
// of the candidate pruning pipeline: the producer's histogram and size
// gates, the early-abort TED evaluations, and the per-worker rankings of
// the parallel scan all read the bound with a single atomic load, while
// the shared heap (whose Push already runs under the owner's lock, or
// single-threaded) publishes updates with a single atomic store.
//
// The published value only ever decreases (Tighten is a monotonic min),
// so a stale read is always a looser bound: a reader acting on it may
// evaluate a candidate that a fresher bound would have skipped, never the
// reverse. Until the attached ranking first fills, Load returns +Inf,
// which disables every consumer gate.
type Cutoff struct {
	bits atomic.Uint64 // math.Float64bits of the current bound
}

// NewCutoff returns a publisher with no published bound yet (+Inf).
func NewCutoff() *Cutoff {
	c := &Cutoff{}
	c.bits.Store(math.Float64bits(math.Inf(1)))
	return c
}

// Load returns the current published bound; +Inf when nothing has been
// published. Safe for concurrent use.
//
//tasm:hotpath
func (c *Cutoff) Load() float64 {
	return math.Float64frombits(c.bits.Load())
}

// Active reports whether a finite bound has been published.
func (c *Cutoff) Active() bool {
	return !math.IsInf(c.Load(), 1)
}

// Tighten lowers the published bound to d if d is smaller; larger values
// are ignored, keeping the publication monotone. Safe for concurrent use.
//
//tasm:hotpath
func (c *Cutoff) Tighten(d float64) {
	nb := math.Float64bits(d)
	for {
		old := c.bits.Load()
		if math.Float64frombits(old) <= d {
			return
		}
		if c.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}
