// Package ranking implements the top-k ranking structure of TASM
// (Section VI-B): a bounded max-heap of (distance, subtree) pairs
// supporting constant-time access to the current k-th best distance
// (max), logarithmic insertion and eviction (pop-heap), and merging of
// two rankings (merge-heap).
//
// Entries are ordered by (Distance, Pos): ties in distance are broken by
// the subtree root's postorder position in the document, which makes
// rankings deterministic and comparable across the three TASM algorithms.
package ranking

import (
	"fmt"
	"math"
	"sort"

	"tasm/internal/tree"
)

// Entry is one ranked subtree.
type Entry struct {
	// Dist is the tree edit distance between the query and the subtree.
	Dist float64
	// Pos is the 1-based postorder id of the subtree's root node in the
	// document; it identifies the subtree and breaks distance ties.
	Pos int
	// Size is the subtree's node count.
	Size int
	// Tree is the matched subtree; nil when the caller ranks by position
	// only (the streaming API materializes matches on request).
	Tree *tree.Tree
}

// less orders entries ascending by (Dist, Pos).
func less(a, b Entry) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.Pos < b.Pos
}

// Heap is a max-heap of at most K entries holding the K smallest entries
// pushed so far under the (Dist, Pos) order. The zero value is unusable;
// call New.
type Heap struct {
	k      int
	es     []Entry // binary max-heap: es[0] is the worst retained entry
	cutoff *Cutoff // optional publisher of the k-th distance; may be nil
}

// New returns an empty ranking that retains the k best entries, k ≥ 1.
func New(k int) *Heap {
	if k < 1 {
		panic(fmt.Sprintf("ranking: k must be ≥ 1, got %d", k))
	}
	return &Heap{k: k, es: make([]Entry, 0, k)}
}

// K returns the ranking bound.
func (h *Heap) K() int { return h.k }

// Len returns the number of retained entries, at most K.
func (h *Heap) Len() int { return len(h.es) }

// Full reports whether the ranking holds K entries, i.e. whether Max is
// the current intermediate ranking's k-th best distance (the paper's
// max(R), the quantity that tightens τ to τ′).
func (h *Heap) Full() bool { return len(h.es) == h.k }

// Max returns the worst retained entry. It panics on an empty ranking;
// TASM only consults Max when Full (Algorithm 3, line 10).
func (h *Heap) Max() Entry {
	if len(h.es) == 0 {
		panic("ranking: Max of empty ranking")
	}
	return h.es[0]
}

// KthDist returns the current k-th best distance (Max().Dist) and true
// when the ranking is full, or (0, false) otherwise. It is the bound that
// corpus scans consult to prune whole documents: a document whose best
// achievable distance exceeds it cannot change the ranking.
func (h *Heap) KthDist() (float64, bool) {
	if len(h.es) < h.k {
		return 0, false
	}
	return h.es[0].Dist, true
}

// PublishTo attaches a cutoff publisher: from now on, whenever the
// ranking is full, its current k-th distance is published through c (the
// value only tightens — see Cutoff). Attaching publishes the current
// k-th distance immediately if the ranking is already full. Pass nil to
// detach. The caller must ensure Push and PublishTo are not called
// concurrently (readers of the Cutoff itself are lock-free).
func (h *Heap) PublishTo(c *Cutoff) {
	h.cutoff = c
	if c != nil && len(h.es) == h.k {
		c.Tighten(h.es[0].Dist)
	}
}

// CutoffPublisher returns the attached publisher, or nil.
func (h *Heap) CutoffPublisher() *Cutoff { return h.cutoff }

// KthBound returns the tightest currently known bound on the distance an
// entry must beat to reach the final ranking: the heap's own k-th distance
// once full, further tightened by the attached cutoff publisher when one
// is attached. Cooperating scans (corpus documents, shards of a
// scatter-gather group) share one publisher, so the bound a scan prunes
// against reflects results other scans have already found. +Inf while no
// bound exists yet.
//
//tasm:hotpath
func (h *Heap) KthBound() float64 {
	kth := math.Inf(1)
	if len(h.es) == h.k {
		kth = h.es[0].Dist
	}
	if h.cutoff != nil {
		if v := h.cutoff.Load(); v < kth {
			kth = v
		}
	}
	return kth
}

// Push offers an entry to the ranking. When the ranking is full, the entry
// is retained only if it beats the current worst, which it then evicts.
// Push reports whether the entry was retained.
//
//tasm:hotpath
func (h *Heap) Push(e Entry) bool {
	if len(h.es) < h.k {
		h.es = append(h.es, e) //tasm:allow alloc — append below k only: New preallocates capacity k and a full heap evicts in place
		h.up(len(h.es) - 1)
		if h.cutoff != nil && len(h.es) == h.k {
			h.cutoff.Tighten(h.es[0].Dist)
		}
		return true
	}
	if !less(e, h.es[0]) {
		return false
	}
	h.es[0] = e
	h.down(0)
	if h.cutoff != nil {
		h.cutoff.Tighten(h.es[0].Dist)
	}
	return true
}

// Drain moves every retained entry of other into h and empties other
// (other keeps its capacity and its k). It is the merge step of the
// per-worker rankings: a worker's local heap is drained into the shared
// one, so no entry is ever pushed twice.
func (h *Heap) Drain(other *Heap) {
	for _, e := range other.es {
		h.Push(e)
	}
	other.es = other.es[:0]
}

// WouldRetain reports whether Push(e) would keep e, without modifying the
// ranking. Callers use it to defer expensive entry construction (e.g.
// materializing the matched subtree) until retention is certain.
//
//tasm:hotpath
func (h *Heap) WouldRetain(e Entry) bool {
	return len(h.es) < h.k || less(e, h.es[0])
}

// Merge pushes every entry of other into h (the paper's merge-heap
// followed by the pop-heap loop that restores |R| ≤ k).
func (h *Heap) Merge(other *Heap) {
	for _, e := range other.es {
		h.Push(e)
	}
}

// Sorted returns the retained entries in ranking order: ascending
// (Dist, Pos). The heap is not modified.
func (h *Heap) Sorted() []Entry {
	out := make([]Entry, len(h.es))
	copy(out, h.es)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// up restores the heap property from index i towards the root.
func (h *Heap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !less(h.es[p], h.es[i]) {
			return
		}
		h.es[p], h.es[i] = h.es[i], h.es[p]
		i = p
	}
}

// down restores the heap property from index i towards the leaves.
func (h *Heap) down(i int) {
	n := len(h.es)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && less(h.es[big], h.es[l]) {
			big = l
		}
		if r < n && less(h.es[big], h.es[r]) {
			big = r
		}
		if big == i {
			return
		}
		h.es[i], h.es[big] = h.es[big], h.es[i]
		i = big
	}
}
