package ranking

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBoundedTopK(t *testing.T) {
	h := New(3)
	for _, d := range []float64{5, 1, 4, 2, 8, 3} {
		h.Push(Entry{Dist: d, Pos: int(d)})
	}
	got := h.Sorted()
	want := []float64{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, w := range want {
		if got[i].Dist != w {
			t.Errorf("rank %d = %g, want %g", i, got[i].Dist, w)
		}
	}
	if h.Max().Dist != 3 {
		t.Errorf("Max = %g, want 3", h.Max().Dist)
	}
}

func TestTieBreakByPosition(t *testing.T) {
	h := New(2)
	h.Push(Entry{Dist: 1, Pos: 9})
	h.Push(Entry{Dist: 1, Pos: 3})
	h.Push(Entry{Dist: 1, Pos: 5})
	got := h.Sorted()
	if got[0].Pos != 3 || got[1].Pos != 5 {
		t.Errorf("tie order = %d,%d, want 3,5", got[0].Pos, got[1].Pos)
	}
}

func TestPushReportsRetention(t *testing.T) {
	h := New(1)
	if !h.Push(Entry{Dist: 5, Pos: 1}) {
		t.Error("first push must retain")
	}
	if h.Push(Entry{Dist: 7, Pos: 2}) {
		t.Error("worse entry must not retain")
	}
	if !h.Push(Entry{Dist: 3, Pos: 3}) {
		t.Error("better entry must retain")
	}
	if h.Max().Dist != 3 {
		t.Errorf("Max = %g", h.Max().Dist)
	}
}

func TestWouldRetainMatchesPush(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(rng.Intn(5) + 1)
		for i := 0; i < 40; i++ {
			e := Entry{Dist: float64(rng.Intn(10)), Pos: rng.Intn(100) + 1}
			want := h.WouldRetain(e)
			got := h.Push(e)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := New(3)
	b := New(3)
	for i, d := range []float64{9, 2, 7} {
		a.Push(Entry{Dist: d, Pos: i + 1})
	}
	for i, d := range []float64{1, 8, 3} {
		b.Push(Entry{Dist: d, Pos: i + 10})
	}
	a.Merge(b)
	got := a.Sorted()
	want := []float64{1, 2, 3}
	for i, w := range want {
		if got[i].Dist != w {
			t.Errorf("rank %d = %g, want %g", i, got[i].Dist, w)
		}
	}
	if a.Len() != 3 {
		t.Errorf("merged len = %d", a.Len())
	}
}

// TestAgainstSortQuick: the heap's result equals sorting all entries and
// truncating to k under (Dist, Pos).
func TestAgainstSortQuick(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw)%10 + 1
		n := int(nRaw) % 120
		h := New(k)
		var all []Entry
		for i := 0; i < n; i++ {
			e := Entry{Dist: float64(rng.Intn(20)), Pos: i + 1, Size: rng.Intn(9)}
			all = append(all, e)
			h.Push(e)
		}
		sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
		if len(all) > k {
			all = all[:k]
		}
		got := h.Sorted()
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	mustPanic("New(0)", func() { New(0) })
	mustPanic("empty Max", func() { New(1).Max() })
}

func TestFull(t *testing.T) {
	h := New(2)
	if h.Full() {
		t.Error("empty heap reported full")
	}
	h.Push(Entry{Dist: 1, Pos: 1})
	if h.Full() {
		t.Error("half-filled heap reported full")
	}
	h.Push(Entry{Dist: 2, Pos: 2})
	if !h.Full() {
		t.Error("full heap not reported full")
	}
}
