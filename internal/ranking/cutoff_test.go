package ranking

import (
	"math"
	"sync"
	"testing"
)

func TestCutoffMonotone(t *testing.T) {
	c := NewCutoff()
	if !math.IsInf(c.Load(), 1) {
		t.Fatalf("fresh cutoff = %g, want +Inf", c.Load())
	}
	if c.Active() {
		t.Error("fresh cutoff reports Active")
	}
	c.Tighten(5)
	if got := c.Load(); got != 5 {
		t.Fatalf("after Tighten(5): %g", got)
	}
	c.Tighten(7) // looser: ignored
	if got := c.Load(); got != 5 {
		t.Fatalf("Tighten(7) loosened the bound to %g", got)
	}
	c.Tighten(2)
	if got := c.Load(); got != 2 {
		t.Fatalf("after Tighten(2): %g", got)
	}
	if !c.Active() {
		t.Error("tightened cutoff not Active")
	}
}

// TestCutoffConcurrentTighten: under concurrent tightening the published
// value must end at the global minimum and never increase.
func TestCutoffConcurrentTighten(t *testing.T) {
	c := NewCutoff()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			last := math.Inf(1)
			for i := 1000; i > 0; i-- {
				c.Tighten(float64(w*1000 + i))
				if got := c.Load(); got > last {
					t.Errorf("cutoff rose from %g to %g", last, got)
					return
				} else {
					last = got
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != 1 {
		t.Fatalf("final cutoff %g, want the global minimum 1", got)
	}
}

// TestHeapPublishes: a heap with an attached publisher announces its k-th
// distance as soon as it fills and on every subsequent improvement.
func TestHeapPublishes(t *testing.T) {
	h := New(2)
	c := NewCutoff()
	h.PublishTo(c)
	h.Push(Entry{Dist: 9, Pos: 1})
	if c.Active() {
		t.Error("published before the ranking was full")
	}
	h.Push(Entry{Dist: 4, Pos: 2})
	if got := c.Load(); got != 9 {
		t.Fatalf("published %g at fill, want 9", got)
	}
	h.Push(Entry{Dist: 1, Pos: 3}) // evicts 9, new k-th is 4
	if got := c.Load(); got != 4 {
		t.Fatalf("published %g after eviction, want 4", got)
	}
	h.Push(Entry{Dist: 100, Pos: 4}) // rejected, bound unchanged
	if got := c.Load(); got != 4 {
		t.Fatalf("published %g after rejected push, want 4", got)
	}
}

// TestHeapPublishToWhenAlreadyFull: attaching to a full heap publishes
// immediately (the corpus attaches before scanning, but parallelScan may
// attach mid-query).
func TestHeapPublishToWhenAlreadyFull(t *testing.T) {
	h := New(1)
	h.Push(Entry{Dist: 3, Pos: 1})
	c := NewCutoff()
	h.PublishTo(c)
	if got := c.Load(); got != 3 {
		t.Fatalf("published %g on attach, want 3", got)
	}
	if h.CutoffPublisher() != c {
		t.Error("CutoffPublisher does not return the attached publisher")
	}
}

// TestDrain: draining moves entries exactly once and empties the source.
func TestDrain(t *testing.T) {
	dst := New(3)
	src := New(3)
	for i, d := range []float64{5, 1, 3} {
		src.Push(Entry{Dist: d, Pos: i + 1})
	}
	dst.Push(Entry{Dist: 2, Pos: 10})
	dst.Drain(src)
	if src.Len() != 0 {
		t.Fatalf("source holds %d entries after Drain, want 0", src.Len())
	}
	got := dst.Sorted()
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("drained ranking has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Dist != want[i] {
			t.Errorf("entry %d dist %g, want %g", i, got[i].Dist, want[i])
		}
	}
	// A second drain of the now-empty source must be a no-op.
	dst.Drain(src)
	if dst.Len() != 3 {
		t.Errorf("second drain changed the destination: %d entries", dst.Len())
	}
}
