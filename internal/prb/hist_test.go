package prb

import (
	"fmt"
	"math/rand"
	"testing"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/race"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// naiveMissing counts Σ_label max(0, count_Q − count_T) directly.
func naiveMissing(q, t *tree.Tree) int {
	qc := map[int]int{}
	for _, id := range q.LabelIDs() {
		qc[id]++
	}
	tc := map[int]int{}
	for _, id := range t.LabelIDs() {
		tc[id]++
	}
	missing := 0
	for id, n := range qc {
		if m := tc[id]; n > m {
			missing += n - m
		}
	}
	return missing
}

// TestCandidateBoundMatchesNaive: the sliding histogram's bound for every
// candidate of a scan must equal the naive per-candidate count, and the
// window must be clean between candidates (skipping candidates cannot
// leave residue).
func TestCandidateBoundMatchesNaive(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 50; iter++ {
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(10), MaxFanout: 3, Labels: 6})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(120), MaxFanout: 4, Labels: 6})
		tau := 1 + rng.Intn(20)
		hist := NewLabelHist(q)
		buf := New(postorder.NewSliceQueue(postorder.Items(doc)), tau)
		for {
			ok, err := buf.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got := hist.CandidateBound(buf, buf.Leaf(), buf.Root())
			sub, err := buf.Subtree(d, buf.Leaf(), buf.Root())
			if err != nil {
				t.Fatal(err)
			}
			if want := naiveMissing(q, sub); got != want {
				t.Fatalf("iter %d candidate [%d,%d]: bound %d, want %d", iter, buf.Leaf(), buf.Root(), got, want)
			}
			if hist.Missing() != q.Size() {
				t.Fatalf("iter %d: window not clean after CandidateBound: missing %d, want |Q|=%d", iter, hist.Missing(), q.Size())
			}
		}
	}
}

// TestCandidateBoundIsLowerBound: the bound must never exceed the true
// tree edit distance of ANY subtree of the candidate — the property the
// pruning pipeline's first gate relies on.
func TestCandidateBoundIsLowerBound(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 30; iter++ {
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(8), MaxFanout: 3, Labels: 4})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(80), MaxFanout: 4, Labels: 4})
		tau := 1 + rng.Intn(16)
		hist := NewLabelHist(q)
		comp := ted.NewComputer(cost.Unit{}, q)
		buf := New(postorder.NewSliceQueue(postorder.Items(doc)), tau)
		for {
			ok, err := buf.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			bound := hist.CandidateBound(buf, buf.Leaf(), buf.Root())
			sub, err := buf.Subtree(d, buf.Leaf(), buf.Root())
			if err != nil {
				t.Fatal(err)
			}
			row := comp.SubtreeDistances(sub)
			for j, dist := range row {
				if float64(bound) > dist {
					t.Fatalf("iter %d candidate [%d,%d] subtree %d: bound %d exceeds true distance %g",
						iter, buf.Leaf(), buf.Root(), j, bound, dist)
				}
			}
		}
	}
}

// TestCandidateBoundSparseMode: with label ids beyond the dense limit
// (a query interned late into a big shared dictionary) the histogram
// switches to its open-addressing table; bounds must stay exact and the
// memory must not scale with the id space.
func TestCandidateBoundSparseMode(t *testing.T) {
	d := dict.New()
	// Push the id space past denseLimit before interning anything the
	// query uses.
	for i := 0; i < 3*denseLimit; i++ {
		d.Intern(fmt.Sprintf("filler%d", i))
	}
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 25; iter++ {
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(10), MaxFanout: 3, Labels: 6})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(120), MaxFanout: 4, Labels: 6})
		hist := NewLabelHist(q)
		if hist.keys == nil {
			t.Fatal("expected the sparse representation for late-interned labels")
		}
		if len(hist.need) > 64 {
			t.Fatalf("sparse table has %d slots for a ≤10-label query", len(hist.need))
		}
		buf := New(postorder.NewSliceQueue(postorder.Items(doc)), 1+rng.Intn(20))
		for {
			ok, err := buf.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got := hist.CandidateBound(buf, buf.Leaf(), buf.Root())
			sub, err := buf.Subtree(d, buf.Leaf(), buf.Root())
			if err != nil {
				t.Fatal(err)
			}
			if want := naiveMissing(q, sub); got != want {
				t.Fatalf("iter %d candidate [%d,%d]: sparse bound %d, want %d", iter, buf.Leaf(), buf.Root(), got, want)
			}
		}
		if hist.Missing() != q.Size() {
			t.Fatalf("iter %d: window not clean: missing %d, want |Q|=%d", iter, hist.Missing(), q.Size())
		}
	}
}

// TestCandidateBoundZeroAlloc: the first gate's unit of work must not
// allocate — it runs once per candidate on the hot path.
func TestCandidateBoundZeroAlloc(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(2))
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 8, MaxFanout: 3, Labels: 4})
	doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 60, MaxFanout: 4, Labels: 4})
	hist := NewLabelHist(q)
	buf := New(postorder.NewSliceQueue(postorder.Items(doc)), 12)
	ok, err := buf.Next()
	if err != nil || !ok {
		t.Fatalf("no candidate: ok=%v err=%v", ok, err)
	}
	leaf, root := buf.Leaf(), buf.Root()
	if race.Enabled {
		hist.CandidateBound(buf, leaf, root)
		t.Skip("allocation counts are not meaningful under -race")
	}
	allocs := testing.AllocsPerRun(100, func() {
		hist.CandidateBound(buf, leaf, root)
	})
	if allocs != 0 {
		t.Errorf("CandidateBound allocates %.1f objects per candidate, want 0", allocs)
	}
}
