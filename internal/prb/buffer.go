// Package prb implements the prefix ring buffer of the TASM paper
// (Section V): a fixed-size buffer of τ+1 slots that enumerates the
// candidate set cand(T, τ) — every subtree of size ≤ τ whose proper
// ancestors all exceed τ (Definition 9) — in a single postorder scan of
// the document, using O(τ) space regardless of the document size
// (Theorem 2).
//
// Two synchronized ring arrays realize the buffer, exactly as in the
// paper's Algorithms 1–2: lbl stores node labels and pfx stores the prefix
// array of Definition 10, which encodes the buffered prefix's structure so
// that the leftmost valid subtree is found in constant time. Node
// identifiers are the 1-based postorder positions in the document; node x
// lives in slot x % (τ+1), so identifiers double as slot addresses.
//
// Prefix array semantics (Definition 10): the entry of a non-leaf node is
// its leftmost leaf lml; the entry of a leaf is the largest buffered
// ancestor of which it is the leftmost leaf (initially the leaf itself).
// Appending a node therefore writes its own entry and, if its subtree is
// within the threshold, redirects the entry of its leftmost leaf to point
// back at it — so a leaf's entry always names the root of the largest
// valid subtree starting at that leaf, and "node is a leaf" is equivalent
// to "entry ≥ own id".
//
// Consumers read the pending candidate either by materializing a
// tree.Tree (Subtree — allocates per call) or, on the hot path, by
// filling a reusable flat tree.View in place (FillView — allocation-free
// once the view's buffers have grown to the candidate sizes of the scan).
// The buffered nodes stay valid until the next call to Next, so one
// candidate may be read any number of times (e.g. once per subtree the τ′
// bound retains).
package prb

import (
	"errors"
	"fmt"
	"io"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// Buffer is a prefix ring buffer scanning one postorder queue. Use Next to
// advance to each candidate subtree in document postorder.
type Buffer struct {
	tau int // size threshold τ ≥ 1
	b   int // ring size b = τ+1

	lbl []int // node labels by slot
	pfx []int // prefix array by slot: 1-based node ids

	s, e int // start slot and one-past-end slot
	c    int // nodes appended so far == postorder id of the newest node

	q    postorder.Queue
	qErr error // sticky non-EOF queue error
	done bool  // queue exhausted

	pending bool // a candidate is at the start, not yet consumed

	scratchL, scratchS []int // reusable buffers for Subtree
}

// New returns a prefix ring buffer pruning the document streamed by q with
// size threshold tau ≥ 1.
func New(q postorder.Queue, tau int) *Buffer {
	if tau < 1 {
		panic(fmt.Sprintf("prb: threshold τ must be ≥ 1, got %d", tau))
	}
	b := tau + 1
	return &Buffer{
		tau: tau,
		b:   b,
		lbl: make([]int, b),
		pfx: make([]int, b),
		s:   1,
		e:   1,
		q:   q,
	}
}

// Reset re-points the buffer at a new postorder queue with threshold tau,
// reusing the ring arrays when they are large enough. A reset buffer is
// indistinguishable from one freshly returned by New: the ring contents
// are never read before being written (every node's slots are filled on
// append), so stale values from the previous document are harmless. This
// is the pooling hook for corpus scans, which open one buffer per worker
// and re-point it at every document of a run.
func (r *Buffer) Reset(q postorder.Queue, tau int) {
	if tau < 1 {
		panic(fmt.Sprintf("prb: threshold τ must be ≥ 1, got %d", tau))
	}
	b := tau + 1
	if cap(r.lbl) < b {
		r.lbl = make([]int, b)
		r.pfx = make([]int, b)
	} else {
		r.lbl = r.lbl[:b]
		r.pfx = r.pfx[:b]
	}
	r.tau = tau
	r.b = b
	r.s, r.e = 1, 1
	r.c = 0
	r.q = q
	r.qErr = nil
	r.done = false
	r.pending = false
}

// Tau returns the size threshold τ.
func (r *Buffer) Tau() int { return r.tau }

// NodesScanned returns the number of document nodes consumed so far.
func (r *Buffer) NodesScanned() int { return r.c }

// slot maps a 1-based node id to its ring slot.
func (r *Buffer) slot(id int) int { return id % r.b }

// buffered returns the number of buffered nodes, (e−s+b) % b.
func (r *Buffer) buffered() int { return (r.e - r.s + r.b) % r.b }

// full reports whether the ring buffer is full: s == (e+1) % b.
func (r *Buffer) full() bool { return r.s == (r.e+1)%r.b }

// startID returns the postorder id of the leftmost buffered node,
// c + 1 − (e−s+b) % b in the paper's notation (Algorithm 2, line 14).
func (r *Buffer) startID() int { return r.c + 1 - r.buffered() }

// Next advances the scan to the next candidate subtree (the paper's
// prb-next, Algorithm 2) and reports whether one is available. When it
// returns true the candidate occupies the buffer start; inspect it with
// Root, Leaf, Entry, Label, SizeOf and Subtree, then call Next again — the
// previous candidate is removed automatically (Algorithm 1, line 7). Next
// returns false with a nil error after the last candidate and false with
// the error if the underlying queue fails.
//
//tasm:hotpath
func (r *Buffer) Next() (bool, error) {
	if r.qErr != nil {
		return false, r.qErr
	}
	if r.pending {
		// Remove the previously returned candidate: advance the start
		// past its root node.
		r.s = r.slot(r.Root() + 1)
		r.pending = false
	}
	for !r.done || r.s != r.e {
		// Step 1: fill the ring buffer from the postorder queue.
		if !r.done {
			it, err := r.q.Next()
			switch {
			case errors.Is(err, io.EOF): //tasm:allow alloc — errors.Is allocates nothing; sentinel comparison on the stream-end path
				r.done = true
			case err != nil:
				r.qErr = err
				return false, err
			default:
				if it.Size < 1 || it.Size > r.c+1 {
					r.qErr = fmt.Errorf("prb: node %d has invalid subtree size %d", r.c+1, it.Size) //tasm:allow alloc — cold error path: corrupt input only
					return false, r.qErr
				}
				r.c++
				id := r.c
				lml := id - it.Size + 1
				r.lbl[r.slot(id)] = it.Label
				r.pfx[r.slot(id)] = lml
				if it.Size <= r.tau {
					// Redirect the ancestor pointer of the subtree's
					// leftmost leaf (Definition 10). The leaf is still
					// buffered because size ≤ τ < b.
					r.pfx[r.slot(lml)] = id
				}
				r.e = (r.e + 1) % r.b
			}
		}
		// Step 2: once the buffer is full (or the queue is exhausted),
		// remove from the left: a leaf starts a candidate subtree, a
		// non-leaf is a non-candidate node and is skipped (Lemma 2).
		if (r.full() || r.done) && r.s != r.e {
			if r.pfx[r.s] >= r.startID() {
				r.pending = true
				return true, nil
			}
			r.s = (r.s + 1) % r.b
		}
	}
	return false, nil
}

// Root returns the 1-based postorder id of the current candidate's root:
// the prefix-array entry of its leftmost leaf.
//
//tasm:hotpath
func (r *Buffer) Root() int { return r.pfx[r.s] }

// Leaf returns the 1-based postorder id of the current candidate's
// leftmost leaf (the leftmost buffered node).
//
//tasm:hotpath
func (r *Buffer) Leaf() int { return r.startID() }

// Label returns the label of buffered node id.
//
//tasm:hotpath
func (r *Buffer) Label(id int) int { return r.lbl[r.slot(id)] }

// Entry returns the prefix-array entry of buffered node id: lml for a
// non-leaf, the largest recorded ancestor (≥ id) for a leaf.
//
//tasm:hotpath
func (r *Buffer) Entry(id int) int { return r.pfx[r.slot(id)] }

// LMLOf returns the leftmost leaf id of buffered node id.
//
//tasm:hotpath
func (r *Buffer) LMLOf(id int) int {
	if e := r.pfx[r.slot(id)]; e < id {
		return e
	}
	return id // a leaf is its own leftmost leaf
}

// SizeOf returns the subtree size of buffered node id, derived from the
// prefix array: id − lml(id) + 1.
//
//tasm:hotpath
func (r *Buffer) SizeOf(id int) int { return id - r.LMLOf(id) + 1 }

// AppendItems appends the (label, size) postorder items of nodes from..to
// (inclusive, 1-based ids within the current candidate) to dst and returns
// it. This is the paper's prb-subtree.
func (r *Buffer) AppendItems(dst []postorder.Item, from, to int) []postorder.Item {
	for id := from; id <= to; id++ {
		dst = append(dst, postorder.Item{Label: r.Label(id), Size: r.SizeOf(id)})
	}
	return dst
}

// FillView fills v with the buffered subtree spanning nodes from..to
// (inclusive, 1-based document postorder ids), whose labels resolve in d.
// It performs no allocation once v's buffers have grown to the largest
// subtree filled, which makes it the hot-path alternative to Subtree.
//
//tasm:hotpath
func (r *Buffer) FillView(d dict.Dict, v *tree.View, from, to int) error {
	n := to - from + 1
	if n < 1 {
		return fmt.Errorf("prb: empty subtree range [%d,%d]", from, to) //tasm:allow alloc — cold error path: caller bug only
	}
	labels, sizes := v.Reset(d, n)
	for id := from; id <= to; id++ {
		labels[id-from] = r.Label(id)
		sizes[id-from] = r.SizeOf(id)
	}
	return v.Build()
}

// Subtree materializes the buffered subtree spanning nodes from..to
// (inclusive, 1-based document postorder ids) as a tree.Tree whose labels
// resolve in d. Internal scratch slices are reused across calls.
func (r *Buffer) Subtree(d dict.Dict, from, to int) (*tree.Tree, error) {
	n := to - from + 1
	if n < 1 {
		return nil, fmt.Errorf("prb: empty subtree range [%d,%d]", from, to)
	}
	r.scratchL = r.scratchL[:0]
	r.scratchS = r.scratchS[:0]
	for id := from; id <= to; id++ {
		r.scratchL = append(r.scratchL, r.Label(id))
		r.scratchS = append(r.scratchS, r.SizeOf(id))
	}
	return tree.FromPostorder(d, r.scratchL, r.scratchS)
}
