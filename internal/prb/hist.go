package prb

import "tasm/internal/tree"

// LabelHist maintains a sliding label histogram over the window of
// buffered nodes that forms the pending candidate, together with the
// derived quantity the pruning pipeline consumes: the number of query
// nodes whose label is missing from the window.
//
// Missing = Σ_label max(0, count_Q(l) − count_window(l)) is a sound lower
// bound on the tree edit distance between the query and ANY subtree whose
// nodes lie inside the window: each of those query nodes must be deleted
// (cost ≥ 1) or renamed to a different label (cost ≥ 1) under any
// Definition-4 cost model, and a subtree's label bag is a sub-bag of its
// window's. A candidate whose bound already exceeds the running k-th
// distance can therefore be skipped without evaluating any of its
// subtrees.
//
// Only labels that occur in the query can reduce Missing, so the
// histogram needs per-label state for the query's labels alone. Two
// representations share one API, picked at construction by the largest
// query label id:
//
//   - dense: direct-index need/have arrays over [0, maxID] — one array
//     load per node, the fast path for standalone scans whose
//     dictionaries are document-local and small;
//   - sparse: a small open-addressing table of the query's distinct
//     labels — O(|Q|) memory however large the id space, the safe path
//     for queries interned late into a shared corpus dictionary (which
//     never evicts, so dense indexing would cost O(dictionary) per
//     scan).
//
// Add and Remove are allocation-free in both modes. Candidate windows of
// one scan are pairwise disjoint (candidates are maximal subtrees), so
// sliding the window from one candidate to the next touches every
// document node at most twice over the whole scan — the amortized
// maintenance cost is O(1) per scanned node.
//
// A LabelHist is owned by one scan goroutine; it is not safe for
// concurrent use.
type LabelHist struct {
	// Dense mode: need/have indexed by label id; keys is nil.
	// Sparse mode: keys is the open-addressing table of query label ids
	// (-1 = empty) and need/have are per-slot.
	keys    []int
	need    []int
	have    []int
	mask    int // len(keys)-1 in sparse mode; len is a power of two ≥ 2·|Q|
	missing int // Σ max(0, need − have)
}

// denseLimit is the largest label id the dense representation indexes
// directly: two 4096-entry int arrays (64 KiB) per histogram at most.
const denseLimit = 1 << 12

// NewLabelHist returns an empty-window histogram for query q.
func NewLabelHist(q *tree.Tree) *LabelHist {
	labels := q.LabelIDs()
	maxID := 0
	for _, id := range labels {
		if id > maxID {
			maxID = id
		}
	}
	h := &LabelHist{missing: len(labels)}
	if maxID < denseLimit {
		h.need = make([]int, maxID+1)
		h.have = make([]int, maxID+1)
		for _, id := range labels {
			h.need[id]++
		}
		return h
	}
	size := 4
	for size < 2*len(labels) {
		size <<= 1
	}
	h.keys = make([]int, size)
	h.need = make([]int, size)
	h.have = make([]int, size)
	h.mask = size - 1
	for i := range h.keys {
		h.keys[i] = -1
	}
	for _, id := range labels {
		s := h.slot(id)
		h.keys[s] = id
		h.need[s]++
	}
	return h
}

// slot returns the sparse table slot holding label id, or the empty slot
// where it would be inserted. The table is at most half full, so the
// probe always terminates.
func (h *LabelHist) slot(id int) int {
	i := (id * 0x9E3779B1) & h.mask // Fibonacci hash onto the power-of-two table
	for h.keys[i] != id && h.keys[i] != -1 {
		i = (i + 1) & h.mask
	}
	return i
}

// Add slides one node with the given interned label into the window.
//
//tasm:hotpath
func (h *LabelHist) Add(label int) {
	var s int
	if h.keys == nil {
		if label < 0 || label >= len(h.need) || h.need[label] == 0 {
			return
		}
		s = label
	} else {
		if label < 0 {
			return
		}
		s = h.slot(label)
		if h.keys[s] < 0 { // not a query label: cannot reduce the bound
			return
		}
	}
	h.have[s]++
	if h.have[s] <= h.need[s] {
		h.missing--
	}
}

// Remove slides one node with the given interned label out of the window.
// The node must have been Added before.
//
//tasm:hotpath
func (h *LabelHist) Remove(label int) {
	var s int
	if h.keys == nil {
		if label < 0 || label >= len(h.need) || h.need[label] == 0 {
			return
		}
		s = label
	} else {
		if label < 0 {
			return
		}
		s = h.slot(label)
		if h.keys[s] < 0 {
			return
		}
	}
	h.have[s]--
	if h.have[s] < h.need[s] {
		h.missing++
	}
}

// Missing returns the current lower bound: the number of query nodes
// that cannot be mapped to an equal-labelled node of the window.
func (h *LabelHist) Missing() int { return h.missing }

// CandidateBound slides the window onto the buffered subtree spanning
// nodes from..to (1-based document postorder ids, valid in b) and returns
// the histogram-intersection lower bound for it. The window is slid off
// again before returning, so consecutive candidates need no coordination
// and the histogram state cannot go stale when candidates are skipped;
// because candidates are disjoint this costs the same node-delta work as
// an explicitly persistent window. It performs no allocation.
//
//tasm:hotpath
func (h *LabelHist) CandidateBound(b *Buffer, from, to int) int {
	for id := from; id <= to; id++ {
		h.Add(b.lbl[b.slot(id)])
	}
	bound := h.missing
	for id := from; id <= to; id++ {
		h.Remove(b.lbl[b.slot(id)])
	}
	return bound
}
