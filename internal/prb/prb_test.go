package prb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// paperD builds the example document D of Figure 4 of the paper.
func paperD(t testing.TB) (dict.Dict, *tree.Tree) {
	t.Helper()
	d := dict.New()
	tr := tree.MustParse(d,
		"{dblp"+
			"{article{auth{John}}{title{X1}}}"+
			"{proceedings{conf{VLDB}}{article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}"+
			"{book{title{X2}}}}")
	if tr.Size() != 22 {
		t.Fatalf("document D has %d nodes, want 22", tr.Size())
	}
	return d, tr
}

// TestPostorderQueueOfD reproduces Figure 4b: the postorder queue of D.
func TestPostorderQueueOfD(t *testing.T) {
	d, tr := paperD(t)
	items := postorder.Items(tr)
	want := []struct {
		label string
		size  int
	}{
		{"John", 1}, {"auth", 2}, {"X1", 1}, {"title", 2}, {"article", 5},
		{"VLDB", 1}, {"conf", 2}, {"Peter", 1}, {"auth", 2}, {"X3", 1},
		{"title", 2}, {"article", 5}, {"Mike", 1}, {"auth", 2}, {"X4", 1},
		{"title", 2}, {"article", 5}, {"proceedings", 13}, {"X2", 1},
		{"title", 2}, {"book", 3}, {"dblp", 22},
	}
	if len(items) != len(want) {
		t.Fatalf("queue has %d items, want %d", len(items), len(want))
	}
	for i, w := range want {
		if d.Label(items[i].Label) != w.label || items[i].Size != w.size {
			t.Errorf("item %d = (%s,%d), want (%s,%d)",
				i, d.Label(items[i].Label), items[i].Size, w.label, w.size)
		}
	}
}

// TestCandidateSetExample3 reproduces Example 3: cand(D, 6) =
// {D5, D7, D12, D17, D21} (1-based postorder roots 5, 7, 12, 17, 21).
func TestCandidateSetExample3(t *testing.T) {
	d, tr := paperD(t)
	cands, err := Candidates(d, postorder.FromTree(tr), 6)
	if err != nil {
		t.Fatal(err)
	}
	wantRoots := []int{5, 7, 12, 17, 21}
	if len(cands) != len(wantRoots) {
		t.Fatalf("candidate roots = %v, want %v", roots(cands), wantRoots)
	}
	for i, w := range wantRoots {
		if cands[i].Root != w {
			t.Fatalf("candidate roots = %v, want %v", roots(cands), wantRoots)
		}
	}
	// Example 7 also fixes the subtree contents; spot-check the shapes.
	wantTrees := []string{
		"{article{auth{John}}{title{X1}}}",
		"{conf{VLDB}}",
		"{article{auth{Peter}}{title{X3}}}",
		"{article{auth{Mike}}{title{X4}}}",
		"{book{title{X2}}}",
	}
	for i, w := range wantTrees {
		if got := cands[i].Tree.String(); got != w {
			t.Errorf("candidate %d = %s, want %s", i, got, w)
		}
		if err := cands[i].Tree.Validate(); err != nil {
			t.Errorf("candidate %d invalid: %v", i, err)
		}
	}
}

// TestCandidatesOfOracle checks the Definition 9 oracle on document D.
func TestCandidatesOfOracle(t *testing.T) {
	_, tr := paperD(t)
	got := CandidatesOf(tr, 6)
	want := []int{4, 6, 11, 16, 20} // 0-based
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("CandidatesOf = %v, want %v", got, want)
	}
}

// TestWholeDocumentCandidate: when τ ≥ |T| the only candidate is T itself.
func TestWholeDocumentCandidate(t *testing.T) {
	d, tr := paperD(t)
	for _, tau := range []int{22, 23, 100} {
		cands, err := Candidates(d, postorder.FromTree(tr), tau)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 1 || cands[0].Root != 22 || !cands[0].Tree.Equal(tr) {
			t.Errorf("τ=%d: want the whole document as single candidate, got roots %v", tau, roots(cands))
		}
	}
}

// TestTauOne: with τ = 1 the candidates are exactly the leaves whose
// ancestors all have size > 1 — i.e. every leaf of a tree with >1 node.
func TestTauOne(t *testing.T) {
	d, tr := paperD(t)
	cands, err := Candidates(d, postorder.FromTree(tr), 1)
	if err != nil {
		t.Fatal(err)
	}
	var wantRoots []int
	for i := 0; i < tr.Size(); i++ {
		if tr.IsLeaf(i) {
			wantRoots = append(wantRoots, i+1)
		}
	}
	if fmt.Sprint(roots(cands)) != fmt.Sprint(wantRoots) {
		t.Errorf("τ=1 roots = %v, want leaves %v", roots(cands), wantRoots)
	}
	for _, c := range cands {
		if c.Tree.Size() != 1 {
			t.Errorf("τ=1 candidate of size %d", c.Tree.Size())
		}
	}
}

func TestSingleNodeDocument(t *testing.T) {
	d := dict.New()
	tr := tree.MustParse(d, "{only}")
	cands, err := Candidates(d, postorder.FromTree(tr), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Root != 1 || cands[0].Tree.Size() != 1 {
		t.Errorf("single-node doc: got %v", cands)
	}
}

func TestEmptyQueue(t *testing.T) {
	d := dict.New()
	cands, err := Candidates(d, postorder.NewSliceQueue(nil), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("empty queue: got %d candidates", len(cands))
	}
}

type failingQueue struct {
	items []postorder.Item
	pos   int
	err   error
}

func (q *failingQueue) Next() (postorder.Item, error) {
	if q.pos >= len(q.items) {
		return postorder.Item{}, q.err
	}
	it := q.items[q.pos]
	q.pos++
	return it, nil
}

func TestQueueErrorPropagates(t *testing.T) {
	d, tr := paperD(t)
	items := postorder.Items(tr)
	wantErr := errors.New("disk on fire")
	q := &failingQueue{items: items[:10], err: wantErr}
	_, err := Candidates(d, q, 6)
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
	// The error must be sticky.
	buf := New(&failingQueue{items: nil, err: wantErr}, 3)
	if _, err := buf.Next(); !errors.Is(err, wantErr) {
		t.Errorf("first Next: %v", err)
	}
	if _, err := buf.Next(); !errors.Is(err, wantErr) {
		t.Errorf("second Next (sticky): %v", err)
	}
}

func TestMalformedSizeRejected(t *testing.T) {
	d := dict.New()
	l := d.Intern("a")
	q := postorder.NewSliceQueue([]postorder.Item{{Label: l, Size: 3}})
	if _, err := Candidates(d, q, 5); err == nil {
		t.Error("size larger than position should be rejected")
	}
}

// roots extracts the root positions of a candidate list.
func roots(cs []Candidate) []int {
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.Root
	}
	return out
}

// checkAgainstOracle verifies ring-buffer pruning output against the
// Definition 9 oracle on one tree.
func checkAgainstOracle(t *testing.T, d dict.Dict, tr *tree.Tree, tau int) {
	t.Helper()
	cands, err := Candidates(d, postorder.FromTree(tr), tau)
	if err != nil {
		t.Fatalf("τ=%d: %v", tau, err)
	}
	want := CandidatesOf(tr, tau)
	if len(cands) != len(want) {
		t.Fatalf("τ=%d on %s: got roots %v, want %v", tau, tr, roots(cands), addOne(want))
	}
	for i, w := range want {
		if cands[i].Root != w+1 {
			t.Fatalf("τ=%d on %s: got roots %v, want %v", tau, tr, roots(cands), addOne(want))
		}
		if !cands[i].Tree.Equal(tr.Subtree(w)) {
			t.Fatalf("τ=%d root %d: materialized subtree %s != %s", tau, w+1, cands[i].Tree, tr.Subtree(w))
		}
	}
}

func addOne(a []int) []int {
	out := make([]int, len(a))
	for i, v := range a {
		out[i] = v + 1
	}
	return out
}

// TestRingBufferMatchesOracleQuick is the central pruning property test:
// on random trees and thresholds, ring-buffer pruning returns exactly
// cand(T, τ) with correctly materialized subtrees.
func TestRingBufferMatchesOracleQuick(t *testing.T) {
	f := func(seed int64, nRaw, tauRaw uint8) bool {
		n := int(nRaw)%60 + 1
		tau := int(tauRaw)%(n+4) + 1
		d := dict.New()
		tr := tree.Random(d, rand.New(rand.NewSource(seed)), tree.DefaultRandomConfig(n))
		cands, err := Candidates(d, postorder.FromTree(tr), tau)
		if err != nil {
			return false
		}
		want := CandidatesOf(tr, tau)
		if len(cands) != len(want) {
			return false
		}
		for i, w := range want {
			if cands[i].Root != w+1 || !cands[i].Tree.Equal(tr.Subtree(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestSimplePrunerMatchesOracleQuick checks the Section V-B simple pruning
// baseline against the oracle too.
func TestSimplePrunerMatchesOracleQuick(t *testing.T) {
	f := func(seed int64, nRaw, tauRaw uint8) bool {
		n := int(nRaw)%60 + 1
		tau := int(tauRaw)%(n+4) + 1
		d := dict.New()
		tr := tree.Random(d, rand.New(rand.NewSource(seed)), tree.DefaultRandomConfig(n))
		cands, _, err := SimpleCandidates(d, postorder.FromTree(tr), tau)
		if err != nil {
			return false
		}
		want := CandidatesOf(tr, tau)
		if len(cands) != len(want) {
			return false
		}
		for i, w := range want {
			if cands[i].Root != w+1 || !cands[i].Tree.Equal(tr.Subtree(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSimplePrunerBuffersMore demonstrates the motivation for the ring
// buffer (Section V-B): on shallow wide documents the simple strategy
// buffers O(n) nodes while the ring buffer is capped at τ.
func TestSimplePrunerBuffersMore(t *testing.T) {
	d := dict.New()
	// A DBLP-shaped document: root with many small children.
	root := tree.NewNode("dblp")
	for i := 0; i < 200; i++ {
		root.AddChild(tree.NewNode("article", tree.NewNode("auth"), tree.NewNode("title")))
	}
	tr := tree.FromNode(d, root)
	tau := 6
	_, stats, err := SimpleCandidates(d, postorder.FromTree(tr), tau)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakBuffered < tr.Size()-1 {
		t.Errorf("simple pruning buffered %d nodes; expected nearly the whole document (%d) on a shallow wide tree",
			stats.PeakBuffered, tr.Size())
	}
}

// TestBufferAccessorsDuringScan exercises Root/Leaf/Label/SizeOf/Entry on
// the worked ring-buffer trace of Example 7 (Figure 6).
func TestBufferAccessorsDuringScan(t *testing.T) {
	d, tr := paperD(t)
	buf := New(postorder.FromTree(tr), 6)

	// First candidate: D5 (article, nodes 1–5).
	ok, err := buf.Next()
	if err != nil || !ok {
		t.Fatalf("Next: %v %v", ok, err)
	}
	if buf.Leaf() != 1 || buf.Root() != 5 {
		t.Fatalf("first candidate spans [%d,%d], want [1,5]", buf.Leaf(), buf.Root())
	}
	if got := d.Label(buf.Label(5)); got != "article" {
		t.Errorf("label(5) = %s, want article", got)
	}
	if got := buf.SizeOf(5); got != 5 {
		t.Errorf("SizeOf(5) = %d, want 5", got)
	}
	if got := buf.SizeOf(2); got != 2 { // auth with John below
		t.Errorf("SizeOf(2) = %d, want 2", got)
	}
	if got := buf.LMLOf(5); got != 1 {
		t.Errorf("LMLOf(5) = %d, want 1", got)
	}

	// Remaining candidates per Figure 6: D7, D12, D17, D21.
	want := [][2]int{{6, 7}, {8, 12}, {13, 17}, {19, 21}}
	for _, w := range want {
		ok, err := buf.Next()
		if err != nil || !ok {
			t.Fatalf("Next: %v %v", ok, err)
		}
		if buf.Leaf() != w[0] || buf.Root() != w[1] {
			t.Fatalf("candidate spans [%d,%d], want [%d,%d]", buf.Leaf(), buf.Root(), w[0], w[1])
		}
	}
	if ok, err := buf.Next(); ok || err != nil {
		t.Fatalf("scan should end cleanly, got ok=%v err=%v", ok, err)
	}
	if buf.NodesScanned() != 22 {
		t.Errorf("NodesScanned = %d, want 22", buf.NodesScanned())
	}
}

func TestNewPanicsOnBadTau(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with τ=0 should panic")
		}
	}()
	New(postorder.NewSliceQueue(nil), 0)
}

// TestAppendItems round-trips a candidate through AppendItems + BuildTree.
func TestAppendItems(t *testing.T) {
	d, tr := paperD(t)
	buf := New(postorder.FromTree(tr), 6)
	ok, err := buf.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	items := buf.AppendItems(nil, buf.Leaf(), buf.Root())
	got, err := postorder.BuildTree(d, postorder.NewSliceQueue(items))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "{article{auth{John}}{title{X1}}}" {
		t.Errorf("AppendItems round trip = %s", got)
	}
}
