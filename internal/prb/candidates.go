package prb

import (
	"errors"
	"io"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// Candidate is one element of the candidate set cand(T, τ): a maximal
// subtree of the document within the size threshold.
type Candidate struct {
	// Root is the 1-based postorder id of the subtree's root node in the
	// document (the paper's node index of t_i for subtree T_i).
	Root int
	// Tree is the materialized subtree.
	Tree *tree.Tree
}

// Candidates runs the paper's prb-pruning (Algorithm 1): it consumes the
// whole postorder queue and returns the candidate set cand(T, τ) in
// document postorder. Labels of materialized subtrees are resolved in d.
func Candidates(d dict.Dict, q postorder.Queue, tau int) ([]Candidate, error) {
	var out []Candidate
	buf := New(q, tau)
	for {
		ok, err := buf.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		t, err := buf.Subtree(d, buf.Leaf(), buf.Root())
		if err != nil {
			return out, err
		}
		out = append(out, Candidate{Root: buf.Root(), Tree: t})
	}
}

// CandidatesOf computes cand(T, τ) directly from Definition 9 on a
// memory-resident tree: the 0-based postorder indices i with |T_i| ≤ τ and
// |T_a| > τ for every proper ancestor a. It is the correctness oracle for
// the ring-buffer pruning in tests and returns indices in postorder.
func CandidatesOf(t *tree.Tree, tau int) []int {
	var out []int
	for i := 0; i < t.Size(); i++ {
		if t.SubtreeSize(i) > tau {
			continue
		}
		maximal := true
		for a := t.Parent(i); a != -1; a = t.Parent(a) {
			if t.SubtreeSize(a) <= tau {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, i)
		}
	}
	return out
}

// SimpleStats reports the buffering behaviour of the simple pruning
// strategy of Section V-B, which appends nodes until a non-candidate node
// arrives and only then releases the candidate subtrees rooted among its
// children. Its buffer grows with the document (O(n) worst case, and the
// worst case is the common case for shallow, wide XML), which is the
// motivation for the prefix ring buffer. This implementation exists as an
// ablation baseline for the memory experiments and as a second pruning
// oracle in tests.
type SimpleStats struct {
	// PeakBuffered is the maximum number of nodes simultaneously buffered.
	PeakBuffered int
	// Nodes is the document size.
	Nodes int
}

// SimpleCandidates prunes with the simple strategy and returns the
// candidate set together with buffering statistics.
func SimpleCandidates(d dict.Dict, q postorder.Queue, tau int) ([]Candidate, SimpleStats, error) {
	type buffered struct {
		item postorder.Item
		id   int // 1-based postorder id
	}
	var (
		buf   []buffered
		out   []Candidate
		stats SimpleStats
		id    int
	)
	// emit materializes the maximal ≤τ subtrees in the buffered range, in
	// postorder. Once a non-candidate node arrives, every ancestor of a
	// buffered complete subtree is guaranteed to exceed τ (its subtree
	// interval would have to span the non-candidate node), so a buffered
	// subtree is a candidate exactly when no larger buffered ≤τ subtree
	// covers it. Coverage is marked right to left.
	emit := func() error {
		n := len(buf)
		covered := make([]bool, n)
		roots := make([]int, 0, 4)
		for i := n - 1; i >= 0; i-- {
			if covered[i] {
				continue
			}
			sz := buf[i].item.Size
			lo := i - sz + 1
			if lo < 0 {
				// Unreachable for well-formed queues: a subtree reaching
				// past the buffer start would span the non-candidate node
				// that cleared it. Skip defensively.
				continue
			}
			roots = append(roots, i)
			for j := lo; j < i; j++ {
				covered[j] = true
			}
		}
		// roots were collected right to left; emit in postorder.
		for i, j := 0, len(roots)-1; i < j; i, j = i+1, j-1 {
			roots[i], roots[j] = roots[j], roots[i]
		}
		for _, ri := range roots {
			sz := buf[ri].item.Size
			labels := make([]int, sz)
			sizes := make([]int, sz)
			for j := 0; j < sz; j++ {
				labels[j] = buf[ri-sz+1+j].item.Label
				sizes[j] = buf[ri-sz+1+j].item.Size
			}
			t, err := tree.FromPostorder(d, labels, sizes)
			if err != nil {
				return err
			}
			out = append(out, Candidate{Root: buf[ri].id, Tree: t})
		}
		buf = buf[:0]
		return nil
	}
	for {
		it, err := q.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return out, stats, err
		}
		id++
		if it.Size > tau {
			// Non-candidate node: everything buffered resolves now.
			if err := emit(); err != nil {
				return out, stats, err
			}
			continue
		}
		buf = append(buf, buffered{item: it, id: id})
		if len(buf) > stats.PeakBuffered {
			stats.PeakBuffered = len(buf)
		}
	}
	if err := emit(); err != nil {
		return out, stats, err
	}
	stats.Nodes = id
	return out, stats, nil
}
