// Package qtrace is the query-tracing layer threaded through every tier
// of the system: an allocation-conscious span recorder carried via
// context.Context from the tasmd HTTP handler through corpus scans and
// shard fan-outs.
//
// A Trace holds a fixed-capacity slab of spans and is pooled per request
// (New/Release), so steady-state tracing performs no allocation beyond
// the pool's amortized churn. Spans are recorded at request, plan,
// per-document and merge granularity — NEVER per candidate — so the
// zero-allocations-per-candidate invariant of the scan hot path is
// untouched: the ring-buffer loop does not know tracing exists.
//
// Traces stitch across process boundaries with a W3C-style traceparent
// header ("00-<trace-id>-<span-id>-01"): a router's shard.Client
// propagates its trace id to the tasmd leaves, each leaf answers with
// its own trace block naming that trace id and the router's span id as
// parent, and the router attaches the leaf blocks as children — one
// request, one tree of spans across every tier.
//
// All methods are nil-receiver-safe: code records spans unconditionally
// and an untraced request (nil *Trace in the context) costs one nil
// check per span site.
package qtrace

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end request across every tier (16 bytes,
// hex-encoded on the wire, exactly as in W3C trace context).
type TraceID [16]byte

// SpanID identifies one trace's root span (8 bytes, hex-encoded).
type SpanID [8]byte

// String returns the id in lowercase hex.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String returns the id in lowercase hex.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is all zero (invalid per W3C).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is all zero (invalid per W3C).
func (id SpanID) IsZero() bool { return id == SpanID{} }

// spanCap is the fixed span slab capacity. Spans beyond it are dropped
// and counted, never allocated: a query over thousands of documents
// keeps its first spanCap spans and reports how many were dropped.
const spanCap = 192

// Span is one recorded stage of a trace: a name (a small fixed
// vocabulary — "parse", "plan", "scan", "shard", "merge"), an optional
// detail (the document or shard the stage worked on; always a string
// that already existed, never concatenated), offsets from the trace
// start, and optionally the candidate-pruning counter deltas the stage
// produced.
type Span struct {
	Name   string
	Detail string
	Start  time.Duration // offset from the trace start
	Dur    time.Duration // valid once done
	done   bool

	// Candidate-pruning deltas of this span (set for per-document scan
	// spans; see core.PruneStats).
	prune                              bool
	HistSkipped, TEDAborted, Evaluated uint64
}

// Trace records the spans of one request. It is safe for concurrent use:
// a scatter-gather fan-out's goroutines record their per-shard spans
// into the same trace. Obtain one from New/NewWithParent and return it
// to the pool with Release when the request's response has been written.
type Trace struct {
	traceID TraceID
	spanID  SpanID // this trace's root span id (sent downstream as parent)
	parent  SpanID // the upstream root span id, zero at the root tier
	start   time.Time

	// propagate marks the trace for cross-process export: a shard.Client
	// only asks remote leaves for their trace blocks (and a server only
	// includes the block in its response) when set. Local span recording
	// happens either way, so /debug/queries and the slow-query log see
	// stages of every request.
	propagate bool

	mu       sync.Mutex
	spans    []Span // len ≤ spanCap; the backing array is the pooled slab
	dropped  int
	children []*Wire // trace blocks returned by downstream shards

	// refs counts the holders that may still record into this trace: the
	// request that created it plus every hedged replica attempt still in
	// flight (a ReplicaSet's losing attempts outlive the response).
	// Release only returns the trace to the pool when the last holder is
	// gone, so a late End/AddChild from a cancelled loser writes into a
	// still-live trace instead of a recycled slab.
	refs atomic.Int32
}

var pool = sync.Pool{New: func() any {
	return &Trace{spans: make([]Span, 0, spanCap)}
}}

// New returns a pooled trace with a fresh random trace id, started now.
func New() *Trace {
	return NewWithParent(randomTraceID(), SpanID{})
}

// NewWithParent returns a pooled trace continuing the given trace id,
// with parent as the upstream span (both typically parsed from an
// incoming traceparent header). A zero id gets a fresh random one.
func NewWithParent(id TraceID, parent SpanID) *Trace {
	t := pool.Get().(*Trace)
	if id.IsZero() {
		id = randomTraceID()
	}
	t.traceID = id
	t.parent = parent
	t.spanID = randomSpanID()
	t.start = time.Now()
	t.propagate = false
	t.spans = t.spans[:0]
	t.dropped = 0
	t.children = nil
	t.refs.Store(1)
	return t
}

// Retain adds a holder: the trace will not be recycled until a matching
// Release. A hedged replica attempt retains the trace before launching
// so its span recording stays valid even when the attempt loses the race
// and unwinds after the request's response has been written. Safe on nil.
func (t *Trace) Retain() {
	if t == nil {
		return
	}
	t.refs.Add(1)
}

// Release drops one holder; the last Release returns the trace to the
// pool. The creating request holds one reference (from New/NewWithParent)
// and drops it when the response has been written; concurrent recorders
// that may outlive the response (hedged replica attempts) bracket their
// work with Retain/Release. Safe on nil.
func Release(t *Trace) {
	if t == nil {
		return
	}
	if t.refs.Add(-1) > 0 {
		return
	}
	// Drop the strings the slab still references so released traces do
	// not pin request data; the slab itself is reused.
	s := t.spans[:cap(t.spans)]
	for i := range s {
		s[i] = Span{}
	}
	t.spans = t.spans[:0]
	t.children = nil
	pool.Put(t)
}

func randomTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

func randomSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
		}
	}
	return id
}

// TraceID returns the trace's id (zero on nil).
func (t *Trace) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.traceID
}

// SpanID returns the trace's root span id (zero on nil).
func (t *Trace) SpanID() SpanID {
	if t == nil {
		return SpanID{}
	}
	return t.spanID
}

// Elapsed returns the time since the trace started (zero on nil).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// SetPropagate marks the trace for cross-process export; see the field.
func (t *Trace) SetPropagate(on bool) {
	if t != nil {
		t.propagate = on
	}
}

// Propagate reports whether downstream tiers should export their trace
// blocks back to this trace (false on nil).
func (t *Trace) Propagate() bool { return t != nil && t.propagate }

// Begin opens a span and returns its handle, or -1 when the trace is nil
// or the slab is full (the span is then counted as dropped and every
// later operation on the handle is a no-op).
//
//tasm:hotpath
func (t *Trace) Begin(name, detail string) int {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == cap(t.spans) {
		t.dropped++
		return -1
	}
	t.spans = append(t.spans, Span{Name: name, Detail: detail, Start: time.Since(t.start)}) //tasm:allow alloc — append below cap only: the guard above drops spans once the fixed slab fills
	return len(t.spans) - 1
}

// End closes the span. A handle past the current slab (possible only if
// a recorder outlived its Retain) is ignored rather than crashing.
//
//tasm:hotpath
func (t *Trace) End(h int) {
	if t == nil || h < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h >= len(t.spans) {
		return
	}
	s := &t.spans[h]
	s.Dur = time.Since(t.start) - s.Start
	s.done = true
}

// SetPrune attaches candidate-pruning counter deltas to the span.
//
//tasm:hotpath
func (t *Trace) SetPrune(h int, histSkipped, tedAborted, evaluated uint64) {
	if t == nil || h < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if h >= len(t.spans) {
		return
	}
	s := &t.spans[h]
	s.prune = true
	s.HistSkipped, s.TEDAborted, s.Evaluated = histSkipped, tedAborted, evaluated
}

// Active returns the most recently begun span that has not ended — the
// stage a still-running request is currently in, for in-flight query
// dashboards. ok is false when no span is open (or the trace is nil).
func (t *Trace) Active() (name, detail string, ok bool) {
	if t == nil {
		return "", "", false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.spans) - 1; i >= 0; i-- {
		if !t.spans[i].done {
			return t.spans[i].Name, t.spans[i].Detail, true
		}
	}
	return "", "", false
}

// AddChild attaches a downstream tier's exported trace block (e.g. the
// block a tasmd leaf returned to the router's shard.Client).
func (t *Trace) AddChild(w *Wire) {
	if t == nil || w == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.children = append(t.children, w)
}

// Wire is the JSON form of a trace — the "trace" block of a tasmd
// response. Shards holds the blocks downstream tiers returned; in a
// stitched router↔leaf trace every shard block names the same TraceID
// and the router's SpanID as its ParentID.
type Wire struct {
	TraceID  string     `json:"traceId"`
	SpanID   string     `json:"spanId"`
	ParentID string     `json:"parentId,omitempty"`
	Spans    []WireSpan `json:"spans"`
	Dropped  int        `json:"dropped,omitempty"`
	Shards   []*Wire    `json:"shards,omitempty"`
}

// WireSpan is one span of a trace block. Times are microseconds relative
// to the owning trace's start.
type WireSpan struct {
	Name    string     `json:"name"`
	Detail  string     `json:"detail,omitempty"`
	StartUs float64    `json:"startUs"`
	DurUs   float64    `json:"durUs"`
	Prune   *WirePrune `json:"prune,omitempty"`
}

// WirePrune carries a scan span's candidate-pruning counter deltas.
type WirePrune struct {
	HistSkipped uint64 `json:"histSkipped"`
	TEDAborted  uint64 `json:"tedAborted"`
	Evaluated   uint64 `json:"evaluated"`
}

// Export snapshots the trace as its wire form (nil on nil). Spans still
// open are exported with their duration so far.
func (t *Trace) Export() *Wire {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w := &Wire{
		TraceID: t.traceID.String(),
		SpanID:  t.spanID.String(),
		Dropped: t.dropped,
		Spans:   make([]WireSpan, len(t.spans)),
	}
	if !t.parent.IsZero() {
		w.ParentID = t.parent.String()
	}
	now := time.Since(t.start)
	for i, s := range t.spans {
		dur := s.Dur
		if !s.done {
			dur = now - s.Start
		}
		ws := WireSpan{
			Name:    s.Name,
			Detail:  s.Detail,
			StartUs: float64(s.Start.Nanoseconds()) / 1e3,
			DurUs:   float64(dur.Nanoseconds()) / 1e3,
		}
		if s.prune {
			ws.Prune = &WirePrune{HistSkipped: s.HistSkipped, TEDAborted: s.TEDAborted, Evaluated: s.Evaluated}
		}
		w.Spans[i] = ws
	}
	w.Shards = append([]*Wire(nil), t.children...)
	return w
}

// Traceparent returns the trace's W3C traceparent header value
// ("00-<trace-id>-<root-span-id>-01"), empty on nil.
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return "00-" + t.traceID.String() + "-" + t.spanID.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version byte (per spec, unknown versions are parsed as version 00) and
// rejects malformed or all-zero ids.
func ParseTraceparent(s string) (TraceID, SpanID, bool) {
	var tid TraceID
	var sid SpanID
	parts := strings.Split(s, "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return tid, sid, false
	}
	if _, err := hex.Decode(tid[:], []byte(parts[1])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(sid[:], []byte(parts[2])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// NewContext returns ctx carrying the trace (ctx unchanged when t is
// nil).
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, nil when there is none
// (recording into the nil trace is a no-op, so callers never branch).
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Span-name vocabulary shared across tiers, so a stitched trace reads
// uniformly: a router's "shard" span wraps a leaf whose own block holds
// "parse", "plan", "scan" and "merge" spans.
const (
	SpanParse = "parse" // query parsing (tasmd handler)
	SpanPlan  = "plan"  // corpus scan planning (profiles, ordering)
	SpanScan  = "scan"  // one document's ring-buffer scan (detail: doc name)
	SpanShard = "shard" // one shard's fan-out leg (detail: shard name)
	SpanMerge = "merge" // ranking merge/resolve
)
