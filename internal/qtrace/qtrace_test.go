package qtrace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	h := tr.Begin(SpanPlan, "")
	if h != -1 {
		t.Fatalf("nil Begin returned %d, want -1", h)
	}
	tr.End(h)
	tr.SetPrune(h, 1, 2, 3)
	tr.AddChild(&Wire{})
	tr.SetPropagate(true)
	if tr.Propagate() {
		t.Error("nil trace propagates")
	}
	if w := tr.Export(); w != nil {
		t.Errorf("nil Export = %+v, want nil", w)
	}
	if got := tr.Traceparent(); got != "" {
		t.Errorf("nil Traceparent = %q, want empty", got)
	}
	if _, _, ok := tr.Active(); ok {
		t.Error("nil Active reported an open span")
	}
	Release(tr)
}

func TestSpanLifecycle(t *testing.T) {
	tr := New()
	defer Release(tr)
	p := tr.Begin(SpanPlan, "")
	tr.End(p)
	s := tr.Begin(SpanScan, "doc0")
	if name, detail, ok := tr.Active(); !ok || name != SpanScan || detail != "doc0" {
		t.Errorf("Active = (%q, %q, %v), want (scan, doc0, true)", name, detail, ok)
	}
	tr.SetPrune(s, 10, 2, 7)
	tr.End(s)
	if _, _, ok := tr.Active(); ok {
		t.Error("Active reported an open span after all spans ended")
	}
	w := tr.Export()
	if len(w.Spans) != 2 {
		t.Fatalf("exported %d spans, want 2", len(w.Spans))
	}
	if w.Spans[0].Name != SpanPlan || w.Spans[1].Name != SpanScan {
		t.Errorf("span names = %q, %q", w.Spans[0].Name, w.Spans[1].Name)
	}
	if w.Spans[1].Prune == nil || w.Spans[1].Prune.HistSkipped != 10 ||
		w.Spans[1].Prune.TEDAborted != 2 || w.Spans[1].Prune.Evaluated != 7 {
		t.Errorf("scan span prune = %+v, want {10 2 7}", w.Spans[1].Prune)
	}
	if w.Spans[0].Prune != nil {
		t.Error("plan span has prune counters it was never given")
	}
	if len(w.TraceID) != 32 || len(w.SpanID) != 16 {
		t.Errorf("id lengths: trace %d span %d, want 32 and 16", len(w.TraceID), len(w.SpanID))
	}
}

func TestSlabCapacityDropsNotGrows(t *testing.T) {
	tr := New()
	defer Release(tr)
	for i := 0; i < spanCap+25; i++ {
		h := tr.Begin(SpanScan, "d")
		tr.End(h)
	}
	w := tr.Export()
	if len(w.Spans) != spanCap {
		t.Errorf("kept %d spans, want the slab capacity %d", len(w.Spans), spanCap)
	}
	if w.Dropped != 25 {
		t.Errorf("dropped = %d, want 25", w.Dropped)
	}
}

func TestPoolReuseResets(t *testing.T) {
	tr := New()
	tr.Begin(SpanPlan, "stale")
	tr.AddChild(&Wire{TraceID: "stale"})
	id := tr.TraceID()
	Release(tr)
	tr2 := New()
	defer Release(tr2)
	w := tr2.Export()
	if len(w.Spans) != 0 || len(w.Shards) != 0 || w.Dropped != 0 {
		t.Errorf("reused trace carries state: %+v", w)
	}
	if tr2.TraceID() == id && id != (TraceID{}) {
		// Not impossible, but with 128-bit random ids a collision means
		// the id was not regenerated.
		t.Error("reused trace kept the released trace's id")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New()
	defer Release(tr)
	hdr := tr.Traceparent()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent %q not in 00-…-01 form", hdr)
	}
	tid, sid, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("own traceparent %q did not parse", hdr)
	}
	if tid != tr.TraceID() || sid != tr.SpanID() {
		t.Errorf("round trip: got (%s, %s), want (%s, %s)", tid, sid, tr.TraceID(), tr.SpanID())
	}

	child := NewWithParent(tid, sid)
	defer Release(child)
	if child.TraceID() != tr.TraceID() {
		t.Error("child did not keep the parent's trace id")
	}
	cw := child.Export()
	if cw.ParentID != tr.SpanID().String() {
		t.Errorf("child ParentID = %q, want parent span %s", cw.ParentID, tr.SpanID())
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-zz-xx-01",
		"00-0123456789abcdef-0123456789abcdef-01",                                  // short trace id
		"00-00000000000000000000000000000000-0123456789abcdef-01",                  // zero trace id
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01",                  // zero span id
		"00-0123456789abcdef0123456789abcdeg-0123456789abcdef-01",                  // non-hex
		"0-0123456789abcdef0123456789abcdef-0123456789abcdef-01",                   // short version
		"00_0123456789abcdef0123456789abcdef_0123456789abcdef_01",                  // wrong separators
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef",                     // missing flags
		"00-0123456789abcdef0123456789abcdef00-0123456789abcdef-01ff-extra-fields", // long trace id
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	if _, _, ok := ParseTraceparent("cc-0123456789abcdef0123456789abcdef-0123456789abcdef-01-futurefield"); !ok {
		t.Error("future traceparent version with extra fields rejected; spec says parse it")
	}
}

func TestContextCarry(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context carries a trace")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx tolerance is the contract
		t.Error("nil context carries a trace")
	}
	tr := New()
	defer Release(tr)
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("context did not return the attached trace")
	}
	if got := NewContext(ctx, nil); FromContext(got) != tr {
		t.Error("attaching nil replaced the existing trace")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New()
	defer Release(tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h := tr.Begin(SpanShard, "s")
				tr.SetPrune(h, 1, 1, 1)
				tr.End(h)
			}
		}()
	}
	wg.Wait()
	w := tr.Export()
	if len(w.Spans)+w.Dropped != 400 {
		t.Errorf("kept %d + dropped %d spans, want 400 total", len(w.Spans), w.Dropped)
	}
}

func TestExportOpenSpanDuration(t *testing.T) {
	tr := New()
	defer Release(tr)
	h := tr.Begin(SpanScan, "doc")
	time.Sleep(2 * time.Millisecond)
	w := tr.Export()
	if w.Spans[0].DurUs < 1000 {
		t.Errorf("open span exported with %vµs, want ≥ ~2000 (duration so far)", w.Spans[0].DurUs)
	}
	tr.End(h)
}

func TestWireJSONShape(t *testing.T) {
	tr := New()
	defer Release(tr)
	h := tr.Begin(SpanScan, "doc0")
	tr.SetPrune(h, 1, 2, 3)
	tr.End(h)
	tr.AddChild(&Wire{TraceID: tr.TraceID().String(), SpanID: "aaaaaaaaaaaaaaaa", ParentID: tr.SpanID().String()})
	data, err := json.Marshal(tr.Export())
	if err != nil {
		t.Fatal(err)
	}
	var decoded Wire
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.TraceID != tr.TraceID().String() || len(decoded.Spans) != 1 ||
		len(decoded.Shards) != 1 || decoded.Shards[0].ParentID != tr.SpanID().String() {
		t.Errorf("JSON round trip lost structure: %s", data)
	}
}

// TestRetainDefersPoolReturn pins the hedged-loser contract: a trace
// retained by an in-flight replica attempt must not return to the pool
// (and must keep accepting span writes) when the request releases it;
// only the final Release recycles the slab.
func TestRetainDefersPoolReturn(t *testing.T) {
	tr := New()
	h := tr.Begin(SpanShard, "replica-0")
	tr.Retain() // the attempt goroutine
	Release(tr) // the request's response was written
	tr.End(h)   // the losing attempt's late span write
	tr.AddChild(&Wire{TraceID: "late"})
	if w := tr.Export(); len(w.Spans) != 1 || len(w.Shards) != 1 {
		t.Fatalf("retained trace lost state after request Release: %+v", w)
	}
	Release(tr) // the attempt unwinds; now the slab recycles
	tr2 := New()
	defer Release(tr2)
	if w := tr2.Export(); len(w.Spans) != 0 || len(w.Shards) != 0 {
		t.Errorf("reused trace carries retained-phase state: %+v", w)
	}
}

// TestEndPastSlabIsNoOp pins the hardening: ending a handle beyond the
// current slab (a recorder that outlived its Retain) must be ignored,
// not crash.
func TestEndPastSlabIsNoOp(t *testing.T) {
	tr := New()
	defer Release(tr)
	tr.End(somethingStale)
	tr.SetPrune(somethingStale, 1, 2, 3)
	if w := tr.Export(); len(w.Spans) != 0 {
		t.Errorf("stale End materialized a span: %+v", w)
	}
}

const somethingStale = 17
