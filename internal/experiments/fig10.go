package experiments

import (
	"fmt"
	"io"

	"tasm/internal/core"
	"tasm/internal/tree"
)

// Fig10Point is one measurement of the memory experiment of Figure 10.
type Fig10Point struct {
	Scale     int
	Nodes     int
	QuerySize int
	Algo      string
	PeakBytes uint64
}

// Fig10 reproduces Figure 10: peak heap usage as a function of the
// document size. TASM-dynamic materializes the document and an O(m·n)
// distance matrix, so its footprint grows linearly; TASM-postorder holds
// only the prefix ring buffer and per-candidate state, so its footprint is
// flat across document sizes. Reported peaks are deltas above the
// post-GC baseline of each measured region, so harness state retained
// between runs does not pollute the series.
//
// To keep the measurement honest the postorder runs stream straight from
// the generator: the document is never materialized in the measured
// process state. The dynamic runs rebuild the document tree inside the
// measured region, exactly as TASM-dynamic must.
func Fig10(w io.Writer, cfg Config) ([]Fig10Point, error) {
	cache := newDocCache(cfg)
	qsizes := pick(cfg.QuerySizes, 0, 2)
	fmt.Fprintf(w, "Figure 10: peak heap vs document size (k=%d)\n", cfg.K)
	table(w, "scale", "nodes", "|Q|", "algo", "peak MB")
	var out []Fig10Point

	for _, scale := range cfg.Scales {
		// Query selection needs the materialized tree; select before
		// measuring, then drop the cache so the measured region is clean.
		queryBySize := map[int]*tree.Tree{}
		nodes := 0
		for _, qs := range qsizes {
			queries, err := cache.queries(scale, qs, 1)
			if err != nil {
				return nil, err
			}
			queryBySize[qs] = queries[0]
		}
		doc, _, err := cache.tree(scale)
		if err != nil {
			return nil, err
		}
		nodes = doc.Size()
		cache.drop(scale)

		for _, qs := range qsizes {
			q := queryBySize[qs]

			// TASM-postorder: stream from the generator, document never
			// resident.
			queue, err := cache.queueNoTree(scale)
			if err != nil {
				return nil, err
			}
			peakPos, err := peakHeapDuring(func() error {
				_, err := core.PostorderStream(q, queue, cfg.K, core.Options{NoTrees: true})
				return err
			})
			if err != nil {
				return nil, err
			}

			// TASM-dynamic: must materialize the document first.
			peakDyn, err := peakHeapDuring(func() error {
				doc, _, err := cache.tree(scale)
				if err != nil {
					return err
				}
				_, err = core.Dynamic(q, doc, cfg.K, core.Options{NoTrees: true})
				return err
			})
			if err != nil {
				return nil, err
			}
			cache.drop(scale)

			out = append(out,
				Fig10Point{scale, nodes, qs, "dyn", peakDyn},
				Fig10Point{scale, nodes, qs, "pos", peakPos})
			table(w, scale, nodes, qs, "dyn", fmt.Sprintf("%.2f", float64(peakDyn)/1e6))
			table(w, scale, nodes, qs, "pos", fmt.Sprintf("%.2f", float64(peakPos)/1e6))
		}
	}
	return out, nil
}
