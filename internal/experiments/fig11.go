package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"tasm/internal/core"
	"tasm/internal/cost"
	"tasm/internal/datagen"
	"tasm/internal/dict"
)

// Fig11Result holds the TED-computation profiles of one dataset for a
// top-1 query: the histogram of relevant-subtree sizes evaluated by each
// algorithm (Figures 11a/11b scatter data and 11c histogram data).
type Fig11Result struct {
	Dataset  string
	Nodes    int
	Dyn, Pos *Hist
	Tau      int
}

// pruningProfile runs both algorithms on one generated document with a
// |Q|=4 top-1 query and collects the relevant-subtree histograms.
func pruningProfile(name string, ds *datagen.Dataset, seed int64) (*Fig11Result, error) {
	d := dict.New()
	doc, err := ds.Tree(d, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	q, err := datagen.QueryFromDocument(doc, rng, 4)
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Dataset: name, Nodes: doc.Size(), Tau: core.Tau(cost.Unit{}, q, 1, 0)}

	pDyn := newProbe()
	if _, err := core.Dynamic(q, doc, 1, core.Options{Probe: pDyn, NoTrees: true}); err != nil {
		return nil, err
	}
	res.Dyn = pDyn.relevant

	// The figure measures the PAPER's TASM-postorder pruning profile, so
	// the repo's additional candidate pruning gates (label histogram,
	// early-abort TED) are disabled: they would shrink the relevant-
	// subtree counts below what Figure 11 reports.
	pPos := newProbe()
	popts := core.Options{Probe: pPos, NoTrees: true, DisableHistogramBound: true, DisableEarlyAbort: true}
	if _, err := core.Postorder(q, doc, 1, popts); err != nil {
		return nil, err
	}
	res.Pos = pPos.relevant
	return res, nil
}

// Fig11 reproduces Figure 11: the number of tree-edit-distance
// computations per relevant-subtree size for a top-1, |Q|=4 query on the
// PSD-like (scatter, Figures 11a/11b) and DBLP-like (histogram,
// Figure 11c) documents.
func Fig11(w io.Writer, cfg Config) ([]*Fig11Result, error) {
	psd, err := pruningProfile("psd", datagen.PSD(cfg.PSDEntries), cfg.Seed)
	if err != nil {
		return nil, err
	}
	dblp, err := pruningProfile("dblp", datagen.DBLP(cfg.DBLPRecords), cfg.Seed)
	if err != nil {
		return nil, err
	}

	for _, r := range []*Fig11Result{psd, dblp} {
		fmt.Fprintf(w, "Figure 11 (%s, %d nodes, top-1, |Q|=4, τ=%d)\n", r.Dataset, r.Nodes, r.Tau)
		table(w, "bucket", "dyn count", "pos count")
		dynB := r.Dyn.LogBuckets()
		posByLo := map[int]int{}
		for _, b := range r.Pos.LogBuckets() {
			posByLo[b.Lo] = b.Count
		}
		for _, b := range dynB {
			table(w, fmt.Sprintf("[%d,%d)", b.Lo, b.Hi), b.Count, posByLo[b.Lo])
		}
		fmt.Fprintf(w, "max relevant subtree: dyn %d nodes, pos %d nodes\n\n",
			r.Dyn.MaxSize(), r.Pos.MaxSize())
	}
	return []*Fig11Result{psd, dblp}, nil
}

// Fig12Point is one point of the cumulative-subtree-size-difference curve.
type Fig12Point struct {
	Dataset string
	X       int   // subtree size
	Diff    int64 // css_dyn(x) − css_pos(x)
}

// Fig12 reproduces Figure 12: the cumulative subtree size difference
// css_dyn(x) − css_pos(x) for top-1 queries on the DBLP-like and PSD-like
// documents. Negative values at small x mean TASM-postorder computes more
// small subtrees; the curve must end far above zero — TASM-dynamic does
// strictly more total work.
func Fig12(w io.Writer, cfg Config) ([]Fig12Point, error) {
	results, err := Fig11(io.Discard, cfg)
	if err != nil {
		return nil, err
	}
	var out []Fig12Point
	fmt.Fprintln(w, "Figure 12: cumulative subtree size difference (top-1)")
	table(w, "dataset", "x", "css_dyn-css_pos")
	for _, r := range results {
		xs := logSpaced(r.Dyn.MaxSize())
		for _, x := range xs {
			diff := r.Dyn.CSS(x) - r.Pos.CSS(x)
			out = append(out, Fig12Point{Dataset: r.Dataset, X: x, Diff: diff})
			table(w, r.Dataset, x, diff)
		}
	}
	return out, nil
}

// logSpaced returns 1, 10, 100, … up to and including a bound ≥ max.
func logSpaced(max int) []int {
	var out []int
	for x := 1; ; x *= 10 {
		out = append(out, x)
		if x >= max {
			return out
		}
	}
}
