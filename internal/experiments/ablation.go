package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"tasm/internal/core"
	"tasm/internal/cost"
	"tasm/internal/datagen"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/prb"
)

// AblationResult quantifies the two design choices of TASM-postorder that
// the paper motivates but does not isolate:
//
//  1. the dynamic τ′ = min(τ, max(R)+|Q|) bound of Lemma 4 on top of the
//     static Theorem 3 bound, and
//  2. the prefix ring buffer against the simple pruning of Section V-B.
type AblationResult struct {
	// TauPrime compares TASM-postorder with and without the intermediate
	// ranking bound: seconds and total TED node volume (Σ sizes of
	// evaluated relevant subtrees).
	TauPrimeSecondsWith, TauPrimeSecondsWithout float64
	TauPrimeNodesWith, TauPrimeNodesWithout     int64

	// Buffering compares the maximum number of simultaneously buffered
	// nodes: ring buffer capacity (τ+1) versus the simple strategy's
	// observed peak on a shallow-and-wide document.
	RingBufferCap    int
	SimplePeak       int
	DocumentNodes    int
	CandidateSubtree int // number of candidate subtrees (identical either way)
}

// Ablation runs both ablations on a DBLP-shaped document (the paper's
// worst case for simple pruning) and writes a summary table.
func Ablation(w io.Writer, cfg Config) (*AblationResult, error) {
	res := &AblationResult{}
	d := dict.New()
	ds := datagen.DBLP(cfg.DBLPRecords)
	doc, err := ds.Tree(d, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	q, err := datagen.QueryFromDocument(doc, rng, 8)
	if err != nil {
		return nil, err
	}
	items := postorder.Items(doc)
	k := cfg.K

	// Ablation 1: τ′ on/off. The newer candidate pruning gates are held
	// off in both arms so the measured contrast isolates the paper's
	// intermediate bound.
	run := func(disable bool) (float64, int64, error) {
		p := &volumeProbe{}
		dur, err := timeIt(func() error {
			_, err := core.PostorderStream(q, postorder.NewSliceQueue(items), k,
				core.Options{NoTrees: true, Probe: p, DisableIntermediateBound: disable,
					DisableHistogramBound: true, DisableEarlyAbort: true})
			return err
		})
		return dur.Seconds(), p.nodes, err
	}
	if res.TauPrimeSecondsWith, res.TauPrimeNodesWith, err = run(false); err != nil {
		return nil, err
	}
	if res.TauPrimeSecondsWithout, res.TauPrimeNodesWithout, err = run(true); err != nil {
		return nil, err
	}

	// Ablation 2: ring buffer vs simple pruning.
	tau := core.Tau(cost.Unit{}, q, k, 0)
	res.RingBufferCap = tau + 1
	res.DocumentNodes = doc.Size()
	cands, stats, err := prb.SimpleCandidates(d, postorder.NewSliceQueue(items), tau)
	if err != nil {
		return nil, err
	}
	res.SimplePeak = stats.PeakBuffered
	res.CandidateSubtree = len(cands)

	fmt.Fprintf(w, "Ablation (DBLP-like, %d nodes, |Q|=%d, k=%d, τ=%d)\n", doc.Size(), q.Size(), k, tau)
	table(w, "variant", "seconds", "TED nodes")
	table(w, "with τ'", fmt.Sprintf("%.4f", res.TauPrimeSecondsWith), res.TauPrimeNodesWith)
	table(w, "without τ'", fmt.Sprintf("%.4f", res.TauPrimeSecondsWithout), res.TauPrimeNodesWithout)
	table(w, "buffering", "peak nodes", "")
	table(w, "ring buffer", res.RingBufferCap, "")
	table(w, "simple", res.SimplePeak, "")
	return res, nil
}

// volumeProbe sums the sizes of evaluated relevant subtrees.
type volumeProbe struct{ nodes int64 }

func (p *volumeProbe) RelevantSubtree(size int) { p.nodes += int64(size) }
func (p *volumeProbe) Candidate(int)            {}
func (p *volumeProbe) Pruned(int)               {}
