package experiments

import (
	"fmt"
	"io"

	"tasm/internal/core"
	"tasm/internal/tree"
)

// Fig9Point is one measurement of the runtime experiments of Figure 9.
type Fig9Point struct {
	Scale     int     // XMark scale factor (stands in for document MB)
	Nodes     int     // document node count
	QuerySize int     // requested |Q|
	K         int     // result size
	Algo      string  // "dyn" or "pos"
	Seconds   float64 // wall-clock seconds, averaged over queries
}

// runPair times TASM-dynamic and TASM-postorder for one (scale, query, k)
// configuration, averaging over the configured number of queries.
// TASM-dynamic consumes the materialized document; TASM-postorder consumes
// a fresh stream, never touching the materialized tree.
func (c *docCache) runPair(scale, qsize, k int, queries []*tree.Tree) (dyn, pos float64, nodes int, err error) {
	doc, _, err := c.tree(scale)
	if err != nil {
		return 0, 0, 0, err
	}
	nodes = doc.Size()
	opts := core.Options{NoTrees: true}
	for _, q := range queries {
		dDyn, err := timeIt(func() error {
			_, err := core.Dynamic(q, doc, k, opts)
			return err
		})
		if err != nil {
			return 0, 0, 0, err
		}
		dyn += dDyn.Seconds()

		queue, err := c.queue(scale)
		if err != nil {
			return 0, 0, 0, err
		}
		dPos, err := timeIt(func() error {
			_, err := core.PostorderStream(q, queue, k, opts)
			return err
		})
		if err != nil {
			return 0, 0, 0, err
		}
		pos += dPos.Seconds()
	}
	n := float64(len(queries))
	return dyn / n, pos / n, nodes, nil
}

// Fig9a reproduces Figure 9a: execution time as a function of the document
// size for different query sizes, fixed k.
func Fig9a(w io.Writer, cfg Config) ([]Fig9Point, error) {
	cache := newDocCache(cfg)
	qsizes := pick(cfg.QuerySizes, 0, 1, len(cfg.QuerySizes)-1) // small, medium, largest
	fmt.Fprintf(w, "Figure 9a: runtime vs document size (k=%d)\n", cfg.K)
	table(w, "scale", "nodes", "|Q|", "algo", "seconds")
	var out []Fig9Point
	for _, scale := range cfg.Scales {
		for _, qs := range qsizes {
			queries, err := cache.queries(scale, qs, cfg.QueriesPerSz)
			if err != nil {
				return nil, err
			}
			dyn, pos, nodes, err := cache.runPair(scale, qs, cfg.K, queries)
			if err != nil {
				return nil, err
			}
			out = append(out,
				Fig9Point{scale, nodes, qs, cfg.K, "dyn", dyn},
				Fig9Point{scale, nodes, qs, cfg.K, "pos", pos})
			table(w, scale, nodes, qs, "dyn", fmt.Sprintf("%.4f", dyn))
			table(w, scale, nodes, qs, "pos", fmt.Sprintf("%.4f", pos))
		}
	}
	return out, nil
}

// Fig9b reproduces Figure 9b: execution time as a function of the query
// size for different document sizes, fixed k.
func Fig9b(w io.Writer, cfg Config) ([]Fig9Point, error) {
	cache := newDocCache(cfg)
	scales := pick(cfg.Scales, 0, 1, len(cfg.Scales)-1)
	fmt.Fprintf(w, "Figure 9b: runtime vs query size (k=%d)\n", cfg.K)
	table(w, "scale", "nodes", "|Q|", "algo", "seconds")
	var out []Fig9Point
	for _, qs := range cfg.QuerySizes {
		for _, scale := range scales {
			queries, err := cache.queries(scale, qs, cfg.QueriesPerSz)
			if err != nil {
				return nil, err
			}
			dyn, pos, nodes, err := cache.runPair(scale, qs, cfg.K, queries)
			if err != nil {
				return nil, err
			}
			out = append(out,
				Fig9Point{scale, nodes, qs, cfg.K, "dyn", dyn},
				Fig9Point{scale, nodes, qs, cfg.K, "pos", pos})
			table(w, scale, nodes, qs, "dyn", fmt.Sprintf("%.4f", dyn))
			table(w, scale, nodes, qs, "pos", fmt.Sprintf("%.4f", pos))
		}
	}
	return out, nil
}

// Fig9c reproduces Figure 9c: execution time as a function of k for a
// fixed query size; TASM-dynamic is insensitive to k while TASM-postorder
// grows only mildly over four orders of magnitude.
func Fig9c(w io.Writer, cfg Config) ([]Fig9Point, error) {
	cache := newDocCache(cfg)
	scales := pick(cfg.Scales, 0, 1)
	const qs = 16
	fmt.Fprintf(w, "Figure 9c: runtime vs k (|Q|=%d)\n", qs)
	table(w, "scale", "nodes", "k", "algo", "seconds")
	var out []Fig9Point
	for _, k := range cfg.Ks {
		for _, scale := range scales {
			queries, err := cache.queries(scale, qs, cfg.QueriesPerSz)
			if err != nil {
				return nil, err
			}
			dyn, pos, nodes, err := cache.runPair(scale, qs, k, queries)
			if err != nil {
				return nil, err
			}
			out = append(out,
				Fig9Point{scale, nodes, qs, k, "dyn", dyn},
				Fig9Point{scale, nodes, qs, k, "pos", pos})
			table(w, scale, nodes, k, "dyn", fmt.Sprintf("%.4f", dyn))
			table(w, scale, nodes, k, "pos", fmt.Sprintf("%.4f", pos))
		}
	}
	return out, nil
}

// pick selects the given indices from s, deduplicated, clamped to range.
func pick(s []int, idxs ...int) []int {
	seen := map[int]bool{}
	var out []int
	for _, i := range idxs {
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		if i >= 0 && !seen[i] {
			seen[i] = true
			out = append(out, s[i])
		}
	}
	return out
}
