package experiments

import (
	"io"
	"strings"
	"testing"
)

// The experiment tests run the Quick configuration and assert the
// *structural* claims each figure supports (who wins, what is bounded,
// what is flat) rather than absolute timings, which depend on the host.

func TestFig9aShapes(t *testing.T) {
	var sb strings.Builder
	pts, err := Fig9a(&sb, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	// Node counts must grow with scale (linear document sizes).
	nodesByScale := map[int]int{}
	for _, p := range pts {
		nodesByScale[p.Scale] = p.Nodes
		if p.Seconds < 0 {
			t.Errorf("negative time: %+v", p)
		}
	}
	if !(nodesByScale[2] > nodesByScale[1]) {
		t.Errorf("nodes must grow with scale: %v", nodesByScale)
	}
	if !strings.Contains(sb.String(), "Figure 9a") {
		t.Error("missing table header")
	}
}

func TestFig9cDynInsensitiveToK(t *testing.T) {
	pts, err := Fig9c(io.Discard, Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Collect dynamic times by k for the first scale; they must not vary
	// wildly (the algorithm does identical work regardless of k).
	var times []float64
	for _, p := range pts {
		if p.Algo == "dyn" && p.Scale == 1 {
			times = append(times, p.Seconds)
		}
	}
	if len(times) < 2 {
		t.Fatal("not enough dyn points")
	}
	min, max := times[0], times[0]
	for _, v := range times {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min > 0 && max/min > 5 {
		t.Errorf("dyn time varies %gx with k; expected roughly flat (times %v)", max/min, times)
	}
}

func TestFig10MemoryShape(t *testing.T) {
	// Quick()'s largest scale is too small for a robust memory
	// comparison: at scale 2 the dynamic distance matrix is of the same
	// order as the streaming run's transient allocations, so the paper's
	// dominance claim only reproduces within noise. Measure with a wider
	// scale gap instead — the claim is about growth with document size,
	// so the largest scale is where it must be unambiguous.
	cfg := Quick()
	cfg.Scales = []int{1, 4}
	pts, err := Fig10(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// For each query size: postorder peak must not grow with document
	// scale the way dynamic does. Assert the weaker, robust property that
	// at the largest scale dyn uses decisively more heap than pos —
	// requiring a 1.5× margin rather than a bare inequality so sampling
	// jitter in either direction cannot flip the verdict.
	byKey := map[string]uint64{}
	maxScale := 0
	for _, p := range pts {
		byKey[key3(p.Algo, p.Scale, p.QuerySize)] = p.PeakBytes
		if p.Scale > maxScale {
			maxScale = p.Scale
		}
	}
	for _, p := range pts {
		if p.Scale != maxScale || p.Algo != "dyn" {
			continue
		}
		pos := byKey[key3("pos", p.Scale, p.QuerySize)]
		if pos == 0 {
			t.Fatalf("missing pos point for %+v", p)
		}
		if float64(p.PeakBytes) <= 1.5*float64(pos) {
			t.Errorf("scale %d |Q|=%d: dyn peak %d not decisively above pos peak %d; dynamic must dominate at the largest scale",
				p.Scale, p.QuerySize, p.PeakBytes, pos)
		}
	}
}

func key3(algo string, a, b int) string {
	return algo + ":" + itoa(a) + ":" + itoa(b)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestFig11Bounds(t *testing.T) {
	results, err := Fig11(io.Discard, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("want psd and dblp, got %d results", len(results))
	}
	for _, r := range results {
		// TASM-dynamic evaluates the whole document as a relevant subtree.
		if r.Dyn.MaxSize() != r.Nodes {
			t.Errorf("%s: dyn max relevant = %d, want whole document %d", r.Dataset, r.Dyn.MaxSize(), r.Nodes)
		}
		// TASM-postorder never evaluates a subtree above τ.
		if r.Pos.MaxSize() > r.Tau {
			t.Errorf("%s: pos max relevant = %d exceeds τ=%d", r.Dataset, r.Pos.MaxSize(), r.Tau)
		}
		if r.Pos.Total() == 0 || r.Dyn.Total() == 0 {
			t.Errorf("%s: empty histograms", r.Dataset)
		}
	}
}

func TestFig12EndsPositive(t *testing.T) {
	pts, err := Fig12(io.Discard, Quick())
	if err != nil {
		t.Fatal(err)
	}
	// The final (largest x) difference per dataset must be positive:
	// TASM-dynamic does strictly more cumulative work (Section VII-B).
	last := map[string]int64{}
	lastX := map[string]int{}
	for _, p := range pts {
		if p.X >= lastX[p.Dataset] {
			lastX[p.Dataset] = p.X
			last[p.Dataset] = p.Diff
		}
	}
	for ds, diff := range last {
		if diff <= 0 {
			t.Errorf("%s: css difference at max x = %d, want > 0", ds, diff)
		}
	}
}

func TestAblation(t *testing.T) {
	var sb strings.Builder
	res, err := Ablation(&sb, Quick())
	if err != nil {
		t.Fatal(err)
	}
	// τ′ must not increase the TED volume (it only ever prunes).
	if res.TauPrimeNodesWith > res.TauPrimeNodesWithout {
		t.Errorf("τ′ increased TED volume: %d with vs %d without",
			res.TauPrimeNodesWith, res.TauPrimeNodesWithout)
	}
	// On a shallow wide document the simple strategy buffers (nearly) the
	// whole document, the ring buffer only τ+1 slots.
	if res.SimplePeak <= res.RingBufferCap {
		t.Errorf("simple pruning peak %d should exceed ring buffer cap %d",
			res.SimplePeak, res.RingBufferCap)
	}
	if res.SimplePeak < res.DocumentNodes/2 {
		t.Errorf("simple pruning peak %d unexpectedly small for a %d-node flat document",
			res.SimplePeak, res.DocumentNodes)
	}
	if res.CandidateSubtree == 0 {
		t.Error("no candidates")
	}
	if !strings.Contains(sb.String(), "Ablation") {
		t.Error("missing table header")
	}
}

func TestHist(t *testing.T) {
	h := NewHist()
	for _, s := range []int{1, 1, 3, 10, 100} {
		h.Add(s)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(1) != 2 {
		t.Errorf("Count(1) = %d", h.Count(1))
	}
	if h.MaxSize() != 100 {
		t.Errorf("MaxSize = %d", h.MaxSize())
	}
	if got := h.CSS(3); got != 1+1+3 {
		t.Errorf("CSS(3) = %d, want 5", got)
	}
	if got := h.CSS(1000); got != 1+1+3+10+100 {
		t.Errorf("CSS(1000) = %d, want 115", got)
	}
	sizes := h.Sizes()
	if len(sizes) != 4 || sizes[0] != 1 || sizes[3] != 100 {
		t.Errorf("Sizes = %v", sizes)
	}
	buckets := h.LogBuckets()
	if buckets[0].Count != 3 { // sizes 1,1,3 in [1,10)
		t.Errorf("bucket [1,10) = %d, want 3", buckets[0].Count)
	}
}

func TestLogSpaced(t *testing.T) {
	got := logSpaced(250)
	want := []int{1, 10, 100, 1000}
	if len(got) != len(want) {
		t.Fatalf("logSpaced(250) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logSpaced(250) = %v", got)
		}
	}
}
