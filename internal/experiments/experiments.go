// Package experiments reproduces the evaluation of the TASM paper
// (Section VII): one runner per figure, each generating its workload,
// sweeping the figure's parameter, and reporting the same series the paper
// plots. Document scales are reduced ~100× relative to the paper's
// multi-gigabyte corpora (see DESIGN.md §3); every claim the figures
// support — linear runtime, document-size-independent memory, bounded TED
// work, insensitivity to k — is scale-free.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"tasm/internal/core"
	"tasm/internal/datagen"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// Config tunes the experiment harness. The zero value is not valid; use
// Default or Quick.
type Config struct {
	// Seed drives all deterministic generation.
	Seed int64
	// Scales are the XMark scale factors standing in for the paper's
	// document sizes (112–1792 MB ≙ scales 1–16 here).
	Scales []int
	// QuerySizes for the query-size sweeps.
	QuerySizes []int
	// Ks for the k sweep of Figure 9c.
	Ks []int
	// K is the fixed result size for the document/query sweeps.
	K int
	// PSDEntries and DBLPRecords size the pruning experiments
	// (Figures 11–12).
	PSDEntries   int
	DBLPRecords  int
	QueriesPerSz int // queries averaged per configuration
}

// Default mirrors the paper's sweeps at reproduction scale.
func Default() Config {
	return Config{
		Seed:         1,
		Scales:       []int{1, 2, 4, 8, 16},
		QuerySizes:   []int{4, 8, 16, 32, 64},
		Ks:           []int{1, 10, 100, 1000, 10000},
		K:            5,
		PSDEntries:   4000,
		DBLPRecords:  30000,
		QueriesPerSz: 2,
	}
}

// Quick is a minutes-not-hours configuration for tests and smoke runs.
func Quick() Config {
	return Config{
		Seed:         1,
		Scales:       []int{1, 2},
		QuerySizes:   []int{4, 8},
		Ks:           []int{1, 10, 100},
		K:            5,
		PSDEntries:   300,
		DBLPRecords:  2000,
		QueriesPerSz: 1,
	}
}

// docCache builds each XMark document once per harness run: the tree for
// TASM-dynamic and query selection, regenerated queues for streaming runs.
type docCache struct {
	cfg   Config
	mu    sync.Mutex
	trees map[int]*tree.Tree
	dicts map[int]dict.Dict
}

func newDocCache(cfg Config) *docCache {
	return &docCache{cfg: cfg, trees: map[int]*tree.Tree{}, dicts: map[int]dict.Dict{}}
}

// tree returns the materialized XMark document at the given scale.
func (c *docCache) tree(scale int) (*tree.Tree, dict.Dict, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.trees[scale]; ok {
		return t, c.dicts[scale], nil
	}
	d := dict.New()
	t, err := datagen.XMark(scale).Tree(d, c.cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	c.trees[scale] = t
	c.dicts[scale] = d
	return t, d, nil
}

// queue returns a fresh streaming queue of the XMark document at the given
// scale, interning into the same dictionary as the cached tree so queries
// remain compatible.
func (c *docCache) queue(scale int) (postorder.Queue, error) {
	_, d, err := c.tree(scale)
	if err != nil {
		return nil, err
	}
	return datagen.XMark(scale).Queue(d, c.cfg.Seed), nil
}

// queueNoTree returns a streaming queue without materializing the tree,
// reusing the scale's dictionary if one exists (so previously selected
// queries stay label-compatible).
func (c *docCache) queueNoTree(scale int) (postorder.Queue, error) {
	c.mu.Lock()
	d, ok := c.dicts[scale]
	if !ok {
		d = dict.New()
		c.dicts[scale] = d
	}
	c.mu.Unlock()
	return datagen.XMark(scale).Queue(d, c.cfg.Seed), nil
}

// drop releases the materialized tree for a scale, keeping the dictionary.
func (c *docCache) drop(scale int) {
	c.mu.Lock()
	delete(c.trees, scale)
	c.mu.Unlock()
}

// queries picks n deterministic queries of the requested size from the
// document at the given scale.
func (c *docCache) queries(scale, size, n int) ([]*tree.Tree, error) {
	doc, _, err := c.tree(scale)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.cfg.Seed + int64(size)*1000 + int64(scale)))
	out := make([]*tree.Tree, n)
	for i := range out {
		q, err := datagen.QueryFromDocument(doc, rng, size)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

// timeIt runs f once and returns the wall-clock duration.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// peakHeapDuring runs f while sampling the Go heap and returns the peak
// HeapAlloc observed above the post-GC baseline (bytes). This mirrors the
// paper's Figure 10, which reports the memory used by the JVM during a
// run. Subtracting the baseline makes the measurement about f alone:
// whatever the harness retains from earlier runs (cached dictionaries,
// previously selected queries) would otherwise dominate small
// configurations and drown the algorithm's own footprint in noise.
func peakHeapDuring(f func() error) (uint64, error) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	baseline := base.HeapAlloc
	var peak uint64
	read := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	read()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				read()
			}
		}
	}()
	err := f()
	close(stop)
	wg.Wait()
	read()
	if peak < baseline {
		return 0, err
	}
	return peak - baseline, err
}

// Hist is a histogram over subtree sizes, the measurement unit of
// Figures 11 and 12.
type Hist struct {
	counts map[int]int
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{counts: map[int]int{}} }

// Add records one subtree of the given size.
func (h *Hist) Add(size int) { h.counts[size]++ }

// Count returns the number of subtrees of exactly the given size.
func (h *Hist) Count(size int) int { return h.counts[size] }

// Total returns the number of recorded subtrees.
func (h *Hist) Total() int {
	n := 0
	for _, c := range h.counts {
		n += c
	}
	return n
}

// MaxSize returns the largest recorded size (0 when empty).
func (h *Hist) MaxSize() int {
	mx := 0
	for s := range h.counts {
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Sizes returns the distinct recorded sizes in increasing order.
func (h *Hist) Sizes() []int {
	out := make([]int, 0, len(h.counts))
	for s := range h.counts {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// CSS returns the cumulative subtree size css(x) = Σ_{i≤x} i·f_i of
// Section VII-B.
func (h *Hist) CSS(x int) int64 {
	var sum int64
	for s, c := range h.counts {
		if s <= x {
			sum += int64(s) * int64(c)
		}
	}
	return sum
}

// LogBucket aggregates counts into the log-scale bins of Figure 11c:
// [1,10), [10,50), [50,100), [100,500), [500,1000), then decades.
func (h *Hist) LogBuckets() []Bucket {
	edges := []int{1, 10, 50, 100, 500, 1000, 10000, 100000, 1000000, 10000000, 100000000}
	out := make([]Bucket, 0, len(edges))
	for i := 0; i < len(edges); i++ {
		lo := edges[i]
		hi := 1 << 62
		if i+1 < len(edges) {
			hi = edges[i+1]
		}
		n := 0
		for s, c := range h.counts {
			if s >= lo && s < hi {
				n += c
			}
		}
		if n > 0 || i < 6 {
			out = append(out, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return out
}

// Bucket is one log-scale histogram bin.
type Bucket struct {
	Lo, Hi int // [Lo, Hi)
	Count  int
}

// probe adapts histograms to the core instrumentation interface.
type probe struct {
	relevant   *Hist
	candidates *Hist
	pruned     *Hist
}

func newProbe() *probe {
	return &probe{relevant: NewHist(), candidates: NewHist(), pruned: NewHist()}
}

func (p *probe) RelevantSubtree(size int) { p.relevant.Add(size) }
func (p *probe) Candidate(size int)       { p.candidates.Add(size) }
func (p *probe) Pruned(size int)          { p.pruned.Add(size) }

var _ core.Probe = (*probe)(nil)

// table writes a fixed-width row.
func table(w io.Writer, cols ...interface{}) {
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%12v", c)
	}
	fmt.Fprintln(w)
}
