//go:build !unix

package mmapio

// Map reads path into the heap on platforms without mmap support. Same
// interface and lifetime rules as the mapped path; Mapped() reports
// false.
func Map(path string) (*Region, error) { return ReadFile(path) }

func (r *Region) release() error {
	r.data = nil
	return nil
}
