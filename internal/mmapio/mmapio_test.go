package mmapio

import (
	"bytes"
	"crypto/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Map and ReadFile must serve identical bytes for the same file — the
// corpus relies on the two paths being interchangeable.
func TestMapReadFileEquivalence(t *testing.T) {
	want := make([]byte, 123457)
	if _, err := rand.Read(want); err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, want)

	m, err := Map(path)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	defer m.Close()
	h, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	defer h.Close()

	if !bytes.Equal(m.Bytes(), want) {
		t.Error("mapped bytes differ from file contents")
	}
	if !bytes.Equal(h.Bytes(), want) {
		t.Error("heap bytes differ from file contents")
	}
	if m.Len() != len(want) || h.Len() != len(want) {
		t.Errorf("Len: mapped %d, heap %d, want %d", m.Len(), h.Len(), len(want))
	}
	if h.Mapped() {
		t.Error("ReadFile region reports Mapped()")
	}
}

func TestEmptyFile(t *testing.T) {
	path := writeTemp(t, nil)
	for name, open := range map[string]func(string) (*Region, error){"Map": Map, "ReadFile": ReadFile} {
		r, err := open(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Len() != 0 {
			t.Errorf("%s: Len = %d, want 0", name, r.Len())
		}
		if err := r.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
	}
}

func TestMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope")
	if _, err := Map(path); err == nil {
		t.Error("Map of missing file succeeded")
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile of missing file succeeded")
	}
}

func TestCloseIdempotent(t *testing.T) {
	path := writeTemp(t, []byte("hello"))
	for name, open := range map[string]func(string) (*Region, error){"Map": Map, "ReadFile": ReadFile} {
		r, err := open(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 3; i++ {
			if err := r.Close(); err != nil {
				t.Errorf("%s: Close #%d: %v", name, i+1, err)
			}
		}
		var nilRegion *Region
		if err := nilRegion.Close(); err != nil {
			t.Errorf("nil Close: %v", err)
		}
	}
}

// The corpus removes and renames store files while queries may still be
// scanning a snapshot that references them; the mapping must keep
// serving the old bytes.
func TestReadableAfterUnlink(t *testing.T) {
	want := []byte("survives unlink")
	path := writeTemp(t, want)
	r, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Bytes(), want) {
		t.Error("bytes changed after unlink")
	}
}

// Concurrent readers over one region — the whole point of sharing a
// mapping across queries. Run under -race in CI.
func TestConcurrentReaders(t *testing.T) {
	data := make([]byte, 1<<16)
	for i := range data {
		data[i] = byte(i * 31)
	}
	path := writeTemp(t, data)
	r, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := r.Bytes()
			var sum byte
			for _, v := range b {
				sum += v
			}
			_ = sum
			if len(b) != len(data) {
				t.Errorf("reader saw %d bytes, want %d", len(b), len(data))
			}
		}()
	}
	wg.Wait()
}
