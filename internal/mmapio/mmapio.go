// Package mmapio maps files into memory read-only, with a portable
// read-into-heap fallback behind the same interface.
//
// It exists for the corpus serving path: persisted postorder stores are
// mapped once at corpus open and scanned zero-copy by every query, so a
// leaf can serve corpora whose stores exceed its heap — the kernel pages
// store bytes in and out on demand, cold start touches only the headers,
// and a scan allocates nothing for document bytes.
//
// Two implementations sit behind Map, selected by build tag:
//
//   - unix (linux, darwin, …): mmap(2) with PROT_READ. The file
//     descriptor is closed immediately after mapping; the mapping keeps
//     the inode alive, so the file may be renamed or unlinked (corpus
//     remove, quarantine) while readers are mid-scan.
//   - everything else: the file is read whole into the heap. Same
//     interface, same lifetime rules, no page-cache sharing.
//
// ReadFile always takes the heap path regardless of platform — the
// explicit fallback for callers that want to rule mmap out (tests pin
// byte-identity between the two).
//
// # Lifetime
//
// A Region's bytes are valid until Close. Close is idempotent and NOT
// implicitly serialized against readers: unmapping while another
// goroutine still reads the bytes is a use-after-free (SIGSEGV on the
// mmap path). Owners that cannot prove quiescence should simply drop the
// Region instead — a finalizer unmaps it once the garbage collector
// proves nothing references it anymore, which is exactly the "last
// in-flight query snapshot released" condition a serving corpus needs.
package mmapio

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Region is a read-only byte region backed by a file mapping or a heap
// copy of the file.
type Region struct {
	data   []byte
	mapped bool
	closed atomic.Bool
}

// Bytes returns the region's bytes. The slice must not be written to and
// must not be used after Close.
func (r *Region) Bytes() []byte { return r.data }

// Len returns the region's size in bytes.
func (r *Region) Len() int { return len(r.data) }

// Mapped reports whether the region is a live file mapping (true) or a
// heap copy (false). Gauges use it to report how many bytes a process
// serves without owning heap for them.
func (r *Region) Mapped() bool { return r.mapped }

// Close releases the region: the mapping is unmapped, or the heap copy
// is released to the collector. Idempotent. See the package comment for
// the quiescence requirement; prefer dropping the last reference when
// concurrent readers may exist.
func (r *Region) Close() error {
	if r == nil || r.closed.Swap(true) {
		return nil
	}
	return r.release()
}

// ReadFile returns a Region holding a heap copy of the file — the
// portable fallback path, available on every platform.
func ReadFile(path string) (*Region, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mmapio: %w", err)
	}
	return &Region{data: data}, nil
}
