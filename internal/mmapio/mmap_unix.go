//go:build unix

package mmapio

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// Map maps path read-only. The returned region's bytes are served by the
// page cache; the file descriptor is closed before Map returns, and the
// mapping keeps the underlying inode alive across rename and unlink. An
// empty file yields an empty unmapped region (mmap(2) rejects length 0).
func Map(path string) (*Region, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mmapio: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mmapio: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		return &Region{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapio: %s: %d bytes exceeds address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapio: mmap %s: %w", path, err)
	}
	r := &Region{data: data, mapped: true}
	// Unmap when the collector proves the region unreachable, so owners
	// may drop the last reference instead of proving reader quiescence
	// for an explicit Close (see the package comment).
	runtime.SetFinalizer(r, (*Region).finalize)
	return r, nil
}

func (r *Region) finalize() { _ = r.Close() }

func (r *Region) release() error {
	data := r.data
	r.data = nil
	if !r.mapped {
		return nil
	}
	runtime.SetFinalizer(r, nil)
	if err := syscall.Munmap(data); err != nil {
		return fmt.Errorf("mmapio: munmap: %w", err)
	}
	return nil
}
