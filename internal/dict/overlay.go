package dict

import (
	"fmt"
	"sync"
)

// Overlay is a copy-on-write dictionary view for request-scoped labels:
// reads fall through to a frozen base dictionary, and labels the base does
// not know intern locally with identifiers starting at the base's
// watermark (its Len at overlay creation). Because base identifiers are
// below the watermark and local ones at or above it, an overlay's
// identifier space extends the base's — ids interned through the overlay
// and ids interned in the base denote the same labels, so a query interned
// through an overlay compares directly against document labels interned in
// the base.
//
// Dropping an overlay (or calling Reset) releases all of its labels in
// O(1); nothing ever flows back into the base. This is what keeps a
// long-running server's shared dictionary bounded: documents contribute
// their own bounded label sets at ingest, while the unbounded stream of
// query labels lives and dies with per-request overlays.
//
// The base must not grow for the lifetime of the overlay — a frozen Base
// guarantees that; otherwise base and local identifiers would collide.
// NewOverlay panics if handed an unfrozen *Base still open for interning.
//
// An Overlay is safe for concurrent use. The hot read paths — interning or
// looking up a label the base knows, resolving an id below the watermark —
// never touch the overlay's lock; only request-local additions and reads
// of them synchronize.
type Overlay struct {
	base      Dict
	watermark int

	mu     sync.RWMutex
	ids    map[string]int // local additions, keyed by label; lazily allocated
	labels []string       // local labels; id = watermark + index
}

var _ Dict = (*Overlay)(nil)

// NewOverlay returns an empty overlay reading through base. The base must
// be quiescent (no new labels) for the overlay's lifetime; a *Base is
// required to be frozen.
func NewOverlay(base Dict) *Overlay {
	if base == nil {
		panic("dict: NewOverlay with nil base")
	}
	if b, ok := base.(*Base); ok && !b.Frozen() {
		panic("dict: NewOverlay over an unfrozen Base (Freeze it first: a growing base would collide with overlay ids)")
	}
	return &Overlay{base: base, watermark: base.Len()}
}

// Base returns the dictionary the overlay reads through.
func (o *Overlay) Base() Dict { return o.base }

// Watermark returns the first identifier the overlay assigns locally: the
// base's Len at overlay creation. Every id below it resolves in the base,
// every id at or above it is overlay-local.
func (o *Overlay) Watermark() int { return o.watermark }

// Added returns the number of labels interned locally so far — the
// overlay churn a request caused.
func (o *Overlay) Added() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.labels)
}

// Intern returns the identifier for label: the base's id when the base
// knows the label (no lock, no allocation), the local id otherwise,
// assigning a fresh one above the watermark on first use.
func (o *Overlay) Intern(label string) int {
	if id, ok := o.base.Lookup(label); ok {
		return id
	}
	o.mu.RLock()
	id, ok := o.ids[label]
	o.mu.RUnlock()
	if ok {
		return id
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if id, ok := o.ids[label]; ok {
		return id
	}
	if o.ids == nil {
		o.ids = make(map[string]int)
	}
	id = o.watermark + len(o.labels)
	o.ids[label] = id
	o.labels = append(o.labels, label)
	return id
}

// Lookup returns the identifier for label and whether the base or the
// overlay knows it. It never modifies the overlay.
func (o *Overlay) Lookup(label string) (int, bool) {
	if id, ok := o.base.Lookup(label); ok {
		return id, true
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	id, ok := o.ids[label]
	return id, ok
}

// Label resolves an identifier: below the watermark in the base (no
// lock), at or above it locally. It panics for ids neither holds.
func (o *Overlay) Label(id int) string {
	if id < o.watermark {
		return o.base.Label(id)
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	if id-o.watermark >= len(o.labels) {
		panic(fmt.Sprintf("dict: unknown label id %d (overlay holds ids %d..%d)", id, o.watermark, o.watermark+len(o.labels)-1))
	}
	return o.labels[id-o.watermark]
}

// Len returns the total number of labels visible through the overlay:
// the base watermark plus the local additions.
func (o *Overlay) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.watermark + len(o.labels)
}

// Reset discards every local addition, releasing the request's labels in
// O(1) while keeping the overlay (and its map capacity) reusable for a
// later request over the same base. Identifiers previously handed out for
// local labels become invalid; trees still holding them must not outlive
// the reset.
func (o *Overlay) Reset() {
	o.mu.Lock()
	defer o.mu.Unlock()
	clear(o.ids)
	o.labels = o.labels[:0]
}
