package dict

import "testing"

func TestInternAssignsDenseIDs(t *testing.T) {
	d := New()
	if got := d.Intern("a"); got != 0 {
		t.Errorf("first id = %d, want 0", got)
	}
	if got := d.Intern("b"); got != 1 {
		t.Errorf("second id = %d, want 1", got)
	}
	if got := d.Intern("a"); got != 0 {
		t.Errorf("re-intern = %d, want 0", got)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestLabelRoundTrip(t *testing.T) {
	d := New()
	labels := []string{"dblp", "article", "", "with space", "ünïcödé"}
	for _, l := range labels {
		id := d.Intern(l)
		if got := d.Label(id); got != l {
			t.Errorf("Label(Intern(%q)) = %q", l, got)
		}
	}
}

func TestLookup(t *testing.T) {
	d := New()
	d.Intern("x")
	if id, ok := d.Lookup("x"); !ok || id != 0 {
		t.Errorf("Lookup(x) = %d,%v", id, ok)
	}
	if _, ok := d.Lookup("y"); ok {
		t.Error("Lookup of unknown label reported ok")
	}
	if d.Len() != 1 {
		t.Error("Lookup must not intern")
	}
}

func TestLabelPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Label(99) should panic")
		}
	}()
	New().Label(99)
}
