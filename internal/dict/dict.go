// Package dict implements a label dictionary that interns node labels as
// dense integer identifiers.
//
// The TASM paper (Section VII) uses "a dictionary to assign unique integer
// identifiers to node labels (element/attribute tags as well as text
// content). The integer identifiers provide compression and faster
// node-to-node comparisons." A Dict is shared between a query and a
// document so that equal labels map to equal identifiers.
package dict

import (
	"fmt"
	"sync"
)

// Dict interns strings as dense non-negative integer identifiers.
// The zero value is not ready for use; call New.
//
// Dict is safe for concurrent use: a corpus server interns labels from
// concurrent ingests and query parses into one shared dictionary.
// Identifiers are append-only — an id, once assigned, never changes — so
// readers holding ids from earlier operations stay valid.
type Dict struct {
	mu     sync.RWMutex
	ids    map[string]int
	labels []string
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{ids: make(map[string]int)}
}

// Intern returns the identifier for label, assigning a fresh one on first
// use. Identifiers are assigned densely starting at 0.
func (d *Dict) Intern(label string) int {
	d.mu.RLock()
	id, ok := d.ids[label]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[label]; ok {
		return id
	}
	id = len(d.labels)
	d.ids[label] = id
	d.labels = append(d.labels, label)
	return id
}

// Lookup returns the identifier for label and whether it is known.
// Unlike Intern it never modifies the dictionary.
func (d *Dict) Lookup(label string) (int, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[label]
	return id, ok
}

// Label returns the string for an identifier previously returned by Intern.
// It panics if id was never assigned, which always indicates a programming
// error (an identifier from a different dictionary).
func (d *Dict) Label(id int) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= len(d.labels) {
		panic(fmt.Sprintf("dict: unknown label id %d (dictionary has %d entries)", id, len(d.labels)))
	}
	return d.labels[id]
}

// Len returns the number of distinct labels interned so far.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.labels)
}
