// Package dict implements label dictionaries that intern node labels as
// dense integer identifiers.
//
// The TASM paper (Section VII) uses "a dictionary to assign unique integer
// identifiers to node labels (element/attribute tags as well as text
// content). The integer identifiers provide compression and faster
// node-to-node comparisons." A dictionary is shared between a query and a
// document so that equal labels map to equal identifiers.
//
// # Dictionary lifecycle
//
// Dict is the interface the rest of the system works against. Two
// implementations exist:
//
//   - Base is the mutable dictionary: labels intern freely, identifiers
//     are assigned densely from 0, and concurrent use is safe. A Base can
//     be frozen (Freeze), after which no new label may be interned and
//     every read is lock-free — the shape a corpus dictionary takes after
//     ingest, shareable across any number of concurrent scans.
//   - Overlay is a copy-on-write view over a frozen (or otherwise
//     quiescent) base: reads fall through to the base, labels the base
//     does not know intern locally with identifiers above the base's
//     watermark, and dropping the overlay releases every request-local
//     label in O(1). One overlay per request keeps query labels out of
//     the shared dictionary entirely.
package dict

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Dict interns strings as dense non-negative integer identifiers.
type Dict interface {
	// Intern returns the identifier for label, assigning a fresh one on
	// first use. Identifiers are dense: the n-th distinct label gets n-1.
	Intern(label string) int
	// Lookup returns the identifier for label and whether it is known.
	// Unlike Intern it never modifies the dictionary.
	Lookup(label string) (int, bool)
	// Label returns the string for an identifier previously returned by
	// Intern. It panics if id was never assigned, which always indicates
	// a programming error (an identifier from a different dictionary).
	Label(id int) string
	// Len returns the number of distinct labels interned so far.
	Len() int
}

// Base is the mutable label dictionary. The zero value is not ready for
// use; call New.
//
// Base is safe for concurrent use: a corpus server interns labels from
// concurrent ingests and parses into one shared dictionary. Identifiers
// are append-only — an id, once assigned, never changes — so readers
// holding ids from earlier operations stay valid.
//
// Once Freeze is called the dictionary becomes immutable: interning a new
// label panics, and every read skips the lock entirely, so a frozen Base
// is shareable lock-free across any number of goroutines.
type Base struct {
	frozen atomic.Bool
	mu     sync.RWMutex
	ids    map[string]int
	labels []string
}

var _ Dict = (*Base)(nil)

// New returns an empty mutable dictionary.
func New() *Base {
	return &Base{ids: make(map[string]int)}
}

// Intern returns the identifier for label, assigning a fresh one on first
// use. Identifiers are assigned densely starting at 0. Interning a label
// a frozen dictionary does not already hold panics; read-through interning
// of known labels stays valid after Freeze.
func (d *Base) Intern(label string) int {
	if d.frozen.Load() {
		id, ok := d.ids[label]
		if !ok {
			panic(fmt.Sprintf("dict: Intern of new label %q on frozen dictionary (use an Overlay for request-scoped labels)", label))
		}
		return id
	}
	d.mu.RLock()
	id, ok := d.ids[label]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[label]; ok {
		return id
	}
	// Re-check under the write lock: a Freeze that completed between the
	// read and write locks must win, or this insert would mutate maps
	// that frozen readers are already accessing lock-free.
	if d.frozen.Load() {
		panic(fmt.Sprintf("dict: Intern of new label %q on frozen dictionary (use an Overlay for request-scoped labels)", label))
	}
	id = len(d.labels)
	d.ids[label] = id
	d.labels = append(d.labels, label)
	return id
}

// Lookup returns the identifier for label and whether it is known.
// Unlike Intern it never modifies the dictionary.
func (d *Base) Lookup(label string) (int, bool) {
	if d.frozen.Load() {
		id, ok := d.ids[label]
		return id, ok
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[label]
	return id, ok
}

// Label returns the string for an identifier previously returned by Intern.
// It panics if id was never assigned, which always indicates a programming
// error (an identifier from a different dictionary).
func (d *Base) Label(id int) string {
	if d.frozen.Load() {
		if id < 0 || id >= len(d.labels) {
			panic(fmt.Sprintf("dict: unknown label id %d (dictionary has %d entries)", id, len(d.labels)))
		}
		return d.labels[id]
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= len(d.labels) {
		panic(fmt.Sprintf("dict: unknown label id %d (dictionary has %d entries)", id, len(d.labels)))
	}
	return d.labels[id]
}

// Len returns the number of distinct labels interned so far.
func (d *Base) Len() int {
	if d.frozen.Load() {
		return len(d.labels)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.labels)
}

// Freeze makes the dictionary immutable: interning any new label panics
// from now on, and reads stop taking the lock (the atomic flag publishes
// the final map and slice to every goroutine that observes it). Freezing
// is irreversible; mutate a Clone instead.
func (d *Base) Freeze() *Base {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen.Store(true)
	return d
}

// Frozen reports whether Freeze has been called.
func (d *Base) Frozen() bool { return d.frozen.Load() }

// Clone returns a mutable deep copy holding the same labels with the same
// identifiers. It is how an ingest extends a frozen corpus dictionary:
// clone, intern the new document's labels, freeze, publish — readers of
// the old dictionary are never disturbed, and existing identifiers remain
// valid in the clone.
func (d *Base) Clone() *Base {
	if !d.frozen.Load() {
		d.mu.RLock()
		defer d.mu.RUnlock()
	}
	c := &Base{ids: make(map[string]int, len(d.ids))}
	for l, id := range d.ids {
		c.ids[l] = id
	}
	c.labels = append(make([]string, 0, len(d.labels)), d.labels...)
	return c
}

// Compatible reports whether identifiers interned in a and b are
// commensurable — the same dictionary, or one an overlay reading directly
// through the other, so that equal ids always denote equal labels. Two
// distinct overlays over one base are NOT compatible: their local
// identifiers occupy the same range above the watermark and may denote
// different labels.
func Compatible(a, b Dict) bool {
	if a == b {
		return true
	}
	if o, ok := a.(*Overlay); ok && o.base == b {
		return true
	}
	if o, ok := b.(*Overlay); ok && o.base == a {
		return true
	}
	return false
}
