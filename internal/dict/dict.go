// Package dict implements a label dictionary that interns node labels as
// dense integer identifiers.
//
// The TASM paper (Section VII) uses "a dictionary to assign unique integer
// identifiers to node labels (element/attribute tags as well as text
// content). The integer identifiers provide compression and faster
// node-to-node comparisons." A Dict is shared between a query and a
// document so that equal labels map to equal identifiers.
package dict

import "fmt"

// Dict interns strings as dense non-negative integer identifiers.
// The zero value is not ready for use; call New.
//
// Dict is not safe for concurrent use. TASM runs are single-threaded per
// (query, document) pair, mirroring the single-thread setup of the paper's
// evaluation; callers that share a Dict across goroutines must synchronize.
type Dict struct {
	ids    map[string]int
	labels []string
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{ids: make(map[string]int)}
}

// Intern returns the identifier for label, assigning a fresh one on first
// use. Identifiers are assigned densely starting at 0.
func (d *Dict) Intern(label string) int {
	if id, ok := d.ids[label]; ok {
		return id
	}
	id := len(d.labels)
	d.ids[label] = id
	d.labels = append(d.labels, label)
	return id
}

// Lookup returns the identifier for label and whether it is known.
// Unlike Intern it never modifies the dictionary.
func (d *Dict) Lookup(label string) (int, bool) {
	id, ok := d.ids[label]
	return id, ok
}

// Label returns the string for an identifier previously returned by Intern.
// It panics if id was never assigned, which always indicates a programming
// error (an identifier from a different dictionary).
func (d *Dict) Label(id int) string {
	if id < 0 || id >= len(d.labels) {
		panic(fmt.Sprintf("dict: unknown label id %d (dictionary has %d entries)", id, len(d.labels)))
	}
	return d.labels[id]
}

// Len returns the number of distinct labels interned so far.
func (d *Dict) Len() int { return len(d.labels) }
