package dict

import (
	"fmt"
	"sync"
	"testing"
)

func TestOverlayReadThrough(t *testing.T) {
	b := New()
	a := b.Intern("a")
	c := b.Intern("c")
	b.Freeze()
	o := NewOverlay(b)
	if got := o.Intern("a"); got != a {
		t.Errorf("overlay Intern(a) = %d, want base id %d", got, a)
	}
	if got, ok := o.Lookup("c"); !ok || got != c {
		t.Errorf("overlay Lookup(c) = %d,%v, want %d,true", got, ok, c)
	}
	if o.Added() != 0 {
		t.Errorf("read-through interning added %d local labels", o.Added())
	}
}

func TestOverlayLocalIDsAboveWatermark(t *testing.T) {
	b := New()
	b.Intern("a")
	b.Intern("b")
	b.Freeze()
	o := NewOverlay(b)
	if o.Watermark() != 2 {
		t.Fatalf("watermark = %d, want 2", o.Watermark())
	}
	x := o.Intern("x")
	y := o.Intern("y")
	if x != 2 || y != 3 {
		t.Errorf("local ids = %d,%d, want 2,3", x, y)
	}
	if got := o.Intern("x"); got != x {
		t.Errorf("re-intern x = %d, want %d", got, x)
	}
	if o.Label(x) != "x" || o.Label(0) != "a" {
		t.Errorf("Label resolution wrong: %q %q", o.Label(x), o.Label(0))
	}
	if o.Len() != 4 {
		t.Errorf("Len = %d, want 4", o.Len())
	}
	if o.Added() != 2 {
		t.Errorf("Added = %d, want 2", o.Added())
	}
	if b.Len() != 2 {
		t.Errorf("overlay interning grew the base to %d labels", b.Len())
	}
	if _, ok := b.Lookup("x"); ok {
		t.Error("local label leaked into the base")
	}
}

func TestOverlayReset(t *testing.T) {
	b := New()
	b.Intern("a")
	b.Freeze()
	o := NewOverlay(b)
	o.Intern("x")
	o.Reset()
	if o.Added() != 0 || o.Len() != 1 {
		t.Errorf("after Reset: Added=%d Len=%d, want 0,1", o.Added(), o.Len())
	}
	// Ids are re-assigned from the watermark after a reset.
	if got := o.Intern("y"); got != 1 {
		t.Errorf("post-reset intern = %d, want 1", got)
	}
}

func TestOverlayPanicsOnUnfrozenBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewOverlay over an unfrozen Base should panic")
		}
	}()
	NewOverlay(New())
}

func TestFrozenBasePanicsOnNewLabel(t *testing.T) {
	b := New()
	b.Intern("a")
	b.Freeze()
	if got := b.Intern("a"); got != 0 {
		t.Errorf("frozen read-through Intern = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intern of a new label on a frozen dictionary should panic")
		}
	}()
	b.Intern("new")
}

func TestCloneExtendsFrozenBase(t *testing.T) {
	b := New()
	b.Intern("a")
	b.Intern("b")
	b.Freeze()
	c := b.Clone()
	if c.Frozen() {
		t.Fatal("clone of a frozen dictionary must be mutable")
	}
	if got := c.Intern("c"); got != 2 {
		t.Errorf("clone assigned id %d for a new label, want 2", got)
	}
	if got := c.Intern("a"); got != 0 {
		t.Errorf("clone lost existing id: Intern(a) = %d, want 0", got)
	}
	if b.Len() != 2 {
		t.Errorf("mutating the clone changed the original (len %d)", b.Len())
	}
}

func TestCompatible(t *testing.T) {
	b := New()
	b.Freeze()
	other := New()
	o := NewOverlay(b)
	cases := []struct {
		a, c Dict
		want bool
	}{
		{b, b, true},
		{o, o, true},
		{o, b, true},
		{b, o, true},
		{b, other, false},
		{o, other, false},
		// Two distinct overlays over one base are NOT compatible: their
		// local ids occupy the same range and may denote different labels.
		{NewOverlay(b), o, false},
	}
	for i, tc := range cases {
		if got := Compatible(tc.a, tc.c); got != tc.want {
			t.Errorf("case %d: Compatible = %v, want %v", i, got, tc.want)
		}
	}
}

// TestConcurrentOverlay exercises the overlay under the race detector:
// concurrent read-through interning of base labels, concurrent local
// additions, and concurrent id resolution.
func TestConcurrentOverlay(t *testing.T) {
	b := New()
	for i := 0; i < 64; i++ {
		b.Intern(fmt.Sprintf("base%d", i))
	}
	b.Freeze()
	o := NewOverlay(b)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := o.Intern(fmt.Sprintf("base%d", i%64))
				if o.Label(id) != fmt.Sprintf("base%d", i%64) {
					t.Errorf("base label roundtrip broke for id %d", id)
					return
				}
				lid := o.Intern(fmt.Sprintf("local%d", i%17))
				if lid < o.Watermark() {
					t.Errorf("local label got base id %d", lid)
					return
				}
				o.Lookup(fmt.Sprintf("local%d", (i+5)%23))
				o.Len()
			}
		}(g)
	}
	wg.Wait()
	if o.Added() != 17 {
		t.Errorf("Added = %d, want 17", o.Added())
	}
}

// TestConcurrentBase exercises the mutable base dictionary under the race
// detector, then freezes it under concurrent readers' visibility rules
// (freeze happens between the phases, never during).
func TestConcurrentBase(t *testing.T) {
	b := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := b.Intern(fmt.Sprintf("l%d", i%50))
				_ = b.Label(id)
				b.Lookup(fmt.Sprintf("l%d", (i+1)%60))
				b.Len()
			}
		}(g)
	}
	wg.Wait()
	b.Freeze()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if id, ok := b.Lookup(fmt.Sprintf("l%d", i%50)); !ok || b.Label(id) == "" {
					t.Error("frozen lookup failed")
					return
				}
			}
		}()
	}
	wg.Wait()
}
