package datagen

import (
	"math/rand"

	"tasm/internal/tree"
)

// PSD returns a protein-sequence-database document shaped like the
// PSD7003 corpus of Section VII-B (Georgetown Protein Information
// Resource): a ProteinDatabase root with ProteinEntry records of moderate
// nesting, height 7. Each entry has roughly 35–70 nodes.
func PSD(entries int) *Dataset {
	return &Dataset{
		name: "psd",
		root: group{
			label: "ProteinDatabase",
			count: entries,
			make:  psdEntry,
		},
	}
}

func psdEntry(rng *rand.Rand, i int) *tree.Node {
	e := tree.NewNode("ProteinEntry",
		tree.NewNode("header",
			tree.NewNode("uid", tree.NewNode("PSD"+itoa(100000+i))),
			tree.NewNode("accession", tree.NewNode("A"+itoa(10000+rng.Intn(89999)))),
			tree.NewNode("created_date", tree.NewNode(yearStr(rng))),
		),
		tree.NewNode("protein",
			tree.NewNode("name", tree.NewNode(phrase(rng))),
			tree.NewNode("classification",
				tree.NewNode("superfamily", tree.NewNode(phrase(rng))),
			),
		),
		tree.NewNode("organism",
			tree.NewNode("source", tree.NewNode(word(rng)+" "+word(rng))),
			tree.NewNode("common", tree.NewNode(word(rng))),
		),
	)
	// 1–3 literature references with nested author lists.
	for r := 0; r < 1+rng.Intn(3); r++ {
		ref := tree.NewNode("reference")
		refinfo := tree.NewNode("refinfo",
			tree.NewNode("refid", tree.NewNode("R"+itoa(rng.Intn(100000)))),
		)
		authors := tree.NewNode("authors")
		for a := 0; a < 1+rng.Intn(4); a++ {
			authors.AddChild(tree.NewNode("author", tree.NewNode(personName(rng))))
		}
		refinfo.AddChild(authors)
		refinfo.AddChild(tree.NewNode("citation", tree.NewNode(phrase(rng))))
		refinfo.AddChild(tree.NewNode("year", tree.NewNode(yearStr(rng))))
		ref.AddChild(refinfo)
		if rng.Intn(2) == 0 {
			ref.AddChild(tree.NewNode("accinfo",
				tree.NewNode("mol-type", tree.NewNode("complete cds")),
			))
		}
		e.AddChild(ref)
	}
	// Features: regions and sites within the sequence.
	if rng.Intn(3) > 0 {
		ft := tree.NewNode("feature-table")
		for f := 0; f < 1+rng.Intn(3); f++ {
			ft.AddChild(tree.NewNode("feature",
				tree.NewNode("feature-type", tree.NewNode(word(rng))),
				tree.NewNode("description", tree.NewNode(phrase(rng))),
				tree.NewNode("seq-spec", tree.NewNode(itoa(1+rng.Intn(200))+"-"+itoa(200+rng.Intn(300)))),
			))
		}
		e.AddChild(ft)
	}
	e.AddChild(tree.NewNode("summary",
		tree.NewNode("length", tree.NewNode(itoa(100+rng.Intn(900)))),
	))
	e.AddChild(tree.NewNode("sequence", tree.NewNode(aminoSequence(rng, 30+rng.Intn(40)))))
	return e
}
