// Package datagen generates the synthetic stand-ins for the paper's
// evaluation corpora: XMark auction documents (Section VII-A), and
// DBLP-like and PSD-like documents (Section VII-B). The real corpora are
// multi-gigabyte downloads unavailable offline; these generators preserve
// the structural properties the experiments depend on — node count linear
// in the scale parameter, constant height, shallow-and-wide data-centric
// shape — as documented in DESIGN.md.
//
// Documents are produced as postorder queues by a pull-based emitter whose
// memory is bounded by one record plus the wrapper stack, so the memory
// experiments (Figure 10) measure the algorithms rather than the
// generator. All generation is deterministic in (dataset, scale, seed).
package datagen

import (
	"fmt"
	"io"
	"math/rand"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// group is one wrapper element of a document plan: either an inner node
// with child groups, or a leaf group producing count records.
type group struct {
	label string
	kids  []group
	count int
	make  func(rng *rand.Rand, i int) *tree.Node
}

// Dataset is a generatable document family.
type Dataset struct {
	name string
	root group
}

// Name returns the dataset family name ("xmark", "dblp", "psd").
func (ds *Dataset) Name() string { return ds.name }

// Queue returns a streaming postorder queue of the document, interning
// labels in d. Generation is deterministic in seed.
func (ds *Dataset) Queue(d dict.Dict, seed int64) postorder.Queue {
	return &genQueue{
		dict:  d,
		rng:   rand.New(rand.NewSource(seed)),
		stack: []*frame{{g: &ds.root}},
	}
}

// Tree materializes the whole document; intended for small scales and for
// tests. Large documents should stay streamed.
func (ds *Dataset) Tree(d dict.Dict, seed int64) (*tree.Tree, error) {
	items, err := postorder.Collect(ds.Queue(d, seed))
	if err != nil {
		return nil, err
	}
	labels := make([]int, len(items))
	sizes := make([]int, len(items))
	for i, it := range items {
		labels[i] = it.Label
		sizes[i] = it.Size
	}
	return tree.FromPostorder(d, labels, sizes)
}

// Nodes counts the nodes of the document by draining one generation pass.
func (ds *Dataset) Nodes(seed int64) (int, error) {
	d := dict.New()
	q := ds.Queue(d, seed)
	n := 0
	for {
		_, err := q.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// frame is the generator state for one open wrapper group.
type frame struct {
	g       *group
	kidIdx  int // next child group to open
	recIdx  int // next record to emit
	emitted int // nodes emitted inside this group so far
}

// genQueue is the pull-based postorder emitter.
type genQueue struct {
	dict  dict.Dict
	rng   *rand.Rand
	stack []*frame
	out   []postorder.Item
	pos   int
}

// Next implements postorder.Queue.
func (q *genQueue) Next() (postorder.Item, error) {
	for {
		if q.pos < len(q.out) {
			it := q.out[q.pos]
			q.pos++
			return it, nil
		}
		q.out = q.out[:0]
		q.pos = 0
		if len(q.stack) == 0 {
			return postorder.Item{}, io.EOF
		}
		q.step()
	}
}

// step advances the generator: open the next child group, emit the next
// record, or close the current group.
func (q *genQueue) step() {
	top := q.stack[len(q.stack)-1]
	switch {
	case top.kidIdx < len(top.g.kids):
		kid := &top.g.kids[top.kidIdx]
		top.kidIdx++
		q.stack = append(q.stack, &frame{g: kid})
	case top.recIdx < top.g.count:
		rec := top.g.make(q.rng, top.recIdx)
		top.recIdx++
		n := q.emitNode(rec)
		top.emitted += n
	default:
		// Close the group: emit its own node covering everything inside.
		q.out = append(q.out, postorder.Item{
			Label: q.dict.Intern(top.g.label),
			Size:  top.emitted + 1,
		})
		q.stack = q.stack[:len(q.stack)-1]
		if len(q.stack) > 0 {
			q.stack[len(q.stack)-1].emitted += top.emitted + 1
		}
	}
}

// emitNode appends the postorder items of a materialized record subtree
// and returns its node count.
func (q *genQueue) emitNode(n *tree.Node) int {
	size := 0
	for _, c := range n.Children {
		size += q.emitNode(c)
	}
	size++
	q.out = append(q.out, postorder.Item{Label: q.dict.Intern(n.Label), Size: size})
	return size
}

// QueryFromDocument selects a random existing subtree of doc with size as
// close as possible to want — the paper's query workload ("queries are
// randomly chosen subtrees ... with sizes varying from 4 to 64 nodes").
// Subtrees within 25% of the requested size are preferred; ties and
// misses fall back to the nearest size. The returned query is an
// independent tree sharing doc's dictionary.
func QueryFromDocument(doc *tree.Tree, rng *rand.Rand, want int) (*tree.Tree, error) {
	if want < 1 {
		return nil, fmt.Errorf("datagen: query size must be ≥ 1, got %d", want)
	}
	var exact []int
	best, bestDiff := -1, 1<<62
	lo, hi := want, want+want/4
	for i := 0; i < doc.Size(); i++ {
		sz := doc.SubtreeSize(i)
		if sz >= lo && sz <= hi {
			exact = append(exact, i)
		}
		diff := sz - want
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = i, diff
		}
	}
	if len(exact) > 0 {
		return doc.Subtree(exact[rng.Intn(len(exact))]), nil
	}
	return doc.Subtree(best), nil
}
