package datagen

import (
	"io"
	"math/rand"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/postorder"
)

func TestDatasetsWellFormed(t *testing.T) {
	for _, ds := range []*Dataset{DBLP(50), XMark(1), PSD(20)} {
		t.Run(ds.Name(), func(t *testing.T) {
			d := dict.New()
			n, err := postorder.Validate(ds.Queue(d, 1))
			if err != nil {
				t.Fatalf("queue not well-formed: %v", err)
			}
			if n < 10 {
				t.Fatalf("only %d nodes generated", n)
			}
		})
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	for _, mk := range []func() *Dataset{
		func() *Dataset { return DBLP(30) },
		func() *Dataset { return XMark(1) },
		func() *Dataset { return PSD(10) },
	} {
		d1, d2 := dict.New(), dict.New()
		a, err := postorder.Collect(mk().Queue(d1, 7))
		if err != nil {
			t.Fatal(err)
		}
		b, err := postorder.Collect(mk().Queue(d2, 7))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if d1.Label(a[i].Label) != d2.Label(b[i].Label) || a[i].Size != b[i].Size {
				t.Fatalf("item %d differs", i)
			}
		}
		// A different seed must give a different document.
		c, err := postorder.Collect(mk().Queue(dict.New(), 8))
		if err != nil {
			t.Fatal(err)
		}
		if len(c) == len(a) {
			same := true
			for i := range a {
				if a[i].Size != c[i].Size {
					same = false
					break
				}
			}
			if same {
				t.Error("different seeds produced structurally identical documents")
			}
		}
	}
}

func TestXMarkScalesLinearly(t *testing.T) {
	n1, err := XMark(1).Nodes(1)
	if err != nil {
		t.Fatal(err)
	}
	n4, err := XMark(4).Nodes(1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(n4) / float64(n1)
	if ratio < 3.3 || ratio > 4.7 {
		t.Errorf("XMark(4)/XMark(1) = %d/%d = %.2f, want ≈ 4", n4, n1, ratio)
	}
}

func TestXMarkConstantHeight(t *testing.T) {
	d := dict.New()
	t1, err := XMark(1).Tree(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := XMark(3).Tree(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	h1, h3 := t1.Height(), t3.Height()
	if h1 < 8 || h1 > 16 {
		t.Errorf("XMark height = %d, want a two-digit-ish constant like the paper's 13", h1)
	}
	if h3 != h1 {
		t.Errorf("height varies with scale: %d vs %d", h1, h3)
	}
}

func TestDBLPShape(t *testing.T) {
	d := dict.New()
	tr, err := DBLP(300).Tree(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h := tr.Height(); h < 3 || h > 6 {
		t.Errorf("DBLP height = %d, want shallow (3–6)", h)
	}
	if f := tr.Fanout(tr.Root()); f != 300 {
		t.Errorf("DBLP root fanout = %d, want 300 records", f)
	}
	// The paper quotes ~15 nodes per article; allow a broad band.
	avg := float64(tr.Size()-1) / 300
	if avg < 7 || avg > 25 {
		t.Errorf("average record size = %.1f, want within [7,25]", avg)
	}
}

func TestPSDShape(t *testing.T) {
	d := dict.New()
	tr, err := PSD(50).Tree(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h := tr.Height(); h < 5 || h > 9 {
		t.Errorf("PSD height = %d, want ≈ 7", h)
	}
	if f := tr.Fanout(tr.Root()); f != 50 {
		t.Errorf("PSD root fanout = %d, want 50", f)
	}
}

func TestQueueStreamsWithoutMaterializing(t *testing.T) {
	// Drain a large document item by item; the point is that this
	// terminates with bounded buffers (the emitter holds one record at a
	// time), and the final root item covers everything.
	d := dict.New()
	q := XMark(2).Queue(d, 5)
	n := 0
	var last postorder.Item
	for {
		it, err := q.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		last = it
	}
	if last.Size != n {
		t.Errorf("root item size %d != node count %d", last.Size, n)
	}
	if d.Label(last.Label) != "site" {
		t.Errorf("root label = %s, want site", d.Label(last.Label))
	}
}

func TestQueryFromDocument(t *testing.T) {
	d := dict.New()
	doc, err := XMark(1).Tree(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, want := range []int{4, 8, 16, 32, 64} {
		q, err := QueryFromDocument(doc, rng, want)
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("size %d: invalid query: %v", want, err)
		}
		// Exact-window hits are preferred, but the generator may fall
		// back to the nearest available subtree size.
		if q.Size() < want/2 || q.Size() > 2*want {
			t.Errorf("size %d: got query of %d nodes", want, q.Size())
		}
	}
	if _, err := QueryFromDocument(doc, rng, 0); err == nil {
		t.Error("size 0 should error")
	}
}
