package datagen

import (
	"math/rand"

	"tasm/internal/tree"
)

// XMark returns an auction-site document following the XMark benchmark
// schema used for the scalability experiments of Section VII-A: a site
// root with six regional item listings, categories, people, and open and
// closed auctions. Like the original generator, the node count grows
// linearly with the scale factor while the document height stays constant
// (the paper reports height 13 for all XMark sizes; the deepest path here
// is site/regions/region/item/description/parlist/listitem/parlist/
// listitem/text/keyword/emph plus the text leaf).
//
// scale 1 yields roughly 30k nodes; the paper's 112MB base document has
// 3.4M nodes, so one paper-MB corresponds to about scale 0.27 here (the
// substitution is documented in DESIGN.md).
func XMark(scale int) *Dataset {
	if scale < 1 {
		scale = 1
	}
	regions := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	// Items are distributed over the regions like in XMark (europe and
	// namerica get the bulk).
	itemShare := map[string]int{
		"africa": 10, "asia": 20, "australia": 10,
		"europe": 60, "namerica": 60, "samerica": 15,
	}
	regionGroups := make([]group, len(regions))
	for i, r := range regions {
		regionGroups[i] = group{label: r, count: itemShare[r] * scale, make: xmarkItem}
	}
	return &Dataset{
		name: "xmark",
		root: group{
			label: "site",
			kids: []group{
				{label: "regions", kids: regionGroups},
				{label: "categories", count: 25 * scale, make: xmarkCategory},
				{label: "catgraph", count: 25 * scale, make: xmarkEdge},
				{label: "people", count: 100 * scale, make: xmarkPerson},
				{label: "open_auctions", count: 50 * scale, make: xmarkOpenAuction},
				{label: "closed_auctions", count: 40 * scale, make: xmarkClosedAuction},
			},
		},
	}
}

// xmarkText builds the recursive text/parlist structure that gives XMark
// documents their depth. depth ≥ 1.
func xmarkParlist(rng *rand.Rand, depth int) *tree.Node {
	pl := tree.NewNode("parlist")
	for i := 0; i < 1+rng.Intn(2); i++ {
		li := tree.NewNode("listitem")
		if depth > 1 && rng.Intn(3) == 0 {
			li.AddChild(xmarkParlist(rng, depth-1))
		} else {
			txt := tree.NewNode("text", tree.NewNode(phrase(rng)))
			if rng.Intn(3) == 0 {
				txt.AddChild(tree.NewNode("keyword", tree.NewNode(word(rng), tree.NewNode("emph", tree.NewNode(word(rng))))))
			}
			li.AddChild(txt)
		}
		pl.AddChild(li)
	}
	return pl
}

func xmarkDescription(rng *rand.Rand) *tree.Node {
	d := tree.NewNode("description")
	if rng.Intn(2) == 0 {
		d.AddChild(xmarkParlist(rng, 2))
	} else {
		d.AddChild(tree.NewNode("text", tree.NewNode(phrase(rng))))
	}
	return d
}

func xmarkItem(rng *rand.Rand, i int) *tree.Node {
	item := tree.NewNode("item",
		tree.NewNode("location", tree.NewNode(word(rng))),
		tree.NewNode("quantity", tree.NewNode(itoa(1+rng.Intn(10)))),
		tree.NewNode("name", tree.NewNode(phrase(rng))),
		tree.NewNode("payment", tree.NewNode(word(rng))),
		xmarkDescription(rng),
		tree.NewNode("shipping", tree.NewNode(word(rng))),
	)
	mail := tree.NewNode("mailbox")
	for m := 0; m < rng.Intn(3); m++ {
		mail.AddChild(tree.NewNode("mail",
			tree.NewNode("from", tree.NewNode(personName(rng))),
			tree.NewNode("to", tree.NewNode(personName(rng))),
			tree.NewNode("date", tree.NewNode(yearStr(rng))),
			tree.NewNode("text", tree.NewNode(phrase(rng))),
		))
	}
	item.AddChild(mail)
	return item
}

func xmarkCategory(rng *rand.Rand, i int) *tree.Node {
	return tree.NewNode("category",
		tree.NewNode("name", tree.NewNode(phrase(rng))),
		xmarkDescription(rng),
	)
}

func xmarkEdge(rng *rand.Rand, i int) *tree.Node {
	return tree.NewNode("edge",
		tree.NewNode("from", tree.NewNode("category"+itoa(rng.Intn(100)))),
		tree.NewNode("to", tree.NewNode("category"+itoa(rng.Intn(100)))),
	)
}

func xmarkPerson(rng *rand.Rand, i int) *tree.Node {
	// Labels draw from bounded vocabularies, as in the real corpora where
	// names, hosts and references repeat; an unbounded label space would
	// make the shared dictionary (not the algorithm) grow with the
	// document.
	p := tree.NewNode("person",
		tree.NewNode("name", tree.NewNode(personName(rng))),
		tree.NewNode("emailaddress", tree.NewNode("mailto:"+word(rng)+"."+word(rng)+"@example.com")),
	)
	if rng.Intn(2) == 0 {
		p.AddChild(tree.NewNode("phone", tree.NewNode(itoa(1000000+rng.Intn(8999999)))))
	}
	if rng.Intn(2) == 0 {
		p.AddChild(tree.NewNode("address",
			tree.NewNode("street", tree.NewNode(phrase(rng))),
			tree.NewNode("city", tree.NewNode(word(rng))),
			tree.NewNode("country", tree.NewNode(word(rng))),
		))
	}
	prof := tree.NewNode("profile",
		tree.NewNode("education", tree.NewNode(word(rng))),
		tree.NewNode("business", tree.NewNode("Yes")),
	)
	for in := 0; in < rng.Intn(3); in++ {
		prof.AddChild(tree.NewNode("interest", tree.NewNode("category"+itoa(rng.Intn(100)))))
	}
	p.AddChild(prof)
	return p
}

func xmarkBidder(rng *rand.Rand) *tree.Node {
	return tree.NewNode("bidder",
		tree.NewNode("date", tree.NewNode(yearStr(rng))),
		tree.NewNode("personref", tree.NewNode("person"+itoa(rng.Intn(1000)))),
		tree.NewNode("increase", tree.NewNode(itoa(1+rng.Intn(50)))),
	)
}

func xmarkOpenAuction(rng *rand.Rand, i int) *tree.Node {
	oa := tree.NewNode("open_auction",
		tree.NewNode("initial", tree.NewNode(itoa(10+rng.Intn(200)))),
	)
	for b := 0; b < 1+rng.Intn(3); b++ {
		oa.AddChild(xmarkBidder(rng))
	}
	oa.AddChild(tree.NewNode("current", tree.NewNode(itoa(10+rng.Intn(500)))))
	oa.AddChild(tree.NewNode("itemref", tree.NewNode("item"+itoa(rng.Intn(1000)))))
	oa.AddChild(tree.NewNode("seller", tree.NewNode("person"+itoa(rng.Intn(1000)))))
	oa.AddChild(tree.NewNode("annotation",
		tree.NewNode("author", tree.NewNode(personName(rng))),
		xmarkDescription(rng),
	))
	oa.AddChild(tree.NewNode("quantity", tree.NewNode(itoa(1+rng.Intn(5)))))
	oa.AddChild(tree.NewNode("type", tree.NewNode("Regular")))
	oa.AddChild(tree.NewNode("interval",
		tree.NewNode("start", tree.NewNode(yearStr(rng))),
		tree.NewNode("end", tree.NewNode(yearStr(rng))),
	))
	return oa
}

func xmarkClosedAuction(rng *rand.Rand, i int) *tree.Node {
	return tree.NewNode("closed_auction",
		tree.NewNode("seller", tree.NewNode("person"+itoa(rng.Intn(1000)))),
		tree.NewNode("buyer", tree.NewNode("person"+itoa(rng.Intn(1000)))),
		tree.NewNode("itemref", tree.NewNode("item"+itoa(rng.Intn(1000)))),
		tree.NewNode("price", tree.NewNode(itoa(10+rng.Intn(500)))),
		tree.NewNode("date", tree.NewNode(yearStr(rng))),
		tree.NewNode("quantity", tree.NewNode(itoa(1+rng.Intn(5)))),
		tree.NewNode("type", tree.NewNode("Regular")),
		tree.NewNode("annotation",
			tree.NewNode("author", tree.NewNode(personName(rng))),
			xmarkDescription(rng),
		),
	)
}
