package datagen

import (
	"math/rand"

	"tasm/internal/tree"
)

// DBLP returns a bibliography document shaped like the DBLP corpus used in
// Section VII-B of the paper: a single dblp root with a very large number
// of small publication records directly below it. This extreme
// shallow-and-wide shape is what makes the simple pruning of Section V-B
// degenerate (over 99% of the root's children are below any reasonable τ)
// and motivates the prefix ring buffer.
//
// records is the number of publication entries; each entry has roughly
// 9–18 nodes (the paper quotes ~15 nodes for a typical DBLP article),
// so the document has about 13·records nodes.
func DBLP(records int) *Dataset {
	return &Dataset{
		name: "dblp",
		root: group{
			label: "dblp",
			count: records,
			make:  dblpRecord,
		},
	}
}

// dblpRecord builds one publication entry.
func dblpRecord(rng *rand.Rand, i int) *tree.Node {
	kind := "article"
	switch rng.Intn(10) {
	case 0, 1, 2:
		kind = "inproceedings"
	case 3:
		kind = "book"
	}
	rec := tree.NewNode(kind)
	for a := 0; a < 1+rng.Intn(3); a++ {
		rec.AddChild(tree.NewNode("author", tree.NewNode(personName(rng))))
	}
	rec.AddChild(tree.NewNode("title", tree.NewNode(phrase(rng))))
	rec.AddChild(tree.NewNode("year", tree.NewNode(yearStr(rng))))
	switch kind {
	case "article":
		rec.AddChild(tree.NewNode("journal", tree.NewNode(venue(rng))))
		rec.AddChild(tree.NewNode("volume", tree.NewNode(itoa(1+rng.Intn(40)))))
	case "inproceedings":
		rec.AddChild(tree.NewNode("booktitle", tree.NewNode(venue(rng))))
		rec.AddChild(tree.NewNode("pages", tree.NewNode(itoa(1+rng.Intn(400)))))
	case "book":
		rec.AddChild(tree.NewNode("publisher", tree.NewNode(word(rng))))
		if rng.Intn(2) == 0 {
			rec.AddChild(tree.NewNode("isbn", tree.NewNode(itoa(100000000+rng.Intn(899999999)))))
		}
	}
	if rng.Intn(4) == 0 {
		// Bounded reference space, like shared DOI prefixes.
		rec.AddChild(tree.NewNode("ee", tree.NewNode("db/"+venue(rng)+"/"+itoa(rng.Intn(500)))))
	}
	return rec
}
