package datagen

import (
	"math/rand"
	"strings"
)

// The vocabularies below feed the text leaves of the generated documents.
// XMark fills its text content with a Shakespeare-derived word list; a
// deterministic subset of common words stands in here.

var words = []string{
	"time", "person", "year", "way", "day", "thing", "man", "world",
	"life", "hand", "part", "child", "eye", "woman", "place", "work",
	"week", "case", "point", "government", "company", "number", "group",
	"problem", "fact", "night", "water", "room", "mother", "area",
	"money", "story", "month", "lot", "right", "study", "book", "word",
	"business", "issue", "side", "kind", "head", "house", "service",
	"friend", "father", "power", "hour", "game", "line", "end", "member",
	"law", "car", "city", "community", "name", "president", "team",
	"minute", "idea", "body", "information", "back", "parent", "face",
	"others", "level", "office", "door", "health", "art", "war",
	"history", "party", "result", "change", "morning", "reason",
	"research", "girl", "guy", "moment", "air", "teacher", "force",
	"education", "foot", "boy", "age", "policy", "process", "music",
	"market", "sense", "nation", "plan", "college", "interest",
}

var firstNames = []string{
	"John", "Mary", "Peter", "Anna", "Mike", "Laura", "David", "Sara",
	"James", "Nina", "Robert", "Julia", "Thomas", "Emma", "Daniel",
	"Olga", "Martin", "Clara", "Paul", "Irene", "Victor", "Alice",
	"Hugo", "Elena", "Oscar", "Maria", "Felix", "Vera", "Leo", "Ida",
}

var lastNames = []string{
	"Smith", "Mueller", "Rossi", "Tanaka", "Kim", "Silva", "Novak",
	"Dubois", "Garcia", "Ivanov", "Chen", "Olsen", "Costa", "Weber",
	"Moreau", "Nagy", "Santos", "Berg", "Koch", "Marino", "Vogel",
	"Horvat", "Klein", "Sato", "Lindgren", "Petrov", "Lang", "Ricci",
}

var venues = []string{
	"VLDB", "SIGMOD", "ICDE", "EDBT", "CIKM", "KDD", "WWW", "SODA",
	"PODS", "ICDT", "WSDM", "SIGIR", "ICML", "TODS", "TKDE", "VLDBJ",
}

// word returns one deterministic vocabulary word.
func word(rng *rand.Rand) string { return words[rng.Intn(len(words))] }

// sentence returns n words joined by spaces.
func sentence(rng *rand.Rand, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = word(rng)
	}
	return strings.Join(parts, " ")
}

// phrasePool bounds the space of distinct multi-word strings. Without it
// every record would carry a globally unique title and the shared label
// dictionary — not the matching algorithm — would grow linearly with the
// document, muddying the memory experiments (Figure 10). 4096 phrases
// keep text realistic while the dictionary stays O(1) in document size.
var phrasePool = func() []string {
	rng := rand.New(rand.NewSource(424242))
	pool := make([]string, 4096)
	for i := range pool {
		pool[i] = sentence(rng, 2+rng.Intn(5))
	}
	return pool
}()

// phrase returns a 2–6 word sentence from the bounded pool.
func phrase(rng *rand.Rand) string { return phrasePool[rng.Intn(len(phrasePool))] }

// personName returns "First Last".
func personName(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
}

// venue returns a publication venue acronym.
func venue(rng *rand.Rand) string { return venues[rng.Intn(len(venues))] }

// yearStr returns a year in 1990–2009 (the corpora of the paper's era).
func yearStr(rng *rand.Rand) string {
	return itoa(1990 + rng.Intn(20))
}

// itoa converts small non-negative ints without fmt.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// aminoSequence returns a protein-like residue string of length n.
func aminoSequence(rng *rand.Rand, n int) string {
	const residues = "ACDEFGHIKLMNPQRSTVWY"
	b := make([]byte, n)
	for i := range b {
		b[i] = residues[rng.Intn(len(residues))]
	}
	return string(b)
}
