package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// TestMain pins the umask before any test touches FilePerm's cached
// probe, so the permission assertions below are deterministic regardless
// of the environment the tests run in.
func TestMain(m *testing.M) {
	syscall.Umask(0o022)
	os.Exit(m.Run())
}

func TestWriteFileCommits(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target.bin")
	if err := WriteFile(OS, path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("content = %q, want %q", got, "payload")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			t.Errorf("temp file %s left behind after a successful commit", e.Name())
		}
	}
}

// TestWriteFilePerms pins the satellite contract: committed files are
// 0644 (minus umask), not the 0600 os.CreateTemp default — stores
// written by one user must stay readable by operators and backup jobs.
func TestWriteFilePerms(t *testing.T) {
	if FilePerm() != 0o644 {
		t.Fatalf("FilePerm() = %o under umask 022, want 644", FilePerm())
	}
	path := filepath.Join(t.TempDir(), "perms.bin")
	if err := WriteFile(OS, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o644 {
		t.Errorf("committed file mode = %o, want 644", st.Mode().Perm())
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target.bin")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(OS, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("content = %q, want %q", got, "new")
	}
}

func TestWriteFileFillErrorAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target.bin")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(OS, path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("target changed on aborted commit: %q", got)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), TempPrefix) {
			t.Errorf("temp file %s left behind after an aborted commit", e.Name())
		}
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(OS, filepath.Join(t.TempDir(), "no-such-dir", "f"), func(w io.Writer) error { return nil })
	if err == nil {
		t.Fatal("commit into a missing directory succeeded")
	}
}
