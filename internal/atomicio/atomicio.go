// Package atomicio owns the crash-safe file commit protocol shared by
// every piece of persistent corpus state (postorder stores, pq-gram
// profiles, the manifest):
//
//	create temp in the target directory
//	fill it with the payload
//	chmod it world-readable (0644 minus the process umask)
//	fsync the file
//	close and rename it over the target
//	fsync the parent directory
//
// The rename is the commit point. Before it, the target either does not
// exist or still holds its previous content; after it, the target holds
// the new content in full. The file fsync before the rename means the
// content is on stable storage before the name points at it, and the
// directory fsync after means the name itself survives power loss — plain
// temp+rename guards against process death only, not against a cache that
// never reached the platter.
//
// Every filesystem mutation goes through the FS interface so tests can
// interpose: internal/crashinject implements FS to stop the protocol
// (deterministically, mid-write if scripted) at any step, which is how
// the corpus crash-point property tests drive ingest and removal into
// every possible torn state and assert recovery.
package atomicio

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the commit protocol writes through.
type File interface {
	io.Writer
	// Name returns the file's path, as os.File.Name does.
	Name() string
	// Chmod sets the file's permission bits.
	Chmod(mode os.FileMode) error
	// Sync flushes the file's content to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
}

// Dir is an open directory handle, held only long enough to fsync the
// directory entry a rename just created.
type Dir interface {
	Sync() error
	Close() error
}

// FS abstracts the filesystem mutations of the commit protocol. The
// default implementation is OS; tests substitute fault- or crash-
// injecting implementations.
type FS interface {
	// CreateTemp creates a new temporary file in dir, as os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath, as os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file, as os.Remove.
	Remove(name string) error
	// OpenDir opens a directory for syncing.
	OpenDir(name string) (Dir, error)
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) OpenDir(name string) (Dir, error) { return os.Open(name) }

// OS is the real filesystem, the FS every production caller uses.
var OS FS = osFS{}

// TempPrefix is the name prefix of every in-flight temp file the commit
// protocol creates. A crash strands at most one such file per interrupted
// commit; corpus.Open sweeps files carrying this prefix that no rename
// ever claimed.
const TempPrefix = ".tmp-"

// FilePerm is the permission bits committed files end up with: 0644
// restricted by the process umask, so stores written by one user stay
// readable by operators and backup jobs (os.CreateTemp alone would leave
// them 0600 — unreadable to everyone else forever, since the umask never
// gets a say on temp files).
func FilePerm() os.FileMode { return 0o644 &^ processUmask() }

// WriteFile commits the payload produced by fill to path using the full
// durable protocol. On any error nothing is committed: the target keeps
// its previous content (or stays absent) and the temp file is removed
// best-effort — except after a simulated crash, when the injected FS
// refuses the cleanup too, exactly like a real power loss would.
func WriteFile(fs FS, path string, fill func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, TempPrefix+"*")
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.Close()
		fs.Remove(tmp.Name())
	}
	bw := bufio.NewWriter(tmp)
	if err := fill(bw); err != nil {
		cleanup()
		return err
	}
	if err := bw.Flush(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Chmod(FilePerm()); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		fs.Remove(tmp.Name())
		return err
	}
	if err := fs.Rename(tmp.Name(), path); err != nil {
		fs.Remove(tmp.Name())
		return err
	}
	return SyncDir(fs, dir)
}

// SyncDir fsyncs a directory, making the entries a rename created (or
// removed) durable. Callers that just unlinked a committed file call it
// to persist the disappearance too.
func SyncDir(fs FS, dir string) error {
	d, err := fs.OpenDir(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
