//go:build !unix

package atomicio

import "os"

// processUmask on platforms without a umask syscall assumes the
// conventional 022, yielding 0644 files.
func processUmask() os.FileMode { return 0o022 }
