//go:build unix

package atomicio

import (
	"os"
	"sync"
	"syscall"
)

// processUmask reads the process umask once. syscall.Umask can only read
// by writing, so the probe briefly sets a umask of 0 and restores the
// real one — done a single time, at first use, before which no other
// goroutine of this package has created a file.
var processUmask = sync.OnceValue(func() os.FileMode {
	m := syscall.Umask(0)
	syscall.Umask(m)
	return os.FileMode(m)
})
