package cost

import (
	"testing"

	"tasm/internal/dict"
	"tasm/internal/tree"
)

func sample(t *testing.T) *tree.Tree {
	t.Helper()
	return tree.MustParse(dict.New(), "{a{b{x}{y}{z}}{c}}")
}

func TestUnit(t *testing.T) {
	tr := sample(t)
	m := Unit{}
	for i := 0; i < tr.Size(); i++ {
		if m.Cost(tr, i) != 1 {
			t.Errorf("unit cost of node %d != 1", i)
		}
	}
	if m.DocBound() != 1 {
		t.Error("unit DocBound != 1")
	}
	if MaxCost(m, tr) != 1 {
		t.Error("unit MaxCost != 1")
	}
	if err := Validate(m, tr); err != nil {
		t.Error(err)
	}
}

func TestPerLabel(t *testing.T) {
	tr := sample(t)
	m, err := NewPerLabel(map[string]float64{"a": 3, "b": 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if got := m.Cost(tr, root); got != 3 {
		t.Errorf("cost(a) = %g, want 3", got)
	}
	if got := m.Cost(tr, 0); got != 1 { // leaf x uses the default
		t.Errorf("cost(x) = %g, want 1", got)
	}
	if got := m.DocBound(); got != 3 {
		t.Errorf("DocBound = %g, want 3", got)
	}
	if got := MaxCost(m, tr); got != 3 {
		t.Errorf("MaxCost = %g, want 3", got)
	}
}

func TestPerLabelValidation(t *testing.T) {
	if _, err := NewPerLabel(nil, 0.5); err == nil {
		t.Error("default < 1 accepted")
	}
	if _, err := NewPerLabel(map[string]float64{"x": 0.2}, 1); err == nil {
		t.Error("table cost < 1 accepted")
	}
}

func TestFanoutWeighted(t *testing.T) {
	tr := sample(t)
	m, err := NewFanoutWeighted(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	// b has 3 children: cost 1 + 2·3 = 7.
	bIdx := -1
	for i := 0; i < tr.Size(); i++ {
		if tr.Label(i) == "b" {
			bIdx = i
		}
	}
	if got := m.Cost(tr, bIdx); got != 7 {
		t.Errorf("cost(b) = %g, want 7", got)
	}
	// Leaves cost 1.
	if got := m.Cost(tr, 0); got != 1 {
		t.Errorf("cost(leaf) = %g, want 1", got)
	}
	// Cap applies.
	capped, err := NewFanoutWeighted(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := capped.Cost(tr, bIdx); got != 5 {
		t.Errorf("capped cost = %g, want 5", got)
	}
	if capped.DocBound() != 5 {
		t.Error("DocBound != cap")
	}
}

func TestFanoutWeightedValidation(t *testing.T) {
	if _, err := NewFanoutWeighted(-1, 5); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewFanoutWeighted(1, 0.5); err == nil {
		t.Error("cap < 1 accepted")
	}
}

type brokenModel struct{}

func (brokenModel) Cost(*tree.Tree, int) float64 { return 0.5 }
func (brokenModel) DocBound() float64            { return 0.5 }

func TestValidateRejectsSubUnitCosts(t *testing.T) {
	if err := Validate(brokenModel{}, sample(t)); err == nil {
		t.Error("cost < 1 passed validation")
	}
}
