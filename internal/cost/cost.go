// Package cost implements the node cost models of the TASM paper
// (Section IV-D, Definition 4).
//
// A cost model assigns every node x a cost cst(x) ≥ 1. The cost of a node
// alignment γ(q, t) is derived from node costs: deleting q costs cst(q),
// inserting t costs cst(t), renaming costs (cst(q)+cst(t))/2 when the
// labels differ and 0 otherwise. The tree edit distance is the minimum
// total alignment cost over all edit mappings.
//
// The paper's upper bound τ = |Q|·(cQ+1) + k·cT uses cQ and cT, the
// maximum node costs in the query and document. cQ is computed exactly
// from the query; for streamed documents cT comes from the model's a
// priori DocBound.
package cost

import (
	"fmt"

	"tasm/internal/tree"
)

// Model assigns a cost ≥ 1 to every node of a tree.
type Model interface {
	// Cost returns cst of node i of t. Implementations must return
	// values ≥ 1 (Definition 4 requires cst(x) ≥ 1; the size bound of
	// Theorem 3 and Lemma 3 depend on it).
	Cost(t *tree.Tree, i int) float64
	// DocBound returns an upper bound on the cost of any document node,
	// used as cT when the document is streamed and cannot be scanned in
	// advance. For in-memory documents MaxCost gives the exact value.
	DocBound() float64
}

// Unit is the unit cost model: every node costs 1, and the tree edit
// distance is the minimum number of edit operations.
type Unit struct{}

// Cost implements Model.
func (Unit) Cost(*tree.Tree, int) float64 { return 1 }

// DocBound implements Model.
func (Unit) DocBound() float64 { return 1 }

// PerLabel assigns costs by node label, with a default for labels not in
// the table. In XML settings this models per-element-type costs ("in XML,
// the node cost can depend on the element type").
type PerLabel struct {
	// Table maps label strings to costs. Values must be ≥ 1.
	Table map[string]float64
	// Default is the cost of labels absent from Table. Must be ≥ 1.
	Default float64
}

// NewPerLabel returns a PerLabel model after validating that every cost is
// at least 1.
func NewPerLabel(table map[string]float64, def float64) (*PerLabel, error) {
	if def < 1 {
		return nil, fmt.Errorf("cost: default cost %g < 1", def)
	}
	for l, c := range table {
		if c < 1 {
			return nil, fmt.Errorf("cost: label %q has cost %g < 1", l, c)
		}
	}
	return &PerLabel{Table: table, Default: def}, nil
}

// Cost implements Model.
func (m *PerLabel) Cost(t *tree.Tree, i int) float64 {
	if c, ok := m.Table[t.Label(i)]; ok {
		return c
	}
	return m.Default
}

// DocBound implements Model.
func (m *PerLabel) DocBound() float64 {
	b := m.Default
	for _, c := range m.Table {
		if c > b {
			b = c
		}
	}
	return b
}

// FanoutWeighted makes edit operations on non-leaf nodes more expensive,
// following the fanout-weighted tree edit distance of Augsten et al. [21]
// cited in Section IV-D: structure-changing insertions and deletions of
// internal nodes should cost more than leaf edits.
//
// cst(x) = 1 + Weight·fanout(x), capped at Cap.
type FanoutWeighted struct {
	// Weight scales the fanout contribution; must be ≥ 0.
	Weight float64
	// Cap bounds the node cost (and serves as DocBound). Must be ≥ 1.
	Cap float64
}

// NewFanoutWeighted returns a validated FanoutWeighted model.
func NewFanoutWeighted(weight, cap float64) (*FanoutWeighted, error) {
	if weight < 0 {
		return nil, fmt.Errorf("cost: fanout weight %g < 0", weight)
	}
	if cap < 1 {
		return nil, fmt.Errorf("cost: fanout cap %g < 1", cap)
	}
	return &FanoutWeighted{Weight: weight, Cap: cap}, nil
}

// Cost implements Model.
func (m *FanoutWeighted) Cost(t *tree.Tree, i int) float64 {
	c := 1 + m.Weight*float64(t.Fanout(i))
	if c > m.Cap {
		return m.Cap
	}
	return c
}

// DocBound implements Model.
func (m *FanoutWeighted) DocBound() float64 { return m.Cap }

// MaxCost returns the maximum node cost of t under m: cQ (or cT for a
// memory-resident document) in the paper's notation.
func MaxCost(m Model, t *tree.Tree) float64 {
	mx := 0.0
	for i := 0; i < t.Size(); i++ {
		if c := m.Cost(t, i); c > mx {
			mx = c
		}
	}
	return mx
}

// Validate checks that m assigns cost ≥ 1 to every node of t. The TASM
// bounds are unsound otherwise.
func Validate(m Model, t *tree.Tree) error {
	for i := 0; i < t.Size(); i++ {
		if c := m.Cost(t, i); c < 1 {
			return fmt.Errorf("cost: node %d (%q) has cost %g < 1", i, t.Label(i), c)
		}
	}
	return nil
}
