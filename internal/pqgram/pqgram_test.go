package pqgram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

func mk(t testing.TB, d dict.Dict, s string) *tree.Tree {
	t.Helper()
	return tree.MustParse(d, s)
}

func TestProfileSizeFormula(t *testing.T) {
	// A node with f children contributes f+q−1 grams (leaves q−1), so
	// |profile| = Σ_internal (f+q−1) + Σ_leaf (q−1)
	//           = (n−1) + (q−1)·n   (edges plus q−1 per node).
	d := dict.New()
	cases := []string{"{a}", "{a{b}}", "{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}", "{a{b{c{d{e}}}}}"}
	for _, s := range cases {
		tr := mk(t, d, s)
		for _, q := range []int{1, 2, 3} {
			pr, err := New(tr, 2, q)
			if err != nil {
				t.Fatal(err)
			}
			want := (tr.Size() - 1) + (q-1)*tr.Size()
			if pr.Size() != want {
				t.Errorf("%s q=%d: profile size %d, want %d", s, q, pr.Size(), want)
			}
		}
	}
}

func TestIdenticalTreesDistanceZero(t *testing.T) {
	d := dict.New()
	a := mk(t, d, "{x{a{b}{d}}{a{b}{c}}}")
	b := mk(t, d, "{x{a{b}{d}}{a{b}{c}}}")
	pa, _ := New(a, 2, 3)
	pb, _ := New(b, 2, 3)
	if got, _ := Distance(pa, pb); got != 0 {
		t.Errorf("distance = %d, want 0", got)
	}
	if got, _ := Normalized(pa, pb); got != 0 {
		t.Errorf("normalized = %g, want 0", got)
	}
}

func TestDisjointLabelsDistanceMax(t *testing.T) {
	d := dict.New()
	a := mk(t, d, "{a{b}{c}}")
	b := mk(t, d, "{x{y}{z}}")
	pa, _ := New(a, 2, 2)
	pb, _ := New(b, 2, 2)
	dist, _ := Distance(pa, pb)
	if dist != pa.Size()+pb.Size() {
		t.Errorf("distance = %d, want total disjoint %d", dist, pa.Size()+pb.Size())
	}
	if n, _ := Normalized(pa, pb); n != 1 {
		t.Errorf("normalized = %g, want 1", n)
	}
}

func TestSmallChangeSmallDistance(t *testing.T) {
	d := dict.New()
	a := mk(t, d, "{r{a}{b}{c}{d}{e}{f}}")
	oneRename := mk(t, d, "{r{a}{b}{c}{d}{e}{x}}")
	reshaped := mk(t, d, "{x{y{a}{b}}{z{c}{d}}{w{e}{f}}}")
	pa, _ := New(a, 2, 3)
	p1, _ := New(oneRename, 2, 3)
	p2, _ := New(reshaped, 2, 3)
	d1, _ := Distance(pa, p1)
	d2, _ := Distance(pa, p2)
	if d1 == 0 {
		t.Error("rename not detected")
	}
	if d1 >= d2 {
		t.Errorf("one rename (%d) should be cheaper than full reshaping (%d)", d1, d2)
	}
}

func TestSensitiveToSiblingOrder(t *testing.T) {
	d := dict.New()
	a := mk(t, d, "{r{a}{b}{c}}")
	b := mk(t, d, "{r{c}{b}{a}}")
	pa, _ := New(a, 2, 2)
	pb, _ := New(b, 2, 2)
	if got, _ := Distance(pa, pb); got == 0 {
		t.Error("pq-grams with q≥2 must distinguish sibling orders")
	}
}

func TestValidation(t *testing.T) {
	d := dict.New()
	tr := mk(t, d, "{a}")
	if _, err := New(tr, 0, 2); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := New(tr, 2, 0); err == nil {
		t.Error("q=0 accepted")
	}
	pa, _ := New(tr, 2, 2)
	pb, _ := New(tr, 3, 2)
	if _, err := Distance(pa, pb); err == nil {
		t.Error("incompatible profiles accepted")
	}
	if _, err := Normalized(pa, pb); err == nil {
		t.Error("incompatible profiles accepted (normalized)")
	}
}

// TestMetricPropertiesQuick: symmetry and identity on random trees, and
// the triangle inequality which the bag symmetric difference satisfies.
func TestMetricPropertiesQuick(t *testing.T) {
	f := func(seed int64, aRaw, bRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dict.New()
		mkr := func(raw uint8) *Profile {
			n := int(raw)%12 + 1
			tr := tree.Random(d, rng, tree.RandomConfig{Nodes: n, MaxFanout: 3, Labels: 3})
			p, _ := New(tr, 2, 3)
			return p
		}
		pa, pb, pc := mkr(aRaw), mkr(bRaw), mkr(cRaw)
		dab, _ := Distance(pa, pb)
		dba, _ := Distance(pb, pa)
		daa, _ := Distance(pa, pa)
		dac, _ := Distance(pa, pc)
		dcb, _ := Distance(pc, pb)
		return daa == 0 && dab == dba && dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCorrelatesWithTED: across random pairs, pq-gram distance must rank
// a near-identical pair below a heavily edited pair most of the time —
// the property that makes it useful as a filter.
func TestCorrelatesWithTED(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	agree := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		d := dict.New()
		base := tree.Random(d, rng, tree.RandomConfig{Nodes: 14, MaxFanout: 3, Labels: 4})
		near := tree.Random(d, rng, tree.RandomConfig{Nodes: 14, MaxFanout: 3, Labels: 4})
		far := tree.Random(d, rng, tree.RandomConfig{Nodes: 14, MaxFanout: 3, Labels: 40})
		tNear := ted.Distance(cost.Unit{}, base, near)
		tFar := ted.Distance(cost.Unit{}, base, far)
		pb0, _ := New(base, 2, 3)
		pn, _ := New(near, 2, 3)
		pf, _ := New(far, 2, 3)
		gNear, _ := Distance(pb0, pn)
		gFar, _ := Distance(pb0, pf)
		if (tNear < tFar) == (gNear < gFar) {
			agree++
		}
	}
	if agree < trials*6/10 {
		t.Errorf("pq-gram agreed with TED ordering only %d/%d times", agree, trials)
	}
}
