// Package pqgram implements the pq-gram distance of Augsten, Böhlen and
// Gamper (TODS), the approximate tree similarity the TASM paper cites as
// related work ([21], Sections III–IV): an O(n log n) bag-of-fragments
// approximation of the (fanout-weighted) tree edit distance.
//
// A pq-gram is a small fixed-shape fragment of the tree: a stem of p
// ancestors ending at an anchor node, plus a base of q consecutive
// children of the anchor, where missing ancestors and children are padded
// with dummy nodes (*). The pq-gram profile of a tree is the bag of all
// its pq-grams; the distance between two trees is the size of the
// symmetric difference of their profiles (optionally normalized to
// [0, 1]).
//
// In this repository pq-grams serve two roles: a fast related-work
// baseline to contrast with TASM's exact ranking (see the FilterVerify
// example and benchmarks), and a demonstration that the exactness of
// TASM-postorder costs little — the approximation is faster per pair but
// offers no guarantee that the true top-k survive filtering.
package pqgram

import (
	"fmt"
	"hash/fnv"

	"tasm/internal/tree"
)

// dummy is the padding label of extended trees; it cannot collide with
// interned labels, which are non-negative.
const dummy = -1

// Profile is a pq-gram profile: a bag of grams represented by hash, with
// multiplicities. Hash collisions are possible in principle (64-bit FNV)
// and would only perturb the approximate distance, never TASM's exact
// results.
type Profile struct {
	p, q  int
	bag   map[uint64]int
	total int
}

// P and Q return the profile's shape parameters.
func (pr *Profile) P() int { return pr.p }
func (pr *Profile) Q() int { return pr.q }

// Size returns the number of grams in the profile (with multiplicity):
// 2·leaves + fanout-sum + (q−1)·non-leaves … fully determined by the
// tree's shape.
func (pr *Profile) Size() int { return pr.total }

// New computes the pq-gram profile of t. p ≥ 1 controls stem depth,
// q ≥ 1 base width; the TODS paper's default (and a good general choice)
// is p=2, q=3.
func New(t *tree.Tree, p, q int) (*Profile, error) {
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("pqgram: p and q must be ≥ 1, got p=%d q=%d", p, q)
	}
	pr := &Profile{p: p, q: q, bag: map[uint64]int{}}

	// children[i] lists the child indices of node i in sibling order.
	children := make([][]int, t.Size())
	for i := 0; i < t.Size()-1; i++ {
		par := t.Parent(i)
		children[par] = append(children[par], i)
	}

	// stem holds the labels of the current anchor's p-1 ancestors plus
	// the anchor itself, padded with dummies at the top.
	stem := make([]int, p)
	for i := range stem {
		stem[i] = dummy
	}
	var walk func(node int, stem []int)
	walk = func(node int, stem []int) {
		anchorStem := append(append(make([]int, 0, p), stem[1:]...), t.LabelID(node))
		kids := children[node]
		// Slide a q-window over the children extended with q−1 dummies
		// on each side.
		base := make([]int, q)
		for i := range base {
			base[i] = dummy
		}
		emit := func() {
			h := fnv.New64a()
			var b [8]byte
			write := func(v int) {
				u := uint64(int64(v)) // dummy (-1) stays distinct from labels
				for i := 0; i < 8; i++ {
					b[i] = byte(u >> (8 * i))
				}
				h.Write(b[:])
			}
			for _, v := range anchorStem {
				write(v)
			}
			for _, v := range base {
				write(v)
			}
			pr.bag[h.Sum64()]++
			pr.total++
		}
		// A node with f children contributes f+q−1 windows over the child
		// sequence extended with q−1 dummies on each side; a leaf thus
		// contributes q−1 all-dummy windows (none when q=1).
		if len(kids) == 0 {
			for w := 0; w < q-1; w++ {
				emit()
			}
			return
		}
		shift := func(label int) {
			copy(base, base[1:])
			base[len(base)-1] = label
		}
		for _, c := range kids {
			shift(t.LabelID(c))
			emit()
		}
		for w := 0; w < q-1; w++ {
			shift(dummy)
			emit()
		}
		for _, c := range kids {
			walk(c, anchorStem)
		}
	}
	walk(t.Root(), stem)
	return pr, nil
}

// Distance returns the bag symmetric difference |P1 ⊎ P2| − 2·|P1 ⊓ P2|
// between two profiles. It is 0 for identical trees and grows with
// structural divergence; it approximates (and under the fanout-weighted
// cost model is related to) the tree edit distance at a fraction of the
// cost.
func Distance(a, b *Profile) (int, error) {
	if a.p != b.p || a.q != b.q {
		return 0, fmt.Errorf("pqgram: incompatible profiles (%d,%d) vs (%d,%d)", a.p, a.q, b.p, b.q)
	}
	inter := 0
	for g, ca := range a.bag {
		cb := b.bag[g]
		if cb < ca {
			inter += cb
		} else {
			inter += ca
		}
	}
	return a.total + b.total - 2*inter, nil
}

// Normalized returns the pq-gram distance scaled to [0, 1]:
// 1 − 2·|P1 ⊓ P2| / |P1 ⊎ P2|. Two identical trees score 0, trees with
// disjoint profiles score 1.
func Normalized(a, b *Profile) (float64, error) {
	d, err := Distance(a, b)
	if err != nil {
		return 0, err
	}
	union := a.total + b.total
	if union == 0 {
		return 0, nil
	}
	return float64(d) / float64(union), nil
}
