package pqgram

import (
	"bufio"
	"bytes"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/tree"
)

func TestProfileRoundTrip(t *testing.T) {
	d := dict.New()
	a, err := tree.Parse(d, "{a{b{c}{d}}{b}{e{f}}}")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tree.Parse(d, "{a{b{c}}{b}{x{f}}}")
	if err != nil {
		t.Fatal(err)
	}
	pa, err := New(a, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := New(b, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Distance(pa, pb)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := pa.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Append trailing bytes: ReadProfile must stop exactly at the
	// profile's end when given a ByteReader, as corpus profile files
	// require.
	buf.WriteString("TRAILER")
	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	got, err := ReadProfile(br)
	if err != nil {
		t.Fatal(err)
	}
	if got.P() != 2 || got.Q() != 3 || got.Size() != pa.Size() {
		t.Fatalf("round-trip changed shape/size: got (%d,%d) size %d", got.P(), got.Q(), got.Size())
	}
	rest := make([]byte, 7)
	if _, err := br.Read(rest); err != nil || string(rest) != "TRAILER" {
		t.Fatalf("profile read consumed trailing bytes: rest=%q err=%v", rest, err)
	}
	d2, err := Distance(got, pb)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != want {
		t.Fatalf("distance after round-trip %d, want %d", d2, want)
	}

	// Serialization must be deterministic for byte-identical corpus files.
	var buf2 bytes.Buffer
	if err := pa.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes()[:buf.Len()-7], buf2.Bytes()) {
		t.Fatal("profile serialization is not deterministic")
	}
}

func TestReadProfileCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTMAGIC"),
		"truncated": []byte("TASMPF1\n\x02"),
		"zero p":    []byte("TASMPF1\n\x00\x03\x00"),
		"huge count no data": append([]byte("TASMPF1\n\x02\x03"),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	for name, data := range cases {
		if _, err := ReadProfile(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}
