package pqgram

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"

	"tasm/internal/varint"
)

// profileMagic heads a serialized pq-gram profile.
const profileMagic = "TASMPF1\n"

// Write serializes the profile. The format (all integers unsigned LEB128
// varints) is:
//
//	magic "TASMPF1\n"
//	p, q                                     – the gram shape
//	gramCount, then gramCount × (hash, mult) – the bag, by 64-bit gram hash
//
// Grams are written in ascending hash order, so equal profiles serialize
// to identical bytes (corpus files are reproducible and diffable).
func (pr *Profile) Write(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString(profileMagic)
	varint.Write(&buf, uint64(pr.p))
	varint.Write(&buf, uint64(pr.q))
	hashes := make([]uint64, 0, len(pr.bag))
	for h := range pr.bag {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	varint.Write(&buf, uint64(len(hashes)))
	for _, h := range hashes {
		varint.Write(&buf, h)
		varint.Write(&buf, uint64(pr.bag[h]))
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadProfile deserializes a profile written by Write. When r implements
// io.ByteReader (e.g. *bufio.Reader) it is read exactly to the end of the
// profile, leaving any following bytes unconsumed — corpus profile files
// append a label histogram after the profile and rely on this; otherwise
// r is wrapped in a buffer and may be read past the profile's end.
//
// All counts in the stream are untrusted: allocations grow with the bytes
// actually present, so truncated or corrupt input yields an error, not an
// attacker-sized allocation.
func ReadProfile(r io.Reader) (*Profile, error) {
	br, ok := r.(interface {
		io.Reader
		io.ByteReader
	})
	if !ok {
		br = bufio.NewReader(r)
	}
	head := make([]byte, len(profileMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("pqgram: reading profile magic: %w", err)
	}
	if string(head) != profileMagic {
		return nil, fmt.Errorf("pqgram: bad profile magic %q", head)
	}
	p, err := varint.Read(br)
	if err != nil {
		return nil, fmt.Errorf("pqgram: reading p: %w", err)
	}
	q, err := varint.Read(br)
	if err != nil {
		return nil, fmt.Errorf("pqgram: reading q: %w", err)
	}
	if p < 1 || q < 1 || p > 1<<20 || q > 1<<20 {
		return nil, fmt.Errorf("pqgram: invalid profile shape (%d,%d)", p, q)
	}
	count, err := varint.Read(br)
	if err != nil {
		return nil, fmt.Errorf("pqgram: reading gram count: %w", err)
	}
	pr := &Profile{p: int(p), q: int(q), bag: make(map[uint64]int, min(count, 4096))}
	for i := uint64(0); i < count; i++ {
		h, err := varint.Read(br)
		if err != nil {
			return nil, fmt.Errorf("pqgram: reading gram %d: %w", i, err)
		}
		mult, err := varint.Read(br)
		if err != nil {
			return nil, fmt.Errorf("pqgram: reading gram %d multiplicity: %w", i, err)
		}
		if mult < 1 || mult > 1<<40 {
			return nil, fmt.Errorf("pqgram: gram %d has multiplicity %d", i, mult)
		}
		if _, dup := pr.bag[h]; dup {
			return nil, fmt.Errorf("pqgram: duplicate gram hash %#x", h)
		}
		pr.bag[h] = int(mult)
		pr.total += int(mult)
	}
	return pr, nil
}
