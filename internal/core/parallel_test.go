package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// TestParallelMatchesSequentialQuick: the parallel variant returns the
// same distance sequence as the sequential algorithm on random instances,
// for various worker counts.
func TestParallelMatchesSequentialQuick(t *testing.T) {
	f := func(seed int64, qRaw, tRaw, kRaw, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dict.New()
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: int(qRaw)%6 + 1, MaxFanout: 3, Labels: 4})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: int(tRaw)%60 + 1, MaxFanout: 4, Labels: 4})
		k := int(kRaw)%6 + 1
		workers := int(wRaw)%4 + 1

		seq, err1 := Postorder(q, doc, k, Options{NoTrees: true})
		par, err2 := PostorderParallel(q, postorder.FromTree(doc), k, workers, Options{NoTrees: true})
		if err1 != nil || err2 != nil || len(seq) != len(par) {
			return false
		}
		for i := range seq {
			if seq[i].Dist != par[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestParallelExample2(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{a{b}{c}}")
	doc := tree.MustParse(d, "{x{a{b}{d}}{a{b}{c}}}")
	got, err := PostorderParallel(q, postorder.FromTree(doc), 2, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Dist != 0 || got[1].Dist != 1 {
		t.Errorf("got %+v", got)
	}
	// Trees must be materialized and correct in parallel mode too.
	if got[0].Tree == nil || got[0].Tree.String() != "{a{b}{c}}" {
		t.Errorf("first match tree = %v", got[0].Tree)
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(2))
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 4, MaxFanout: 3, Labels: 3})
	doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 200, MaxFanout: 5, Labels: 5})
	// workers ≤ 0 must select GOMAXPROCS and still work.
	got, err := PostorderParallel(q, postorder.FromTree(doc), 3, 0, Options{NoTrees: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Postorder(q, doc, 3, Options{NoTrees: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Dist != want[i].Dist {
			t.Errorf("rank %d: %g vs %g", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestParallelValidation(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{a}")
	if _, err := PostorderParallel(nil, postorder.NewSliceQueue(nil), 1, 2, Options{}); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := PostorderParallel(q, nil, 1, 2, Options{}); err == nil {
		t.Error("nil queue accepted")
	}
	if _, err := PostorderParallel(q, postorder.NewSliceQueue(nil), 0, 2, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

type failAfterQueue struct {
	items []postorder.Item
	pos   int
	err   error
}

func (q *failAfterQueue) Next() (postorder.Item, error) {
	if q.pos >= len(q.items) {
		return postorder.Item{}, q.err
	}
	it := q.items[q.pos]
	q.pos++
	return it, nil
}

func TestParallelQueueError(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(3))
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 4, MaxFanout: 3, Labels: 3})
	doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 100, MaxFanout: 4, Labels: 4})
	boom := errors.New("boom")
	items := postorder.Items(doc)
	_, err := PostorderParallel(q, &failAfterQueue{items: items[:50], err: boom}, 2, 3, Options{NoTrees: true})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

func TestParallelEmptyDocument(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{a}")
	got, err := PostorderParallel(q, postorder.NewSliceQueue(nil), 2, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty document returned %d matches", len(got))
	}
}

func TestParallelWithProbe(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(4))
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 4, MaxFanout: 3, Labels: 3})
	doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 300, MaxFanout: 5, Labels: 5})
	p := &countingProbe{}
	if _, err := PostorderParallel(q, postorder.FromTree(doc), 2, 4, Options{Probe: p, NoTrees: true}); err != nil {
		t.Fatal(err)
	}
	if len(p.candidates) == 0 || len(p.relevant) == 0 {
		t.Errorf("probe: %d candidates, %d relevant", len(p.candidates), len(p.relevant))
	}
}
