// Package core implements the TASM algorithms of the paper: the naive
// per-subtree baseline, TASM-dynamic (Section IV-F, the prior state of the
// art), and TASM-postorder (Section VI, Algorithm 3 — the paper's
// contribution), which combines the τ size bound of Theorem 3 with the
// prefix ring buffer of Section V to answer top-k approximate subtree
// matching queries in a single postorder scan of the document with memory
// independent of the document size.
package core

import (
	"context"
	"fmt"
	"math"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/prb"
	"tasm/internal/ranking"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// Match is one ranked subtree of the document.
type Match = ranking.Entry

// Probe receives instrumentation callbacks from TASM runs. It reproduces
// the measurements behind Figures 11 and 12 of the paper (number and sizes
// of the relevant subtrees for which prefix distances are evaluated) and
// the candidate statistics of Section V. A nil Probe disables
// instrumentation.
type Probe interface {
	ted.Probe
	// Candidate is called by TASM-postorder for every candidate subtree
	// produced by the prefix ring buffer, with its size.
	Candidate(size int)
	// Pruned is called by TASM-postorder for every subtree skipped by the
	// τ′ intermediate-ranking bound (Algorithm 3, line 16), with its size.
	Pruned(size int)
}

// Options configures a TASM run.
type Options struct {
	// Model is the node cost model; nil means the unit cost model.
	Model cost.Model
	// Ctx carries cancellation and deadline for the scan; nil means
	// context.Background(). The scan polls it once per ring-buffer
	// candidate (a non-blocking channel read, no allocation), so a
	// cancelled request stops mid-scan promptly and returns ctx.Err()
	// without breaking the zero-allocations-per-candidate invariant.
	Ctx context.Context
	// CT overrides cT, the bound on document node costs used in
	// τ = |Q|·(cQ+1) + k·cT. Zero means Model.DocBound(). For
	// memory-resident documents the exact maximum is used instead when
	// it is smaller.
	CT float64
	// Probe receives instrumentation callbacks; nil disables them.
	Probe Probe
	// NoTrees suppresses materialization of matched subtrees in the
	// results (Match.Tree stays nil); benchmarks use it to measure the
	// algorithms rather than result construction.
	NoTrees bool
	// DisableIntermediateBound switches off the τ′ = min(τ, max(R)+|Q|)
	// pruning of Algorithm 3 (Lemma 4), leaving only the static Theorem 3
	// bound τ. Results are unchanged; it exists to measure how much of
	// TASM-postorder's win comes from the dynamic bound (ablation).
	DisableIntermediateBound bool
	// DisableHistogramBound switches off the first gate of the candidate
	// pruning pipeline: the sliding label-histogram lower bound that
	// skips a whole candidate when the number of query labels missing
	// from it already exceeds the running k-th distance. Results are
	// unchanged; it exists for ablation and benchmarking.
	DisableHistogramBound bool
	// DisableEarlyAbort switches off the second gate: the bounded
	// Zhang–Shasha evaluation that abandons a subtree once the minimum of
	// the active forest-distance row exceeds the running k-th distance.
	// Results are unchanged; it exists for ablation and benchmarking.
	DisableEarlyAbort bool
	// Prune, when non-nil, receives the pruning pipeline's counters.
	Prune *PruneStats
	// Scratch, when non-nil, supplies reusable per-document scan state to
	// PostorderStream/PostorderStreamInto, so a run over many documents
	// builds its distance computer, histogram, ring buffer, and candidate
	// view once instead of once per document. See ScanScratch for the
	// reuse contract. Nil means fresh state per call (the single-document
	// behavior).
	Scratch *ScanScratch
	// BatchScratch is Scratch's counterpart for PostorderBatch/
	// PostorderBatchInto.
	BatchScratch *BatchScratch
}

func (o *Options) model() cost.Model {
	if o.Model == nil {
		return cost.Unit{} //tasm:allow alloc — cost.Unit is zero-size; boxing a zero-size value does not allocate
	}
	return o.Model
}

// done returns the run's cancellation channel, nil when no context was
// supplied (a nil channel never becomes ready, so the per-candidate poll
// degenerates to the select's default branch).
func (o *Options) done() <-chan struct{} {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Done()
}

// validate checks the common query/k preconditions.
func validate(q *tree.Tree, k int) error {
	if q == nil || q.Size() == 0 {
		return fmt.Errorf("tasm: query must be a non-empty tree") //tasm:allow alloc — cold error path: rejects invalid queries before any scan work
	}
	if k < 1 {
		return fmt.Errorf("tasm: k must be ≥ 1, got %d", k) //tasm:allow alloc — cold error path: rejects invalid queries before any scan work
	}
	return nil
}

// Tau returns the paper's upper bound τ = |Q|·(cQ+1) + k·cT (Theorem 3) on
// the size of any subtree that can appear in the final top-k ranking,
// rounded down to an integer node count. With the unit cost model this is
// 2·|Q| + k.
func Tau(m cost.Model, q *tree.Tree, k int, ct float64) int {
	cq := cost.MaxCost(m, q)
	if ct <= 0 {
		ct = m.DocBound()
	}
	return int(math.Floor(float64(q.Size())*(cq+1) + float64(k)*ct))
}

// Naive solves TASM by computing δ(Q, T_j) independently for every subtree
// T_j of the document: the O(m²n²)-time strawman of Section I. It exists
// as a correctness oracle and as the baseline the complexity discussion
// starts from; use Dynamic or Postorder for real workloads.
func Naive(q, doc *tree.Tree, k int, opts Options) ([]Match, error) {
	if err := validate(q, k); err != nil {
		return nil, err
	}
	if doc == nil || doc.Size() == 0 {
		return nil, fmt.Errorf("tasm: document must be a non-empty tree")
	}
	comp := ted.NewComputer(opts.model(), q)
	if opts.Probe != nil {
		comp.SetProbe(opts.Probe)
	}
	r := ranking.New(k)
	for j := 0; j < doc.Size(); j++ {
		sub := doc.Subtree(j)
		e := Match{Dist: comp.Distance(sub), Pos: j + 1, Size: sub.Size()}
		if !opts.NoTrees {
			e.Tree = sub
		}
		r.Push(e)
	}
	return r.Sorted(), nil
}

// Dynamic solves TASM with the TASM-dynamic algorithm of Section IV-F: one
// Zhang–Shasha run of query against the whole document fills the tree
// distance matrix, whose last row holds δ(Q, T_j) for every subtree T_j;
// the k smallest entries form the ranking. Time O(m²n) for shallow
// documents, but space O(m·n): the document (and a matrix larger than it)
// must be memory-resident, which is the scalability wall TASM-postorder
// removes.
func Dynamic(q, doc *tree.Tree, k int, opts Options) ([]Match, error) {
	if err := validate(q, k); err != nil {
		return nil, err
	}
	if doc == nil || doc.Size() == 0 {
		return nil, fmt.Errorf("tasm: document must be a non-empty tree")
	}
	comp := ted.NewComputer(opts.model(), q)
	if opts.Probe != nil {
		comp.SetProbe(opts.Probe)
	}
	row := comp.SubtreeDistances(doc)
	r := ranking.New(k)
	for j := 0; j < doc.Size(); j++ {
		r.Push(Match{Dist: row[j], Pos: j + 1, Size: doc.SubtreeSize(j)})
	}
	out := r.Sorted()
	if !opts.NoTrees {
		for i := range out {
			out[i].Tree = doc.Subtree(out[i].Pos - 1)
		}
	}
	return out, nil
}

// Postorder solves TASM with TASM-postorder (Algorithm 3) on a
// memory-resident document by streaming its postorder queue. The document
// tree itself is only used to derive the stream and to materialize the
// matched subtrees; see PostorderStream for the pure streaming form.
func Postorder(q, doc *tree.Tree, k int, opts Options) ([]Match, error) {
	if doc == nil || doc.Size() == 0 {
		return nil, fmt.Errorf("tasm: document must be a non-empty tree")
	}
	if q != nil && !dict.Compatible(q.Dict(), doc.Dict()) {
		// The streaming scan compares interned label ids; ids from
		// incompatible dictionaries are incommensurable. A query interned
		// through an overlay over the document's dictionary is fine — its
		// ids extend the document's. (Dynamic and Naive fall back to
		// string comparison, but silent divergence between the algorithms
		// would be worse than an error.)
		return nil, fmt.Errorf("tasm: query and document use incompatible label dictionaries; parse both through one Matcher or an overlay over its dictionary")
	}
	// With the document in memory the exact maximum node cost is
	// available; use it when tighter than the model's a priori bound.
	if opts.CT == 0 {
		opts.CT = cost.MaxCost(opts.model(), doc)
		if b := opts.model().DocBound(); b < opts.CT {
			opts.CT = b
		}
	}
	return PostorderStream(q, postorder.FromTree(doc), k, opts)
}

// PostorderStream solves TASM with TASM-postorder (Algorithm 3) over a
// document given only as a postorder queue. Space is O(m²·cQ + m·k·cT) —
// independent of the document size (Theorem 5) — and time is O(m²·n).
//
// The queue must encode a single well-formed tree (Definition 2).
// Inconsistent subtree sizes are detected during the scan and returned as
// errors; a stream encoding a forest of several roots is not detectable
// in one pass and is ranked as if the roots were siblings — use
// postorder.Validate when the source is untrusted.
//
// The candidate subtrees within the τ bound of Theorem 3 are enumerated by
// the prefix ring buffer; each candidate's subtrees are traversed in
// reverse postorder, skipping those at or above the intermediate-ranking
// bound τ′ = min(τ, max(R)+|Q|) (Lemma 4), and ranked with one
// TASM-dynamic evaluation per retained subtree.
//
// The queue's item labels must be interned in the query's dictionary;
// the scan compares label identifiers, not strings.
func PostorderStream(q *tree.Tree, docQ postorder.Queue, k int, opts Options) ([]Match, error) {
	if err := validate(q, k); err != nil {
		return nil, err
	}
	r := ranking.New(k)
	if err := postorderScan(q, docQ, r, 0, false, opts); err != nil {
		return nil, err
	}
	return r.Sorted(), nil
}

// PostorderStreamInto runs TASM-postorder over one document stream,
// pushing matches into an existing ranking r with every reported position
// offset by posOffset. It is the corpus building block: scanning several
// documents into one shared ranking lets the running k-th distance of
// earlier documents tighten the τ′ bound of later ones (Lemma 4 applied
// across document boundaries).
//
// Because documents may be scanned in any order (e.g. most-promising
// first) while ties are broken by the offset position, the τ′ pruning is
// applied with a strict margin: a subtree is skipped only when its
// distance provably exceeds — not merely matches — the current k-th
// distance. The final ranking is therefore identical to scanning every
// document with an unbounded shared heap, regardless of scan order.
func PostorderStreamInto(q *tree.Tree, docQ postorder.Queue, r *ranking.Heap, posOffset int, opts Options) error {
	if err := validate(q, r.K()); err != nil {
		return err
	}
	return postorderScan(q, docQ, r, posOffset, true, opts)
}

// postorderScan is the shared body of PostorderStream and
// PostorderStreamInto: Algorithm 3 over one postorder queue, ranking into
// r. strictTies selects the order-independent pruning margin documented on
// PostorderStreamInto; the plain single-document form keeps the paper's
// τ′ = min(τ, max(R)+|Q|) boundary, which is safe there because positions
// grow monotonically within one scan.
//
//tasm:hotpath
func postorderScan(q *tree.Tree, docQ postorder.Queue, r *ranking.Heap, posOffset int, strictTies bool, opts Options) error {
	if docQ == nil {
		return fmt.Errorf("tasm: document queue must not be nil") //tasm:allow alloc — cold error path: caller bug only
	}
	model := opts.model()
	if err := cost.Validate(model, q); err != nil { //tasm:allow alloc — setup: runs once per scan, before the candidate loop
		return err
	}
	m := q.Size()
	k := r.K()
	tau := Tau(model, q, k, opts.CT)

	// Per-document setup, served from the caller's scratch when one is
	// supplied: the computer and histogram are rebuilt only when the query
	// changes (i.e. once per run), the ring buffer and view are re-pointed
	// in place and only ever grow.
	scratch := opts.Scratch
	if scratch == nil {
		scratch = new(ScanScratch) //tasm:allow alloc — setup: allocated once when the caller provides no pooled scratch
	}
	if scratch.q != q {
		scratch.q = q
		scratch.comp = ted.NewComputer(model, q) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
		scratch.hist = nil
	}
	comp := scratch.comp
	comp.SetProbe(opts.Probe) // nil clears a probe from a previous run
	if scratch.buf == nil {
		scratch.buf = prb.New(docQ, tau) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
	} else {
		scratch.buf.Reset(docQ, tau) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
	}
	buf := scratch.buf
	d := q.Dict()
	if scratch.view == nil {
		scratch.view = &tree.View{} //tasm:allow alloc — setup: flat candidate view built once per scan, recycled across candidates
	}
	view := scratch.view
	var hist *prb.LabelHist
	if !opts.DisableHistogramBound {
		if scratch.hist == nil {
			scratch.hist = prb.NewLabelHist(q) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
		}
		// CandidateBound slides the window on and fully off again, so the
		// histogram's state is identical before and after each candidate —
		// reuse across documents is safe.
		hist = scratch.hist
	}
	done := opts.done()

	for {
		// Cancellation poll, once per candidate: a non-blocking read of the
		// context's done channel (nil — never ready — without a context),
		// so a cancelled request abandons the scan mid-document.
		select {
		case <-done:
			return opts.Ctx.Err()
		default:
		}
		ok, err := buf.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		rootID, leafID := buf.Root(), buf.Leaf()
		if opts.Probe != nil {
			opts.Probe.Candidate(rootID - leafID + 1)
		}
		// The bound every gate prunes against: the ranking's own k-th
		// distance, tightened through its cutoff publisher by any
		// cooperating scans (other documents of a corpus run, other shards
		// of a scatter-gather group) that share the publisher.
		kth := r.KthBound()
		// Gate 1: the sliding label histogram yields a lower bound on the
		// distance of EVERY subtree of the candidate (their label bags are
		// sub-bags of the candidate's). If it strictly exceeds the current
		// k-th distance, no subtree here can enter the ranking — skip the
		// candidate without filling a view or touching the DP. Strict
		// comparison keeps exact boundary ties evaluated, so results stay
		// byte-identical in both tie-handling modes.
		if hist != nil && !math.IsInf(kth, 1) {
			if float64(hist.CandidateBound(buf, leafID, rootID)) > kth {
				if opts.Prune != nil {
					opts.Prune.HistSkipped.Add(1)
				}
				continue
			}
		}
		// Traverse the subtrees of the candidate in reverse postorder
		// (Algorithm 3, lines 8–18).
		for rt := rootID; rt >= leafID; {
			lml := buf.LMLOf(rt)
			size := rt - lml + 1
			kth = r.KthBound()
			// τ′ tightens τ once an intermediate ranking exists
			// (Lemma 4): subtrees of size ≥ max(R)+|Q| cannot improve it.
			compute := true
			if !math.IsInf(kth, 1) && !opts.DisableIntermediateBound {
				if strictTies {
					// Order-independent margin: skip only subtrees whose
					// distance lower bound size−|Q| strictly exceeds the
					// current k-th distance, so an exact tie that would win
					// its position tie-break is never discarded. The static
					// τ cut is already enforced by the ring buffer.
					compute = float64(size) <= kth+float64(m)
				} else {
					tauP := math.Min(float64(tau), kth+float64(m))
					compute = float64(size) < tauP
				}
			}
			if compute {
				if err := buf.FillView(d, view, lml, rt); err != nil {
					return err
				}
				// TASM-dynamic on the subtree: the last row of the tree
				// distance matrix ranks every subtree of the view at once.
				// Gate 2: with a full ranking the evaluation is bounded by
				// the current k-th distance — distances at or below it stay
				// exact, anything above may abort to +Inf, which the heap
				// rejects just like the true value.
				row := evaluateRow(comp, view, kth, &opts)
				sizes := view.Sizes()
				for j := 0; j < size; j++ {
					e := Match{Dist: row[j], Pos: posOffset + lml + j, Size: sizes[j]}
					if !opts.NoTrees && r.WouldRetain(e) {
						e.Tree = view.Subtree(j) //tasm:allow alloc — match payload materialized only when the candidate enters the top k
					}
					r.Push(e)
				}
				rt = lml - 1 // skip everything just ranked
			} else {
				if opts.Probe != nil {
					opts.Probe.Pruned(size)
				}
				rt-- // descend to the next subtree in reverse postorder
			}
		}
	}
	return nil
}
