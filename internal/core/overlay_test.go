package core

// Tests pinning the request-scoped dictionary overlay to the behaviour of
// the old shared-interning world: rankings must be byte-identical whether
// query labels intern into the document's own dictionary or into a
// copy-on-write overlay above it, and the overlay must not cost the
// steady-state zero-allocation invariant of the candidate path.

import (
	"testing"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/race"
	"tasm/internal/tree"
)

// FuzzOverlayVsShared pins TopK byte-identity between the two interning
// modes. Shared: document and query intern into one mutable dictionary
// (the pre-overlay corpus behaviour). Overlay: the document's dictionary
// is frozen after the document is interned, and the query lives in a
// request overlay above it. Every ranked match — distance, position,
// size, and the rendered subtree — must be identical.
func FuzzOverlayVsShared(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x10, 0x22, 0x31, 0x04}, uint8(1), uint8(2))
	f.Add([]byte{0x05, 0x0a, 0x21, 0x00, 0x13}, uint8(4), uint8(1))
	f.Add([]byte{0x01, 0x01, 0x01, 0x71, 0x01, 0x72}, uint8(5), uint8(4))
	f.Add([]byte{0x13, 0x24, 0x35, 0x46, 0x57, 0x01, 0x12}, uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, qSel, kRaw uint8) {
		// Queries deliberately mix labels the document dictionary holds
		// (a..h) with labels only queries carry (x, y): the latter intern
		// above the overlay watermark in the overlay run and as fresh
		// shared ids in the shared run.
		queries := []string{
			"{a}", "{a{b}}", "{a{b}{c}}", "{b{a{c}}{d}}",
			"{a{x}}", "{x{y}}", "{x{a{y}{b}}}",
		}
		qs := queries[int(qSel)%len(queries)]
		k := int(kRaw)%5 + 1

		// Shared interning: document labels first (ingest), then the
		// query's labels into the same mutable dictionary.
		shared := dict.New()
		sharedIDs := make([]int, 8)
		for i := range sharedIDs {
			sharedIDs[i] = shared.Intern(string(rune('a' + i)))
		}
		items := decodeDoc(shared, sharedIDs, data)
		if items == nil {
			t.Skip("empty document")
		}
		qShared := tree.MustParse(shared, qs)

		// Overlay interning: an identical document dictionary, frozen
		// after ingest; the query interns into a request overlay.
		base := dict.New()
		for i := 0; i < 8; i++ {
			base.Intern(string(rune('a' + i)))
		}
		base.Freeze()
		ov := dict.NewOverlay(base)
		qOverlay := tree.MustParse(ov, qs)

		opts := Options{CT: 1}
		gotShared, err := PostorderStream(qShared, postorder.NewSliceQueue(items), k, opts)
		if err != nil {
			t.Fatal(err)
		}
		gotOverlay, err := PostorderStream(qOverlay, postorder.NewSliceQueue(items), k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotShared) != len(gotOverlay) {
			t.Fatalf("shared returned %d matches, overlay %d", len(gotShared), len(gotOverlay))
		}
		for i := range gotShared {
			s, o := gotShared[i], gotOverlay[i]
			if s.Dist != o.Dist || s.Pos != o.Pos || s.Size != o.Size {
				t.Fatalf("match %d diverged: shared %+v overlay %+v", i, s, o)
			}
			if (s.Tree == nil) != (o.Tree == nil) {
				t.Fatalf("match %d: tree materialization diverged", i)
			}
			if s.Tree != nil && s.Tree.String() != o.Tree.String() {
				t.Fatalf("match %d: shared tree %s != overlay tree %s", i, s.Tree, o.Tree)
			}
		}
		if base.Len() != 8 {
			t.Fatalf("overlay run grew the frozen base to %d labels", base.Len())
		}

		// The parallel scan must agree too (distance multiset; exact
		// entries below the boundary), with the overlay dict active.
		par, err := PostorderParallel(qOverlay, postorder.NewSliceQueue(items), k, 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(gotShared) {
			t.Fatalf("parallel returned %d matches, want %d", len(par), len(gotShared))
		}
		for i := range par {
			if par[i].Dist != gotShared[i].Dist {
				t.Fatalf("parallel match %d dist %g != %g", i, par[i].Dist, gotShared[i].Dist)
			}
		}
	})
}

// TestPostorderStreamOverlayAllocsPerCandidateZero re-asserts the
// steady-state zero-allocation invariant with the overlay in place: a
// NoTrees scan whose query lives in a request overlay over the frozen
// document dictionary must allocate exactly as much for 600 records as
// for 60 — the overlay's read-through path costs no allocation per
// candidate.
func TestPostorderStreamOverlayAllocsPerCandidateZero(t *testing.T) {
	base := dict.New()
	small := recordDoc(t, base, 60)
	large := recordDoc(t, base, 600)
	base.Freeze()
	ov := dict.NewOverlay(base)
	// One label the base knows, one it does not: the unknown one sits
	// above the watermark and must still cost nothing per candidate.
	q := tree.MustParse(ov, "{rec{a}{only-in-query}}")
	if ov.Added() != 1 {
		t.Fatalf("overlay Added = %d, want 1", ov.Added())
	}
	opts := Options{NoTrees: true, CT: 1}
	run := func(items []postorder.Item) func() error {
		return func() error {
			_, err := PostorderStream(q, postorder.NewSliceQueue(items), 2, opts)
			return err
		}
	}
	if race.Enabled {
		if err := run(large)(); err != nil {
			t.Fatal(err)
		}
		t.Skip("allocation counts are not meaningful under -race")
	}
	a1 := scanAllocs(t, run(small))
	a2 := scanAllocs(t, run(large))
	if a1 != a2 {
		t.Errorf("overlay scan allocations grow with candidate count: %v for 60 records vs %v for 600", a1, a2)
	}
}
