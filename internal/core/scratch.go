package core

import (
	"tasm/internal/prb"
	"tasm/internal/ranking"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// ScanScratch holds the per-document setup state of TASM-postorder scans
// so a multi-document run builds it once instead of once per document:
// the distance computer and label histogram (per query), and the ring
// buffer and flat candidate view (per document size class — their
// backing arrays only ever grow). Pass one via Options.Scratch when
// scanning many documents with the same query, model, and configuration;
// the corpus keeps them in a sync.Pool, one per worker.
//
// A scratch is NOT safe for concurrent use, and the query-derived state
// is keyed by query identity: call Reset before a run whose query,
// model, or cost bound may differ from the previous run's — a pooled
// scratch could otherwise alias a freed query tree whose address was
// reused. Within one run, consecutive documents reuse everything.
type ScanScratch struct {
	q    *tree.Tree // the query comp and hist were built for
	comp *ted.Computer
	hist *prb.LabelHist
	buf  *prb.Buffer
	view *tree.View
}

// Reset detaches the scratch from the previous run's query so the next
// scan rebuilds the query-derived state. The ring buffer and view keep
// their grown backing arrays — they carry capacity, not identity.
func (s *ScanScratch) Reset() {
	s.q = nil
	s.comp = nil
	s.hist = nil
}

// BatchScratch is ScanScratch's counterpart for batch scans: the
// per-query states are keyed by the exact (queries, rankings) pair of
// the run, so consecutive documents of one PostorderBatchInto run reuse
// them while any other combination rebuilds. Same contracts as
// ScanScratch: not concurrency-safe, Reset between runs whose
// configuration may differ.
type BatchScratch struct {
	queries []*tree.Tree
	ranks   []*ranking.Heap
	states  []*batchState
	tauMax  int
	buf     *prb.Buffer
	view    *tree.View
}

// Reset detaches the scratch from the previous run's queries.
func (s *BatchScratch) Reset() {
	s.queries = s.queries[:0]
	s.ranks = s.ranks[:0]
	s.states = s.states[:0]
	s.tauMax = 0
}

// matches reports whether the scratch's states were built for exactly
// this run: same queries and same rankings, element-identical.
func (s *BatchScratch) matches(queries []*tree.Tree, ranks []*ranking.Heap) bool {
	if len(s.queries) != len(queries) || len(s.ranks) != len(ranks) {
		return false
	}
	for i := range queries {
		if s.queries[i] != queries[i] {
			return false
		}
	}
	for i := range ranks {
		if s.ranks[i] != ranks[i] {
			return false
		}
	}
	return true
}

// batchState is one query's slice of the batch scan state; see
// batchScan.
type batchState struct {
	q    *tree.Tree
	tau  int
	comp *ted.Computer
	rank *ranking.Heap
	hist *prb.LabelHist
}
