package core

// Equivalence tests of the candidate pruning pipeline: with every gate
// enabled (the default), results must be byte-identical to the unpruned
// scan on all three scan paths — sequential, batch, and the
// order-independent (strict-ties) parallel form — and the pipeline's
// counters must report what fired.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/ranking"
	"tasm/internal/tree"
)

// unprunedOpts returns opts with every pipeline gate disabled (τ′ stays:
// it is the paper's algorithm, not part of the pipeline under test).
func unprunedOpts(opts Options) Options {
	opts.DisableHistogramBound = true
	opts.DisableEarlyAbort = true
	return opts
}

// mustEqualMatches fails unless the two rankings are byte-identical.
func mustEqualMatches(t *testing.T, ctx string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i].Dist != want[i].Dist || got[i].Pos != want[i].Pos || got[i].Size != want[i].Size {
			t.Fatalf("%s: match %d = {%g %d %d}, want {%g %d %d}", ctx, i,
				got[i].Dist, got[i].Pos, got[i].Size,
				want[i].Dist, want[i].Pos, want[i].Size)
		}
	}
}

// randomInstance draws a (query, document, k) instance.
func randomInstance(rng *rand.Rand, d dict.Dict) (*tree.Tree, *tree.Tree, int) {
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(10), MaxFanout: 3, Labels: 5})
	doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(150), MaxFanout: 4, Labels: 5})
	return q, doc, 1 + rng.Intn(6)
}

// TestPrunedVsUnprunedSequential: PostorderStream with the pipeline on
// equals the unpruned scan exactly, including positions and sizes.
func TestPrunedVsUnprunedSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 120; iter++ {
		d := dict.New()
		q, doc, k := randomInstance(rng, d)
		opts := Options{NoTrees: true}
		pruned, err := PostorderStream(q, postorder.FromTree(doc), k, opts)
		if err != nil {
			t.Fatal(err)
		}
		unpruned, err := PostorderStream(q, postorder.FromTree(doc), k, unprunedOpts(opts))
		if err != nil {
			t.Fatal(err)
		}
		mustEqualMatches(t, "sequential", pruned, unpruned)
	}
}

// TestPrunedVsUnprunedBatch: every query of a batched scan returns the
// unpruned ranking exactly.
func TestPrunedVsUnprunedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 60; iter++ {
		d := dict.New()
		_, doc, k := randomInstance(rng, d)
		queries := make([]*tree.Tree, 1+rng.Intn(3))
		for i := range queries {
			queries[i] = tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(8), MaxFanout: 3, Labels: 5})
		}
		opts := Options{NoTrees: true}
		pruned, err := PostorderBatch(queries, postorder.FromTree(doc), k, opts)
		if err != nil {
			t.Fatal(err)
		}
		unpruned, err := PostorderBatch(queries, postorder.FromTree(doc), k, unprunedOpts(opts))
		if err != nil {
			t.Fatal(err)
		}
		for qi := range queries {
			mustEqualMatches(t, "batch", pruned[qi], unpruned[qi])
		}
	}
}

// TestPrunedVsUnprunedParallelStrict: the order-independent parallel form
// (the corpus building block) is fully deterministic — byte-identical to
// the unpruned sequential strict scan for any worker count.
func TestPrunedVsUnprunedParallelStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 60; iter++ {
		d := dict.New()
		q, doc, k := randomInstance(rng, d)
		workers := 1 + rng.Intn(4)
		opts := Options{NoTrees: true}

		par := ranking.New(k)
		if err := PostorderParallelInto(q, postorder.FromTree(doc), par, 7, workers, opts); err != nil {
			t.Fatal(err)
		}
		seq := ranking.New(k)
		if err := PostorderStreamInto(q, postorder.FromTree(doc), seq, 7, unprunedOpts(opts)); err != nil {
			t.Fatal(err)
		}
		mustEqualMatches(t, "parallel-strict", par.Sorted(), seq.Sorted())
	}
}

// TestPrunedVsUnprunedQuick is the quick.Check form over a wider seed
// space, comparing all three paths at once.
func TestPrunedVsUnprunedQuick(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dict.New()
		q, doc, k := randomInstance(rng, d)
		opts := Options{NoTrees: true}
		want, err := PostorderStream(q, postorder.FromTree(doc), k, unprunedOpts(opts))
		if err != nil {
			return false
		}
		got, err := PostorderStream(q, postorder.FromTree(doc), k, opts)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		par := ranking.New(k)
		if err := PostorderParallelInto(q, postorder.FromTree(doc), par, 0, int(wRaw)%3+1, opts); err != nil {
			return false
		}
		parSorted := par.Sorted()
		seq := ranking.New(k)
		if err := PostorderStreamInto(q, postorder.FromTree(doc), seq, 0, unprunedOpts(opts)); err != nil {
			return false
		}
		seqSorted := seq.Sorted()
		if len(parSorted) != len(seqSorted) {
			return false
		}
		for i := range seqSorted {
			if parSorted[i] != seqSorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPruneStatsFire: on a document dominated by foreign-label records
// with one exact match, the histogram gate must skip candidates and the
// counters must add up.
func TestPruneStatsFire(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{a{b}{c}}")
	root := tree.NewNode("root")
	root.AddChild(tree.NewNode("a", tree.NewNode("b"), tree.NewNode("c"))) // exact match early
	for i := 0; i < 60; i++ {
		root.AddChild(tree.NewNode("z", tree.NewNode("y", tree.NewNode("x"), tree.NewNode("w"))))
	}
	doc := tree.FromNode(d, root)

	stats := &PruneStats{}
	got, err := Postorder(q, doc, 1, Options{NoTrees: true, Prune: stats})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dist != 0 {
		t.Fatalf("top-1 dist = %g, want 0", got[0].Dist)
	}
	hist, _, evaluated := stats.Snapshot()
	if hist == 0 {
		t.Error("histogram gate never fired on foreign-label records")
	}
	if evaluated == 0 {
		t.Error("no evaluation ran to completion")
	}

	// The parallel strict path must report through the same counters.
	pstats := &PruneStats{}
	heap := ranking.New(1)
	if err := PostorderParallelInto(q, postorder.FromTree(doc), heap, 0, 2, Options{NoTrees: true, Prune: pstats}); err != nil {
		t.Fatal(err)
	}
	if h, _, e := pstats.Snapshot(); h+e == 0 {
		t.Error("parallel scan reported no pruning activity at all")
	}
}

// TestTEDAbortFires: a workload whose candidates share the query's label
// bag (so the histogram gate lets them through) and fit the τ′ size
// window, but whose structure mismatches from the first DP rows on, must
// trigger early aborts once the ranking holds an exact match.
func TestTEDAbortFires(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{a{b{c{d{e}}}}}")
	root := tree.NewNode("root")
	// Exact match first: the ranking's k-th distance collapses to 0.
	root.AddChild(tree.NewNode("a", tree.NewNode("b", tree.NewNode("c", tree.NewNode("d", tree.NewNode("e"))))))
	for i := 0; i < 40; i++ {
		// Reversed chains: identical label bag, structurally distant.
		root.AddChild(tree.NewNode("e", tree.NewNode("d", tree.NewNode("c", tree.NewNode("b", tree.NewNode("a"))))))
	}
	doc := tree.FromNode(d, root)

	stats := &PruneStats{}
	pruned, err := Postorder(q, doc, 1, Options{NoTrees: true, Prune: stats})
	if err != nil {
		t.Fatal(err)
	}
	if _, abortedN, _ := stats.Snapshot(); abortedN == 0 {
		t.Error("early-abort TED never fired on far candidates")
	}
	unpruned, err := Postorder(q, doc, 1, unprunedOpts(Options{NoTrees: true}))
	if err != nil {
		t.Fatal(err)
	}
	mustEqualMatches(t, "ted-abort", pruned, unpruned)
}

// FuzzPrunedVsUnpruned fuzzes the equivalence property over arbitrary
// well-formed documents: the full pipeline (sequential and strict
// parallel) must reproduce the unpruned ranking exactly.
func FuzzPrunedVsUnpruned(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x10, 0x22, 0x31, 0x04}, uint8(1), uint8(3), uint8(2))
	f.Add([]byte{0x05, 0x0a, 0x21, 0x00, 0x13}, uint8(2), uint8(5), uint8(1))
	f.Add([]byte{0x01, 0x01, 0x01, 0x71, 0x01, 0x72, 0x43}, uint8(3), uint8(2), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, qSel, kRaw, wRaw uint8) {
		d := dict.New()
		queries := []string{"{a}", "{a{b}}", "{a{b}{c}}", "{b{a{c}}{d}}", "{c{c{c}}}"}
		q := tree.MustParse(d, queries[int(qSel)%len(queries)])
		labelIDs := make([]int, 8)
		for i := range labelIDs {
			labelIDs[i] = d.Intern(string(rune('a' + i)))
		}
		items := decodeDoc(d, labelIDs, data)
		if items == nil {
			t.Skip("empty document")
		}
		k := int(kRaw)%5 + 1
		opts := Options{NoTrees: true}

		want, err := PostorderStream(q, postorder.NewSliceQueue(items), k, unprunedOpts(opts))
		if err != nil {
			t.Fatalf("unpruned scan rejected a well-formed stream: %v", err)
		}
		got, err := PostorderStream(q, postorder.NewSliceQueue(items), k, opts)
		if err != nil {
			t.Fatalf("pruned scan failed: %v", err)
		}
		mustEqualMatches(t, "fuzz-sequential", got, want)

		par := ranking.New(k)
		if err := PostorderParallelInto(q, postorder.NewSliceQueue(items), par, 3, int(wRaw)%3+1, opts); err != nil {
			t.Fatalf("parallel scan failed: %v", err)
		}
		seq := ranking.New(k)
		if err := PostorderStreamInto(q, postorder.NewSliceQueue(items), seq, 3, unprunedOpts(opts)); err != nil {
			t.Fatal(err)
		}
		mustEqualMatches(t, "fuzz-parallel-strict", par.Sorted(), seq.Sorted())

		batch, err := PostorderBatch([]*tree.Tree{q}, postorder.NewSliceQueue(items), k, opts)
		if err != nil {
			t.Fatalf("batch scan failed: %v", err)
		}
		batchUnpruned, err := PostorderBatch([]*tree.Tree{q}, postorder.NewSliceQueue(items), k, unprunedOpts(opts))
		if err != nil {
			t.Fatal(err)
		}
		mustEqualMatches(t, "fuzz-batch", batch[0], batchUnpruned[0])
	})
}
