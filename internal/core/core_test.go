package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// fig2 returns the example query G and document H of Figure 2.
func fig2(t testing.TB) (*tree.Tree, *tree.Tree) {
	t.Helper()
	d := dict.New()
	q := tree.MustParse(d, "{a{b}{c}}")
	doc := tree.MustParse(d, "{x{a{b}{d}}{a{b}{c}}}")
	return q, doc
}

// TestExample2Dynamic reproduces Example 2: TASM-dynamic with k=2 on
// (G, H) returns the ranking (H6, H3) with distances 0 and 1.
func TestExample2Dynamic(t *testing.T) {
	q, doc := fig2(t)
	got, err := Dynamic(q, doc, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d matches, want 2", len(got))
	}
	if got[0].Pos != 6 || got[0].Dist != 0 {
		t.Errorf("first match = pos %d dist %g, want H6 dist 0", got[0].Pos, got[0].Dist)
	}
	if got[1].Pos != 3 || got[1].Dist != 1 {
		t.Errorf("second match = pos %d dist %g, want H3 dist 1", got[1].Pos, got[1].Dist)
	}
	if got[0].Tree.String() != "{a{b}{c}}" {
		t.Errorf("first match tree = %s", got[0].Tree)
	}
	if got[1].Tree.String() != "{a{b}{d}}" {
		t.Errorf("second match tree = %s", got[1].Tree)
	}
}

// TestExample2AllAlgorithms runs the same query through all three
// algorithms.
func TestExample2AllAlgorithms(t *testing.T) {
	type algo struct {
		name string
		run  func(q, doc *tree.Tree, k int, o Options) ([]Match, error)
	}
	for _, a := range []algo{{"naive", Naive}, {"dynamic", Dynamic}, {"postorder", Postorder}} {
		q, doc := fig2(t)
		got, err := a.run(q, doc, 2, Options{})
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if len(got) != 2 || got[0].Pos != 6 || got[0].Dist != 0 || got[1].Pos != 3 || got[1].Dist != 1 {
			t.Errorf("%s: got %+v", a.name, got)
		}
	}
}

func TestTauUnitCost(t *testing.T) {
	q, _ := fig2(t)
	// Unit cost: τ = |Q|(1+1) + k·1 = 2m + k. The paper's running
	// example: |Q|=15, k=20 → τ=50.
	if got := Tau(cost.Unit{}, q, 4, 0); got != 10 {
		t.Errorf("τ = %d, want 10", got)
	}
	d := dict.New()
	q15 := buildWideQuery(d, 15)
	if got := Tau(cost.Unit{}, q15, 20, 0); got != 50 {
		t.Errorf("τ for |Q|=15, k=20 = %d, want 50 (paper Section VI-B)", got)
	}
}

// buildWideQuery returns a query with exactly n nodes: a root with n-1
// leaf children.
func buildWideQuery(d dict.Dict, n int) *tree.Tree {
	root := tree.NewNode("q")
	for i := 1; i < n; i++ {
		root.AddChild(tree.NewNode("c"))
	}
	return tree.FromNode(d, root)
}

func TestValidation(t *testing.T) {
	q, doc := fig2(t)
	if _, err := Dynamic(q, doc, 0, Options{}); err == nil {
		t.Error("k=0 should be rejected")
	}
	if _, err := Dynamic(nil, doc, 1, Options{}); err == nil {
		t.Error("nil query should be rejected")
	}
	if _, err := Dynamic(q, nil, 1, Options{}); err == nil {
		t.Error("nil document should be rejected")
	}
	if _, err := Naive(q, doc, -3, Options{}); err == nil {
		t.Error("negative k should be rejected")
	}
	if _, err := Postorder(q, nil, 1, Options{}); err == nil {
		t.Error("nil document should be rejected (postorder)")
	}
	if _, err := PostorderStream(q, nil, 1, Options{}); err == nil {
		t.Error("nil queue should be rejected")
	}
}

func TestPostorderRejectsForeignDictionary(t *testing.T) {
	q := tree.MustParse(dict.New(), "{a{b}}")
	doc := tree.MustParse(dict.New(), "{a{b}{c}}")
	if _, err := Postorder(q, doc, 1, Options{}); err == nil {
		t.Error("cross-dictionary postorder run should be rejected")
	}
	// Dynamic handles cross-dictionary comparison by string and stays
	// usable.
	got, err := Dynamic(q, doc, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dist != 1 {
		t.Errorf("cross-dict dynamic distance = %g, want 1", got[0].Dist)
	}
}

func TestKLargerThanDocument(t *testing.T) {
	q, doc := fig2(t)
	for _, run := range []func(q, doc *tree.Tree, k int, o Options) ([]Match, error){Naive, Dynamic, Postorder} {
		got, err := run(q, doc, 100, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Definition 1 requires k ≤ n; we relax to min(k, n) results.
		if len(got) != doc.Size() {
			t.Errorf("k > n: got %d matches, want %d", len(got), doc.Size())
		}
		// The ranking must be sorted by distance.
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Errorf("ranking not sorted at %d: %g after %g", i, got[i].Dist, got[i-1].Dist)
			}
		}
	}
}

func TestSingleNodeEverything(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{a}")
	doc := tree.MustParse(d, "{a}")
	for _, run := range []func(q, doc *tree.Tree, k int, o Options) ([]Match, error){Naive, Dynamic, Postorder} {
		got, err := run(q, doc, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Dist != 0 || got[0].Pos != 1 {
			t.Errorf("got %+v", got)
		}
	}
}

// distances projects a match list to its distance sequence.
func distances(ms []Match) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = m.Dist
	}
	return out
}

// sameDistances compares two distance sequences exactly.
func sameDistances(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEquivalenceQuick is the central TASM property test: on random
// query/document pairs the three algorithms return rankings with
// identical distance sequences (tie positions may legitimately differ at
// the pruning boundary; Definition 1 admits any of them).
func TestEquivalenceQuick(t *testing.T) {
	f := func(seed int64, qRaw, tRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dict.New()
		qn := int(qRaw)%6 + 1
		tn := int(tRaw)%50 + 1
		k := int(kRaw)%8 + 1
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: qn, MaxFanout: 3, Labels: 4})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: tn, MaxFanout: 4, Labels: 4})

		nv, err1 := Naive(q, doc, k, Options{})
		dy, err2 := Dynamic(q, doc, k, Options{})
		po, err3 := Postorder(q, doc, k, Options{})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return sameDistances(distances(nv), distances(dy)) &&
			sameDistances(distances(dy), distances(po))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestEquivalenceFanoutCostsQuick repeats the equivalence check under the
// fanout-weighted cost model (non-unit costs exercise the τ computation
// with cQ, cT > 1).
func TestEquivalenceFanoutCostsQuick(t *testing.T) {
	model, err := cost.NewFanoutWeighted(0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, qRaw, tRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dict.New()
		qn := int(qRaw)%5 + 1
		tn := int(tRaw)%40 + 1
		k := int(kRaw)%5 + 1
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: qn, MaxFanout: 3, Labels: 4})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: tn, MaxFanout: 4, Labels: 4})
		opts := Options{Model: model}
		dy, err1 := Dynamic(q, doc, k, opts)
		po, err2 := Postorder(q, doc, k, opts)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameDistances(distances(dy), distances(po))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestTheorem3Quick checks that every subtree in the final ranking obeys
// the size bound τ = |Q|(cQ+1) + k·cT.
func TestTheorem3Quick(t *testing.T) {
	f := func(seed int64, qRaw, tRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dict.New()
		qn := int(qRaw)%6 + 1
		tn := int(tRaw)%60 + 1
		k := int(kRaw)%6 + 1
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: qn, MaxFanout: 3, Labels: 4})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: tn, MaxFanout: 4, Labels: 4})
		tau := Tau(cost.Unit{}, q, k, 0)
		got, err := Dynamic(q, doc, k, Options{})
		if err != nil {
			return false
		}
		for _, m := range got {
			if m.Size > tau {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestStreamEqualsInMemory: PostorderStream on the postorder queue of the
// document equals Postorder on the document.
func TestStreamEqualsInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		d := dict.New()
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: 4, MaxFanout: 3, Labels: 4})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 35, MaxFanout: 4, Labels: 4})
		k := rng.Intn(5) + 1
		inMem, err := Postorder(q, doc, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The streaming form does not know the document's exact maximum
		// node cost; with unit costs DocBound is exact so results agree
		// completely.
		stream, err := PostorderStream(q, postorder.FromTree(doc), k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameDistances(distances(inMem), distances(stream)) {
			t.Fatalf("stream %v != in-memory %v", distances(stream), distances(inMem))
		}
	}
}

// TestMatchesCarryCorrectTrees verifies that the materialized subtrees
// correspond to the reported positions and distances.
func TestMatchesCarryCorrectTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 30; i++ {
		d := dict.New()
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: 5, MaxFanout: 3, Labels: 4})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 40, MaxFanout: 4, Labels: 4})
		for _, run := range []func(q, doc *tree.Tree, k int, o Options) ([]Match, error){Naive, Dynamic, Postorder} {
			got, err := run(q, doc, 3, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range got {
				if m.Tree == nil {
					t.Fatalf("match at pos %d has nil tree", m.Pos)
				}
				if !m.Tree.Equal(doc.Subtree(m.Pos - 1)) {
					t.Fatalf("match at pos %d carries wrong subtree", m.Pos)
				}
				if m.Size != m.Tree.Size() {
					t.Fatalf("match at pos %d reports size %d, tree has %d", m.Pos, m.Size, m.Tree.Size())
				}
			}
		}
	}
}

func TestNoTreesOption(t *testing.T) {
	q, doc := fig2(t)
	for _, run := range []func(q, doc *tree.Tree, k int, o Options) ([]Match, error){Naive, Dynamic, Postorder} {
		got, err := run(q, doc, 2, Options{NoTrees: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range got {
			if m.Tree != nil {
				t.Errorf("NoTrees: match at pos %d still carries a tree", m.Pos)
			}
		}
	}
}

// countingProbe accumulates instrumentation callbacks.
type countingProbe struct {
	relevant   []int
	candidates []int
	pruned     []int
}

func (p *countingProbe) RelevantSubtree(size int) { p.relevant = append(p.relevant, size) }
func (p *countingProbe) Candidate(size int)       { p.candidates = append(p.candidates, size) }
func (p *countingProbe) Pruned(size int)          { p.pruned = append(p.pruned, size) }

func TestProbeCandidates(t *testing.T) {
	// On document D with a 1-node query and k=1 (unit costs),
	// τ = 1·2 + 1 = 3: candidates are the maximal subtrees of size ≤ 3.
	d := dict.New()
	q := tree.MustParse(d, "{article}")
	doc := tree.MustParse(d,
		"{dblp"+
			"{article{auth{John}}{title{X1}}}"+
			"{proceedings{conf{VLDB}}{article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}"+
			"{book{title{X2}}}}")
	p := &countingProbe{}
	if _, err := Postorder(q, doc, 1, Options{Probe: p}); err != nil {
		t.Fatal(err)
	}
	if len(p.candidates) == 0 {
		t.Fatal("no candidate callbacks")
	}
	for _, s := range p.candidates {
		if s > 3 {
			t.Errorf("candidate of size %d exceeds τ=3", s)
		}
	}
	if len(p.relevant) == 0 {
		t.Error("no relevant-subtree callbacks")
	}
}

// TestPostorderPrunesLargeSubtrees verifies that TASM-postorder's TED work
// is bounded by τ while TASM-dynamic evaluates the whole document.
func TestPostorderPrunesLargeSubtrees(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{article{auth}{title}}")
	root := tree.NewNode("dblp")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		root.AddChild(tree.NewNode("article",
			tree.NewNode("auth", tree.NewNode("nm")),
			tree.NewNode("title", tree.NewNode("tt")),
			tree.NewNode("year", tree.NewNode("yy"))))
		_ = rng
	}
	doc := tree.FromNode(d, root)
	k := 3
	tau := Tau(cost.Unit{}, q, k, 0)

	pDyn := &countingProbe{}
	if _, err := Dynamic(q, doc, k, Options{Probe: pDyn, NoTrees: true}); err != nil {
		t.Fatal(err)
	}
	pPos := &countingProbe{}
	if _, err := Postorder(q, doc, k, Options{Probe: pPos, NoTrees: true}); err != nil {
		t.Fatal(err)
	}
	maxDyn, maxPos := 0, 0
	for _, s := range pDyn.relevant {
		if s > maxDyn {
			maxDyn = s
		}
	}
	for _, s := range pPos.relevant {
		if s > maxPos {
			maxPos = s
		}
	}
	if maxDyn != doc.Size() {
		t.Errorf("dynamic should evaluate the whole document (%d), max relevant = %d", doc.Size(), maxDyn)
	}
	if maxPos > tau {
		t.Errorf("postorder evaluated a relevant subtree of size %d > τ=%d", maxPos, tau)
	}
}

// TestRankingIsCorrectTopK verifies against a brute-force check that the
// k reported distances are the k smallest subtree distances.
func TestRankingIsCorrectTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 25; i++ {
		d := dict.New()
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: 4, MaxFanout: 3, Labels: 3})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 30, MaxFanout: 4, Labels: 3})
		k := rng.Intn(6) + 1
		got, err := Postorder(q, doc, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: all subtree distances, sorted.
		var all []float64
		for j := 0; j < doc.Size(); j++ {
			all = append(all, ted.Distance(cost.Unit{}, q, doc.Subtree(j)))
		}
		sortFloats(all)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if !sameDistances(distances(got), want) {
			t.Fatalf("top-%d distances = %v, want %v", k, distances(got), want)
		}
	}
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestPrunedCallbacksRespectBound(t *testing.T) {
	// With k=1 and an exact match present, τ′ collapses to max(R)+|Q| =
	// 0+|Q|; everything at or above |Q| nodes must be pruned after the
	// match is found.
	d := dict.New()
	q := tree.MustParse(d, "{a{b}{c}}")
	root := tree.NewNode("root")
	root.AddChild(tree.NewNode("a", tree.NewNode("b"), tree.NewNode("c"))) // exact match early
	for i := 0; i < 50; i++ {
		root.AddChild(tree.NewNode("z", tree.NewNode("y", tree.NewNode("x"), tree.NewNode("w"))))
	}
	doc := tree.FromNode(d, root)
	p := &countingProbe{}
	// Histogram pruning would skip the foreign-label records before τ′
	// could fire; hold the newer gates off to observe the paper's bound.
	got, err := Postorder(q, doc, 1, Options{Probe: p, DisableHistogramBound: true, DisableEarlyAbort: true})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dist != 0 {
		t.Fatalf("top-1 dist = %g, want 0", got[0].Dist)
	}
	if len(p.pruned) == 0 {
		t.Error("expected τ′ pruning to fire")
	}
	for _, s := range p.pruned {
		if float64(s) < 0+float64(q.Size()) {
			t.Errorf("pruned subtree of size %d below bound %d", s, q.Size())
		}
	}
}
