package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// TestBatchMatchesIndividualQuick: a batch run must return, per query,
// the same distances as an individual PostorderStream run.
func TestBatchMatchesIndividualQuick(t *testing.T) {
	f := func(seed int64, nQRaw, tRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dict.New()
		nq := int(nQRaw)%4 + 1
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: int(tRaw)%60 + 1, MaxFanout: 4, Labels: 4})
		k := int(kRaw)%5 + 1
		queries := make([]*tree.Tree, nq)
		for i := range queries {
			queries[i] = tree.Random(d, rng, tree.RandomConfig{Nodes: rng.Intn(6) + 1, MaxFanout: 3, Labels: 4})
		}
		batch, err := PostorderBatch(queries, postorder.FromTree(doc), k, Options{NoTrees: true})
		if err != nil {
			return false
		}
		for i, q := range queries {
			single, err := PostorderStream(q, postorder.FromTree(doc), k, Options{NoTrees: true})
			if err != nil || len(single) != len(batch[i]) {
				return false
			}
			for j := range single {
				if single[j].Dist != batch[i][j].Dist {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBatchSingleScan(t *testing.T) {
	// The batch API must consume the queue exactly once (it is handed a
	// one-shot queue and must produce answers for every query anyway).
	d := dict.New()
	doc := tree.MustParse(d, "{x{a{b}{d}}{a{b}{c}}}")
	q1 := tree.MustParse(d, "{a{b}{c}}")
	q2 := tree.MustParse(d, "{b}")
	got, err := PostorderBatch([]*tree.Tree{q1, q2}, postorder.FromTree(doc), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d result sets", len(got))
	}
	// Example 2 for q1: (H6 dist 0, H3 dist 1).
	if got[0][0].Dist != 0 || got[0][0].Pos != 6 || got[0][1].Dist != 1 || got[0][1].Pos != 3 {
		t.Errorf("q1 results: %+v", got[0])
	}
	// q2 is a single 'b': two exact leaf matches.
	if got[1][0].Dist != 0 || got[1][1].Dist != 0 {
		t.Errorf("q2 results: %+v", got[1])
	}
}

func TestBatchMixedQuerySizes(t *testing.T) {
	// Queries with very different τ share one scan sized for the largest.
	d := dict.New()
	rng := rand.New(rand.NewSource(9))
	doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 300, MaxFanout: 5, Labels: 6})
	small := tree.Random(d, rng, tree.RandomConfig{Nodes: 2, MaxFanout: 2, Labels: 6})
	large := tree.Random(d, rng, tree.RandomConfig{Nodes: 40, MaxFanout: 4, Labels: 6})
	batch, err := PostorderBatch([]*tree.Tree{small, large}, postorder.FromTree(doc), 3, Options{NoTrees: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range []*tree.Tree{small, large} {
		single, err := PostorderStream(q, postorder.FromTree(doc), 3, Options{NoTrees: true})
		if err != nil {
			t.Fatal(err)
		}
		for j := range single {
			if single[j].Dist != batch[i][j].Dist {
				t.Errorf("query %d rank %d: %g vs %g", i, j, batch[i][j].Dist, single[j].Dist)
			}
		}
	}
}

func TestBatchValidation(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{a}")
	if _, err := PostorderBatch(nil, postorder.NewSliceQueue(nil), 1, Options{}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := PostorderBatch([]*tree.Tree{q}, nil, 1, Options{}); err == nil {
		t.Error("nil queue accepted")
	}
	if _, err := PostorderBatch([]*tree.Tree{q}, postorder.NewSliceQueue(nil), 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	other := tree.MustParse(dict.New(), "{a}")
	if _, err := PostorderBatch([]*tree.Tree{q, other}, postorder.NewSliceQueue(nil), 1, Options{}); err == nil {
		t.Error("mixed dictionaries accepted")
	}
}

func TestBatchCarriesTrees(t *testing.T) {
	d := dict.New()
	doc := tree.MustParse(d, "{x{a{b}{d}}{a{b}{c}}}")
	q := tree.MustParse(d, "{a{b}{c}}")
	got, err := PostorderBatch([]*tree.Tree{q}, postorder.FromTree(doc), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Tree == nil || got[0][0].Tree.String() != "{a{b}{c}}" {
		t.Errorf("batch match tree = %v", got[0][0].Tree)
	}
}
