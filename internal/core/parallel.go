package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"tasm/internal/cost"
	"tasm/internal/postorder"
	"tasm/internal/prb"
	"tasm/internal/ranking"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// PostorderParallel is TASM-postorder with the tree-edit-distance work
// fanned out to a worker pool — an extension beyond the paper, whose
// evaluation is explicitly single-threaded. The prefix ring buffer scan
// stays sequential (it is a cheap streaming pass); the producer applies
// the label-histogram and τ′ gates, copies each retained subtree into a
// pooled flat view, and hands it to a worker. Each worker owns its own
// distance computer AND its own k-entry ranking: entries accumulate
// locally and are merged into the shared ranking only when the worker's
// local k-th distance beats the globally published one (and once at
// drain), so the per-candidate critical section of earlier versions is
// gone. The shared ranking's k-th distance is published through a
// lock-free ranking.Cutoff that the producer's gates, the workers' local
// cutoffs and the early-abort TED evaluations all read with one atomic
// load.
//
// The returned distances are identical to PostorderStream's: subtree
// evaluations are independent, and every gate only ever discards (or
// aborts to +Inf) subtrees that cannot beat the current k-th distance, so
// processing order does not affect the final distance multiset (reported
// tie positions at the pruning boundary may differ, as Definition 1
// permits). workers ≤ 0 selects GOMAXPROCS.
func PostorderParallel(q *tree.Tree, docQ postorder.Queue, k, workers int, opts Options) ([]Match, error) {
	if err := validate(q, k); err != nil {
		return nil, err
	}
	r := ranking.New(k)
	if err := parallelScan(q, docQ, r, 0, workers, false, opts); err != nil {
		return nil, err
	}
	return r.Sorted(), nil
}

// PostorderParallelInto is PostorderStreamInto with the distance work
// fanned out to a worker pool: one document stream is scanned into an
// existing shared ranking r with positions offset by posOffset. Like
// PostorderStreamInto it prunes with the order-independent strict margin,
// which also makes the parallel form fully deterministic — every subtree
// that could reach the final ranking (including exact ties) is evaluated
// no matter how workers interleave.
func PostorderParallelInto(q *tree.Tree, docQ postorder.Queue, r *ranking.Heap, posOffset, workers int, opts Options) error {
	if err := validate(q, r.K()); err != nil {
		return err
	}
	return parallelScan(q, docQ, r, posOffset, workers, true, opts)
}

// viewPool recycles flat candidate views between the producer (which
// fills them from the ring buffer) and the workers (which return them
// after evaluation), so a steady-state scan ships work without
// per-subtree allocation.
var viewPool = sync.Pool{New: func() any { return new(tree.View) }}

// workItem is one retained subtree, copied out of the ring buffer into a
// pooled flat view.
type workItem struct {
	view *tree.View
	base int // global postorder position of the view's first node
}

// parallelScan is the shared body of PostorderParallel and
// PostorderParallelInto; see postorderScan for the strictTies contract.
//
// Unlike postorderScan, the gates are applied by the producer before a
// subtree is copied and shipped: a subtree that is already hopeless at
// production time never costs a view fill or a channel transfer. The
// cutoff the producer (and every worker) consults is the lock-free
// published k-th distance of the shared ranking, which may lag behind
// merges still in flight — but it only ever tightens, so a stale read
// merely evaluates a subtree that a fresher bound would have skipped,
// never the reverse.
//
//tasm:hotpath
func parallelScan(q *tree.Tree, docQ postorder.Queue, r *ranking.Heap, posOffset, workers int, strictTies bool, opts Options) error {
	if docQ == nil {
		return fmt.Errorf("tasm: document queue must not be nil") //tasm:allow alloc — cold error path: caller bug only
	}
	model := opts.model()
	if err := cost.Validate(model, q); err != nil { //tasm:allow alloc — setup: runs once per scan, before the candidate loop
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := q.Size()
	k := r.K()
	tau := Tau(model, q, k, opts.CT)
	d := q.Dict()

	// The shared ranking publishes its k-th distance through a lock-free
	// cutoff. A publisher attached by the caller (the corpus scan reuses
	// one across documents so earlier documents tighten later ones) is
	// kept; otherwise a scan-local one is installed.
	cut := r.CutoffPublisher()
	if cut == nil {
		cut = ranking.NewCutoff() //tasm:allow alloc — setup: runs once per scan, before the candidate loop
		r.PublishTo(cut)
	}
	shared := &sharedRanking{heap: r} //tasm:allow alloc — setup: runs once per scan, before the candidate loop

	work := make(chan workItem, 2*workers) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { //tasm:allow alloc — setup: worker pool spawned once per scan
			defer wg.Done()
			comp := ted.NewComputer(model, q) //tasm:allow alloc — setup: one computer per worker, built once per scan
			if opts.Probe != nil {
				comp.SetProbe(&lockedProbe{p: opts.Probe, mu: &shared.mu}) //tasm:allow alloc — setup: one probe wrapper per worker, built once per scan
			}
			local := ranking.New(k) //tasm:allow alloc — setup: one local ranking per worker, built once per scan
			for item := range work {
				evaluateView(comp, item, local, cut, opts)
				viewPool.Put(item.view)
				// Merge-on-improvement: only a local k-th distance that
				// beats the published shared one can tighten the global
				// bound, so only then is the mutex taken. Draining (rather
				// than copying) the local heap guarantees no entry is
				// pushed into the shared ranking twice.
				if local.Full() && local.Max().Dist < cut.Load() {
					shared.mu.Lock()
					shared.heap.Drain(local)
					shared.mu.Unlock()
				}
			}
			// Final drain: whatever the local ranking still holds competes
			// exactly once for the shared top k.
			if local.Len() > 0 {
				shared.mu.Lock()
				shared.heap.Drain(local)
				shared.mu.Unlock()
			}
		}()
	}

	// Producer: sequential prefix ring buffer scan with the reverse-
	// postorder subtree traversal of Algorithm 3; each retained subtree is
	// copied into a pooled view and shipped to a worker.
	var hist *prb.LabelHist
	if !opts.DisableHistogramBound {
		hist = prb.NewLabelHist(q) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
	}
	var produceErr error
	buf := prb.New(docQ, tau) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
	done := opts.done()
scan:
	for {
		// Cancellation poll, once per candidate; a cancelled context stops
		// production, the work channel closes, and the workers drain the
		// few buffered items before exiting — no goroutine outlives the
		// call. See postorderScan.
		select {
		case <-done:
			produceErr = opts.Ctx.Err()
			break scan
		default:
		}
		ok, err := buf.Next()
		if err != nil {
			produceErr = err
			break
		}
		if !ok {
			break
		}
		rootID, leafID := buf.Root(), buf.Leaf()
		if opts.Probe != nil {
			shared.mu.Lock()
			opts.Probe.Candidate(rootID - leafID + 1)
			shared.mu.Unlock()
		}
		// Gate 1: candidate-level label-histogram bound against the
		// published k-th distance (strict, so exact boundary ties are
		// still evaluated and the distance multiset matches the
		// sequential scan in both tie modes).
		if hist != nil {
			if kth := cut.Load(); !math.IsInf(kth, 1) &&
				float64(hist.CandidateBound(buf, leafID, rootID)) > kth {
				if opts.Prune != nil {
					opts.Prune.HistSkipped.Add(1)
				}
				continue
			}
		}
		for rt := rootID; rt >= leafID; {
			lml := buf.LMLOf(rt)
			size := rt - lml + 1
			compute := true
			if !opts.DisableIntermediateBound {
				if kth := cut.Load(); !math.IsInf(kth, 1) {
					if strictTies {
						compute = float64(size) <= kth+float64(m)
					} else {
						tauP := math.Min(float64(tau), kth+float64(m))
						compute = float64(size) < tauP
					}
				}
			}
			if compute {
				v := viewPool.Get().(*tree.View) //tasm:allow poolreset — FillView below rebuilds every field of the view before any read
				if err := buf.FillView(d, v, lml, rt); err != nil {
					produceErr = err
					break scan
				}
				work <- workItem{view: v, base: posOffset + lml}
				rt = lml - 1
			} else {
				if opts.Probe != nil {
					shared.mu.Lock()
					opts.Probe.Pruned(size)
					shared.mu.Unlock()
				}
				rt--
			}
		}
	}
	close(work)
	wg.Wait()
	return produceErr
}

// sharedRanking guards the global top-k heap.
type sharedRanking struct {
	mu   sync.Mutex
	heap *ranking.Heap
}

// evaluateView runs one TASM-dynamic evaluation on a shipped subtree view
// and pushes the resulting row into the worker's local ranking — no
// shared state is touched. The evaluation is bounded by the tighter of
// the worker's local k-th distance and the published shared one: a
// subtree that can beat neither cannot reach the final top k (the local
// heap already holds k better entries, which all compete at drain).
//
//tasm:hotpath
func evaluateView(comp *ted.Computer, item workItem, local *ranking.Heap, cut *ranking.Cutoff, opts Options) {
	cutoff := math.Inf(1)
	if !opts.DisableEarlyAbort {
		if local.Full() {
			cutoff = local.Max().Dist
		}
		if pub := cut.Load(); pub < cutoff {
			cutoff = pub
		}
	}
	var row []float64
	if !math.IsInf(cutoff, 1) {
		var aborted bool
		row, aborted = comp.SubtreeDistancesViewBounded(item.view, cutoff)
		if opts.Prune != nil {
			if aborted {
				opts.Prune.TEDAborted.Add(1)
			} else {
				opts.Prune.Evaluated.Add(1)
			}
		}
	} else {
		row = comp.SubtreeDistancesView(item.view)
		if opts.Prune != nil {
			opts.Prune.Evaluated.Add(1)
		}
	}
	sizes := item.view.Sizes()
	n := item.view.Size()
	// Materialization gate: the local heap alone would materialize its
	// first k entries even when the shared ranking already holds k far
	// better ones, so the published bound is consulted too. An entry
	// above the published k-th can never be retained at drain time (the
	// shared k-th only tightens); an exact tie still materializes, since
	// it may win its position tie-break.
	pubKth := cut.Load()
	for j := 0; j < n; j++ {
		e := Match{Dist: row[j], Pos: item.base + j, Size: sizes[j]}
		if !opts.NoTrees && e.Dist <= pubKth && local.WouldRetain(e) {
			e.Tree = item.view.Subtree(j) //tasm:allow alloc — match payload materialized only when the candidate enters the top k
		}
		local.Push(e)
	}
}

// lockedProbe serializes probe callbacks from concurrent workers.
type lockedProbe struct {
	p  Probe
	mu *sync.Mutex
}

func (l *lockedProbe) RelevantSubtree(size int) {
	l.mu.Lock()
	l.p.RelevantSubtree(size)
	l.mu.Unlock()
}
