package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"tasm/internal/cost"
	"tasm/internal/postorder"
	"tasm/internal/prb"
	"tasm/internal/ranking"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// PostorderParallel is TASM-postorder with the tree-edit-distance work
// fanned out to a worker pool — an extension beyond the paper, whose
// evaluation is explicitly single-threaded. The prefix ring buffer scan
// stays sequential (it is a cheap streaming pass); candidate subtrees are
// handed to workers, each owning its own distance computer, and all
// workers share one ranking.
//
// The returned distances are identical to PostorderStream's: candidate
// evaluations are independent, and the intermediate bound τ′ only ever
// discards subtrees that cannot beat the current k-th distance, so
// processing order does not affect the final distance multiset (reported
// tie positions at the pruning boundary may differ, as Definition 1
// permits). workers ≤ 0 selects GOMAXPROCS.
func PostorderParallel(q *tree.Tree, docQ postorder.Queue, k, workers int, opts Options) ([]Match, error) {
	if err := validate(q, k); err != nil {
		return nil, err
	}
	r := ranking.New(k)
	if err := parallelScan(q, docQ, r, 0, workers, false, opts); err != nil {
		return nil, err
	}
	return r.Sorted(), nil
}

// PostorderParallelInto is PostorderStreamInto with the distance work
// fanned out to a worker pool: one document stream is scanned into an
// existing shared ranking r with positions offset by posOffset. Like
// PostorderStreamInto it prunes with the order-independent strict margin,
// which also makes the parallel form fully deterministic — every subtree
// that could reach the final ranking (including exact ties) is evaluated
// no matter how workers interleave.
func PostorderParallelInto(q *tree.Tree, docQ postorder.Queue, r *ranking.Heap, posOffset, workers int, opts Options) error {
	if err := validate(q, r.K()); err != nil {
		return err
	}
	return parallelScan(q, docQ, r, posOffset, workers, true, opts)
}

// parallelScan is the shared body of PostorderParallel and
// PostorderParallelInto; see postorderScan for the strictTies contract.
func parallelScan(q *tree.Tree, docQ postorder.Queue, r *ranking.Heap, posOffset, workers int, strictTies bool, opts Options) error {
	if docQ == nil {
		return fmt.Errorf("tasm: document queue must not be nil")
	}
	model := opts.model()
	if err := cost.Validate(model, q); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := q.Size()
	tau := Tau(model, q, r.K(), opts.CT)
	d := q.Dict()

	shared := &sharedRanking{heap: r}
	work := make(chan workItem, 2*workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			comp := ted.NewComputer(model, q)
			if opts.Probe != nil {
				comp.SetProbe(&lockedProbe{p: opts.Probe, mu: &shared.mu})
			}
			for item := range work {
				if err := rankCandidate(comp, item, m, tau, posOffset, strictTies, shared, opts); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// Producer: sequential prefix ring buffer scan, exactly as in the
	// sequential algorithm; each candidate is materialized once and
	// shipped to a worker.
	var produceErr error
	buf := prb.New(docQ, tau)
scan:
	for {
		ok, err := buf.Next()
		if err != nil {
			produceErr = err
			break
		}
		if !ok {
			break
		}
		cand, err := buf.Subtree(d, buf.Leaf(), buf.Root())
		if err != nil {
			produceErr = err
			break
		}
		if opts.Probe != nil {
			shared.mu.Lock()
			opts.Probe.Candidate(cand.Size())
			shared.mu.Unlock()
		}
		select {
		case work <- workItem{cand: cand, leafID: buf.Leaf()}:
		case err := <-errs:
			produceErr = err
			break scan
		}
	}
	close(work)
	wg.Wait()
	close(errs)
	if produceErr != nil {
		return produceErr
	}
	if err, ok := <-errs; ok {
		return err
	}
	return nil
}

// workItem is one candidate subtree with its global position offset.
type workItem struct {
	cand   *tree.Tree
	leafID int // 1-based document postorder id of the candidate's first node
}

// sharedRanking guards the global top-k heap.
type sharedRanking struct {
	mu   sync.Mutex
	heap *ranking.Heap
}

// bound returns the current τ′ numerator (max(R)) and whether the ranking
// is full.
func (s *sharedRanking) bound() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.heap.Full() {
		return 0, false
	}
	return s.heap.Max().Dist, true
}

// rankCandidate runs the inner loop of Algorithm 3 on one materialized
// candidate: reverse-postorder traversal with τ′ pruning, one
// TASM-dynamic evaluation per retained subtree.
func rankCandidate(comp *ted.Computer, item workItem, m, tau, posOffset int, strictTies bool, shared *sharedRanking, opts Options) error {
	cand := item.cand
	for rt := cand.Root(); rt >= 0; {
		lml := cand.LML(rt)
		size := rt - lml + 1
		compute := true
		if !opts.DisableIntermediateBound {
			if maxDist, full := shared.bound(); full {
				if strictTies {
					compute = float64(size) <= maxDist+float64(m)
				} else {
					tauP := math.Min(float64(tau), maxDist+float64(m))
					compute = float64(size) < tauP
				}
			}
		}
		if compute {
			sub := cand.Subtree(rt)
			row := comp.SubtreeDistances(sub)
			shared.mu.Lock()
			for j := 0; j < sub.Size(); j++ {
				e := Match{Dist: row[j], Pos: posOffset + item.leafID + lml + j, Size: sub.SubtreeSize(j)}
				if !opts.NoTrees && shared.heap.WouldRetain(e) {
					e.Tree = sub.Subtree(j)
				}
				shared.heap.Push(e)
			}
			shared.mu.Unlock()
			rt = lml - 1
		} else {
			if opts.Probe != nil {
				shared.mu.Lock()
				opts.Probe.Pruned(size)
				shared.mu.Unlock()
			}
			rt--
		}
	}
	return nil
}

// lockedProbe serializes probe callbacks from concurrent workers.
type lockedProbe struct {
	p  Probe
	mu *sync.Mutex
}

func (l *lockedProbe) RelevantSubtree(size int) {
	l.mu.Lock()
	l.p.RelevantSubtree(size)
	l.mu.Unlock()
}
