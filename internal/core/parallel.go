package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"tasm/internal/cost"
	"tasm/internal/postorder"
	"tasm/internal/prb"
	"tasm/internal/ranking"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// PostorderParallel is TASM-postorder with the tree-edit-distance work
// fanned out to a worker pool — an extension beyond the paper, whose
// evaluation is explicitly single-threaded. The prefix ring buffer scan
// stays sequential (it is a cheap streaming pass); the producer applies
// the τ′ intermediate bound, copies each retained subtree into a pooled
// flat view, and hands it to a worker. Each worker owns its own distance
// computer, and all workers share one ranking.
//
// The returned distances are identical to PostorderStream's: subtree
// evaluations are independent, and the intermediate bound τ′ only ever
// discards subtrees that cannot beat the current k-th distance, so
// processing order does not affect the final distance multiset (reported
// tie positions at the pruning boundary may differ, as Definition 1
// permits). workers ≤ 0 selects GOMAXPROCS.
func PostorderParallel(q *tree.Tree, docQ postorder.Queue, k, workers int, opts Options) ([]Match, error) {
	if err := validate(q, k); err != nil {
		return nil, err
	}
	r := ranking.New(k)
	if err := parallelScan(q, docQ, r, 0, workers, false, opts); err != nil {
		return nil, err
	}
	return r.Sorted(), nil
}

// PostorderParallelInto is PostorderStreamInto with the distance work
// fanned out to a worker pool: one document stream is scanned into an
// existing shared ranking r with positions offset by posOffset. Like
// PostorderStreamInto it prunes with the order-independent strict margin,
// which also makes the parallel form fully deterministic — every subtree
// that could reach the final ranking (including exact ties) is evaluated
// no matter how workers interleave.
func PostorderParallelInto(q *tree.Tree, docQ postorder.Queue, r *ranking.Heap, posOffset, workers int, opts Options) error {
	if err := validate(q, r.K()); err != nil {
		return err
	}
	return parallelScan(q, docQ, r, posOffset, workers, true, opts)
}

// viewPool recycles flat candidate views between the producer (which
// fills them from the ring buffer) and the workers (which return them
// after evaluation), so a steady-state scan ships work without
// per-subtree allocation.
var viewPool = sync.Pool{New: func() any { return new(tree.View) }}

// workItem is one retained subtree, copied out of the ring buffer into a
// pooled flat view.
type workItem struct {
	view *tree.View
	base int // global postorder position of the view's first node
}

// parallelScan is the shared body of PostorderParallel and
// PostorderParallelInto; see postorderScan for the strictTies contract.
//
// Unlike postorderScan, the τ′ bound is applied by the producer before a
// subtree is copied and shipped: a subtree that is already hopeless at
// production time never costs a view fill or a channel transfer. The
// bound consulted may lag behind pushes still in flight, but it only
// ever tightens, so a stale read merely evaluates a subtree that a
// fresher bound would have skipped — never the reverse.
func parallelScan(q *tree.Tree, docQ postorder.Queue, r *ranking.Heap, posOffset, workers int, strictTies bool, opts Options) error {
	if docQ == nil {
		return fmt.Errorf("tasm: document queue must not be nil")
	}
	model := opts.model()
	if err := cost.Validate(model, q); err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := q.Size()
	tau := Tau(model, q, r.K(), opts.CT)
	d := q.Dict()

	shared := &sharedRanking{heap: r}
	work := make(chan workItem, 2*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			comp := ted.NewComputer(model, q)
			if opts.Probe != nil {
				comp.SetProbe(&lockedProbe{p: opts.Probe, mu: &shared.mu})
			}
			for item := range work {
				evaluateView(comp, item, shared, opts)
				viewPool.Put(item.view)
			}
		}()
	}

	// Producer: sequential prefix ring buffer scan with the reverse-
	// postorder subtree traversal of Algorithm 3; each retained subtree is
	// copied into a pooled view and shipped to a worker.
	var produceErr error
	buf := prb.New(docQ, tau)
scan:
	for {
		ok, err := buf.Next()
		if err != nil {
			produceErr = err
			break
		}
		if !ok {
			break
		}
		rootID, leafID := buf.Root(), buf.Leaf()
		if opts.Probe != nil {
			shared.mu.Lock()
			opts.Probe.Candidate(rootID - leafID + 1)
			shared.mu.Unlock()
		}
		for rt := rootID; rt >= leafID; {
			lml := buf.LMLOf(rt)
			size := rt - lml + 1
			compute := true
			if !opts.DisableIntermediateBound {
				if maxDist, full := shared.bound(); full {
					if strictTies {
						compute = float64(size) <= maxDist+float64(m)
					} else {
						tauP := math.Min(float64(tau), maxDist+float64(m))
						compute = float64(size) < tauP
					}
				}
			}
			if compute {
				v := viewPool.Get().(*tree.View)
				if err := buf.FillView(d, v, lml, rt); err != nil {
					produceErr = err
					break scan
				}
				work <- workItem{view: v, base: posOffset + lml}
				rt = lml - 1
			} else {
				if opts.Probe != nil {
					shared.mu.Lock()
					opts.Probe.Pruned(size)
					shared.mu.Unlock()
				}
				rt--
			}
		}
	}
	close(work)
	wg.Wait()
	return produceErr
}

// sharedRanking guards the global top-k heap.
type sharedRanking struct {
	mu   sync.Mutex
	heap *ranking.Heap
}

// bound returns the current τ′ numerator (max(R)) and whether the ranking
// is full.
func (s *sharedRanking) bound() (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.heap.Full() {
		return 0, false
	}
	return s.heap.Max().Dist, true
}

// evaluateView runs one TASM-dynamic evaluation on a shipped subtree view
// and merges the resulting row into the shared ranking.
func evaluateView(comp *ted.Computer, item workItem, shared *sharedRanking, opts Options) {
	row := comp.SubtreeDistancesView(item.view)
	sizes := item.view.Sizes()
	n := item.view.Size()
	shared.mu.Lock()
	for j := 0; j < n; j++ {
		e := Match{Dist: row[j], Pos: item.base + j, Size: sizes[j]}
		if !opts.NoTrees && shared.heap.WouldRetain(e) {
			e.Tree = item.view.Subtree(j)
		}
		shared.heap.Push(e)
	}
	shared.mu.Unlock()
}

// lockedProbe serializes probe callbacks from concurrent workers.
type lockedProbe struct {
	p  Probe
	mu *sync.Mutex
}

func (l *lockedProbe) RelevantSubtree(size int) {
	l.mu.Lock()
	l.p.RelevantSubtree(size)
	l.mu.Unlock()
}
