package core

import (
	"fmt"
	"math"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/prb"
	"tasm/internal/ranking"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// PostorderBatch answers several TASM queries in a single postorder scan
// of the document — the batch workload of data cleaning, where a whole
// set of dirty records is matched against one large corpus.
//
// The scan uses one prefix ring buffer sized for the largest query bound
// τmax. This is correct because candidate sets are nested: every subtree
// within a smaller query's bound τi lies inside some cand(T, τmax)
// subtree (its ancestors above that candidate exceed τmax ≥ τi), so the
// τi-candidates can be recovered locally from each materialized
// τmax-candidate. Each query then runs Algorithm 3's inner loop, with its
// own τi and its own intermediate bound τ′i, against the shared
// candidates.
//
// Compared to q independent scans, the document is parsed and pruned
// once; the TED work is the same as q sequential runs (it is per-query by
// nature). Results for each query are identical to PostorderStream's.
func PostorderBatch(queries []*tree.Tree, docQ postorder.Queue, k int, opts Options) ([][]Match, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("tasm: batch needs at least one query")
	}
	if k < 1 {
		return nil, fmt.Errorf("tasm: k must be ≥ 1, got %d", k)
	}
	ranks := make([]*ranking.Heap, len(queries))
	for i := range ranks {
		ranks[i] = ranking.New(k)
	}
	if err := batchScan(queries, docQ, ranks, 0, false, opts); err != nil {
		return nil, err
	}
	out := make([][]Match, len(ranks))
	for i, r := range ranks {
		out[i] = r.Sorted()
	}
	return out, nil
}

// PostorderBatchInto runs the batch scan of PostorderBatch over one
// document stream, pushing each query's matches into its existing ranking
// ranks[i] with every reported position offset by posOffset. It is the
// corpus building block for batch serving: scanning several documents
// into per-query shared rankings lets each query's running k-th distance
// from earlier documents tighten its τ′ bound in later ones, while the
// document itself is read and pruned once for the whole batch.
//
// Like PostorderStreamInto, pruning uses the order-independent strict
// margin, so the final rankings are identical regardless of document scan
// order.
func PostorderBatchInto(queries []*tree.Tree, docQ postorder.Queue, ranks []*ranking.Heap, posOffset int, opts Options) error {
	if len(queries) == 0 {
		return fmt.Errorf("tasm: batch needs at least one query")
	}
	if len(ranks) != len(queries) {
		return fmt.Errorf("tasm: %d queries but %d rankings", len(queries), len(ranks))
	}
	return batchScan(queries, docQ, ranks, posOffset, true, opts)
}

// batchScan is the shared body of PostorderBatch and PostorderBatchInto;
// see postorderScan for the strictTies contract.
//
//tasm:hotpath
func batchScan(queries []*tree.Tree, docQ postorder.Queue, ranks []*ranking.Heap, posOffset int, strictTies bool, opts Options) error {
	if docQ == nil {
		return fmt.Errorf("tasm: document queue must not be nil") //tasm:allow alloc — cold error path: caller bug only
	}
	model := opts.model()
	d := queries[0].Dict()
	// Per-document setup from the caller's scratch, as in postorderScan:
	// the per-query states are rebuilt only when this exact (queries,
	// rankings) combination hasn't been seen — once per run.
	scratch := opts.BatchScratch
	if scratch == nil {
		scratch = new(BatchScratch) //tasm:allow alloc — setup: allocated once when the caller provides no pooled scratch
	}
	if !scratch.matches(queries, ranks) {
		states := make([]*batchState, len(queries)) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
		tauMax := 0
		for i, q := range queries {
			if err := validate(q, ranks[i].K()); err != nil {
				return fmt.Errorf("query %d: %w", i, err) //tasm:allow alloc — cold error path: rejects invalid queries before any scan work
			}
			if !dict.Compatible(q.Dict(), d) {
				return fmt.Errorf("tasm: query %d uses an incompatible dictionary", i) //tasm:allow alloc — cold error path: rejects invalid queries before any scan work
			}
			if err := cost.Validate(model, q); err != nil { //tasm:allow alloc — setup: runs once per scan, before the candidate loop
				return fmt.Errorf("query %d: %w", i, err) //tasm:allow alloc — cold error path: rejects invalid queries before any scan work
			}
			st := &batchState{ //tasm:allow alloc — setup: runs once per scan, before the candidate loop
				q:    q,
				tau:  Tau(model, q, ranks[i].K(), opts.CT),
				comp: ted.NewComputer(model, q), //tasm:allow alloc — setup: one computer per query, built once per batch
				rank: ranks[i],
			}
			if !opts.DisableHistogramBound {
				st.hist = prb.NewLabelHist(q) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
			}
			if st.tau > tauMax {
				tauMax = st.tau
			}
			states[i] = st
		}
		scratch.queries = append(scratch.queries[:0], queries...) //tasm:allow alloc — setup: per-batch state rebuilt once per (queries, rankings) combination
		scratch.ranks = append(scratch.ranks[:0], ranks...)       //tasm:allow alloc — setup: per-batch state rebuilt once per (queries, rankings) combination
		scratch.states = states
		scratch.tauMax = tauMax
	}
	states := scratch.states
	for _, st := range states {
		st.comp.SetProbe(opts.Probe) // nil clears a probe from a previous run
	}

	if scratch.buf == nil {
		scratch.buf = prb.New(docQ, scratch.tauMax) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
	} else {
		scratch.buf.Reset(docQ, scratch.tauMax) //tasm:allow alloc — setup: runs once per scan, before the candidate loop
	}
	buf := scratch.buf
	if scratch.view == nil {
		scratch.view = &tree.View{} //tasm:allow alloc — setup: flat subtree view built once per scan, recycled across queries and candidates
	}
	view := scratch.view
	done := opts.done()
	for {
		// Cancellation poll, once per candidate; see postorderScan.
		select {
		case <-done:
			return opts.Ctx.Err()
		default:
		}
		ok, err := buf.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if opts.Probe != nil {
			opts.Probe.Candidate(buf.Root() - buf.Leaf() + 1)
		}
		for _, st := range states {
			// Gate 1 per query: the candidate's label histogram bounds the
			// distance of every subtree within it from below; a ranking
			// whose k-th distance bound is already smaller makes this
			// candidate irrelevant for this query.
			if st.hist != nil {
				if kth := st.rank.KthBound(); !math.IsInf(kth, 1) &&
					float64(st.hist.CandidateBound(buf, buf.Leaf(), buf.Root())) > kth {
					if opts.Prune != nil {
						opts.Prune.HistSkipped.Add(1)
					}
					continue
				}
			}
			if err := rankWithin(st.comp, st.q, buf, view, st.tau, st.rank, posOffset, strictTies, opts); err != nil {
				return err
			}
		}
	}
	return nil
}

// rankWithin runs the inner loop of Algorithm 3 for one query over the
// shared candidate pending in the ring buffer: the maximal subtrees
// within the query's own τ are located inside the candidate (they are the
// query's candidate set restricted to this region), copied into the
// recycled flat view, and each ranked with one TASM-dynamic evaluation,
// subject to the query's intermediate bound. The view resolves labels in
// the query's own dictionary, so the distance computer stays on its
// aliasing fast path for every query of the batch.
//
//tasm:hotpath
func rankWithin(comp *ted.Computer, q *tree.Tree, buf *prb.Buffer, view *tree.View, tau int, r *ranking.Heap, posOffset int, strictTies bool, opts Options) error {
	m := q.Size()
	d := q.Dict()
	leafID := buf.Leaf()
	for rt := buf.Root(); rt >= leafID; {
		lml := buf.LMLOf(rt)
		size := rt - lml + 1
		// Descend until the subtree fits this query's τ.
		if size > tau {
			rt--
			continue
		}
		kth := r.KthBound()
		compute := true
		if !math.IsInf(kth, 1) && !opts.DisableIntermediateBound {
			if strictTies {
				// Order-independent margin: skip only subtrees whose
				// distance lower bound size−|Q| strictly exceeds the
				// current k-th distance (see PostorderStreamInto).
				compute = float64(size) <= kth+float64(m)
			} else {
				tauP := math.Min(float64(tau), kth+float64(m))
				compute = float64(size) < tauP
			}
		}
		if compute {
			if err := buf.FillView(d, view, lml, rt); err != nil {
				return err
			}
			// Gate 2: bounded evaluation against this query's running k-th
			// distance bound; see postorderScan.
			row := evaluateRow(comp, view, kth, &opts)
			sizes := view.Sizes()
			for j := 0; j < size; j++ {
				e := Match{Dist: row[j], Pos: posOffset + lml + j, Size: sizes[j]}
				if !opts.NoTrees && r.WouldRetain(e) {
					e.Tree = view.Subtree(j) //tasm:allow alloc — match payload materialized only when the candidate enters the top k
				}
				r.Push(e)
			}
			rt = lml - 1
		} else {
			if opts.Probe != nil {
				opts.Probe.Pruned(size)
			}
			rt--
		}
	}
	return nil
}
