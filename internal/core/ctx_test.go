package core

// Context plumbing tests: scans poll their context once per ring-buffer
// candidate, so a cancelled request stops mid-scan (without draining the
// document stream) — and the poll costs no allocations (see alloc_test.go
// for the AllocsPerRun pin with a context installed).

import (
	"context"
	"errors"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/ranking"
	"tasm/internal/tree"
)

// cancellingQueue wraps a queue and cancels a context after yielding n
// items, then counts how many more are consumed — a deterministic way to
// cancel "mid-scan".
type cancellingQueue struct {
	inner  postorder.Queue
	after  int
	cancel context.CancelFunc
	served int
	extra  int
}

func (q *cancellingQueue) Next() (postorder.Item, error) {
	it, err := q.inner.Next()
	if err != nil {
		return it, err
	}
	q.served++
	if q.served == q.after {
		q.cancel()
	} else if q.served > q.after {
		q.extra++
	}
	return it, nil
}

// TestScanStopsMidStream: cancelling during a PostorderStream scan
// returns context.Canceled and abandons the stream long before its end.
func TestScanStopsMidStream(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{rec{a}{b}}")
	items := recordDoc(t, d, 5000)

	for _, tc := range []struct {
		name string
		run  func(docQ postorder.Queue, opts Options) error
	}{
		{"stream", func(docQ postorder.Queue, opts Options) error {
			_, err := PostorderStream(q, docQ, 2, opts)
			return err
		}},
		{"streamInto", func(docQ postorder.Queue, opts Options) error {
			return PostorderStreamInto(q, docQ, ranking.New(2), 0, opts)
		}},
		{"batch", func(docQ postorder.Queue, opts Options) error {
			_, err := PostorderBatch([]*tree.Tree{q}, docQ, 2, opts)
			return err
		}},
		{"parallel", func(docQ postorder.Queue, opts Options) error {
			_, err := PostorderParallel(q, docQ, 2, 4, opts)
			return err
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cq := &cancellingQueue{inner: postorder.NewSliceQueue(items), after: 100, cancel: cancel}
			err := tc.run(cq, Options{NoTrees: true, CT: 1, Ctx: ctx})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// The ring buffer may legitimately read ahead to complete the
			// candidate in flight (bounded by τ), but must not drain the
			// stream: cancelling after 100 of 20001 items leaves the vast
			// majority unread.
			if cq.extra > 1000 {
				t.Errorf("scan consumed %d items after cancellation (of %d total): not stopping mid-scan", cq.extra, len(items))
			}
		})
	}
}

// TestNilCtxMeansBackground: scans without a context behave exactly as
// before the ctx plumbing existed.
func TestNilCtxMeansBackground(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{rec{a}{b}}")
	items := recordDoc(t, d, 50)
	withCtx, err := PostorderStream(q, postorder.NewSliceQueue(items), 3, Options{Ctx: context.Background(), NoTrees: true, CT: 1})
	if err != nil {
		t.Fatal(err)
	}
	without, err := PostorderStream(q, postorder.NewSliceQueue(items), 3, Options{NoTrees: true, CT: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(withCtx) != len(without) {
		t.Fatalf("result lengths differ: %d vs %d", len(withCtx), len(without))
	}
	for i := range withCtx {
		if withCtx[i] != without[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, withCtx[i], without[i])
		}
	}
}

// TestCancelledBeforeScan: an already-cancelled context fails immediately
// without touching the stream.
func TestCancelledBeforeScan(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{a}")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eof := postorder.NewSliceQueue(nil)
	if _, err := PostorderStream(q, eof, 1, Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
