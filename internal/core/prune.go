package core

import (
	"math"
	"sync/atomic"

	"tasm/internal/ted"
	"tasm/internal/tree"
)

// PruneStats counts what the candidate pruning pipeline did during a
// scan: how many candidates the label-histogram gate rejected before any
// distance work, how many evaluations the bounded Zhang–Shasha DP
// abandoned early, and how many ran to completion. The counters are
// cumulative across scans sharing the struct and safe for concurrent
// update (the parallel scan's workers add to them directly), so one
// PruneStats can aggregate a whole corpus query — or a daemon's lifetime.
type PruneStats struct {
	// HistSkipped is the number of candidate subtrees skipped whole by
	// the histogram-intersection lower bound: no view fill, no TED. In
	// batch scans the gate runs once per (query, candidate) pair, so one
	// candidate skipped for every query of a Q-query batch adds Q.
	HistSkipped atomic.Uint64
	// TEDAborted is the number of subtree evaluations the early-abort DP
	// abandoned once its running lower bound crossed the cutoff.
	TEDAborted atomic.Uint64
	// Evaluated is the number of subtree evaluations that ran to
	// completion (bounded evaluations that did not abort included).
	Evaluated atomic.Uint64
}

// Snapshot returns the current counter values (hist-skipped, TED-aborted,
// fully evaluated).
func (s *PruneStats) Snapshot() (histSkipped, tedAborted, evaluated uint64) {
	return s.HistSkipped.Load(), s.TEDAborted.Load(), s.Evaluated.Load()
}

// evaluateRow is the shared gate-2 unit of work of the sequential and
// batch scans: one TASM-dynamic evaluation of the filled view, bounded
// by kth — the ranking's current k-th distance bound (Heap.KthBound) —
// when the early-abort gate is active and the bound is finite, with the
// pipeline counters bumped. The returned row is valid until the
// computer's next evaluation.
//
//tasm:hotpath
func evaluateRow(comp *ted.Computer, view *tree.View, kth float64, opts *Options) []float64 {
	if !opts.DisableEarlyAbort && !math.IsInf(kth, 1) {
		row, aborted := comp.SubtreeDistancesViewBounded(view, kth)
		if opts.Prune != nil {
			if aborted {
				opts.Prune.TEDAborted.Add(1)
			} else {
				opts.Prune.Evaluated.Add(1)
			}
		}
		return row
	}
	row := comp.SubtreeDistancesView(view)
	if opts.Prune != nil {
		opts.Prune.Evaluated.Add(1)
	}
	return row
}
