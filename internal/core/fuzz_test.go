package core

import (
	"testing"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/prb"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// decodeDoc turns arbitrary fuzz bytes into a postorder queue that always
// encodes one well-formed tree: each byte's high nibble says how many
// completed subtrees the new node adopts (clamped to what is available),
// the low nibble picks its label, and a final root adopts any leftovers.
func decodeDoc(d dict.Dict, labelIDs []int, data []byte) []postorder.Item {
	if len(data) > 256 {
		data = data[:256]
	}
	var items []postorder.Item
	var stack []int // sizes of completed subtrees
	for _, b := range data {
		take := int(b >> 4)
		if take > len(stack) {
			take = len(stack)
		}
		sz := 1
		for i := 0; i < take; i++ {
			sz += stack[len(stack)-1-i]
		}
		stack = stack[:len(stack)-take]
		stack = append(stack, sz)
		items = append(items, postorder.Item{Label: labelIDs[int(b&0xf)%len(labelIDs)], Size: sz})
	}
	if len(items) == 0 {
		return nil
	}
	if len(stack) > 1 {
		items = append(items, postorder.Item{Label: labelIDs[0], Size: len(items) + 1})
	}
	return items
}

// FuzzViewVsMaterialized checks, for every candidate the prefix ring
// buffer emits, that evaluating the flat candidate view yields exactly
// the same distance row as materializing the candidate with
// tree.FromPostorder (via prb.Subtree) — and that the full TASM-postorder
// ranking over the view path stays byte-identical to the TASM-dynamic
// oracle.
func FuzzViewVsMaterialized(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x10, 0x22, 0x31, 0x04}, uint8(1), uint8(6), uint8(2))
	f.Add([]byte{0x05, 0x0a, 0x21, 0x00, 0x13}, uint8(2), uint8(3), uint8(1))
	f.Add([]byte{0x01, 0x01, 0x01, 0x71, 0x01, 0x72}, uint8(3), uint8(9), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, qSel, tau8, kRaw uint8) {
		d := dict.New()
		queries := []string{"{a}", "{a{b}}", "{a{b}{c}}", "{b{a{c}}{d}}"}
		q := tree.MustParse(d, queries[int(qSel)%len(queries)])
		labelIDs := make([]int, 8)
		for i := range labelIDs {
			labelIDs[i] = d.Intern(string(rune('a' + i)))
		}
		items := decodeDoc(d, labelIDs, data)
		if items == nil {
			t.Skip("empty document")
		}
		tau := int(tau8)%16 + 1

		// Per-candidate: view row == materialized row, exactly.
		buf := prb.New(postorder.NewSliceQueue(items), tau)
		compView := ted.NewComputer(cost.Unit{}, q)
		compTree := ted.NewComputer(cost.Unit{}, q)
		view := &tree.View{}
		for {
			ok, err := buf.Next()
			if err != nil {
				t.Fatalf("ring buffer rejected a well-formed stream: %v", err)
			}
			if !ok {
				break
			}
			lml, rt := buf.Leaf(), buf.Root()
			if err := buf.FillView(d, view, lml, rt); err != nil {
				t.Fatalf("FillView: %v", err)
			}
			sub, err := buf.Subtree(d, lml, rt)
			if err != nil {
				t.Fatalf("Subtree: %v", err)
			}
			rowView := compView.SubtreeDistancesView(view)
			rowTree := compTree.SubtreeDistances(sub)
			for j := range rowTree {
				if rowView[j] != rowTree[j] {
					t.Fatalf("candidate [%d,%d] row[%d]: view %g != materialized %g", lml, rt, j, rowView[j], rowTree[j])
				}
			}
		}

		// Whole pipeline: view-path TASM-postorder == TASM-dynamic oracle.
		doc, err := postorder.BuildTree(d, postorder.NewSliceQueue(items))
		if err != nil {
			t.Fatalf("decodeDoc emitted an invalid stream: %v", err)
		}
		k := int(kRaw)%5 + 1
		opts := Options{NoTrees: true}
		pos, err := Postorder(q, doc, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		dyn, err := Dynamic(q, doc, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(pos) != len(dyn) {
			t.Fatalf("postorder returned %d matches, dynamic %d", len(pos), len(dyn))
		}
		// Distances must agree exactly; positions too, except for entries
		// tying the k-th distance, where Definition 1 permits either
		// representative (the single-document τ′ prune may discard an
		// exact boundary tie — the repo's oracle tests compare distance
		// multisets for the same reason).
		kth := dyn[len(dyn)-1].Dist
		for i := range pos {
			if pos[i].Dist != dyn[i].Dist {
				t.Fatalf("match %d: postorder dist %g != dynamic dist %g", i, pos[i].Dist, dyn[i].Dist)
			}
			if pos[i].Dist < kth && (pos[i].Pos != dyn[i].Pos || pos[i].Size != dyn[i].Size) {
				t.Fatalf("match %d below the boundary: postorder %+v != dynamic %+v", i, pos[i], dyn[i])
			}
		}
	})
}
