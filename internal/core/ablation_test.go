package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tasm/internal/dict"
	"tasm/internal/tree"
)

// TestIntermediateBoundAblation: disabling the τ′ pruning must not change
// the resulting distances, only the amount of work.
func TestIntermediateBoundAblation(t *testing.T) {
	f := func(seed int64, qRaw, tRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dict.New()
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: int(qRaw)%6 + 1, MaxFanout: 3, Labels: 4})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: int(tRaw)%50 + 1, MaxFanout: 4, Labels: 4})
		k := int(kRaw)%6 + 1
		withBound, err1 := Postorder(q, doc, k, Options{NoTrees: true})
		without, err2 := Postorder(q, doc, k, Options{NoTrees: true, DisableIntermediateBound: true})
		if err1 != nil || err2 != nil || len(withBound) != len(without) {
			return false
		}
		for i := range withBound {
			if withBound[i].Dist != without[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIntermediateBoundSavesWork: on a document with an early exact match,
// τ′ pruning must strictly reduce the number of TED evaluations.
func TestIntermediateBoundSavesWork(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{a{b}{c}}")
	root := tree.NewNode("root")
	root.AddChild(tree.NewNode("a", tree.NewNode("b"), tree.NewNode("c")))
	for i := 0; i < 100; i++ {
		root.AddChild(tree.NewNode("z",
			tree.NewNode("y", tree.NewNode("x"), tree.NewNode("w")),
			tree.NewNode("v", tree.NewNode("u"))))
	}
	doc := tree.FromNode(d, root)

	count := func(disable bool) int {
		p := &countingProbe{}
		// The newer gates are held off in both arms to isolate τ′ (the
		// histogram gate alone would already skip the foreign-label
		// records wholesale).
		if _, err := Postorder(q, doc, 1, Options{Probe: p, NoTrees: true, DisableIntermediateBound: disable,
			DisableHistogramBound: true, DisableEarlyAbort: true}); err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, s := range p.relevant {
			n += s
		}
		return n
	}
	with := count(false)
	without := count(true)
	if with >= without {
		t.Errorf("τ′ pruning did not reduce work: %d (with) vs %d (without)", with, without)
	}
}
