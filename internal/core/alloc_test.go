package core

// Steady-state allocation regression tests for the flat-candidate-view
// pipeline: a NoTrees TASM-postorder scan must perform zero heap
// allocations per candidate. Two angles:
//
//   - The per-candidate unit of work (FillView + SubtreeDistancesView) is
//     asserted to allocate exactly 0 with testing.AllocsPerRun once warm.
//   - Whole scans over a small and a 10× larger document built from
//     identical record subtrees must allocate the same total — every
//     allocation belongs to setup, none to candidates.
//
// Under -race the workloads still run (for race coverage) but the exact
// count assertions are skipped; see internal/race.

import (
	"context"
	"testing"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/prb"
	"tasm/internal/qtrace"
	"tasm/internal/race"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// recordDoc builds a document of n identical 4-node record subtrees under
// one root, as postorder items.
func recordDoc(t testing.TB, d dict.Dict, n int) []postorder.Item {
	t.Helper()
	root := tree.NewNode("root")
	for i := 0; i < n; i++ {
		root.AddChild(tree.NewNode("rec", tree.NewNode("a"), tree.NewNode("b"), tree.NewNode("c")))
	}
	return postorder.Items(tree.FromNode(d, root))
}

// scanAllocs returns the average total allocations of one NoTrees scan.
func scanAllocs(t *testing.T, scan func() error) float64 {
	t.Helper()
	return testing.AllocsPerRun(5, func() {
		if err := scan(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPostorderStreamAllocsPerCandidateZero: total allocations of a
// NoTrees PostorderStream scan must not depend on the number of
// candidates, i.e. the per-candidate path allocates nothing. The scan
// runs under a live cancellable context CARRYING A LIVE TRACE — the
// daemon's request shape: the per-candidate cancellation poll and the
// trace in the context chain must not cost the invariant (spans are
// per-document, recorded by the corpus layer, never per-candidate).
func TestPostorderStreamAllocsPerCandidateZero(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{rec{a}{b}}")
	small := recordDoc(t, d, 60)
	large := recordDoc(t, d, 600)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := qtrace.New()
	defer qtrace.Release(tr)
	ctx = qtrace.NewContext(ctx, tr)
	opts := Options{NoTrees: true, CT: 1, Ctx: ctx}
	run := func(items []postorder.Item) func() error {
		return func() error {
			_, err := PostorderStream(q, postorder.NewSliceQueue(items), 2, opts)
			return err
		}
	}
	if race.Enabled {
		if err := run(large)(); err != nil {
			t.Fatal(err)
		}
		t.Skip("allocation counts are not meaningful under -race")
	}
	a1 := scanAllocs(t, run(small))
	a2 := scanAllocs(t, run(large))
	if a1 != a2 {
		t.Errorf("allocations grow with candidate count: %v for 60 records vs %v for 600; per-candidate path allocates", a1, a2)
	}
}

// TestPostorderBatchAllocsPerCandidateZero is the batch-scan counterpart
// (cancellation poll and live trace active, like the stream test).
func TestPostorderBatchAllocsPerCandidateZero(t *testing.T) {
	d := dict.New()
	queries := []*tree.Tree{
		tree.MustParse(d, "{rec{a}{b}}"),
		tree.MustParse(d, "{rec{a}{b}{c}}"),
	}
	small := recordDoc(t, d, 60)
	large := recordDoc(t, d, 600)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := qtrace.New()
	defer qtrace.Release(tr)
	ctx = qtrace.NewContext(ctx, tr)
	opts := Options{NoTrees: true, CT: 1, Ctx: ctx}
	run := func(items []postorder.Item) func() error {
		return func() error {
			_, err := PostorderBatch(queries, postorder.NewSliceQueue(items), 2, opts)
			return err
		}
	}
	if race.Enabled {
		if err := run(large)(); err != nil {
			t.Fatal(err)
		}
		t.Skip("allocation counts are not meaningful under -race")
	}
	a1 := scanAllocs(t, run(small))
	a2 := scanAllocs(t, run(large))
	if a1 != a2 {
		t.Errorf("batch allocations grow with candidate count: %v for 60 records vs %v for 600", a1, a2)
	}
}

// TestGatedUnitOfWorkZeroAlloc pins the pruning pipeline's per-candidate
// unit of work: histogram bound, view fill and bounded evaluation must
// together allocate exactly zero objects once warm — the gates may not
// cost the invariant PR 2 established.
func TestGatedUnitOfWorkZeroAlloc(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{rec{a}{b}}")
	items := recordDoc(t, d, 8)
	buf := prb.New(postorder.NewSliceQueue(items), 8)
	ok, err := buf.Next()
	if err != nil || !ok {
		t.Fatalf("no candidate: ok=%v err=%v", ok, err)
	}
	comp := ted.NewComputer(cost.Unit{}, q)
	view := &tree.View{}
	hist := prb.NewLabelHist(q)
	lml, rt := buf.Leaf(), buf.Root()
	work := func() {
		if bound := hist.CandidateBound(buf, lml, rt); bound > 3 {
			t.Fatalf("record candidate bound %d exceeds any plausible cutoff", bound)
		}
		if err := buf.FillView(d, view, lml, rt); err != nil {
			t.Fatal(err)
		}
		row, _ := comp.SubtreeDistancesViewBounded(view, 1)
		if len(row) != rt-lml+1 {
			t.Fatalf("row has %d entries, want %d", len(row), rt-lml+1)
		}
	}
	work() // warm
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if allocs := testing.AllocsPerRun(100, work); allocs != 0 {
		t.Errorf("gated candidate unit of work allocates %.1f objects per candidate in steady state, want 0", allocs)
	}
}

// TestCandidateUnitOfWorkZeroAlloc pins the exact contract: once view and
// computer scratch are warm, filling a candidate view from the ring
// buffer and evaluating it allocates exactly zero objects.
func TestCandidateUnitOfWorkZeroAlloc(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{rec{a}{b}}")
	items := recordDoc(t, d, 8)
	buf := prb.New(postorder.NewSliceQueue(items), 8)
	ok, err := buf.Next()
	if err != nil || !ok {
		t.Fatalf("no candidate: ok=%v err=%v", ok, err)
	}
	comp := ted.NewComputer(cost.Unit{}, q)
	view := &tree.View{}
	lml, rt := buf.Leaf(), buf.Root()
	work := func() {
		if err := buf.FillView(d, view, lml, rt); err != nil {
			t.Fatal(err)
		}
		row := comp.SubtreeDistancesView(view)
		if len(row) != rt-lml+1 {
			t.Fatalf("row has %d entries, want %d", len(row), rt-lml+1)
		}
	}
	work() // warm
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if allocs := testing.AllocsPerRun(100, work); allocs != 0 {
		t.Errorf("candidate fill+evaluate allocates %.1f objects per candidate in steady state, want 0", allocs)
	}
}
