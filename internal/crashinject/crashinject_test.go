package crashinject

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"tasm/internal/atomicio"
)

// TestEveryCrashPointOfWriteFile sweeps the whole commit protocol: at
// every scripted step the crashed commit must leave the target either
// untouched ("old") or fully committed ("new-payload") — never a torn
// third state — and the sweep must terminate once the crash point
// exceeds the protocol's step count.
func TestEveryCrashPointOfWriteFile(t *testing.T) {
	inj := New(atomicio.OS)
	sweep := 0
	for at := 0; ; at++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "target")
		if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
		inj.Arm(at)
		err := atomicio.WriteFile(inj, path, func(w io.Writer) error {
			_, err := io.WriteString(w, "new-payload")
			return err
		})
		if err == nil {
			if !inj.Crashed() && at == 0 {
				t.Fatal("WriteFile performed no injectable steps")
			}
			break
		}
		if !errors.Is(err, ErrCrash) {
			t.Fatalf("crash point %d: err = %v, want ErrCrash", at, err)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("crash point %d: target unreadable: %v", at, rerr)
		}
		if string(got) != "old" && string(got) != "new-payload" {
			t.Fatalf("crash point %d: torn target content %q", at, got)
		}
		sweep++
	}
	if sweep < 5 {
		t.Fatalf("swept only %d crash points; the protocol has more steps than that", sweep)
	}
}

// TestCrashIsSticky pins the power-loss semantics: after the armed step,
// every operation fails — a dead process cannot run cleanup.
func TestCrashIsSticky(t *testing.T) {
	inj := New(atomicio.OS)
	inj.Arm(0)
	if _, err := inj.CreateTemp(t.TempDir(), "x-*"); !errors.Is(err, ErrCrash) {
		t.Fatalf("armed step: err = %v, want ErrCrash", err)
	}
	if err := inj.Remove("whatever"); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash Remove: err = %v, want ErrCrash", err)
	}
	if err := inj.Rename("a", "b"); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash Rename: err = %v, want ErrCrash", err)
	}
	if !inj.Crashed() {
		t.Fatal("Crashed() = false after delivering the crash")
	}
}

// TestTornWrite pins that a crash during a write flushes exactly half of
// that write's bytes — the deterministic model of a partially flushed
// page.
func TestTornWrite(t *testing.T) {
	inj := New(atomicio.OS)
	inj.Disarm()
	f, err := inj.CreateTemp(t.TempDir(), "torn-*")
	if err != nil {
		t.Fatal(err)
	}
	inj.Arm(0)
	if _, err := f.Write([]byte("abcdef")); !errors.Is(err, ErrCrash) {
		t.Fatalf("torn write err = %v, want ErrCrash", err)
	}
	inj.Disarm()
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("torn write left %q, want %q", got, "abc")
	}
}

// TestDisarmedPassthrough: an unarmed injector is transparent.
func TestDisarmedPassthrough(t *testing.T) {
	inj := New(atomicio.OS)
	path := filepath.Join(t.TempDir(), "f")
	if err := atomicio.WriteFile(inj, path, func(w io.Writer) error {
		_, err := io.WriteString(w, "ok")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "ok" {
		t.Fatalf("content = %q", got)
	}
}
