// Package crashinject is the deterministic crash harness for the
// persistence layer — the disk-side sibling of internal/faultinject's
// network chaos proxy. It wraps an atomicio.FS and kills the simulated
// process at a scripted filesystem step: every mutation (temp creation,
// each write call, chmod, fsync, close, rename, unlink, directory sync)
// counts as one step, and when the armed step is reached the operation
// fails with ErrCrash and every later operation fails too — after a power
// loss nothing runs cleanup either.
//
// A crash during a write is torn: half of that write's bytes reach the
// file before the crash, the rest never do, modelling a partially flushed
// page. A crash anywhere else stops between operations.
//
// The intended use is an exhaustive sweep over every crash point of an
// operation:
//
//	inj := crashinject.New(atomicio.OS)
//	for at := 0; ; at++ {
//		dir := freshCopyOfBaseline()
//		inj.Arm(at)
//		err := operate(dir, inj) // ingest, remove, ...
//		if err == nil {
//			break // at exceeds the operation's step count: swept everything
//		}
//		// reopen dir with the real FS and assert it recovered
//	}
//
// Determinism holds because the step sequence of an operation is a pure
// function of its inputs: no timing, no randomness.
package crashinject

import (
	"errors"
	"os"
	"sync"

	"tasm/internal/atomicio"
)

// ErrCrash is the failure every operation at or after the armed crash
// point returns; test with errors.Is.
var ErrCrash = errors.New("crashinject: simulated crash")

// Injector is an atomicio.FS that crashes at a scripted step. The zero
// value is unusable; use New. An unarmed Injector passes everything
// through untouched.
type Injector struct {
	mu      sync.Mutex
	fs      atomicio.FS
	step    int
	crashAt int
	crashed bool
}

// New returns an Injector delegating to fs (usually atomicio.OS),
// initially unarmed.
func New(fs atomicio.FS) *Injector {
	return &Injector{fs: fs, crashAt: -1}
}

// Arm resets the step counter and schedules a crash at the given
// zero-based step of the operations that follow.
func (in *Injector) Arm(at int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.step = 0
	in.crashAt = at
	in.crashed = false
}

// Disarm clears any scheduled or delivered crash; subsequent operations
// pass through.
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = -1
	in.crashed = false
}

// Steps reports how many operations have run (or crashed) since Arm.
func (in *Injector) Steps() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.step
}

// Crashed reports whether the armed crash has been delivered.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// tick advances the step counter and reports whether this step crashes.
// Once crashed, every step crashes: the simulated process is gone.
func (in *Injector) tick() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return true
	}
	if in.step == in.crashAt {
		in.crashed = true
	}
	in.step++
	return in.crashed
}

func (in *Injector) CreateTemp(dir, pattern string) (atomicio.File, error) {
	if in.tick() {
		return nil, ErrCrash
	}
	f, err := in.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &crashFile{in: in, f: f}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if in.tick() {
		return ErrCrash
	}
	return in.fs.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if in.tick() {
		return ErrCrash
	}
	return in.fs.Remove(name)
}

func (in *Injector) OpenDir(name string) (atomicio.Dir, error) {
	if in.tick() {
		return nil, ErrCrash
	}
	d, err := in.fs.OpenDir(name)
	if err != nil {
		return nil, err
	}
	return &crashDir{in: in, d: d}, nil
}

var _ atomicio.FS = (*Injector)(nil)

// crashFile threads the injector through every file operation.
type crashFile struct {
	in *Injector
	f  atomicio.File
}

// Write is the torn-write site: crashing here writes the first half of
// p, then fails — a page-sized prefix made it to the medium, the rest
// never will.
func (c *crashFile) Write(p []byte) (int, error) {
	if c.in.tick() {
		n, _ := c.f.Write(p[:len(p)/2])
		return n, ErrCrash
	}
	return c.f.Write(p)
}

func (c *crashFile) Name() string { return c.f.Name() }

func (c *crashFile) Chmod(mode os.FileMode) error {
	if c.in.tick() {
		return ErrCrash
	}
	return c.f.Chmod(mode)
}

func (c *crashFile) Sync() error {
	if c.in.tick() {
		return ErrCrash
	}
	return c.f.Sync()
}

func (c *crashFile) Close() error {
	if c.in.tick() {
		// A crashed process still loses its descriptors: close the real
		// file so sweeps of the temp can unlink it on every platform,
		// but report the crash.
		c.f.Close()
		return ErrCrash
	}
	return c.f.Close()
}

type crashDir struct {
	in *Injector
	d  atomicio.Dir
}

func (c *crashDir) Sync() error {
	if c.in.tick() {
		return ErrCrash
	}
	return c.d.Sync()
}

func (c *crashDir) Close() error {
	if c.in.tick() {
		c.d.Close()
		return ErrCrash
	}
	return c.d.Close()
}
