package ted

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/tree"
)

func TestEditScriptPaperExample(t *testing.T) {
	q, doc := fig2(t)
	c := NewComputer(cost.Unit{}, q)
	script := c.EditScript(doc)
	var sum float64
	for _, op := range script {
		sum += op.Cost
	}
	if sum != 4 {
		t.Errorf("script cost = %g, want δ(G,H) = 4; script: %v", sum, script)
	}
	checkScriptValid(t, cost.Unit{}, q, doc, script)
}

func TestEditScriptIdentity(t *testing.T) {
	d := dict.New()
	a := tree.MustParse(d, "{x{a{b}{d}}{a{b}{c}}}")
	b := tree.MustParse(d, "{x{a{b}{d}}{a{b}{c}}}")
	script := NewComputer(cost.Unit{}, a).EditScript(b)
	if len(script) != a.Size() {
		t.Fatalf("script has %d ops, want %d matches", len(script), a.Size())
	}
	for _, op := range script {
		if op.Op != OpMatch || op.Cost != 0 {
			t.Errorf("non-match op on identical trees: %+v", op)
		}
	}
}

// checkScriptValid verifies the Definition 3 mapping conditions and the
// cost/coverage accounting of an edit script.
func checkScriptValid(t *testing.T, m cost.Model, q, doc *tree.Tree, script []EditOp) {
	t.Helper()
	qSeen := make([]bool, q.Size())
	tSeen := make([]bool, doc.Size())
	type pair struct{ qi, tj int }
	var aligned []pair
	var sum float64
	for _, op := range script {
		sum += op.Cost
		switch op.Op {
		case OpDelete:
			if op.QNode < 0 || op.TNode != -1 {
				t.Fatalf("malformed delete %+v", op)
			}
			if qSeen[op.QNode] {
				t.Fatalf("query node %d edited twice", op.QNode)
			}
			qSeen[op.QNode] = true
			if want := m.Cost(q, op.QNode); op.Cost != want {
				t.Errorf("delete cost %g, want %g", op.Cost, want)
			}
		case OpInsert:
			if op.TNode < 0 || op.QNode != -1 {
				t.Fatalf("malformed insert %+v", op)
			}
			if tSeen[op.TNode] {
				t.Fatalf("document node %d edited twice", op.TNode)
			}
			tSeen[op.TNode] = true
		case OpMatch, OpRename:
			if op.QNode < 0 || op.TNode < 0 {
				t.Fatalf("malformed alignment %+v", op)
			}
			if qSeen[op.QNode] || tSeen[op.TNode] {
				t.Fatalf("node aligned twice: %+v", op)
			}
			qSeen[op.QNode] = true
			tSeen[op.TNode] = true
			if op.Op == OpMatch && q.Label(op.QNode) != doc.Label(op.TNode) {
				t.Errorf("match with different labels: %+v", op)
			}
			if op.Op == OpRename && q.Label(op.QNode) == doc.Label(op.TNode) {
				t.Errorf("rename with equal labels: %+v", op)
			}
			aligned = append(aligned, pair{op.QNode, op.TNode})
		}
	}
	// Every node must be covered exactly once (Definition 3, condition 1).
	for i, s := range qSeen {
		if !s {
			t.Errorf("query node %d not covered", i)
		}
	}
	for j, s := range tSeen {
		if !s {
			t.Errorf("document node %d not covered", j)
		}
	}
	// Ancestor and order conditions (Definition 3, condition 2).
	for a := 0; a < len(aligned); a++ {
		for b := 0; b < len(aligned); b++ {
			if a == b {
				continue
			}
			p1, p2 := aligned[a], aligned[b]
			if q.IsAncestor(p1.qi, p2.qi) != doc.IsAncestor(p1.tj, p2.tj) {
				t.Fatalf("ancestor condition violated by (%d,%d) and (%d,%d)", p1.qi, p1.tj, p2.qi, p2.tj)
			}
			leftQ := p1.qi < p2.qi && !q.IsAncestor(p2.qi, p1.qi)
			leftT := p1.tj < p2.tj && !doc.IsAncestor(p2.tj, p1.tj)
			if leftQ != leftT {
				t.Fatalf("order condition violated by (%d,%d) and (%d,%d)", p1.qi, p1.tj, p2.qi, p2.tj)
			}
		}
	}
	// The script cost must equal the distance.
	if want := NewComputer(m, q).Distance(doc); math.Abs(sum-want) > 1e-9 {
		t.Errorf("script cost %g != distance %g", sum, want)
	}
}

// TestEditScriptQuick validates scripts on random tree pairs under unit
// costs.
func TestEditScriptQuick(t *testing.T) {
	f := func(seed int64, qRaw, tRaw uint8) bool {
		qn := int(qRaw)%10 + 1
		tn := int(tRaw)%14 + 1
		q, doc := randPair(seed, qn, tn)
		c := NewComputer(cost.Unit{}, q)
		script := c.EditScript(doc)
		var sum float64
		qCover := make([]bool, q.Size())
		tCover := make([]bool, doc.Size())
		for _, op := range script {
			sum += op.Cost
			if op.QNode >= 0 {
				if qCover[op.QNode] {
					return false
				}
				qCover[op.QNode] = true
			}
			if op.TNode >= 0 {
				if tCover[op.TNode] {
					return false
				}
				tCover[op.TNode] = true
			}
		}
		for _, s := range qCover {
			if !s {
				return false
			}
		}
		for _, s := range tCover {
			if !s {
				return false
			}
		}
		return math.Abs(sum-c.Distance(doc)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEditScriptFullValidityRandom runs the complete Definition 3 check on
// a few dozen random pairs (the full check is quadratic in script length).
func TestEditScriptFullValidityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		d := dict.New()
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: rng.Intn(8) + 1, MaxFanout: 3, Labels: 3})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: rng.Intn(12) + 1, MaxFanout: 3, Labels: 3})
		c := NewComputer(cost.Unit{}, q)
		checkScriptValid(t, cost.Unit{}, q, doc, c.EditScript(doc))
	}
}

// TestEditScriptFanoutCosts validates scripts under a non-unit model.
func TestEditScriptFanoutCosts(t *testing.T) {
	m, err := cost.NewFanoutWeighted(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 25; i++ {
		d := dict.New()
		q := tree.Random(d, rng, tree.RandomConfig{Nodes: rng.Intn(7) + 1, MaxFanout: 3, Labels: 3})
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: rng.Intn(9) + 1, MaxFanout: 3, Labels: 3})
		c := NewComputer(m, q)
		script := c.EditScript(doc)
		var sum float64
		for _, op := range script {
			sum += op.Cost
		}
		if want := c.Distance(doc); math.Abs(sum-want) > 1e-9 {
			t.Errorf("script cost %g != distance %g", sum, want)
		}
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpMatch: "match", OpRename: "rename", OpDelete: "delete", OpInsert: "insert", Op(9): "Op(9)"} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}
