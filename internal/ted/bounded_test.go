package ted

import (
	"math"
	"math/rand"
	"testing"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/race"
	"tasm/internal/tree"
)

// TestBoundedExactBelowCutoff is the contract of the early-abort path,
// checked over many random tree pairs and cutoffs: every row entry whose
// true distance is at or below the cutoff must be exact, and every other
// entry must still exceed the cutoff (it may be inflated, up to +Inf,
// but must never dip to or below the cutoff, which would let a wrong
// entry into a ranking).
func TestBoundedExactBelowCutoff(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(42))
	fw, err := cost.NewFanoutWeighted(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []cost.Model{cost.Unit{}, fw} {
		for iter := 0; iter < 200; iter++ {
			q := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(12), MaxFanout: 3, Labels: 5})
			doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(40), MaxFanout: 4, Labels: 5})
			v := viewOf(t, doc)

			exactC := NewComputer(m, q)
			exact := append([]float64(nil), exactC.SubtreeDistancesView(v)...)

			// Cutoffs below, at, around and above the true distances.
			maxD := 0.0
			for _, x := range exact {
				if x > maxD {
					maxD = x
				}
			}
			cutoffs := []float64{0, exact[len(exact)-1], maxD / 2, maxD, maxD + 1}
			for _, cutoff := range cutoffs {
				boundedC := NewComputer(m, q)
				got, _ := boundedC.SubtreeDistancesViewBounded(v, cutoff)
				for j := range exact {
					if exact[j] <= cutoff && got[j] != exact[j] {
						t.Fatalf("iter %d cutoff %g: row[%d] = %g, want exact %g", iter, cutoff, j, got[j], exact[j])
					}
					if exact[j] > cutoff && !(got[j] > cutoff) {
						t.Fatalf("iter %d cutoff %g: row[%d] = %g ≤ cutoff but true distance %g exceeds it", iter, cutoff, j, got[j], exact[j])
					}
				}
				gotD, _ := NewComputer(m, q).DistanceViewBounded(v, cutoff)
				wantD := exact[len(exact)-1]
				if wantD <= cutoff && gotD != wantD {
					t.Fatalf("iter %d cutoff %g: DistanceViewBounded = %g, want exact %g", iter, cutoff, gotD, wantD)
				}
				if wantD > cutoff && !(gotD > cutoff) {
					t.Fatalf("iter %d cutoff %g: DistanceViewBounded = %g ≤ cutoff but true %g exceeds it", iter, cutoff, gotD, wantD)
				}
			}
		}
	}
}

// TestBoundedReusedComputerNoStaleRows: a computer alternating bounded
// (aborting) and exact evaluations must never leak +Inf or stale values
// from an aborted run into a later one — the abort path must invalidate
// exactly the cells it abandoned, and later runs must rewrite them.
func TestBoundedReusedComputerNoStaleRows(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(7))
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 10, MaxFanout: 3, Labels: 4})
	c := NewComputer(cost.Unit{}, q)
	oracle := NewComputer(cost.Unit{}, q)
	for iter := 0; iter < 100; iter++ {
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 1 + rng.Intn(50), MaxFanout: 4, Labels: 4})
		v := viewOf(t, doc)
		exact := append([]float64(nil), oracle.SubtreeDistancesView(v)...)
		// Aggressive cutoff 0 forces aborts on nearly everything...
		c.SubtreeDistancesViewBounded(v, 0)
		// ...after which an unbounded run on the same computer must be
		// exact everywhere.
		got := c.SubtreeDistancesView(v)
		for j := range exact {
			if got[j] != exact[j] {
				t.Fatalf("iter %d: row[%d] = %g after aborted run, want %g", iter, j, got[j], exact[j])
			}
		}
	}
}

// TestBoundedAbortReported: with an impossible cutoff the evaluation must
// abort (on any document larger than the query's reach) and report it.
func TestBoundedAbortReported(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(3))
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 8, MaxFanout: 3, Labels: 3})
	doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 60, MaxFanout: 4, Labels: 3})
	v := viewOf(t, doc)
	c := NewComputer(cost.Unit{}, q)
	row, aborted := c.SubtreeDistancesViewBounded(v, 0)
	if !aborted {
		t.Error("cutoff 0 on a 60-node document: expected an abort")
	}
	// The whole document cannot match an 8-node query at distance 0.
	if !(row[len(row)-1] > 0) {
		t.Errorf("root distance %g under cutoff 0, want > 0", row[len(row)-1])
	}
	if _, aborted := c.SubtreeDistancesViewBounded(v, math.Inf(1)); aborted {
		t.Error("infinite cutoff must never abort")
	}
}

// TestBoundedViewZeroAlloc: the bounded path shares the unbounded path's
// steady-state zero-allocation contract.
func TestBoundedViewZeroAlloc(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(11))
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 12, MaxFanout: 3, Labels: 6})
	doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 80, MaxFanout: 4, Labels: 6})
	v := viewOf(t, doc)
	c := NewComputer(cost.Unit{}, q)
	exact := c.SubtreeDistancesView(v) // warm scratch + oracle row
	cutoff := exact[len(exact)-1] / 2
	c.SubtreeDistancesViewBounded(v, cutoff) // warm the bounded path
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.SubtreeDistancesViewBounded(v, cutoff)
	})
	if allocs != 0 {
		t.Errorf("SubtreeDistancesViewBounded allocates %.1f objects per call in steady state, want 0", allocs)
	}
}
