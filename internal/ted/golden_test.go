package ted

import (
	"testing"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/tree"
)

// TestGoldenDistances pins down unit-cost distances for a curated corpus
// of tree pairs. Each case is small enough to verify by hand and each
// exercises a distinct mechanism of the edit distance; together they are
// the regression anchor for any future change to the dynamic program.
func TestGoldenDistances(t *testing.T) {
	cases := []struct {
		name string
		a, b string
		want float64
	}{
		{"identical single", "{a}", "{a}", 0},
		{"rename single", "{a}", "{b}", 1},
		{"identical deep", "{a{b{c}}}", "{a{b{c}}}", 0},
		{"grow leaf", "{a}", "{a{b}}", 1},
		{"shrink leaf", "{a{b}}", "{a}", 1},
		{"rename root only", "{a{b}{c}}", "{x{b}{c}}", 1},
		{"rename leaf only", "{a{b}{c}}", "{a{b}{x}}", 1},
		{"swap sibling labels", "{a{b}{c}}", "{a{c}{b}}", 2},
		{"delete inner node", "{a{b{c}{d}}}", "{a{c}{d}}", 1},
		{"insert inner node", "{a{c}{d}}", "{a{b{c}{d}}}", 1},
		{"split children (no move op)", "{a{b{c}{d}}}", "{a{b{c}}{b{d}}}", 3},
		{"chain vs star 3 (ancestorship kept)", "{a{b{c}}}", "{a{b}{c}}", 2},
		{"chain vs star 4", "{a{b{c{d}}}}", "{a{b}{c}{d}}", 4},
		{"reverse chain labels", "{a{b{c}}}", "{c{b{a}}}", 2},
		{"disjoint 3v3", "{a{b}{c}}", "{x{y}{z}}", 3},
		{"paper fig2", "{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}", 4},
		{"prefix sharing", "{a{b}{c}{d}}", "{a{b}{c}}", 1},
		{"suffix sharing", "{a{b}{c}{d}}", "{a{c}{d}}", 1},
		{"middle removal", "{a{b}{c}{d}}", "{a{b}{d}}", 1},
		{"grow by two levels", "{a}", "{a{b{c}}}", 2},
		{"all leaves renamed", "{r{a}{b}{c}}", "{r{x}{y}{z}}", 3},
		{"move subtree across (rename+del+ins)", "{r{a{x}{y}}{b}}", "{r{a}{b{x}{y}}}", 3},
		{"deep vs shallow same labels", "{a{a{a}}}", "{a}", 2},
		{"single vs big star", "{a}", "{a{b}{c}{d}{e}{f}}", 5},
		{"two renames two inserts", "{p{q}{r}}", "{p{x{q}}{y{r}}}", 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := dict.New()
			a := tree.MustParse(d, c.a)
			b := tree.MustParse(d, c.b)
			if got := Distance(cost.Unit{}, a, b); got != c.want {
				t.Errorf("δ(%s, %s) = %g, want %g", c.a, c.b, got, c.want)
			}
			// Symmetry comes free with the symmetric cost model.
			if got := Distance(cost.Unit{}, b, a); got != c.want {
				t.Errorf("δ(%s, %s) = %g, want %g (symmetry)", c.b, c.a, got, c.want)
			}
			// The independent reference implementation must agree.
			if got := ReferenceDistance(cost.Unit{}, a, b); got != c.want {
				t.Errorf("reference δ = %g, want %g", got, c.want)
			}
			// And an optimal edit script must realize the distance.
			var sum float64
			for _, op := range NewComputer(cost.Unit{}, a).EditScript(b) {
				sum += op.Cost
			}
			if sum != c.want {
				t.Errorf("edit script cost %g, want %g", sum, c.want)
			}
		})
	}
}
