// Package ted computes the tree edit distance between ordered labeled
// trees with the dynamic-programming algorithm of Zhang and Shasha
// (SIAM J. Computing 1989), the algorithm the TASM paper builds on
// (Section IV-E).
//
// The algorithm decomposes both trees into their relevant subtrees (rooted
// at the LR-keyroots) and computes, for every pair of keyroots, the edit
// distance between all pairs of prefixes of the two subtrees. Prefix pairs
// that are themselves whole subtrees are recorded in the permanent tree
// distance matrix td, so a single run yields the distance between every
// pair of subtrees of the two inputs — the property TASM-dynamic exploits:
// the last row of td holds the distance from the whole query to every
// subtree of the document.
//
// # Flat candidate views
//
// The document side of a computation may be a materialized tree.Tree or a
// flat tree.View (SubtreeDistancesView/DistanceView). The view path is
// the hot path of TASM-postorder: a Computer keeps all of its working
// state — the stride-indexed 1-D fd/td backings, the per-document cost
// and label scratch — across calls, and a View caches its keyroots across
// the evaluations of one fill, so evaluating a candidate in steady state
// performs zero heap allocations. Document labels are resolved into the
// query's dictionary once per run (an alias when the dictionaries are
// shared), so the per-cell rename check is a single integer comparison.
package ted

import (
	"math"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/tree"
)

// Probe receives instrumentation callbacks from distance computations.
// It exists to reproduce Figures 11 and 12 of the paper, which count the
// relevant subtrees (per size) a TASM algorithm evaluates.
type Probe interface {
	// RelevantSubtree is called once for every relevant subtree of the
	// document-side tree whose prefix distances are computed, with the
	// subtree's size.
	RelevantSubtree(size int)
}

// Computer computes tree edit distances between a fixed query and
// documents under a fixed cost model, reusing internal buffers across
// calls. It is the unit of work TASM-postorder performs per candidate
// subtree, so avoiding per-call allocation matters: in steady state (all
// scratch grown to the largest document seen) a call evaluating a
// tree.View allocates nothing.
//
// A Computer is not safe for concurrent use.
type Computer struct {
	model cost.Model
	unit  bool // model is cost.Unit: per-node costs are the constant 1
	q     *tree.Tree
	qKey  []int     // keyroots of the query
	qCost []float64 // per-node costs of the query
	qLab  []int     // interned labels of the query (alias of q's array)
	qLML  []int     // leftmost leaves of the query (alias of q's array)

	// fd is the forest-distance working matrix and td the permanent tree
	// distance matrix for the current document, both flattened onto
	// stride-indexed 1-D backings grown on demand: fd is (m+1)×fdCols
	// with rows of fdCols entries, td is m×tdCols.
	fd     []float64
	fdCols int
	td     []float64
	tdCols int

	// Per-run document-side scratch, valid for the last document until
	// the next run: node costs, and labels resolved into the query's
	// dictionary (-1 for labels the query's dictionary does not know).
	// tLab aliases the document's label array when dictionaries are
	// shared; tLabScratch is the owned buffer for the translating path.
	tCost       []float64
	tLab        []int
	tLabScratch []int

	probe Probe
}

// NewComputer returns a Computer for query q under model m.
// The query must be non-empty.
func NewComputer(m cost.Model, q *tree.Tree) *Computer {
	_, unit := m.(cost.Unit)
	c := &Computer{model: m, unit: unit, q: q, qKey: q.Keyroots(), qLab: q.LabelIDs(), qLML: q.LMLs()}
	c.qCost = make([]float64, q.Size())
	for i := 0; i < q.Size(); i++ {
		c.qCost[i] = m.Cost(q, i)
	}
	return c
}

// SetProbe installs a probe receiving relevant-subtree callbacks; nil
// disables instrumentation (the default).
func (c *Computer) SetProbe(p Probe) { c.probe = p }

// Query returns the query tree the computer was built for.
func (c *Computer) Query() *tree.Tree { return c.q }

// Distance returns δ(Q, T), the tree edit distance between the query and t.
func (c *Computer) Distance(t *tree.Tree) float64 {
	c.run(t)
	return c.tdAt(c.q.Size()-1, t.Size()-1)
}

// DistanceView returns δ(Q, V) for the tree held by a flat view.
//
//tasm:hotpath
func (c *Computer) DistanceView(v *tree.View) float64 {
	c.runView(v)
	return c.tdAt(c.q.Size()-1, v.Size()-1)
}

// SubtreeDistances returns the distance from the whole query Q to every
// subtree T_j of t: row Q of the tree distance matrix (Figure 3 of the
// paper). Index j of the result corresponds to the subtree rooted at
// postorder node j of t. The returned slice is valid until the next call
// on the computer.
func (c *Computer) SubtreeDistances(t *tree.Tree) []float64 {
	c.run(t)
	return c.tdRow(c.q.Size()-1, t.Size())
}

// SubtreeDistancesView is SubtreeDistances for a flat view: the hot path
// of TASM-postorder. In steady state it performs no heap allocation. The
// returned slice is valid until the next call on the computer.
//
//tasm:hotpath
func (c *Computer) SubtreeDistancesView(v *tree.View) []float64 {
	c.runView(v)
	return c.tdRow(c.q.Size()-1, v.Size())
}

// SubtreeDistancesViewBounded is SubtreeDistancesView with an early-abort
// cutoff, the second gate of the candidate pruning pipeline. Entries of
// the returned row whose true distance is ≤ cutoff are exact; entries
// whose true distance exceeds cutoff may instead hold any value > cutoff
// (typically +Inf), so callers that discard distances above the cutoff —
// a full top-k ranking whose k-th distance is the cutoff — observe
// results identical to the unbounded evaluation. The second return value
// reports whether any keyroot pair was abandoned early (for
// instrumentation; false means the row is exact everywhere).
//
// The abort criterion is sound per keyroot pair: within one forest
// distance computation every cell of a later row is lower-bounded by the
// minimum of any earlier row (restricting an optimal edit mapping of the
// larger prefix pair to a smaller query prefix yields a cheaper mapping
// onto some document prefix), so once a full fd row's minimum exceeds the
// cutoff, every tree distance the pair would still produce provably
// exceeds it too. Abandoned tree-distance cells are published as +Inf,
// which later pairs may read only as overestimates of sub-alignments that
// already exceed the cutoff — exactness below the cutoff is preserved
// inductively. Like the unbounded path, it allocates nothing in steady
// state.
//
//tasm:hotpath
func (c *Computer) SubtreeDistancesViewBounded(v *tree.View, cutoff float64) ([]float64, bool) {
	aborted := c.runViewBounded(v, cutoff)
	return c.tdRow(c.q.Size()-1, v.Size()), aborted
}

// DistanceViewBounded is DistanceView with an early-abort cutoff: the
// returned distance is exact when ≤ cutoff and otherwise only guaranteed
// to exceed the cutoff. The bool reports whether the evaluation aborted
// early.
//
//tasm:hotpath
func (c *Computer) DistanceViewBounded(v *tree.View, cutoff float64) (float64, bool) {
	aborted := c.runViewBounded(v, cutoff)
	return c.tdAt(c.q.Size()-1, v.Size()-1), aborted
}

// Matrix returns the full tree distance matrix td where td[i][j] is the
// distance between the query subtree rooted at its postorder node i and
// the document subtree rooted at postorder node j. The row slices alias
// the computer's backing and are valid until the next call on it.
func (c *Computer) Matrix(t *tree.Tree) [][]float64 {
	c.run(t)
	m, n := c.q.Size(), t.Size()
	out := make([][]float64, m)
	for i := range out {
		out[i] = c.tdRow(i, n)
	}
	return out
}

// tdAt returns td[i][j] of the flattened tree distance matrix.
func (c *Computer) tdAt(i, j int) float64 { return c.td[i*c.tdCols+j] }

// tdRow returns the first n entries of row i of td.
func (c *Computer) tdRow(i, n int) []float64 {
	off := i * c.tdCols
	return c.td[off : off+n]
}

// run executes the Zhang–Shasha dynamic program for (c.q, t).
func (c *Computer) run(t *tree.Tree) {
	n := t.Size()
	c.ensure(n)
	c.fillCosts(t, n)
	if t.Dict() == c.q.Dict() {
		c.tLab = t.LabelIDs()
	} else {
		c.translate(t.Dict(), t.LabelIDs())
	}
	tLML := t.LMLs()
	c.runFlat(tLML, t.Keyroots())
}

// prepareView readies the per-run state for evaluating v: grows the
// scratch for its size, fills document-side costs, and resolves its
// labels into the query's dictionary (an alias when shared).
func (c *Computer) prepareView(v *tree.View) {
	n := v.Size()
	c.ensure(n)
	if c.unit {
		for j := 0; j < n; j++ {
			c.tCost[j] = 1
		}
	} else {
		c.fillCosts(v.Tree(), n) //tasm:allow alloc — non-unit cost models read labels through the aliased shell tree; unit-cost scans never take this branch
	}
	if v.Dict() == c.q.Dict() {
		c.tLab = v.LabelIDs()
	} else {
		c.translate(v.Dict(), v.LabelIDs())
	}
}

// runView executes the dynamic program for (c.q, v). The view's cached
// keyroots make repeated evaluations of one fill allocation-free.
func (c *Computer) runView(v *tree.View) {
	c.prepareView(v)
	c.runFlat(v.LMLs(), v.Keyroots())
}

// runViewBounded is runView with the early-abort cutoff threaded into the
// keyroot loop; it reports whether any pair aborted.
func (c *Computer) runViewBounded(v *tree.View, cutoff float64) bool {
	c.prepareView(v)
	return c.runFlatBounded(v.LMLs(), v.Keyroots(), cutoff)
}

// fillCosts fills c.tCost[0:n] with the model costs of t's nodes.
func (c *Computer) fillCosts(t *tree.Tree, n int) {
	if c.unit {
		for j := 0; j < n; j++ {
			c.tCost[j] = 1
		}
		return
	}
	for j := 0; j < n; j++ {
		c.tCost[j] = c.model.Cost(t, j)
	}
}

// translate resolves document labels interned in d into the query's
// dictionary, writing ids (or -1 for unknown labels) into the owned
// scratch. Query label ids are ≥ 0, so -1 never compares equal.
func (c *Computer) translate(d dict.Dict, labels []int) {
	qd := c.q.Dict()
	s := c.tLabScratch
	if cap(s) < len(labels) {
		s = make([]int, len(labels)) //tasm:allow alloc — grow-only scratch: reallocates only when a document exceeds every prior size
	}
	s = s[:len(labels)]
	for j, id := range labels {
		if qid, ok := qd.Lookup(d.Label(id)); ok {
			s[j] = qid
		} else {
			s[j] = -1
		}
	}
	c.tLabScratch, c.tLab = s, s
}

// runFlat is the keyroot double loop over the prepared per-run state.
func (c *Computer) runFlat(tLML, tKey []int) {
	if c.probe != nil {
		for _, kt := range tKey {
			c.probe.RelevantSubtree(kt - tLML[kt] + 1)
		}
	}
	for _, kq := range c.qKey {
		lq := c.qLML[kq]
		for _, kt := range tKey {
			c.forestDist(tLML, kq, lq, kt, tLML[kt])
		}
	}
}

// forestDist fills the forest distance matrix for the keyroot pair
// (kq, kt) and records tree distances for prefix pairs that are whole
// subtrees. Forest indices are 1-based offsets relative to the leftmost
// leaves lq and lt; row/column 0 is the empty forest. All state is read
// through local slice headers over the flat backings so the inner loop is
// free of pointer chasing and per-cell dictionary checks.
func (c *Computer) forestDist(tLML []int, kq, lq, kt, lt int) {
	fd, fw := c.fd, c.fdCols
	qCost, qLab, qLML := c.qCost, c.qLab, c.qLML
	tCost, tLab := c.tCost, c.tLab

	fd[0] = 0
	for i := lq; i <= kq; i++ {
		fd[(i-lq+1)*fw] = fd[(i-lq)*fw] + qCost[i] // delete q_i
	}
	for j := lt; j <= kt; j++ {
		fd[j-lt+1] = fd[j-lt] + tCost[j] // insert t_j
	}
	for i := lq; i <= kq; i++ {
		di := i - lq + 1
		row := fd[di*fw : di*fw+kt-lt+2]
		prev := fd[(di-1)*fw : (di-1)*fw+kt-lt+2]
		qc, ql := qCost[i], qLab[i]
		qlmlIsLq := qLML[i] == lq
		qsubRow := fd[(qLML[i]-lq)*fw:]
		tdRow := c.td[i*c.tdCols:]
		for j := lt; j <= kt; j++ {
			dj := j - lt + 1
			del := prev[dj] + qc
			ins := row[dj-1] + tCost[j]
			if qlmlIsLq && tLML[j] == lt {
				// Both prefixes are whole subtrees: the third option is a
				// rename (or match) of the two roots. Labels were resolved
				// into one dictionary per run, so this is an id compare.
				ren := prev[dj-1]
				if ql != tLab[j] {
					ren += (qc + tCost[j]) / 2
				}
				d := min3(del, ins, ren)
				row[dj] = d
				tdRow[j] = d
			} else {
				// At least one prefix is a proper forest: the third option
				// aligns the two rightmost subtrees using the already
				// computed tree distance.
				sub := qsubRow[tLML[j]-lt] + tdRow[j]
				row[dj] = min3(del, ins, sub)
			}
		}
	}
}

// runFlatBounded is runFlat with the abort cutoff passed to every pair.
func (c *Computer) runFlatBounded(tLML, tKey []int, cutoff float64) bool {
	if c.probe != nil {
		for _, kt := range tKey {
			c.probe.RelevantSubtree(kt - tLML[kt] + 1)
		}
	}
	aborted := false
	for _, kq := range c.qKey {
		lq := c.qLML[kq]
		for _, kt := range tKey {
			if !c.forestDistBounded(tLML, kq, lq, kt, tLML[kt], cutoff) {
				aborted = true
			}
		}
	}
	return aborted
}

// forestDistBounded is forestDist tracking the minimum of each completed
// fd row; once that minimum exceeds the cutoff it abandons the pair,
// publishes +Inf for the tree-distance cells the pair would still have
// written (so later pairs and the caller never read stale values from a
// previous run), and returns false. The per-cell work is identical to
// forestDist plus one comparison.
func (c *Computer) forestDistBounded(tLML []int, kq, lq, kt, lt int, cutoff float64) bool {
	fd, fw := c.fd, c.fdCols
	qCost, qLab, qLML := c.qCost, c.qLab, c.qLML
	tCost, tLab := c.tCost, c.tLab

	fd[0] = 0
	for i := lq; i <= kq; i++ {
		fd[(i-lq+1)*fw] = fd[(i-lq)*fw] + qCost[i] // delete q_i
	}
	for j := lt; j <= kt; j++ {
		fd[j-lt+1] = fd[j-lt] + tCost[j] // insert t_j
	}
	for i := lq; i <= kq; i++ {
		di := i - lq + 1
		row := fd[di*fw : di*fw+kt-lt+2]
		prev := fd[(di-1)*fw : (di-1)*fw+kt-lt+2]
		qc, ql := qCost[i], qLab[i]
		qlmlIsLq := qLML[i] == lq
		qsubRow := fd[(qLML[i]-lq)*fw:]
		tdRow := c.td[i*c.tdCols:]
		rowMin := row[0] // column 0: delete the whole query prefix
		for j := lt; j <= kt; j++ {
			dj := j - lt + 1
			del := prev[dj] + qc
			ins := row[dj-1] + tCost[j]
			var d float64
			if qlmlIsLq && tLML[j] == lt {
				ren := prev[dj-1]
				if ql != tLab[j] {
					ren += (qc + tCost[j]) / 2
				}
				d = min3(del, ins, ren)
				tdRow[j] = d
			} else {
				sub := qsubRow[tLML[j]-lt] + tdRow[j]
				d = min3(del, ins, sub)
			}
			row[dj] = d
			if d < rowMin {
				rowMin = d
			}
		}
		if rowMin > cutoff && i < kq {
			c.invalidatePair(tLML, i+1, kq, lq, kt, lt)
			return false
		}
	}
	return true
}

// invalidatePair marks the tree-distance cells an aborted pair would have
// written in rows from..kq as exceeding every cutoff: td[i][j] = +Inf for
// query rows whose prefix is the whole subtree rooted at i (qLML[i] == lq)
// and document columns that are whole subtrees of the kt keyroot region
// (tLML[j] == lt).
func (c *Computer) invalidatePair(tLML []int, from, kq, lq, kt, lt int) {
	inf := math.Inf(1)
	for i := from; i <= kq; i++ {
		if c.qLML[i] != lq {
			continue
		}
		tdRow := c.td[i*c.tdCols:]
		for j := lt; j <= kt; j++ {
			if tLML[j] == lt {
				tdRow[j] = inf
			}
		}
	}
}

// renameCost returns γ(q_i, t_j) for two non-empty nodes (Definition 4)
// using the per-run resolved labels and costs: 0 on equal labels, the
// mean node cost otherwise. Valid after run/runView for the same
// document.
func (c *Computer) renameCost(i, j int) float64 {
	if c.qLab[i] == c.tLab[j] {
		return 0
	}
	return (c.qCost[i] + c.tCost[j]) / 2
}

// ensure grows the working state for a document of n nodes: fd to
// (m+1)×(n+1), td to m×n, and the per-document scratch to n. Growth is
// geometric so a scan whose candidate sizes creep upward reallocates
// O(log τ) times, not O(candidates).
func (c *Computer) ensure(n int) {
	m := c.q.Size()
	if c.fdCols < n+1 {
		cols := 2 * c.fdCols
		if cols < n+1 {
			cols = n + 1
		}
		c.fdCols = cols
		c.fd = make([]float64, (m+1)*cols) //tasm:allow alloc — grow-only scratch: reallocates only when a document exceeds every prior size
	}
	if c.tdCols < n {
		cols := 2 * c.tdCols
		if cols < n {
			cols = n
		}
		c.tdCols = cols
		c.td = make([]float64, m*cols) //tasm:allow alloc — grow-only scratch: reallocates only when a document exceeds every prior size
	}
	if cap(c.tCost) < n {
		c.tCost = make([]float64, c.fdCols) //tasm:allow alloc — grow-only scratch: reallocates only when a document exceeds every prior size
	}
	c.tCost = c.tCost[:n]
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Distance is a convenience wrapper computing δ(q, t) with a fresh
// Computer. Prefer a long-lived Computer when evaluating one query against
// many documents.
func Distance(m cost.Model, q, t *tree.Tree) float64 {
	return NewComputer(m, q).Distance(t)
}
