// Package ted computes the tree edit distance between ordered labeled
// trees with the dynamic-programming algorithm of Zhang and Shasha
// (SIAM J. Computing 1989), the algorithm the TASM paper builds on
// (Section IV-E).
//
// The algorithm decomposes both trees into their relevant subtrees (rooted
// at the LR-keyroots) and computes, for every pair of keyroots, the edit
// distance between all pairs of prefixes of the two subtrees. Prefix pairs
// that are themselves whole subtrees are recorded in the permanent tree
// distance matrix td, so a single run yields the distance between every
// pair of subtrees of the two inputs — the property TASM-dynamic exploits:
// the last row of td holds the distance from the whole query to every
// subtree of the document.
package ted

import (
	"tasm/internal/cost"
	"tasm/internal/tree"
)

// Probe receives instrumentation callbacks from distance computations.
// It exists to reproduce Figures 11 and 12 of the paper, which count the
// relevant subtrees (per size) a TASM algorithm evaluates.
type Probe interface {
	// RelevantSubtree is called once for every relevant subtree of the
	// document-side tree whose prefix distances are computed, with the
	// subtree's size.
	RelevantSubtree(size int)
}

// Computer computes tree edit distances between a fixed query and
// documents under a fixed cost model, reusing internal buffers across
// calls. It is the unit of work TASM-postorder performs per candidate
// subtree, so avoiding per-call allocation matters.
//
// A Computer is not safe for concurrent use.
type Computer struct {
	model cost.Model
	q     *tree.Tree
	qKey  []int     // keyroots of the query
	qCost []float64 // per-node costs of the query

	// fd is the forest-distance working matrix, (m+1)×(τmax+1) rows grown
	// on demand; td is the permanent tree distance matrix for the current
	// document.
	fd [][]float64
	td [][]float64

	probe Probe
}

// NewComputer returns a Computer for query q under model m.
// The query must be non-empty.
func NewComputer(m cost.Model, q *tree.Tree) *Computer {
	c := &Computer{model: m, q: q, qKey: q.Keyroots()}
	c.qCost = make([]float64, q.Size())
	for i := 0; i < q.Size(); i++ {
		c.qCost[i] = m.Cost(q, i)
	}
	return c
}

// SetProbe installs a probe receiving relevant-subtree callbacks; nil
// disables instrumentation (the default).
func (c *Computer) SetProbe(p Probe) { c.probe = p }

// Query returns the query tree the computer was built for.
func (c *Computer) Query() *tree.Tree { return c.q }

// Distance returns δ(Q, T), the tree edit distance between the query and t.
func (c *Computer) Distance(t *tree.Tree) float64 {
	c.run(t)
	return c.td[c.q.Size()-1][t.Size()-1]
}

// SubtreeDistances returns the distance from the whole query Q to every
// subtree T_j of t: row Q of the tree distance matrix (Figure 3 of the
// paper). Index j of the result corresponds to the subtree rooted at
// postorder node j of t. The returned slice is valid until the next call
// on the computer.
func (c *Computer) SubtreeDistances(t *tree.Tree) []float64 {
	c.run(t)
	return c.td[c.q.Size()-1]
}

// Matrix returns the full tree distance matrix td where td[i][j] is the
// distance between the query subtree rooted at its postorder node i and
// the document subtree rooted at postorder node j. The matrix is valid
// until the next call on the computer.
func (c *Computer) Matrix(t *tree.Tree) [][]float64 {
	c.run(t)
	return c.td[:c.q.Size()]
}

// run executes the Zhang–Shasha dynamic program for (c.q, t).
func (c *Computer) run(t *tree.Tree) {
	m, n := c.q.Size(), t.Size()
	c.ensure(m, n)
	q := c.q

	tCost := make([]float64, n)
	for j := 0; j < n; j++ {
		tCost[j] = c.model.Cost(t, j)
	}
	tKey := t.Keyroots()
	if c.probe != nil {
		for _, kt := range tKey {
			c.probe.RelevantSubtree(t.SubtreeSize(kt))
		}
	}

	for _, kq := range c.qKey {
		lq := q.LML(kq)
		for _, kt := range tKey {
			lt := t.LML(kt)
			c.forestDist(t, tCost, kq, lq, kt, lt)
		}
	}
}

// forestDist fills the forest distance matrix for the keyroot pair
// (kq, kt) and records tree distances for prefix pairs that are whole
// subtrees. Forest indices are 1-based offsets relative to the leftmost
// leaves lq and lt; row/column 0 is the empty forest.
func (c *Computer) forestDist(t *tree.Tree, tCost []float64, kq, lq, kt, lt int) {
	q := c.q
	fd, td := c.fd, c.td

	fd[0][0] = 0
	for i := lq; i <= kq; i++ {
		fd[i-lq+1][0] = fd[i-lq][0] + c.qCost[i] // delete q_i
	}
	for j := lt; j <= kt; j++ {
		fd[0][j-lt+1] = fd[0][j-lt] + tCost[j] // insert t_j
	}
	for i := lq; i <= kq; i++ {
		di := i - lq + 1
		qlmlIsLq := q.LML(i) == lq
		for j := lt; j <= kt; j++ {
			dj := j - lt + 1
			del := fd[di-1][dj] + c.qCost[i]
			ins := fd[di][dj-1] + tCost[j]
			if qlmlIsLq && t.LML(j) == lt {
				// Both prefixes are whole subtrees: the third option is a
				// rename (or match) of the two roots.
				ren := fd[di-1][dj-1] + c.renameCost(i, t, tCost, j)
				d := min3(del, ins, ren)
				fd[di][dj] = d
				td[i][j] = d
			} else {
				// At least one prefix is a proper forest: the third option
				// aligns the two rightmost subtrees using the already
				// computed tree distance.
				sub := fd[q.LML(i)-lq][t.LML(j)-lt] + td[i][j]
				fd[di][dj] = min3(del, ins, sub)
			}
		}
	}
}

// renameCost returns γ(q_i, t_j) for two non-empty nodes (Definition 4):
// 0 on equal labels, the mean node cost otherwise.
func (c *Computer) renameCost(i int, t *tree.Tree, tCost []float64, j int) float64 {
	if c.q.LabelID(i) == t.LabelID(j) && c.q.Dict() == t.Dict() {
		return 0
	}
	if c.q.Dict() != t.Dict() && c.q.Label(i) == t.Label(j) {
		return 0
	}
	return (c.qCost[i] + tCost[j]) / 2
}

// ensure grows the working matrices to at least (m+1)×(n+1) / m×n.
func (c *Computer) ensure(m, n int) {
	if len(c.fd) < m+1 || len(c.fd) > 0 && len(c.fd[0]) < n+1 {
		rows := m + 1
		cols := n + 1
		if len(c.fd) > rows {
			rows = len(c.fd)
		}
		if len(c.fd) > 0 && len(c.fd[0]) > cols {
			cols = len(c.fd[0])
		}
		c.fd = allocMatrix(rows, cols)
	}
	if len(c.td) < m || len(c.td) > 0 && len(c.td[0]) < n {
		rows := m
		cols := n
		if len(c.td) > rows {
			rows = len(c.td)
		}
		if len(c.td) > 0 && len(c.td[0]) > cols {
			cols = len(c.td[0])
		}
		c.td = allocMatrix(rows, cols)
	}
}

// allocMatrix allocates a rows×cols matrix backed by one contiguous slice.
func allocMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Distance is a convenience wrapper computing δ(q, t) with a fresh
// Computer. Prefer a long-lived Computer when evaluating one query against
// many documents.
func Distance(m cost.Model, q, t *tree.Tree) float64 {
	return NewComputer(m, q).Distance(t)
}
