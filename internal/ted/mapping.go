package ted

import (
	"fmt"
	"math"

	"tasm/internal/tree"
)

// Op is the kind of one edit operation.
type Op int

const (
	// OpMatch aligns two equally labeled nodes at zero cost.
	OpMatch Op = iota
	// OpRename aligns two differently labeled nodes.
	OpRename
	// OpDelete removes a query node.
	OpDelete
	// OpInsert adds a document node.
	OpInsert
)

// String returns the conventional name of the operation.
func (o Op) String() string {
	switch o {
	case OpMatch:
		return "match"
	case OpRename:
		return "rename"
	case OpDelete:
		return "delete"
	case OpInsert:
		return "insert"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// EditOp is one operation of an optimal edit script between the query and
// a document tree: a node alignment of the least costly edit mapping
// (Definitions 3–6 of the paper). QNode and TNode are 0-based postorder
// indices; QNode is -1 for inserts, TNode is -1 for deletes.
type EditOp struct {
	Op           Op
	QNode, TNode int
	Cost         float64
}

// EditScript returns an optimal edit script transforming the query into t,
// in descending postorder of the involved nodes. The sum of the operation
// costs equals Distance(t). The script is recovered by re-running the
// forest dynamic program along the optimal path, so it costs about as much
// as a second distance computation.
func (c *Computer) EditScript(t *tree.Tree) []EditOp {
	c.run(t) // ensure td is filled for every subtree pair; tCost/tLab stay valid
	b := &backtracker{c: c, t: t, tCost: c.tCost}
	b.treePair(c.q.Root(), t.Root())
	return b.ops
}

type backtracker struct {
	c     *Computer
	t     *tree.Tree
	tCost []float64 // per-run document costs of c (read-only)
	ops   []EditOp
}

const eps = 1e-9

// treePair emits the operations aligning query subtree Q_i with document
// subtree T_j. It recomputes the forest-distance matrix of the pair's
// leftmost-leaf frame and walks the optimal path backwards.
func (b *backtracker) treePair(i, j int) {
	q, t := b.c.q, b.t
	lq, lt := q.LML(i), t.LML(j)
	fd := b.forestMatrix(i, j)

	x, y := i, j
	for x >= lq || y >= lt {
		dx, dy := x-lq+1, y-lt+1
		switch {
		case x >= lq && close(fd[dx][dy], fd[dx-1][dy]+b.c.qCost[x]):
			b.ops = append(b.ops, EditOp{Op: OpDelete, QNode: x, TNode: -1, Cost: b.c.qCost[x]})
			x--
		case y >= lt && close(fd[dx][dy], fd[dx][dy-1]+b.tCost[y]):
			b.ops = append(b.ops, EditOp{Op: OpInsert, QNode: -1, TNode: y, Cost: b.tCost[y]})
			y--
		case q.LML(x) == lq && t.LML(y) == lt:
			// Whole-subtree prefixes: the roots align directly.
			cost := b.renameCost(x, y)
			op := OpRename
			if cost == 0 {
				op = OpMatch
			}
			b.ops = append(b.ops, EditOp{Op: op, QNode: x, TNode: y, Cost: cost})
			x--
			y--
		default:
			// The rightmost subtrees align as a unit via the tree
			// distance; recurse into that pair, then skip both subtrees.
			b.treePair(x, y)
			x = q.LML(x) - 1
			y = t.LML(y) - 1
		}
	}
}

// forestMatrix recomputes the forest distance matrix for the keyroot frame
// rooted at (i, j): distances between prefixes of Q[lml(i)..i] and
// T[lml(j)..j], using the already filled tree distance matrix for inner
// subtree pairs. It mirrors Computer.forestDist but into a private matrix
// so recursion does not clobber shared state.
func (b *backtracker) forestMatrix(i, j int) [][]float64 {
	q, t := b.c.q, b.t
	lq, lt := q.LML(i), t.LML(j)
	fd := allocMatrix(i-lq+2, j-lt+2)
	fd[0][0] = 0
	for x := lq; x <= i; x++ {
		fd[x-lq+1][0] = fd[x-lq][0] + b.c.qCost[x]
	}
	for y := lt; y <= j; y++ {
		fd[0][y-lt+1] = fd[0][y-lt] + b.tCost[y]
	}
	for x := lq; x <= i; x++ {
		dx := x - lq + 1
		for y := lt; y <= j; y++ {
			dy := y - lt + 1
			del := fd[dx-1][dy] + b.c.qCost[x]
			ins := fd[dx][dy-1] + b.tCost[y]
			if q.LML(x) == lq && t.LML(y) == lt {
				ren := fd[dx-1][dy-1] + b.renameCost(x, y)
				fd[dx][dy] = min3(del, ins, ren)
			} else {
				sub := fd[q.LML(x)-lq][t.LML(y)-lt] + b.c.tdAt(x, y)
				fd[dx][dy] = min3(del, ins, sub)
			}
		}
	}
	return fd
}

func (b *backtracker) renameCost(x, y int) float64 {
	return b.c.renameCost(x, y)
}

// allocMatrix allocates a rows×cols matrix backed by one contiguous slice.
// Only the backtracker needs 2-D views; the Computer's own matrices are
// flat (see zhangshasha.go).
func allocMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

func close(a, b float64) bool { return math.Abs(a-b) <= eps }
