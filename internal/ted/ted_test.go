package ted

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/tree"
)

// fig2 returns the example query G and document H of Figure 2 of the
// paper, sharing one dictionary.
func fig2(t *testing.T) (q, doc *tree.Tree) {
	t.Helper()
	d := dict.New()
	q = tree.MustParse(d, "{a{b}{c}}")
	doc = tree.MustParse(d, "{x{a{b}{d}}{a{b}{c}}}")
	return q, doc
}

// TestPaperExampleMatrix reproduces Figure 3: the full tree distance
// matrix between the example query G and document H under unit costs.
func TestPaperExampleMatrix(t *testing.T) {
	q, doc := fig2(t)
	want := [3][7]float64{
		{0, 1, 2, 0, 1, 2, 6}, // G1 = {b}
		{1, 1, 3, 1, 0, 2, 6}, // G2 = {c}
		{2, 3, 1, 2, 2, 0, 4}, // G3 = {a{b}{c}}
	}
	got := NewComputer(cost.Unit{}, q).Matrix(doc)
	for i := 0; i < 3; i++ {
		for j := 0; j < 7; j++ {
			if got[i][j] != want[i][j] {
				t.Errorf("td[G%d][H%d] = %g, want %g", i+1, j+1, got[i][j], want[i][j])
			}
		}
	}
}

func TestDistancePaperExample(t *testing.T) {
	q, doc := fig2(t)
	if got := Distance(cost.Unit{}, q, doc); got != 4 {
		t.Errorf("δ(G,H) = %g, want 4", got)
	}
}

func TestSubtreeDistancesIsLastMatrixRow(t *testing.T) {
	q, doc := fig2(t)
	c := NewComputer(cost.Unit{}, q)
	row := c.SubtreeDistances(doc)
	want := []float64{2, 3, 1, 2, 2, 0, 4}
	for j, w := range want {
		if row[j] != w {
			t.Errorf("row[%d] = %g, want %g", j, row[j], w)
		}
	}
}

func TestDistanceIdenticalTrees(t *testing.T) {
	d := dict.New()
	for _, s := range []string{"{a}", "{a{b}}", "{x{a{b}{d}}{a{b}{c}}}"} {
		a := tree.MustParse(d, s)
		b := tree.MustParse(d, s)
		if got := Distance(cost.Unit{}, a, b); got != 0 {
			t.Errorf("δ(%s,%s) = %g, want 0", s, s, got)
		}
	}
}

func TestDistanceSingleNodes(t *testing.T) {
	d := dict.New()
	a := tree.MustParse(d, "{a}")
	b := tree.MustParse(d, "{b}")
	if got := Distance(cost.Unit{}, a, b); got != 1 {
		t.Errorf("rename cost: δ({a},{b}) = %g, want 1", got)
	}
	a2 := tree.MustParse(d, "{a}")
	if got := Distance(cost.Unit{}, a, a2); got != 0 {
		t.Errorf("δ({a},{a}) = %g, want 0", got)
	}
}

func TestDistanceInsertDelete(t *testing.T) {
	d := dict.New()
	small := tree.MustParse(d, "{a}")
	big := tree.MustParse(d, "{a{b}{c}{d}}")
	// Transforming {a} into the big tree requires 3 insertions.
	if got := Distance(cost.Unit{}, small, big); got != 3 {
		t.Errorf("δ = %g, want 3", got)
	}
	// And symmetrically 3 deletions.
	if got := Distance(cost.Unit{}, big, small); got != 3 {
		t.Errorf("δ = %g, want 3", got)
	}
}

func TestDistanceDeleteInnerNode(t *testing.T) {
	d := dict.New()
	// Deleting the inner b (connecting c to a) transforms one into the other.
	withB := tree.MustParse(d, "{a{b{c}}}")
	withoutB := tree.MustParse(d, "{a{c}}")
	if got := Distance(cost.Unit{}, withB, withoutB); got != 1 {
		t.Errorf("δ = %g, want 1 (single inner deletion)", got)
	}
}

func TestPerLabelCosts(t *testing.T) {
	d := dict.New()
	m, err := cost.NewPerLabel(map[string]float64{"expensive": 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := tree.MustParse(d, "{r{expensive}}")
	b := tree.MustParse(d, "{r}")
	// Deleting the expensive node would cost 5, but the optimal mapping
	// renames expensive→r for (5+1)/2 = 3 and deletes the cheap r for 1.
	if got := Distance(m, a, b); got != 4 {
		t.Errorf("δ = %g, want 4", got)
	}
	if got := ReferenceDistance(m, a, b); got != 4 {
		t.Errorf("reference δ = %g, want 4", got)
	}
	// Renaming expensive → cheap costs (5+1)/2 = 3.
	c := tree.MustParse(d, "{r{cheap}}")
	if got := Distance(m, a, c); got != 3 {
		t.Errorf("δ = %g, want 3", got)
	}
}

func TestFanoutWeightedCosts(t *testing.T) {
	d := dict.New()
	m, err := cost.NewFanoutWeighted(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting the root of a 3-child node costs 1 + 1·3 = 4; leaf costs 1.
	a := tree.MustParse(d, "{r{x{p}{q}{s}}}")
	b := tree.MustParse(d, "{r{p}{q}{s}}")
	if got := Distance(m, a, b); got != 4 {
		t.Errorf("delete fanout-3 node: δ = %g, want 4", got)
	}
}

func TestProbeCountsRelevantSubtrees(t *testing.T) {
	q, doc := fig2(t)
	c := NewComputer(cost.Unit{}, q)
	var sizes []int
	c.SetProbe(probeFunc(func(s int) { sizes = append(sizes, s) }))
	c.Distance(doc)
	// Example 1: relevant subtrees of H are H2, H5, H6, H7 with sizes
	// 1, 1, 3, 7.
	want := map[int]int{1: 2, 3: 1, 7: 1}
	got := map[int]int{}
	for _, s := range sizes {
		got[s]++
	}
	for s, n := range want {
		if got[s] != n {
			t.Errorf("relevant subtrees of size %d: got %d, want %d (all: %v)", s, got[s], n, sizes)
		}
	}
	if len(sizes) != 4 {
		t.Errorf("relevant subtree count = %d, want 4", len(sizes))
	}
}

type probeFunc func(int)

func (f probeFunc) RelevantSubtree(size int) { f(size) }

// randPair builds a random query/document pair over a small shared
// alphabet so that label collisions (renames and exact matches) occur.
func randPair(seed int64, qn, tn int) (*tree.Tree, *tree.Tree) {
	rng := rand.New(rand.NewSource(seed))
	d := dict.New()
	cfg := tree.RandomConfig{Nodes: qn, MaxFanout: 3, Labels: 3}
	q := tree.Random(d, rng, cfg)
	cfg.Nodes = tn
	t := tree.Random(d, rng, cfg)
	return q, t
}

// TestAgainstReference cross-checks Zhang–Shasha against the independent
// memoized recursive implementation on random small trees.
func TestAgainstReference(t *testing.T) {
	f := func(seed int64, qRaw, tRaw uint8) bool {
		qn := int(qRaw)%8 + 1
		tn := int(tRaw)%8 + 1
		q, doc := randPair(seed, qn, tn)
		zs := Distance(cost.Unit{}, q, doc)
		ref := ReferenceDistance(cost.Unit{}, q, doc)
		return zs == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAgainstReferenceFanoutCosts repeats the cross-check under a
// non-uniform cost model.
func TestAgainstReferenceFanoutCosts(t *testing.T) {
	m, err := cost.NewFanoutWeighted(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, qRaw, tRaw uint8) bool {
		qn := int(qRaw)%7 + 1
		tn := int(tRaw)%7 + 1
		q, doc := randPair(seed, qn, tn)
		zs := Distance(m, q, doc)
		ref := ReferenceDistance(m, q, doc)
		return math.Abs(zs-ref) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMetricProperties checks identity, symmetry and the triangle
// inequality on random small trees (the tree edit distance with a
// symmetric cost model is a metric).
func TestMetricProperties(t *testing.T) {
	f := func(seed int64, aRaw, bRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dict.New()
		mk := func(raw uint8) *tree.Tree {
			n := int(raw)%7 + 1
			return tree.Random(d, rng, tree.RandomConfig{Nodes: n, MaxFanout: 3, Labels: 3})
		}
		a, b, c := mk(aRaw), mk(bRaw), mk(cRaw)
		dab := Distance(cost.Unit{}, a, b)
		dba := Distance(cost.Unit{}, b, a)
		dac := Distance(cost.Unit{}, a, c)
		dcb := Distance(cost.Unit{}, c, b)
		daa := Distance(cost.Unit{}, a, a)
		if daa != 0 {
			return false
		}
		if dab != dba {
			return false
		}
		return dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLemma3 checks |T| ≤ δ(Q,T) + |Q| (Lemma 3) and the trivial upper
// bound δ(Q,T) ≤ cost(delete all of Q) + cost(insert all of T).
func TestLemma3(t *testing.T) {
	f := func(seed int64, qRaw, tRaw uint8) bool {
		qn := int(qRaw)%9 + 1
		tn := int(tRaw)%9 + 1
		q, doc := randPair(seed, qn, tn)
		dist := Distance(cost.Unit{}, q, doc)
		if float64(doc.Size()) > dist+float64(q.Size()) {
			return false
		}
		// Trivial upper bound with unit costs: |Q| + |T|.
		return dist <= float64(q.Size()+doc.Size())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestComputerReuse verifies that one Computer produces correct results
// across documents of varying size (buffer growth and stale td values).
func TestComputerReuse(t *testing.T) {
	d := dict.New()
	q := tree.MustParse(d, "{a{b}{c}}")
	c := NewComputer(cost.Unit{}, q)
	docs := []string{
		"{x{a{b}{d}}{a{b}{c}}}",
		"{a{b}{c}}",
		"{z}",
		"{x{a{b}{d}}{a{b}{c}}}",
		"{a{a{a{a{b}{c}}}}}",
	}
	want := []float64{4, 0, 3, 4, 3}
	for i, s := range docs {
		doc := tree.MustParse(d, s)
		if got := c.Distance(doc); got != want[i] {
			t.Errorf("doc %d (%s): δ = %g, want %g", i, s, got, want[i])
		}
	}
}

// TestComputerReuseQuick compares a reused Computer against fresh ones on
// a random document sequence.
func TestComputerReuseQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := dict.New()
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 5, MaxFanout: 3, Labels: 3})
	reused := NewComputer(cost.Unit{}, q)
	for i := 0; i < 60; i++ {
		n := rng.Intn(12) + 1
		doc := tree.Random(d, rng, tree.RandomConfig{Nodes: n, MaxFanout: 3, Labels: 3})
		fresh := NewComputer(cost.Unit{}, q)
		if got, want := reused.Distance(doc), fresh.Distance(doc); got != want {
			t.Fatalf("iteration %d: reused %g != fresh %g for %s", i, got, want, doc)
		}
	}
}

func TestCrossDictionaryDistance(t *testing.T) {
	// Trees interned in different dictionaries must still compare labels
	// correctly (by string).
	d1, d2 := dict.New(), dict.New()
	d2.Intern("shift")
	q := tree.MustParse(d1, "{a{b}{c}}")
	doc := tree.MustParse(d2, "{a{b}{c}}")
	if got := Distance(cost.Unit{}, q, doc); got != 0 {
		t.Errorf("δ across dicts = %g, want 0", got)
	}
}
