package ted

import (
	"fmt"

	"tasm/internal/cost"
	"tasm/internal/tree"
)

// ReferenceDistance computes δ(q, t) directly from the recursive forest
// distance definition with memoization over forest pairs. It makes no use
// of keyroots or prefix sharing and serves as an independent correctness
// oracle for the Zhang–Shasha implementation in tests. It is exponential
// in the worst case without the memo and still far slower than
// Zhang–Shasha with it; restrict it to small trees.
func ReferenceDistance(m cost.Model, q, t *tree.Tree) float64 {
	r := &refComputer{model: m, q: q, t: t, memo: make(map[string]float64)}
	return r.forest(forestOf(q), forestOf(t))
}

// forest identifies a subforest of a tree as a list of root indices of
// disjoint consecutive subtrees, left to right.
type forest []int

// forestOf returns the forest consisting of the whole tree.
func forestOf(t *tree.Tree) forest { return forest{t.Root()} }

type refComputer struct {
	model cost.Model
	q, t  *tree.Tree
	memo  map[string]float64
}

// children returns the forest of root indices of i's children in t.
func children(t *tree.Tree, i int) forest {
	var f forest
	for c := t.LML(i); c < i; c++ {
		if t.Parent(c) == i {
			f = append(f, c)
		}
	}
	return f
}

// key builds a memo key for a forest pair.
func key(fq, ft forest) string {
	return fmt.Sprint(fq, "|", ft)
}

// forest computes the edit distance between two forests by the textbook
// recurrence: delete the rightmost root of fq, insert the rightmost root
// of ft, or align the two rightmost subtrees (renaming their roots) and
// recurse on the remainders.
func (r *refComputer) forest(fq, ft forest) float64 {
	if len(fq) == 0 && len(ft) == 0 {
		return 0
	}
	k := key(fq, ft)
	if d, ok := r.memo[k]; ok {
		return d
	}
	var d float64
	switch {
	case len(fq) == 0:
		// Insert everything that remains in ft.
		j := ft[len(ft)-1]
		rest := append(append(forest{}, ft[:len(ft)-1]...), children(r.t, j)...)
		d = r.forest(fq, rest) + r.model.Cost(r.t, j)
	case len(ft) == 0:
		i := fq[len(fq)-1]
		rest := append(append(forest{}, fq[:len(fq)-1]...), children(r.q, i)...)
		d = r.forest(rest, ft) + r.model.Cost(r.q, i)
	default:
		i := fq[len(fq)-1]
		j := ft[len(ft)-1]
		// Delete the rightmost root of the query forest: its children
		// join the forest in its place.
		delF := append(append(forest{}, fq[:len(fq)-1]...), children(r.q, i)...)
		del := r.forest(delF, ft) + r.model.Cost(r.q, i)
		// Insert the rightmost root of the document forest.
		insF := append(append(forest{}, ft[:len(ft)-1]...), children(r.t, j)...)
		ins := r.forest(fq, insF) + r.model.Cost(r.t, j)
		// Align the rightmost trees with each other.
		ren := r.forest(children(r.q, i), children(r.t, j)) +
			r.forest(fq[:len(fq)-1], ft[:len(ft)-1]) +
			r.alignCost(i, j)
		d = min3(del, ins, ren)
	}
	r.memo[k] = d
	return d
}

// alignCost is γ(q_i, t_j) for two non-empty nodes.
func (r *refComputer) alignCost(i, j int) float64 {
	if r.q.Label(i) == r.t.Label(j) {
		return 0
	}
	return (r.model.Cost(r.q, i) + r.model.Cost(r.t, j)) / 2
}
