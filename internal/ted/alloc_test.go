package ted

import (
	"math/rand"
	"testing"

	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/race"
	"tasm/internal/tree"
)

// viewOf fills a fresh View with the postorder arrays of t.
func viewOf(t testing.TB, tr *tree.Tree) *tree.View {
	t.Helper()
	v := &tree.View{}
	labels, sizes := v.Reset(tr.Dict(), tr.Size())
	for i := 0; i < tr.Size(); i++ {
		labels[i] = tr.LabelID(i)
		sizes[i] = tr.SubtreeSize(i)
	}
	if err := v.Build(); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestSubtreeDistancesViewZeroAlloc: the flat-view evaluation path must
// not allocate once the computer's scratch has grown — this is the
// steady-state unit of work of a TASM-postorder scan.
func TestSubtreeDistancesViewZeroAlloc(t *testing.T) {
	d := dict.New()
	rng := rand.New(rand.NewSource(7))
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 12, MaxFanout: 3, Labels: 6})
	doc := tree.Random(d, rng, tree.RandomConfig{Nodes: 80, MaxFanout: 4, Labels: 6})
	v := viewOf(t, doc)

	fw, err := cost.NewFanoutWeighted(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]cost.Model{"unit": cost.Unit{}, "fanout": fw}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			c := NewComputer(m, q)
			want := c.SubtreeDistances(doc) // warm scratch via the tree path
			got := c.SubtreeDistancesView(v)
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("view row[%d] = %g, tree row = %g", j, got[j], want[j])
				}
			}
			if race.Enabled {
				t.Skip("allocation counts are not meaningful under -race")
			}
			allocs := testing.AllocsPerRun(100, func() {
				c.SubtreeDistancesView(v)
			})
			if allocs != 0 {
				t.Errorf("SubtreeDistancesView allocates %.1f objects per call in steady state, want 0", allocs)
			}
		})
	}
}
