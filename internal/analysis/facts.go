package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// FactStore holds the per-object facts of an analysis run: facts
// imported from the serialized outputs of dependency passes, plus the
// facts the current package's analyzers export. Facts are JSON values
// keyed by (analyzer, package path, object key); see FuncKey/FieldKey.
type FactStore struct {
	// data maps analyzer -> package path -> object key -> fact JSON.
	data map[string]map[string]map[string]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{data: make(map[string]map[string]map[string]json.RawMessage)}
}

func (s *FactStore) export(analyzer, pkgPath, key string, fact any) {
	raw, err := json.Marshal(fact)
	if err != nil {
		panic(fmt.Sprintf("analysis: fact %T for %s is not JSON-marshalable: %v", fact, key, err))
	}
	byPkg := s.data[analyzer]
	if byPkg == nil {
		byPkg = make(map[string]map[string]json.RawMessage)
		s.data[analyzer] = byPkg
	}
	byKey := byPkg[pkgPath]
	if byKey == nil {
		byKey = make(map[string]json.RawMessage)
		byPkg[pkgPath] = byKey
	}
	byKey[key] = raw
}

func (s *FactStore) lookup(analyzer, pkgPath, key string, out any) bool {
	raw, ok := s.data[analyzer][pkgPath][key]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// vetxFile is the serialized fact format exchanged between vet runs of
// dependent packages: the facts one package's pass exported, grouped by
// analyzer. (The name follows cmd/go's term for vet tool export data.)
type vetxFile struct {
	// Version guards the format; readers skip files with an unexpected
	// version (stale caches after a format change degrade to missing
	// facts, never to decode errors).
	Version int                                   `json:"version"`
	Facts   map[string]map[string]json.RawMessage `json:"facts,omitempty"`
}

const vetxVersion = 1

// WriteVetx serializes the facts exported for pkgPath to path. The
// encoding is deterministic (sorted keys) so identical analyses produce
// identical files for cmd/go's content-addressed cache.
func (s *FactStore) WriteVetx(path, pkgPath string) error {
	out := vetxFile{Version: vetxVersion, Facts: make(map[string]map[string]json.RawMessage)}
	var analyzers []string
	for a := range s.data {
		analyzers = append(analyzers, a)
	}
	sort.Strings(analyzers)
	for _, a := range analyzers {
		if byKey := s.data[a][pkgPath]; len(byKey) > 0 {
			out.Facts[a] = byKey
		}
	}
	raw, err := json.Marshal(out)
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o666)
}

// ReadVetx loads the facts a dependency's pass exported for pkgPath
// from path. Unreadable or version-skewed files are ignored: a missing
// fact is always safe (it only loosens a transitive check).
func (s *FactStore) ReadVetx(path, pkgPath string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var in vetxFile
	if err := json.Unmarshal(raw, &in); err != nil || in.Version != vetxVersion {
		return
	}
	for analyzer, byKey := range in.Facts {
		for key, fact := range byKey {
			byPkg := s.data[analyzer]
			if byPkg == nil {
				byPkg = make(map[string]map[string]json.RawMessage)
				s.data[analyzer] = byPkg
			}
			m := byPkg[pkgPath]
			if m == nil {
				m = make(map[string]json.RawMessage)
				byPkg[pkgPath] = m
			}
			m[key] = fact
		}
	}
}
