package ctxpoll_test

import (
	"testing"

	"tasm/internal/analysis"
	"tasm/internal/analysis/checktest"
	"tasm/internal/analysis/ctxpoll"
)

func TestCtxPoll(t *testing.T) {
	checktest.Run(t, "testdata", []*analysis.Analyzer{ctxpoll.Analyzer},
		"tasmvettest/scan", "tasmvettest/remote")
}
