// Package ctxpoll implements the ctxpoll analyzer: scan entry points
// shaped like corpus.Searcher (methods named TopK/TopKBatch whose
// first parameter is a context.Context) must poll their context —
// pinning the PR 5 cancellation contract ("ctx polled once per
// candidate") structurally, so a refactor cannot silently drop the
// poll from a scan loop.
//
// "Polls" means the function, or any module function it statically
// calls (same package recursively; cross-package via exported facts),
// contains one of: a select with a receive from a chan struct{} (the
// precomputed done-channel idiom), a receive from ctx.Done(), or a
// ctx.Err() call. Functions marked //tasm:ctxpoll are held to the same
// requirement regardless of name. Dynamic calls (interface fan-out,
// as in the shard router's scatter) are not followed; entry points
// that delegate cancellation through an interface carry a
// `//tasm:allow ctxpoll — <reason>` waiver documenting where the poll
// actually lives.
package ctxpoll

import (
	"go/ast"
	"go/token"
	"go/types"

	"tasm/internal/analysis"
)

// Marker opts a function into the check by annotation.
const Marker = "//tasm:ctxpoll"

var Analyzer = &analysis.Analyzer{
	Name:  "ctxpoll",
	Allow: "ctxpoll",
	Doc:   "require Searcher-shaped scan entry points to poll ctx.Done()/ctx.Err()",
	Run:   run,
}

// pollFact marks a function as polling its context (directly or
// transitively); presence is the fact.
type pollFact struct{}

func run(pass *analysis.Pass) error {
	r := &resolver{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		memo:  make(map[*types.Func]bool),
		state: make(map[*types.Func]int),
	}
	type target struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var targets []target
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			r.decls[fn] = fd
			if isSearcherEntry(fn) || analysis.HasMarker(fd.Doc, Marker) {
				targets = append(targets, target{fn: fn, decl: fd})
			}
		}
	}

	for _, t := range targets {
		if !r.polls(t.fn) {
			pass.Reportf(t.decl.Pos(),
				"%s is a scan entry point but neither it nor any statically-reachable callee polls its context (select on a done channel / ctx.Done(), or call ctx.Err()); scans must honor cancellation per candidate",
				t.fn.Name())
		}
	}

	// Export polling summaries for every function so dependent
	// packages' entry points can delegate across package boundaries.
	for fn := range r.decls {
		if r.polls(fn) {
			pass.ExportFact(analysis.FuncKey(fn), pollFact{})
		}
	}
	return nil
}

// isSearcherEntry reports whether fn is a concrete method named
// TopK/TopKBatch taking a context.Context first — the corpus.Searcher
// shape.
func isSearcherEntry(fn *types.Func) bool {
	if fn.Name() != "TopK" && fn.Name() != "TopKBatch" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || types.IsInterface(sig.Recv().Type()) {
		return false
	}
	if sig.Params().Len() == 0 {
		return false
	}
	return isContext(sig.Params().At(0).Type())
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

type resolver struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]bool
	state map[*types.Func]int // 0 unvisited, 1 visiting, 2 done
}

// polls reports whether fn polls its context directly or through a
// statically-resolvable module callee.
func (r *resolver) polls(fn *types.Func) bool {
	switch r.state[fn] {
	case 2:
		return r.memo[fn]
	case 1:
		return false // cycle
	}
	r.state[fn] = 1
	result := false
	if decl := r.decls[fn]; decl != nil {
		result = r.pollsDirect(decl.Body)
		if !result {
			for _, callee := range r.callees(decl.Body) {
				calleePkg := callee.Pkg()
				if calleePkg == nil {
					continue
				}
				if calleePkg.Path() == r.pass.Pkg.Path() {
					if r.decls[callee] != nil && r.polls(callee) {
						result = true
						break
					}
					continue
				}
				if r.pass.InModule(calleePkg.Path()) {
					var f pollFact
					if r.pass.ImportFact(calleePkg.Path(), analysis.FuncKey(callee), &f) {
						result = true
						break
					}
				}
			}
		}
	}
	r.memo[fn] = result
	r.state[fn] = 2
	return result
}

// pollsDirect reports whether the body itself polls: a select
// receiving from a chan struct{}, a receive from ctx.Done(), or a
// ctx.Err() call.
func (r *resolver) pollsDirect(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CommClause:
			if recv := commRecv(n.Comm); recv != nil && r.isDoneChan(recv.X) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && r.isDoneChan(n.X) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" {
				if tv, ok := r.pass.Info.Types[sel.X]; ok && tv.Type != nil && isContext(tv.Type) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// commRecv extracts the receive operation of a select comm clause
// (`case <-ch:` or `case v := <-ch:`), if any.
func commRecv(comm ast.Stmt) *ast.UnaryExpr {
	switch s := comm.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u
			}
		}
	}
	return nil
}

// isDoneChan reports whether e has type (<-)chan struct{} — the shape
// of ctx.Done() and of the repo's precomputed done channels.
func (r *resolver) isDoneChan(e ast.Expr) bool {
	tv, ok := r.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// callees resolves the statically-dispatched calls in body (including
// inside func literals, which scan loops spawn as workers).
func (r *resolver) callees(body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var fn *types.Func
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			fn, _ = r.pass.Info.Uses[fun].(*types.Func)
		case *ast.SelectorExpr:
			if sel, ok := r.pass.Info.Selections[fun]; ok {
				fn, _ = sel.Obj().(*types.Func)
			} else {
				fn, _ = r.pass.Info.Uses[fun.Sel].(*types.Func)
			}
		}
		if fn == nil {
			return true
		}
		fn = fn.Origin()
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			return true // dynamic dispatch: not followed
		}
		if !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}
