// Package remote is the cross-package ctxpoll fixture: delegation to a
// polling function in another module package is recognized through the
// imported fact; delegation to a non-polling one is flagged.
package remote

import (
	"context"

	"tasmvettest/scan"
)

type Proxy struct{}

func (p *Proxy) TopK(ctx context.Context, k int) error {
	return scan.PollingHelper(ctx, k)
}

type Blind struct{}

func (b *Blind) TopK(ctx context.Context, k int) error { // want `polls its context`
	return nonPolling(k)
}

func nonPolling(k int) error {
	return nil
}
