// Package scan is the ctxpoll fixture: Searcher-shaped entry points
// that never poll their context are flagged; direct polls, done-channel
// selects, delegation to polling helpers, and waived delegations are
// clean.
package scan

import "context"

type NoPoll struct{}

func (s *NoPoll) TopK(ctx context.Context, k int) ([]int, error) { // want `polls its context`
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, i)
	}
	return out, nil
}

type ErrPoll struct{}

func (s *ErrPoll) TopK(ctx context.Context, k int) ([]int, error) {
	for i := 0; i < k; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

type DonePoll struct{ done chan struct{} }

func (s *DonePoll) TopKBatch(ctx context.Context, k int) error {
	for i := 0; i < k; i++ {
		select {
		case <-s.done:
			return ctx.Err()
		default:
		}
	}
	return nil
}

type Delegating struct{}

func (s *Delegating) TopK(ctx context.Context, k int) error {
	return PollingHelper(ctx, k)
}

// PollingHelper polls, so entry points delegating to it (here and in
// downstream fixture packages) are clean.
func PollingHelper(ctx context.Context, k int) error {
	for i := 0; i < k; i++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
	return nil
}

// Annotated opts into the check by marker and does not poll.
//
//tasm:hotpath
//tasm:ctxpoll
func Annotated(ctx context.Context, k int) int { // want `polls its context`
	return k
}

type Waived struct{}

func (s *Waived) TopK(ctx context.Context, k int) error { //tasm:allow ctxpoll — fixture: cancellation delegated through the transport
	return nil
}
