// Package analysis is a small, dependency-free re-implementation of the
// go/analysis analyzer model (golang.org/x/tools is not a module
// dependency): an Analyzer inspects one type-checked package through a
// Pass and reports position-anchored diagnostics, optionally exchanging
// per-object facts with the passes of dependency packages so properties
// can propagate across package boundaries in a modular, dependency-order
// analysis — exactly the execution model `go vet -vettool` provides.
//
// The package also owns the repo's analyzer annotation grammar:
//
//	//tasm:hotpath
//	    marks a function whose body (and everything it statically calls
//	    within the module) must not allocate — see hotpathalloc.
//	//tasm:ctxpoll
//	    marks a function that must poll its context inside a loop — see
//	    ctxpoll (Searcher-shaped TopK/TopKBatch methods are checked
//	    without an annotation).
//	//tasm:allow <check> — <reason>
//	    waives the named check's findings on the same line (trailing
//	    comment) or the line below (standalone comment). The reason is
//	    mandatory; a waiver without one is itself a diagnostic. Checks:
//	    alloc, atomic, poolreset, ctxpoll.
//
// The suite is compiled into cmd/tasmvet and run via
// `go vet -vettool=$(which tasmvet) ./...`; see the README section
// "Static analysis".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HasMarker reports whether doc contains the given //tasm:<name>
// directive line (exact, or followed by explanatory text). Directive
// comments stay in the comment group's List even though Doc.Text()
// strips them.
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") || strings.HasPrefix(c.Text, marker+"\t") {
			return true
		}
	}
	return false
}

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags
	// (e.g. "hotpathalloc").
	Name string
	// Allow is the token naming this check in //tasm:allow waivers
	// (e.g. "alloc"). Empty means the analyzer's findings cannot be
	// waived.
	Allow string
	// Doc describes the check.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Check   string // the reporting analyzer's name
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// ModulePath is the path of the module under analysis ("" outside
	// module context). InModule reports whether a package path belongs
	// to it; analyzers use it to bound transitive checks at the module
	// boundary.
	ModulePath string

	allow *allowIndex
	facts *FactStore
	diags *[]Diagnostic
}

// InModule reports whether pkgPath is a package of the module under
// analysis. Test-variant suffixes ("p [m.test]") are ignored.
func (p *Pass) InModule(pkgPath string) bool {
	return inModule(p.ModulePath, normalizePkgPath(pkgPath))
}

func inModule(module, pkgPath string) bool {
	if module == "" {
		return false
	}
	return pkgPath == module ||
		(len(pkgPath) > len(module) && pkgPath[:len(module)] == module && pkgPath[len(module)] == '/')
}

// Reportf records a diagnostic at pos unless a //tasm:allow waiver for
// this analyzer's check covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Allowed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{Pos: pos, Check: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether a //tasm:allow waiver for this analyzer's
// check covers pos. Analyzers consult it directly when a waived finding
// must also stop influencing derived state (e.g. an exported fact), not
// just its own diagnostic.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.Analyzer.Allow == "" || p.allow == nil {
		return false
	}
	return p.allow.allowed(p.Analyzer.Allow, p.Fset.Position(pos))
}

// ExportFact publishes a fact about an object of this package under key
// (see FuncKey/FieldKey), visible to passes of importing packages. The
// fact must marshal as JSON.
func (p *Pass) ExportFact(key string, fact any) {
	p.facts.export(p.Analyzer.Name, p.Pkg.Path(), key, fact)
}

// ImportFact decodes into out the fact exported under key by this
// analyzer's pass over package pkgPath, reporting whether one exists.
// Facts of the current package are visible too once exported.
// Test-variant suffixes in pkgPath are ignored.
func (p *Pass) ImportFact(pkgPath, key string, out any) bool {
	return p.facts.lookup(p.Analyzer.Name, normalizePkgPath(pkgPath), key, out)
}

// FuncKey returns the fact key for a function or method object:
// "func F" or "method (T) M" / "method (*T) M".
func FuncKey(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return "func " + fn.Name()
	}
	return "method (" + recvTypeString(recv.Type()) + ") " + fn.Name()
}

// FieldKey returns the fact key for field name of named struct type t:
// "field T.name".
func FieldKey(typeName, fieldName string) string {
	return "field " + typeName + "." + fieldName
}

func recvTypeString(t types.Type) string {
	star := ""
	if p, ok := t.(*types.Pointer); ok {
		star = "*"
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return star + n.Obj().Name()
	default:
		return star + t.String()
	}
}

// Run executes the analyzers over one type-checked package and returns
// the diagnostics in position order. facts carries the dependency
// packages' facts in and receives this package's exports; modulePath
// bounds transitive checks (see Pass.InModule). It is the entry point
// for test harnesses; the vet driver protocol wraps it via Main.
func Run(
	analyzers []*Analyzer,
	fset *token.FileSet,
	files []*ast.File,
	pkg *types.Package,
	info *types.Info,
	modulePath string,
	facts *FactStore,
) ([]Diagnostic, error) {
	res, err := runAnalyzers(analyzers, fset, files, pkg, info, modulePath, facts)
	return res.diags, err
}

// runResult is the outcome of running a set of analyzers over one
// package: diagnostics in reporting order and the facts exported for
// importing packages.
type runResult struct {
	diags []Diagnostic
}

// runAnalyzers executes every analyzer over the package, sharing one
// fact store (pre-loaded with the dependencies' facts; the analyzers'
// exports land in it for serialization). Waivers lacking a reason are
// reported once, regardless of which analyzers ran.
func runAnalyzers(
	analyzers []*Analyzer,
	fset *token.FileSet,
	files []*ast.File,
	pkg *types.Package,
	info *types.Info,
	modulePath string,
	facts *FactStore,
) (runResult, error) {
	allow := buildAllowIndex(fset, files)
	var res runResult
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
			ModulePath: modulePath,
			allow:      allow,
			facts:      facts,
			diags:      &res.diags,
		}
		if err := a.Run(pass); err != nil {
			return res, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	for _, bad := range allow.malformed() {
		res.diags = append(res.diags, bad)
	}
	sort.Slice(res.diags, func(i, j int) bool { return res.diags[i].Pos < res.diags[j].Pos })
	return res, nil
}
