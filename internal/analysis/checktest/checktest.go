// Package checktest is the golden-test harness for the repo's
// analyzers, modeled on golang.org/x/tools' analysistest (which is not
// a module dependency): it loads packages from a testdata tree,
// type-checks them against the standard library, runs analyzers over
// them in dependency order sharing one fact store, and compares the
// diagnostics against `// want "regexp"` expectation comments in the
// fixture sources.
//
// Layout mirrors analysistest: dir/src/<pkgpath>/*.go. Fixture
// packages use import paths under the synthetic module "tasmvettest"
// (e.g. tasmvettest/hot), so cross-package fact flow can be exercised
// by listing a dependency before its importer in the Run call.
package checktest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"tasm/internal/analysis"
)

// ModulePath is the synthetic module path fixture packages live under.
const ModulePath = "tasmvettest"

// Run loads each fixture package (in order, earlier packages being
// importable by later ones) from dir/src/<pkg>, runs the analyzers
// over each, and asserts the diagnostics match the fixtures' `// want`
// comments exactly.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	facts := analysis.NewFactStore()
	loaded := make(map[string]*types.Package)
	std := importer.ForCompiler(fset, "source", nil)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := loaded[path]; ok {
			return p, nil
		}
		if strings.HasPrefix(path, ModulePath+"/") || path == ModulePath {
			return nil, fmt.Errorf("fixture package %q not loaded yet; list it earlier in the Run call", path)
		}
		return std.Import(path)
	})

	for _, pkgPath := range pkgs {
		pkgDir := filepath.Join(dir, "src", filepath.FromSlash(pkgPath))
		files, err := parseDir(fset, pkgDir)
		if err != nil {
			t.Fatalf("loading %s: %v", pkgPath, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(pkgPath, fset, files, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", pkgPath, err)
		}
		loaded[pkgPath] = pkg

		diags, err := analysis.Run(analyzers, fset, files, pkg, info, ModulePath, facts)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", pkgPath, err)
		}
		checkWants(t, fset, files, diags)
	}
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one `// want "re"` pattern awaiting a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// wantRx matches the quoted patterns after `want`: Go-quoted or
// backquoted strings, as in analysistest.
var wantRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// checkWants compares diagnostics against the files' `// want`
// comments. Each comment holds one or more quoted regexps and covers
// diagnostics on its own line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, q := range wantRx.FindAllString(text[idx+len("want "):], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", posn, q, err)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re, text: pat})
				}
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", posn, d.Check, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.text)
		}
	}
}
