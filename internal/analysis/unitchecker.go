package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// This file implements the vet driver protocol spoken by
// `go vet -vettool=<tool>` (see cmd/go/internal/work.(*Builder).vet):
//
//	tool -flags            describe the tool's flags as JSON
//	tool -V=full           print a version line for build caching
//	tool [flags] foo.cfg   analyze the single package unit described by
//	                       the JSON config file, writing facts to
//	                       cfg.VetxOutput and diagnostics to stderr
//	                       (exit 2 when there are findings)
//
// cmd/go runs the tool bottom-up over the import graph — dependencies
// first, with VetxOnly set — handing each unit the fact files of its
// dependencies via PackageVetx. Packages outside the main module are
// not analyzed (this suite checks repo invariants, and the standard
// library would drown it); they still write an empty fact file so the
// protocol's bookkeeping holds.

// Config is the JSON unit description cmd/go writes for each package
// (a subset of cmd/go's vetConfig; unknown fields are ignored).
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main runs the vet driver protocol for the given analyzers. It is the
// entire main of a vettool binary; it does not return.
func Main(progname string, analyzers ...*Analyzer) {
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true, "run the "+a.Name+" check")
	}
	flagsFlag := flag.Bool("flags", false, "describe flags in JSON and exit")
	versionFlag := flag.String("V", "", "print version and exit (-V=full)")
	flag.Parse()

	switch {
	case *flagsFlag:
		describeFlags()
		os.Exit(0)
	case *versionFlag != "":
		fmt.Printf("%s version devel buildID=%s\n", progname, selfID())
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr,
			"%s: this is a vet driver for `go vet -vettool`, not a standalone checker; run:\n\tgo vet -vettool=$(command -v %s) ./...\n",
			progname, progname)
		os.Exit(1)
	}

	var run []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	os.Exit(runUnit(progname, args[0], run))
}

// describeFlags prints the tool's flags in the JSON shape cmd/go
// expects from `tool -flags`.
func describeFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, _ := json.Marshal(out)
	os.Stdout.Write(data)
	os.Stdout.Write([]byte("\n"))
}

// selfID returns a content hash of the executable, so cmd/go's action
// cache invalidates when the tool is rebuilt.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func runUnit(progname, cfgPath string, analyzers []*Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}

	facts := NewFactStore()
	writeVetx := func() {
		if cfg.VetxOutput == "" {
			return
		}
		if err := facts.WriteVetx(cfg.VetxOutput, cfg.ImportPath); err != nil {
			fmt.Fprintf(os.Stderr, "%s: writing facts: %v\n", progname, err)
		}
	}

	// Only packages of the main module are analyzed; everything else
	// (standard library, third-party modules) just gets an empty fact
	// file so dependents can proceed.
	if cfg.ModulePath == "" || cfg.ModuleVersion != "" || cfg.Standard[cfg.ImportPath] {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	tconf := types.Config{
		Importer: newVetImporter(fset, cfg),
		Sizes:    types.SizesFor(compilerName(cfg.Compiler), goarch()),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	if v, ok := langVersion(cfg.GoVersion); ok {
		tconf.GoVersion = v
	}
	pkg, _ := tconf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		for _, err := range typeErrs {
			fmt.Fprintf(os.Stderr, "%v\n", err)
		}
		return 1
	}

	for pkgPath, vetxPath := range cfg.PackageVetx {
		facts.ReadVetx(vetxPath, normalizePkgPath(pkgPath))
	}

	res, err := runAnalyzers(analyzers, fset, files, pkg, info, cfg.ModulePath, facts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %s: %v\n", progname, cfg.ImportPath, err)
		return 1
	}
	writeVetx()
	if cfg.VetxOnly || len(res.diags) == 0 {
		return 0
	}
	for _, d := range res.diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Check, d.Message)
	}
	return 2
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(cfg.GoFiles) == 0 && cfg.ID == "" {
		return nil, fmt.Errorf("%s: empty unit config", path)
	}
	return cfg, nil
}

// normalizePkgPath strips cmd/go's test-variant suffix
// ("p [m.test]" -> "p") so facts written by a variant's pass (keyed by
// its ImportPath) resolve against the variant package paths seen by
// importers, and vice versa.
func normalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

func compilerName(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

// langVersion extracts a valid language version ("go1.24") from the
// config's GoVersion, which may carry toolchain suffixes.
func langVersion(v string) (string, bool) {
	if v == "" || !strings.HasPrefix(v, "go1") {
		return "", false
	}
	// Keep at most "go1.N": types.Config.GoVersion rejects release
	// candidates and devel strings.
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		digits := parts[1]
		for i := 0; i < len(digits); i++ {
			if digits[i] < '0' || digits[i] > '9' {
				digits = digits[:i]
				break
			}
		}
		if digits == "" {
			return "", false
		}
		return parts[0] + "." + digits, true
	}
	return "", false
}

// vetImporter resolves imports from the export data files cmd/go hands
// the unit via ImportMap/PackageFile.
type vetImporter struct {
	cfg *Config
	gc  types.ImporterFrom
}

func newVetImporter(fset *token.FileSet, cfg *Config) *vetImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	gc := importer.ForCompiler(fset, compilerName(cfg.Compiler), lookup)
	return &vetImporter{cfg: cfg, gc: gc.(types.ImporterFrom)}
}

func (i *vetImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	canonical := path
	if c, ok := i.cfg.ImportMap[path]; ok {
		canonical = c
	}
	return i.gc.ImportFrom(canonical, i.cfg.Dir, 0)
}
