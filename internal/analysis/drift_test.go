package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tasm/internal/analysis"
)

// TestHotpathAnnotationDrift pins the annotation contract between the
// runtime allocation tests and the static hotpathalloc analyzer: every
// function whose allocation behaviour is asserted to be exactly zero by a
// testing.AllocsPerRun pin must carry the //tasm:hotpath marker, so the
// vettool keeps guarding it between benchmark runs. Without this check
// the two layers drift silently — a function loses its marker, the
// analyzer stops watching it, and the regression only surfaces when the
// (slower, often skipped-under-race) runtime pin finally runs.
//
// The check is syntactic: a pin is an AllocsPerRun call whose result is
// compared against the literal 0 in the same enclosing function, and its
// pinned callees are the functions called from the measured closure
// (given inline or as a local variable). Callee names resolve module-wide
// by bare name; a name shared by several declarations is satisfied when
// at least one carries the marker. Budget pins (compared against a
// nonzero budget) and helpers that return the measurement are out of
// scope.
func TestHotpathAnnotationDrift(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()

	// Pass 1: every non-test FuncDecl in the module, by bare name.
	annotated := map[string]bool{} // name → at least one decl has the marker
	declared := map[string]bool{}  // name → at least one non-test decl exists
	// Pass 2 input: test files to scan for pins.
	var testFiles []*ast.File

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		if strings.HasSuffix(path, "_test.go") {
			testFiles = append(testFiles, f)
			return nil
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			declared[fd.Name.Name] = true
			if analysis.HasMarker(fd.Doc, "//tasm:hotpath") {
				annotated[fd.Name.Name] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	pins := 0
	for _, f := range testFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, pin := range zeroPins(fd) {
				pins++
				for name, pos := range pinnedCallees(fd, pin) {
					if !declared[name] || annotated[name] {
						continue
					}
					t.Errorf("%s: %s is pinned to zero allocations by %s but no declaration of %s carries //tasm:hotpath",
						fset.Position(pos), name, fset.Position(pin.Pos()), name)
				}
			}
		}
	}
	if pins == 0 {
		t.Fatal("found no zero-allocation AllocsPerRun pins in the module; the drift check is no longer scanning anything")
	}
}

// moduleRoot returns the repository root (the directory holding go.mod),
// found by walking up from the test's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above the test's working directory")
		}
		dir = parent
	}
}

// zeroPins returns the testing.AllocsPerRun calls inside fd whose result
// is compared against the literal 0 somewhere in fd: either the call
// itself is an operand of the comparison, or the variable it is assigned
// to is.
func zeroPins(fd *ast.FuncDecl) []*ast.CallExpr {
	var calls []*ast.CallExpr                // every AllocsPerRun call
	assignedTo := map[*ast.CallExpr]string{} // call → variable name
	zeroCompared := map[string]bool{}        // variable names compared to 0
	directZero := map[*ast.CallExpr]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isAllocsPerRun(n) {
				calls = append(calls, n)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isAllocsPerRun(call) {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						assignedTo[call] = id.Name
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.NEQ && n.Op != token.EQL && n.Op != token.GTR {
				return true
			}
			for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
				if !isZeroLit(pair[1]) {
					continue
				}
				switch x := pair[0].(type) {
				case *ast.Ident:
					zeroCompared[x.Name] = true
				case *ast.CallExpr:
					if isAllocsPerRun(x) {
						directZero[x] = true
					}
				}
			}
		}
		return true
	})

	var pins []*ast.CallExpr
	for _, call := range calls {
		if directZero[call] || zeroCompared[assignedTo[call]] {
			pins = append(pins, call)
		}
	}
	return pins
}

// pinnedCallees returns the bare names of the functions called from the
// measured closure of pin (its second argument), mapped to the position
// of one call. The closure is either an inline func literal or an
// identifier naming a func literal assigned earlier in fd.
func pinnedCallees(fd *ast.FuncDecl, pin *ast.CallExpr) map[string]token.Pos {
	if len(pin.Args) != 2 {
		return nil
	}
	var body *ast.BlockStmt
	switch arg := pin.Args[1].(type) {
	case *ast.FuncLit:
		body = arg.Body
	case *ast.Ident:
		// Find `name := func() {...}` in fd.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			if id, ok := as.Lhs[0].(*ast.Ident); !ok || id.Name != arg.Name {
				return true
			}
			if fl, ok := as.Rhs[0].(*ast.FuncLit); ok {
				body = fl.Body
				return false
			}
			return true
		})
	}
	if body == nil {
		return nil
	}
	callees := map[string]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			if !builtins[fn.Name] {
				callees[fn.Name] = call.Pos()
			}
		case *ast.SelectorExpr:
			callees[fn.Sel.Name] = call.Pos()
		}
		return true
	})
	return callees
}

// builtins are predeclared function names; a bare-name call to one is the
// builtin, never a module function, even when a method shares the name.
var builtins = map[string]bool{
	"append": true, "cap": true, "clear": true, "close": true,
	"complex": true, "copy": true, "delete": true, "imag": true,
	"len": true, "make": true, "max": true, "min": true, "new": true,
	"panic": true, "print": true, "println": true, "real": true,
	"recover": true,
}

// isAllocsPerRun matches testing.AllocsPerRun(...) syntactically.
func isAllocsPerRun(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "AllocsPerRun" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "testing"
}

// isZeroLit matches the integer literal 0.
func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}
