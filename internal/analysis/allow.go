package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a waiver comment. Grammar:
//
//	//tasm:allow <check>[,<check>...] — <reason>
//
// The separator before the reason may be an em dash, "--", or a lone
// "-". A trailing waiver covers findings on its own line; a standalone
// waiver covers the line below it.
const allowPrefix = "//tasm:allow"

// waiver is one parsed //tasm:allow comment.
type waiver struct {
	checks []string
	reason string
	pos    token.Pos
}

// allowIndex maps file/line coordinates to the waivers covering them.
type allowIndex struct {
	// byLine maps filename -> line -> waivers covering findings on that
	// line.
	byLine map[string]map[int][]*waiver
	bad    []Diagnostic
}

// parseAllow parses the text of one waiver comment ("" checks on
// failure). The reason is everything after the separator.
func parseAllow(text string) (checks []string, reason string, ok bool) {
	rest, found := strings.CutPrefix(text, allowPrefix)
	if !found {
		return nil, "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false // e.g. //tasm:allowance
	}
	rest = strings.TrimSpace(rest)
	var checkPart string
	for _, sep := range []string{"—", "--", " - "} {
		if c, r, found := strings.Cut(rest, sep); found {
			checkPart, reason = strings.TrimSpace(c), strings.TrimSpace(r)
			break
		}
	}
	if checkPart == "" {
		checkPart = rest // no separator: checks only, missing reason
	}
	for _, c := range strings.Split(checkPart, ",") {
		if c = strings.TrimSpace(c); c != "" {
			checks = append(checks, c)
		}
	}
	return checks, reason, true
}

// buildAllowIndex scans the files' comments for waivers. A waiver that
// shares its line with code covers that line; a waiver alone on its line
// covers the next line. Both registrations are kept, which errs towards
// acceptance for unusual comment layouts.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	idx := &allowIndex{byLine: make(map[string]map[int][]*waiver)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				if len(checks) == 0 || reason == "" {
					idx.bad = append(idx.bad, Diagnostic{
						Pos:     c.Pos(),
						Check:   "tasmvet",
						Message: "tasm:allow waiver must name its checks and give a reason: //tasm:allow <check> — <reason>",
					})
					continue
				}
				w := &waiver{checks: checks, reason: reason, pos: c.Pos()}
				lines := idx.byLine[posn.Filename]
				if lines == nil {
					lines = make(map[int][]*waiver)
					idx.byLine[posn.Filename] = lines
				}
				lines[posn.Line] = append(lines[posn.Line], w)
				lines[posn.Line+1] = append(lines[posn.Line+1], w)
			}
		}
	}
	return idx
}

// allowed reports whether a waiver for check covers posn.
func (idx *allowIndex) allowed(check string, posn token.Position) bool {
	for _, w := range idx.byLine[posn.Filename][posn.Line] {
		for _, c := range w.checks {
			if c == check {
				return true
			}
		}
	}
	return false
}

// malformed returns the diagnostics for waivers missing checks or a
// reason.
func (idx *allowIndex) malformed() []Diagnostic {
	return idx.bad
}
