// Package dep is a fixture dependency: its allocation summaries are
// exported as facts and consulted by the hot fixture package. None of
// its functions are annotated, so nothing is reported here even though
// Alloc allocates.
package dep

// Alloc allocates; importers calling it from a hot path must be
// flagged via the exported fact.
func Alloc() []int {
	return make([]int, 8)
}

// Clean does not allocate.
func Clean(a, b int) int {
	if a > b {
		return a
	}
	return b
}
