// Package hot is the hotpathalloc fixture: each annotated function
// demonstrates one flagged construct (this includes the acceptance
// fixture — a deliberate heap allocation in a //tasm:hotpath function
// produces a diagnostic), plus clean and waived counterexamples.
package hot

import (
	"strconv"

	"tasmvettest/dep"
)

// MakeSlice is the acceptance fixture: a deliberate heap allocation in
// an annotated function must fail the check.
//
//tasm:hotpath
func MakeSlice() []int {
	return make([]int, 4) // want `make allocates`
}

// Clean is the clean case: arithmetic and ranging do not allocate.
//
//tasm:hotpath
func Clean(xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}

//tasm:hotpath
func Boxes(x int) any {
	var sink any
	sink = x // want `int value boxed into interface allocates`
	return sink
}

//tasm:hotpath
func Denied(n int) string {
	return strconv.Itoa(n) // want `call to strconv.Itoa allocates`
}

//tasm:hotpath
func Convert(b []byte) string {
	return string(b) // want `conversion allocates`
}

//tasm:hotpath
func Closure(n int) func() int {
	return func() int { return n } // want `func literal allocates`
}

//tasm:hotpath
func Append(xs []int, x int) []int {
	return append(xs, x) // want `append may grow its backing array`
}

// CallsLocal reaches an allocation through an unannotated same-package
// callee; the diagnostic lands on the construct inside the callee.
//
//tasm:hotpath
func CallsLocal() int {
	return local()
}

func local() int {
	xs := make([]int, 2) // want `make allocates`
	return len(xs)
}

// CallsDep reaches an allocation through a cross-package callee; the
// diagnostic lands on the call site, citing the imported fact.
//
//tasm:hotpath
func CallsDep() int {
	return len(dep.Alloc()) // want `call to dep.Alloc reaches an allocation`
}

// CallsCleanDep calls a dependency function with no allocation fact:
// clean.
//
//tasm:hotpath
func CallsCleanDep(a, b int) int {
	return dep.Clean(a, b)
}

// Waived shows a correctly waived construct: no diagnostic.
//
//tasm:hotpath
func Waived() []int {
	return make([]int, 4) //tasm:allow alloc — fixture: deliberately waived
}

// malformed shows a waiver missing its reason: the waiver itself is a
// diagnostic, and it does not register (the construct below would be
// flagged if this function were annotated).
func malformed() []int {
	//tasm:allow alloc // want `must name its checks and give a reason`
	return make([]int, 1)
}
