// Package hotpathalloc implements the hotpathalloc analyzer: functions
// marked //tasm:hotpath — and everything they statically call within
// the module — must not contain allocating constructs. It is the
// static twin of the testing.AllocsPerRun pins: the pins prove the
// exercised path allocates zero bytes at runtime, this analyzer proves
// no allocating construct can reach any hot path at compile time.
//
// Flagged constructs: make, new, append, slice/map composite literals,
// &composite literals, string↔[]byte/[]rune conversions, string
// concatenation, values boxed into interfaces (arguments, assignments,
// returns, conversions), func literals, go statements, map
// assignments, and any call into an allocation-heavy denied package
// (fmt, errors, log, log/slog, reflect, regexp, sort, strconv).
// Calls to module functions follow the static call graph: same-package
// callees are analyzed recursively, cross-package callees through
// exported per-function allocation facts (the vet driver analyzes
// dependencies first, so callee facts always precede callers).
//
// Known, deliberate limitations — covered by the runtime pins instead:
// dynamic calls (interface methods, func values) are not followed;
// taking the address of a variable is not flagged (escape analysis is
// out of scope); calls into non-denied standard-library packages are
// assumed clean.
//
// Findings are waived with `//tasm:allow alloc — <reason>` on the
// construct's line; a waiver also stops the construct from propagating
// into callers' summaries, so it asserts "this never runs on the hot
// path" (cold error branch) or "this cannot allocate in steady state"
// (append within preallocated capacity, grow-only scratch resize).
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"

	"tasm/internal/analysis"
)

// Marker is the annotation that puts a function under this analyzer.
const Marker = "//tasm:hotpath"

var Analyzer = &analysis.Analyzer{
	Name:  "hotpathalloc",
	Allow: "alloc",
	Doc:   "reject allocating constructs in //tasm:hotpath functions and their static callees",
	Run:   run,
}

// deniedPkgs are packages whose every entry point allocates (or may,
// via reflection); calling into them from a hot path is flagged at the
// call site without consulting facts.
var deniedPkgs = map[string]bool{
	"fmt":      true,
	"errors":   true,
	"log":      true,
	"log/slog": true,
	"reflect":  true,
	"regexp":   true,
	"sort":     true,
	"strconv":  true,
}

// allocFact is the exported per-function summary: representative
// allocation sites reachable from the function (transitively, capped).
// Functions with no reachable allocations export nothing — a missing
// fact means clean.
type allocFact struct {
	Sites []allocSite `json:"sites"`
}

type allocSite struct {
	Pos  string `json:"pos"`  // "pkg/path/file.go:line"
	What string `json:"what"` // human description of the construct
}

// finding is one allocation reachable from a function, anchored to a
// position in the current package (the construct itself, or the call
// site of a cross-package callee that allocates).
type finding struct {
	pos  token.Pos
	what string
}

// maxSites bounds per-function summaries so pathological fan-out can't
// explode fact files or diagnostics.
const maxSites = 20

func run(pass *analysis.Pass) error {
	r := &resolver{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		memo:  make(map[*types.Func][]finding),
		state: make(map[*types.Func]int),
	}
	var hot []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			r.decls[fn] = fd
			if analysis.HasMarker(fd.Doc, Marker) {
				hot = append(hot, fn)
			}
		}
	}

	// Report findings reachable from each annotated function, deduped
	// across roots (two hot entry points sharing a callee produce one
	// diagnostic per construct).
	sort.Slice(hot, func(i, j int) bool { return r.decls[hot[i]].Pos() < r.decls[hot[j]].Pos() })
	seen := make(map[string]bool)
	for _, fn := range hot {
		for _, f := range r.findings(fn) {
			key := strconv.Itoa(int(f.pos)) + "|" + f.what
			if seen[key] {
				continue
			}
			seen[key] = true
			pass.Reportf(f.pos, "%s on a %s path (via %s)", f.what, Marker, fn.Name())
		}
	}

	// Export every function's summary so downstream packages can check
	// their own hot paths against calls into this one.
	for fn := range r.decls {
		fs := r.findings(fn)
		if len(fs) == 0 {
			continue
		}
		fact := allocFact{}
		for _, f := range fs {
			site := allocSite{Pos: r.posStr(f.pos), What: f.what}
			dup := false
			for _, s := range fact.Sites {
				if s == site {
					dup = true
					break
				}
			}
			if !dup {
				fact.Sites = append(fact.Sites, site)
			}
			if len(fact.Sites) == 3 {
				break
			}
		}
		pass.ExportFact(analysis.FuncKey(fn), fact)
	}
	return nil
}

type resolver struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func][]finding
	state map[*types.Func]int // 0 unvisited, 1 visiting, 2 done
}

func (r *resolver) posStr(pos token.Pos) string {
	p := r.pass.Fset.Position(pos)
	return r.pass.Pkg.Path() + "/" + filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// findings returns the allocations reachable from fn through the
// static call graph, memoized; cycles contribute their sites once, at
// the frame that entered them.
func (r *resolver) findings(fn *types.Func) []finding {
	switch r.state[fn] {
	case 2:
		return r.memo[fn]
	case 1:
		return nil // cycle: sites attributed to the in-progress frame
	}
	r.state[fn] = 1
	var out []finding
	if decl := r.decls[fn]; decl != nil {
		direct, edges := r.collect(decl)
		out = direct
		for _, e := range edges {
			if len(out) >= maxSites {
				break
			}
			calleePkg := e.callee.Pkg()
			if calleePkg == nil {
				continue
			}
			if calleePkg.Path() == r.pass.Pkg.Path() {
				if r.decls[e.callee] != nil {
					out = append(out, r.findings(e.callee)...)
				}
				continue
			}
			var f allocFact
			if r.pass.ImportFact(calleePkg.Path(), analysis.FuncKey(e.callee), &f) && len(f.Sites) > 0 {
				out = append(out, finding{
					pos: e.pos,
					what: fmt.Sprintf("call to %s.%s reaches an allocation (%s: %s)",
						calleePkg.Name(), e.callee.Name(), f.Sites[0].Pos, f.Sites[0].What),
				})
			}
		}
	}
	if len(out) > maxSites {
		out = out[:maxSites]
	}
	r.memo[fn] = out
	r.state[fn] = 2
	return out
}

// edge is a static call to a module function, resolved later against
// local declarations or imported facts.
type edge struct {
	pos    token.Pos
	callee *types.Func
}

// collect walks one function body for directly allocating constructs
// and static module-internal call edges. Constructs and edges covered
// by an `//tasm:allow alloc` waiver are dropped here, which both
// silences the diagnostic and stops propagation into callers.
func (r *resolver) collect(decl *ast.FuncDecl) (direct []finding, edges []edge) {
	pass := r.pass
	add := func(pos token.Pos, what string) {
		if !pass.Allowed(pos) {
			direct = append(direct, finding{pos: pos, what: what})
		}
	}

	// Composite literals whose address is taken allocate; value
	// literals of structs/arrays do not.
	addressed := make(map[*ast.CompositeLit]bool)
	// FuncLit ranges, innermost-wins, for resolving the signature a
	// return statement belongs to.
	type litRange struct {
		lit *ast.FuncLit
	}
	var funcLits []litRange
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					addressed[cl] = true
				}
			}
		case *ast.FuncLit:
			funcLits = append(funcLits, litRange{lit: n})
		}
		return true
	})
	returnSig := func(pos token.Pos) *types.Signature {
		var innermost *ast.FuncLit
		for _, lr := range funcLits {
			if lr.lit.Body.Pos() <= pos && pos < lr.lit.Body.End() {
				if innermost == nil || lr.lit.Pos() > innermost.Pos() {
					innermost = lr.lit
				}
			}
		}
		if innermost != nil {
			if sig, ok := pass.Info.Types[innermost].Type.(*types.Signature); ok {
				return sig
			}
			return nil
		}
		if fn, ok := pass.Info.Defs[decl.Name].(*types.Func); ok {
			return fn.Type().(*types.Signature)
		}
		return nil
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			r.collectCall(n, add, &edges)
		case *ast.CompositeLit:
			t := pass.Info.Types[n].Type
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				add(n.Pos(), "composite literal allocates")
			default:
				if addressed[n] {
					add(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.FuncLit:
			add(n.Pos(), "func literal allocates")
		case *ast.GoStmt:
			add(n.Pos(), "go statement allocates")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.Info.Types[n].Type; t != nil && isString(t) {
					add(n.OpPos, "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if tv, ok := pass.Info.Types[lhs]; ok {
						r.checkBox(n.Rhs[i], tv.Type, add)
					}
				}
			}
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := pass.Info.Types[ix.X]; t.Type != nil {
						if _, isMap := t.Type.Underlying().(*types.Map); isMap {
							add(ix.Pos(), "map assignment may allocate")
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if obj := pass.Info.Defs[name]; obj != nil {
						r.checkBox(n.Values[i], obj.Type(), add)
					}
				}
			}
		case *ast.ReturnStmt:
			sig := returnSig(n.Pos())
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					r.checkBox(res, sig.Results().At(i).Type(), add)
				}
			}
		}
		return true
	})
	return direct, edges
}

// collectCall classifies one call expression: conversion, builtin,
// denied-package call, module call edge, and interface boxing of the
// arguments.
func (r *resolver) collectCall(call *ast.CallExpr, add func(token.Pos, string), edges *[]edge) {
	pass := r.pass
	fun := ast.Unparen(call.Fun)

	// Type conversions: T(x).
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst := tv.Type
		srcTV, ok := pass.Info.Types[call.Args[0]]
		if !ok || srcTV.Type == nil {
			return
		}
		src := srcTV.Type
		switch {
		case isString(dst) && isByteOrRuneSlice(src):
			add(call.Pos(), "[]byte/[]rune-to-string conversion allocates")
		case isByteOrRuneSlice(dst) && isString(src):
			add(call.Pos(), "string-to-[]byte/[]rune conversion allocates")
		default:
			r.checkBox(call.Args[0], dst, add)
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				add(call.Pos(), "append may grow its backing array")
			case "print", "println":
				add(call.Pos(), b.Name()+" allocates")
			}
			return
		}
	}

	// Static callee resolution: plain functions, qualified functions,
	// methods. Generic instantiations normalize to their origin.
	var callee *types.Func
	switch fun := fun.(type) {
	case *ast.Ident:
		callee, _ = pass.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok {
			callee, _ = sel.Obj().(*types.Func)
		} else {
			callee, _ = pass.Info.Uses[fun.Sel].(*types.Func)
		}
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			callee, _ = pass.Info.Uses[id].(*types.Func)
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			callee, _ = pass.Info.Uses[id].(*types.Func)
		}
	}

	if callee != nil {
		callee = callee.Origin()
		sig, _ := callee.Type().(*types.Signature)
		dynamic := sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
		switch {
		case dynamic || callee.Pkg() == nil:
			// Interface method / universe method: not followed
			// (documented limitation — runtime pins cover dynamic
			// dispatch).
		case deniedPkgs[callee.Pkg().Path()]:
			add(call.Pos(), fmt.Sprintf("call to %s.%s allocates (package %s is denied on hot paths)",
				callee.Pkg().Name(), callee.Name(), callee.Pkg().Path()))
		case pass.InModule(callee.Pkg().Path()) || callee.Pkg().Path() == pass.Pkg.Path():
			if !pass.Allowed(call.Pos()) {
				*edges = append(*edges, edge{pos: call.Pos(), callee: callee})
			}
		}
	}

	// Interface boxing of arguments against the callee signature
	// (skipped for f(xs...) spreads — the slice is passed as-is).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.Type != nil && !call.Ellipsis.IsValid() {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			for i, arg := range call.Args {
				var param types.Type
				switch {
				case sig.Variadic() && i >= sig.Params().Len()-1:
					last := sig.Params().At(sig.Params().Len() - 1)
					if s, ok := last.Type().(*types.Slice); ok {
						param = s.Elem()
					}
				case i < sig.Params().Len():
					param = sig.Params().At(i).Type()
				}
				r.checkBox(arg, param, add)
			}
		}
	}
}

// checkBox flags e when assigning it to dst boxes a non-pointer-shaped
// concrete value into an interface (which allocates via convT).
func (r *resolver) checkBox(e ast.Expr, dst types.Type, add func(token.Pos, string)) {
	if e == nil || dst == nil || !types.IsInterface(dst) {
		return
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return
	}
	tv, ok := r.pass.Info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return
	}
	src := tv.Type
	if types.IsInterface(src) {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: stored directly in the interface word
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	add(e.Pos(), fmt.Sprintf("%s value boxed into interface allocates", src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
