package hotpathalloc_test

import (
	"testing"

	"tasm/internal/analysis"
	"tasm/internal/analysis/checktest"
	"tasm/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	checktest.Run(t, "testdata", []*analysis.Analyzer{hotpathalloc.Analyzer},
		"tasmvettest/dep", "tasmvettest/hot")
}
