// Package reader is the downstream atomicfield fixture: the atomic
// writes to Stats.Ops live in the counters package; this package's
// plain read is flagged through the imported fact.
package reader

import (
	"sync/atomic"

	"tasmvettest/counters"
)

func ReadOpsBad(s *counters.Stats) uint64 {
	return s.Ops // want `accessed with sync/atomic`
}

func ReadOpsGood(s *counters.Stats) uint64 {
	return atomic.LoadUint64(&s.Ops)
}
