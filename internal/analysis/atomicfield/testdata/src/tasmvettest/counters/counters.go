// Package counters is the atomicfield fixture: fields mixed between
// atomic and plain access are flagged; consistently-accessed fields
// and unrelated fields are clean.
package counters

import "sync/atomic"

type Counter struct {
	hits uint64
	name string
}

func (c *Counter) Inc() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *Counter) Bad() uint64 {
	return c.hits // want `accessed with sync/atomic`
}

func (c *Counter) Name() string {
	return c.name
}

func (c *Counter) Good() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *Counter) Waived() uint64 {
	return c.hits //tasm:allow atomic — fixture: read before any goroutine starts
}

// New initializes via a composite literal: construction before
// publication is exempt.
func New(start uint64) *Counter {
	return &Counter{hits: start}
}

// Stats is shared with the downstream fixture package: the atomic use
// lives here, the plain read lives there.
type Stats struct {
	Ops uint64
}

func BumpOps(s *Stats) {
	atomic.AddUint64(&s.Ops, 1)
}
