// Package atomicfield implements the atomicfield analyzer: a struct
// field passed to sync/atomic anywhere must be accessed atomically
// everywhere. Mixing atomic and plain access is the class of data race
// the cutoff publisher (PR 3/5) and the breaker state (PR 7) are
// exposed to; typed atomics (atomic.Uint64 fields) are immune by
// construction and are the preferred fix for any finding.
//
// Atomic uses are collected per package and exported as facts keyed by
// the owning named type's field, so a package that reads a dependency's
// counter field with a plain load is flagged even though the atomic
// writes live upstream. Two deliberate gaps, documented here and in the
// README: atomic use observed only in a *downstream* package cannot
// flag plain accesses upstream (facts flow dependency→dependent), and
// a pointer to a field captured first (`p := &s.f; atomic.Add(p, 1)`)
// is not recognized as an atomic use. Composite-literal initialization
// is also exempt — construction before publication is conventionally
// plain.
//
// Findings are waived with `//tasm:allow atomic — <reason>` (e.g. a
// read in a single-goroutine init or test teardown).
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"

	"tasm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:  "atomicfield",
	Allow: "atomic",
	Doc:   "flag plain accesses to struct fields that are accessed via sync/atomic elsewhere",
	Run:   run,
}

// atomicFact marks one field as atomically accessed, citing a
// representative sync/atomic call site.
type atomicFact struct {
	Pos string `json:"pos"`
}

// fieldID identifies a field by its owning named type.
type fieldID struct {
	pkgPath  string
	typeName string
	field    string
}

func run(pass *analysis.Pass) error {
	// Pass 1: collect the fields whose address is taken directly in a
	// sync/atomic call, and remember those selector nodes so pass 2
	// does not flag them.
	atomicUses := make(map[fieldID]token.Pos)
	atomicNodes := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			fieldSel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := resolveField(pass, fieldSel); ok {
				if _, seen := atomicUses[id]; !seen {
					atomicUses[id] = fieldSel.Pos()
				}
				atomicNodes[fieldSel] = true
			}
			return true
		})
	}

	// Export local atomic uses of locally-declared fields so dependent
	// packages inherit the constraint.
	for id, pos := range atomicUses {
		if id.pkgPath != pass.Pkg.Path() {
			continue
		}
		p := pass.Fset.Position(pos)
		pass.ExportFact(analysis.FieldKey(id.typeName, id.field), atomicFact{
			Pos: id.pkgPath + "/" + filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line),
		})
	}

	atomicAt := func(id fieldID) (string, bool) {
		if pos, ok := atomicUses[id]; ok {
			p := pass.Fset.Position(pos)
			return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line), true
		}
		var f atomicFact
		if id.pkgPath != pass.Pkg.Path() &&
			pass.ImportFact(id.pkgPath, analysis.FieldKey(id.typeName, id.field), &f) {
			return f.Pos, true
		}
		return "", false
	}

	// Pass 2: every other selection of such a field is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicNodes[sel] {
				return true
			}
			id, ok := resolveField(pass, sel)
			if !ok {
				return true
			}
			if at, ok := atomicAt(id); ok {
				pass.Reportf(sel.Sel.Pos(),
					"field %s.%s is accessed with sync/atomic (%s) but this access is plain; use sync/atomic everywhere or switch the field to a typed atomic",
					id.typeName, id.field, at)
			}
			return true
		})
	}
	return nil
}

// resolveField resolves a selector to the named struct type declaring
// the selected field (walking through embedded fields).
func resolveField(pass *analysis.Pass, sel *ast.SelectorExpr) (fieldID, bool) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return fieldID{}, false
	}
	t := s.Recv()
	var owner *types.TypeName
	for i, idx := range s.Index() {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			owner = n.Obj()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return fieldID{}, false
		}
		f := st.Field(idx)
		if i == len(s.Index())-1 {
			if owner == nil || owner.Pkg() == nil {
				return fieldID{}, false
			}
			return fieldID{pkgPath: owner.Pkg().Path(), typeName: owner.Name(), field: f.Name()}, true
		}
		t = f.Type()
	}
	return fieldID{}, false
}
