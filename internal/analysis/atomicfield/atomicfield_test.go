package atomicfield_test

import (
	"testing"

	"tasm/internal/analysis"
	"tasm/internal/analysis/atomicfield"
	"tasm/internal/analysis/checktest"
)

func TestAtomicField(t *testing.T) {
	checktest.Run(t, "testdata", []*analysis.Analyzer{atomicfield.Analyzer},
		"tasmvettest/counters", "tasmvettest/reader")
}
