// Package poolreset implements the poolreset analyzer: a value taken
// from a sync.Pool whose type has a Reset method must have Reset
// called on it before first use, in the same function. Pooled values
// carry the previous user's state; the repo's scratch types
// (ScanScratch, BatchScratch, docstore.ImageReader) all define Reset
// as their reuse contract (PR 9), and skipping it silently corrupts a
// scan with stale bounds.
//
// The check is lexical and function-local: the Get result must be
// type-asserted to a type whose method set includes Reset, and a
// Reset call on the same variable must appear later in the enclosing
// function. Constructors that Get+Reset internally satisfy the check
// at their own Get site, so callers of such constructors are clean by
// construction. A Get whose result type has no Reset method is out of
// scope, as is a Get passed somewhere without a type assertion.
//
// Findings are waived with `//tasm:allow poolreset — <reason>` (e.g.
// the callee on the next line re-initializes every field itself).
package poolreset

import (
	"go/ast"
	"go/token"
	"go/types"

	"tasm/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:  "poolreset",
	Allow: "poolreset",
	Doc:   "require Reset before first use of sync.Pool values whose type has a Reset method",
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Collect pool.Get() calls asserted to a Reset-bearing type, with
	// the variable each is assigned to.
	type getSite struct {
		pos token.Pos
		typ types.Type
		obj types.Object // nil when the asserted value is used inline
	}
	var gets []getSite

	ast.Inspect(body, func(n ast.Node) bool {
		ta, ok := n.(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil {
			return true
		}
		call, ok := ast.Unparen(ta.X).(*ast.CallExpr)
		if !ok || !isPoolGet(pass, call) {
			return true
		}
		tv, ok := pass.Info.Types[ta]
		if !ok || tv.Type == nil || !hasReset(tv.Type, pass.Pkg) {
			return true
		}
		gets = append(gets, getSite{pos: call.Pos(), typ: tv.Type, obj: assignedTo(pass, body, ta)})
		return true
	})

	if len(gets) == 0 {
		return
	}

	// A later x.Reset(...) call on the same variable discharges the
	// obligation.
	reset := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Reset" {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if prev, ok := reset[obj]; !ok || call.Pos() > prev {
			reset[obj] = call.Pos()
		}
		return true
	})

	for _, g := range gets {
		if g.obj != nil {
			if pos, ok := reset[g.obj]; ok && pos > g.pos {
				continue
			}
		}
		pass.Reportf(g.pos,
			"%s from sync.Pool has a Reset method that is never called before use; call Reset after Get or return it through a constructor that does",
			types.TypeString(g.typ, types.RelativeTo(pass.Pkg)))
	}
}

// isPoolGet reports whether call is X.Get() on a sync.Pool (value,
// pointer, or a field of either).
func isPoolGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" || len(call.Args) != 0 {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

// hasReset reports whether t's method set (or its pointer's) includes
// a Reset method.
func hasReset(t types.Type, from *types.Package) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, from, "Reset")
	_, ok := obj.(*types.Func)
	return ok
}

// assignedTo finds the variable a type assertion's value is bound to:
// `x := pool.Get().(*T)` or `x = pool.Get().(*T)`. Returns nil when
// the value is used inline.
func assignedTo(pass *analysis.Pass, body *ast.BlockStmt, ta *ast.TypeAssertExpr) types.Object {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		if ast.Unparen(as.Rhs[0]) != ta {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			if o := pass.Info.Defs[id]; o != nil {
				obj = o
			} else if o := pass.Info.Uses[id]; o != nil {
				obj = o
			}
		}
		return false
	})
	return obj
}
