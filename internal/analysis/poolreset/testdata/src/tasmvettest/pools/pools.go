// Package pools is the poolreset fixture: Get of a Reset-bearing type
// without a Reset call is flagged; resetting, Reset-free types, and
// waived sites are clean.
package pools

import "sync"

type Buf struct{ b []byte }

func (b *Buf) Reset() { b.b = b.b[:0] }

var bufPool = sync.Pool{New: func() any { return new(Buf) }}

func Bad() *Buf {
	b := bufPool.Get().(*Buf) // want `Reset method that is never called`
	return b
}

func Good() *Buf {
	b := bufPool.Get().(*Buf)
	b.Reset()
	return b
}

func Inline() int {
	return len(bufPool.Get().(*Buf).b) // want `Reset method that is never called`
}

type Plain struct{ n int }

var plainPool = sync.Pool{New: func() any { return new(Plain) }}

// NoReset is clean: Plain has no Reset method, so there is no contract
// to enforce.
func NoReset() *Plain {
	return plainPool.Get().(*Plain)
}

func Waived() *Buf {
	b := bufPool.Get().(*Buf) //tasm:allow poolreset — fixture: caller re-initializes every field
	return b
}
