package poolreset_test

import (
	"testing"

	"tasm/internal/analysis"
	"tasm/internal/analysis/checktest"
	"tasm/internal/analysis/poolreset"
)

func TestPoolReset(t *testing.T) {
	checktest.Run(t, "testdata", []*analysis.Analyzer{poolreset.Analyzer},
		"tasmvettest/pools")
}
