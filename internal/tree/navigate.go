package tree

// Navigation helpers over the postorder representation. None of them are
// needed by the TASM algorithms themselves (which work on the parallel
// arrays directly), but downstream users of matched subtrees want
// conventional traversal: children, siblings, paths and visits.

// Children returns the postorder indices of node i's children in
// left-to-right sibling order.
func (t *Tree) Children(i int) []int {
	t.check(i)
	if t.nchild[i] == 0 {
		return nil
	}
	out := make([]int, 0, t.nchild[i])
	for c := t.lml[i]; c < i; c++ {
		if t.parent[c] == i {
			out = append(out, c)
		}
	}
	return out
}

// Child returns the postorder index of the n-th child (0-based) of node i,
// or -1 if i has fewer children.
func (t *Tree) Child(i, n int) int {
	t.check(i)
	if n < 0 || n >= t.nchild[i] {
		return -1
	}
	seen := 0
	for c := t.lml[i]; c < i; c++ {
		if t.parent[c] == i {
			if seen == n {
				return c
			}
			seen++
		}
	}
	return -1
}

// NextSibling returns the postorder index of the sibling immediately to
// the right of node i, or -1 if i is the rightmost child or the root.
func (t *Tree) NextSibling(i int) int {
	t.check(i)
	p := t.parent[i]
	if p == -1 {
		return -1
	}
	// The next sibling's subtree starts right after i; its root is the
	// first node > i whose parent is p.
	for c := i + 1; c < p; c++ {
		if t.parent[c] == p {
			return c
		}
	}
	return -1
}

// Depth returns the number of edges from the root to node i (0 for the
// root).
func (t *Tree) Depth(i int) int {
	t.check(i)
	d := 0
	for p := t.parent[i]; p != -1; p = t.parent[p] {
		d++
	}
	return d
}

// Path returns the labels from the root down to node i, inclusive —
// the XPath-like location of a match.
func (t *Tree) Path(i int) []string {
	t.check(i)
	var rev []int
	for n := i; n != -1; n = t.parent[n] {
		rev = append(rev, n)
	}
	out := make([]string, len(rev))
	for j := range rev {
		out[j] = t.Label(rev[len(rev)-1-j])
	}
	return out
}

// Walk visits every node of the subtree rooted at i in postorder, calling
// visit with each node's index. Walk of the root visits the whole tree.
func (t *Tree) Walk(i int, visit func(node int)) {
	t.check(i)
	for n := t.lml[i]; n <= i; n++ {
		visit(n)
	}
}

// Find returns the postorder indices of all nodes with the given label, in
// postorder. It is a linear scan; callers needing repeated lookups should
// build their own index.
func (t *Tree) Find(label string) []int {
	id, ok := t.dict.Lookup(label)
	if !ok {
		return nil
	}
	var out []int
	for i := 0; i < len(t.labels); i++ {
		if t.labels[i] == id {
			out = append(out, i)
		}
	}
	return out
}
