package tree

// Navigation helpers over the postorder representation. None of them are
// needed by the TASM algorithms themselves (which work on the parallel
// arrays directly), but downstream users of matched subtrees want
// conventional traversal: children, siblings, paths and visits.
//
// Children, Child and NextSibling run on a first-child/next-sibling index
// built lazily on first use (one O(n) pass), so repeated navigation is
// O(fanout) per call rather than O(subtree size) — a loop over the
// children of a wide node is linear, not quadratic.

// navIndex is the lazily built first-child/next-sibling index.
type navIndex struct {
	firstChild []int // leftmost child of i, -1 for a leaf
	nextSib    []int // next sibling to the right of i, -1 if none
}

// navIdx returns the navigation index, building it on first use. The
// build is idempotent; concurrent first calls may each build one, with
// one winning the publish.
func (t *Tree) navIdx() *navIndex {
	if idx := t.nav.Load(); idx != nil {
		return idx
	}
	n := len(t.labels)
	idx := &navIndex{firstChild: make([]int, n), nextSib: make([]int, n)}
	last := make([]int, n) // rightmost child of i seen so far
	for i := 0; i < n; i++ {
		idx.firstChild[i], idx.nextSib[i], last[i] = -1, -1, -1
	}
	// Children of any node appear in increasing postorder, which is their
	// left-to-right sibling order; one forward pass links each node onto
	// its parent's child chain.
	for i := 0; i < n; i++ {
		p := t.parent[i]
		if p < 0 {
			continue
		}
		if last[p] == -1 {
			idx.firstChild[p] = i
		} else {
			idx.nextSib[last[p]] = i
		}
		last[p] = i
	}
	t.nav.CompareAndSwap(nil, idx)
	return t.nav.Load()
}

// Children returns the postorder indices of node i's children in
// left-to-right sibling order.
func (t *Tree) Children(i int) []int {
	t.check(i)
	if t.nchild[i] == 0 {
		return nil
	}
	idx := t.navIdx()
	out := make([]int, 0, t.nchild[i])
	for c := idx.firstChild[i]; c != -1; c = idx.nextSib[c] {
		out = append(out, c)
	}
	return out
}

// Child returns the postorder index of the n-th child (0-based) of node i,
// or -1 if i has fewer children.
func (t *Tree) Child(i, n int) int {
	t.check(i)
	if n < 0 || n >= t.nchild[i] {
		return -1
	}
	idx := t.navIdx()
	c := idx.firstChild[i]
	for ; n > 0; n-- {
		c = idx.nextSib[c]
	}
	return c
}

// NextSibling returns the postorder index of the sibling immediately to
// the right of node i, or -1 if i is the rightmost child or the root.
func (t *Tree) NextSibling(i int) int {
	t.check(i)
	return t.navIdx().nextSib[i]
}

// Depth returns the number of edges from the root to node i (0 for the
// root).
func (t *Tree) Depth(i int) int {
	t.check(i)
	d := 0
	for p := t.parent[i]; p != -1; p = t.parent[p] {
		d++
	}
	return d
}

// Path returns the labels from the root down to node i, inclusive —
// the XPath-like location of a match.
func (t *Tree) Path(i int) []string {
	t.check(i)
	var rev []int
	for n := i; n != -1; n = t.parent[n] {
		rev = append(rev, n)
	}
	out := make([]string, len(rev))
	for j := range rev {
		out[j] = t.Label(rev[len(rev)-1-j])
	}
	return out
}

// Walk visits every node of the subtree rooted at i in postorder, calling
// visit with each node's index. Walk of the root visits the whole tree.
func (t *Tree) Walk(i int, visit func(node int)) {
	t.check(i)
	for n := t.lml[i]; n <= i; n++ {
		visit(n)
	}
}

// Find returns the postorder indices of all nodes with the given label, in
// postorder. It is a linear scan; callers needing repeated lookups should
// build their own index.
func (t *Tree) Find(label string) []int {
	id, ok := t.dict.Lookup(label)
	if !ok {
		return nil
	}
	var out []int
	for i := 0; i < len(t.labels); i++ {
		if t.labels[i] == id {
			out = append(out, i)
		}
	}
	return out
}
