package tree

import (
	"fmt"
	"math/rand"

	"tasm/internal/dict"
)

// RandomConfig controls Random tree generation. The zero value is not
// valid; use DefaultRandomConfig as a starting point.
type RandomConfig struct {
	// Nodes is the exact number of nodes to generate (≥ 1).
	Nodes int
	// MaxFanout bounds the number of children of any node (≥ 1).
	MaxFanout int
	// Labels is the alphabet size; labels are "l0" … "l<Labels-1>" (≥ 1).
	Labels int
}

// DefaultRandomConfig returns a configuration producing n-node trees with
// fanout up to 4 over an alphabet of max(2, n/3) labels — enough label
// collisions to exercise renames and enough distinct labels to exercise
// structure.
func DefaultRandomConfig(n int) RandomConfig {
	labels := n / 3
	if labels < 2 {
		labels = 2
	}
	return RandomConfig{Nodes: n, MaxFanout: 4, Labels: labels}
}

// Random generates a uniformly shaped random ordered labeled tree with
// exactly cfg.Nodes nodes, deterministic in rng. Shapes are produced by
// attaching each new node as a child of a uniformly chosen node with spare
// fanout capacity, then materializing in insertion order (children keep
// their attachment order).
func Random(d dict.Dict, rng *rand.Rand, cfg RandomConfig) *Tree {
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("tree: Random config needs Nodes ≥ 1, got %d", cfg.Nodes))
	}
	if cfg.MaxFanout < 1 {
		panic(fmt.Sprintf("tree: Random config needs MaxFanout ≥ 1, got %d", cfg.MaxFanout))
	}
	if cfg.Labels < 1 {
		panic(fmt.Sprintf("tree: Random config needs Labels ≥ 1, got %d", cfg.Labels))
	}
	nodes := make([]*Node, cfg.Nodes)
	for i := range nodes {
		nodes[i] = &Node{Label: fmt.Sprintf("l%d", rng.Intn(cfg.Labels))}
	}
	// open holds indices of nodes that can still accept children.
	open := []int{0}
	for i := 1; i < cfg.Nodes; i++ {
		pi := rng.Intn(len(open))
		p := open[pi]
		nodes[p].AddChild(nodes[i])
		if len(nodes[p].Children) >= cfg.MaxFanout {
			open[pi] = open[len(open)-1]
			open = open[:len(open)-1]
		}
		open = append(open, i)
	}
	return FromNode(d, nodes[0])
}
