package tree

import (
	"fmt"
	"sort"
	"sync/atomic"

	"tasm/internal/dict"
)

// Tree is an ordered labeled tree in flattened postorder form.
//
// Node i (0-based postorder index; the paper's t_{i+1}) is described by
// four parallel arrays: its interned label, the size of the subtree rooted
// at it, the index of its leftmost leaf lml(i), and its parent index (-1
// for the root). The root is always the last node, index Size()-1.
//
// All algorithms in this repository (tree edit distance, ring-buffer
// pruning, TASM) address nodes through this representation.
type Tree struct {
	dict   dict.Dict
	labels []int // interned label of node i
	sizes  []int // |T_i|: number of nodes in the subtree rooted at i
	lml    []int // leftmost leaf (smallest postorder descendant) of i
	parent []int // parent index of i, -1 for the root
	nchild []int // fanout of i

	// nav is the lazily built first-child/next-sibling index behind the
	// navigation helpers (navigate.go), and kr the lazily computed
	// keyroots. Atomic so concurrent readers may trigger the build
	// safely; Trees must never be copied by value.
	nav atomic.Pointer[navIndex]
	kr  atomic.Pointer[[]int]
}

// Dict returns the label dictionary the tree's labels are interned in.
func (t *Tree) Dict() dict.Dict { return t.dict }

// Size returns the number of nodes |T|.
func (t *Tree) Size() int { return len(t.labels) }

// Root returns the postorder index of the root node, Size()-1.
func (t *Tree) Root() int { return len(t.labels) - 1 }

// LabelID returns the interned label of node i.
func (t *Tree) LabelID(i int) int { t.check(i); return t.labels[i] }

// Label returns the string label of node i.
func (t *Tree) Label(i int) string { t.check(i); return t.dict.Label(t.labels[i]) }

// SubtreeSize returns |T_i|, the number of nodes of the subtree rooted at i.
func (t *Tree) SubtreeSize(i int) int { t.check(i); return t.sizes[i] }

// LML returns the postorder index of the leftmost leaf of node i, its
// smallest descendant (lml in the paper). For a leaf, LML(i) == i.
func (t *Tree) LML(i int) int { t.check(i); return t.lml[i] }

// Parent returns the parent index of node i, or -1 for the root.
func (t *Tree) Parent(i int) int { t.check(i); return t.parent[i] }

// LabelIDs returns the interned labels of all nodes in postorder. The
// slice aliases the tree's backing array and must be treated as
// read-only; it exists so hot loops (the Zhang–Shasha inner DP) can avoid
// per-node method calls.
func (t *Tree) LabelIDs() []int { return t.labels }

// LMLs returns the leftmost-leaf indices of all nodes in postorder.
// Read-only alias; see LabelIDs.
func (t *Tree) LMLs() []int { return t.lml }

// Fanout returns the number of children of node i.
func (t *Tree) Fanout(i int) int { t.check(i); return t.nchild[i] }

// IsLeaf reports whether node i has no children.
func (t *Tree) IsLeaf(i int) bool { t.check(i); return t.nchild[i] == 0 }

// Height returns the number of nodes on the longest root-to-leaf path.
func (t *Tree) Height() int {
	depth := make([]int, len(t.labels))
	h := 0
	// Walk in reverse postorder so parents are seen before children.
	for i := len(t.labels) - 1; i >= 0; i-- {
		if p := t.parent[i]; p >= 0 {
			depth[i] = depth[p] + 1
		}
		if depth[i]+1 > h {
			h = depth[i] + 1
		}
	}
	return h
}

// IsAncestor reports whether a is a proper ancestor of i. In postorder an
// ancestor has a larger index and its subtree interval covers i.
func (t *Tree) IsAncestor(a, i int) bool {
	t.check(a)
	t.check(i)
	return a > i && t.lml[a] <= i
}

// Subtree returns the subtree T_i rooted at node i as an independent Tree
// that shares the label dictionary. Indices in the result are shifted so
// that the subtree occupies [0, SubtreeSize(i)).
func (t *Tree) Subtree(i int) *Tree {
	t.check(i)
	off := t.lml[i]
	n := t.sizes[i]
	s := &Tree{
		dict:   t.dict,
		labels: make([]int, n),
		sizes:  make([]int, n),
		lml:    make([]int, n),
		parent: make([]int, n),
		nchild: make([]int, n),
	}
	copy(s.labels, t.labels[off:off+n])
	copy(s.sizes, t.sizes[off:off+n])
	copy(s.nchild, t.nchild[off:off+n])
	for j := 0; j < n; j++ {
		s.lml[j] = t.lml[off+j] - off
		if p := t.parent[off+j]; p >= off && p < off+n {
			s.parent[j] = p - off
		} else {
			s.parent[j] = -1
		}
	}
	return s
}

// Keyroots returns the postorder indices of the LR-keyroots of the tree in
// increasing order: nodes that are not on the leftmost path from any
// higher node, i.e. k is a keyroot iff no node j > k has lml(j) == lml(k).
// These are exactly the roots of the paper's relevant subtrees
// (Definition 8). The root is always a keyroot.
//
// The result is computed on first use, cached for the tree's lifetime,
// and shared between callers: treat it as read-only.
func (t *Tree) Keyroots() []int {
	if p := t.kr.Load(); p != nil {
		return *p
	}
	// The keyroot for a given leftmost leaf is the largest node with that
	// leftmost leaf; record the maximum per lml value (postorder scan:
	// later nodes overwrite earlier ones).
	n := len(t.labels)
	maxFor := make([]int, n)
	for i := range maxFor {
		maxFor[i] = -1
	}
	for i := 0; i < n; i++ {
		maxFor[t.lml[i]] = i
	}
	kr := make([]int, 0, n/2+1)
	for _, i := range maxFor {
		if i >= 0 {
			kr = append(kr, i)
		}
	}
	// kr is ordered by leftmost leaf; Zhang–Shasha needs increasing
	// postorder order so that referenced subtree distances are available.
	sort.Ints(kr)
	t.kr.CompareAndSwap(nil, &kr)
	return *t.kr.Load()
}

// Reintern returns a tree with the same structure whose labels are
// interned in d, resolving them by string through the tree's own
// dictionary. The structural arrays are shared with the receiver (they
// are immutable); only the label array is rebuilt, so the cost is
// O(n) string interning. A tree already interned in d is returned
// unchanged. This is how a query parsed under one dictionary enters a
// request-scoped overlay.
func (t *Tree) Reintern(d dict.Dict) *Tree {
	if t.dict == d {
		return t
	}
	labels := make([]int, len(t.labels))
	for i, id := range t.labels {
		labels[i] = d.Intern(t.dict.Label(id))
	}
	return &Tree{
		dict:   d,
		labels: labels,
		sizes:  t.sizes,
		lml:    t.lml,
		parent: t.parent,
		nchild: t.nchild,
	}
}

// Equal reports whether two trees have identical structure and labels.
// The trees may use different dictionaries; labels are compared as strings
// if the dictionaries differ and as identifiers otherwise.
func (t *Tree) Equal(o *Tree) bool {
	if t.Size() != o.Size() {
		return false
	}
	sameDict := t.dict == o.dict
	for i := range t.labels {
		if t.sizes[i] != o.sizes[i] || t.lml[i] != o.lml[i] || t.parent[i] != o.parent[i] {
			return false
		}
		if sameDict {
			if t.labels[i] != o.labels[i] {
				return false
			}
		} else if t.dict.Label(t.labels[i]) != o.dict.Label(o.labels[i]) {
			return false
		}
	}
	return true
}

// String renders the tree in bracket notation.
func (t *Tree) String() string {
	if t.Size() == 0 {
		return "{}"
	}
	return t.Node(t.Root()).String()
}

// Validate checks the structural invariants of the postorder representation
// and returns a descriptive error for the first violation. It is used by
// tests and by code paths that accept externally produced trees (postorder
// queues, binary stores).
func (t *Tree) Validate() error {
	n := len(t.labels)
	if n == 0 {
		return fmt.Errorf("tree: empty (ordered labeled trees are non-empty)")
	}
	if len(t.sizes) != n || len(t.lml) != n || len(t.parent) != n || len(t.nchild) != n {
		return fmt.Errorf("tree: parallel arrays have inconsistent lengths")
	}
	if t.parent[n-1] != -1 {
		return fmt.Errorf("tree: last postorder node %d is not the root (parent %d)", n-1, t.parent[n-1])
	}
	for i := 0; i < n; i++ {
		sz, l, p := t.sizes[i], t.lml[i], t.parent[i]
		if sz < 1 || sz > i+1 {
			return fmt.Errorf("tree: node %d has invalid subtree size %d", i, sz)
		}
		if l != i-sz+1 {
			return fmt.Errorf("tree: node %d has lml %d, want %d (size %d)", i, l, i-sz+1, sz)
		}
		if i < n-1 {
			if p <= i || p >= n {
				return fmt.Errorf("tree: node %d has invalid parent %d", i, p)
			}
			if t.lml[p] > l {
				return fmt.Errorf("tree: node %d not inside parent %d's subtree", i, p)
			}
		}
	}
	// Each node's size must be 1 plus the sizes of its children.
	childSum := make([]int, n)
	fanout := make([]int, n)
	for i := 0; i < n-1; i++ {
		childSum[t.parent[i]] += t.sizes[i]
		fanout[t.parent[i]]++
	}
	for i := 0; i < n; i++ {
		if t.sizes[i] != childSum[i]+1 {
			return fmt.Errorf("tree: node %d size %d != 1 + children sizes %d", i, t.sizes[i], childSum[i])
		}
		if t.nchild[i] != fanout[i] {
			return fmt.Errorf("tree: node %d fanout %d != recorded %d", i, fanout[i], t.nchild[i])
		}
	}
	return nil
}
