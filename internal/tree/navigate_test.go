package tree

import (
	"math/rand"
	"strings"
	"testing"

	"tasm/internal/dict"
)

func navTree(t *testing.T) *Tree {
	t.Helper()
	// Postorder: John(0) auth(1) X1(2) title(3) article(4) X2(5)
	//            title(6) book(7) dblp(8)
	return MustParse(dict.New(), "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}")
}

func TestChildren(t *testing.T) {
	tr := navTree(t)
	root := tr.Root()
	kids := tr.Children(root)
	if len(kids) != 2 || tr.Label(kids[0]) != "article" || tr.Label(kids[1]) != "book" {
		t.Errorf("children of root = %v", kids)
	}
	if got := tr.Children(0); got != nil {
		t.Errorf("children of leaf = %v, want nil", got)
	}
	// Children of article: auth, title.
	art := kids[0]
	ak := tr.Children(art)
	if len(ak) != 2 || tr.Label(ak[0]) != "auth" || tr.Label(ak[1]) != "title" {
		t.Errorf("children of article = %v", ak)
	}
}

func TestChild(t *testing.T) {
	tr := navTree(t)
	root := tr.Root()
	if got := tr.Child(root, 0); tr.Label(got) != "article" {
		t.Errorf("Child(root,0) = %d (%s)", got, tr.Label(got))
	}
	if got := tr.Child(root, 1); tr.Label(got) != "book" {
		t.Errorf("Child(root,1) = %d", got)
	}
	if got := tr.Child(root, 2); got != -1 {
		t.Errorf("Child(root,2) = %d, want -1", got)
	}
	if got := tr.Child(root, -1); got != -1 {
		t.Errorf("Child(root,-1) = %d, want -1", got)
	}
	if got := tr.Child(0, 0); got != -1 {
		t.Errorf("Child(leaf,0) = %d, want -1", got)
	}
}

func TestNextSibling(t *testing.T) {
	tr := navTree(t)
	art := tr.Child(tr.Root(), 0)
	book := tr.Child(tr.Root(), 1)
	if got := tr.NextSibling(art); got != book {
		t.Errorf("NextSibling(article) = %d, want %d", got, book)
	}
	if got := tr.NextSibling(book); got != -1 {
		t.Errorf("NextSibling(book) = %d, want -1", got)
	}
	if got := tr.NextSibling(tr.Root()); got != -1 {
		t.Errorf("NextSibling(root) = %d, want -1", got)
	}
	// auth's next sibling inside article is title.
	auth := tr.Child(art, 0)
	title := tr.Child(art, 1)
	if got := tr.NextSibling(auth); got != title {
		t.Errorf("NextSibling(auth) = %d, want %d", got, title)
	}
}

func TestDepthAndPath(t *testing.T) {
	tr := navTree(t)
	if got := tr.Depth(tr.Root()); got != 0 {
		t.Errorf("Depth(root) = %d", got)
	}
	john := tr.Find("John")
	if len(john) != 1 {
		t.Fatalf("Find(John) = %v", john)
	}
	if got := tr.Depth(john[0]); got != 3 {
		t.Errorf("Depth(John) = %d, want 3", got)
	}
	path := tr.Path(john[0])
	if strings.Join(path, "/") != "dblp/article/auth/John" {
		t.Errorf("Path(John) = %v", path)
	}
	if p := tr.Path(tr.Root()); len(p) != 1 || p[0] != "dblp" {
		t.Errorf("Path(root) = %v", p)
	}
}

func TestWalk(t *testing.T) {
	tr := navTree(t)
	var visited []int
	tr.Walk(tr.Root(), func(n int) { visited = append(visited, n) })
	if len(visited) != tr.Size() {
		t.Fatalf("walk visited %d nodes, want %d", len(visited), tr.Size())
	}
	for i, n := range visited {
		if n != i {
			t.Fatalf("walk order broken at %d: %v", i, visited)
		}
	}
	// Walking a subtree visits only its range.
	art := tr.Child(tr.Root(), 0)
	visited = visited[:0]
	tr.Walk(art, func(n int) { visited = append(visited, n) })
	if len(visited) != tr.SubtreeSize(art) {
		t.Errorf("subtree walk visited %d, want %d", len(visited), tr.SubtreeSize(art))
	}
}

func TestFind(t *testing.T) {
	tr := navTree(t)
	titles := tr.Find("title")
	if len(titles) != 2 {
		t.Errorf("Find(title) = %v", titles)
	}
	if got := tr.Find("nope"); got != nil {
		t.Errorf("Find(nope) = %v", got)
	}
}

// TestNavigationConsistencyQuick cross-checks the helpers against the
// parent array on random trees.
func TestNavigationConsistencyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(60) + 1
		tr := Random(dict.New(), rng, DefaultRandomConfig(n))
		for i := 0; i < tr.Size(); i++ {
			kids := tr.Children(i)
			if len(kids) != tr.Fanout(i) {
				t.Fatalf("node %d: %d children vs fanout %d", i, len(kids), tr.Fanout(i))
			}
			for idx, c := range kids {
				if tr.Parent(c) != i {
					t.Fatalf("child %d of %d has parent %d", c, i, tr.Parent(c))
				}
				if got := tr.Child(i, idx); got != c {
					t.Fatalf("Child(%d,%d) = %d, want %d", i, idx, got, c)
				}
				var wantSib = -1
				if idx+1 < len(kids) {
					wantSib = kids[idx+1]
				}
				if got := tr.NextSibling(c); got != wantSib {
					t.Fatalf("NextSibling(%d) = %d, want %d", c, got, wantSib)
				}
			}
			// Depth equals the length of Path minus one.
			if tr.Depth(i) != len(tr.Path(i))-1 {
				t.Fatalf("node %d: depth %d vs path %v", i, tr.Depth(i), tr.Path(i))
			}
		}
	}
}
