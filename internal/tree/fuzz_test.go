package tree

import (
	"testing"

	"tasm/internal/dict"
)

// FuzzParseBracket checks that the bracket parser never panics, and that
// every successfully parsed tree is structurally valid and round-trips
// through String.
func FuzzParseBracket(f *testing.F) {
	for _, seed := range []string{
		"{a}",
		"{a{b}{c}}",
		"{x{a{b}{d}}{a{b}{c}}}",
		`{we\{ird\}{child}}`,
		"{a{b{c{d{e}}}}}",
		"{}",
		"{a}{b}",
		"{{}}",
		`{a\`,
		"{a{b}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d := dict.New()
		tr, err := Parse(d, s)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("parsed tree invalid: %v (input %q)", err, s)
		}
		again, err := Parse(dict.New(), tr.String())
		if err != nil {
			t.Fatalf("String() not reparseable: %v (input %q, out %q)", err, s, tr.String())
		}
		if !tr.Equal(again) {
			t.Fatalf("round trip mismatch for %q: %q vs %q", s, tr, again)
		}
	})
}

// FuzzFromPostorder checks that arbitrary (label, size) arrays either
// build a valid tree or are rejected, never panicking or producing an
// inconsistent structure.
func FuzzFromPostorder(f *testing.F) {
	f.Add([]byte{1, 1, 3})    // valid: {a{b}{c}} shape
	f.Add([]byte{1, 2})       // valid: chain
	f.Add([]byte{1, 1})       // invalid: two roots
	f.Add([]byte{2})          // invalid: size too large
	f.Add([]byte{0})          // invalid: zero size
	f.Add([]byte{1, 2, 1, 4}) // valid
	f.Fuzz(func(t *testing.T, sizesRaw []byte) {
		if len(sizesRaw) == 0 || len(sizesRaw) > 64 {
			return
		}
		d := dict.New()
		l := d.Intern("x")
		labels := make([]int, len(sizesRaw))
		sizes := make([]int, len(sizesRaw))
		for i, b := range sizesRaw {
			labels[i] = l
			sizes[i] = int(b)
		}
		tr, err := FromPostorder(d, labels, sizes)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid postorder %v: %v", sizes, err)
		}
		for i := 0; i < tr.Size(); i++ {
			if tr.SubtreeSize(i) != sizes[i] {
				t.Fatalf("size changed at %d: %d vs %d", i, tr.SubtreeSize(i), sizes[i])
			}
		}
	})
}
