// Package tree implements the ordered labeled trees of the TASM paper
// (Section IV-A): rooted, directed, acyclic graphs whose nodes carry labels
// and whose children are totally ordered.
//
// Two representations are provided:
//
//   - Node: a conventional pointer structure, convenient for construction
//     and for parsers/generators.
//   - Tree: a flattened postorder representation (labels, subtree sizes,
//     leftmost leaves, parents as parallel arrays) which is what every
//     algorithm in this repository operates on. Postorder positions are
//     0-based internally; the paper's 1-based node t_i is index i-1.
//
// Node labels are interned in a dict.Dict so that label comparisons inside
// the edit distance inner loops are integer comparisons.
package tree

import (
	"fmt"
	"strings"

	"tasm/internal/dict"
)

// Node is one node of an ordered labeled tree in pointer form.
type Node struct {
	Label    string
	Children []*Node
}

// NewNode returns a node with the given label and children.
func NewNode(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// AddChild appends c as the new rightmost child of n and returns n.
func (n *Node) AddChild(c *Node) *Node {
	n.Children = append(n.Children, c)
	return n
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Height returns the number of nodes on the longest root-to-leaf path.
// A single node has height 1; a nil node has height 0.
func (n *Node) Height() int {
	if n == nil {
		return 0
	}
	h := 0
	for _, c := range n.Children {
		if ch := c.Height(); ch > h {
			h = ch
		}
	}
	return h + 1
}

// String renders the subtree in bracket notation, e.g. "{a{b}{c}}".
// Labels containing '{', '}' or '\' are escaped with a backslash.
func (n *Node) String() string {
	var b strings.Builder
	n.encode(&b)
	return b.String()
}

func (n *Node) encode(b *strings.Builder) {
	b.WriteByte('{')
	// Escape byte-wise: labels are arbitrary byte strings (XML text can
	// carry any encoding) and must round-trip exactly, so no rune
	// decoding that would substitute U+FFFD for invalid UTF-8.
	for i := 0; i < len(n.Label); i++ {
		c := n.Label[i]
		if c == '{' || c == '}' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	for _, c := range n.Children {
		c.encode(b)
	}
	b.WriteByte('}')
}

// Equal reports whether two trees in pointer form are identical in both
// structure and labels.
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if n.Label != o.Label || len(n.Children) != len(o.Children) {
		return false
	}
	for i, c := range n.Children {
		if !c.Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// FromNode flattens a pointer-form tree into the postorder representation,
// interning labels in d. It panics if root is nil: an empty tree is not an
// ordered labeled tree under Definition 1 ("non-empty graph").
func FromNode(d dict.Dict, root *Node) *Tree {
	if root == nil {
		panic("tree: FromNode called with nil root")
	}
	t := &Tree{dict: d}
	t.appendNode(root)
	return t
}

// appendNode appends the subtree rooted at n in postorder and returns its
// root index.
func (t *Tree) appendNode(n *Node) int {
	first := len(t.labels) // index the leftmost leaf of n will get
	childRoots := make([]int, len(n.Children))
	for i, c := range n.Children {
		childRoots[i] = t.appendNode(c)
	}
	idx := len(t.labels)
	t.labels = append(t.labels, t.dict.Intern(n.Label))
	t.sizes = append(t.sizes, idx-first+1)
	if len(n.Children) == 0 {
		t.lml = append(t.lml, idx)
	} else {
		t.lml = append(t.lml, t.lml[childRoots[0]])
	}
	t.parent = append(t.parent, -1)
	for _, r := range childRoots {
		t.parent[r] = idx
	}
	t.nchild = append(t.nchild, len(n.Children))
	return idx
}

// Node reconstructs the pointer form of the subtree rooted at postorder
// index i (0-based). Node(t.Root()) rebuilds the whole tree. Children are
// the nodes whose parent is i; they appear in increasing postorder, which
// is exactly their left-to-right sibling order.
func (t *Tree) Node(i int) *Node {
	t.check(i)
	n := &Node{Label: t.dict.Label(t.labels[i])}
	for c := t.lml[i]; c < i; c++ {
		if t.parent[c] == i {
			n.Children = append(n.Children, t.Node(c))
		}
	}
	return n
}

func (t *Tree) check(i int) {
	if i < 0 || i >= len(t.labels) {
		panic(fmt.Sprintf("tree: postorder index %d out of range [0,%d)", i, len(t.labels)))
	}
}
