package tree

import (
	"fmt"
	"strings"

	"tasm/internal/dict"
)

// Parse reads a tree in bracket notation, the compact format customary in
// the tree-edit-distance literature: "{a{b}{c}}" is a root labeled a with
// children b and c. Labels may contain any characters; '{', '}' and '\'
// must be escaped with a backslash. Whitespace between subtrees is ignored.
// Labels are interned in d.
func Parse(d dict.Dict, s string) (*Tree, error) {
	n, rest, err := parseNode(s)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("tree: trailing input %q after root subtree", rest)
	}
	return FromNode(d, n), nil
}

// MustParse is Parse for tests and examples with known-good literals; it
// panics on malformed input.
func MustParse(d dict.Dict, s string) *Tree {
	t, err := Parse(d, s)
	if err != nil {
		panic(err)
	}
	return t
}

// ParseNode reads a tree in bracket notation into pointer form without
// interning labels.
func ParseNode(s string) (*Node, error) {
	n, rest, err := parseNode(s)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("tree: trailing input %q after root subtree", rest)
	}
	return n, nil
}

func parseNode(s string) (n *Node, rest string, err error) {
	s = strings.TrimLeft(s, " \t\r\n")
	if s == "" {
		return nil, "", fmt.Errorf("tree: empty input, want '{'")
	}
	if s[0] != '{' {
		return nil, "", fmt.Errorf("tree: want '{', got %q", s[0])
	}
	s = s[1:]

	// Read the label up to the first unescaped '{' or '}'.
	var label strings.Builder
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '\\' {
			if i+1 >= len(s) {
				return nil, "", fmt.Errorf("tree: dangling escape at end of input")
			}
			label.WriteByte(s[i+1])
			i += 2
			continue
		}
		if c == '{' || c == '}' {
			break
		}
		label.WriteByte(c)
		i++
	}
	if i >= len(s) {
		return nil, "", fmt.Errorf("tree: unterminated subtree (missing '}')")
	}
	n = &Node{Label: label.String()}
	s = s[i:]

	for {
		s = strings.TrimLeft(s, " \t\r\n")
		if s == "" {
			return nil, "", fmt.Errorf("tree: unterminated subtree (missing '}')")
		}
		if s[0] == '}' {
			return n, s[1:], nil
		}
		child, rest, err := parseNode(s)
		if err != nil {
			return nil, "", err
		}
		n.Children = append(n.Children, child)
		s = rest
	}
}
