package tree

import (
	"fmt"
	"slices"

	"tasm/internal/dict"
)

// View is a flat, reusable postorder view of one tree: the same parallel
// arrays a Tree holds (labels, subtree sizes, leftmost leaves, parents,
// fanouts) but owned by the View and recycled across fills, so that
// steady-state candidate evaluation allocates nothing per candidate.
//
// The filling contract is Reset → write labels/sizes → Build:
//
//	labels, sizes := v.Reset(d, n) // grow buffers, expose the two inputs
//	...fill labels[i], sizes[i]...  // postorder, sizes per Definition 2
//	err := v.Build()               // derive lml/parent/fanout, validate
//
// Build validates that the arrays encode a single well-formed tree exactly
// like FromPostorder; after a successful Build the accessors and Keyroots
// are valid until the next Reset. Keyroots are computed lazily on first
// use and cached for the lifetime of the fill.
//
// The slices returned by the accessors alias the View's internal buffers:
// they are invalidated by the next Reset and must not be mutated. A View
// is not safe for concurrent use; pool Views (one per goroutine) instead.
type View struct {
	dict   dict.Dict
	labels []int
	sizes  []int
	lml    []int
	parent []int
	nchild []int

	kr      []int // cached keyroots of the current fill
	krValid bool
	maxFor  []int // scratch for keyroot computation
	stack   []int // scratch for Build
	shell   *Tree // lazily allocated alias Tree for cost models etc.
}

// growInts returns s resized to length n, reusing its backing array when
// the capacity suffices and growing geometrically otherwise.
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	return make([]int, n, c) //tasm:allow alloc — grow-only scratch: reallocates only when n exceeds every prior capacity
}

// Reset prepares the view for a tree of n ≥ 1 nodes with labels interned
// in d, and returns the labels and sizes buffers for the caller to fill
// (both of length exactly n). Any previous fill is discarded.
func (v *View) Reset(d dict.Dict, n int) (labels, sizes []int) {
	v.dict = d
	v.labels = growInts(v.labels, n)
	v.sizes = growInts(v.sizes, n)
	v.lml = growInts(v.lml, n)
	v.parent = growInts(v.parent, n)
	v.nchild = growInts(v.nchild, n)
	v.krValid = false
	return v.labels, v.sizes
}

// Build derives the leftmost-leaf, parent and fanout arrays from the
// filled labels/sizes and validates that they encode a single well-formed
// tree (the same checks as FromPostorder). It must be called after Reset
// and before any accessor.
func (v *View) Build() error {
	n := len(v.labels)
	if n == 0 {
		return fmt.Errorf("tree: empty postorder sequence") //tasm:allow alloc — cold error path: corrupt input only
	}
	stack := v.stack[:0]
	for i := 0; i < n; i++ {
		sz := v.sizes[i]
		if sz < 1 || sz > i+1 {
			v.stack = stack
			return fmt.Errorf("tree: node %d has invalid subtree size %d", i, sz) //tasm:allow alloc — cold error path: corrupt input only
		}
		lml := i - sz + 1
		v.lml[i] = lml
		v.parent[i] = -1
		v.nchild[i] = 0
		// Adopt completed subtrees inside [lml, i-1]; they must tile the
		// interval exactly from the right.
		cover := i - 1
		for len(stack) > 0 && stack[len(stack)-1] >= lml {
			top := stack[len(stack)-1]
			if top != cover {
				v.stack = stack
				return fmt.Errorf("tree: node %d (size %d) leaves a gap before descendant %d", i, sz, top) //tasm:allow alloc — cold error path: corrupt input only
			}
			stack = stack[:len(stack)-1]
			v.parent[top] = i
			v.nchild[i]++
			cover = v.lml[top] - 1
		}
		if cover != lml-1 {
			v.stack = stack
			return fmt.Errorf("tree: node %d (size %d) does not cover nodes down to %d", i, sz, lml) //tasm:allow alloc — cold error path: corrupt input only
		}
		stack = append(stack, i) //tasm:allow alloc — grow-only: appends into build scratch reused across fills
	}
	v.stack = stack
	if len(stack) != 1 {
		return fmt.Errorf("tree: postorder sequence encodes %d trees, want exactly 1", len(stack)) //tasm:allow alloc — cold error path: corrupt input only
	}
	return nil
}

// Size returns the number of nodes of the current fill.
func (v *View) Size() int { return len(v.labels) }

// Dict returns the dictionary the current fill's labels are interned in.
func (v *View) Dict() dict.Dict { return v.dict }

// LabelIDs returns the interned labels in postorder. Read-only alias.
func (v *View) LabelIDs() []int { return v.labels }

// Sizes returns the subtree sizes in postorder. Read-only alias.
func (v *View) Sizes() []int { return v.sizes }

// LMLs returns the leftmost-leaf indices in postorder. Read-only alias.
func (v *View) LMLs() []int { return v.lml }

// Keyroots returns the LR-keyroots of the current fill in increasing
// postorder, computed on first use and cached until the next Reset.
// Read-only alias.
func (v *View) Keyroots() []int {
	if v.krValid {
		return v.kr
	}
	n := len(v.labels)
	maxFor := growInts(v.maxFor, n)
	for i := range maxFor {
		maxFor[i] = -1
	}
	for i := 0; i < n; i++ {
		maxFor[v.lml[i]] = i
	}
	kr := v.kr[:0]
	for _, i := range maxFor {
		if i >= 0 {
			kr = append(kr, i) //tasm:allow alloc — grow-only: appends into keyroot scratch reused across fills
		}
	}
	slices.Sort(kr)
	v.kr, v.maxFor = kr, maxFor
	v.krValid = true
	return kr
}

// Tree returns a Tree aliasing the view's buffers, for code that needs a
// *Tree (cost models, probes). The returned tree is valid until the next
// Reset, shares the View's lifetime (the same pointer is reused across
// fills), and must be treated as read-only.
func (v *View) Tree() *Tree {
	if v.shell == nil {
		v.shell = &Tree{} //tasm:allow alloc — lazily allocated once per View lifetime, reused across fills
	}
	s := v.shell
	s.dict = v.dict
	s.labels, s.sizes, s.lml, s.parent, s.nchild = v.labels, v.sizes, v.lml, v.parent, v.nchild
	// Any lazily cached navigation index or keyroots refer to a previous
	// fill.
	s.nav.Store(nil)
	s.kr.Store(nil)
	return s
}

// Subtree materializes the subtree rooted at postorder node j of the
// current fill as an independent Tree (fresh backing arrays sharing only
// the dictionary). It is the escape hatch for results that must outlive
// the View.
func (v *View) Subtree(j int) *Tree {
	return v.Tree().Subtree(j)
}
