package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tasm/internal/dict"
)

// paperH returns the example document H of Figure 2 of the paper:
// postorder h1=b, h2=d, h3=a, h4=b, h5=c, h6=a, h7=x.
func paperH(t *testing.T) *Tree {
	t.Helper()
	return MustParse(dict.New(), "{x{a{b}{d}}{a{b}{c}}}")
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"{a}",
		"{a{b}}",
		"{a{b}{c}}",
		"{x{a{b}{d}}{a{b}{c}}}",
		"{root{x{y{z}}}{w}}",
		"{label with spaces{child}}",
	}
	for _, s := range cases {
		d := dict.New()
		tr, err := Parse(d, s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := tr.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("Parse(%q).Validate(): %v", s, err)
		}
	}
}

func TestParseEscapes(t *testing.T) {
	d := dict.New()
	tr, err := Parse(d, `{a\{b\}\\{c}}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := tr.Label(tr.Root()); got != `a{b}\` {
		t.Errorf("root label = %q, want %q", got, `a{b}\`)
	}
	if tr.Size() != 2 {
		t.Errorf("size = %d, want 2", tr.Size())
	}
	// Round-trip through String.
	again, err := Parse(dict.New(), tr.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !tr.Equal(again) {
		t.Errorf("round trip mismatch: %q vs %q", tr, again)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a",
		"{a",
		"{a}}",
		"{a}{b}",
		"{a{b}",
		`{a\`,
		"}",
	}
	for _, s := range bad {
		if _, err := Parse(dict.New(), s); err == nil {
			t.Errorf("Parse(%q): want error, got nil", s)
		}
	}
}

func TestPostorderNumbering(t *testing.T) {
	h := paperH(t)
	wantLabels := []string{"b", "d", "a", "b", "c", "a", "x"}
	wantSizes := []int{1, 1, 3, 1, 1, 3, 7}
	wantLML := []int{0, 1, 0, 3, 4, 3, 0}
	wantParent := []int{2, 2, 6, 5, 5, 6, -1}
	if h.Size() != 7 {
		t.Fatalf("size = %d, want 7", h.Size())
	}
	for i := 0; i < 7; i++ {
		if got := h.Label(i); got != wantLabels[i] {
			t.Errorf("label(%d) = %q, want %q", i, got, wantLabels[i])
		}
		if got := h.SubtreeSize(i); got != wantSizes[i] {
			t.Errorf("size(%d) = %d, want %d", i, got, wantSizes[i])
		}
		if got := h.LML(i); got != wantLML[i] {
			t.Errorf("lml(%d) = %d, want %d", i, got, wantLML[i])
		}
		if got := h.Parent(i); got != wantParent[i] {
			t.Errorf("parent(%d) = %d, want %d", i, got, wantParent[i])
		}
	}
}

func TestKeyrootsPaperExample(t *testing.T) {
	// Example 1: the relevant subtrees of H are H2, H5, H6, H7 —
	// 0-based keyroots {1, 4, 5, 6}.
	h := paperH(t)
	got := h.Keyroots()
	want := []int{1, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("keyroots = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keyroots = %v, want %v", got, want)
		}
	}
	// Example 1 for the query G: relevant subtrees G2 and G3.
	g := MustParse(dict.New(), "{a{b}{c}}")
	gotG := g.Keyroots()
	wantG := []int{1, 2}
	if len(gotG) != 2 || gotG[0] != wantG[0] || gotG[1] != wantG[1] {
		t.Fatalf("query keyroots = %v, want %v", gotG, wantG)
	}
}

func TestSubtree(t *testing.T) {
	h := paperH(t)
	// H6 is the subtree {a{b}{c}} rooted at 0-based index 5.
	h6 := h.Subtree(5)
	if err := h6.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := h6.String(); got != "{a{b}{c}}" {
		t.Errorf("H6 = %q, want {a{b}{c}}", got)
	}
	// Subtree of a leaf is a single node.
	h1 := h.Subtree(0)
	if h1.Size() != 1 || h1.Label(0) != "b" {
		t.Errorf("H1 = %q (size %d), want single b", h1, h1.Size())
	}
	// Subtree at the root is the whole tree.
	if !h.Subtree(h.Root()).Equal(h) {
		t.Errorf("Subtree(root) != tree")
	}
}

func TestHeightAndFanout(t *testing.T) {
	h := paperH(t)
	if got := h.Height(); got != 3 {
		t.Errorf("height = %d, want 3", got)
	}
	if got := h.Fanout(6); got != 2 {
		t.Errorf("fanout(root) = %d, want 2", got)
	}
	if got := h.Fanout(0); got != 0 {
		t.Errorf("fanout(leaf) = %d, want 0", got)
	}
	single := MustParse(dict.New(), "{a}")
	if got := single.Height(); got != 1 {
		t.Errorf("height of single node = %d, want 1", got)
	}
	chain := MustParse(dict.New(), "{a{b{c{d}}}}")
	if got := chain.Height(); got != 4 {
		t.Errorf("height of chain = %d, want 4", got)
	}
}

func TestIsAncestor(t *testing.T) {
	h := paperH(t)
	cases := []struct {
		a, i int
		want bool
	}{
		{6, 0, true},  // root is ancestor of everything
		{2, 0, true},  // h3 over h1
		{2, 1, true},  // h3 over h2
		{5, 3, true},  // h6 over h4
		{2, 3, false}, // different branches
		{5, 0, false},
		{0, 2, false}, // descendant is not ancestor
		{3, 3, false}, // not a proper ancestor of itself
	}
	for _, c := range cases {
		if got := h.IsAncestor(c.a, c.i); got != c.want {
			t.Errorf("IsAncestor(%d,%d) = %v, want %v", c.a, c.i, got, c.want)
		}
	}
}

func TestNodeRoundTrip(t *testing.T) {
	h := paperH(t)
	n := h.Node(h.Root())
	again := FromNode(dict.New(), n)
	if !h.Equal(again) {
		t.Errorf("Node round trip mismatch: %q vs %q", h, again)
	}
}

func TestEqualDifferentDicts(t *testing.T) {
	a := MustParse(dict.New(), "{a{b}{c}}")
	d2 := dict.New()
	d2.Intern("zzz") // shift identifiers
	b := MustParse(d2, "{a{b}{c}}")
	if !a.Equal(b) {
		t.Errorf("trees with same labels but different dicts should be Equal")
	}
	c := MustParse(dict.New(), "{a{b}{d}}")
	if a.Equal(c) {
		t.Errorf("trees with different labels should not be Equal")
	}
}

func TestRandomTreesAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for n := 1; n <= 60; n++ {
		tr := Random(dict.New(), rng, DefaultRandomConfig(n))
		if tr.Size() != n {
			t.Fatalf("Random(%d).Size() = %d", n, tr.Size())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Random(%d) invalid: %v", n, err)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(dict.New(), rand.New(rand.NewSource(7)), DefaultRandomConfig(25))
	b := Random(dict.New(), rand.New(rand.NewSource(7)), DefaultRandomConfig(25))
	if !a.Equal(b) {
		t.Errorf("same seed should produce identical trees")
	}
}

func TestFromPostorder(t *testing.T) {
	h := paperH(t)
	labels := make([]int, h.Size())
	sizes := make([]int, h.Size())
	for i := 0; i < h.Size(); i++ {
		labels[i] = h.LabelID(i)
		sizes[i] = h.SubtreeSize(i)
	}
	got, err := FromPostorder(h.Dict(), labels, sizes)
	if err != nil {
		t.Fatalf("FromPostorder: %v", err)
	}
	if !got.Equal(h) {
		t.Errorf("FromPostorder mismatch: %q vs %q", got, h)
	}
}

func TestFromPostorderErrors(t *testing.T) {
	d := dict.New()
	l := d.Intern("a")
	cases := []struct {
		name   string
		labels []int
		sizes  []int
	}{
		{"empty", nil, nil},
		{"mismatched lengths", []int{l, l}, []int{1}},
		{"zero size", []int{l}, []int{0}},
		{"size too large", []int{l, l}, []int{1, 3}},
		{"two roots", []int{l, l}, []int{1, 1}},
		{"splits subtree", []int{l, l, l, l}, []int{1, 2, 1, 3}},
	}
	for _, c := range cases {
		if _, err := FromPostorder(d, c.labels, c.sizes); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

// TestFromPostorderQuick checks the round trip tree → (labels, sizes) →
// tree on random trees.
func TestFromPostorderQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		d := dict.New()
		tr := Random(d, rand.New(rand.NewSource(seed)), DefaultRandomConfig(n))
		labels := make([]int, n)
		sizes := make([]int, n)
		for i := 0; i < n; i++ {
			labels[i] = tr.LabelID(i)
			sizes[i] = tr.SubtreeSize(i)
		}
		got, err := FromPostorder(d, labels, sizes)
		return err == nil && got.Equal(tr)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestKeyrootsQuick checks the keyroot characterization on random trees:
// i is a keyroot iff no larger node shares its leftmost leaf.
func TestKeyrootsQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		tr := Random(dict.New(), rand.New(rand.NewSource(seed)), DefaultRandomConfig(n))
		isKey := make([]bool, n)
		for _, k := range tr.Keyroots() {
			isKey[k] = true
		}
		for i := 0; i < n; i++ {
			want := true
			for j := i + 1; j < n; j++ {
				if tr.LML(j) == tr.LML(i) {
					want = false
					break
				}
			}
			if isKey[i] != want {
				return false
			}
		}
		// The root must always be a keyroot.
		return isKey[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestStringEscaping(t *testing.T) {
	n := NewNode("we{ird}\\label", NewNode("plain"))
	s := n.String()
	if !strings.Contains(s, `\{`) || !strings.Contains(s, `\}`) || !strings.Contains(s, `\\`) {
		t.Errorf("String() = %q: special characters not escaped", s)
	}
	back, err := ParseNode(s)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !n.Equal(back) {
		t.Errorf("escape round trip failed: %q", s)
	}
}

func TestNodeHelpers(t *testing.T) {
	n := NewNode("a", NewNode("b"), NewNode("c", NewNode("d")))
	if got := n.Size(); got != 4 {
		t.Errorf("Size = %d, want 4", got)
	}
	if got := n.Height(); got != 3 {
		t.Errorf("Height = %d, want 3", got)
	}
	var nilNode *Node
	if nilNode.Size() != 0 || nilNode.Height() != 0 {
		t.Errorf("nil node should have size and height 0")
	}
}
