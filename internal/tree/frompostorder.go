package tree

import (
	"fmt"

	"tasm/internal/dict"
)

// FromPostorder builds a tree directly from parallel postorder arrays of
// interned labels and subtree sizes (the contents of a postorder queue,
// Definition 2). It validates that the arrays encode a single well-formed
// tree and runs in O(n) with no pointer-form intermediate, which makes it
// the constructor of choice for materializing candidate subtrees out of
// the prefix ring buffer.
func FromPostorder(d *dict.Dict, labels, sizes []int) (*Tree, error) {
	n := len(labels)
	if n == 0 {
		return nil, fmt.Errorf("tree: empty postorder sequence")
	}
	if len(sizes) != n {
		return nil, fmt.Errorf("tree: %d labels but %d sizes", n, len(sizes))
	}
	t := &Tree{
		dict:   d,
		labels: make([]int, n),
		sizes:  make([]int, n),
		lml:    make([]int, n),
		parent: make([]int, n),
		nchild: make([]int, n),
	}
	copy(t.labels, labels)
	copy(t.sizes, sizes)

	// stack holds roots of completed subtrees awaiting a parent,
	// in increasing postorder.
	stack := make([]int, 0, 32)
	for i := 0; i < n; i++ {
		sz := sizes[i]
		if sz < 1 || sz > i+1 {
			return nil, fmt.Errorf("tree: node %d has invalid subtree size %d", i, sz)
		}
		lml := i - sz + 1
		t.lml[i] = lml
		t.parent[i] = -1
		// Adopt completed subtrees inside [lml, i-1]; they must tile the
		// interval exactly from the right.
		cover := i - 1
		for len(stack) > 0 && stack[len(stack)-1] >= lml {
			top := stack[len(stack)-1]
			if top != cover {
				return nil, fmt.Errorf("tree: node %d (size %d) leaves a gap before descendant %d", i, sz, top)
			}
			stack = stack[:len(stack)-1]
			t.parent[top] = i
			t.nchild[i]++
			cover = t.lml[top] - 1
		}
		if cover != lml-1 {
			return nil, fmt.Errorf("tree: node %d (size %d) does not cover nodes down to %d", i, sz, lml)
		}
		stack = append(stack, i)
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("tree: postorder sequence encodes %d trees, want exactly 1", len(stack))
	}
	// Children were attached right-to-left; nchild is correct but the
	// popping order above recorded parents only, so child order needs no
	// fix-up (order is implied by postorder positions).
	return t, nil
}
