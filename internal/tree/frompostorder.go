package tree

import (
	"fmt"

	"tasm/internal/dict"
)

// FromPostorder builds a tree directly from parallel postorder arrays of
// interned labels and subtree sizes (the contents of a postorder queue,
// Definition 2). It validates that the arrays encode a single well-formed
// tree and runs in O(n) with no pointer-form intermediate. The validation
// and derivation are shared with the flat candidate views (View.Build),
// so the materialized and view paths accept exactly the same inputs.
func FromPostorder(d dict.Dict, labels, sizes []int) (*Tree, error) {
	n := len(labels)
	if n == 0 {
		return nil, fmt.Errorf("tree: empty postorder sequence")
	}
	if len(sizes) != n {
		return nil, fmt.Errorf("tree: %d labels but %d sizes", n, len(sizes))
	}
	// Fill a throwaway View and steal its freshly allocated buffers: the
	// View is local, so no aliasing escapes.
	var v View
	l, s := v.Reset(d, n)
	copy(l, labels)
	copy(s, sizes)
	if err := v.Build(); err != nil {
		return nil, err
	}
	return &Tree{
		dict:   d,
		labels: v.labels,
		sizes:  v.sizes,
		lml:    v.lml,
		parent: v.parent,
		nchild: v.nchild,
	}, nil
}
