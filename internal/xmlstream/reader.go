// Package xmlstream connects XML documents to the postorder-queue world of
// TASM using only encoding/xml.
//
// An XML element maps to a node labeled with its tag; each attribute maps
// to a child node labeled "@name" with a single child holding the value;
// each non-whitespace text run maps to a leaf holding the trimmed text.
// This is the node model of the paper's evaluation, where "element and
// attribute tags as well as text content" are dictionary-interned labels.
//
// Because an element's end tag is seen only after all of its content, a
// SAX-style scan of an XML document visits nodes exactly in postorder, and
// the subtree size of an element is known the moment it closes. The Reader
// below therefore streams a document of any size into a postorder queue
// with memory proportional to the document depth — the property that lets
// TASM-postorder run over gigabyte-scale documents.
package xmlstream

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

// Reader is a postorder.Queue that parses an XML document incrementally.
type Reader struct {
	dec  *xml.Decoder
	dict dict.Dict

	// stack holds the number of nodes emitted so far inside each open
	// element (excluding the element itself).
	stack []int

	// out buffers items that became ready during the last token step:
	// attributes of a start element, a text leaf, or a closed element.
	out []postorder.Item

	rootSeen bool // a root element has been fully emitted
	done     bool
	err      error
}

// NewReader returns a Reader streaming the XML document from r, interning
// labels in d.
func NewReader(d dict.Dict, r io.Reader) *Reader {
	dec := xml.NewDecoder(r)
	// XML corpora in the wild (DBLP in particular) rely on entities and
	// non-strict quirks; keep strict mode but map unknown entities to
	// their literal names so bibliography-style files parse.
	dec.Strict = false
	return &Reader{dec: dec, dict: d}
}

// Next implements postorder.Queue.
func (r *Reader) Next() (postorder.Item, error) {
	for {
		if len(r.out) > 0 {
			it := r.out[0]
			r.out = r.out[1:]
			return it, nil
		}
		if r.err != nil {
			return postorder.Item{}, r.err
		}
		if r.done {
			return postorder.Item{}, io.EOF
		}
		r.step()
	}
}

// step consumes one XML token and appends any completed nodes to r.out.
func (r *Reader) step() {
	tok, err := r.dec.Token()
	if err == io.EOF {
		if len(r.stack) > 0 {
			r.err = fmt.Errorf("xmlstream: unexpected EOF with %d open elements", len(r.stack))
			return
		}
		if !r.rootSeen {
			r.err = fmt.Errorf("xmlstream: document contains no element")
			return
		}
		r.done = true
		return
	}
	if err != nil {
		r.err = fmt.Errorf("xmlstream: %w", err)
		return
	}
	switch t := tok.(type) {
	case xml.StartElement:
		if r.rootSeen {
			r.err = fmt.Errorf("xmlstream: multiple root elements")
			return
		}
		r.stack = append(r.stack, 0)
		// Attributes become the element's first children, in document
		// order: a leaf "@name" with a value child when non-empty.
		for _, a := range t.Attr {
			name := "@" + attrName(a.Name)
			if a.Value == "" {
				r.emit(r.dict.Intern(name), 1)
				continue
			}
			// The value leaf is part of the "@name" subtree: only the
			// subtree root is credited to the enclosing element.
			r.out = append(r.out, postorder.Item{Label: r.dict.Intern(a.Value), Size: 1})
			r.emit(r.dict.Intern(name), 2)
		}
	case xml.EndElement:
		if len(r.stack) == 0 {
			r.err = fmt.Errorf("xmlstream: unmatched end tag </%s>", t.Name.Local)
			return
		}
		inner := r.stack[len(r.stack)-1]
		r.stack = r.stack[:len(r.stack)-1]
		r.emit(r.dict.Intern(t.Name.Local), inner+1)
		if len(r.stack) == 0 {
			r.rootSeen = true
		}
	case xml.CharData:
		text := strings.TrimSpace(string(t))
		if text == "" || len(r.stack) == 0 {
			return
		}
		r.emit(r.dict.Intern(text), 1)
	default:
		// Comments, directives and processing instructions carry no tree
		// structure; skip them.
	}
}

// emit appends a completed node and credits it to the enclosing element.
func (r *Reader) emit(label, size int) {
	r.out = append(r.out, postorder.Item{Label: label, Size: size})
	if len(r.stack) > 0 {
		r.stack[len(r.stack)-1] += size
	}
}

func attrName(n xml.Name) string {
	if n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}

// ParseTree parses a whole XML document into a materialized tree; a
// convenience for queries and small documents.
func ParseTree(d dict.Dict, r io.Reader) (*tree.Tree, error) {
	return postorder.BuildTree(d, NewReader(d, r))
}
