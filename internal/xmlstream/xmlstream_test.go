package xmlstream

import (
	"strings"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

func TestSimpleDocument(t *testing.T) {
	d := dict.New()
	tr, err := ParseTree(d, strings.NewReader(
		`<dblp><article><auth>John</auth><title>X1</title></article></dblp>`))
	if err != nil {
		t.Fatal(err)
	}
	want := "{dblp{article{auth{John}}{title{X1}}}}"
	if got := tr.String(); got != want {
		t.Errorf("parsed tree = %s, want %s", got, want)
	}
}

func TestPostorderSizes(t *testing.T) {
	// The element closes after its content, so subtree sizes must match
	// Figure 4's postorder queue semantics.
	d := dict.New()
	tr, err := ParseTree(d, strings.NewReader(`<a><b>t1</b><c/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	// Postorder: t1(1), b(2), c(1), a(4).
	wantSizes := []int{1, 2, 1, 4}
	wantLabels := []string{"t1", "b", "c", "a"}
	for i := range wantSizes {
		if tr.SubtreeSize(i) != wantSizes[i] || tr.Label(i) != wantLabels[i] {
			t.Errorf("node %d = (%s,%d), want (%s,%d)",
				i, tr.Label(i), tr.SubtreeSize(i), wantLabels[i], wantSizes[i])
		}
	}
}

func TestAttributes(t *testing.T) {
	d := dict.New()
	tr, err := ParseTree(d, strings.NewReader(`<article key="x/1" mdate="2009"><title>T</title></article>`))
	if err != nil {
		t.Fatal(err)
	}
	want := "{article{@key{x/1}}{@mdate{2009}}{title{T}}}"
	if got := tr.String(); got != want {
		t.Errorf("parsed tree = %s, want %s", got, want)
	}
}

func TestEmptyAttribute(t *testing.T) {
	d := dict.New()
	tr, err := ParseTree(d, strings.NewReader(`<a flag=""/>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "{a{@flag}}" {
		t.Errorf("parsed tree = %s", got)
	}
}

func TestWhitespaceIgnored(t *testing.T) {
	d := dict.New()
	tr, err := ParseTree(d, strings.NewReader("<a>\n  <b>x</b>\n  \t<c/>\n</a>"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "{a{b{x}}{c}}" {
		t.Errorf("parsed tree = %s", got)
	}
}

func TestCommentsAndPIsSkipped(t *testing.T) {
	d := dict.New()
	tr, err := ParseTree(d, strings.NewReader(
		`<?xml version="1.0"?><!-- hi --><a><!-- inner --><b/></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "{a{b}}" {
		t.Errorf("parsed tree = %s", got)
	}
}

func TestMixedContent(t *testing.T) {
	d := dict.New()
	tr, err := ParseTree(d, strings.NewReader(`<p>before<b>bold</b>after</p>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.String(); got != "{p{before}{b{bold}}{after}}" {
		t.Errorf("parsed tree = %s", got)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"no root":   "  <!-- only a comment --> ",
		"unclosed":  "<a><b></b>",
		"two roots": "<a/><b/>",
	}
	for name, doc := range cases {
		d := dict.New()
		if _, err := ParseTree(d, strings.NewReader(doc)); err == nil {
			t.Errorf("%s (%q): want error", name, doc)
		}
	}
}

func TestStreamingMatchesMaterialized(t *testing.T) {
	const doc = `<site><people><person id="p1"><name>Jo</name></person><person id="p2"><name>Al</name></person></people><regions><europe><item><name>thing</name></item></europe></regions></site>`
	d := dict.New()
	items, err := postorder.Collect(NewReader(d, strings.NewReader(doc)))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTree(dict.New(), strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != tr.Size() {
		t.Fatalf("stream has %d items, tree has %d nodes", len(items), tr.Size())
	}
	for i, it := range items {
		if d.Label(it.Label) != tr.Label(i) || it.Size != tr.SubtreeSize(i) {
			t.Errorf("item %d = (%s,%d), tree node = (%s,%d)",
				i, d.Label(it.Label), it.Size, tr.Label(i), tr.SubtreeSize(i))
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	docs := []string{
		`<dblp><article k="1"><auth>John Smith</auth><title>a title</title></article></dblp>`,
		`<a><b>x</b><c><d/></c></a>`,
	}
	for _, doc := range docs {
		d := dict.New()
		tr, err := ParseTree(d, strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := WriteTree(&sb, tr); err != nil {
			t.Fatal(err)
		}
		again, err := ParseTree(dict.New(), strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("reparse of %q: %v", sb.String(), err)
		}
		if !tr.Equal(again) {
			t.Errorf("round trip mismatch:\n in: %s\nxml: %s\nout: %s", tr, strings.TrimSpace(sb.String()), again)
		}
	}
}

func TestWriteArbitraryLabels(t *testing.T) {
	// Labels that are not XML names must still produce well-formed XML.
	d := dict.New()
	tr := tree.MustParse(d, "{weird label{<&>}{ok}}")
	var sb strings.Builder
	if err := WriteTree(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTree(dict.New(), strings.NewReader(sb.String())); err != nil {
		t.Errorf("emitted XML not parseable: %v\n%s", err, sb.String())
	}
}

func TestEntities(t *testing.T) {
	d := dict.New()
	tr, err := ParseTree(d, strings.NewReader(`<a>x &amp; y</a>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Label(0); got != "x & y" {
		t.Errorf("entity decoding: %q", got)
	}
}
