package xmlstream

import (
	"strings"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/postorder"
)

// FuzzReader checks that the streaming XML reader never panics and that
// every stream it accepts is a well-formed postorder queue (sizes
// consistent, single root).
func FuzzReader(f *testing.F) {
	for _, seed := range []string{
		`<a/>`,
		`<a><b>text</b></a>`,
		`<a k="v"><b/></a>`,
		`<a>`,
		`</a>`,
		`<a/><b/>`,
		`<!-- c --><a/>`,
		`<?xml version="1.0"?><a>x</a>`,
		`<a><b></a></b>`,
		"<a>\xff\xfe</a>",
		`<a k="">&amp;</a>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		d := dict.New()
		n, err := postorder.Validate(NewReader(d, strings.NewReader(doc)))
		if err != nil {
			return // malformed inputs must error, not panic
		}
		if n < 1 {
			t.Fatalf("accepted %q with %d nodes", doc, n)
		}
		// Accepted documents must also materialize into a valid tree.
		tr, err := ParseTree(dict.New(), strings.NewReader(doc))
		if err != nil {
			t.Fatalf("Validate accepted %q but BuildTree failed: %v", doc, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree from %q invalid: %v", doc, err)
		}
	})
}
