package xmlstream

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"tasm/internal/tree"
)

// WriteTree serializes a tree produced by this package's node model back
// to XML. Nodes whose label starts with "@" become attributes of their
// parent element (their single child, if any, is the attribute value);
// leaf nodes that have a sibling-less text shape are emitted as character
// data when they are leaves under an element; all other nodes become
// elements. Labels that are not valid XML names are emitted as elements
// named "_node" with a "label" attribute, so arbitrary trees round-trip
// into well-formed XML.
func WriteTree(w io.Writer, t *tree.Tree) error {
	bw := bufio.NewWriter(w)
	if err := writeNode(bw, t.Node(t.Root()), 0); err != nil {
		return err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	return bw.Flush()
}

func writeNode(w *bufio.Writer, n *tree.Node, depth int) error {
	// Leaves that are not valid element names render as text content at
	// depth > 0 — the inverse of the reader's text mapping.
	if len(n.Children) == 0 && depth > 0 && !isName(n.Label) {
		_, err := w.WriteString(escapeText(n.Label))
		return err
	}
	name := n.Label
	extra := ""
	if !isName(name) {
		extra = fmt.Sprintf(" label=%q", name)
		name = "_node"
	}
	if _, err := fmt.Fprintf(w, "<%s%s", name, extra); err != nil {
		return err
	}
	// Leading "@" children become attributes.
	rest := n.Children
	for len(rest) > 0 && strings.HasPrefix(rest[0].Label, "@") {
		a := rest[0]
		val := ""
		if len(a.Children) == 1 && len(a.Children[0].Children) == 0 {
			val = a.Children[0].Label
		}
		attr := a.Label[1:]
		if !isName(attr) {
			break // not representable as an attribute; fall through to elements
		}
		if _, err := fmt.Fprintf(w, " %s=%q", attr, val); err != nil {
			return err
		}
		rest = rest[1:]
	}
	if len(rest) == 0 {
		_, err := w.WriteString("/>")
		return err
	}
	if _, err := w.WriteString(">"); err != nil {
		return err
	}
	for _, c := range rest {
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "</%s>", name)
	return err
}

// isName reports whether s is usable as an XML element/attribute name.
func isName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '.'):
		default:
			return false
		}
	}
	return true
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
