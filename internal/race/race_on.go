//go:build race

// Package race reports whether the race detector is compiled in. Tests
// that assert exact allocation counts still run their workloads under
// `go test -race` (for race coverage) but skip the count assertions,
// which instrumentation would distort.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
