// Package postorder implements the postorder queue of the TASM paper
// (Definition 2): a stream of (label, size) pairs of the nodes of an
// ordered labeled tree in postorder, where size is the size of the subtree
// rooted at the node. A postorder queue uniquely defines the tree, and the
// only permitted operation is dequeuing the next pair.
//
// The postorder queue is the single document interface of this repository:
// TASM-postorder, the prefix ring buffer, the XML reader, the binary
// document store and the synthetic data generators all produce or consume
// Queue values, which is what makes the document-size-independent space
// bound of the paper achievable — documents are never required to be
// memory-resident.
package postorder

import (
	"errors"
	"fmt"
	"io"

	"tasm/internal/dict"
	"tasm/internal/tree"
)

// Item is one (label, size) pair of a postorder queue. Label is an
// identifier interned in the dict.Dict shared by query and document;
// Size is the size of the subtree rooted at the node.
type Item struct {
	Label int
	Size  int
}

// Queue is a postorder queue. Next returns the next (label, size) pair in
// postorder, io.EOF after the last node, or another error if the
// underlying source fails (e.g. malformed XML mid-stream).
type Queue interface {
	Next() (Item, error)
}

// SliceQueue is an in-memory Queue over a fixed item slice.
type SliceQueue struct {
	items []Item
	pos   int
}

// NewSliceQueue returns a Queue that yields the given items in order.
func NewSliceQueue(items []Item) *SliceQueue {
	return &SliceQueue{items: items}
}

// Next implements Queue.
func (q *SliceQueue) Next() (Item, error) {
	if q.pos >= len(q.items) {
		return Item{}, io.EOF
	}
	it := q.items[q.pos]
	q.pos++
	return it, nil
}

// Items returns the postorder queue of t as a slice (Definition 2 written
// out in full, like Figure 4b of the paper).
func Items(t *tree.Tree) []Item {
	items := make([]Item, t.Size())
	for i := 0; i < t.Size(); i++ {
		items[i] = Item{Label: t.LabelID(i), Size: t.SubtreeSize(i)}
	}
	return items
}

// FromTree returns a Queue streaming the nodes of t in postorder.
func FromTree(t *tree.Tree) Queue {
	return NewSliceQueue(Items(t))
}

// Collect drains q and returns all remaining items. It is mainly useful in
// tests; production code should consume queues incrementally.
func Collect(q Queue) ([]Item, error) {
	var items []Item
	for {
		it, err := q.Next()
		if errors.Is(err, io.EOF) {
			return items, nil
		}
		if err != nil {
			return items, err
		}
		items = append(items, it)
	}
}

// BuildTree materializes the tree defined by a postorder queue. It returns
// an error if the stream does not encode a single well-formed tree: sizes
// must be consistent (each node's size is 1 plus the sizes of the subtrees
// it closes over) and exactly one root must remain.
//
// The reconstruction keeps a stack of completed subtree roots: a node of
// size s adopts the maximal run of completed subtrees whose sizes sum to
// s-1 (its children, in order).
func BuildTree(d dict.Dict, q Queue) (*tree.Tree, error) {
	type frame struct {
		node *tree.Node
		size int
	}
	var stack []frame
	n := 0
	for {
		it, err := q.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		n++
		if it.Size < 1 {
			return nil, fmt.Errorf("postorder: node %d has size %d, want ≥ 1", n, it.Size)
		}
		node := &tree.Node{Label: d.Label(it.Label)}
		need := it.Size - 1
		var children []*tree.Node
		for need > 0 {
			if len(stack) == 0 {
				return nil, fmt.Errorf("postorder: node %d (size %d) needs %d more descendant nodes than available", n, it.Size, need)
			}
			top := stack[len(stack)-1]
			if top.size > need {
				return nil, fmt.Errorf("postorder: node %d (size %d) splits subtree of size %d", n, it.Size, top.size)
			}
			stack = stack[:len(stack)-1]
			children = append(children, top.node)
			need -= top.size
		}
		// Children were popped right-to-left; reverse into sibling order.
		for i, j := 0, len(children)-1; i < j; i, j = i+1, j-1 {
			children[i], children[j] = children[j], children[i]
		}
		node.Children = children
		stack = append(stack, frame{node: node, size: it.Size})
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("postorder: stream encodes %d trees, want exactly 1", len(stack))
	}
	return tree.FromNode(d, stack[0].node), nil
}

// Validate drains q checking that it encodes a single well-formed tree
// without materializing it. It returns the node count on success.
func Validate(q Queue) (int, error) {
	var stack []int // sizes of completed subtrees
	n := 0
	for {
		it, err := q.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return n, err
		}
		n++
		if it.Size < 1 {
			return n, fmt.Errorf("postorder: node %d has size %d, want ≥ 1", n, it.Size)
		}
		need := it.Size - 1
		for need > 0 {
			if len(stack) == 0 {
				return n, fmt.Errorf("postorder: node %d (size %d) needs more descendants than available", n, it.Size)
			}
			top := stack[len(stack)-1]
			if top > need {
				return n, fmt.Errorf("postorder: node %d (size %d) splits subtree of size %d", n, it.Size, top)
			}
			stack = stack[:len(stack)-1]
			need -= top
		}
		stack = append(stack, it.Size)
	}
	if len(stack) != 1 {
		return n, fmt.Errorf("postorder: stream encodes %d trees, want exactly 1", len(stack))
	}
	return n, nil
}
