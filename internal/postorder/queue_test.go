package postorder

import (
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"tasm/internal/dict"
	"tasm/internal/tree"
)

func TestItemsPaperExample(t *testing.T) {
	// Definition 2 on the query G of Figure 2: ((b,1),(c,1),(a,3)).
	d := dict.New()
	g := tree.MustParse(d, "{a{b}{c}}")
	items := Items(g)
	want := []struct {
		label string
		size  int
	}{{"b", 1}, {"c", 1}, {"a", 3}}
	for i, w := range want {
		if d.Label(items[i].Label) != w.label || items[i].Size != w.size {
			t.Errorf("item %d = (%s,%d), want (%s,%d)", i, d.Label(items[i].Label), items[i].Size, w.label, w.size)
		}
	}
}

func TestSliceQueueDrains(t *testing.T) {
	q := NewSliceQueue([]Item{{Label: 0, Size: 1}, {Label: 1, Size: 2}})
	it, err := q.Next()
	if err != nil || it.Label != 0 {
		t.Fatalf("first: %v %v", it, err)
	}
	it, err = q.Next()
	if err != nil || it.Label != 1 {
		t.Fatalf("second: %v %v", it, err)
	}
	if _, err := q.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("exhausted queue: %v", err)
	}
	if _, err := q.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("exhausted queue stays EOF: %v", err)
	}
}

func TestBuildTreeRoundTripQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		d := dict.New()
		tr := tree.Random(d, rand.New(rand.NewSource(seed)), tree.DefaultRandomConfig(n))
		got, err := BuildTree(d, FromTree(tr))
		return err == nil && got.Equal(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestBuildTreeErrors(t *testing.T) {
	d := dict.New()
	a := d.Intern("a")
	cases := map[string][]Item{
		"empty":          {},
		"two roots":      {{a, 1}, {a, 1}},
		"size zero":      {{a, 0}},
		"needs missing":  {{a, 3}},
		"splits subtree": {{a, 1}, {a, 2}, {a, 1}, {a, 3}},
	}
	for name, items := range cases {
		if _, err := BuildTree(d, NewSliceQueue(items)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestValidateAgreesWithBuildTree(t *testing.T) {
	d := dict.New()
	a := d.Intern("a")
	good := [][]Item{
		{{a, 1}},
		{{a, 1}, {a, 2}},
		{{a, 1}, {a, 1}, {a, 3}},
		{{a, 1}, {a, 2}, {a, 1}, {a, 4}},
	}
	for _, items := range good {
		n, err := Validate(NewSliceQueue(items))
		if err != nil || n != len(items) {
			t.Errorf("Validate(%v) = %d, %v", items, n, err)
		}
	}
	bad := [][]Item{
		{},
		{{a, 1}, {a, 1}},
		{{a, 2}},
		{{a, 1}, {a, 3}},
	}
	for _, items := range bad {
		if _, err := Validate(NewSliceQueue(items)); err == nil {
			t.Errorf("Validate(%v): want error", items)
		}
	}
}

func TestCollect(t *testing.T) {
	d := dict.New()
	tr := tree.MustParse(d, "{a{b}{c}}")
	items, err := Collect(FromTree(tr))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("collected %d items", len(items))
	}
}

type errQueue struct{ err error }

func (q errQueue) Next() (Item, error) { return Item{}, q.err }

func TestCollectPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := Collect(errQueue{boom}); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if _, err := BuildTree(dict.New(), errQueue{boom}); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if _, err := Validate(errQueue{boom}); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}
