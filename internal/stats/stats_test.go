package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

func profileOf(t *testing.T, s string) *Profile {
	t.Helper()
	d := dict.New()
	tr := tree.MustParse(d, s)
	p, err := Compute(postorder.FromTree(tr))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileSingleNode(t *testing.T) {
	p := profileOf(t, "{a}")
	if p.Nodes != 1 || p.Height != 1 || p.Leaves != 1 || p.MaxFanout != 0 || p.RootFanout != 0 {
		t.Errorf("profile = %+v", p)
	}
	if p.DistinctLabels != 1 {
		t.Errorf("labels = %d", p.DistinctLabels)
	}
	if p.MaxSubtree != 0 {
		t.Errorf("MaxSubtree = %d, want 0 (no children)", p.MaxSubtree)
	}
}

func TestProfilePaperDocumentD(t *testing.T) {
	p := profileOf(t,
		"{dblp"+
			"{article{auth{John}}{title{X1}}}"+
			"{proceedings{conf{VLDB}}{article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}"+
			"{book{title{X2}}}}")
	if p.Nodes != 22 {
		t.Errorf("nodes = %d, want 22", p.Nodes)
	}
	if p.Height != 5 { // dblp → proceedings → article → auth → Peter
		t.Errorf("height = %d, want 5", p.Height)
	}
	if p.RootFanout != 3 {
		t.Errorf("root fanout = %d, want 3", p.RootFanout)
	}
	if p.MaxFanout != 3 {
		t.Errorf("max fanout = %d, want 3", p.MaxFanout)
	}
	if p.MaxSubtree != 13 { // proceedings
		t.Errorf("largest subtree = %d, want 13", p.MaxSubtree)
	}
	if p.Leaves != 8 { // John, X1, VLDB, Peter, X3, Mike, X4, X2
		t.Errorf("leaves = %d, want 8", p.Leaves)
	}
	// Subtrees of size ≤ 10: everything except proceedings(13) and dblp(22).
	if got := p.SizeLE[10]; got != 20 {
		t.Errorf("subtrees ≤ 10 = %d, want 20", got)
	}
}

// TestProfileMatchesTreeQuick compares the streaming profile against
// values computed from the materialized tree on random inputs.
func TestProfileMatchesTreeQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%80 + 1
		d := dict.New()
		tr := tree.Random(d, rand.New(rand.NewSource(seed)), tree.DefaultRandomConfig(n))
		p, err := Compute(postorder.FromTree(tr))
		if err != nil {
			return false
		}
		if p.Nodes != tr.Size() || p.Height != tr.Height() {
			return false
		}
		leaves, maxFan := 0, 0
		labels := map[int]struct{}{}
		for i := 0; i < tr.Size(); i++ {
			if tr.IsLeaf(i) {
				leaves++
			}
			if tr.Fanout(i) > maxFan {
				maxFan = tr.Fanout(i)
			}
			labels[tr.LabelID(i)] = struct{}{}
		}
		if p.Leaves != leaves || p.MaxFanout != maxFan || p.DistinctLabels != len(labels) {
			return false
		}
		if p.RootFanout != tr.Fanout(tr.Root()) {
			return false
		}
		for _, th := range Thresholds {
			want := 0
			for i := 0; i < tr.Size(); i++ {
				if tr.SubtreeSize(i) <= th {
					want++
				}
			}
			if p.SizeLE[th] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProfileErrors(t *testing.T) {
	d := dict.New()
	a := d.Intern("a")
	bad := [][]postorder.Item{
		{},
		{{Label: a, Size: 1}, {Label: a, Size: 1}}, // two roots
		{{Label: a, Size: 0}},
		{{Label: a, Size: 5}},
	}
	for i, items := range bad {
		if _, err := Compute(postorder.NewSliceQueue(items)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestFormat(t *testing.T) {
	p := profileOf(t, "{a{b}{c{d}}}")
	var sb strings.Builder
	p.Format(&sb, "demo")
	out := sb.String()
	for _, want := range []string{"demo: 4 nodes, height 3", "leaves", "root fanout      2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}
