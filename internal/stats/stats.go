// Package stats computes structural profiles of documents directly from
// their postorder queues, in one streaming pass with memory proportional
// to the document height.
//
// The TASM paper characterizes each evaluation corpus by exactly these
// numbers — "DBLP (26M nodes, 476MB, height 6)", "XML documents tend to be
// shallow and wide" — because the shape determines both the Zhang–Shasha
// complexity (height factor) and the effectiveness of ring-buffer pruning
// (root fanout). The profile also powers cmd/tasmstat and sanity checks in
// the experiment harness.
package stats

import (
	"errors"
	"fmt"
	"io"

	"tasm/internal/postorder"
)

// Profile is the structural summary of one document.
type Profile struct {
	// Nodes is the total node count |T|.
	Nodes int
	// Height is the number of nodes on the longest root-to-leaf path.
	Height int
	// Leaves is the number of nodes without children.
	Leaves int
	// MaxFanout is the largest number of children of any node.
	MaxFanout int
	// RootFanout is the number of children of the root; data-centric XML
	// has RootFanout close to the record count.
	RootFanout int
	// AvgFanout is the mean child count over internal (non-leaf) nodes.
	AvgFanout float64
	// DistinctLabels is the number of distinct label identifiers seen.
	DistinctLabels int
	// MaxSubtree is the largest proper subtree size (the root's biggest
	// child subtree); it bounds how uneven the top-level partition is.
	MaxSubtree int
	// SizeLE counts, for a few interesting thresholds, how many subtrees
	// are within that size; used to reason about candidate-set sizes.
	SizeLE map[int]int
}

// Thresholds are the subtree-size thresholds tabulated in Profile.SizeLE.
var Thresholds = []int{10, 50, 100, 500}

// Compute drains the queue and returns the document's profile. The queue
// must encode a single well-formed tree.
func Compute(q postorder.Queue) (*Profile, error) {
	p := &Profile{SizeLE: map[int]int{}}
	labels := map[int]struct{}{}

	// The stack holds, per completed subtree not yet adopted by a parent,
	// its size and height. A node of size s adopts the maximal run of
	// completed subtrees whose sizes sum to s-1.
	type sub struct{ size, height int }
	var stack []sub
	internal := 0
	childrenTotal := 0

	for {
		it, err := q.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		p.Nodes++
		labels[it.Label] = struct{}{}
		if it.Size < 1 {
			return nil, fmt.Errorf("stats: node %d has size %d", p.Nodes, it.Size)
		}
		for _, th := range Thresholds {
			if it.Size <= th {
				p.SizeLE[th]++
			}
		}

		need := it.Size - 1
		fanout := 0
		maxChildHeight := 0
		maxChildSize := 0
		for need > 0 {
			if len(stack) == 0 {
				return nil, fmt.Errorf("stats: node %d (size %d) needs more descendants than available", p.Nodes, it.Size)
			}
			top := stack[len(stack)-1]
			if top.size > need {
				return nil, fmt.Errorf("stats: node %d (size %d) splits subtree of size %d", p.Nodes, it.Size, top.size)
			}
			stack = stack[:len(stack)-1]
			need -= top.size
			fanout++
			if top.height > maxChildHeight {
				maxChildHeight = top.height
			}
			if top.size > maxChildSize {
				maxChildSize = top.size
			}
		}
		if fanout == 0 {
			p.Leaves++
		} else {
			internal++
			childrenTotal += fanout
		}
		if fanout > p.MaxFanout {
			p.MaxFanout = fanout
		}
		p.RootFanout = fanout       // last node processed is the root
		p.MaxSubtree = maxChildSize // likewise
		stack = append(stack, sub{size: it.Size, height: maxChildHeight + 1})
	}
	if p.Nodes == 0 {
		return nil, fmt.Errorf("stats: empty document")
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("stats: stream encodes %d trees, want exactly 1", len(stack))
	}
	p.Height = stack[0].height
	p.DistinctLabels = len(labels)
	if internal > 0 {
		p.AvgFanout = float64(childrenTotal) / float64(internal)
	}
	return p, nil
}

// Format renders the profile as the compact block used by cmd/tasmstat.
func (p *Profile) Format(w io.Writer, name string) {
	fmt.Fprintf(w, "%s: %d nodes, height %d\n", name, p.Nodes, p.Height)
	fmt.Fprintf(w, "  leaves           %d (%.1f%%)\n", p.Leaves, 100*float64(p.Leaves)/float64(p.Nodes))
	fmt.Fprintf(w, "  distinct labels  %d\n", p.DistinctLabels)
	fmt.Fprintf(w, "  root fanout      %d\n", p.RootFanout)
	fmt.Fprintf(w, "  max fanout       %d\n", p.MaxFanout)
	fmt.Fprintf(w, "  avg fanout       %.2f (internal nodes)\n", p.AvgFanout)
	fmt.Fprintf(w, "  largest subtree  %d nodes\n", p.MaxSubtree)
	for _, th := range Thresholds {
		fmt.Fprintf(w, "  subtrees ≤ %-4d  %d\n", th, p.SizeLE[th])
	}
}
