package docstore

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

func TestImageRoundTrip(t *testing.T) {
	d := dict.New()
	tr := tree.MustParse(d, "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}")
	var buf bytes.Buffer
	if err := WriteItems(&buf, d, postorder.Items(tr)); err != nil {
		t.Fatal(err)
	}
	for _, enc := range []struct {
		name string
		data []byte
	}{
		{"v2", buf.Bytes()},
		{"v1", v1Store(buf.Bytes())},
	} {
		im, err := ParseImage(enc.data)
		if err != nil {
			t.Fatalf("%s: ParseImage: %v", enc.name, err)
		}
		d2 := dict.New()
		var r ImageReader
		r.Reset(im, im.Remap(d2))
		got, err := postorder.BuildTree(d2, &r)
		if err != nil {
			t.Fatalf("%s: %v", enc.name, err)
		}
		if !got.Equal(tr) {
			t.Errorf("%s: image round trip mismatch: %s vs %s", enc.name, got, tr)
		}
	}
}

// TestImageReaderReuse pins the pooling contract: one ImageReader reset
// across several documents yields the same items as fresh streaming
// readers, and the drain itself performs zero allocations.
func TestImageReaderReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := dict.New()
	var images []*Image
	var remaps [][]int
	for i := 0; i < 3; i++ {
		tr := tree.Random(d, rng, tree.RandomConfig{Nodes: 500 + 100*i, MaxFanout: 5, Labels: 30})
		var buf bytes.Buffer
		if err := WriteItems(&buf, d, postorder.Items(tr)); err != nil {
			t.Fatal(err)
		}
		im, err := ParseImage(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		images = append(images, im)
		remaps = append(remaps, im.Remap(d))
	}
	var r ImageReader
	allocs := testing.AllocsPerRun(10, func() {
		for i, im := range images {
			r.Reset(im, remaps[i])
			n := uint64(0)
			for {
				if _, err := r.Next(); err != nil {
					if err != io.EOF {
						t.Fatal(err)
					}
					break
				}
				n++
			}
			if n != im.NodeCount() {
				t.Fatalf("doc %d: read %d items, want %d", i, n, im.NodeCount())
			}
		}
	})
	if allocs != 0 {
		t.Errorf("ImageReader drain allocated %.1f times per run, want 0", allocs)
	}
}

// drainStream parses data with the streaming reader, returning the items
// read before the first error and whether the stream ended cleanly.
func drainStream(d dict.Dict, data []byte) (items []postorder.Item, clean bool, openErr bool) {
	r, err := NewReader(d, bytes.NewReader(data))
	if err != nil {
		return nil, false, true
	}
	for {
		it, err := r.Next()
		if err != nil {
			return items, errors.Is(err, io.EOF), false
		}
		items = append(items, it)
	}
}

// drainImage does the same through ParseImage + ImageReader.
func drainImage(d dict.Dict, data []byte) (items []postorder.Item, clean bool, openErr bool) {
	im, err := ParseImage(data)
	if err != nil {
		return nil, false, true
	}
	var r ImageReader
	r.Reset(im, im.Remap(d))
	for {
		it, err := r.Next()
		if err != nil {
			return items, errors.Is(err, io.EOF), false
		}
		items = append(items, it)
	}
}

// FuzzImageStreamEquivalence is the byte-identity oracle for the mmap
// scan path: over ANY input — valid stores, both magics, truncations at
// every boundary, corrupt varints, lying counts — the zero-copy image
// reader and the streaming reader must agree exactly: same open
// verdict, same item sequence, same clean-vs-corrupt ending. The corpus
// picks between the two paths by platform and configuration, so any
// divergence here is a silent cross-platform answer change.
func FuzzImageStreamEquivalence(f *testing.F) {
	valid := validStore(f)
	f.Add(valid)
	f.Add(v1Store(valid))
	f.Add([]byte{})
	f.Add([]byte("TASMPQ1\n"))
	f.Add([]byte("TASMPQ2\n"))
	f.Add(append([]byte("TASMPQ2\n"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Add(append([]byte("TASMPQ1\n"), bytes.Repeat([]byte{0x80}, 11)...))
	for i := 0; i < len(valid); i++ {
		f.Add(valid[:i])
	}
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] = 0x7f
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		sItems, sClean, sOpenErr := drainStream(dict.New(), data)
		iItems, iClean, iOpenErr := drainImage(dict.New(), data)
		if sOpenErr != iOpenErr {
			t.Fatalf("open verdict differs: stream openErr=%v, image openErr=%v", sOpenErr, iOpenErr)
		}
		if sOpenErr {
			return
		}
		if sClean != iClean {
			t.Fatalf("ending differs: stream clean=%v, image clean=%v", sClean, iClean)
		}
		if len(sItems) != len(iItems) {
			t.Fatalf("item count differs: stream %d, image %d", len(sItems), len(iItems))
		}
		for i := range sItems {
			if sItems[i] != iItems[i] {
				t.Fatalf("item %d differs: stream %+v, image %+v", i, sItems[i], iItems[i])
			}
		}
	})
}

// TestImageRemapOverlayStable pins the remap-caching contract: a remap
// computed against a frozen base stays valid under any overlay of that
// base, because overlay ids strictly extend the base's.
func TestImageRemapOverlayStable(t *testing.T) {
	d := dict.New()
	tr := tree.MustParse(d, "{a{b}{c}}")
	var buf bytes.Buffer
	if err := WriteItems(&buf, d, postorder.Items(tr)); err != nil {
		t.Fatal(err)
	}
	im, err := ParseImage(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the corpus open flow: remap into the still-mutable base,
	// then freeze and serve overlays on top.
	base := dict.New()
	base.Intern("pre-existing")
	remap := im.Remap(base)
	frozen := base.Freeze()

	ov := dict.NewOverlay(frozen)
	ov.Intern("query-only-label")
	var r ImageReader
	r.Reset(im, remap)
	for {
		it, err := r.Next()
		if err != nil {
			break
		}
		if got := ov.Label(it.Label); got != frozen.Label(it.Label) {
			t.Fatalf("label id %d resolves to %q under overlay, %q under base", it.Label, got, frozen.Label(it.Label))
		}
	}
}

func TestParseImageRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOTMAGIC"),
		[]byte("TASMPQ2\n"),
		// Label length pointing past the end of the image.
		append([]byte("TASMPQ2\n"), 1, 0xff, 0x7f),
	}
	for i, data := range cases {
		if _, err := ParseImage(data); err == nil {
			t.Errorf("case %d: ParseImage accepted garbage", i)
		}
	}
}
