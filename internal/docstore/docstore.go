// Package docstore implements a binary on-disk document format holding a
// postorder queue directly: the sequence of (label id, subtree size) pairs
// plus the label dictionary.
//
// The TASM paper argues (Sections III and VIII) that the postorder queue
// abstracts from the underlying XML storage model and can be implemented
// by "any XML processing or storage system that allows an efficient
// postorder traversal", citing interval-encoding relational stores [24].
// This package is that storage substrate: documents parsed once (from XML
// or a generator) are persisted in a form whose scan is a straight
// sequential read with no XML parsing cost, mirroring how a production
// system would drive TASM from a database rather than a text file.
//
// Format (all integers unsigned LEB128 varints):
//
//	magic "TASMPQ1\n"
//	labelCount, then labelCount × (byteLen, bytes)   – the dictionary
//	nodeCount, then nodeCount × (labelID, size)      – the postorder queue
package docstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"tasm/internal/dict"
	"tasm/internal/postorder"
)

const magic = "TASMPQ1\n"

// WriteItems persists a postorder queue (as a materialized item slice
// using label identifiers from d) to w. The dictionary is stored ahead of
// the items, so it must be complete first — which is why this takes a
// slice rather than a live Queue: sources that discover labels on the fly
// must finish scanning before their dictionary is final.
func WriteItems(w io.Writer, d *dict.Dict, items []postorder.Item) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	writeUvarint(bw, uint64(d.Len()))
	for i := 0; i < d.Len(); i++ {
		l := d.Label(i)
		writeUvarint(bw, uint64(len(l)))
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
	}
	writeUvarint(bw, uint64(len(items)))
	for _, it := range items {
		if it.Label < 0 || it.Label >= d.Len() {
			return fmt.Errorf("docstore: item has label id %d outside dictionary of %d", it.Label, d.Len())
		}
		if it.Size < 1 {
			return fmt.Errorf("docstore: item has size %d, want ≥ 1", it.Size)
		}
		writeUvarint(bw, uint64(it.Label))
		writeUvarint(bw, uint64(it.Size))
	}
	return bw.Flush()
}

// Reader streams a persisted document as a postorder queue. Labels are
// re-interned into the target dictionary on open, so identifiers are
// compatible with queries interned in the same dictionary.
type Reader struct {
	br *bufio.Reader
	// remap translates stored label ids to ids in the caller's dict.
	remap []int
	n     uint64 // remaining items
	err   error
}

// NewReader opens a persisted document from r, merging its dictionary
// into d.
func NewReader(d *dict.Dict, r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("docstore: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("docstore: bad magic %q", head)
	}
	labelCount, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("docstore: reading label count: %w", err)
	}
	remap := make([]int, labelCount)
	buf := make([]byte, 0, 64)
	for i := range remap {
		n, err := readUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("docstore: reading label %d: %w", i, err)
		}
		if uint64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("docstore: reading label %d: %w", i, err)
		}
		remap[i] = d.Intern(string(buf))
	}
	count, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("docstore: reading node count: %w", err)
	}
	return &Reader{br: br, remap: remap, n: count}, nil
}

// Next implements postorder.Queue.
func (r *Reader) Next() (postorder.Item, error) {
	if r.err != nil {
		return postorder.Item{}, r.err
	}
	if r.n == 0 {
		return postorder.Item{}, io.EOF
	}
	label, err := readUvarint(r.br)
	if err != nil {
		r.err = fmt.Errorf("docstore: reading item label: %w", err)
		return postorder.Item{}, r.err
	}
	size, err := readUvarint(r.br)
	if err != nil {
		r.err = fmt.Errorf("docstore: reading item size: %w", err)
		return postorder.Item{}, r.err
	}
	if label >= uint64(len(r.remap)) {
		r.err = fmt.Errorf("docstore: label id %d outside dictionary of %d", label, len(r.remap))
		return postorder.Item{}, r.err
	}
	r.n--
	return postorder.Item{Label: r.remap[label], Size: int(size)}, nil
}

// Remaining returns the number of items left to read.
func (r *Reader) Remaining() uint64 { return r.n }

func writeUvarint(w *bufio.Writer, v uint64) {
	for v >= 0x80 {
		w.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	w.WriteByte(byte(v))
}

var errVarintTooLong = errors.New("varint exceeds 64 bits")

func readUvarint(r *bufio.Reader) (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, errVarintTooLong
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
}
