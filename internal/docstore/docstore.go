// Package docstore implements a binary on-disk document format holding a
// postorder queue directly: the sequence of (label id, subtree size) pairs
// plus the label dictionary.
//
// The TASM paper argues (Sections III and VIII) that the postorder queue
// abstracts from the underlying XML storage model and can be implemented
// by "any XML processing or storage system that allows an efficient
// postorder traversal", citing interval-encoding relational stores [24].
// This package is that storage substrate: documents parsed once (from XML
// or a generator) are persisted in a form whose scan is a straight
// sequential read with no XML parsing cost, mirroring how a production
// system would drive TASM from a database rather than a text file.
//
// # Store format
//
// All integers are unsigned LEB128 varints:
//
//	magic "TASMPQ1\n"
//	labelCount, then labelCount × (byteLen, bytes)   – the dictionary
//	nodeCount, then nodeCount × (labelID, size)      – the postorder queue
//
// Readers treat every count in the stream as untrusted: allocations are
// bounded by the bytes actually present, label ids must fall inside the
// stored dictionary, and the i-th item's subtree size must lie in [1, i]
// (a postorder invariant), so corrupt or truncated stores surface as
// errors rather than panics or huge allocations. postorder.Validate
// remains the full well-formedness check.
//
// # Corpus manifest
//
// A corpus directory groups many stores under a manifest, manifest.json:
//
//	{
//	  "version": 1,
//	  "p": 2, "q": 3,          // pq-gram shape shared by all profiles
//	  "next_id": 3,            // ids are never reused
//	  "docs": [
//	    {"id": 1, "name": "dblp", "nodes": 123, "root_label": "dblp",
//	     "store": "docs/1.store", "profile": "docs/1.profile"},
//	    ...
//	  ]
//	}
//
// Store and profile paths are relative to the corpus directory. The
// manifest is rewritten atomically (temp file + rename) on every ingest;
// the profile file format is documented in the corpus package.
package docstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/varint"
)

const magic = "TASMPQ1\n"

// WriteItems persists a postorder queue (as a materialized item slice
// using label identifiers from d) to w. The dictionary is stored ahead of
// the items, so it must be complete first — which is why this takes a
// slice rather than a live Queue: sources that discover labels on the fly
// must finish scanning before their dictionary is final.
func WriteItems(w io.Writer, d dict.Dict, items []postorder.Item) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	varint.Write(bw, uint64(d.Len()))
	for i := 0; i < d.Len(); i++ {
		l := d.Label(i)
		varint.Write(bw, uint64(len(l)))
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
	}
	varint.Write(bw, uint64(len(items)))
	for _, it := range items {
		if it.Label < 0 || it.Label >= d.Len() {
			return fmt.Errorf("docstore: item has label id %d outside dictionary of %d", it.Label, d.Len())
		}
		if it.Size < 1 {
			return fmt.Errorf("docstore: item has size %d, want ≥ 1", it.Size)
		}
		varint.Write(bw, uint64(it.Label))
		varint.Write(bw, uint64(it.Size))
	}
	return bw.Flush()
}

// Reader streams a persisted document as a postorder queue. Labels are
// re-interned into the target dictionary on open, so identifiers are
// compatible with queries interned in the same dictionary.
type Reader struct {
	br *bufio.Reader
	// remap translates stored label ids to ids in the caller's dict.
	remap []int
	n     uint64 // remaining items
	pos   uint64 // 1-based postorder id of the item about to be read
	err   error
}

// NewReader opens a persisted document from r, merging its dictionary
// into d.
func NewReader(d dict.Dict, r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("docstore: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("docstore: bad magic %q", head)
	}
	labelCount, err := varint.Read(br)
	if err != nil {
		return nil, fmt.Errorf("docstore: reading label count: %w", err)
	}
	// The counts in the header are untrusted: a corrupt or truncated
	// stream may claim arbitrarily many labels or bytes. Allocations are
	// therefore driven by the bytes actually present — capped initial
	// capacities, chunked label reads — so garbage input produces an
	// error, never an attacker-sized allocation.
	remap := make([]int, 0, min(labelCount, 4096))
	for i := uint64(0); i < labelCount; i++ {
		n, err := varint.Read(br)
		if err != nil {
			return nil, fmt.Errorf("docstore: reading label %d: %w", i, err)
		}
		label, err := readLabel(br, n)
		if err != nil {
			return nil, fmt.Errorf("docstore: reading label %d: %w", i, err)
		}
		remap = append(remap, d.Intern(label))
	}
	count, err := varint.Read(br)
	if err != nil {
		return nil, fmt.Errorf("docstore: reading node count: %w", err)
	}
	return &Reader{br: br, remap: remap, n: count}, nil
}

// readLabel reads an n-byte label in bounded chunks, so a header claiming
// a huge length fails with an error once the stream runs dry instead of
// allocating the claimed length up front.
func readLabel(br *bufio.Reader, n uint64) (string, error) {
	const chunkSize = 64 << 10
	var sb []byte
	for n > 0 {
		c := min(n, chunkSize)
		buf := make([]byte, c)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		sb = append(sb, buf...)
		n -= c
	}
	return string(sb), nil
}

// Next implements postorder.Queue.
func (r *Reader) Next() (postorder.Item, error) {
	if r.err != nil {
		return postorder.Item{}, r.err
	}
	if r.n == 0 {
		return postorder.Item{}, io.EOF
	}
	label, err := varint.Read(r.br)
	if err != nil {
		r.err = fmt.Errorf("docstore: reading item label: %w", noEOF(err))
		return postorder.Item{}, r.err
	}
	size, err := varint.Read(r.br)
	if err != nil {
		r.err = fmt.Errorf("docstore: reading item size: %w", noEOF(err))
		return postorder.Item{}, r.err
	}
	if label >= uint64(len(r.remap)) {
		r.err = fmt.Errorf("docstore: label id %d outside dictionary of %d", label, len(r.remap))
		return postorder.Item{}, r.err
	}
	r.pos++
	// In a postorder queue the i-th node's subtree holds at most the i
	// nodes seen so far; a size outside [1, i] cannot come from a
	// well-formed document, only from corruption, and rejecting it here
	// keeps downstream int conversions and buffer sizing safe.
	if size < 1 || size > r.pos {
		r.err = fmt.Errorf("docstore: item %d has subtree size %d, want 1..%d", r.pos, size, r.pos)
		return postorder.Item{}, r.err
	}
	r.n--
	return postorder.Item{Label: r.remap[label], Size: int(size)}, nil
}

// Remaining returns the number of items left to read.
func (r *Reader) Remaining() uint64 { return r.n }

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF. Reader.Next runs
// out of input only when the header promised more items than the stream
// holds — and the error it returns must NOT satisfy errors.Is(err,
// io.EOF), because queue consumers treat io.EOF as normal end-of-document
// and would silently rank a truncated store as a shorter document.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
