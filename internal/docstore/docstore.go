// Package docstore implements a binary on-disk document format holding a
// postorder queue directly: the sequence of (label id, subtree size) pairs
// plus the label dictionary.
//
// The TASM paper argues (Sections III and VIII) that the postorder queue
// abstracts from the underlying XML storage model and can be implemented
// by "any XML processing or storage system that allows an efficient
// postorder traversal", citing interval-encoding relational stores [24].
// This package is that storage substrate: documents parsed once (from XML
// or a generator) are persisted in a form whose scan is a straight
// sequential read with no XML parsing cost, mirroring how a production
// system would drive TASM from a database rather than a text file.
//
// # Store format (v2, current)
//
// All integers are unsigned LEB128 varints:
//
//	magic "TASMPQ2\n"
//	labelCount, then labelCount × (byteLen, bytes)   – the dictionary
//	nodeCount, then nodeCount × (labelID, size)      – the postorder queue
//	crc32c                                           – 4-byte LE trailer
//
// The trailer is the CRC-32C (Castagnoli) checksum of everything before
// it, magic included. Version compatibility:
//
//	magic       trailer   written by        read by      Verify
//	TASMPQ1\n   none      ≤ PR 7            yes          structural parse only
//	TASMPQ2\n   crc32c    PR 8 and later    yes          checksum, detects any
//	                                                     single flipped byte
//
// WriteItems always writes v2; NewReader accepts both magics, so corpora
// persisted before the format bump keep loading unchanged. The checksum
// is verified by Verify (whole-file, at corpus open/scrub time), NOT by
// Reader on the query scan path — scans stay exactly as cheap as before,
// and integrity is a property the corpus establishes before a file
// enters the serving set.
//
// Readers treat every count in the stream as untrusted: allocations are
// bounded by the bytes actually present, label ids must fall inside the
// stored dictionary, and the i-th item's subtree size must lie in [1, i]
// (a postorder invariant), so corrupt or truncated stores surface as
// errors rather than panics or huge allocations. postorder.Validate
// remains the full well-formedness check.
//
// # Corpus manifest
//
// A corpus directory groups many stores under a manifest, manifest.json:
//
//	{
//	  "version": 1,
//	  "p": 2, "q": 3,          // pq-gram shape shared by all profiles
//	  "next_id": 3,            // ids are never reused
//	  "docs": [
//	    {"id": 1, "name": "dblp", "nodes": 123, "root_label": "dblp",
//	     "store": "docs/1.store", "profile": "docs/1.profile"},
//	    ...
//	  ]
//	}
//
// Store and profile paths are relative to the corpus directory. The
// manifest is rewritten atomically (temp file + rename) on every ingest;
// the profile file format is documented in the corpus package.
package docstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/varint"
)

const (
	// magicV1 is the pre-PR-8 store format: no checksum trailer. Still
	// readable, never written.
	magicV1 = "TASMPQ1\n"
	// magicV2 is the current store format: same body, followed by a
	// 4-byte little-endian CRC-32C trailer over everything before it.
	magicV2 = "TASMPQ2\n"
)

// crcTable is the Castagnoli polynomial: hardware-accelerated on amd64
// and arm64, and detects all single-byte (indeed any ≤32-bit burst)
// errors — the acceptance bar for the corpus scrub.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum reports that a store or profile file's content does not
// match its CRC-32C trailer; test with errors.Is.
var ErrChecksum = errors.New("docstore: checksum mismatch")

// WriteItems persists a postorder queue (as a materialized item slice
// using label identifiers from d) to w in the v2 format. The dictionary
// is stored ahead of the items, so it must be complete first — which is
// why this takes a slice rather than a live Queue: sources that discover
// labels on the fly must finish scanning before their dictionary is
// final.
func WriteItems(w io.Writer, d dict.Dict, items []postorder.Item) error {
	h := crc32.New(crcTable)
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	if _, err := bw.WriteString(magicV2); err != nil {
		return err
	}
	varint.Write(bw, uint64(d.Len()))
	for i := 0; i < d.Len(); i++ {
		l := d.Label(i)
		varint.Write(bw, uint64(len(l)))
		if _, err := bw.WriteString(l); err != nil {
			return err
		}
	}
	varint.Write(bw, uint64(len(items)))
	for _, it := range items {
		if it.Label < 0 || it.Label >= d.Len() {
			return fmt.Errorf("docstore: item has label id %d outside dictionary of %d", it.Label, d.Len())
		}
		if it.Size < 1 {
			return fmt.Errorf("docstore: item has size %d, want ≥ 1", it.Size)
		}
		varint.Write(bw, uint64(it.Label))
		varint.Write(bw, uint64(it.Size))
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The trailer goes straight to w: it covers everything hashed so far
	// and must not feed back into the hash.
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], h.Sum32())
	_, err := w.Write(trailer[:])
	return err
}

// Verify checks a whole store file image for corruption. For v2 stores
// it recomputes the CRC-32C over everything before the trailer and
// compares — any single flipped byte is detected, returning an error
// satisfying errors.Is(err, ErrChecksum) — and then structurally parses
// the body, so Verify passing guarantees the store is loadable, not just
// bit-identical to what some (possibly buggy) writer produced. Legacy v1
// stores carry no checksum; they get the structural parse only, which
// catches truncation and most garbling.
//
// Verify is the corpus's open/scrub-time integrity gate; the query scan
// path never pays for it.
func Verify(data []byte) error {
	if len(data) >= len(magicV2) && string(data[:len(magicV2)]) == magicV2 {
		if len(data) < len(magicV2)+4 {
			return fmt.Errorf("docstore: v2 store of %d bytes is too short for a checksum trailer", len(data))
		}
		body := data[:len(data)-4]
		want := binary.LittleEndian.Uint32(data[len(data)-4:])
		if got := crc32.Checksum(body, crcTable); got != want {
			return fmt.Errorf("%w: crc32c %08x, trailer says %08x", ErrChecksum, got, want)
		}
		return drain(data)
	}
	if len(data) >= len(magicV1) && string(data[:len(magicV1)]) == magicV1 {
		return drain(data)
	}
	n := min(len(data), len(magicV2))
	return fmt.Errorf("docstore: bad magic %q", data[:n])
}

// drain structurally parses an entire store image, discarding the items.
// For v1 images, bytes after the last item are an error: a genuine v1
// writer emitted nothing there, so leftovers mean corruption — in
// particular a v2 store whose magic byte was flipped to read as v1,
// whose CRC trailer would otherwise dangle unchecked. (v2 images
// legitimately end with their 4-byte trailer, which Verify has already
// checked by the time it drains.)
func drain(data []byte) error {
	src := bytes.NewReader(data)
	r, err := NewReader(dict.New(), src)
	if err != nil {
		return err
	}
	for {
		if _, err := r.Next(); err != nil {
			if !errors.Is(err, io.EOF) {
				return err
			}
			break
		}
	}
	if string(data[:len(magicV1)]) == magicV1 {
		if consumed := len(data) - src.Len() - r.br.Buffered(); consumed < len(data) {
			return fmt.Errorf("docstore: v1 store has %d trailing bytes after the last item", len(data)-consumed)
		}
	}
	return nil
}

// Reader streams a persisted document as a postorder queue. Labels are
// re-interned into the target dictionary on open, so identifiers are
// compatible with queries interned in the same dictionary.
type Reader struct {
	br *bufio.Reader
	// remap translates stored label ids to ids in the caller's dict.
	remap []int
	n     uint64 // remaining items
	pos   uint64 // 1-based postorder id of the item about to be read
	err   error
}

// NewReader opens a persisted document from r, merging its dictionary
// into d.
func NewReader(d dict.Dict, r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magicV2))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("docstore: reading magic: %w", err)
	}
	// Both versions share a body layout; v2 additionally carries a CRC
	// trailer after the last item, which the reader simply never reaches
	// (Next returns io.EOF once the item count is exhausted). Checksum
	// verification is Verify's job, off the scan path.
	if s := string(head); s != magicV1 && s != magicV2 {
		return nil, fmt.Errorf("docstore: bad magic %q", head)
	}
	labelCount, err := varint.Read(br)
	if err != nil {
		return nil, fmt.Errorf("docstore: reading label count: %w", err)
	}
	// The counts in the header are untrusted: a corrupt or truncated
	// stream may claim arbitrarily many labels or bytes. Allocations are
	// therefore driven by the bytes actually present — capped initial
	// capacities, chunked label reads — so garbage input produces an
	// error, never an attacker-sized allocation.
	remap := make([]int, 0, min(labelCount, 4096))
	for i := uint64(0); i < labelCount; i++ {
		n, err := varint.Read(br)
		if err != nil {
			return nil, fmt.Errorf("docstore: reading label %d: %w", i, err)
		}
		label, err := readLabel(br, n)
		if err != nil {
			return nil, fmt.Errorf("docstore: reading label %d: %w", i, err)
		}
		remap = append(remap, d.Intern(label))
	}
	count, err := varint.Read(br)
	if err != nil {
		return nil, fmt.Errorf("docstore: reading node count: %w", err)
	}
	return &Reader{br: br, remap: remap, n: count}, nil
}

// readLabel reads an n-byte label. Sane lengths — anything up to the
// chunk size, i.e. every label a real writer produces — are read once
// into a right-sized buffer and converted, with no intermediate copy.
// Larger claimed lengths are untrusted (a corrupt header can promise
// gigabytes): those fall back to bounded chunks, so the allocation is
// driven by bytes actually present and a lying header fails with an
// error once the stream runs dry.
func readLabel(br *bufio.Reader, n uint64) (string, error) {
	const chunkSize = 64 << 10
	if n <= chunkSize {
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var sb []byte
	for n > 0 {
		c := min(n, chunkSize)
		buf := make([]byte, c)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		sb = append(sb, buf...)
		n -= c
	}
	return string(sb), nil
}

// Next implements postorder.Queue.
func (r *Reader) Next() (postorder.Item, error) {
	if r.err != nil {
		return postorder.Item{}, r.err
	}
	if r.n == 0 {
		return postorder.Item{}, io.EOF
	}
	label, err := varint.Read(r.br)
	if err != nil {
		r.err = fmt.Errorf("docstore: reading item label: %w", noEOF(err))
		return postorder.Item{}, r.err
	}
	size, err := varint.Read(r.br)
	if err != nil {
		r.err = fmt.Errorf("docstore: reading item size: %w", noEOF(err))
		return postorder.Item{}, r.err
	}
	if label >= uint64(len(r.remap)) {
		r.err = fmt.Errorf("docstore: label id %d outside dictionary of %d", label, len(r.remap))
		return postorder.Item{}, r.err
	}
	r.pos++
	// In a postorder queue the i-th node's subtree holds at most the i
	// nodes seen so far; a size outside [1, i] cannot come from a
	// well-formed document, only from corruption, and rejecting it here
	// keeps downstream int conversions and buffer sizing safe.
	if size < 1 || size > r.pos {
		r.err = fmt.Errorf("docstore: item %d has subtree size %d, want 1..%d", r.pos, size, r.pos)
		return postorder.Item{}, r.err
	}
	r.n--
	return postorder.Item{Label: r.remap[label], Size: int(size)}, nil
}

// Remaining returns the number of items left to read.
func (r *Reader) Remaining() uint64 { return r.n }

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF. Reader.Next runs
// out of input only when the header promised more items than the stream
// holds — and the error it returns must NOT satisfy errors.Is(err,
// io.EOF), because queue consumers treat io.EOF as normal end-of-document
// and would silently rank a truncated store as a shorter document.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
