package docstore

import (
	"bytes"
	"math/rand"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/tree"
)

func TestRoundTrip(t *testing.T) {
	d := dict.New()
	tr := tree.MustParse(d, "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}")
	items := postorder.Items(tr)

	var buf bytes.Buffer
	if err := WriteItems(&buf, d, items); err != nil {
		t.Fatal(err)
	}
	// Read back into a fresh dictionary.
	d2 := dict.New()
	r, err := NewReader(d2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := postorder.BuildTree(d2, r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tr) {
		t.Errorf("round trip mismatch: %s vs %s", got, tr)
	}
}

func TestDictionaryMerging(t *testing.T) {
	// Reading into a dictionary that already has entries must remap ids.
	d := dict.New()
	tr := tree.MustParse(d, "{a{b}{c}}")
	var buf bytes.Buffer
	if err := WriteItems(&buf, d, postorder.Items(tr)); err != nil {
		t.Fatal(err)
	}
	d2 := dict.New()
	d2.Intern("zzz")
	d2.Intern("b") // pre-existing overlap
	r, err := NewReader(d2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := postorder.BuildTree(d2, r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tr) {
		t.Errorf("remapped round trip mismatch: %s vs %s", got, tr)
	}
}

func TestRemaining(t *testing.T) {
	d := dict.New()
	tr := tree.MustParse(d, "{a{b}{c}}")
	var buf bytes.Buffer
	if err := WriteItems(&buf, d, postorder.Items(tr)); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(dict.New(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 3 {
		t.Errorf("Remaining = %d, want 3", r.Remaining())
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 2 {
		t.Errorf("Remaining after one read = %d, want 2", r.Remaining())
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(dict.New(), bytes.NewReader([]byte("NOTMAGIC"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(dict.New(), bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	d := dict.New()
	tr := tree.MustParse(d, "{a{b}{c}}")
	var buf bytes.Buffer
	if err := WriteItems(&buf, d, postorder.Items(tr)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut past the 4-byte CRC trailer into the last item, so the reader
	// actually runs out of item bytes.
	r, err := NewReader(dict.New(), bytes.NewReader(full[:len(full)-5]))
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for i := 0; i < 10; i++ {
		if _, err := r.Next(); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("truncated stream read without error")
	}
}

func TestWriteValidation(t *testing.T) {
	d := dict.New()
	l := d.Intern("a")
	var buf bytes.Buffer
	if err := WriteItems(&buf, d, []postorder.Item{{Label: 99, Size: 1}}); err == nil {
		t.Error("out-of-dictionary label accepted")
	}
	if err := WriteItems(&buf, d, []postorder.Item{{Label: l, Size: 0}}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestLargeRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := dict.New()
	tr := tree.Random(d, rng, tree.RandomConfig{Nodes: 5000, MaxFanout: 6, Labels: 40})
	var buf bytes.Buffer
	if err := WriteItems(&buf, d, postorder.Items(tr)); err != nil {
		t.Fatal(err)
	}
	d2 := dict.New()
	r, err := NewReader(d2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := postorder.BuildTree(d2, r)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tr) {
		t.Error("5000-node round trip mismatch")
	}
}
