package docstore

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/postorder"
)

// validStore returns the encoding of a small well-formed document, the
// seed the fuzzer mutates.
func validStore(t testing.TB) []byte {
	t.Helper()
	d := dict.New()
	items := []postorder.Item{
		{Label: d.Intern("b"), Size: 1},
		{Label: d.Intern("c"), Size: 1},
		{Label: d.Intern("a"), Size: 3},
	}
	var buf bytes.Buffer
	if err := WriteItems(&buf, d, items); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReader feeds arbitrary bytes to NewReader/Next: whatever the input
// — truncated streams, overlong varints, label ids past the dictionary,
// impossible subtree sizes, counts claiming gigabytes — the reader must
// return errors, never panic, and never allocate beyond the input size,
// because corpus ingest exposes this path to uploaded files.
func FuzzReader(f *testing.F) {
	valid := validStore(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("TASMPQ1\n"))
	// Huge label count with no data behind it.
	f.Add(append([]byte("TASMPQ1\n"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	// Varint longer than 64 bits.
	f.Add(append([]byte("TASMPQ1\n"), bytes.Repeat([]byte{0x80}, 11)...))
	// Truncations of the valid store at every boundary.
	for i := 0; i < len(valid); i++ {
		f.Add(valid[:i])
	}
	// Valid store with the tail corrupted (label id / size garbage).
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] = 0x7f
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(dict.New(), bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, err := r.Next(); err != nil {
				if err != io.EOF && r.Remaining() == 0 {
					t.Fatalf("error after all %d items consumed: %v", r.Remaining(), err)
				}
				break
			}
		}
	})
}

// TestTruncatedStoreIsNotEOF pins a subtle contract: a store whose
// header promises more items than the stream holds must fail with an
// error that does NOT satisfy errors.Is(err, io.EOF) — queue consumers
// treat io.EOF as normal end-of-document and would otherwise silently
// rank a truncated store as a shorter document.
func TestTruncatedStoreIsNotEOF(t *testing.T) {
	valid := validStore(t)
	for cut := len(valid) - 1; cut > len(valid)-5; cut-- {
		r, err := NewReader(dict.New(), bytes.NewReader(valid[:cut]))
		if err != nil {
			continue // truncated inside the header: open-time error is fine
		}
		var last error
		for {
			if _, err := r.Next(); err != nil {
				last = err
				break
			}
		}
		if errors.Is(last, io.EOF) {
			t.Fatalf("cut at %d: truncated store surfaced as io.EOF (%v); consumers would treat it as a complete document", cut, last)
		}
	}
}

// TestReaderRejectsCorruptSizes pins the hardening behaviour the fuzzer
// relies on: impossible subtree sizes and out-of-range label ids are
// errors, not panics.
func TestReaderRejectsCorruptSizes(t *testing.T) {
	d := dict.New()
	var buf bytes.Buffer
	buf.WriteString("TASMPQ1\n")
	buf.WriteByte(1) // one label
	buf.WriteByte(1) // of length 1
	buf.WriteByte('x')
	buf.WriteByte(2) // two items
	buf.WriteByte(0) // item 1: label 0
	buf.WriteByte(9) // size 9 > position 1: corrupt
	r, err := NewReader(d, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("want error for subtree size exceeding position")
	}
}
