package docstore

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/postorder"
)

// validStore returns the encoding of a small well-formed document, the
// seed the fuzzer mutates.
func validStore(t testing.TB) []byte {
	t.Helper()
	d := dict.New()
	items := []postorder.Item{
		{Label: d.Intern("b"), Size: 1},
		{Label: d.Intern("c"), Size: 1},
		{Label: d.Intern("a"), Size: 3},
	}
	var buf bytes.Buffer
	if err := WriteItems(&buf, d, items); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReader feeds arbitrary bytes to NewReader/Next: whatever the input
// — truncated streams, overlong varints, label ids past the dictionary,
// impossible subtree sizes, counts claiming gigabytes — the reader must
// return errors, never panic, and never allocate beyond the input size,
// because corpus ingest exposes this path to uploaded files.
func FuzzReader(f *testing.F) {
	valid := validStore(f)
	f.Add(valid)
	f.Add(v1Store(valid))
	f.Add([]byte{})
	f.Add([]byte("TASMPQ1\n"))
	f.Add([]byte("TASMPQ2\n"))
	// Huge label count with no data behind it.
	f.Add(append([]byte("TASMPQ1\n"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Add(append([]byte("TASMPQ2\n"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	// Varint longer than 64 bits.
	f.Add(append([]byte("TASMPQ1\n"), bytes.Repeat([]byte{0x80}, 11)...))
	// Truncations of the valid store at every boundary.
	for i := 0; i < len(valid); i++ {
		f.Add(valid[:i])
	}
	// Valid store with the tail corrupted (label id / size garbage).
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] = 0x7f
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(dict.New(), bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, err := r.Next(); err != nil {
				if err != io.EOF && r.Remaining() == 0 {
					t.Fatalf("error after all %d items consumed: %v", r.Remaining(), err)
				}
				break
			}
		}
	})
}

// v1Store converts a v2 store image to the legacy v1 encoding: swap the
// magic, drop the 4-byte CRC trailer. The body layout is identical.
func v1Store(v2 []byte) []byte {
	v1 := append([]byte("TASMPQ1\n"), v2[8:len(v2)-4]...)
	return v1
}

// TestTruncatedStoreIsNotEOF pins a subtle contract: a store whose
// header promises more items than the stream holds must fail with an
// error that does NOT satisfy errors.Is(err, io.EOF) — queue consumers
// treat io.EOF as normal end-of-document and would otherwise silently
// rank a truncated store as a shorter document.
//
// Cuts start past the 4-byte CRC trailer: the reader by design never
// touches the trailer, so cuts inside it still parse fully (Verify, not
// Reader, is the integrity gate — see TestVerifyFlipAnyByte).
func TestTruncatedStoreIsNotEOF(t *testing.T) {
	valid := validStore(t)
	for cut := len(valid) - 5; cut > len(valid)-9; cut-- {
		r, err := NewReader(dict.New(), bytes.NewReader(valid[:cut]))
		if err != nil {
			continue // truncated inside the header: open-time error is fine
		}
		var last error
		for {
			if _, err := r.Next(); err != nil {
				last = err
				break
			}
		}
		if errors.Is(last, io.EOF) {
			t.Fatalf("cut at %d: truncated store surfaced as io.EOF (%v); consumers would treat it as a complete document", cut, last)
		}
	}
}

// TestVerifyRoundTrip: everything WriteItems produces passes Verify.
func TestVerifyRoundTrip(t *testing.T) {
	if err := Verify(validStore(t)); err != nil {
		t.Fatalf("Verify(fresh store) = %v", err)
	}
}

// TestVerifyFlipAnyByte is the acceptance property of the v2 format:
// flipping ANY single byte of a store — magic, dictionary, items, or the
// trailer itself — must be detected by Verify. CRC-32C guarantees this
// for all ≤32-bit burst errors, which covers every single-byte flip.
func TestVerifyFlipAnyByte(t *testing.T) {
	valid := validStore(t)
	// 0x03 is the downgrade attack: it flips the magic's version byte
	// '2' to '1', turning a checksummed store into an apparent legacy
	// one — caught because a real v1 store has no bytes (here: the
	// dangling CRC trailer) after its last item.
	for i := range valid {
		for _, bit := range []byte{0x01, 0x03, 0x80, 0xff} {
			mut := append([]byte(nil), valid...)
			mut[i] ^= bit
			if err := Verify(mut); err == nil {
				t.Fatalf("flipping byte %d (xor %#x) went undetected", i, bit)
			}
		}
	}
}

// TestVerifyV1Fallback: legacy v1 stores have no checksum, but Verify
// still structurally parses them — intact v1 stores pass, truncated ones
// fail.
func TestVerifyV1Fallback(t *testing.T) {
	v1 := v1Store(validStore(t))
	if err := Verify(v1); err != nil {
		t.Fatalf("Verify(intact v1 store) = %v", err)
	}
	if err := Verify(v1[:len(v1)-1]); err == nil {
		t.Fatal("Verify accepted a truncated v1 store")
	}
	if err := Verify([]byte("NOTMAGIC")); err == nil {
		t.Fatal("Verify accepted garbage magic")
	}
	if err := Verify(nil); err == nil {
		t.Fatal("Verify accepted empty input")
	}
}

// TestV1StoreStillLoads: corpora persisted before the format bump must
// keep loading — NewReader accepts the v1 magic and parses the shared
// body layout.
func TestV1StoreStillLoads(t *testing.T) {
	r, err := NewReader(dict.New(), bytes.NewReader(v1Store(validStore(t))))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("read %d items from v1 store, want 3", n)
	}
}

// FuzzVerify feeds arbitrary bytes to Verify. Invariants: Verify never
// panics, and an image Verify accepts must be fully loadable — every
// item parses and the stream ends cleanly — because the corpus serves
// any file its scrub passes.
func FuzzVerify(f *testing.F) {
	valid := validStore(f)
	f.Add(valid)
	f.Add(v1Store(valid))
	f.Add([]byte{})
	f.Add([]byte("TASMPQ2\n"))
	for i := 0; i < len(valid); i++ {
		f.Add(valid[:i])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := Verify(data); err != nil {
			return
		}
		r, err := NewReader(dict.New(), bytes.NewReader(data))
		if err != nil {
			t.Fatalf("Verify passed but NewReader failed: %v", err)
		}
		for {
			if _, err := r.Next(); err != nil {
				if err != io.EOF {
					t.Fatalf("Verify passed but item parse failed: %v", err)
				}
				break
			}
		}
	})
}

// TestReaderRejectsCorruptSizes pins the hardening behaviour the fuzzer
// relies on: impossible subtree sizes and out-of-range label ids are
// errors, not panics.
func TestReaderRejectsCorruptSizes(t *testing.T) {
	d := dict.New()
	var buf bytes.Buffer
	buf.WriteString("TASMPQ1\n")
	buf.WriteByte(1) // one label
	buf.WriteByte(1) // of length 1
	buf.WriteByte('x')
	buf.WriteByte(2) // two items
	buf.WriteByte(0) // item 1: label 0
	buf.WriteByte(9) // size 9 > position 1: corrupt
	r, err := NewReader(d, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("want error for subtree size exceeding position")
	}
}
