package docstore

import (
	"fmt"
	"io"

	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/varint"
)

// Image is a store file parsed in place: the label table decoded once,
// and the item region located but not decoded. It is the one-time-cost
// half of the zero-copy scan path — the corpus parses each store into an
// Image at open (or first ingest), computes one label remap per
// (document, dictionary) with Remap, and every subsequent query walks
// the raw item bytes through a pooled ImageReader. Nothing per query:
// no file open, no dictionary re-intern, no buffered reader.
//
// The backing bytes are typically an mmapio.Region; an Image keeps them
// alive and must not outlive an explicit Close of the region. Label
// strings are heap copies, NOT views into the backing bytes — the
// dictionary retains labels indefinitely, far past any one mapping's
// lifetime.
//
// An Image is immutable after ParseImage and safe for concurrent use.
type Image struct {
	data     []byte
	labels   []string
	itemsOff int
	count    uint64
}

// ParseImage decodes a store image's header: magic, label table, and
// node count. The item region is validated lazily, by ImageReader, with
// exactly the checks the streaming Reader applies — ParseImage succeeds
// on a store whose items are corrupt, just as NewReader does. Use Verify
// for whole-file integrity.
func ParseImage(data []byte) (*Image, error) {
	if len(data) < len(magicV2) {
		return nil, fmt.Errorf("docstore: bad magic %q", data)
	}
	if s := string(data[:len(magicV2)]); s != magicV1 && s != magicV2 {
		return nil, fmt.Errorf("docstore: bad magic %q", data[:len(magicV2)])
	}
	off := len(magicV2)
	labelCount, n, err := varint.Decode(data[off:])
	if err != nil {
		return nil, fmt.Errorf("docstore: reading label count: %w", err)
	}
	off += n
	// Counts are untrusted; cap the initial allocation and let growth be
	// driven by labels actually decoded, mirroring NewReader.
	labels := make([]string, 0, min(labelCount, 4096))
	for i := uint64(0); i < labelCount; i++ {
		ln, n, err := varint.Decode(data[off:])
		if err != nil {
			return nil, fmt.Errorf("docstore: reading label %d: %w", i, err)
		}
		off += n
		if ln > uint64(len(data)-off) {
			return nil, fmt.Errorf("docstore: reading label %d: %w", i, io.ErrUnexpectedEOF)
		}
		// string() copies out of the mapping; see the type comment.
		labels = append(labels, string(data[off:off+int(ln)]))
		off += int(ln)
	}
	count, n, err := varint.Decode(data[off:])
	if err != nil {
		return nil, fmt.Errorf("docstore: reading node count: %w", err)
	}
	off += n
	return &Image{data: data, labels: labels, itemsOff: off, count: count}, nil
}

// NodeCount returns the number of items the header promises.
//
//tasm:hotpath
func (im *Image) NodeCount() uint64 { return im.count }

// Labels returns the decoded label table. The slice is shared; callers
// must not modify it.
func (im *Image) Labels() []string { return im.labels }

// Remap interns the image's label table into d and returns the stored-id
// → d-id translation used by ImageReader. Computed once per (document,
// dictionary generation) by the corpus; the result stays valid under any
// dict.Overlay of a base d, because overlay ids strictly extend the
// base's.
func (im *Image) Remap(d dict.Dict) []int {
	remap := make([]int, len(im.labels))
	for i, l := range im.labels {
		remap[i] = d.Intern(l)
	}
	return remap
}

// ImageReader streams a parsed Image as a postorder queue, decoding
// varints straight from the image bytes. It performs the same validation
// as the streaming Reader — label ids inside the remap, subtree sizes in
// [1, pos], truncation as io.ErrUnexpectedEOF — so the two are
// byte-identical over any input (fuzz-pinned). Zero allocations after
// Reset; pool and reuse across documents.
type ImageReader struct {
	data  []byte
	off   int
	n     uint64
	pos   uint64
	remap []int
	err   error
}

// Reset points r at an image's item region with the given label remap
// (from Image.Remap, possibly cached) and clears all progress state.
//
//tasm:hotpath
func (r *ImageReader) Reset(im *Image, remap []int) {
	r.data = im.data
	r.off = im.itemsOff
	r.n = im.count
	r.pos = 0
	r.remap = remap
	r.err = nil
}

// Next implements postorder.Queue.
//
//tasm:hotpath
func (r *ImageReader) Next() (postorder.Item, error) {
	if r.err != nil {
		return postorder.Item{}, r.err
	}
	if r.n == 0 {
		return postorder.Item{}, io.EOF
	}
	label, n, err := varint.Decode(r.data[r.off:])
	if err != nil {
		r.err = fmt.Errorf("docstore: reading item label: %w", err) //tasm:allow alloc — cold error path: corrupt input only
		return postorder.Item{}, r.err
	}
	r.off += n
	size, n, err := varint.Decode(r.data[r.off:])
	if err != nil {
		r.err = fmt.Errorf("docstore: reading item size: %w", err) //tasm:allow alloc — cold error path: corrupt input only
		return postorder.Item{}, r.err
	}
	r.off += n
	if label >= uint64(len(r.remap)) {
		r.err = fmt.Errorf("docstore: label id %d outside dictionary of %d", label, len(r.remap)) //tasm:allow alloc — cold error path: corrupt input only
		return postorder.Item{}, r.err
	}
	r.pos++
	// Same postorder invariant as Reader.Next: the i-th node's subtree
	// holds at most the i nodes seen so far.
	if size < 1 || size > r.pos {
		r.err = fmt.Errorf("docstore: item %d has subtree size %d, want 1..%d", r.pos, size, r.pos) //tasm:allow alloc — cold error path: corrupt input only
		return postorder.Item{}, r.err
	}
	r.n--
	return postorder.Item{Label: r.remap[label], Size: int(size)}, nil
}

// Remaining returns the number of items left to read.
func (r *ImageReader) Remaining() uint64 { return r.n }
