package docstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tasm/internal/atomicio"
)

// ManifestVersion is the current corpus manifest schema version.
const ManifestVersion = 1

// Manifest is the census of a corpus directory: every persisted document
// with its identity, size, and the relative paths of its store and
// pq-gram profile files. It is stored as pretty-printed JSON (the one
// human-edited, human-debugged file of the corpus format; the store and
// profile files it points at are binary).
type Manifest struct {
	// Version is the manifest schema version, ManifestVersion.
	Version int `json:"version"`
	// P and Q are the pq-gram shape parameters every profile in the
	// corpus was built with; profiles with different shapes are not
	// comparable, so the shape is fixed per corpus at creation.
	P int `json:"p"`
	Q int `json:"q"`
	// NextID is the id the next ingested document will receive. Ids are
	// never reused, so deleting a document cannot alias a cached result.
	NextID int `json:"next_id"`
	// Generation counts document-set changes (ingests and removals) over
	// the corpus's whole lifetime. It is persisted so generation-keyed
	// result caches that outlive the serving process (a router's LRU over
	// restarting leaves) can never see a generation value repeat for a
	// different document set. Absent in pre-PR-5 manifests, which load
	// as 0 and become persistent on their next mutation.
	Generation uint64 `json:"generation,omitempty"`
	// Quarantined counts documents the integrity scrub has moved to the
	// corpus's quarantine directory over its lifetime. Persisted so the
	// count survives restarts and keeps telling operators data was lost
	// until they act on it. Absent in pre-PR-8 manifests (loads as 0).
	Quarantined int `json:"quarantined,omitempty"`
	// Docs lists the documents in ascending id order.
	Docs []ManifestDoc `json:"docs"`
}

// ManifestDoc describes one persisted document.
type ManifestDoc struct {
	// ID is the document's permanent numeric id within the corpus.
	ID int `json:"id"`
	// Name is the caller-supplied document name, unique in the corpus.
	Name string `json:"name"`
	// Nodes is the document's node count.
	Nodes int `json:"nodes"`
	// RootLabel is the label of the document's root node.
	RootLabel string `json:"root_label"`
	// Store is the document's postorder store file, relative to the
	// corpus directory.
	Store string `json:"store"`
	// Profile is the document's pq-gram profile file, relative to the
	// corpus directory.
	Profile string `json:"profile"`
}

// NewManifest returns an empty manifest for a corpus with the given
// pq-gram shape.
func NewManifest(p, q int) *Manifest {
	return &Manifest{Version: ManifestVersion, P: p, Q: q, NextID: 1}
}

// ReadManifest loads and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("docstore: parsing manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("docstore: manifest %s has version %d, want %d", path, m.Version, ManifestVersion)
	}
	if m.P < 1 || m.Q < 1 {
		return nil, fmt.Errorf("docstore: manifest %s has invalid pq-gram shape (%d,%d)", path, m.P, m.Q)
	}
	seen := make(map[string]bool, len(m.Docs))
	for i, d := range m.Docs {
		if d.ID < 1 || d.ID >= m.NextID {
			return nil, fmt.Errorf("docstore: manifest %s: doc %d has id %d outside [1,%d)", path, i, d.ID, m.NextID)
		}
		if i > 0 && d.ID <= m.Docs[i-1].ID {
			return nil, fmt.Errorf("docstore: manifest %s: doc ids not strictly ascending at index %d", path, i)
		}
		if d.Name == "" || seen[d.Name] {
			return nil, fmt.Errorf("docstore: manifest %s: doc %d has empty or duplicate name %q", path, d.ID, d.Name)
		}
		seen[d.Name] = true
		if d.Nodes < 1 {
			return nil, fmt.Errorf("docstore: manifest %s: doc %q has node count %d", path, d.Name, d.Nodes)
		}
		if d.Store == "" || d.Profile == "" {
			return nil, fmt.Errorf("docstore: manifest %s: doc %q is missing store or profile path", path, d.Name)
		}
	}
	return &m, nil
}

// WriteManifest durably persists a manifest via the atomicio commit
// protocol (temp file, fsync, rename, directory fsync), so a crash at
// any point leaves either the previous manifest or the new one — never
// a torn or unflushed file.
func WriteManifest(path string, m *Manifest) error {
	return WriteManifestFS(atomicio.OS, path, m)
}

// WriteManifestFS is WriteManifest against an explicit filesystem, so
// crash-injection harnesses can script failures at every commit step.
func WriteManifestFS(fs atomicio.FS, path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return atomicio.WriteFile(fs, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
