// Package testenv exposes the environment knobs CI uses to shape test
// workloads. It is imported by tests only.
package testenv

import "os"

// Quick reports whether the TASM_QUICK environment variable is set
// (non-empty). Exhaustive or corpus-scale test suites consult it to
// shrink their workloads — sampling a sweep instead of enumerating it,
// smaller synthetic documents — so that slow configurations such as the
// module-wide -race run stay affordable in CI. Quick mode may reduce
// coverage breadth but must never change what a test asserts.
func Quick() bool { return os.Getenv("TASM_QUICK") != "" }
