// Package tasm implements Top-k Approximate Subtree Matching: finding the
// k subtrees of a large document tree that are closest to a small query
// tree under the canonical tree edit distance.
//
// It is a from-scratch reproduction of
//
//	N. Augsten, D. Barbosa, M. Böhlen, T. Palpanas:
//	"TASM: Top-k Approximate Subtree Matching", ICDE 2010, pp. 353–364,
//
// including the paper's TASM-postorder algorithm, whose memory use is
// independent of the document size: documents are consumed as streaming
// postorder queues (from XML, from a binary store, or from any custom
// source), pruned by a prefix ring buffer to the candidate subtrees within
// the provable size bound τ = |Q|·(cQ+1) + k·cT, and ranked with the
// Zhang–Shasha tree edit distance.
//
// # Quick start
//
//	m := tasm.New()
//	query, _ := m.ParseBracket("{article{author}{title}}")
//	doc, _ := m.ParseXML(file)
//	matches, _ := m.TopK(query, doc, 5)
//	for _, match := range matches {
//	    fmt.Println(match.Pos, match.Dist, match.Tree)
//	}
//
// For documents too large to hold in memory, stream them:
//
//	matches, _ := m.TopKStream(query, m.XMLQueue(bigFile), 5)
//
// All trees compared by one Matcher share its label dictionary; create one
// Matcher per corpus (they are cheap) and parse both query and document
// through it.
//
// # Multi-document corpora and the tasmd daemon
//
// To query across many documents, ingest them into a Corpus — a managed
// directory of persisted postorder stores under a manifest, indexed by
// pq-gram profiles built at ingest:
//
//	c, _ := tasm.OpenCorpus("./corpus")
//	c.AddXML("dblp", dblpFile)
//	c.AddXML("psd", psdFile)
//	q, _ := c.ParseBracket("{article{author}{title}}")
//	matches, _ := c.TopK(q, 5)
//	for _, match := range matches {
//	    fmt.Println(match.Doc.Name, match.Pos, match.Dist)
//	}
//
// Corpus queries scan documents most-promising-first into one shared
// ranking and skip documents whose profile lower bound proves they cannot
// affect the top k; results are identical to an exhaustive scan. The same
// engine serves over HTTP via the tasmd daemon:
//
//	tasmd -dir ./corpus -addr :8421
//	curl -X POST localhost:8421/v1/docs -H 'Content-Type: application/json' \
//	     -d '{"name":"dblp","xml":"<dblp>…</dblp>"}'
//	curl -X POST localhost:8421/v1/topk \
//	     -d '{"query":"{article{author}{title}}","k":5,"trees":true}'
//
// See the corpus package and cmd/tasmd for details.
//
// # The Searcher contract and sharding
//
// Corpus queries go through the corpus.Searcher interface — TopK and
// TopKBatch taking a context.Context, plus Docs and Generation — with
// three interchangeable implementations: *corpus.Corpus (one directory),
// shard.Group (scatter-gather over several Searchers, results identical
// to one merged corpus), and shard.Client (a remote tasmd instance). The
// tasmd daemon serves any of them, so a deployment grows from one
// directory to a router fanning out over leaf daemons without the query
// API changing:
//
//	tasmd -dir /data/shard0 -addr :8421                    # leaves own documents
//	tasmd -shards http://a:8421,http://b:8421 -addr :80    # the router scatter-gathers
//
// Ingest-side mutation (AddXML, AddTree, Remove) is the corpus.Ingester
// interface, implemented by *corpus.Corpus only: documents live on
// exactly one shard, and routers are read-only.
//
// # Contexts and cancellation
//
// Corpus.TopK and Corpus.TopKBatch take a context.Context as their first
// argument; scans poll it once per ring-buffer candidate, so cancelling a
// request (a disconnected client, a server draining for shutdown, a
// deadline) stops mid-scan promptly at zero steady-state allocation cost.
// The single-document Matcher methods keep their context-free signatures
// and gained *Ctx variants (TopKCtx, TopKStreamCtx, TopKParallelCtx,
// TopKBatchCtx); the old names delegate with context.Background().
package tasm

import (
	"context"
	"fmt"
	"io"

	"tasm/corpus"
	"tasm/internal/core"
	"tasm/internal/cost"
	"tasm/internal/dict"
	"tasm/internal/docstore"
	"tasm/internal/postorder"
	"tasm/internal/ranking"
	"tasm/internal/ted"
	"tasm/internal/tree"
	"tasm/internal/xmlstream"
)

// Tree is an ordered labeled tree in flattened postorder form. Obtain one
// from a Matcher's parse methods or FromNode; its query methods (Size,
// Label, SubtreeSize, Subtree, …) are documented on the type.
type Tree = tree.Tree

// Node is a tree node in pointer form, convenient for programmatic
// construction; convert with Matcher.FromNode.
type Node = tree.Node

// NewNode returns a pointer-form node with the given label and children.
func NewNode(label string, children ...*Node) *Node {
	return tree.NewNode(label, children...)
}

// Match is one ranked subtree: its distance to the query, the 1-based
// postorder position of its root in the document, its size, and (unless
// suppressed) the matched subtree itself.
type Match = ranking.Entry

// CostModel assigns a cost ≥ 1 to every tree node (Definition 4 of the
// paper); delete/insert cost the node's cost, renames cost the mean of the
// two node costs.
type CostModel = cost.Model

// Queue is a streaming postorder queue: the document interface of
// TASM-postorder (Definition 2). Implement it to drive TASM from a custom
// storage engine; Next must yield (label, subtree size) pairs in postorder
// and io.EOF at the end.
type Queue = postorder.Queue

// Item is one (label id, subtree size) element of a Queue.
type Item = postorder.Item

// Dict is the label dictionary interning node labels as integers. Custom
// Queue sources must intern their labels in the dictionary of the Matcher
// the queue will be matched under (see Matcher.Dict).
type Dict = dict.Dict

// NewSliceQueue returns a Queue yielding a fixed item slice; useful for
// custom document sources and tests.
func NewSliceQueue(items []Item) Queue { return postorder.NewSliceQueue(items) }

// CollectQueue drains a queue into a slice. Mainly useful for re-playing
// one generated document through several queries.
func CollectQueue(q Queue) ([]Item, error) { return postorder.Collect(q) }

// Probe receives instrumentation callbacks from TASM runs; see
// Matcher.SetProbe. It is the hook behind the paper's Figure 11/12
// measurements.
type Probe = core.Probe

// Corpus is a managed directory of persisted documents answering top-k
// queries across all of them with pq-gram prefiltering; see package
// corpus for the directory layout and filtering guarantees, and
// cmd/tasmd for the HTTP daemon built on it.
type Corpus = corpus.Corpus

// CorpusMatch is one ranked subtree of a corpus-wide query.
type CorpusMatch = corpus.Match

// Searcher is the context-aware query contract shared by a single corpus,
// a scatter-gather shard group, and a remote tasmd client; see package
// corpus and corpus/shard.
type Searcher = corpus.Searcher

// Ingester is the ingest-side contract of backends owning document
// storage (*Corpus): AddXML, AddTree, Remove.
type Ingester = corpus.Ingester

// OpenCorpus opens (or creates) the corpus directory dir.
func OpenCorpus(dir string, opts ...corpus.Option) (*Corpus, error) {
	return corpus.Open(dir, opts...)
}

// UnitCost returns the unit cost model: every node costs 1 and the
// distance is the minimum number of edit operations. This is the default.
func UnitCost() CostModel { return cost.Unit{} }

// PerLabelCost returns a model with per-label costs and a default for
// unlisted labels; all costs must be ≥ 1.
func PerLabelCost(table map[string]float64, def float64) (CostModel, error) {
	return cost.NewPerLabel(table, def)
}

// FanoutWeightedCost returns the fanout-weighted model of Augsten et al.:
// cst(x) = 1 + weight·fanout(x), capped at cap. It makes structural edits
// of internal nodes more expensive than leaf edits.
func FanoutWeightedCost(weight, cap float64) (CostModel, error) {
	return cost.NewFanoutWeighted(weight, cap)
}

// Matcher is the entry point: it owns the label dictionary shared by the
// queries and documents it parses, and the cost model used for matching.
//
// A Matcher is not safe for concurrent use.
type Matcher struct {
	dict  dict.Dict
	model CostModel
	ct    float64
	probe Probe
}

// Option configures a Matcher.
type Option func(*Matcher)

// WithCostModel selects a cost model (default: UnitCost).
func WithCostModel(m CostModel) Option {
	return func(ma *Matcher) { ma.model = m }
}

// WithDocumentCostBound overrides cT, the upper bound on document node
// costs used in the τ size bound. Only needed for streamed documents under
// cost models whose DocBound is loose.
func WithDocumentCostBound(ct float64) Option {
	return func(ma *Matcher) { ma.ct = ct }
}

// New returns a Matcher with a fresh label dictionary.
func New(opts ...Option) *Matcher {
	m := &Matcher{dict: dict.New(), model: cost.Unit{}}
	for _, o := range opts {
		o(m)
	}
	return m
}

// SetProbe installs an instrumentation probe on subsequent runs; nil
// disables instrumentation.
func (m *Matcher) SetProbe(p Probe) { m.probe = p }

// Dict returns the matcher's label dictionary, needed by custom Queue
// sources to produce Item labels compatible with the matcher's queries.
func (m *Matcher) Dict() Dict { return m.dict }

// ParseBracket parses a tree in bracket notation, e.g. "{a{b}{c}}".
func (m *Matcher) ParseBracket(s string) (*Tree, error) {
	return tree.Parse(m.dict, s)
}

// ParseXML parses a whole XML document into a materialized tree. Elements
// become nodes labeled with their tag, attributes become "@name" children
// with a value leaf, and non-whitespace text runs become leaves.
func (m *Matcher) ParseXML(r io.Reader) (*Tree, error) {
	return xmlstream.ParseTree(m.dict, r)
}

// XMLQueue returns a streaming postorder queue over an XML document,
// reading it incrementally with memory proportional to its depth. Use with
// TopKStream for documents that must not be materialized.
func (m *Matcher) XMLQueue(r io.Reader) Queue {
	return xmlstream.NewReader(m.dict, r)
}

// FromNode converts a pointer-form tree built with NewNode.
func (m *Matcher) FromNode(root *Node) *Tree {
	return tree.FromNode(m.dict, root)
}

// WriteXML serializes a tree (e.g. a matched subtree) back to XML using
// the inverse of the ParseXML node mapping: "@name" children become
// attributes, leaf labels that are not valid element names become text.
func (m *Matcher) WriteXML(w io.Writer, t *Tree) error {
	return xmlstream.WriteTree(w, t)
}

// SaveStore persists a document to the binary postorder store format,
// which re-opens with OpenStore as a Queue without XML parsing cost.
func (m *Matcher) SaveStore(w io.Writer, doc *Tree) error {
	if doc.Dict() != m.dict {
		return fmt.Errorf("tasm: document was parsed by a different Matcher")
	}
	return docstore.WriteItems(w, m.dict, postorder.Items(doc))
}

// OpenStore opens a binary postorder store as a streaming Queue, merging
// its labels into the matcher's dictionary.
func (m *Matcher) OpenStore(r io.Reader) (Queue, error) {
	return docstore.NewReader(m.dict, r)
}

// BuildTree materializes the tree encoded by a postorder queue. It fails
// if the stream is not a single well-formed tree.
func (m *Matcher) BuildTree(q Queue) (*Tree, error) {
	return postorder.BuildTree(m.dict, q)
}

// Distance returns the tree edit distance δ(a, b) under the matcher's
// cost model.
func (m *Matcher) Distance(a, b *Tree) float64 {
	return ted.Distance(m.model, a, b)
}

// EditOp is one operation of an optimal edit script; see Matcher.EditScript.
type EditOp = ted.EditOp

// Operation kinds of an EditOp.
const (
	OpMatch  = ted.OpMatch
	OpRename = ted.OpRename
	OpDelete = ted.OpDelete
	OpInsert = ted.OpInsert
)

// EditScript returns an optimal edit script transforming a into b: the
// node alignments of a least costly edit mapping, whose costs sum to
// Distance(a, b). Use it to explain *why* a match has its distance.
func (m *Matcher) EditScript(a, b *Tree) []EditOp {
	return ted.NewComputer(m.model, a).EditScript(b)
}

// Tau returns the provable upper bound τ = |Q|·(cQ+1) + k·cT on the size
// of any subtree that can appear in a top-k ranking for the query
// (Theorem 3). TASM never evaluates distances for subtrees above it.
func (m *Matcher) Tau(q *Tree, k int) int {
	return core.Tau(m.model, q, k, m.ct)
}

// TopK returns the k subtrees of doc closest to q, ascending by distance
// (ties broken by document position), using TASM-postorder. The document
// tree is streamed internally; memory beyond the document itself is
// O(|q|² + |q|·k).
func (m *Matcher) TopK(q, doc *Tree, k int) ([]Match, error) {
	return m.TopKCtx(context.Background(), q, doc, k)
}

// TopKCtx is TopK under a context: the scan polls ctx once per candidate
// and returns ctx.Err() promptly when it is cancelled or its deadline
// passes.
func (m *Matcher) TopKCtx(ctx context.Context, q, doc *Tree, k int) ([]Match, error) {
	return core.Postorder(q, doc, k, m.optionsCtx(ctx))
}

// TopKStream is TopK over a streaming document: total memory is
// independent of the document size (Theorem 5 of the paper). The queue is
// consumed; stream a fresh one per query.
func (m *Matcher) TopKStream(q *Tree, doc Queue, k int) ([]Match, error) {
	return m.TopKStreamCtx(context.Background(), q, doc, k)
}

// TopKStreamCtx is TopKStream under a context; see TopKCtx.
func (m *Matcher) TopKStreamCtx(ctx context.Context, q *Tree, doc Queue, k int) ([]Match, error) {
	return core.PostorderStream(q, doc, k, m.optionsCtx(ctx))
}

// TopKBatch answers several queries in a single scan of the document
// stream — the batch workload of data cleaning, where many dirty records
// are matched against one corpus. Result i corresponds to queries[i] and
// is identical to an individual TopKStream run; the document is parsed
// and pruned only once.
func (m *Matcher) TopKBatch(queries []*Tree, doc Queue, k int) ([][]Match, error) {
	return m.TopKBatchCtx(context.Background(), queries, doc, k)
}

// TopKBatchCtx is TopKBatch under a context; see TopKCtx.
func (m *Matcher) TopKBatchCtx(ctx context.Context, queries []*Tree, doc Queue, k int) ([][]Match, error) {
	return core.PostorderBatch(queries, doc, k, m.optionsCtx(ctx))
}

// TopKParallel is TopKStream with the distance computations fanned out to
// a worker pool (workers ≤ 0 selects GOMAXPROCS) — an extension beyond
// the single-threaded paper. Distances are identical to TopKStream;
// reported positions of exact ties at the pruning boundary may differ.
func (m *Matcher) TopKParallel(q *Tree, doc Queue, k, workers int) ([]Match, error) {
	return m.TopKParallelCtx(context.Background(), q, doc, k, workers)
}

// TopKParallelCtx is TopKParallel under a context: a cancelled ctx stops
// the producer, drains the workers and returns ctx.Err(); see TopKCtx.
func (m *Matcher) TopKParallelCtx(ctx context.Context, q *Tree, doc Queue, k, workers int) ([]Match, error) {
	return core.PostorderParallel(q, doc, k, workers, m.optionsCtx(ctx))
}

// TopKDynamic runs the TASM-dynamic baseline (Section IV-F of the paper):
// one Zhang–Shasha pass over the whole document. It needs O(|q|·|doc|)
// memory and exists for comparison and for small documents.
func (m *Matcher) TopKDynamic(q, doc *Tree, k int) ([]Match, error) {
	return core.Dynamic(q, doc, k, m.options())
}

func (m *Matcher) options() core.Options {
	return core.Options{Model: m.model, CT: m.ct, Probe: m.probe}
}

func (m *Matcher) optionsCtx(ctx context.Context) core.Options {
	o := m.options()
	o.Ctx = ctx
	return o
}
