package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDiffLiterals(t *testing.T) {
	if err := run(os.Stdout, "{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}", nil, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDiffFiles(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.xml")
	b := filepath.Join(dir, "b.xml")
	if err := os.WriteFile(a, []byte(`<r><x>1</x></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(`<r><x>2</x><y/></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(os.Stdout, "", "", []string{a, b}, true, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(os.Stdout, "", "", []string{a, b}, false, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestDiffErrors(t *testing.T) {
	if err := run(os.Stdout, "", "", nil, false, 0); err == nil {
		t.Error("missing inputs accepted")
	}
	if err := run(os.Stdout, "{a", "{b}", nil, false, 0); err == nil {
		t.Error("bad bracket accepted")
	}
	if err := run(os.Stdout, "{a}", "", []string{"nope.xml", "nope.xml"}, false, 0); err == nil {
		t.Error("missing file accepted")
	}
}
