// Command tasmdiff prints the tree edit distance between two XML
// documents together with an optimal edit script — the sequence of node
// matches, renames, deletions and insertions realizing that distance.
//
// Usage:
//
//	tasmdiff old.xml new.xml
//	tasmdiff -q '{a{b}}' -r '{a{c}}'      # bracket notation literals
//	tasmdiff -quiet old.xml new.xml       # distance only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tasm"
)

func main() {
	var (
		left    = flag.String("q", "", "left tree in bracket notation (instead of a file)")
		right   = flag.String("r", "", "right tree in bracket notation (instead of a file)")
		quiet   = flag.Bool("quiet", false, "print only the distance")
		fanoutW = flag.Float64("fanout-weight", 0, "use the fanout-weighted cost model with this weight")
	)
	flag.Parse()
	if err := run(os.Stdout, *left, *right, flag.Args(), *quiet, *fanoutW); err != nil {
		fmt.Fprintln(os.Stderr, "tasmdiff:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, left, right string, args []string, quiet bool, fanoutW float64) error {
	opts := []tasm.Option{}
	if fanoutW > 0 {
		model, err := tasm.FanoutWeightedCost(fanoutW, 64)
		if err != nil {
			return err
		}
		opts = append(opts, tasm.WithCostModel(model))
	}
	m := tasm.New(opts...)

	a, err := loadTree(m, left, args, 0)
	if err != nil {
		return fmt.Errorf("left tree: %w", err)
	}
	b, err := loadTree(m, right, args, 1)
	if err != nil {
		return fmt.Errorf("right tree: %w", err)
	}

	fmt.Fprintf(w, "distance: %g\n", m.Distance(a, b))
	if quiet {
		return nil
	}
	for _, op := range m.EditScript(a, b) {
		switch op.Op {
		case tasm.OpMatch:
			fmt.Fprintf(w, "  match   %q\n", a.Label(op.QNode))
		case tasm.OpRename:
			fmt.Fprintf(w, "  rename  %q -> %q  (cost %g)\n", a.Label(op.QNode), b.Label(op.TNode), op.Cost)
		case tasm.OpDelete:
			fmt.Fprintf(w, "  delete  %q  (cost %g)\n", a.Label(op.QNode), op.Cost)
		case tasm.OpInsert:
			fmt.Fprintf(w, "  insert  %q  (cost %g)\n", b.Label(op.TNode), op.Cost)
		}
	}
	return nil
}

// loadTree reads tree number idx either from a bracket literal or from
// the positional XML file arguments.
func loadTree(m *tasm.Matcher, literal string, args []string, idx int) (*tasm.Tree, error) {
	if literal != "" {
		return m.ParseBracket(literal)
	}
	if idx >= len(args) {
		return nil, fmt.Errorf("missing input: give two XML files or -q/-r literals")
	}
	f, err := os.Open(args[idx])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return m.ParseXML(f)
}
