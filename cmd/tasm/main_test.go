package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleXML = `<dblp>
  <article><author>John Smith</author><title>Trees</title><year>2008</year></article>
  <article><author>Mary Jones</author><title>Graphs</title><year>2007</year></article>
</dblp>`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunBracketQuery(t *testing.T) {
	doc := writeTemp(t, "doc.xml", sampleXML)
	if err := run("{article{author}{title}}", "", doc, "xml", 2, 0, 16, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunXMLQuery(t *testing.T) {
	doc := writeTemp(t, "doc.xml", sampleXML)
	q := writeTemp(t, "q.xml", `<article><author>John Smith</author><title>Trees</title></article>`)
	if err := run("", q, doc, "xml", 1, 0, 16, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunFanoutModel(t *testing.T) {
	doc := writeTemp(t, "doc.xml", sampleXML)
	if err := run("{article{author}}", "", doc, "xml", 1, 0.5, 8, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	doc := writeTemp(t, "doc.xml", sampleXML)
	cases := []struct {
		name string
		err  func() error
	}{
		{"missing doc", func() error { return run("{a}", "", "", "xml", 1, 0, 16, false, false) }},
		{"both queries", func() error { return run("{a}", "also.xml", doc, "xml", 1, 0, 16, false, false) }},
		{"no query", func() error { return run("", "", doc, "xml", 1, 0, 16, false, false) }},
		{"bad format", func() error { return run("{a}", "", doc, "yaml", 1, 0, 16, false, false) }},
		{"bad bracket", func() error { return run("{a", "", doc, "xml", 1, 0, 16, false, false) }},
		{"missing file", func() error { return run("{a}", "", doc+".nope", "xml", 1, 0, 16, false, false) }},
		{"bad k", func() error { return run("{a}", "", doc, "xml", 0, 0, 16, false, false) }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}
