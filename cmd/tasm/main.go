// Command tasm answers top-k approximate subtree matching queries against
// XML documents or binary postorder stores from the command line.
//
// Usage:
//
//	tasm -q '{article{author}{title}}' -doc dblp.xml -k 5
//	tasm -qxml query.xml -doc dblp.store -k 10 -format store -show-trees
//
// The query is given either in bracket notation (-q) or as an XML file
// (-qxml). The document is streamed, so arbitrarily large files work in
// constant memory.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tasm"
)

func main() {
	var (
		queryBracket = flag.String("q", "", "query in bracket notation, e.g. '{article{author}{title}}'")
		queryXML     = flag.String("qxml", "", "path of an XML file holding the query tree")
		docPath      = flag.String("doc", "", "path of the document (XML or binary store)")
		format       = flag.String("format", "xml", "document format: xml or store")
		k            = flag.Int("k", 5, "number of matches to return")
		fanoutW      = flag.Float64("fanout-weight", 0, "use the fanout-weighted cost model with this weight (0 = unit costs)")
		fanoutCap    = flag.Float64("fanout-cap", 16, "node cost cap for the fanout-weighted model")
		showTrees    = flag.Bool("show-trees", false, "print each matched subtree in bracket notation")
		timing       = flag.Bool("time", false, "report elapsed wall-clock time")
	)
	flag.Parse()
	if err := run(*queryBracket, *queryXML, *docPath, *format, *k, *fanoutW, *fanoutCap, *showTrees, *timing); err != nil {
		fmt.Fprintln(os.Stderr, "tasm:", err)
		os.Exit(1)
	}
}

func run(queryBracket, queryXML, docPath, format string, k int, fanoutW, fanoutCap float64, showTrees, timing bool) error {
	if docPath == "" {
		return fmt.Errorf("-doc is required")
	}
	if (queryBracket == "") == (queryXML == "") {
		return fmt.Errorf("exactly one of -q or -qxml is required")
	}

	opts := []tasm.Option{}
	if fanoutW > 0 {
		model, err := tasm.FanoutWeightedCost(fanoutW, fanoutCap)
		if err != nil {
			return err
		}
		opts = append(opts, tasm.WithCostModel(model))
	}
	m := tasm.New(opts...)

	var (
		q   *tasm.Tree
		err error
	)
	if queryBracket != "" {
		q, err = m.ParseBracket(queryBracket)
	} else {
		f, ferr := os.Open(queryXML)
		if ferr != nil {
			return ferr
		}
		q, err = m.ParseXML(f)
		f.Close()
	}
	if err != nil {
		return fmt.Errorf("parsing query: %w", err)
	}

	f, err := os.Open(docPath)
	if err != nil {
		return err
	}
	defer f.Close()

	var queue tasm.Queue
	switch format {
	case "xml":
		queue = m.XMLQueue(f)
	case "store":
		queue, err = m.OpenStore(f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -format %q (want xml or store)", format)
	}

	start := time.Now()
	matches, err := m.TopKStream(q, queue, k)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("query: %d nodes, τ = %d (max candidate subtree size)\n", q.Size(), m.Tau(q, k))
	fmt.Printf("%4s  %10s  %8s  %6s\n", "rank", "distance", "position", "size")
	for i, match := range matches {
		fmt.Printf("%4d  %10.2f  %8d  %6d\n", i+1, match.Dist, match.Pos, match.Size)
		if showTrees && match.Tree != nil {
			fmt.Printf("      %s\n", match.Tree)
		}
	}
	if timing {
		fmt.Printf("elapsed: %v\n", elapsed)
	}
	return nil
}
