// Command tasmstat prints the structural profile of an XML document or
// binary postorder store in one streaming pass: node count, height, leaf
// share, fanout distribution and subtree-size tabulation — the numbers the
// TASM paper uses to characterize its corpora and to choose τ.
//
// Usage:
//
//	tasmstat dblp.xml
//	tasmstat -format store dblp.store
package main

import (
	"flag"
	"fmt"
	"os"

	"tasm/internal/dict"
	"tasm/internal/docstore"
	"tasm/internal/postorder"
	"tasm/internal/stats"
	"tasm/internal/xmlstream"
)

func main() {
	format := flag.String("format", "xml", "input format: xml or store")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tasmstat [-format xml|store] <document>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *format); err != nil {
		fmt.Fprintln(os.Stderr, "tasmstat:", err)
		os.Exit(1)
	}
}

func run(path, format string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	d := dict.New()
	var q postorder.Queue
	switch format {
	case "xml":
		q = xmlstream.NewReader(d, f)
	case "store":
		q, err = docstore.NewReader(d, f)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -format %q (want xml or store)", format)
	}
	p, err := stats.Compute(q)
	if err != nil {
		return err
	}
	p.Format(os.Stdout, path)
	return nil
}
