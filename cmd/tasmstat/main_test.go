package main

import (
	"os"
	"path/filepath"
	"testing"

	"tasm/internal/datagen"
	"tasm/internal/dict"
	"tasm/internal/docstore"
	"tasm/internal/postorder"
)

func TestRunXML(t *testing.T) {
	p := filepath.Join(t.TempDir(), "d.xml")
	if err := os.WriteFile(p, []byte(`<a><b>x</b><c/></a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(p, "xml"); err != nil {
		t.Fatal(err)
	}
}

func TestRunStore(t *testing.T) {
	d := dict.New()
	items, err := postorder.Collect(datagen.DBLP(10).Queue(d, 1))
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "d.store")
	f, err := os.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := docstore.WriteItems(f, d, items); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(p, "store"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.xml", "xml"); err == nil {
		t.Error("missing file: want error")
	}
	p := filepath.Join(t.TempDir(), "d.xml")
	if err := os.WriteFile(p, []byte(`<a/>`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(p, "yaml"); err == nil {
		t.Error("bad format: want error")
	}
	if err := run(p, "store"); err == nil {
		t.Error("xml as store: want error")
	}
}
