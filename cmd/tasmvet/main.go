// Command tasmvet is the repo's custom vet tool: a multichecker
// bundling the analyzers in internal/analysis/... that enforce the
// hot-path and concurrency invariants statically. It speaks the
// `go vet -vettool` driver protocol and is not run standalone:
//
//	go build -o bin/tasmvet ./cmd/tasmvet
//	go vet -vettool=$PWD/bin/tasmvet ./...
//
// Individual checks can be disabled with -<name>=false, e.g.
// `go vet -vettool=... -hotpathalloc=false ./...`. See the README
// section "Static analysis" for the annotation grammar
// (//tasm:hotpath, //tasm:ctxpoll, //tasm:allow).
package main

import (
	"tasm/internal/analysis"
	"tasm/internal/analysis/atomicfield"
	"tasm/internal/analysis/ctxpoll"
	"tasm/internal/analysis/hotpathalloc"
	"tasm/internal/analysis/poolreset"
)

func main() {
	analysis.Main("tasmvet",
		hotpathalloc.Analyzer,
		atomicfield.Analyzer,
		poolreset.Analyzer,
		ctxpoll.Analyzer,
	)
}
