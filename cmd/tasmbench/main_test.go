package main

import (
	"strings"
	"testing"

	"tasm/internal/experiments"
)

func tinyConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Scales = []int{1}
	cfg.QuerySizes = []int{4}
	cfg.Ks = []int{1, 10}
	cfg.PSDEntries = 100
	cfg.DBLPRecords = 400
	return cfg
}

func TestRunSingleFigures(t *testing.T) {
	for _, fig := range []string{"9a", "9b", "9c", "10", "11", "12"} {
		var sb strings.Builder
		if err := run(&sb, fig, tinyConfig()); err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if sb.Len() == 0 {
			t.Errorf("fig %s produced no output", fig)
		}
	}
}

func TestRunAll(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "all", tinyConfig()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 9a", "Figure 9b", "Figure 9c", "Figure 10", "Figure 11", "Figure 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "99", tinyConfig()); err == nil {
		t.Error("unknown figure: want error")
	}
}
