// Command tasmbench regenerates the evaluation figures of the TASM paper
// (Section VII) at reproduction scale and prints the series each figure
// plots. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured outcomes.
//
// Usage:
//
//	tasmbench -fig 9a           # runtime vs document size
//	tasmbench -fig all -quick   # everything, small scales
//	tasmbench -json             # machine-readable micro-suite
//
// -json runs a fixed micro-benchmark suite (TED distance, the Figure-9a
// scan shapes, the parallel, batch and corpus scans) through
// testing.Benchmark and prints one JSON document with ns/op, B/op and
// allocs/op per benchmark. Redirect it into BENCH_<PR>.json to track the
// performance trajectory across PRs:
//
//	tasmbench -json > BENCH_PR3.json
//
// -prune selects the candidate pruning gates the -json suite runs with:
// "on" (default, all gates), "off" (none), or a comma-separated subset of
// "hist" (label-histogram candidate gate), "ted" (early-abort bounded
// TED) and "tau" (the paper's τ′ bound), so each gate's contribution can
// be measured independently:
//
//	tasmbench -json -prune=off > BENCH_PR3_unpruned.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tasm/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to reproduce: 9a, 9b, 9c, 10, 11, 12, ablation or all")
		quick   = flag.Bool("quick", false, "use small document scales (seconds instead of minutes)")
		seed    = flag.Int64("seed", 1, "generation seed")
		jsonOut = flag.Bool("json", false, "run the micro-benchmark suite and emit JSON (ns/op, B/op, allocs/op)")
		prune   = flag.String("prune", "on", "candidate pruning gates for -json: on, off, or a comma list of hist, ted, tau")
		trace   = flag.Bool("trace", false, "run one traced query against the corpus and shard fixtures and print the stage breakdown")
	)
	flag.Parse()
	if *trace {
		if err := runTrace(os.Stdout, *quick, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tasmbench:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if err := runJSON(os.Stdout, *quick, *seed, *prune); err != nil {
			fmt.Fprintln(os.Stderr, "tasmbench:", err)
			os.Exit(1)
		}
		return
	}
	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if err := run(os.Stdout, *fig, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tasmbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, fig string, cfg experiments.Config) error {
	runners := map[string]func() error{
		"9a":       func() error { _, err := experiments.Fig9a(w, cfg); return err },
		"9b":       func() error { _, err := experiments.Fig9b(w, cfg); return err },
		"9c":       func() error { _, err := experiments.Fig9c(w, cfg); return err },
		"10":       func() error { _, err := experiments.Fig10(w, cfg); return err },
		"11":       func() error { _, err := experiments.Fig11(w, cfg); return err },
		"12":       func() error { _, err := experiments.Fig12(w, cfg); return err },
		"ablation": func() error { _, err := experiments.Ablation(w, cfg); return err },
	}
	if fig == "all" {
		for _, name := range []string{"9a", "9b", "9c", "10", "11", "12", "ablation"} {
			if err := runners[name](); err != nil {
				return fmt.Errorf("figure %s: %w", name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	r, ok := runners[fig]
	if !ok {
		return fmt.Errorf("unknown figure %q (want 9a, 9b, 9c, 10, 11, 12 or all)", fig)
	}
	return r()
}
