package main

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tasm/corpus"
	"tasm/internal/datagen"
	"tasm/internal/dict"
	"tasm/internal/xmlstream"
)

// benchCorpus builds a temporary corpus of n generated documents and
// returns it together with an 8-node query in bracket notation.
func benchCorpus(b *testing.B, n int) (*corpus.Corpus, string) {
	b.Helper()
	c, err := corpus.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var query string
	for i := 0; i < n; i++ {
		d := dict.New()
		doc, err := datagen.XMark(1).Tree(d, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			q, err := datagen.QueryFromDocument(doc, rand.New(rand.NewSource(8)), 8)
			if err != nil {
				b.Fatal(err)
			}
			query = q.String()
		}
		var sb strings.Builder
		if err := xmlstream.WriteTree(&sb, doc); err != nil {
			b.Fatal(err)
		}
		if _, err := c.AddXML(fmt.Sprintf("doc%d", i), strings.NewReader(sb.String())); err != nil {
			b.Fatal(err)
		}
	}
	return c, query
}

// BenchmarkCorpusTopK measures a corpus-wide top-k query through the full
// stack — document filter, shared ranking, and the candidate pruning
// pipeline — with the gates on (the default) and off (the unpruned
// equivalence path), so both code paths are exercised by the CI
// benchmark smoke.
func BenchmarkCorpusTopK(b *testing.B) {
	c, query := benchCorpus(b, 4)
	q, err := c.ParseBracket(query)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts []corpus.QueryOption
	}{
		{"pruned", []corpus.QueryOption{corpus.WithoutTrees()}},
		{"unpruned", []corpus.QueryOption{corpus.WithoutTrees(), corpus.WithoutCandidatePruning()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.TopK(context.Background(), q, 5, mode.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
