package main

// Trace mode (-trace): run one traced query against the -json suite's
// corpus and shard-group fixtures and print the stage breakdown a tasmd
// ?trace=1 response would carry — a quick way to see where a query's
// time goes (parse, plan, per-document scan, shard fan-out, merge)
// without standing up a daemon.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"tasm/corpus"
	"tasm/corpus/shard"
	"tasm/internal/datagen"
	"tasm/internal/dict"
	"tasm/internal/qtrace"
	"tasm/internal/tree"
	"tasm/internal/xmlstream"
)

// corpusFixture is the corpus-tier benchmark fixture: four generated
// documents in one corpus, the same four split 2+1+1 over three shard
// corpora behind a scatter-gather group, and the benchmark query parsed
// in the corpus's dictionary context.
type corpusFixture struct {
	corp    *corpus.Corpus
	group   *shard.Group
	query   *tree.Tree
	cleanup func()
}

// buildCorpusFixture materializes the fixture in temporary directories;
// cleanup removes them. q is the query to re-parse into the corpus's
// dictionary context.
func buildCorpusFixture(scale int, seed int64, q *tree.Tree) (*corpusFixture, error) {
	var dirs []string
	cleanup := func() {
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	fail := func(err error) (*corpusFixture, error) {
		cleanup()
		return nil, err
	}
	corpusDir, err := os.MkdirTemp("", "tasmbench-corpus-*")
	if err != nil {
		return nil, err
	}
	dirs = append(dirs, corpusDir)
	corp, err := corpus.Open(corpusDir)
	if err != nil {
		return fail(err)
	}
	shards := make([]corpus.Searcher, 3)
	shardCorpora := make([]*corpus.Corpus, 3)
	for i := range shardCorpora {
		dir, err := os.MkdirTemp("", "tasmbench-shard-*")
		if err != nil {
			return fail(err)
		}
		dirs = append(dirs, dir)
		if shardCorpora[i], err = corpus.Open(dir); err != nil {
			return fail(err)
		}
		shards[i] = shardCorpora[i]
	}
	for i := 0; i < 4; i++ {
		cd := dict.New()
		cdoc, err := datagen.XMark(scale).Tree(cd, seed+int64(i))
		if err != nil {
			return fail(err)
		}
		var xb strings.Builder
		if err := xmlstream.WriteTree(&xb, cdoc); err != nil {
			return fail(err)
		}
		name := fmt.Sprintf("doc%d", i)
		if _, err := corp.AddXML(name, strings.NewReader(xb.String())); err != nil {
			return fail(err)
		}
		si := 0
		if i >= 2 {
			si = i - 1 // docs 0,1 → shard 0; doc 2 → shard 1; doc 3 → shard 2
		}
		if _, err := shardCorpora[si].AddXML(name, strings.NewReader(xb.String())); err != nil {
			return fail(err)
		}
	}
	cq, err := corp.ParseBracket(q.String())
	if err != nil {
		return fail(err)
	}
	return &corpusFixture{
		corp:    corp,
		group:   shard.NewGroup(shards...),
		query:   cq,
		cleanup: cleanup,
	}, nil
}

// runTrace runs one traced top-k query against the corpus fixture and
// one against the shard group, printing each trace's stage breakdown.
func runTrace(w io.Writer, quick bool, seed int64) error {
	scale := 2
	if quick {
		scale = 1
	}
	d := dict.New()
	doc, err := datagen.XMark(scale).Tree(d, seed)
	if err != nil {
		return err
	}
	q, err := datagen.QueryFromDocument(doc, rand.New(rand.NewSource(8)), 8)
	if err != nil {
		return err
	}
	fx, err := buildCorpusFixture(scale, seed, q)
	if err != nil {
		return err
	}
	defer fx.cleanup()

	traced := func(title string, s corpus.Searcher) error {
		tr := qtrace.New()
		defer qtrace.Release(tr)
		ctx := qtrace.NewContext(context.Background(), tr)
		if _, err := s.TopK(ctx, fx.query, 5, corpus.WithoutTrees()); err != nil {
			return err
		}
		fmt.Fprintf(w, "%s (trace %s, %d spans)\n", title, tr.TraceID(), len(tr.Export().Spans))
		printWire(w, tr.Export(), "  ")
		fmt.Fprintln(w)
		return nil
	}
	if err := traced("corpus.TopK  docs=4 Q=8 k=5", fx.corp); err != nil {
		return err
	}
	return traced("shard.Group.TopK  shards=3 docs=4 Q=8 k=5", fx.group)
}

// printWire renders one trace block's spans (and any nested shard
// blocks) as an indented table, plus per-stage duration totals.
func printWire(w io.Writer, wire *qtrace.Wire, indent string) {
	stageTotals := map[string]float64{}
	var order []string
	for _, s := range wire.Spans {
		detail := s.Detail
		if detail != "" {
			detail = " " + detail
		}
		fmt.Fprintf(w, "%s%-6s%-32s start %9.1fµs  dur %9.1fµs", indent, s.Name, detail, s.StartUs, s.DurUs)
		if s.Prune != nil {
			fmt.Fprintf(w, "  [hist-skipped %d, ted-aborted %d, evaluated %d]",
				s.Prune.HistSkipped, s.Prune.TEDAborted, s.Prune.Evaluated)
		}
		fmt.Fprintln(w)
		if _, seen := stageTotals[s.Name]; !seen {
			order = append(order, s.Name)
		}
		stageTotals[s.Name] += s.DurUs
	}
	if wire.Dropped > 0 {
		fmt.Fprintf(w, "%s(%d spans dropped: slab full)\n", indent, wire.Dropped)
	}
	for _, name := range order {
		fmt.Fprintf(w, "%stotal %-28s %9.1fµs\n", indent, name, stageTotals[name])
	}
	for _, child := range wire.Shards {
		fmt.Fprintf(w, "%sshard trace %s (parent span %s):\n", indent, child.TraceID, child.ParentID)
		printWire(w, child, indent+"  ")
	}
}
