package main

// Machine-readable benchmark mode (-json): a fixed micro-suite over the
// core machinery, run through testing.Benchmark and emitted as JSON so
// results can be checked in as BENCH_<PR>.json and compared across PRs.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"tasm/internal/core"
	"tasm/internal/cost"
	"tasm/internal/datagen"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// benchResult is one benchmark's measurement in the emitted JSON.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Quick      bool          `json:"quick"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// runJSON measures the suite and writes the JSON report to w. quick
// shrinks the fixtures so a run takes seconds.
func runJSON(w io.Writer, quick bool, seed int64) error {
	scale := 2
	if quick {
		scale = 1
	}
	d := dict.New()
	doc, err := datagen.XMark(scale).Tree(d, seed)
	if err != nil {
		return err
	}
	items := postorder.Items(doc)
	query := func(size int) (*tree.Tree, error) {
		return datagen.QueryFromDocument(doc, rand.New(rand.NewSource(int64(size))), size)
	}
	q8, err := query(8)
	if err != nil {
		return err
	}
	q16, err := query(16)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	tedQ := tree.Random(d, rng, tree.RandomConfig{Nodes: 16, MaxFanout: 4, Labels: 8})
	tedT := tree.Random(d, rng, tree.RandomConfig{Nodes: 64, MaxFanout: 4, Labels: 8})
	batchQs := make([]*tree.Tree, 4)
	for i := range batchQs {
		if batchQs[i], err = query(8 + i); err != nil {
			return err
		}
	}
	opts := core.Options{NoTrees: true}

	suite := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"ted-distance/Q=16/n=64", func(b *testing.B) {
			comp := ted.NewComputer(cost.Unit{}, tedQ)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				comp.Distance(tedT)
			}
		}},
		{fmt.Sprintf("fig9a-pos/scale=%d/Q=8/k=5", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.PostorderStream(q8, postorder.NewSliceQueue(items), 5, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("fig9a-dyn/scale=%d/Q=8/k=5", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Dynamic(q8, doc, 5, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("parallel/scale=%d/Q=16/k=5/workers=4", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.PostorderParallel(q16, postorder.NewSliceQueue(items), 5, 4, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("batch/scale=%d/queries=4/k=5", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.PostorderBatch(batchQs, postorder.NewSliceQueue(items), 5, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	report := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
	}
	for _, s := range suite {
		r := testing.Benchmark(s.fn)
		report.Benchmarks = append(report.Benchmarks, benchResult{
			Name:        s.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
