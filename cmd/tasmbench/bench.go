package main

// Machine-readable benchmark mode (-json): a fixed micro-suite over the
// core machinery, run through testing.Benchmark and emitted as JSON so
// results can be checked in as BENCH_<PR>.json and compared across PRs.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"tasm/corpus"
	"tasm/corpus/shard"
	"tasm/internal/core"
	"tasm/internal/cost"
	"tasm/internal/datagen"
	"tasm/internal/dict"
	"tasm/internal/postorder"
	"tasm/internal/qtrace"
	"tasm/internal/ted"
	"tasm/internal/tree"
)

// pruneConfig selects which gates of the candidate pruning pipeline the
// suite runs with. The -prune flag parses into one: "on" enables every
// gate (the default), "off" disables all three, and a comma-separated
// subset of "hist", "ted", "tau" enables exactly the named gates —
// so each gate can be benchmarked independently.
type pruneConfig struct {
	hist bool // label-histogram candidate gate
	ted  bool // early-abort bounded TED
	tau  bool // the paper's τ′ intermediate bound
}

// parsePrune parses the -prune flag value.
func parsePrune(s string) (pruneConfig, error) {
	switch s {
	case "", "on":
		return pruneConfig{hist: true, ted: true, tau: true}, nil
	case "off":
		return pruneConfig{}, nil
	}
	var p pruneConfig
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "hist":
			p.hist = true
		case "ted":
			p.ted = true
		case "tau":
			p.tau = true
		default:
			return p, fmt.Errorf("unknown -prune gate %q (want on, off, or a comma list of hist, ted, tau)", part)
		}
	}
	return p, nil
}

// options returns the core options implementing the selection.
func (p pruneConfig) options() core.Options {
	return core.Options{
		NoTrees:                  true,
		DisableHistogramBound:    !p.hist,
		DisableEarlyAbort:        !p.ted,
		DisableIntermediateBound: !p.tau,
	}
}

// benchResult is one benchmark's measurement in the emitted JSON.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// dictReport captures the memory story of the corpus fixture alongside
// the timing numbers: the frozen base dictionary's size after ingest and
// the request-overlay churn of one query — how many labels a query run
// holds locally and releases, instead of leaking them into the shared
// dictionary.
type dictReport struct {
	BaseLabels            int `json:"base_labels"`
	OverlayLabelsPerQuery int `json:"overlay_labels_per_query"`
}

// benchReport is the top-level JSON document.
type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Quick      bool          `json:"quick"`
	Prune      string        `json:"prune,omitempty"`
	Dict       *dictReport   `json:"dict,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// scalingFixture is the doc-count-scaling fixture: many small random
// documents (~128–256 nodes each) over one shared small label universe
// in a single corpus — the shape where per-document constant costs
// (file opens, label re-interning, buffer setup) dominate a scan unless
// they are amortized across the run.
type scalingFixture struct {
	corp    *corpus.Corpus
	query   *tree.Tree
	cleanup func()
}

// buildScalingFixture materializes the doc-count-scaling corpus in a
// temporary directory; cleanup removes it.
func buildScalingFixture(docs int, seed int64) (*scalingFixture, error) {
	dir, err := os.MkdirTemp("", "tasmbench-scaling-*")
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*scalingFixture, error) {
		os.RemoveAll(dir)
		return nil, err
	}
	corp, err := corpus.Open(dir)
	if err != nil {
		return fail(err)
	}
	rng := rand.New(rand.NewSource(seed))
	d := dict.New()
	for i := 0; i < docs; i++ {
		t := tree.Random(d, rng, tree.RandomConfig{
			Nodes: 128 + rng.Intn(129), MaxFanout: 4, Labels: 16,
		})
		if _, err := corp.AddTree(fmt.Sprintf("doc%04d", i), t); err != nil {
			return fail(err)
		}
	}
	q := tree.Random(d, rng, tree.RandomConfig{Nodes: 8, MaxFanout: 3, Labels: 16})
	cq, err := corp.ParseBracket(q.String())
	if err != nil {
		return fail(err)
	}
	return &scalingFixture{
		corp:    corp,
		query:   cq,
		cleanup: func() { os.RemoveAll(dir) },
	}, nil
}

// runJSON measures the suite and writes the JSON report to w. quick
// shrinks the fixtures so a run takes seconds; prune selects the pruning
// gates (see pruneConfig).
func runJSON(w io.Writer, quick bool, seed int64, pruneFlag string) error {
	prune, err := parsePrune(pruneFlag)
	if err != nil {
		return err
	}
	scale := 2
	if quick {
		scale = 1
	}
	d := dict.New()
	doc, err := datagen.XMark(scale).Tree(d, seed)
	if err != nil {
		return err
	}
	items := postorder.Items(doc)
	query := func(size int) (*tree.Tree, error) {
		return datagen.QueryFromDocument(doc, rand.New(rand.NewSource(int64(size))), size)
	}
	q8, err := query(8)
	if err != nil {
		return err
	}
	q16, err := query(16)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	tedQ := tree.Random(d, rng, tree.RandomConfig{Nodes: 16, MaxFanout: 4, Labels: 8})
	tedT := tree.Random(d, rng, tree.RandomConfig{Nodes: 64, MaxFanout: 4, Labels: 8})
	batchQs := make([]*tree.Tree, 4)
	for i := range batchQs {
		if batchQs[i], err = query(8 + i); err != nil {
			return err
		}
	}
	opts := prune.options()

	// corpus.TopK only toggles the candidate pipeline as a whole, so the
	// corpus benchmark (and its fixture) runs for the whole-pipeline
	// selections (-prune=on / -prune=off) and is omitted for per-gate
	// subsets — a partial selection must not record corpus numbers it
	// cannot honor.
	allOn := prune.hist && prune.ted && prune.tau
	allOff := !prune.hist && !prune.ted && !prune.tau
	var (
		corp       *corpus.Corpus
		group      *shard.Group
		cq         *tree.Tree
		corpusOpts []corpus.QueryOption
	)
	if allOn || allOff {
		fx, err := buildCorpusFixture(scale, seed, q8)
		if err != nil {
			return err
		}
		defer fx.cleanup()
		corp, group, cq = fx.corp, fx.group, fx.query
		corpusOpts = []corpus.QueryOption{corpus.WithoutTrees()}
		if allOff {
			corpusOpts = append(corpusOpts, corpus.WithoutCandidatePruning())
		}
	}

	suite := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"ted-distance/Q=16/n=64", func(b *testing.B) {
			comp := ted.NewComputer(cost.Unit{}, tedQ)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				comp.Distance(tedT)
			}
		}},
		{fmt.Sprintf("fig9a-pos/scale=%d/Q=8/k=5", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.PostorderStream(q8, postorder.NewSliceQueue(items), 5, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("fig9a-dyn/scale=%d/Q=8/k=5", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Dynamic(q8, doc, 5, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("parallel/scale=%d/Q=16/k=5/workers=4", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.PostorderParallel(q16, postorder.NewSliceQueue(items), 5, 4, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{fmt.Sprintf("batch/scale=%d/queries=4/k=5", scale), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.PostorderBatch(batchQs, postorder.NewSliceQueue(items), 5, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	if allOn || allOff {
		suite = append(suite, struct {
			name string
			fn   func(b *testing.B)
		}{fmt.Sprintf("corpus-topk/scale=%d/docs=4/Q=8/k=5", scale), func(b *testing.B) {
			// Measured with a live trace recording into a pooled span slab
			// per iteration — exactly what a tasmd request does — so this
			// number prices the scan WITH tracing enabled, keeping the
			// instrumentation's cost visible across PRs.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := qtrace.New()
				ctx := qtrace.NewContext(context.Background(), tr)
				if _, err := corp.TopK(ctx, cq, 5, corpusOpts...); err != nil {
					b.Fatal(err)
				}
				qtrace.Release(tr)
			}
		}}, struct {
			name string
			fn   func(b *testing.B)
		}{fmt.Sprintf("shard-topk/scale=%d/shards=3/docs=4/Q=8/k=5", scale), func(b *testing.B) {
			// The same documents and query as corpus-topk, answered by the
			// scatter-gather tier over three local shards: the delta to
			// corpus-topk is the fan-out + merge overhead vs the win from
			// shards scanning concurrently under one shared cutoff.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := group.TopK(context.Background(), cq, 5, corpusOpts...); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}

	// Doc-count scaling: the corpus tier's allocation story only shows at
	// many documents — per-document constant costs that hide behind four
	// large XMark documents dominate a thousand small ones. Runs with the
	// default gates only; the fixture is expensive to build.
	if allOn {
		docs := 1000
		if quick {
			docs = 64
		}
		sfx, err := buildScalingFixture(docs, seed)
		if err != nil {
			return err
		}
		defer sfx.cleanup()
		suite = append(suite, struct {
			name string
			fn   func(b *testing.B)
		}{fmt.Sprintf("corpus-topk-scaling/docs=%d/Q=8/k=5", docs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sfx.corp.TopK(context.Background(), sfx.query, 5, corpus.WithoutTrees()); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}

	report := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		Prune:      pruneFlag,
	}
	if corp != nil {
		var stats corpus.Stats
		if _, err := corp.TopK(context.Background(), cq, 5, append(corpusOpts, corpus.WithStats(&stats))...); err != nil {
			return err
		}
		report.Dict = &dictReport{
			BaseLabels:            stats.BaseDictLabels,
			OverlayLabelsPerQuery: stats.OverlayLabels,
		}
	}
	for _, s := range suite {
		r := testing.Benchmark(s.fn)
		report.Benchmarks = append(report.Benchmarks, benchResult{
			Name:        s.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
