package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tasm/internal/dict"
	"tasm/internal/docstore"
	"tasm/internal/postorder"
	"tasm/internal/xmlstream"
)

func TestGenerateXML(t *testing.T) {
	for _, ds := range []string{"xmark", "dblp", "psd"} {
		out := filepath.Join(t.TempDir(), ds+".xml")
		if err := run(ds, 1, 7, "xml", out); err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		n, err := postorder.Validate(xmlstream.NewReader(dict.New(), f))
		f.Close()
		if err != nil {
			t.Fatalf("%s: generated XML not a well-formed tree: %v", ds, err)
		}
		if n < 10 {
			t.Fatalf("%s: only %d nodes", ds, n)
		}
	}
}

func TestGenerateStore(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.store")
	if err := run("dblp", 20, 7, "store", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r, err := docstore.NewReader(dict.New(), f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := postorder.Validate(r); err != nil {
		t.Fatalf("store not a well-formed tree: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := filepath.Join(t.TempDir(), "a.xml")
	b := filepath.Join(t.TempDir(), "b.xml")
	if err := run("dblp", 10, 3, "xml", a); err != nil {
		t.Fatal(err)
	}
	if err := run("dblp", 10, 3, "xml", b); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Error("same seed produced different XML")
	}
	if err := run("dblp", 10, 4, "xml", b); err != nil {
		t.Fatal(err)
	}
	db, _ = os.ReadFile(b)
	if string(da) == string(db) {
		t.Error("different seeds produced identical XML")
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run("unknown", 1, 1, "xml", filepath.Join(t.TempDir(), "x")); err == nil || !strings.Contains(err.Error(), "dataset") {
		t.Errorf("unknown dataset: %v", err)
	}
	if err := run("dblp", 1, 1, "weird", filepath.Join(t.TempDir(), "x")); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("unknown format: %v", err)
	}
	if err := run("dblp", 1, 1, "xml", "/nonexistent-dir/x.xml"); err == nil {
		t.Error("unwritable path: want error")
	}
}
