// Command tasmgen generates the synthetic evaluation corpora (XMark-like,
// DBLP-like, PSD-like; see DESIGN.md §3) as XML files or binary postorder
// stores.
//
// Usage:
//
//	tasmgen -dataset xmark -scale 4 -o xmark4.xml
//	tasmgen -dataset dblp -scale 30000 -format store -o dblp.store
//
// The scale parameter is the XMark scale factor or the record/entry count
// for dblp and psd. Generation is deterministic in -seed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"tasm/internal/datagen"
	"tasm/internal/dict"
	"tasm/internal/docstore"
	"tasm/internal/postorder"
	"tasm/internal/xmlstream"
)

func main() {
	var (
		dataset = flag.String("dataset", "xmark", "dataset family: xmark, dblp or psd")
		scale   = flag.Int("scale", 1, "scale factor (xmark) or record count (dblp, psd)")
		seed    = flag.Int64("seed", 1, "generation seed")
		format  = flag.String("format", "xml", "output format: xml or store")
		out     = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *seed, *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tasmgen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale int, seed int64, format, out string) error {
	var ds *datagen.Dataset
	switch dataset {
	case "xmark":
		ds = datagen.XMark(scale)
	case "dblp":
		ds = datagen.DBLP(scale)
	case "psd":
		ds = datagen.PSD(scale)
	default:
		return fmt.Errorf("unknown -dataset %q (want xmark, dblp or psd)", dataset)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)

	d := dict.New()
	switch format {
	case "xml":
		// Materialize and serialize. XML needs the tree shape; documents
		// at reproduction scale fit comfortably.
		t, err := ds.Tree(d, seed)
		if err != nil {
			return err
		}
		if err := xmlstream.WriteTree(bw, t); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tasmgen: %s scale %d: %d nodes, height %d\n",
			dataset, scale, t.Size(), t.Height())
	case "store":
		items, err := postorder.Collect(ds.Queue(d, seed))
		if err != nil {
			return err
		}
		if err := docstore.WriteItems(bw, d, items); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tasmgen: %s scale %d: %d nodes, %d distinct labels\n",
			dataset, scale, len(items), d.Len())
	default:
		return fmt.Errorf("unknown -format %q (want xml or store)", format)
	}
	return bw.Flush()
}
