// Command tasmd is the TASM query daemon: it serves top-k approximate
// subtree matching over a corpus of persisted documents via a JSON HTTP
// API — either directly from a corpus directory, or as a router
// scatter-gathering over other tasmd instances.
//
// Usage:
//
//	tasmd -dir ./corpus -addr :8421                          # leaf: serve one directory
//	tasmd -shards http://db1:8421,http://db2:8421 -addr :80  # router: scatter-gather over leaves
//	tasmd -shards 'http://db1a:8421|http://db1b:8421,http://db2:8421'
//	                                                         # router: db1 served by two replicas
//
// Exactly one of -dir and -shards is required. A router serves the same
// query API as a leaf (requests fan out concurrently, per-shard rankings
// merge deterministically, and a one-shard failure fails the query naming
// the shard), so routers can themselves be shards of a higher tier. The
// ingest endpoints are leaf-only: a router answers them with 501.
//
// Within -shards, URLs joined with "|" are interchangeable replicas of
// one shard (same documents, same ingest order): the router queries the
// first replica, hedges to the next after -hedge-delay (or immediately
// when an attempt fails), takes the first success, and cancels the
// losers. Per-shard requests additionally retry with backoff behind a
// circuit breaker, so a dead replica is skipped cheaply. A query fails
// only when every replica of a shard is down; requests carrying
// "partial":true degrade instead to the surviving shards' merged
// results, with the degraded shards reported in the response stats.
//
// Endpoints:
//
//	POST   /v1/topk         – answer a top-k query across the corpus
//	                          {"query":"{a{b}}","k":5} or {"queryXml":"<a>…</a>",…};
//	                          optional "docs":[…], "trees":true, "workers":N,
//	                          "exhaustive":true
//	POST   /v1/topk-batch   – answer many queries in ONE corpus scan:
//	                          {"queries":["{a{b}}",…],"k":5}; every document is
//	                          read once for the whole batch and all queries
//	                          share one request-scoped dictionary overlay
//	POST   /v1/docs         – ingest a document: JSON {"name":…,"xml":…} or a
//	                          raw XML body with ?name=… (leaf only)
//	GET    /v1/docs         – list the corpus manifest
//	DELETE /v1/docs/{name}  – remove a document: the manifest entry is
//	                          tombstoned (ids never reused, caches stay
//	                          valid) and the files GC'd best-effort (leaf only)
//	POST   /v1/admin/verify – re-run the integrity scrub over the live
//	                          corpus: checksums every referenced file and
//	                          quarantines corrupt documents (leaf only;
//	                          a router answers 501 — verify each shard)
//	GET    /healthz         – liveness, document count, generation
//	GET    /metrics         – Prometheus text-format counters: requests, cache
//	                          hits, documents scanned/skipped, the candidate
//	                          pruning pipeline's totals, dictionary gauges,
//	                          per-request latency histograms, per-shard router
//	                          telemetry, and Go runtime gauges
//	GET    /debug/slowlog   – ring buffer of recent queries at or above the
//	                          -slow-query threshold (newest first)
//	GET    /debug/queries   – queries executing right now, with the stage
//	                          (parse/plan/scan/shard/merge) each is in
//
// Every query request may add ?trace=1 to receive a "trace" block in the
// response: a span tree covering parse, plan, each scanned document (with
// its pruning counters), each shard fan-out leg, and the merge. A router
// forwards the trace context to its leaves with a W3C traceparent header,
// so the leaves' blocks nest under the router's with one shared trace id.
// Requests are logged structured (JSON, stderr); -debug-addr exposes
// net/http/pprof on a separate listener that should stay private.
//
// Results are cached in a bounded LRU keyed on the backend generation, so
// ingesting or removing a document transparently invalidates every cached
// answer. In-flight top-k computations are bounded by -max-concurrent;
// further requests queue.
//
// Every request's context threads down to the scan loops (corpus.Searcher
// contract), so a client that disconnects stops paying for its query
// mid-scan. On SIGINT/SIGTERM the daemon stops accepting connections and
// drains in-flight requests for up to -drain; whatever is still running
// then is cancelled through the same context plumbing before the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"tasm/corpus"
	"tasm/corpus/shard"
)

func main() {
	var (
		dir           = flag.String("dir", "", "corpus directory to serve (created if missing); mutually exclusive with -shards")
		shards        = flag.String("shards", "", "comma-separated tasmd base URLs to scatter-gather over; join interchangeable replicas of one shard with | (e.g. a1|a2,b); mutually exclusive with -dir")
		hedgeDelay    = flag.Duration("hedge-delay", shard.DefaultHedgeDelay, "how long a replicated shard waits for the current replica before hedging the query to the next one (0 queries all replicas at once)")
		addr          = flag.String("addr", ":8421", "listen address")
		cacheSize     = flag.Int("cache", 256, "result cache entries (0 disables)")
		maxConcurrent = flag.Int("max-concurrent", 2*runtime.GOMAXPROCS(0), "max in-flight top-k computations (0 = unbounded)")
		workers       = flag.Int("workers", 0, "default per-request worker pool (0 = sequential, -1 = GOMAXPROCS)")
		maxK          = flag.Int("max-k", 10000, "largest k a request may ask for")
		maxBatch      = flag.Int("max-batch", 1024, "largest number of queries one batch request may carry")
		maxBodyBytes  = flag.Int64("max-body-bytes", defaultMaxBodyBytes, "largest request body accepted, in bytes; oversized bodies get 413")
		verifyMode    = flag.String("verify", "scrub", "startup integrity check over the corpus files: scrub (quarantine corrupt documents), strict (refuse to start), off (orphan sweep only); leaf only")
		drain         = flag.Duration("drain", 15*time.Second, "how long shutdown waits for in-flight requests before cancelling them")
		slowQuery     = flag.Duration("slow-query", 0, "record queries at least this slow in /debug/slowlog (0 disables)")
		debugAddr     = flag.String("debug-addr", "", "listen address for net/http/pprof (empty disables; keep it private)")
		logLevel      = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	flag.Parse()
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "tasmd: invalid -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	var mode corpus.VerifyMode
	switch *verifyMode {
	case "scrub":
		mode = corpus.VerifyScrub
	case "strict":
		mode = corpus.VerifyStrict
	case "off":
		mode = corpus.VerifyOff
	default:
		fmt.Fprintf(os.Stderr, "tasmd: invalid -verify %q (want scrub, strict, or off)\n", *verifyMode)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *dir, *shards, *hedgeDelay, *addr, *debugAddr, mode, serverConfig{
		cacheSize:     *cacheSize,
		maxConcurrent: *maxConcurrent,
		workers:       *workers,
		maxK:          *maxK,
		maxBatch:      *maxBatch,
		maxBodyBytes:  *maxBodyBytes,
		slowQuery:     *slowQuery,
		logger:        logger,
	}, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "tasmd:", err)
		os.Exit(1)
	}
}

// run builds the backend selected by the flags and serves it until ctx is
// cancelled (by signal) or the listener fails.
func run(ctx context.Context, dir, shards string, hedgeDelay time.Duration, addr, debugAddr string, mode corpus.VerifyMode, cfg serverConfig, drain time.Duration) error {
	if (dir == "") == (shards == "") {
		return fmt.Errorf("exactly one of -dir and -shards is required")
	}
	logger := cfg.logger
	if logger == nil {
		logger = slog.Default()
	}
	var (
		src corpus.Searcher
		ing corpus.Ingester
	)
	if dir != "" {
		start := time.Now()
		c, err := corpus.Open(dir, corpus.WithLogger(logger), corpus.WithVerifyMode(mode))
		if err != nil {
			return err
		}
		cfg.openDuration = time.Since(start)
		src, ing = c, c
		logger.Info("serving corpus", "dir", dir, "docs", c.Len(), "quarantined", c.Quarantined(),
			"openDuration", cfg.openDuration.String(), "mappedBytes", c.MappedBytes(), "addr", addr)
	} else {
		replicas := 0
		children := make([]corpus.Searcher, 0, 4)
		for _, spec := range strings.Split(shards, ",") {
			// URLs joined with | are interchangeable replicas of one shard.
			members := make([]corpus.Searcher, 0, 2)
			for _, u := range strings.Split(spec, "|") {
				u = strings.TrimSpace(u)
				if u == "" {
					continue
				}
				cl, err := shard.NewClient(u)
				if err != nil {
					return err
				}
				// Each replica's client is wrapped with its own telemetry;
				// the stats objects land in serverConfig so /metrics can
				// export them as shard-labelled series (one series per
				// replica, including its breaker state).
				st := &shardStats{name: cl.Name(), breaker: cl.BreakerState}
				cfg.shards = append(cfg.shards, st)
				members = append(members, &instrumentedShard{Client: cl, st: st})
			}
			switch len(members) {
			case 0:
				continue
			case 1:
				children = append(children, members[0])
			default:
				replicas += len(members)
				children = append(children, shard.NewReplicaSet(members, shard.WithHedgeDelay(hedgeDelay)))
			}
		}
		if len(children) == 0 {
			return fmt.Errorf("-shards needs at least one URL")
		}
		src = shard.NewGroup(children...)
		logger.Info("routing over shards", "shards", len(children), "replicas", replicas, "addr", addr, "hedgeDelay", hedgeDelay.String())
	}
	if debugAddr != "" {
		if err := serveDebug(debugAddr, logger); err != nil {
			return err
		}
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serve(ctx, l, newServer(src, ing, cfg), drain)
}

// serveDebug starts the private debug listener: net/http/pprof on its
// own mux (never the API mux, so exposing the API never exposes
// profiling). It lives for the whole process — pprof during shutdown is
// exactly when someone wants a goroutine dump of a stuck drain.
func serveDebug(addr string, logger *slog.Logger) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug listener: %w", err)
	}
	logger.Info("pprof debug server listening", "addr", addr)
	go func() {
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			logger.Error("debug server failed", "err", err)
		}
	}()
	return nil
}

// serve runs the HTTP server on l until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests get up to drain to
// finish, and whatever is still running is cancelled through the request
// contexts (they derive from a base context this function owns) before
// the server is torn down.
func serve(ctx context.Context, l net.Listener, handler http.Handler, drain time.Duration) error {
	// Request contexts derive from baseCtx: cancelling it after the drain
	// deadline reaches every in-flight scan through the ctx plumbing.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	// The shutdown goroutine watches a child of ctx so a listener failure
	// (which returns below without cancelling ctx) still releases it.
	ctx, stop := context.WithCancel(ctx)
	defer stop()
	srv := &http.Server{
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
		// Slow-client protection: without these a client trickling header
		// or body bytes pins a connection and goroutine forever, never
		// reaching the body cap or the concurrency semaphore. Write and
		// idle timeouts are generous because large-k scans over big
		// corpora legitimately take a while.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	shutdownDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		slog.Info("shutting down, draining in-flight requests", "drain", drain.String())
		shCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(shCtx)
		if err != nil {
			// The drain deadline passed with requests still in flight:
			// cancel their contexts so the scans stop, then tear down.
			slog.Warn("drain deadline exceeded, cancelling in-flight scans")
			baseCancel()
			err = srv.Close()
		}
		shutdownDone <- err
	}()
	if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
		return err
	}
	return <-shutdownDone
}
