// Command tasmd is the TASM query daemon: it serves top-k approximate
// subtree matching over a corpus of persisted documents via a JSON HTTP
// API — either directly from a corpus directory, or as a router
// scatter-gathering over other tasmd instances.
//
// Usage:
//
//	tasmd -dir ./corpus -addr :8421                          # leaf: serve one directory
//	tasmd -shards http://db1:8421,http://db2:8421 -addr :80  # router: scatter-gather over leaves
//
// Exactly one of -dir and -shards is required. A router serves the same
// query API as a leaf (requests fan out concurrently, per-shard rankings
// merge deterministically, and a one-shard failure fails the query naming
// the shard), so routers can themselves be shards of a higher tier. The
// ingest endpoints are leaf-only: a router answers them with 501.
//
// Endpoints:
//
//	POST   /v1/topk         – answer a top-k query across the corpus
//	                          {"query":"{a{b}}","k":5} or {"queryXml":"<a>…</a>",…};
//	                          optional "docs":[…], "trees":true, "workers":N,
//	                          "exhaustive":true
//	POST   /v1/topk-batch   – answer many queries in ONE corpus scan:
//	                          {"queries":["{a{b}}",…],"k":5}; every document is
//	                          read once for the whole batch and all queries
//	                          share one request-scoped dictionary overlay
//	POST   /v1/docs         – ingest a document: JSON {"name":…,"xml":…} or a
//	                          raw XML body with ?name=… (leaf only)
//	GET    /v1/docs         – list the corpus manifest
//	DELETE /v1/docs/{name}  – remove a document: the manifest entry is
//	                          tombstoned (ids never reused, caches stay
//	                          valid) and the files GC'd best-effort (leaf only)
//	GET    /healthz         – liveness, document count, generation
//	GET    /metrics         – Prometheus text-format counters: requests, cache
//	                          hits, documents scanned/skipped, the candidate
//	                          pruning pipeline's totals, dictionary gauges,
//	                          and per-request latency histograms
//
// Results are cached in a bounded LRU keyed on the backend generation, so
// ingesting or removing a document transparently invalidates every cached
// answer. In-flight top-k computations are bounded by -max-concurrent;
// further requests queue.
//
// Every request's context threads down to the scan loops (corpus.Searcher
// contract), so a client that disconnects stops paying for its query
// mid-scan. On SIGINT/SIGTERM the daemon stops accepting connections and
// drains in-flight requests for up to -drain; whatever is still running
// then is cancelled through the same context plumbing before the process
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"tasm/corpus"
	"tasm/corpus/shard"
)

func main() {
	var (
		dir           = flag.String("dir", "", "corpus directory to serve (created if missing); mutually exclusive with -shards")
		shards        = flag.String("shards", "", "comma-separated tasmd base URLs to scatter-gather over; mutually exclusive with -dir")
		addr          = flag.String("addr", ":8421", "listen address")
		cacheSize     = flag.Int("cache", 256, "result cache entries (0 disables)")
		maxConcurrent = flag.Int("max-concurrent", 2*runtime.GOMAXPROCS(0), "max in-flight top-k computations (0 = unbounded)")
		workers       = flag.Int("workers", 0, "default per-request worker pool (0 = sequential, -1 = GOMAXPROCS)")
		maxK          = flag.Int("max-k", 10000, "largest k a request may ask for")
		maxBatch      = flag.Int("max-batch", 1024, "largest number of queries one batch request may carry")
		drain         = flag.Duration("drain", 15*time.Second, "how long shutdown waits for in-flight requests before cancelling them")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *dir, *shards, *addr, serverConfig{
		cacheSize:     *cacheSize,
		maxConcurrent: *maxConcurrent,
		workers:       *workers,
		maxK:          *maxK,
		maxBatch:      *maxBatch,
	}, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "tasmd:", err)
		os.Exit(1)
	}
}

// run builds the backend selected by the flags and serves it until ctx is
// cancelled (by signal) or the listener fails.
func run(ctx context.Context, dir, shards, addr string, cfg serverConfig, drain time.Duration) error {
	if (dir == "") == (shards == "") {
		return fmt.Errorf("exactly one of -dir and -shards is required")
	}
	var (
		src corpus.Searcher
		ing corpus.Ingester
	)
	if dir != "" {
		c, err := corpus.Open(dir)
		if err != nil {
			return err
		}
		src, ing = c, c
		log.Printf("tasmd: serving corpus %s (%d documents) on %s", dir, c.Len(), addr)
	} else {
		urls := strings.Split(shards, ",")
		children := make([]corpus.Searcher, 0, len(urls))
		for _, u := range urls {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			cl, err := shard.NewClient(u)
			if err != nil {
				return err
			}
			children = append(children, cl)
		}
		if len(children) == 0 {
			return fmt.Errorf("-shards needs at least one URL")
		}
		src = shard.NewGroup(children...)
		log.Printf("tasmd: routing over %d shards on %s", len(children), addr)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serve(ctx, l, newServer(src, ing, cfg), drain)
}

// serve runs the HTTP server on l until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests get up to drain to
// finish, and whatever is still running is cancelled through the request
// contexts (they derive from a base context this function owns) before
// the server is torn down.
func serve(ctx context.Context, l net.Listener, handler http.Handler, drain time.Duration) error {
	// Request contexts derive from baseCtx: cancelling it after the drain
	// deadline reaches every in-flight scan through the ctx plumbing.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	// The shutdown goroutine watches a child of ctx so a listener failure
	// (which returns below without cancelling ctx) still releases it.
	ctx, stop := context.WithCancel(ctx)
	defer stop()
	srv := &http.Server{
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
		// Slow-client protection: without these a client trickling header
		// or body bytes pins a connection and goroutine forever, never
		// reaching the body cap or the concurrency semaphore. Write and
		// idle timeouts are generous because large-k scans over big
		// corpora legitimately take a while.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	shutdownDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		log.Printf("tasmd: shutting down, draining in-flight requests for up to %s", drain)
		shCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(shCtx)
		if err != nil {
			// The drain deadline passed with requests still in flight:
			// cancel their contexts so the scans stop, then tear down.
			log.Printf("tasmd: drain deadline exceeded, cancelling in-flight scans")
			baseCancel()
			err = srv.Close()
		}
		shutdownDone <- err
	}()
	if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
		return err
	}
	return <-shutdownDone
}
