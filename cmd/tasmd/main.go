// Command tasmd is the TASM query daemon: it serves top-k approximate
// subtree matching over a corpus of persisted documents via a JSON HTTP
// API.
//
// Usage:
//
//	tasmd -dir ./corpus -addr :8421
//
// Endpoints:
//
//	POST /v1/topk       – answer a top-k query across the corpus
//	                      {"query":"{a{b}}","k":5} or {"queryXml":"<a>…</a>",…};
//	                      optional "docs":[…], "trees":true, "workers":N,
//	                      "exhaustive":true
//	POST /v1/topk-batch – answer many queries in ONE corpus scan:
//	                      {"queries":["{a{b}}",…],"k":5}; every document is
//	                      read once for the whole batch and all queries
//	                      share one request-scoped dictionary overlay
//	POST /v1/docs       – ingest a document: JSON {"name":…,"xml":…} or a
//	                      raw XML body with ?name=…
//	GET  /v1/docs       – list the corpus manifest
//	GET  /healthz       – liveness and document count
//	GET  /metrics       – Prometheus text-format counters: requests, cache
//	                      hits, documents scanned/skipped, the candidate
//	                      pruning pipeline's histogram-skip / TED-abort /
//	                      evaluation totals, dictionary gauges (frozen base
//	                      size, overlay label churn), and fixed-bucket
//	                      per-request latency histograms for both query
//	                      endpoints
//
// Results are cached in a bounded LRU keyed on the corpus generation, so
// ingesting a document transparently invalidates every cached answer.
// In-flight top-k computations are bounded by -max-concurrent; further
// requests queue.
//
// Every request resolves its query labels through a disposable
// copy-on-write overlay of the corpus dictionary (released when the
// request completes), so serving unboundedly many distinct query labels
// leaves the daemon's memory bounded by its ingested documents.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"tasm/corpus"
)

func main() {
	var (
		dir           = flag.String("dir", "", "corpus directory (created if missing)")
		addr          = flag.String("addr", ":8421", "listen address")
		cacheSize     = flag.Int("cache", 256, "result cache entries (0 disables)")
		maxConcurrent = flag.Int("max-concurrent", 2*runtime.GOMAXPROCS(0), "max in-flight top-k computations (0 = unbounded)")
		workers       = flag.Int("workers", 0, "default per-request worker pool (0 = sequential, -1 = GOMAXPROCS)")
		maxK          = flag.Int("max-k", 10000, "largest k a request may ask for")
		maxBatch      = flag.Int("max-batch", 1024, "largest number of queries one batch request may carry")
	)
	flag.Parse()
	if err := run(*dir, *addr, *cacheSize, *maxConcurrent, *workers, *maxK, *maxBatch); err != nil {
		fmt.Fprintln(os.Stderr, "tasmd:", err)
		os.Exit(1)
	}
}

func run(dir, addr string, cacheSize, maxConcurrent, workers, maxK, maxBatch int) error {
	if dir == "" {
		return fmt.Errorf("-dir is required")
	}
	c, err := corpus.Open(dir)
	if err != nil {
		return err
	}
	handler := newServer(c, serverConfig{
		cacheSize:     cacheSize,
		maxConcurrent: maxConcurrent,
		workers:       workers,
		maxK:          maxK,
		maxBatch:      maxBatch,
	})
	srv := &http.Server{
		Addr:    addr,
		Handler: handler,
		// Slow-client protection: without these a client trickling header
		// or body bytes pins a connection and goroutine forever, never
		// reaching the body cap or the concurrency semaphore. Write and
		// idle timeouts are generous because large-k scans over big
		// corpora legitimately take a while.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("tasmd: serving corpus %s (%d documents) on %s", dir, c.Len(), addr)
	return srv.ListenAndServe()
}
