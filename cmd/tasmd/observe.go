package main

import (
	"context"
	"encoding/hex"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"

	"tasm/corpus"
	"tasm/corpus/shard"
	"tasm/internal/qtrace"
	"tasm/internal/tree"
)

// ---------------------------------------------------------------------------
// Request IDs and request-scoped logging.

// ctxKeyRequestID carries the request id through the handler chain.
type ctxKeyRequestID struct{}

// requestIDFrom returns the request id the logging middleware assigned,
// or "" outside of it (direct handler tests).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID{}).(string)
	return id
}

// newRequestID returns a fresh 16-hex-digit request id. Random rather
// than sequential so ids from restarted or load-balanced daemons never
// collide in aggregated logs.
func newRequestID() string {
	var b [8]byte
	for i := 0; i < 8; i += 4 {
		v := rand.Uint32()
		b[i], b[i+1], b[i+2], b[i+3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status (and whether a handler wrote
// one at all) for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// withRequestLog wraps the API mux with the observability middleware:
// every request gets an id (a client-supplied X-Request-Id is honored so
// ids correlate across tiers, else one is minted), the id is echoed in
// the X-Request-Id response header and carried in the context for the
// slow-query log, and the request is logged structured on completion.
// Scrape and probe endpoints are logged at Debug so a 5-second Prometheus
// interval does not drown the query log.
func withRequestLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > 128 {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID{}, id)))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		level := slog.LevelInfo
		switch {
		case status >= 500:
			level = slog.LevelError
		case r.URL.Path == "/healthz" || r.URL.Path == "/metrics":
			level = slog.LevelDebug
		}
		logger.Log(r.Context(), level, "request",
			"reqId", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"durMs", float64(time.Since(start).Microseconds())/1000,
		)
	})
}

// ---------------------------------------------------------------------------
// Slow-query log.

// slowLogSize bounds the ring: enough history to cover an incident
// window, small enough that /debug/slowlog responses stay readable.
const slowLogSize = 128

// slowEntry is one recorded slow query, JSON-shaped for /debug/slowlog.
type slowEntry struct {
	Time     time.Time `json:"time"`
	ReqID    string    `json:"reqId,omitempty"`
	TraceID  string    `json:"traceId"`
	Endpoint string    `json:"endpoint"`
	// Query previews the query (first query for a batch), truncated.
	Query   string  `json:"query"`
	Queries int     `json:"queries,omitempty"` // batch size; 0 for single
	K       int     `json:"k"`
	DurMs   float64 `json:"durMs"`
	// Scanned/Skipped/Evaluated summarize where the time went.
	Scanned   int    `json:"scanned"`
	Skipped   int    `json:"skipped"`
	Evaluated uint64 `json:"evaluated"`
	// Fault-tolerance accounting, by shard name: a slow query that was
	// retried or hedged usually explains itself.
	Retried        []string `json:"retried,omitempty"`
	Hedged         []string `json:"hedged,omitempty"`
	BreakerSkipped []string `json:"breakerSkipped,omitempty"`
	Degraded       []string `json:"degraded,omitempty"`
	Error          string   `json:"error,omitempty"`
}

// slowLog is a fixed-size ring of the most recent queries that ran for
// at least the configured threshold. A zero threshold disables it.
type slowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	entries   [slowLogSize]slowEntry
	next      int
	total     uint64
}

// observe records the query if it ran for at least the threshold;
// reports whether it did.
func (l *slowLog) observe(d time.Duration, e slowEntry) bool {
	if l == nil || l.threshold <= 0 || d < l.threshold {
		return false
	}
	e.DurMs = float64(d.Microseconds()) / 1000
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[l.next%slowLogSize] = e
	l.next++
	l.total++
	return true
}

// snapshot returns the recorded entries, most recent first, plus the
// lifetime count (entries beyond the ring size have been dropped).
func (l *slowLog) snapshot() (entries []slowEntry, total uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if n > slowLogSize {
		n = slowLogSize
	}
	entries = make([]slowEntry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, l.entries[(l.next-1-i)%slowLogSize])
	}
	return entries, l.total
}

// queryPreview truncates a query string for log entries: enough to
// recognize the query, bounded so a pathological megabyte query cannot
// bloat the ring.
func queryPreview(q string) string {
	const max = 200
	if len(q) <= max {
		return q
	}
	return q[:max] + "…"
}

// previewOf renders the request's query for the slow log (bracket
// queries verbatim, XML marked as such — the parsed tree would need the
// request overlay which is gone by logging time).
func previewOf(req *topkRequest) string {
	if req.Query != "" {
		return queryPreview(req.Query)
	}
	return "<xml query, " + queryPreview(req.QueryXML) + ">"
}

// ---------------------------------------------------------------------------
// In-flight query registry.

// inflightQuery is one currently-executing query, JSON-shaped for
// GET /debug/queries. Stage and Shard come from the query's live trace.
type inflightQuery struct {
	ID        uint64  `json:"id"`
	ReqID     string  `json:"reqId,omitempty"`
	TraceID   string  `json:"traceId"`
	Endpoint  string  `json:"endpoint"`
	Query     string  `json:"query"`
	Queries   int     `json:"queries,omitempty"`
	K         int     `json:"k"`
	ElapsedMs float64 `json:"elapsedMs"`
	// Stage is the deepest span still open ("scan", "shard", "merge", …)
	// and Detail its subject (document or shard name).
	Stage  string `json:"stage,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// inflightEntry is the registry's record of one running query.
type inflightEntry struct {
	id       uint64
	reqID    string
	endpoint string
	query    string
	queries  int
	k        int
	start    time.Time
	trace    *qtrace.Trace
}

// inflightRegistry tracks running queries for GET /debug/queries. The
// trace pointers stay owned by their handlers; snapshot only reads them
// through qtrace's own locking, and deregistration happens before the
// handler releases the trace to the pool.
type inflightRegistry struct {
	mu      sync.Mutex
	nextID  uint64
	queries map[uint64]*inflightEntry
}

func newInflightRegistry() *inflightRegistry {
	return &inflightRegistry{queries: make(map[uint64]*inflightEntry)}
}

// register adds a running query; the returned id deregisters it.
func (r *inflightRegistry) register(e *inflightEntry) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	e.id = r.nextID
	r.queries[e.id] = e
	return e.id
}

func (r *inflightRegistry) deregister(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.queries, id)
}

func (r *inflightRegistry) len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queries)
}

// snapshot renders the running queries, longest-running first.
func (r *inflightRegistry) snapshot() []inflightQuery {
	r.mu.Lock()
	entries := make([]*inflightEntry, 0, len(r.queries))
	for _, e := range r.queries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	now := time.Now()
	out := make([]inflightQuery, 0, len(entries))
	for _, e := range entries {
		q := inflightQuery{
			ID:        e.id,
			ReqID:     e.reqID,
			TraceID:   e.trace.TraceID().String(),
			Endpoint:  e.endpoint,
			Query:     e.query,
			Queries:   e.queries,
			K:         e.k,
			ElapsedMs: float64(now.Sub(e.start).Microseconds()) / 1000,
		}
		q.Stage, q.Detail, _ = e.trace.Active()
		out = append(out, q)
	}
	// Longest-running first: the queries someone debugging a stall wants
	// at the top. Registration ids break ties deterministically.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ElapsedMs > out[j-1].ElapsedMs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Per-shard instrumentation.

// instrumentedShard wraps a router's *shard.Client with per-shard
// telemetry: request/error counters, an in-flight gauge and a latency
// histogram, exported as shard-labelled series on /metrics. The embedded
// client keeps its Name/Docs/DocsContext/NumDocs/Generation methods
// promoted, so shard.Group still sees everything it type-asserts for.
type instrumentedShard struct {
	*shard.Client
	st *shardStats
}

var _ corpus.Searcher = (*instrumentedShard)(nil)

func (s *instrumentedShard) TopK(ctx context.Context, q *tree.Tree, k int, opts ...corpus.QueryOption) ([]corpus.Match, error) {
	defer s.observe(time.Now())()
	ms, err := s.Client.TopK(ctx, q, k, opts...)
	if err != nil {
		s.st.errors.Add(1)
	}
	return ms, err
}

func (s *instrumentedShard) TopKBatch(ctx context.Context, queries []*tree.Tree, k int, opts ...corpus.QueryOption) ([][]corpus.Match, error) {
	defer s.observe(time.Now())()
	rs, err := s.Client.TopKBatch(ctx, queries, k, opts...)
	if err != nil {
		s.st.errors.Add(1)
	}
	return rs, err
}

// observe accounts one fan-out request; called as `defer observe(time.Now())`
// so the in-flight gauge rises before the call and falls with it.
func (s *instrumentedShard) observe(start time.Time) func() {
	s.st.requests.Add(1)
	s.st.inflight.Add(1)
	return func() {
		s.st.inflight.Add(-1)
		s.st.latency.observe(time.Since(start))
	}
}
