package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tasm/corpus"
)

func newTestServer(t *testing.T, cfg serverConfig) (http.Handler, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return newServer(c, c, cfg), c
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var r *bytes.Reader
	switch b := body.(type) {
	case nil:
		r = bytes.NewReader(nil)
	case string:
		r = bytes.NewReader([]byte(b))
	default:
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = bytes.NewReader(data)
	}
	req := httptest.NewRequest(method, path, r)
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func ingest(t *testing.T, h http.Handler, name, xml string) {
	t.Helper()
	w := doJSON(t, h, "POST", "/v1/docs", ingestRequest{Name: name, XML: xml})
	if w.Code != http.StatusCreated {
		t.Fatalf("ingest %q: status %d: %s", name, w.Code, w.Body)
	}
}

func topk(t *testing.T, h http.Handler, req topkRequest) topkResponse {
	t.Helper()
	w := doJSON(t, h, "POST", "/v1/topk", req)
	if w.Code != http.StatusOK {
		t.Fatalf("topk: status %d: %s", w.Code, w.Body)
	}
	var resp topkResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("topk: %v in %s", err, w.Body)
	}
	return resp
}

// TestMetricsEndpoint: GET /metrics serves Prometheus text format with
// the request, cache and pruning counters advancing as the daemon works.
func TestMetricsEndpoint(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{cacheSize: 8})
	ingest(t, h, "a", "<dblp><article><author>smith</author><title>trees</title></article></dblp>")
	ingest(t, h, "b", "<dblp><book><title>graphs</title></book></dblp>")
	// Two identical queries: the second must be a cache hit.
	req := topkRequest{Query: "{article{author{smith}}}", K: 2}
	topk(t, h, req)
	resp := topk(t, h, req)
	if !resp.Stats.Cached {
		t.Fatal("second identical query was not served from the cache")
	}

	w := doJSON(t, h, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition format", ct)
	}
	body := w.Body.String()
	wantLines := []string{
		"tasmd_topk_requests_total 2",
		"tasmd_topk_cache_hits_total 1",
		"tasmd_ingests_total 2",
		"tasmd_corpus_docs 2",
		"# TYPE tasmd_docs_scanned_total counter",
		"# TYPE tasmd_ted_evals_completed_total counter",
		"# HELP tasmd_candidates_hist_skipped_total",
	}
	for _, want := range wantLines {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
	// The computed (non-cached) run must have recorded scan work.
	var scanned, evaluated int
	fmt.Sscanf(metricLine(body, "tasmd_docs_scanned_total"), "%d", &scanned)
	fmt.Sscanf(metricLine(body, "tasmd_ted_evals_completed_total"), "%d", &evaluated)
	if scanned == 0 {
		t.Error("tasmd_docs_scanned_total = 0 after a computed query")
	}
	if evaluated == 0 {
		t.Error("tasmd_ted_evals_completed_total = 0 after a computed query")
	}
}

// metricLine extracts the value field of a metric sample line.
func metricLine(body, name string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	return ""
}

func TestBadInput(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", `{{{`, http.StatusBadRequest},
		{"no query", `{"k":3}`, http.StatusBadRequest},
		{"both queries", `{"query":"{a}","queryXml":"<a/>","k":3}`, http.StatusBadRequest},
		{"k zero", `{"query":"{a}","k":0}`, http.StatusBadRequest},
		{"k negative", `{"query":"{a}","k":-2}`, http.StatusBadRequest},
		{"k over limit", `{"query":"{a}","k":1000000}`, http.StatusBadRequest},
		{"unknown field", `{"query":"{a}","k":1,"nope":true}`, http.StatusBadRequest},
		{"bad bracket query", `{"query":"{a","k":1}`, http.StatusBadRequest},
		{"unknown doc", `{"query":"{a}","k":1,"docs":["ghost"]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if w := doJSON(t, h, "POST", "/v1/topk", tc.body); w.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.want, w.Body)
		}
	}
	// Ingest errors.
	if w := doJSON(t, h, "POST", "/v1/docs", ingestRequest{Name: "", XML: "<a/>"}); w.Code != http.StatusBadRequest {
		t.Errorf("empty name: status %d, want 400", w.Code)
	}
	if w := doJSON(t, h, "POST", "/v1/docs", ingestRequest{Name: "x", XML: "<a><b"}); w.Code != http.StatusBadRequest {
		t.Errorf("bad xml: status %d, want 400", w.Code)
	}
	ingest(t, h, "x", "<a/>")
	if w := doJSON(t, h, "POST", "/v1/docs", ingestRequest{Name: "x", XML: "<a/>"}); w.Code != http.StatusConflict {
		t.Errorf("duplicate name: status %d, want 409", w.Code)
	}
}

func TestIngestListQueryHealthz(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{})
	ingest(t, h, "d1", `<r><a><b>x</b></a></r>`)
	// Raw XML ingest path.
	req := httptest.NewRequest("POST", "/v1/docs?name=d2", strings.NewReader(`<r><c>y</c></r>`))
	req.Header.Set("Content-Type", "application/xml")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusCreated {
		t.Fatalf("raw XML ingest: status %d: %s", w.Code, w.Body)
	}

	lw := doJSON(t, h, "GET", "/v1/docs", nil)
	if lw.Code != http.StatusOK || !strings.Contains(lw.Body.String(), `"d2"`) {
		t.Fatalf("list: status %d body %s", lw.Code, lw.Body)
	}
	hw := doJSON(t, h, "GET", "/healthz", nil)
	var health struct {
		Status string `json:"status"`
		Docs   int    `json:"docs"`
	}
	if err := json.Unmarshal(hw.Body.Bytes(), &health); err != nil || health.Status != "ok" || health.Docs != 2 {
		t.Fatalf("healthz: %s (err %v)", hw.Body, err)
	}

	resp := topk(t, h, topkRequest{Query: "{a{b{x}}}", K: 2, Trees: true})
	if len(resp.Matches) != 2 || resp.Matches[0].Dist != 0 || resp.Matches[0].Doc != "d1" {
		t.Fatalf("unexpected matches: %+v", resp.Matches)
	}
	if resp.Matches[0].Tree == "" {
		t.Fatal("trees requested but not returned")
	}
}

// TestFilterSkipsOverHTTP is the acceptance-criterion integration test:
// on a crafted corpus the prefilter must skip at least one document while
// the response matches the exhaustive scan byte for byte.
func TestFilterSkipsOverHTTP(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{})
	ingest(t, h, "near", `<r><a><b>x</b><c>y</c></a><a><b>x</b></a></r>`)
	ingest(t, h, "far", `<zoo><pen><yak>z</yak></pen><pen><emu>w</emu></pen></zoo>`)

	filtered := doJSON(t, h, "POST", "/v1/topk",
		`{"query":"{a{b{x}}{c{y}}}","k":2,"trees":true}`)
	exhaustive := doJSON(t, h, "POST", "/v1/topk",
		`{"query":"{a{b{x}}{c{y}}}","k":2,"trees":true,"exhaustive":true}`)
	if filtered.Code != http.StatusOK || exhaustive.Code != http.StatusOK {
		t.Fatalf("status %d / %d", filtered.Code, exhaustive.Code)
	}
	var fr, er topkResponse
	if err := json.Unmarshal(filtered.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(exhaustive.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if fr.Stats.Skipped < 1 {
		t.Fatalf("prefilter skipped %d documents, want ≥ 1 (stats %+v)", fr.Stats.Skipped, fr.Stats)
	}
	if er.Stats.Skipped != 0 || er.Stats.Scanned != 2 {
		t.Fatalf("exhaustive scan should visit everything: %+v", er.Stats)
	}
	fm, err := json.Marshal(fr.Matches)
	if err != nil {
		t.Fatal(err)
	}
	em, err := json.Marshal(er.Matches)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fm, em) {
		t.Fatalf("filtered and exhaustive matches differ:\n %s\n %s", fm, em)
	}
	if fr.Matches[0].Dist != 0 {
		t.Fatalf("query occurs verbatim in 'near': %+v", fr.Matches[0])
	}
}

func TestCacheHitsAndInvalidation(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{cacheSize: 16})
	ingest(t, h, "d1", `<r><a><b>x</b></a></r>`)
	req := topkRequest{Query: "{a{b{x}}}", K: 1}

	first := topk(t, h, req)
	if first.Stats.Cached {
		t.Fatal("first answer cannot be cached")
	}
	second := topk(t, h, req)
	if !second.Stats.Cached {
		t.Fatal("identical repeat query must be served from cache")
	}
	second.Stats.Cached = false
	if fmt.Sprintf("%+v", first) != fmt.Sprintf("%+v", second) {
		t.Fatalf("cached answer differs: %+v vs %+v", first, second)
	}
	// Ingest bumps the generation: the cache entry must stop being used.
	ingest(t, h, "d2", `<r><a><b>x</b></a></r>`)
	third := topk(t, h, req)
	if third.Stats.Cached {
		t.Fatal("cache must miss after ingest")
	}
}

// TestConcurrentTopK serves many concurrent queries (mixed with ingests)
// through the concurrency limiter; run with -race.
func TestConcurrentTopK(t *testing.T) {
	h, _ := newTestServer(t, serverConfig{cacheSize: 8, maxConcurrent: 3})
	ingest(t, h, "base", `<r><a><b>x</b><c>y</c></a></r>`)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				// Vary k so some requests miss the cache.
				resp := doJSON(t, h, "POST", "/v1/topk",
					fmt.Sprintf(`{"query":"{a{b{x}}}","k":%d}`, 1+(g+i)%3))
				if resp.Code != http.StatusOK {
					errs <- fmt.Sprintf("goroutine %d: status %d: %s", g, resp.Code, resp.Body)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			ingest(t, h, fmt.Sprintf("doc%d", i), `<r><c><d>z</d></c></r>`)
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.put("c", []byte("3")) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should survive")
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	disabled := newLRUCache(0)
	disabled.put("x", []byte("1"))
	if _, ok := disabled.get("x"); ok {
		t.Fatal("disabled cache must not store")
	}
}

// TestCorruptStoreIs500 pins the status-code split: a store file gone bad
// on disk is server state (500), not caller error (400).
func TestCorruptStoreIs500(t *testing.T) {
	h, c := newTestServer(t, serverConfig{})
	ingest(t, h, "d1", `<r><a><b>x</b></a></r>`)
	store := filepath.Join(c.Dir(), "docs", "1.store")
	data, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate into the item region: the last 4 bytes are the CRC
	// trailer, which the scan path never reads (integrity is a scrub-time
	// concern), so only a structural tear surfaces as a scan error.
	if err := os.WriteFile(store, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	w := doJSON(t, h, "POST", "/v1/topk", `{"query":"{a{b{x}}}","k":1}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("corrupt store: status %d, want 500 (%s)", w.Code, w.Body)
	}
}
